// Tile graph for LAC-retiming (paper §4, Figure 2).
//
// The chip is divided into a uniform grid of physical cells.  Each cell is
// classified by what the floorplan puts under its centre:
//   * channel / dead area  — high capacity for repeater & flip-flop insertion;
//   * hard block           — capacity only from pre-located sites (Alpert's
//                            buffer/FF sites), typically very small;
//   * soft block           — all cells of one soft block are MERGED into a
//                            single logical tile whose capacity is the block
//                            area minus the area its functional units use
//                            (the block's internal placement is not yet
//                            fixed, so only the total matters).
//
// "Tile" in the rest of the library always means a *logical* tile: a
// channel cell, a hard-block cell, or a merged soft block.  The physical
// grid is still exposed for the global router, whose routing graph is the
// cell adjacency.
#pragma once

#include <cstdint>
#include <vector>

#include "base/geometry.h"
#include "base/ids.h"
#include "floorplan/floorplanner.h"

namespace lac::tile {

struct TileTag {};
using TileId = Id<TileTag>;

enum class TileKind { kChannel, kHardBlock, kSoftBlock };

struct TileGridOptions {
  Coord tile_size = 250;            // µm, physical cell pitch
  double channel_utilization = 0.7; // usable fraction of a channel cell
  int hard_sites_per_cell = 2;      // pre-located repeater/FF sites
  double site_area = 400.0;         // µm² per site (≈ one DFF)
};

class TileGrid {
 public:
  // `block_used_area[b]` = total functional-unit area assigned to block b;
  // determines the residual capacity of soft-block tiles.
  TileGrid(const floorplan::Floorplan& fp,
           const std::vector<double>& block_used_area,
           const TileGridOptions& opt = {});

  // --- physical grid (router view) ----------------------------------------
  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int num_cells() const { return nx_ * ny_; }
  [[nodiscard]] int cell_index(int gx, int gy) const { return gy * nx_ + gx; }
  [[nodiscard]] Point cell_center(int gx, int gy) const;
  [[nodiscard]] std::pair<int, int> cell_of_point(const Point& p) const;
  [[nodiscard]] TileId tile_of_cell(int gx, int gy) const;
  [[nodiscard]] Coord tile_size() const { return opt_.tile_size; }

  // --- logical tiles (retiming view) ---------------------------------------
  [[nodiscard]] int num_tiles() const {
    return static_cast<int>(kind_.size());
  }
  [[nodiscard]] TileKind kind(TileId t) const { return kind_.at(t.index()); }
  // Remaining insertion capacity (µm²) after all consume() calls so far.
  [[nodiscard]] double capacity(TileId t) const {
    return capacity_.at(t.index());
  }
  [[nodiscard]] double total_capacity(TileId t) const {
    return total_capacity_.at(t.index());
  }
  // Owning floorplan block for block tiles; invalid for channel tiles.
  [[nodiscard]] floorplan::BlockId block(TileId t) const {
    return block_.at(t.index());
  }
  [[nodiscard]] TileId tile_at(const Point& p) const;

  // Permanently consumes `area` µm² in tile t (repeater insertion happens
  // before retiming; the paper's C(t) is the capacity *after* repeaters).
  // Capacity can go negative: the caller is responsible for avoiding or
  // reporting overfull tiles.
  void consume(TileId t, double area);

  // Scales both remaining and total capacity of tile t (ECO capacity
  // overrides: derating a block or channel without re-deriving the grid).
  // `factor` must be >= 0.
  void scale_capacity(TileId t, double factor);

  // Aggregates for reporting.
  [[nodiscard]] double total_channel_capacity() const;
  [[nodiscard]] int num_soft_tiles() const;

  // Logical heap footprint (element counts × element sizes, not allocator
  // capacity) — deterministic for any thread count, reported as the
  // mem.tile_graph_bytes gauge.
  [[nodiscard]] std::int64_t bytes_used() const {
    return static_cast<std::int64_t>(
        cell_tile_.size() * sizeof(TileId) + kind_.size() * sizeof(TileKind) +
        capacity_.size() * sizeof(double) +
        total_capacity_.size() * sizeof(double) +
        block_.size() * sizeof(floorplan::BlockId));
  }

  // ASCII rendering of the tile classification (examples/tilegraph_demo).
  [[nodiscard]] std::string render_ascii() const;

 private:
  TileGridOptions opt_;
  Rect chip_;
  int nx_ = 0, ny_ = 0;
  // Per physical cell: logical tile id.
  std::vector<TileId> cell_tile_;
  // Per logical tile:
  std::vector<TileKind> kind_;
  std::vector<double> capacity_;
  std::vector<double> total_capacity_;
  std::vector<floorplan::BlockId> block_;
};

}  // namespace lac::tile
