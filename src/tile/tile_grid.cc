#include "tile/tile_grid.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "base/check.h"

namespace lac::tile {

TileGrid::TileGrid(const floorplan::Floorplan& fp,
                   const std::vector<double>& block_used_area,
                   const TileGridOptions& opt)
    : opt_(opt), chip_(fp.chip) {
  LAC_CHECK(opt.tile_size > 0);
  LAC_CHECK(static_cast<int>(block_used_area.size()) == fp.num_blocks());
  nx_ = std::max<int>(1, static_cast<int>((chip_.width() + opt.tile_size - 1) /
                                          opt.tile_size));
  ny_ = std::max<int>(1, static_cast<int>((chip_.height() + opt.tile_size - 1) /
                                          opt.tile_size));
  cell_tile_.assign(static_cast<std::size_t>(num_cells()), TileId::invalid());

  const double cell_area = static_cast<double>(opt.tile_size) *
                           static_cast<double>(opt.tile_size);

  // One merged logical tile per soft block, created lazily.
  std::unordered_map<int, TileId> soft_tile_of_block;

  for (int gy = 0; gy < ny_; ++gy) {
    for (int gx = 0; gx < nx_; ++gx) {
      const Point c = cell_center(gx, gy);
      const floorplan::BlockId b = fp.block_at(c);
      TileId t;
      if (!b.valid()) {
        t = TileId{static_cast<TileId::value_type>(kind_.size())};
        kind_.push_back(TileKind::kChannel);
        capacity_.push_back(cell_area * opt.channel_utilization);
        block_.push_back(floorplan::BlockId::invalid());
      } else if (fp.blocks[b.index()].hard) {
        t = TileId{static_cast<TileId::value_type>(kind_.size())};
        kind_.push_back(TileKind::kHardBlock);
        capacity_.push_back(opt.hard_sites_per_cell * opt.site_area);
        block_.push_back(b);
      } else {
        const auto it = soft_tile_of_block.find(b.value());
        if (it != soft_tile_of_block.end()) {
          t = it->second;
        } else {
          t = TileId{static_cast<TileId::value_type>(kind_.size())};
          kind_.push_back(TileKind::kSoftBlock);
          const double block_area = fp.placement[b.index()].area();
          capacity_.push_back(
              std::max(0.0, block_area - block_used_area[b.index()]));
          block_.push_back(b);
          soft_tile_of_block.emplace(b.value(), t);
        }
      }
      cell_tile_[static_cast<std::size_t>(cell_index(gx, gy))] = t;
    }
  }
  total_capacity_ = capacity_;
}

Point TileGrid::cell_center(int gx, int gy) const {
  LAC_CHECK(gx >= 0 && gx < nx_ && gy >= 0 && gy < ny_);
  return Point{chip_.lo.x + gx * opt_.tile_size + opt_.tile_size / 2,
               chip_.lo.y + gy * opt_.tile_size + opt_.tile_size / 2};
}

std::pair<int, int> TileGrid::cell_of_point(const Point& p) const {
  int gx = static_cast<int>((p.x - chip_.lo.x) / opt_.tile_size);
  int gy = static_cast<int>((p.y - chip_.lo.y) / opt_.tile_size);
  gx = std::clamp(gx, 0, nx_ - 1);
  gy = std::clamp(gy, 0, ny_ - 1);
  return {gx, gy};
}

TileId TileGrid::tile_of_cell(int gx, int gy) const {
  return cell_tile_.at(static_cast<std::size_t>(cell_index(gx, gy)));
}

TileId TileGrid::tile_at(const Point& p) const {
  const auto [gx, gy] = cell_of_point(p);
  return tile_of_cell(gx, gy);
}

void TileGrid::consume(TileId t, double area) {
  LAC_CHECK(t.valid() && t.index() < capacity_.size());
  LAC_CHECK(area >= 0.0);
  capacity_[t.index()] -= area;
}

void TileGrid::scale_capacity(TileId t, double factor) {
  LAC_CHECK(t.valid() && t.index() < capacity_.size());
  LAC_CHECK(factor >= 0.0);
  capacity_[t.index()] *= factor;
  total_capacity_[t.index()] *= factor;
}

double TileGrid::total_channel_capacity() const {
  double sum = 0.0;
  for (int t = 0; t < num_tiles(); ++t)
    if (kind_[static_cast<std::size_t>(t)] == TileKind::kChannel)
      sum += capacity_[static_cast<std::size_t>(t)];
  return sum;
}

int TileGrid::num_soft_tiles() const {
  int n = 0;
  for (const TileKind k : kind_) n += (k == TileKind::kSoftBlock);
  return n;
}

std::string TileGrid::render_ascii() const {
  // '.' channel/dead, '#' hard block, letters for soft blocks.
  std::ostringstream os;
  for (int gy = ny_ - 1; gy >= 0; --gy) {
    for (int gx = 0; gx < nx_; ++gx) {
      const TileId t = tile_of_cell(gx, gy);
      switch (kind(t)) {
        case TileKind::kChannel: os << '.'; break;
        case TileKind::kHardBlock: os << '#'; break;
        case TileKind::kSoftBlock:
          os << static_cast<char>('a' + block(t).value() % 26);
          break;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace lac::tile
