#include "graph/diff_constraints.h"

#include <deque>

#include "base/check.h"

namespace lac::graph {

DiffConstraints::DiffConstraints(int num_vars) : num_vars_(num_vars) {
  LAC_CHECK(num_vars >= 0);
}

void DiffConstraints::add(int u, int v, std::int64_t c) {
  LAC_CHECK(u >= 0 && u < num_vars_);
  LAC_CHECK(v >= 0 && v < num_vars_);
  arcs_.push_back({u, v, c});
}

std::optional<std::vector<std::int64_t>> DiffConstraints::solve() const {
  // Adjacency: relaxation arc v -> u with weight c means
  // dist[u] <= dist[v] + c, matching x[u] - x[v] <= c.
  std::vector<int> head(static_cast<std::size_t>(num_vars_), -1);
  std::vector<int> next(arcs_.size(), -1);
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    next[i] = head[static_cast<std::size_t>(arcs_[i].v)];
    head[static_cast<std::size_t>(arcs_[i].v)] = static_cast<int>(i);
  }

  // Virtual source = all vertices start at distance 0 and in the queue.
  std::vector<std::int64_t> dist(static_cast<std::size_t>(num_vars_), 0);
  std::vector<int> relax_count(static_cast<std::size_t>(num_vars_), 0);
  std::vector<char> in_queue(static_cast<std::size_t>(num_vars_), 1);
  std::deque<int> queue;
  for (int v = 0; v < num_vars_; ++v) queue.push_back(v);

  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    in_queue[static_cast<std::size_t>(v)] = 0;
    for (int i = head[static_cast<std::size_t>(v)]; i != -1;
         i = next[static_cast<std::size_t>(i)]) {
      const Arc& a = arcs_[static_cast<std::size_t>(i)];
      if (dist[static_cast<std::size_t>(v)] + a.c <
          dist[static_cast<std::size_t>(a.u)]) {
        dist[static_cast<std::size_t>(a.u)] =
            dist[static_cast<std::size_t>(v)] + a.c;
        // A vertex relaxed more than num_vars_ times lies on (or is reachable
        // from) a negative cycle.
        if (++relax_count[static_cast<std::size_t>(a.u)] > num_vars_)
          return std::nullopt;
        if (!in_queue[static_cast<std::size_t>(a.u)]) {
          in_queue[static_cast<std::size_t>(a.u)] = 1;
          queue.push_back(a.u);
        }
      }
    }
  }
  return dist;
}

}  // namespace lac::graph
