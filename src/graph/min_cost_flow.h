// Minimum-cost flow via successive shortest paths with Johnson potentials,
// with explicit re-solve and warm-start support.
//
// This is the optimisation engine behind (weighted) min-area retiming: the
// retiming LP  min Σ b(v)·r(v)  s.t.  r(u) − r(v) ≤ c(u,v)  is the linear-
// programming dual of a transshipment problem, and the optimal node
// potentials of that flow problem recover an optimal integral retiming
// (see retime/min_area.cc for the exact reduction).
//
// Features required by that use and supported here:
//   * negative arc costs (clock constraints can have cost W(u,v) − 1 = −1
//     or lower) — handled by Bellman–Ford initial potentials;
//   * "infinite" capacities (use MinCostFlow::kInfCap);
//   * node supplies/demands (b-flow), with Σ supply = 0 enforced;
//   * exposure of the final potentials, which is what retiming reads back;
//   * re-solving the same instance: solve() is idempotent (residual
//     capacities are restored first), and resolve() warm-starts from the
//     previous optimum — see below.
//
// Shipping kernel (tree drain).  Flow is shipped in multi-source,
// multi-sink SSP phases over the excess set: every phase runs one
// Dijkstra on reduced costs seeded from *all* nodes with positive excess
// at distance 0, settles nodes until the settled demand covers the
// outstanding excess, lifts the potentials, and then drains flow to
// *every* demand node settled in the phase along its shortest-path-tree
// arcs — all of which sit at exactly zero reduced cost after the
// potential update, so reduced-cost optimality is preserved arc by arc.
// One phase therefore performs many augmentations; cold solves need far
// fewer Dijkstra phases than source-by-source single-path SSP, and a
// warm resolve() ships its (small) supply-imbalance delta in the same
// multi-source phases, so both paths benefit (docs/INCREMENTAL_MCF.md).
//
// Warm-start contract (docs/INCREMENTAL_MCF.md).  After a successful
// solve()/resolve() the instance retains its optimal flow and potentials.
// The caller may then change supplies (set_supply/add_supply) and arc
// costs (update_arc_cost) and call resolve():
//   * supply changes keep reduced-cost optimality intact — only the net
//     imbalance Δb is shipped, via multi-source Dijkstra phases on the
//     warm residual network (no Bellman–Ford, no shipping from zero);
//   * cost changes can leave residual arcs with negative reduced cost;
//     finite-capacity violations (which include cancelling flow pushed
//     onto now-expensive arcs) are repaired by cancel-and-reroute:
//     the violating residual arc is saturated and the displaced flow is
//     re-shipped along shortest paths together with Δb;
//   * violations on kInfCap arcs cannot be saturated; potentials are
//     refitted by one Bellman–Ford pass over the warm residual network,
//     and if that detects a negative residual cycle the call falls back
//     to a cold solve (still correct, counted in warm_fallbacks).
// Either way resolve() returns an exact optimum of the updated instance —
// never an approximation.
//
// Complexity: O(#phases · E log V) with #phases ≤ #augmentations ≤ V for
// b-flows (each phase drains at least one settled demand node); a warm
// resolve() pays only for the imbalance actually re-shipped.  Costs/flows
// are int64; the objective is accumulated in __int128 and exposed exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

namespace lac::graph {

class MinCostFlow {
 public:
  static constexpr std::int64_t kInfCap =
      std::numeric_limits<std::int64_t>::max() / 4;
  // Sentinel distance for nodes unreachable in the residual network
  // (residual_distances_from).
  static constexpr std::int64_t kUnreachable =
      std::numeric_limits<std::int64_t>::max() / 4;

  explicit MinCostFlow(int num_nodes);

  // Adds a directed arc; returns its index for later flow queries.
  // Invalidates any warm state (the next resolve() solves cold).
  int add_arc(int from, int to, std::int64_t capacity, std::int64_t cost);

  // Positive supply = net out-flow the node must ship; negative = demand.
  void set_supply(int node, std::int64_t supply);
  void add_supply(int node, std::int64_t delta);

  // Changes the cost of an existing arc (index as returned by add_arc).
  // The warm state is kept; the next resolve() repairs any reduced-cost
  // violations the change introduced instead of solving from zero.
  void update_arc_cost(int arc, std::int64_t cost);
  [[nodiscard]] std::int64_t arc_cost(int arc) const;

  struct Solution {
    // Exact optimum objective Σ cost·flow.  Accumulated in __int128 and
    // checked to fit — never silently narrowed.
    std::int64_t total_cost_exact = 0;
    // The same value as a double, kept for reporting convenience only.
    double total_cost = 0.0;
    // Flow on each arc, indexed by add_arc() return values.
    std::vector<std::int64_t> flow;
    // Node potentials π at optimality: for every arc (u,v) with residual
    // capacity, cost(u,v) + π(u) − π(v) ≥ 0.  These are the dual values the
    // retiming layer consumes.
    std::vector<std::int64_t> potential;
  };

  // Cold solve: restores every arc's residual capacity to its constructed
  // value and ships all supplies from a zero flow.  Well-defined any
  // number of times on the same instance — a second solve() returns the
  // same solution as the first.  Returns nullopt if the instance is
  // infeasible (supplies cannot be routed) or unbounded (negative cycle
  // of infinite-capacity arcs).
  [[nodiscard]] std::optional<Solution> solve();

  // Warm re-solve after supply and/or cost updates: reuses the previous
  // optimum's flow and potentials and repairs them (see the warm-start
  // contract above).  Falls back to — and is exactly equivalent to — a
  // cold solve() when no previous optimum exists.
  [[nodiscard]] std::optional<Solution> resolve();

  // Shortest distances from `root` to every node over the *current*
  // residual network, measured in original arc costs (computed with
  // Dijkstra on reduced costs, so it is cheap).  Only valid after a
  // successful solve()/resolve() with no updates since.  Unreachable
  // nodes get kUnreachable.
  //
  // For an optimal flow these distances are *canonical*: every optimal
  // flow of the instance yields the same vector (they are the marginal
  // costs of shipping one more unit root→v, a property of the LP, not of
  // the particular optimum found).  The retiming layer derives its labels
  // from them so that cold and warm solves agree bit-for-bit.
  [[nodiscard]] std::vector<std::int64_t> residual_distances_from(
      int root) const;

  // Solver internals of the most recent solve()/resolve() call — the
  // augmentation and relaxation counts the observability layer reports.
  struct SolveStats {
    int phases = 0;                 // multi-source Dijkstra phases run
    int augmentations = 0;          // tree-drain pushes that shipped flow
    long long dijkstra_pops = 0;    // heap extractions across all phases
    long long arcs_relaxed = 0;     // residual arcs scanned (Dijkstra phase)
    long long spfa_relaxations = 0; // Bellman–Ford (SPFA) phase relaxations
    std::int64_t flow_shipped = 0;  // total units pushed along paths
    bool warm = false;              // this solve reused the previous optimum
    int repaired_arcs = 0;          // residual arcs cancel-and-rerouted
    int warm_fallbacks = 0;         // warm attempts that fell back to cold
  };
  [[nodiscard]] const SolveStats& stats() const { return stats_; }

  // Test/debug hook: one record per flow unit path pushed by a tree-drain
  // phase, with the arc's reduced cost measured *after* that phase's
  // potential update (the tree-drain invariant says it is always zero).
  struct PhasePush {
    int arc = 0;  // residual arc index (forward arcs even, backward odd)
    std::int64_t reduced_cost_after = 0;
  };
  // Called once per phase that pushed flow, with the 1-based phase number
  // of the current solve and every residual arc pushed in that phase.
  // Unset (the default) costs nothing; setting it is meant for tests.
  using PhaseAuditFn =
      std::function<void(int phase, const std::vector<PhasePush>& pushes)>;
  void set_phase_audit(PhaseAuditFn fn) { phase_audit_ = std::move(fn); }

  [[nodiscard]] int num_nodes() const { return n_; }
  [[nodiscard]] int num_arcs() const { return static_cast<int>(arc_to_.size()) / 2; }

  // Logical heap footprint of the residual network and warm state
  // (element counts × element sizes, not allocator capacity) —
  // deterministic for any thread count and identical for warm and cold
  // instances of the same network, reported as mem.mcf_network_bytes.
  [[nodiscard]] std::int64_t bytes_used() const;

 private:
  // Paired-arc residual representation: arc 2i is forward, 2i+1 backward.
  int n_;
  std::vector<int> arc_to_;
  std::vector<std::int64_t> arc_cap_;   // residual capacity
  std::vector<std::int64_t> arc_cost_;
  std::vector<std::int64_t> orig_cap_;  // constructed capacities (reset)
  std::vector<std::vector<int>> out_;   // node -> residual arc indices
  std::vector<std::int64_t> supply_;
  SolveStats stats_;
  PhaseAuditFn phase_audit_;

  // Warm state: valid after a successful solve()/resolve().  `pi_` keeps
  // reduced costs nonnegative over the residual network left by the flow
  // that ships `shipped_`.
  bool warm_valid_ = false;
  std::vector<std::int64_t> pi_;
  std::vector<std::int64_t> shipped_;
  std::vector<int> dirty_arcs_;  // arcs re-costed since the last optimum

  // Bellman–Ford over residual arcs with cap > 0; nullopt on negative cycle.
  [[nodiscard]] std::optional<std::vector<std::int64_t>> initial_potentials();

  // Shared SSP core: ships `excess` to zero over the current residual
  // network, starting from valid potentials `pi`, in multi-source
  // multi-sink tree-drain phases (see the kernel comment at the top).
  // Returns false when some excess cannot be routed (infeasible).
  [[nodiscard]] bool ship(std::vector<std::int64_t>& excess,
                          std::vector<std::int64_t>& pi);

  [[nodiscard]] std::optional<Solution> finish_solution(
      std::vector<std::int64_t> pi);
};

}  // namespace lac::graph
