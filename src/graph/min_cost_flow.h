// Minimum-cost flow via successive shortest paths with Johnson potentials.
//
// This is the optimisation engine behind (weighted) min-area retiming: the
// retiming LP  min Σ b(v)·r(v)  s.t.  r(u) − r(v) ≤ c(u,v)  is the linear-
// programming dual of a transshipment problem, and the optimal node
// potentials of that flow problem recover an optimal integral retiming
// (see retime/min_area.cc for the exact reduction).
//
// Features required by that use and supported here:
//   * negative arc costs (clock constraints can have cost W(u,v) − 1 = −1
//     or lower) — handled by Bellman–Ford initial potentials;
//   * "infinite" capacities (use MinCostFlow::kInfCap);
//   * node supplies/demands (b-flow), with Σ supply = 0 enforced;
//   * exposure of the final potentials, which is what retiming reads back.
//
// Complexity: O(#augmentations · E log V) with #augmentations ≤ V for
// b-flows shipped greedily source-by-source.  Costs/flows are int64;
// the objective is accumulated in __int128 to avoid overflow.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace lac::graph {

class MinCostFlow {
 public:
  static constexpr std::int64_t kInfCap =
      std::numeric_limits<std::int64_t>::max() / 4;

  explicit MinCostFlow(int num_nodes);

  // Adds a directed arc; returns its index for later flow queries.
  int add_arc(int from, int to, std::int64_t capacity, std::int64_t cost);

  // Positive supply = net out-flow the node must ship; negative = demand.
  void set_supply(int node, std::int64_t supply);
  void add_supply(int node, std::int64_t delta);

  struct Solution {
    // Exact optimum objective (Σ cost·flow), also as double for reporting.
    double total_cost = 0.0;
    // Flow on each arc, indexed by add_arc() return values.
    std::vector<std::int64_t> flow;
    // Node potentials π at optimality: for every arc (u,v) with residual
    // capacity, cost(u,v) + π(u) − π(v) ≥ 0.  These are the dual values the
    // retiming layer consumes.
    std::vector<std::int64_t> potential;
  };

  // Returns nullopt if the instance is infeasible (supplies cannot be
  // routed) or unbounded (negative cycle of infinite-capacity arcs).
  [[nodiscard]] std::optional<Solution> solve();

  // Solver internals of the most recent solve() call — the augmentation
  // and relaxation counts the observability layer reports.
  struct SolveStats {
    int augmentations = 0;          // shortest-path phases that shipped flow
    long long dijkstra_pops = 0;    // heap extractions across all phases
    long long arcs_relaxed = 0;     // residual arcs scanned (Dijkstra phase)
    long long spfa_relaxations = 0; // Bellman–Ford (SPFA) phase relaxations
    std::int64_t flow_shipped = 0;  // total units pushed along paths
  };
  [[nodiscard]] const SolveStats& stats() const { return stats_; }

  [[nodiscard]] int num_nodes() const { return n_; }
  [[nodiscard]] int num_arcs() const { return static_cast<int>(arc_to_.size()) / 2; }

 private:
  // Paired-arc residual representation: arc 2i is forward, 2i+1 backward.
  int n_;
  std::vector<int> arc_to_;
  std::vector<std::int64_t> arc_cap_;   // residual capacity
  std::vector<std::int64_t> arc_cost_;
  std::vector<std::vector<int>> out_;   // node -> residual arc indices
  std::vector<std::int64_t> supply_;
  SolveStats stats_;

  // Bellman–Ford over residual arcs with cap > 0; nullopt on negative cycle.
  [[nodiscard]] std::optional<std::vector<std::int64_t>> initial_potentials();
};

}  // namespace lac::graph
