// Minimum-cost flow via successive shortest paths with Johnson potentials,
// with explicit re-solve and warm-start support.
//
// This is the optimisation engine behind (weighted) min-area retiming: the
// retiming LP  min Σ b(v)·r(v)  s.t.  r(u) − r(v) ≤ c(u,v)  is the linear-
// programming dual of a transshipment problem, and the optimal node
// potentials of that flow problem recover an optimal integral retiming
// (see retime/min_area.cc for the exact reduction).
//
// Features required by that use and supported here:
//   * negative arc costs (clock constraints can have cost W(u,v) − 1 = −1
//     or lower) — handled by Bellman–Ford initial potentials;
//   * "infinite" capacities (use MinCostFlow::kInfCap);
//   * node supplies/demands (b-flow), with Σ supply = 0 enforced;
//   * exposure of the final potentials, which is what retiming reads back;
//   * re-solving the same instance: solve() is idempotent (residual
//     capacities are restored first), and resolve() warm-starts from the
//     previous optimum — see below.
//
// Warm-start contract (docs/INCREMENTAL_MCF.md).  After a successful
// solve()/resolve() the instance retains its optimal flow and potentials.
// The caller may then change supplies (set_supply/add_supply) and arc
// costs (update_arc_cost) and call resolve():
//   * supply changes keep reduced-cost optimality intact — only the net
//     imbalance Δb is shipped, via Dijkstra phases on the warm residual
//     network (no Bellman–Ford, no shipping from zero);
//   * cost changes can leave residual arcs with negative reduced cost;
//     finite-capacity violations (which include cancelling flow pushed
//     onto now-expensive arcs) are repaired by cancel-and-reroute:
//     the violating residual arc is saturated and the displaced flow is
//     re-shipped along shortest paths together with Δb;
//   * violations on kInfCap arcs cannot be saturated; potentials are
//     refitted by one Bellman–Ford pass over the warm residual network,
//     and if that detects a negative residual cycle the call falls back
//     to a cold solve (still correct, counted in warm_fallbacks).
// Either way resolve() returns an exact optimum of the updated instance —
// never an approximation.
//
// Complexity: O(#augmentations · E log V) with #augmentations ≤ V for
// b-flows shipped greedily source-by-source; a warm resolve() pays only
// for the imbalance actually re-shipped.  Costs/flows are int64; the
// objective is accumulated in __int128 and exposed exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace lac::graph {

class MinCostFlow {
 public:
  static constexpr std::int64_t kInfCap =
      std::numeric_limits<std::int64_t>::max() / 4;
  // Sentinel distance for nodes unreachable in the residual network
  // (residual_distances_from).
  static constexpr std::int64_t kUnreachable =
      std::numeric_limits<std::int64_t>::max() / 4;

  explicit MinCostFlow(int num_nodes);

  // Adds a directed arc; returns its index for later flow queries.
  // Invalidates any warm state (the next resolve() solves cold).
  int add_arc(int from, int to, std::int64_t capacity, std::int64_t cost);

  // Positive supply = net out-flow the node must ship; negative = demand.
  void set_supply(int node, std::int64_t supply);
  void add_supply(int node, std::int64_t delta);

  // Changes the cost of an existing arc (index as returned by add_arc).
  // The warm state is kept; the next resolve() repairs any reduced-cost
  // violations the change introduced instead of solving from zero.
  void update_arc_cost(int arc, std::int64_t cost);
  [[nodiscard]] std::int64_t arc_cost(int arc) const;

  struct Solution {
    // Exact optimum objective Σ cost·flow.  Accumulated in __int128 and
    // checked to fit — never silently narrowed.
    std::int64_t total_cost_exact = 0;
    // The same value as a double, kept for reporting convenience only.
    double total_cost = 0.0;
    // Flow on each arc, indexed by add_arc() return values.
    std::vector<std::int64_t> flow;
    // Node potentials π at optimality: for every arc (u,v) with residual
    // capacity, cost(u,v) + π(u) − π(v) ≥ 0.  These are the dual values the
    // retiming layer consumes.
    std::vector<std::int64_t> potential;
  };

  // Cold solve: restores every arc's residual capacity to its constructed
  // value and ships all supplies from a zero flow.  Well-defined any
  // number of times on the same instance — a second solve() returns the
  // same solution as the first.  Returns nullopt if the instance is
  // infeasible (supplies cannot be routed) or unbounded (negative cycle
  // of infinite-capacity arcs).
  [[nodiscard]] std::optional<Solution> solve();

  // Warm re-solve after supply and/or cost updates: reuses the previous
  // optimum's flow and potentials and repairs them (see the warm-start
  // contract above).  Falls back to — and is exactly equivalent to — a
  // cold solve() when no previous optimum exists.
  [[nodiscard]] std::optional<Solution> resolve();

  // Shortest distances from `root` to every node over the *current*
  // residual network, measured in original arc costs (computed with
  // Dijkstra on reduced costs, so it is cheap).  Only valid after a
  // successful solve()/resolve() with no updates since.  Unreachable
  // nodes get kUnreachable.
  //
  // For an optimal flow these distances are *canonical*: every optimal
  // flow of the instance yields the same vector (they are the marginal
  // costs of shipping one more unit root→v, a property of the LP, not of
  // the particular optimum found).  The retiming layer derives its labels
  // from them so that cold and warm solves agree bit-for-bit.
  [[nodiscard]] std::vector<std::int64_t> residual_distances_from(
      int root) const;

  // Solver internals of the most recent solve()/resolve() call — the
  // augmentation and relaxation counts the observability layer reports.
  struct SolveStats {
    int augmentations = 0;          // shortest-path phases that shipped flow
    long long dijkstra_pops = 0;    // heap extractions across all phases
    long long arcs_relaxed = 0;     // residual arcs scanned (Dijkstra phase)
    long long spfa_relaxations = 0; // Bellman–Ford (SPFA) phase relaxations
    std::int64_t flow_shipped = 0;  // total units pushed along paths
    bool warm = false;              // this solve reused the previous optimum
    int repaired_arcs = 0;          // residual arcs cancel-and-rerouted
    int warm_fallbacks = 0;         // warm attempts that fell back to cold
  };
  [[nodiscard]] const SolveStats& stats() const { return stats_; }

  [[nodiscard]] int num_nodes() const { return n_; }
  [[nodiscard]] int num_arcs() const { return static_cast<int>(arc_to_.size()) / 2; }

 private:
  // Paired-arc residual representation: arc 2i is forward, 2i+1 backward.
  int n_;
  std::vector<int> arc_to_;
  std::vector<std::int64_t> arc_cap_;   // residual capacity
  std::vector<std::int64_t> arc_cost_;
  std::vector<std::int64_t> orig_cap_;  // constructed capacities (reset)
  std::vector<std::vector<int>> out_;   // node -> residual arc indices
  std::vector<std::int64_t> supply_;
  SolveStats stats_;

  // Warm state: valid after a successful solve()/resolve().  `pi_` keeps
  // reduced costs nonnegative over the residual network left by the flow
  // that ships `shipped_`.
  bool warm_valid_ = false;
  std::vector<std::int64_t> pi_;
  std::vector<std::int64_t> shipped_;
  std::vector<int> dirty_arcs_;  // arcs re-costed since the last optimum

  // Bellman–Ford over residual arcs with cap > 0; nullopt on negative cycle.
  [[nodiscard]] std::optional<std::vector<std::int64_t>> initial_potentials();

  // Shared SSP core: ships `excess` to zero over the current residual
  // network, starting from valid potentials `pi`.  Returns false when some
  // excess cannot be routed (infeasible).
  [[nodiscard]] bool ship(std::vector<std::int64_t>& excess,
                          std::vector<std::int64_t>& pi);

  [[nodiscard]] std::optional<Solution> finish_solution(
      std::vector<std::int64_t> pi);
};

}  // namespace lac::graph
