#include "graph/dag.h"

#include <algorithm>
#include <deque>

#include "base/check.h"

namespace lac::graph {

std::optional<std::vector<int>> topo_order(
    int num_vertices, const std::vector<std::pair<int, int>>& arcs) {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(num_vertices));
  std::vector<int> indeg(static_cast<std::size_t>(num_vertices), 0);
  for (const auto& [t, h] : arcs) {
    LAC_CHECK(t >= 0 && t < num_vertices && h >= 0 && h < num_vertices);
    out[static_cast<std::size_t>(t)].push_back(h);
    ++indeg[static_cast<std::size_t>(h)];
  }
  std::deque<int> ready;
  for (int v = 0; v < num_vertices; ++v)
    if (indeg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(num_vertices));
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (const int w : out[static_cast<std::size_t>(v)])
      if (--indeg[static_cast<std::size_t>(w)] == 0) ready.push_back(w);
  }
  if (static_cast<int>(order.size()) != num_vertices) return std::nullopt;
  return order;
}

std::vector<double> longest_path_to(
    int num_vertices, const std::vector<std::pair<int, int>>& arcs,
    const std::vector<double>& vertex_delay) {
  LAC_CHECK(static_cast<int>(vertex_delay.size()) == num_vertices);
  const auto order = topo_order(num_vertices, arcs);
  LAC_CHECK_MSG(order.has_value(), "longest_path_to requires a DAG");

  std::vector<std::vector<int>> out(static_cast<std::size_t>(num_vertices));
  for (const auto& [t, h] : arcs) out[static_cast<std::size_t>(t)].push_back(h);

  std::vector<double> dist = vertex_delay;  // path = just the vertex itself
  for (const int v : *order) {
    for (const int w : out[static_cast<std::size_t>(v)]) {
      dist[static_cast<std::size_t>(w)] =
          std::max(dist[static_cast<std::size_t>(w)],
                   dist[static_cast<std::size_t>(v)] +
                       vertex_delay[static_cast<std::size_t>(w)]);
    }
  }
  return dist;
}

}  // namespace lac::graph
