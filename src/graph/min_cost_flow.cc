#include "graph/min_cost_flow.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace lac::graph {

namespace {
constexpr std::int64_t kInfDist = std::numeric_limits<std::int64_t>::max() / 4;

void check_balanced(const std::vector<std::int64_t>& supply) {
  std::int64_t total = 0;
  for (const std::int64_t s : supply) total += s;
  LAC_CHECK_MSG(total == 0, "supplies must sum to zero, got " << total);
}
}  // namespace

MinCostFlow::MinCostFlow(int num_nodes)
    : n_(num_nodes),
      out_(static_cast<std::size_t>(num_nodes)),
      supply_(static_cast<std::size_t>(num_nodes), 0) {
  LAC_CHECK(num_nodes >= 0);
}

std::int64_t MinCostFlow::bytes_used() const {
  std::size_t bytes = arc_to_.size() * sizeof(int) +
                      arc_cap_.size() * sizeof(std::int64_t) +
                      arc_cost_.size() * sizeof(std::int64_t) +
                      orig_cap_.size() * sizeof(std::int64_t) +
                      supply_.size() * sizeof(std::int64_t) +
                      pi_.size() * sizeof(std::int64_t) +
                      shipped_.size() * sizeof(std::int64_t) +
                      dirty_arcs_.size() * sizeof(int);
  bytes += out_.size() * sizeof(std::vector<int>);
  for (const std::vector<int>& adj : out_) bytes += adj.size() * sizeof(int);
  return static_cast<std::int64_t>(bytes);
}

int MinCostFlow::add_arc(int from, int to, std::int64_t capacity,
                         std::int64_t cost) {
  LAC_CHECK(from >= 0 && from < n_);
  LAC_CHECK(to >= 0 && to < n_);
  LAC_CHECK(capacity >= 0);
  const int idx = static_cast<int>(arc_to_.size());
  arc_to_.push_back(to);
  arc_cap_.push_back(capacity);
  arc_cost_.push_back(cost);
  orig_cap_.push_back(capacity);
  out_[static_cast<std::size_t>(from)].push_back(idx);
  arc_to_.push_back(from);
  arc_cap_.push_back(0);
  arc_cost_.push_back(-cost);
  orig_cap_.push_back(0);
  out_[static_cast<std::size_t>(to)].push_back(idx + 1);
  warm_valid_ = false;  // the previous optimum does not cover the new arc
  return idx / 2;
}

void MinCostFlow::set_supply(int node, std::int64_t supply) {
  LAC_CHECK(node >= 0 && node < n_);
  supply_[static_cast<std::size_t>(node)] = supply;
}

void MinCostFlow::add_supply(int node, std::int64_t delta) {
  LAC_CHECK(node >= 0 && node < n_);
  supply_[static_cast<std::size_t>(node)] += delta;
}

void MinCostFlow::update_arc_cost(int arc, std::int64_t cost) {
  LAC_CHECK(arc >= 0 && arc < num_arcs());
  const auto f = static_cast<std::size_t>(2 * arc);
  if (arc_cost_[f] == cost) return;
  arc_cost_[f] = cost;
  arc_cost_[f + 1] = -cost;
  dirty_arcs_.push_back(arc);
}

std::int64_t MinCostFlow::arc_cost(int arc) const {
  LAC_CHECK(arc >= 0 && arc < num_arcs());
  return arc_cost_[static_cast<std::size_t>(2 * arc)];
}

std::optional<std::vector<std::int64_t>> MinCostFlow::initial_potentials() {
  // SPFA from a virtual source connected to every node with 0-cost arcs,
  // over residual arcs that currently have capacity.  More than n
  // relaxations of one node certifies a negative cycle (unbounded LP).
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n_), 0);
  std::vector<int> relax_count(static_cast<std::size_t>(n_), 0);
  std::vector<char> in_queue(static_cast<std::size_t>(n_), 1);
  std::deque<int> queue;
  for (int v = 0; v < n_; ++v) queue.push_back(v);

  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    in_queue[static_cast<std::size_t>(u)] = 0;
    for (const int a : out_[static_cast<std::size_t>(u)]) {
      if (arc_cap_[static_cast<std::size_t>(a)] <= 0) continue;
      const int v = arc_to_[static_cast<std::size_t>(a)];
      const std::int64_t nd =
          dist[static_cast<std::size_t>(u)] + arc_cost_[static_cast<std::size_t>(a)];
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        ++stats_.spfa_relaxations;
        if (++relax_count[static_cast<std::size_t>(v)] > n_)
          return std::nullopt;
        if (!in_queue[static_cast<std::size_t>(v)]) {
          in_queue[static_cast<std::size_t>(v)] = 1;
          queue.push_back(v);
        }
      }
    }
  }
  return dist;
}

bool MinCostFlow::ship(std::vector<std::int64_t>& excess,
                       std::vector<std::int64_t>& pi) {
  // Multi-source multi-sink tree-drain SSP (see min_cost_flow.h).  Each
  // phase runs one Dijkstra on reduced costs seeded from every node with
  // positive excess, settles nodes until the settled demand covers the
  // outstanding excess, lifts the potentials, and then pushes flow to
  // every settled demand node along its shortest-path-tree arcs — which
  // all sit at exactly zero reduced cost after the potential update, so
  // reduced-cost optimality is preserved push by push.
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n_));
  std::vector<int> parent_arc(static_cast<std::size_t>(n_));
  std::vector<char> settled(static_cast<std::size_t>(n_));
  std::vector<int> settled_sinks;  // demand nodes in settlement order
  std::vector<PhasePush> audit;
  using HeapItem = std::pair<std::int64_t, int>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  std::int64_t remaining = 0;  // total positive excess still to ship
  for (int v = 0; v < n_; ++v)
    remaining += std::max<std::int64_t>(excess[static_cast<std::size_t>(v)], 0);

  while (remaining > 0) {
    // --- Dijkstra phase over the whole excess set. ---
    std::fill(dist.begin(), dist.end(), kInfDist);
    std::fill(parent_arc.begin(), parent_arc.end(), -1);
    std::fill(settled.begin(), settled.end(), 0);
    settled_sinks.clear();
    for (int v = 0; v < n_; ++v) {
      if (excess[static_cast<std::size_t>(v)] <= 0) continue;
      dist[static_cast<std::size_t>(v)] = 0;
      heap.push({0, v});
    }
    std::int64_t settled_demand = 0;
    std::int64_t frontier = 0;  // distance of the last node settled
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      ++stats_.dijkstra_pops;
      if (d != dist[static_cast<std::size_t>(u)] ||
          settled[static_cast<std::size_t>(u)])
        continue;
      settled[static_cast<std::size_t>(u)] = 1;
      frontier = d;
      if (excess[static_cast<std::size_t>(u)] < 0) {
        settled_sinks.push_back(u);
        settled_demand += -excess[static_cast<std::size_t>(u)];
        // Enough settled demand to absorb everything still outstanding:
        // no need to settle (or relax) any further this phase.
        if (settled_demand >= remaining) break;
      }
      for (const int a : out_[static_cast<std::size_t>(u)]) {
        if (arc_cap_[static_cast<std::size_t>(a)] <= 0) continue;
        ++stats_.arcs_relaxed;
        const int v = arc_to_[static_cast<std::size_t>(a)];
        const std::int64_t rc = arc_cost_[static_cast<std::size_t>(a)] +
                                pi[static_cast<std::size_t>(u)] -
                                pi[static_cast<std::size_t>(v)];
        LAC_CHECK_MSG(rc >= 0, "negative reduced cost " << rc);
        const std::int64_t nd = d + rc;
        if (nd < dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] = nd;
          parent_arc[static_cast<std::size_t>(v)] = a;
          heap.push({nd, v});
        }
      }
    }
    while (!heap.empty()) heap.pop();

    if (settled_sinks.empty()) return false;  // no demand reachable
    ++stats_.phases;

    // Lift potentials so reduced costs stay nonnegative: settled nodes by
    // their exact distance, everything else by the settlement frontier
    // (their true distance is at least `frontier`, so validity holds on
    // every residual arc crossing the settled boundary).
    for (int v = 0; v < n_; ++v) {
      pi[static_cast<std::size_t>(v)] +=
          settled[static_cast<std::size_t>(v)]
              ? dist[static_cast<std::size_t>(v)]
              : frontier;
    }

    // --- Tree drain: push to every settled demand node, in settlement
    // order, along its shortest-path-tree arcs.  Earlier pushes may
    // deplete a shared tree arc or a root's excess; such sinks push less
    // (or nothing) this phase and are picked up by the next one.
    for (const int sink : settled_sinks) {
      std::int64_t push = -excess[static_cast<std::size_t>(sink)];
      int source = sink;
      while (parent_arc[static_cast<std::size_t>(source)] != -1) {
        const int a = parent_arc[static_cast<std::size_t>(source)];
        push = std::min(push, arc_cap_[static_cast<std::size_t>(a)]);
        source = arc_to_[static_cast<std::size_t>(a ^ 1)];
      }
      push = std::min(push, excess[static_cast<std::size_t>(source)]);
      if (push <= 0) continue;
      if (phase_audit_) {
        for (int v = sink; v != source;) {
          const int a = parent_arc[static_cast<std::size_t>(v)];
          const int u = arc_to_[static_cast<std::size_t>(a ^ 1)];
          audit.push_back(
              {a, arc_cost_[static_cast<std::size_t>(a)] +
                      pi[static_cast<std::size_t>(u)] -
                      pi[static_cast<std::size_t>(v)]});
          v = u;
        }
      }
      for (int v = sink; v != source;) {
        const int a = parent_arc[static_cast<std::size_t>(v)];
        arc_cap_[static_cast<std::size_t>(a)] -= push;
        arc_cap_[static_cast<std::size_t>(a ^ 1)] += push;
        v = arc_to_[static_cast<std::size_t>(a ^ 1)];
      }
      excess[static_cast<std::size_t>(source)] -= push;
      excess[static_cast<std::size_t>(sink)] += push;
      remaining -= push;
      ++stats_.augmentations;
      stats_.flow_shipped += push;
    }
    if (phase_audit_) {
      phase_audit_(stats_.phases, audit);
      audit.clear();
    }
  }
  return true;
}

std::optional<MinCostFlow::Solution> MinCostFlow::finish_solution(
    std::vector<std::int64_t> pi) {
  Solution sol;
  sol.flow.resize(static_cast<std::size_t>(num_arcs()));
  __int128 total_cost = 0;
  for (int i = 0; i < num_arcs(); ++i) {
    // Flow on forward arc 2i equals residual capacity of its twin 2i+1
    // (backward arcs are constructed with zero capacity).
    const std::int64_t f = arc_cap_[static_cast<std::size_t>(2 * i + 1)];
    sol.flow[static_cast<std::size_t>(i)] = f;
    total_cost +=
        static_cast<__int128>(arc_cost_[static_cast<std::size_t>(2 * i)]) * f;
  }
  LAC_CHECK_MSG(
      total_cost <= static_cast<__int128>(
                        std::numeric_limits<std::int64_t>::max()) &&
          total_cost >= static_cast<__int128>(
                            std::numeric_limits<std::int64_t>::min()),
      "min-cost-flow objective overflows int64");
  sol.total_cost_exact = static_cast<std::int64_t>(total_cost);
  sol.total_cost = static_cast<double>(sol.total_cost_exact);

  // Retain the warm state for a future resolve().
  pi_ = pi;
  shipped_ = supply_;
  dirty_arcs_.clear();
  warm_valid_ = true;

  sol.potential = std::move(pi);
  return sol;
}

std::optional<MinCostFlow::Solution> MinCostFlow::solve() {
  check_balanced(supply_);

  stats_ = {};
  warm_valid_ = false;
  dirty_arcs_.clear();
  arc_cap_ = orig_cap_;  // re-solve from zero flow, whatever ran before

  obs::Span span("mcf.solve");
  span.annotate("nodes", n_);
  span.annotate("arcs", num_arcs());
  span.annotate("warm", false);
  const auto finish = [&](bool feasible) {
    span.annotate("feasible", feasible);
    span.annotate("phases", stats_.phases);
    span.annotate("augmentations", stats_.augmentations);
    span.annotate("dijkstra_pops", stats_.dijkstra_pops);
    span.annotate("arcs_relaxed", stats_.arcs_relaxed);
    span.annotate("spfa_relaxations", stats_.spfa_relaxations);
    span.annotate("flow_shipped", stats_.flow_shipped);
    obs::count("mcf.solves");
    if (!feasible) obs::count("mcf.infeasible_solves");
    obs::count("mcf.phases", stats_.phases);
    obs::count("mcf.augmentations", stats_.augmentations);
    obs::count("mcf.arcs_relaxed", stats_.arcs_relaxed);
    obs::count("mcf.spfa_relaxations", stats_.spfa_relaxations);
    obs::observe("mcf.solve_seconds", span.elapsed_seconds());
  };

  auto pot = initial_potentials();
  if (!pot) {
    finish(false);
    return std::nullopt;  // negative cycle: unbounded
  }
  std::vector<std::int64_t> pi = std::move(*pot);
  std::vector<std::int64_t> excess = supply_;

  const bool feasible = ship(excess, pi);
  finish(feasible);
  if (!feasible) return std::nullopt;
  return finish_solution(std::move(pi));
}

std::optional<MinCostFlow::Solution> MinCostFlow::resolve() {
  if (!warm_valid_) return solve();
  check_balanced(supply_);

  stats_ = {};
  stats_.warm = true;

  obs::Span span("mcf.solve");
  span.annotate("nodes", n_);
  span.annotate("arcs", num_arcs());
  span.annotate("warm", true);

  // The previous flow ships `shipped_`; only the supply delta is left.
  std::vector<std::int64_t> excess(static_cast<std::size_t>(n_));
  for (int v = 0; v < n_; ++v)
    excess[static_cast<std::size_t>(v)] =
        supply_[static_cast<std::size_t>(v)] -
        shipped_[static_cast<std::size_t>(v)];

  if (!dirty_arcs_.empty()) {
    // Cost updates may have broken reduced-cost optimality.  Violations on
    // finite residual arcs (including the backward arcs of flow pushed onto
    // now-expensive arcs) are repaired by cancel-and-reroute: saturate the
    // violating arc and let ship() re-route the displaced units.  A
    // violation on a kInfCap arc cannot be saturated; refit the potentials
    // over the warm residual network instead.
    bool need_refit = false;
    for (const int idx : dirty_arcs_) {
      for (const int a : {2 * idx, 2 * idx + 1}) {
        const auto sa = static_cast<std::size_t>(a);
        if (arc_cap_[sa] <= 0) continue;
        const int u = arc_to_[static_cast<std::size_t>(a ^ 1)];
        const int v = arc_to_[sa];
        const std::int64_t rc = arc_cost_[sa] +
                                pi_[static_cast<std::size_t>(u)] -
                                pi_[static_cast<std::size_t>(v)];
        if (rc >= 0) continue;
        if (arc_cap_[sa] >= kInfCap / 2) {
          need_refit = true;
          break;
        }
      }
      if (need_refit) break;
    }
    if (need_refit) {
      auto pot = initial_potentials();
      if (!pot) {
        // Negative cycle in the warm residual network: a bounded repair
        // would need explicit cycle cancelling; resort to a cold solve
        // (exact, just not incremental).
        span.annotate("warm_fallback", true);
        obs::count("mcf.warm_fallbacks");
        auto sol = solve();
        stats_.warm_fallbacks = 1;
        return sol;
      }
      span.annotate("warm_refit", true);
      pi_ = std::move(*pot);
    } else {
      for (const int idx : dirty_arcs_) {
        for (const int a : {2 * idx, 2 * idx + 1}) {
          const auto sa = static_cast<std::size_t>(a);
          if (arc_cap_[sa] <= 0) continue;
          const int u = arc_to_[static_cast<std::size_t>(a ^ 1)];
          const int v = arc_to_[sa];
          const std::int64_t rc = arc_cost_[sa] +
                                  pi_[static_cast<std::size_t>(u)] -
                                  pi_[static_cast<std::size_t>(v)];
          if (rc >= 0) continue;
          const std::int64_t delta = arc_cap_[sa];
          arc_cap_[sa] = 0;
          arc_cap_[static_cast<std::size_t>(a ^ 1)] += delta;
          excess[static_cast<std::size_t>(u)] -= delta;
          excess[static_cast<std::size_t>(v)] += delta;
          ++stats_.repaired_arcs;
        }
      }
    }
    dirty_arcs_.clear();
  }

  std::vector<std::int64_t> pi = pi_;
  const bool feasible = ship(excess, pi);

  span.annotate("feasible", feasible);
  span.annotate("phases", stats_.phases);
  span.annotate("augmentations", stats_.augmentations);
  span.annotate("dijkstra_pops", stats_.dijkstra_pops);
  span.annotate("arcs_relaxed", stats_.arcs_relaxed);
  span.annotate("spfa_relaxations", stats_.spfa_relaxations);
  span.annotate("flow_shipped", stats_.flow_shipped);
  span.annotate("repaired_arcs", stats_.repaired_arcs);
  obs::count("mcf.solves");
  obs::count("mcf.warm_restarts");
  obs::count("mcf.repaired_arcs", stats_.repaired_arcs);
  if (!feasible) obs::count("mcf.infeasible_solves");
  obs::count("mcf.phases", stats_.phases);
  obs::count("mcf.augmentations", stats_.augmentations);
  obs::count("mcf.arcs_relaxed", stats_.arcs_relaxed);
  obs::count("mcf.spfa_relaxations", stats_.spfa_relaxations);
  obs::observe("mcf.solve_seconds", span.elapsed_seconds());

  if (!feasible) {
    warm_valid_ = false;
    return std::nullopt;
  }
  return finish_solution(std::move(pi));
}

std::vector<std::int64_t> MinCostFlow::residual_distances_from(
    int root) const {
  LAC_CHECK(root >= 0 && root < n_);
  LAC_CHECK_MSG(warm_valid_ && dirty_arcs_.empty(),
                "residual distances need an up-to-date optimum");
  // Dijkstra on reduced costs (nonnegative by the warm invariant), then
  // translate back to original-cost distances:
  //   d(v) = d^pi(v) − pi(root) + pi(v).
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n_), kInfDist);
  using HeapItem = std::pair<std::int64_t, int>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  dist[static_cast<std::size_t>(root)] = 0;
  heap.push({0, root});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[static_cast<std::size_t>(u)]) continue;
    for (const int a : out_[static_cast<std::size_t>(u)]) {
      const auto sa = static_cast<std::size_t>(a);
      if (arc_cap_[sa] <= 0) continue;
      const int v = arc_to_[sa];
      const std::int64_t rc = arc_cost_[sa] +
                              pi_[static_cast<std::size_t>(u)] -
                              pi_[static_cast<std::size_t>(v)];
      LAC_CHECK_MSG(rc >= 0, "negative reduced cost " << rc);
      const std::int64_t nd = d + rc;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        heap.push({nd, v});
      }
    }
  }
  std::vector<std::int64_t> out(static_cast<std::size_t>(n_), kUnreachable);
  for (int v = 0; v < n_; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    if (dist[sv] >= kInfDist) continue;
    out[sv] = dist[sv] - pi_[static_cast<std::size_t>(root)] + pi_[sv];
  }
  return out;
}

}  // namespace lac::graph
