#include "graph/min_cost_flow.h"

#include <deque>
#include <queue>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace lac::graph {

namespace {
constexpr std::int64_t kInfDist = std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

MinCostFlow::MinCostFlow(int num_nodes)
    : n_(num_nodes),
      out_(static_cast<std::size_t>(num_nodes)),
      supply_(static_cast<std::size_t>(num_nodes), 0) {
  LAC_CHECK(num_nodes >= 0);
}

int MinCostFlow::add_arc(int from, int to, std::int64_t capacity,
                         std::int64_t cost) {
  LAC_CHECK(from >= 0 && from < n_);
  LAC_CHECK(to >= 0 && to < n_);
  LAC_CHECK(capacity >= 0);
  const int idx = static_cast<int>(arc_to_.size());
  arc_to_.push_back(to);
  arc_cap_.push_back(capacity);
  arc_cost_.push_back(cost);
  out_[static_cast<std::size_t>(from)].push_back(idx);
  arc_to_.push_back(from);
  arc_cap_.push_back(0);
  arc_cost_.push_back(-cost);
  out_[static_cast<std::size_t>(to)].push_back(idx + 1);
  return idx / 2;
}

void MinCostFlow::set_supply(int node, std::int64_t supply) {
  LAC_CHECK(node >= 0 && node < n_);
  supply_[static_cast<std::size_t>(node)] = supply;
}

void MinCostFlow::add_supply(int node, std::int64_t delta) {
  LAC_CHECK(node >= 0 && node < n_);
  supply_[static_cast<std::size_t>(node)] += delta;
}

std::optional<std::vector<std::int64_t>> MinCostFlow::initial_potentials() {
  // SPFA from a virtual source connected to every node with 0-cost arcs,
  // over residual arcs that currently have capacity.  More than n
  // relaxations of one node certifies a negative cycle (unbounded LP).
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n_), 0);
  std::vector<int> relax_count(static_cast<std::size_t>(n_), 0);
  std::vector<char> in_queue(static_cast<std::size_t>(n_), 1);
  std::deque<int> queue;
  for (int v = 0; v < n_; ++v) queue.push_back(v);

  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    in_queue[static_cast<std::size_t>(u)] = 0;
    for (const int a : out_[static_cast<std::size_t>(u)]) {
      if (arc_cap_[static_cast<std::size_t>(a)] <= 0) continue;
      const int v = arc_to_[static_cast<std::size_t>(a)];
      const std::int64_t nd =
          dist[static_cast<std::size_t>(u)] + arc_cost_[static_cast<std::size_t>(a)];
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        ++stats_.spfa_relaxations;
        if (++relax_count[static_cast<std::size_t>(v)] > n_)
          return std::nullopt;
        if (!in_queue[static_cast<std::size_t>(v)]) {
          in_queue[static_cast<std::size_t>(v)] = 1;
          queue.push_back(v);
        }
      }
    }
  }
  return dist;
}

std::optional<MinCostFlow::Solution> MinCostFlow::solve() {
  {
    std::int64_t total = 0;
    for (const std::int64_t s : supply_) total += s;
    LAC_CHECK_MSG(total == 0, "supplies must sum to zero, got " << total);
  }

  stats_ = {};
  obs::Span span("mcf.solve");
  span.annotate("nodes", n_);
  span.annotate("arcs", num_arcs());
  const auto finish = [&](bool feasible) {
    span.annotate("feasible", feasible);
    span.annotate("augmentations", stats_.augmentations);
    span.annotate("dijkstra_pops", stats_.dijkstra_pops);
    span.annotate("arcs_relaxed", stats_.arcs_relaxed);
    span.annotate("spfa_relaxations", stats_.spfa_relaxations);
    span.annotate("flow_shipped", stats_.flow_shipped);
    obs::count("mcf.solves");
    if (!feasible) obs::count("mcf.infeasible_solves");
    obs::count("mcf.augmentations", stats_.augmentations);
    obs::count("mcf.arcs_relaxed", stats_.arcs_relaxed);
    obs::count("mcf.spfa_relaxations", stats_.spfa_relaxations);
    obs::observe("mcf.solve_seconds", span.elapsed_seconds());
  };

  auto pot = initial_potentials();
  if (!pot) {
    finish(false);
    return std::nullopt;  // negative cycle: unbounded
  }
  std::vector<std::int64_t> pi = std::move(*pot);

  std::vector<std::int64_t> excess = supply_;

  // Dijkstra scratch space.
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n_));
  std::vector<int> parent_arc(static_cast<std::size_t>(n_));
  using HeapItem = std::pair<std::int64_t, int>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  __int128 total_cost = 0;

  for (int source = 0; source < n_; ++source) {
    while (excess[static_cast<std::size_t>(source)] > 0) {
      // Shortest path w.r.t. reduced costs from `source` to the nearest
      // node with negative excess (a demand node).
      std::fill(dist.begin(), dist.end(), kInfDist);
      std::fill(parent_arc.begin(), parent_arc.end(), -1);
      dist[static_cast<std::size_t>(source)] = 0;
      heap.push({0, source});
      int sink = -1;
      std::int64_t sink_dist = kInfDist;
      while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        ++stats_.dijkstra_pops;
        if (d != dist[static_cast<std::size_t>(u)]) continue;
        if (excess[static_cast<std::size_t>(u)] < 0 && sink == -1) {
          sink = u;
          sink_dist = d;
          // Keep settling: we stop expanding once the heap's best exceeds
          // the sink distance; for simplicity settle everything reachable
          // at distance <= sink_dist, then break out.
        }
        if (sink != -1 && d > sink_dist) break;
        for (const int a : out_[static_cast<std::size_t>(u)]) {
          if (arc_cap_[static_cast<std::size_t>(a)] <= 0) continue;
          ++stats_.arcs_relaxed;
          const int v = arc_to_[static_cast<std::size_t>(a)];
          const std::int64_t rc = arc_cost_[static_cast<std::size_t>(a)] +
                                  pi[static_cast<std::size_t>(u)] -
                                  pi[static_cast<std::size_t>(v)];
          LAC_CHECK_MSG(rc >= 0, "negative reduced cost " << rc);
          const std::int64_t nd = d + rc;
          if (nd < dist[static_cast<std::size_t>(v)]) {
            dist[static_cast<std::size_t>(v)] = nd;
            parent_arc[static_cast<std::size_t>(v)] = a;
            heap.push({nd, v});
          }
        }
      }
      // Drain any leftover heap entries before the next iteration.
      while (!heap.empty()) heap.pop();

      if (sink == -1) {
        finish(false);
        return std::nullopt;  // cannot route: infeasible
      }

      // Update potentials so reduced costs stay nonnegative.  Nodes not
      // settled keep their potential but must not be used until re-reached;
      // clamping with sink_dist preserves validity for settled nodes.
      for (int v = 0; v < n_; ++v) {
        pi[static_cast<std::size_t>(v)] +=
            std::min(dist[static_cast<std::size_t>(v)], sink_dist);
      }

      // Bottleneck along the path.
      std::int64_t push = std::min(excess[static_cast<std::size_t>(source)],
                                   -excess[static_cast<std::size_t>(sink)]);
      for (int v = sink; v != source;) {
        const int a = parent_arc[static_cast<std::size_t>(v)];
        push = std::min(push, arc_cap_[static_cast<std::size_t>(a)]);
        v = arc_to_[static_cast<std::size_t>(a ^ 1)];
      }
      LAC_CHECK(push > 0);
      for (int v = sink; v != source;) {
        const int a = parent_arc[static_cast<std::size_t>(v)];
        arc_cap_[static_cast<std::size_t>(a)] -= push;
        arc_cap_[static_cast<std::size_t>(a ^ 1)] += push;
        total_cost +=
            static_cast<__int128>(arc_cost_[static_cast<std::size_t>(a)]) * push;
        v = arc_to_[static_cast<std::size_t>(a ^ 1)];
      }
      excess[static_cast<std::size_t>(source)] -= push;
      excess[static_cast<std::size_t>(sink)] += push;
      ++stats_.augmentations;
      stats_.flow_shipped += push;
    }
  }
  finish(true);

  Solution sol;
  sol.total_cost = static_cast<double>(total_cost);
  sol.potential = std::move(pi);
  sol.flow.resize(static_cast<std::size_t>(num_arcs()));
  for (int i = 0; i < num_arcs(); ++i) {
    // Flow on forward arc 2i equals residual capacity of its twin 2i+1.
    sol.flow[static_cast<std::size_t>(i)] =
        arc_cap_[static_cast<std::size_t>(2 * i + 1)];
  }
  return sol;
}

}  // namespace lac::graph
