// System-of-difference-constraints solver.
//
// Retiming legality and clock-period feasibility (Leiserson–Saxe constraints
// (1) and (2) of the paper) are systems of the form
//
//     x[u] - x[v] <= c        for each constraint (u, v, c)
//
// which are feasible iff the corresponding constraint graph (arc v -> u with
// weight c ... equivalently arc u -> v, see below) has no negative cycle.
// We use the standard formulation: constraint x[u] - x[v] <= c becomes an
// arc (v -> u) with weight c; single-source shortest paths from a virtual
// source reaching every vertex yield a feasible assignment x = dist.
//
// The solver is Bellman–Ford with a queue (SPFA) plus an iteration bound for
// negative-cycle detection; it is exact and handles arbitrary integer
// weights.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace lac::graph {

class DiffConstraints {
 public:
  explicit DiffConstraints(int num_vars);

  // Add constraint  x[u] - x[v] <= c.
  void add(int u, int v, std::int64_t c);

  [[nodiscard]] int num_vars() const { return num_vars_; }
  [[nodiscard]] std::size_t num_constraints() const { return arcs_.size(); }

  // Returns a feasible assignment, or nullopt if the system is infeasible
  // (negative cycle).  The assignment is the shortest-path tree from a
  // virtual source with 0-weight arcs to all vertices, so all values are
  // <= 0; callers may shift by a constant freely.
  [[nodiscard]] std::optional<std::vector<std::int64_t>> solve() const;

  // Feasibility check only (same cost as solve()).
  [[nodiscard]] bool feasible() const { return solve().has_value(); }

 private:
  struct Arc {
    int u;  // constrained variable (head of shortest-path relaxation)
    int v;  // reference variable
    std::int64_t c;
  };

  int num_vars_;
  std::vector<Arc> arcs_;
};

}  // namespace lac::graph
