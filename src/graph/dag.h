// DAG utilities: topological ordering and vertex-weighted longest paths.
//
// The retiming layer uses these on the register-free subgraph of a circuit
// (every cycle of a legal sequential circuit carries at least one flip-flop,
// so the subgraph of zero-weight edges is acyclic): the longest
// vertex-delay path there is exactly the minimum feasible clock period of
// the circuit as-is (T_init in the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace lac::graph {

// Kahn's algorithm.  Returns nullopt if the arc set contains a cycle.
[[nodiscard]] std::optional<std::vector<int>> topo_order(
    int num_vertices, const std::vector<std::pair<int, int>>& arcs);

// For each vertex v, the maximum of Σ delay over all paths ending at v
// (including v itself).  Arcs must form a DAG; throws CheckError otherwise.
[[nodiscard]] std::vector<double> longest_path_to(
    int num_vertices, const std::vector<std::pair<int, int>>& arcs,
    const std::vector<double>& vertex_delay);

}  // namespace lac::graph
