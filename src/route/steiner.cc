#include "route/steiner.h"

#include <algorithm>
#include <limits>
#include <map>

#include "base/check.h"

namespace lac::route {

namespace {

// Overlap length between a candidate axis-aligned segment and a set of
// already-placed segments (collinear spans only).
Coord overlap_with(const std::vector<std::pair<Point, Point>>& placed,
                   Point a, Point b) {
  Coord total = 0;
  if (a.y == b.y) {  // horizontal
    const Coord lo = std::min(a.x, b.x), hi = std::max(a.x, b.x);
    for (const auto& [p, q] : placed) {
      if (p.y != q.y || p.y != a.y) continue;
      const Coord l = std::max(lo, std::min(p.x, q.x));
      const Coord h = std::min(hi, std::max(p.x, q.x));
      if (h > l) total += h - l;
    }
  } else {  // vertical
    const Coord lo = std::min(a.y, b.y), hi = std::max(a.y, b.y);
    for (const auto& [p, q] : placed) {
      if (p.x != q.x || p.x != a.x) continue;
      const Coord l = std::max(lo, std::min(p.y, q.y));
      const Coord h = std::min(hi, std::max(p.y, q.y));
      if (h > l) total += h - l;
    }
  }
  return total;
}

void add_segment(std::vector<std::pair<Point, Point>>& segs, Point a, Point b) {
  if (a == b) return;
  if (a.y == b.y && a.x > b.x) std::swap(a, b);
  if (a.x == b.x && a.y > b.y) std::swap(a, b);
  segs.emplace_back(a, b);
}

// Merge collinear overlapping segments so length() counts wire once.
std::vector<std::pair<Point, Point>> merge_segments(
    std::vector<std::pair<Point, Point>> segs) {
  std::vector<std::pair<Point, Point>> out;
  // Horizontal per row.
  std::map<Coord, std::vector<std::pair<Coord, Coord>>> rows, cols;
  for (const auto& [a, b] : segs) {
    if (a.y == b.y)
      rows[a.y].emplace_back(std::min(a.x, b.x), std::max(a.x, b.x));
    else
      cols[a.x].emplace_back(std::min(a.y, b.y), std::max(a.y, b.y));
  }
  auto merge_line = [](std::vector<std::pair<Coord, Coord>>& iv) {
    std::sort(iv.begin(), iv.end());
    std::vector<std::pair<Coord, Coord>> merged;
    for (const auto& [lo, hi] : iv) {
      if (!merged.empty() && lo <= merged.back().second)
        merged.back().second = std::max(merged.back().second, hi);
      else
        merged.emplace_back(lo, hi);
    }
    return merged;
  };
  for (auto& [y, iv] : rows)
    for (const auto& [lo, hi] : merge_line(iv))
      out.emplace_back(Point{lo, y}, Point{hi, y});
  for (auto& [x, iv] : cols)
    for (const auto& [lo, hi] : merge_line(iv))
      out.emplace_back(Point{x, lo}, Point{x, hi});
  return out;
}

// Prim RMST: returns edges as index pairs.
std::vector<std::pair<int, int>> prim_mst(const std::vector<Point>& pts) {
  const int n = static_cast<int>(pts.size());
  std::vector<std::pair<int, int>> edges;
  if (n <= 1) return edges;
  std::vector<char> in_tree(static_cast<std::size_t>(n), 0);
  std::vector<Coord> best(static_cast<std::size_t>(n),
                          std::numeric_limits<Coord>::max());
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  in_tree[0] = 1;
  for (int v = 1; v < n; ++v) {
    best[static_cast<std::size_t>(v)] = manhattan(pts[0], pts[static_cast<std::size_t>(v)]);
    parent[static_cast<std::size_t>(v)] = 0;
  }
  for (int step = 1; step < n; ++step) {
    int pick = -1;
    for (int v = 0; v < n; ++v)
      if (!in_tree[static_cast<std::size_t>(v)] &&
          (pick == -1 ||
           best[static_cast<std::size_t>(v)] < best[static_cast<std::size_t>(pick)]))
        pick = v;
    LAC_CHECK(pick != -1);
    in_tree[static_cast<std::size_t>(pick)] = 1;
    edges.emplace_back(parent[static_cast<std::size_t>(pick)], pick);
    for (int v = 0; v < n; ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) continue;
      const Coord d =
          manhattan(pts[static_cast<std::size_t>(pick)], pts[static_cast<std::size_t>(v)]);
      if (d < best[static_cast<std::size_t>(v)]) {
        best[static_cast<std::size_t>(v)] = d;
        parent[static_cast<std::size_t>(v)] = pick;
      }
    }
  }
  return edges;
}

}  // namespace

Coord SteinerTree::length() const {
  Coord total = 0;
  for (const auto& [a, b] : segments) total += manhattan(a, b);
  return total;
}

Coord rmst_length(const std::vector<Point>& terminals) {
  std::vector<Point> pts = terminals;
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  Coord total = 0;
  for (const auto& [a, b] : prim_mst(pts))
    total += manhattan(pts[static_cast<std::size_t>(a)],
                       pts[static_cast<std::size_t>(b)]);
  return total;
}

Coord hpwl(const std::vector<Point>& terminals) {
  if (terminals.empty()) return 0;
  Coord xlo = terminals[0].x, xhi = terminals[0].x;
  Coord ylo = terminals[0].y, yhi = terminals[0].y;
  for (const auto& p : terminals) {
    xlo = std::min(xlo, p.x);
    xhi = std::max(xhi, p.x);
    ylo = std::min(ylo, p.y);
    yhi = std::max(yhi, p.y);
  }
  return (xhi - xlo) + (yhi - ylo);
}

SteinerTree rectilinear_steiner(std::vector<Point> terminals) {
  SteinerTree tree;
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
  tree.terminals = terminals;
  if (terminals.size() <= 1) return tree;

  std::vector<std::pair<Point, Point>> segs;
  for (const auto& [ia, ib] : prim_mst(terminals)) {
    const Point a = terminals[static_cast<std::size_t>(ia)];
    const Point b = terminals[static_cast<std::size_t>(ib)];
    // Two L embeddings via the two corner choices; pick the one that
    // overlaps existing wire the most (ties: first).
    const Point c1{b.x, a.y};
    const Point c2{a.x, b.y};
    const Coord ov1 = overlap_with(segs, a, c1) + overlap_with(segs, c1, b);
    const Coord ov2 = overlap_with(segs, a, c2) + overlap_with(segs, c2, b);
    const Point corner = ov1 >= ov2 ? c1 : c2;
    add_segment(segs, a, corner);
    add_segment(segs, corner, b);
  }
  tree.segments = merge_segments(std::move(segs));
  return tree;
}

}  // namespace lac::route
