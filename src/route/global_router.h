// Congestion-aware global routing over the tile grid (paper §4.1).
//
// Each inter-block net is routed as a rectilinear Steiner tree on the
// physical cell grid: sinks are connected one at a time (nearest first) by
// a Dijkstra wavefront expanded from the *whole* current tree, which is the
// classic iterated closest-component construction (cf. Ho–Vijayan–Wong).
// Edge costs combine wirelength with a congestion penalty, and a few
// rip-up-and-re-route rounds with history costs (negotiated-congestion
// flavour) clean up overflowed edges.  Wirelength first, congestion second
// — exactly the priorities the paper states for this step.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "base/exec_policy.h"
#include "tile/tile_grid.h"

namespace lac::route {

struct Cell {
  int gx = 0;
  int gy = 0;
  friend constexpr auto operator<=>(const Cell&, const Cell&) = default;
};

struct RouteRequest {
  Cell source;
  std::vector<Cell> sinks;
};

struct RouteTree {
  // sink_paths[i] = cell sequence source .. sinks[i] (inclusive), following
  // tree edges; consecutive cells are 4-neighbours.
  std::vector<std::vector<Cell>> sink_paths;
  // Distinct tree edges, as (cell, cell) with the lower cell index first.
  std::vector<std::pair<int, int>> edges;
  [[nodiscard]] bool routed() const { return !sink_paths.empty(); }
};

struct RouterOptions {
  double edge_capacity = 16.0;     // global tracks per cell boundary
  double congestion_weight = 2.0;  // cost multiplier once usage nears capacity
  double history_weight = 1.5;     // negotiated-congestion history increment
  int ripup_rounds = 3;
  // Execution policy for speculative parallel net routing (see route_all).
  // Output is bitwise-identical to sequential routing for any thread count.
  base::ExecPolicy exec = base::ExecPolicy::sequential();
};

struct RoutingStats {
  double total_wirelength_um = 0.0;  // sum over nets of tree edge length
  int overflowed_edges = 0;          // edges with usage > capacity (final)
  double max_usage = 0.0;
  int ripup_rounds_used = 0;
  int nets_routed = 0;               // nets with at least one real sink
  long long nets_rerouted = 0;       // rip-up re-routes across all rounds

  // Final distribution of edge usage/capacity: bucket i counts boundary
  // edges with ratio in (kUsageBucketBounds[i-1], kUsageBucketBounds[i]];
  // bucket 0 starts at 0 (exclusive of idle edges counted in idle_edges),
  // the last bucket is unbounded.  Buckets past 1.0 are the overflow
  // histogram.
  static constexpr std::array<double, 7> kUsageBucketBounds{
      0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0};
  std::array<int, 8> usage_histogram{};
  int idle_edges = 0;                // edges with zero usage
};

class GlobalRouter {
 public:
  GlobalRouter(const tile::TileGrid& grid, RouterOptions opt = {});

  // Routes all nets; result[i] corresponds to nets[i].  Sinks equal to the
  // source are dropped; a net whose sinks all coincide with the source gets
  // an empty tree with routed() == false.
  [[nodiscard]] std::vector<RouteTree> route_all(
      const std::vector<RouteRequest>& nets);

  [[nodiscard]] const RoutingStats& stats() const { return stats_; }

 private:
  [[nodiscard]] RouteTree route_one(const RouteRequest& net) const;
  // Core maze routing against an explicit usage array.  `removed_edges`
  // (sorted edge indices, may be null) is an overlay subtracting one track
  // per listed edge — used during rip-up to exclude a net's own tree
  // without mutating shared state.
  [[nodiscard]] RouteTree route_one(
      const RouteRequest& net, const double* usage,
      const std::vector<int>* removed_edges) const;
  // Routes the nets in `batch` (indices into nets/trees) in parallel
  // against a usage snapshot, then commits them sequentially in batch
  // order.  A speculative tree is committed only when every edge whose
  // usage changed since the snapshot still yields the identical cost; any
  // other net is rerouted on the spot, so the result is exactly what the
  // purely sequential algorithm produces.  `dirty` is a caller-provided
  // all-zero scratch buffer of edge flags (returned all-zero).
  void route_batch(const std::vector<RouteRequest>& nets,
                   const std::vector<std::size_t>& batch, bool ripup,
                   std::vector<RouteTree>& trees, std::vector<char>& dirty);
  void add_usage(const RouteTree& t, double delta);
  [[nodiscard]] int edge_index(int cell_a, int cell_b) const;

  const tile::TileGrid& grid_;
  RouterOptions opt_;
  // Edge arrays: horizontal edges (between (gx,gy)-(gx+1,gy)) then vertical.
  std::vector<double> usage_;
  std::vector<double> history_;
  RoutingStats stats_;
};

}  // namespace lac::route
