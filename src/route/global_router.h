// Congestion-aware global routing over the tile grid (paper §4.1).
//
// Each inter-block net is routed as a rectilinear Steiner tree on the
// physical cell grid: sinks are connected one at a time (nearest first) by
// a Dijkstra wavefront expanded from the *whole* current tree, which is the
// classic iterated closest-component construction (cf. Ho–Vijayan–Wong).
// Edge costs combine wirelength with a congestion penalty, and a few
// rip-up-and-re-route rounds with history costs (negotiated-congestion
// flavour) clean up overflowed edges.  Wirelength first, congestion second
// — exactly the priorities the paper states for this step.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "base/exec_policy.h"
#include "tile/tile_grid.h"

namespace lac::route {

struct Cell {
  int gx = 0;
  int gy = 0;
  friend constexpr auto operator<=>(const Cell&, const Cell&) = default;
};

struct RouteRequest {
  Cell source;
  std::vector<Cell> sinks;
  friend bool operator==(const RouteRequest&, const RouteRequest&) = default;
};

struct RouteTree {
  // sink_paths[i] = cell sequence source .. sinks[i] (inclusive), following
  // tree edges; consecutive cells are 4-neighbours.
  std::vector<std::vector<Cell>> sink_paths;
  // Distinct tree edges, as (cell, cell) with the lower cell index first.
  std::vector<std::pair<int, int>> edges;
  [[nodiscard]] bool routed() const { return !sink_paths.empty(); }
  friend bool operator==(const RouteTree&, const RouteTree&) = default;
};

// Replay log of one route_all run: every tree commit, in commit order,
// tagged with a caller-stable net key.  Feeding the log of a previous run
// into route_all_incremental() lets an ECO re-plan skip the Dijkstra for
// nets whose cost field provably matches the logged run (see the exactness
// notes there) while still producing bit-identical results.
struct RouteLog {
  struct Event {
    long long key = 0;  // caller-stable net identity (e.g. driver cell id)
    int phase = 0;      // 0 = initial pass; r >= 1 = rip-up round r
    RouteTree tree;     // the tree committed for `key` at this point
  };
  int nx = 0, ny = 0;                  // grid dims the log was recorded on
  std::vector<RouteRequest> requests;  // per net, in route_all input order
  std::vector<long long> keys;         // parallel to requests; unique
  std::vector<Event> events;           // in commit order (phases ascending)
};

// Work accounting for route_all_incremental (effort only — the routing
// result and RoutingStats are bit-identical to a cold route_all).
struct IncRouteStats {
  long long reused_initial = 0;  // initial-pass trees reused from the log
  long long cold_initial = 0;    // initial-pass Dijkstra runs
  long long reused_ripup = 0;    // rip-up reroutes reused from the log
  long long cold_ripup = 0;      // rip-up Dijkstra runs
  long long invalidated = 0;     // nets with no/changed request in the log
  bool full_fallback = false;    // grid dims changed: batched cold reroute
};

struct RouterOptions {
  double edge_capacity = 16.0;     // global tracks per cell boundary
  double congestion_weight = 2.0;  // cost multiplier once usage nears capacity
  double history_weight = 1.5;     // negotiated-congestion history increment
  int ripup_rounds = 3;
  // Execution policy for speculative parallel net routing (see route_all).
  // Output is bitwise-identical to sequential routing for any thread count.
  base::ExecPolicy exec = base::ExecPolicy::sequential();
};

struct RoutingStats {
  double total_wirelength_um = 0.0;  // sum over nets of tree edge length
  int overflowed_edges = 0;          // edges with usage > capacity (final)
  double max_usage = 0.0;
  int ripup_rounds_used = 0;
  int nets_routed = 0;               // nets with at least one real sink
  long long nets_rerouted = 0;       // rip-up re-routes across all rounds

  // Final distribution of edge usage/capacity: bucket i counts boundary
  // edges with ratio in (kUsageBucketBounds[i-1], kUsageBucketBounds[i]];
  // bucket 0 starts at 0 (exclusive of idle edges counted in idle_edges),
  // the last bucket is unbounded.  Buckets past 1.0 are the overflow
  // histogram.
  static constexpr std::array<double, 7> kUsageBucketBounds{
      0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0};
  std::array<int, 8> usage_histogram{};
  int idle_edges = 0;                // edges with zero usage
};

class GlobalRouter {
 public:
  GlobalRouter(const tile::TileGrid& grid, RouterOptions opt = {});

  // Routes all nets; result[i] corresponds to nets[i].  Sinks equal to the
  // source are dropped; a net whose sinks all coincide with the source gets
  // an empty tree with routed() == false.
  [[nodiscard]] std::vector<RouteTree> route_all(
      const std::vector<RouteRequest>& nets);

  // Same routing, recording a replay log.  `keys[i]` is a caller-stable
  // identity for nets[i] (unique); the result is bit-identical to
  // route_all(nets).
  [[nodiscard]] std::vector<RouteTree> route_all_logged(
      const std::vector<RouteRequest>& nets, const std::vector<long long>& keys,
      RouteLog* log);

  // Incremental re-route against the log of a previous run on an
  // identically-sized grid.  The result (trees, usage, history, stats())
  // is bit-identical to route_all(nets) on a fresh router: a logged tree is
  // reused only when the net's request is unchanged AND the replayed cost
  // field of the logged run matches the current cost field everywhere (the
  // edge cost is flat below half capacity, so usage drift inside the flat
  // region keeps costs — and hence Dijkstra results, including tie-breaks —
  // identical); every other net runs the normal Dijkstra on current state.
  // When grid dims differ from the log, falls back to route_all_logged.
  // `inc` (optional) receives the work accounting; `log` (optional)
  // records this run for the next increment.
  [[nodiscard]] std::vector<RouteTree> route_all_incremental(
      const std::vector<RouteRequest>& nets, const std::vector<long long>& keys,
      const RouteLog& prev, RouteLog* log, IncRouteStats* inc);

  [[nodiscard]] const RoutingStats& stats() const { return stats_; }

 private:
  [[nodiscard]] std::vector<RouteTree> route_all_impl(
      const std::vector<RouteRequest>& nets, const std::vector<long long>* keys,
      RouteLog* log);
  // Fills the final-usage part of stats_ and emits the route.* counters
  // (shared by the batched and incremental drivers).
  void finalize_stats(const std::vector<RouteTree>& trees);
  [[nodiscard]] RouteTree route_one(const RouteRequest& net) const;
  // Core maze routing against an explicit usage array.  `removed_edges`
  // (sorted edge indices, may be null) is an overlay subtracting one track
  // per listed edge — used during rip-up to exclude a net's own tree
  // without mutating shared state.
  [[nodiscard]] RouteTree route_one(
      const RouteRequest& net, const double* usage,
      const std::vector<int>* removed_edges) const;
  // Routes the nets in `batch` (indices into nets/trees) in parallel
  // against a usage snapshot, then commits them sequentially in batch
  // order.  A speculative tree is committed only when every edge whose
  // usage changed since the snapshot still yields the identical cost; any
  // other net is rerouted on the spot, so the result is exactly what the
  // purely sequential algorithm produces.  `dirty` is a caller-provided
  // all-zero scratch buffer of edge flags (returned all-zero).
  void route_batch(const std::vector<RouteRequest>& nets,
                   const std::vector<std::size_t>& batch, bool ripup,
                   std::vector<RouteTree>& trees, std::vector<char>& dirty);
  void add_usage(const RouteTree& t, double delta);
  [[nodiscard]] int edge_index(int cell_a, int cell_b) const;

  const tile::TileGrid& grid_;
  RouterOptions opt_;
  // Edge arrays: horizontal edges (between (gx,gy)-(gx+1,gy)) then vertical.
  std::vector<double> usage_;
  std::vector<double> history_;
  RoutingStats stats_;
  // Replay-log recording context, set for the duration of route_all_impl
  // (route_batch appends one event per commit when log_ is non-null).
  RouteLog* log_ = nullptr;
  const std::vector<long long>* log_keys_ = nullptr;
  int log_phase_ = 0;
};

}  // namespace lac::route
