#include "route/global_router.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <unordered_map>

#include "base/check.h"
#include "base/parallel.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace lac::route {

GlobalRouter::GlobalRouter(const tile::TileGrid& grid, RouterOptions opt)
    : grid_(grid), opt_(opt) {
  const int nh = (grid_.nx() - 1) * grid_.ny();   // horizontal boundaries
  const int nv = grid_.nx() * (grid_.ny() - 1);   // vertical boundaries
  usage_.assign(static_cast<std::size_t>(nh + nv), 0.0);
  history_.assign(static_cast<std::size_t>(nh + nv), 0.0);
}

int GlobalRouter::edge_index(int cell_a, int cell_b) const {
  const int nx = grid_.nx();
  int a = std::min(cell_a, cell_b);
  int b = std::max(cell_a, cell_b);
  if (b == a + 1) {
    // horizontal edge between (gx, gy) and (gx+1, gy), gx = a % nx
    LAC_CHECK(a % nx != nx - 1);
    return (a / nx) * (nx - 1) + (a % nx);
  }
  LAC_CHECK(b == a + nx);
  return (nx - 1) * grid_.ny() + a;  // vertical edges after all horizontal
}

RouteTree GlobalRouter::route_one(const RouteRequest& net) const {
  return route_one(net, usage_.data(), nullptr);
}

RouteTree GlobalRouter::route_one(
    const RouteRequest& net, const double* usage,
    const std::vector<int>* removed_edges) const {
  const int nx = grid_.nx();
  const int ny = grid_.ny();
  const int n_cells = nx * ny;
  auto idx = [&](const Cell& c) { return c.gy * nx + c.gx; };

  RouteTree tree;
  // Distinct sink cells, excluding the source cell (colocated sinks need no
  // global wire).
  std::vector<Cell> sinks;
  for (const Cell& s : net.sinks)
    if (s != net.source &&
        std::find(sinks.begin(), sinks.end(), s) == sinks.end())
      sinks.push_back(s);
  if (sinks.empty()) return tree;

  // parent[cell] = neighbour one step closer to the source along the tree.
  std::vector<int> parent(static_cast<std::size_t>(n_cells), -2);  // -2: not in tree
  parent[static_cast<std::size_t>(idx(net.source))] = -1;          // root
  std::vector<int> tree_cells{idx(net.source)};

  std::vector<double> dist(static_cast<std::size_t>(n_cells));
  std::vector<int> pred(static_cast<std::size_t>(n_cells));
  std::vector<char> pending_sink(static_cast<std::size_t>(n_cells), 0);
  for (const Cell& s : sinks) pending_sink[static_cast<std::size_t>(idx(s))] = 1;

  auto edge_cost = [&](int a, int b) {
    const int e = edge_index(a, b);
    double u = usage[static_cast<std::size_t>(e)];
    if (removed_edges != nullptr &&
        std::binary_search(removed_edges->begin(), removed_edges->end(), e))
      u -= 1.0;
    const double cap = opt_.edge_capacity;
    double cost = 1.0 + history_[static_cast<std::size_t>(e)];
    if (u >= cap) {
      cost += opt_.congestion_weight * (1.0 + (u - cap));
    } else if (u > 0.5 * cap) {
      cost += opt_.congestion_weight * (u - 0.5 * cap) / (0.5 * cap);
    }
    return cost;
  };

  int remaining = static_cast<int>(sinks.size());
  while (remaining > 0) {
    // Dijkstra from the whole current tree to the nearest pending sink.
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    std::fill(pred.begin(), pred.end(), -1);
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    for (const int c : tree_cells) {
      dist[static_cast<std::size_t>(c)] = 0.0;
      heap.push({0.0, c});
    }
    int found = -1;
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d != dist[static_cast<std::size_t>(u)]) continue;
      if (pending_sink[static_cast<std::size_t>(u)]) {
        found = u;
        break;
      }
      const int ux = u % nx, uy = u / nx;
      const int nbr[4] = {ux > 0 ? u - 1 : -1, ux < nx - 1 ? u + 1 : -1,
                          uy > 0 ? u - nx : -1, uy < ny - 1 ? u + nx : -1};
      for (const int v : nbr) {
        if (v < 0) continue;
        const double nd = d + edge_cost(u, v);
        if (nd < dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] = nd;
          pred[static_cast<std::size_t>(v)] = u;
          heap.push({nd, v});
        }
      }
    }
    LAC_CHECK_MSG(found != -1, "maze router failed to reach a sink");

    // Splice the new path into the tree (stop where it meets the tree).
    int v = found;
    while (parent[static_cast<std::size_t>(v)] == -2) {
      const int p = pred[static_cast<std::size_t>(v)];
      LAC_CHECK(p != -1);
      parent[static_cast<std::size_t>(v)] = p;
      tree_cells.push_back(v);
      v = p;
    }
    pending_sink[static_cast<std::size_t>(found)] = 0;
    --remaining;
  }

  // Emit per-sink source paths (parallel to net.sinks — a sink colocated
  // with the source gets the trivial single-cell path) and the edge set.
  tree.sink_paths.reserve(net.sinks.size());
  for (const Cell& s : net.sinks) {
    std::vector<Cell> path;
    for (int v = idx(s); v != -1; v = parent[static_cast<std::size_t>(v)])
      path.push_back(Cell{v % nx, v / nx});
    std::reverse(path.begin(), path.end());
    LAC_CHECK(path.front() == net.source);
    tree.sink_paths.push_back(std::move(path));
  }
  for (const int c : tree_cells) {
    const int p = parent[static_cast<std::size_t>(c)];
    if (p >= 0) tree.edges.emplace_back(std::min(c, p), std::max(c, p));
  }
  std::sort(tree.edges.begin(), tree.edges.end());
  tree.edges.erase(std::unique(tree.edges.begin(), tree.edges.end()),
                   tree.edges.end());
  return tree;
}

void GlobalRouter::add_usage(const RouteTree& t, double delta) {
  for (const auto& [a, b] : t.edges)
    usage_[static_cast<std::size_t>(edge_index(a, b))] += delta;
}

void GlobalRouter::route_batch(const std::vector<RouteRequest>& nets,
                               const std::vector<std::size_t>& batch,
                               bool ripup, std::vector<RouteTree>& trees,
                               std::vector<char>& dirty) {
  // Candidates are routed in parallel against a frozen usage snapshot;
  // edge_cost is constant below half capacity, so a candidate stays exact
  // as long as every usage change from earlier commits in this batch kept
  // its edge in the flat-cost region (or didn't change effective usage at
  // all).  That check is done per net at commit time, in batch order.
  const std::vector<double> snapshot = usage_;
  std::vector<RouteTree> candidates(batch.size());
  std::vector<std::vector<int>> own(batch.size());
  if (ripup) {
    for (std::size_t k = 0; k < batch.size(); ++k) {
      for (const auto& [a, b] : trees[batch[k]].edges)
        own[k].push_back(edge_index(a, b));
      std::sort(own[k].begin(), own[k].end());
    }
  }
  base::parallel_for(opt_.exec, batch.size(), [&](std::size_t k) {
    candidates[k] =
        route_one(nets[batch[k]], snapshot.data(), ripup ? &own[k] : nullptr);
  });

  const double half = 0.5 * opt_.edge_capacity;
  std::vector<int> dirty_list;
  auto mark = [&](const RouteTree& t) {
    for (const auto& [a, b] : t.edges) {
      const int e = edge_index(a, b);
      if (!dirty[static_cast<std::size_t>(e)]) {
        dirty[static_cast<std::size_t>(e)] = 1;
        dirty_list.push_back(e);
      }
    }
  };
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const std::size_t i = batch[k];
    bool valid = true;
    for (const int e : dirty_list) {
      double s = snapshot[static_cast<std::size_t>(e)];
      double c = usage_[static_cast<std::size_t>(e)];
      if (ripup && std::binary_search(own[k].begin(), own[k].end(), e)) {
        s -= 1.0;
        c -= 1.0;
      }
      if (s != c && !(s <= half && c <= half)) {
        valid = false;
        break;
      }
    }
    if (ripup) {
      mark(trees[i]);
      add_usage(trees[i], -1.0);
    }
    if (valid)
      trees[i] = std::move(candidates[k]);
    else
      trees[i] = route_one(nets[i]);  // sequential fallback, current usage
    add_usage(trees[i], 1.0);
    mark(trees[i]);
    if (log_ != nullptr)
      log_->events.push_back({(*log_keys_)[i], log_phase_, trees[i]});
  }
  for (const int e : dirty_list) dirty[static_cast<std::size_t>(e)] = 0;
}

std::vector<RouteTree> GlobalRouter::route_all(
    const std::vector<RouteRequest>& nets) {
  return route_all_impl(nets, nullptr, nullptr);
}

std::vector<RouteTree> GlobalRouter::route_all_logged(
    const std::vector<RouteRequest>& nets, const std::vector<long long>& keys,
    RouteLog* log) {
  LAC_CHECK(keys.size() == nets.size());
  return route_all_impl(nets, &keys, log);
}

std::vector<RouteTree> GlobalRouter::route_all_impl(
    const std::vector<RouteRequest>& nets, const std::vector<long long>* keys,
    RouteLog* log) {
  if (log != nullptr) {
    LAC_CHECK(keys != nullptr);
    log->nx = grid_.nx();
    log->ny = grid_.ny();
    log->requests = nets;
    log->keys = *keys;
    log->events.clear();
    log_ = log;
    log_keys_ = keys;
    log_phase_ = 0;
  }
  stats_ = {};
  obs::Span span("route.route_all");
  span.annotate("nets", nets.size());
  std::vector<RouteTree> trees(nets.size());
  // Initial routing, long nets first (they have the least flexibility).
  std::vector<std::size_t> order(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    auto span = [&](const RouteRequest& n) {
      Coord s = 0;
      for (const Cell& c : n.sinks)
        s += std::abs(c.gx - n.source.gx) + std::abs(c.gy - n.source.gy);
      return s;
    };
    return span(nets[a]) > span(nets[b]);
  });
  // One batched path for every thread count, with a fixed batch size: the
  // snapshot-validity check already makes the result independent of how
  // the batch is split, and a worker-independent batch partition keeps
  // every per-batch effect — obs task captures, snapshot/candidate
  // allocations charged to the route span — byte-identical too.
  std::vector<char> dirty(usage_.size(), 0);
  constexpr std::size_t kBatchSize = 32;
  for (std::size_t begin = 0; begin < order.size(); begin += kBatchSize) {
    const std::size_t end = std::min(order.size(), begin + kBatchSize);
    const std::vector<std::size_t> batch(
        order.begin() + static_cast<std::ptrdiff_t>(begin),
        order.begin() + static_cast<std::ptrdiff_t>(end));
    route_batch(nets, batch, /*ripup=*/false, trees, dirty);
  }

  // Rip-up & re-route rounds over nets that touch overflowed edges.
  for (int round = 0; round < opt_.ripup_rounds; ++round) {
    std::vector<char> overflowed(usage_.size(), 0);
    int n_over = 0;
    for (std::size_t e = 0; e < usage_.size(); ++e) {
      if (usage_[e] > opt_.edge_capacity) {
        overflowed[e] = 1;
        ++n_over;
        history_[e] += opt_.history_weight;
      }
    }
    if (n_over == 0) break;
    obs::Span round_span("route.ripup_round");
    round_span.annotate("round", round + 1);
    round_span.annotate("overflowed_edges", n_over);
    stats_.ripup_rounds_used = round + 1;
    log_phase_ = round + 1;
    // The reroute set is fixed at round start: every net is tested before
    // it is itself rerouted, and reroutes of other nets don't change it.
    std::vector<std::size_t> to_reroute;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (!trees[i].routed()) continue;
      for (const auto& [a, b] : trees[i].edges)
        if (overflowed[static_cast<std::size_t>(edge_index(a, b))]) {
          to_reroute.push_back(i);
          break;
        }
    }
    for (std::size_t begin = 0; begin < to_reroute.size();
         begin += kBatchSize) {
      const std::size_t end = std::min(to_reroute.size(), begin + kBatchSize);
      const std::vector<std::size_t> batch(
          to_reroute.begin() + static_cast<std::ptrdiff_t>(begin),
          to_reroute.begin() + static_cast<std::ptrdiff_t>(end));
      route_batch(nets, batch, /*ripup=*/true, trees, dirty);
    }
    const long long rerouted = static_cast<long long>(to_reroute.size());
    stats_.nets_rerouted += rerouted;
    round_span.annotate("nets_rerouted", rerouted);
  }

  finalize_stats(trees);
  span.annotate("nets_routed", stats_.nets_routed);
  span.annotate("nets_rerouted", stats_.nets_rerouted);
  span.annotate("ripup_rounds_used", stats_.ripup_rounds_used);
  span.annotate("overflowed_edges", stats_.overflowed_edges);
  span.annotate("max_usage", stats_.max_usage);
  span.annotate("total_wirelength_um", stats_.total_wirelength_um);
  log_ = nullptr;
  log_keys_ = nullptr;
  log_phase_ = 0;
  return trees;
}

void GlobalRouter::finalize_stats(const std::vector<RouteTree>& trees) {
  stats_.total_wirelength_um = 0.0;
  stats_.overflowed_edges = 0;
  stats_.max_usage = 0.0;
  for (const auto& t : trees) {
    if (t.routed()) ++stats_.nets_routed;
    stats_.total_wirelength_um +=
        static_cast<double>(t.edges.size()) *
        static_cast<double>(grid_.tile_size());
  }
  for (const double u : usage_) {
    stats_.max_usage = std::max(stats_.max_usage, u);
    if (u > opt_.edge_capacity) ++stats_.overflowed_edges;
    if (u <= 0.0) {
      ++stats_.idle_edges;
      continue;
    }
    const double ratio = u / opt_.edge_capacity;
    std::size_t b = 0;
    while (b < RoutingStats::kUsageBucketBounds.size() &&
           ratio > RoutingStats::kUsageBucketBounds[b])
      ++b;
    ++stats_.usage_histogram[b];
  }
  obs::count("route.nets", stats_.nets_routed);
  obs::count("route.nets_rerouted", stats_.nets_rerouted);
  obs::count("route.overflowed_edges", stats_.overflowed_edges);
  obs::observe("route.max_usage", stats_.max_usage);
}

std::vector<RouteTree> GlobalRouter::route_all_incremental(
    const std::vector<RouteRequest>& nets, const std::vector<long long>& keys,
    const RouteLog& prev, RouteLog* log, IncRouteStats* inc) {
  LAC_CHECK(keys.size() == nets.size());
  if (prev.nx != grid_.nx() || prev.ny != grid_.ny()) {
    // A resized grid renumbers every routing-graph cell, so no logged
    // Dijkstra is comparable; re-route everything on the batched path.
    if (inc != nullptr) {
      inc->full_fallback = true;
      inc->cold_initial = static_cast<long long>(nets.size());
      inc->invalidated = static_cast<long long>(nets.size());
    }
    return route_all_impl(nets, &keys, log);
  }

  stats_ = {};
  obs::Span span("route.route_all");
  span.annotate("nets", nets.size());
  std::vector<RouteTree> trees(nets.size());

  // ---- replayed previous-run trajectory -----------------------------------
  // u_prev/h_prev track the logged run's usage and history exactly, advanced
  // event by event in the log's commit order.  `diff` marks the edges whose
  // *cost* currently differs between the replayed state and the live state;
  // with zero marked edges the two cost fields are identical everywhere, so
  // a logged Dijkstra result (including its tie-breaks) is the live result.
  const std::size_t ne = usage_.size();
  std::vector<double> u_prev(ne, 0.0);
  std::vector<double> h_prev(ne, 0.0);
  std::vector<char> diff(ne, 0);
  std::vector<int> diff_list;  // may hold stale (unmarked) entries
  int n_diff = 0;
  const double half = 0.5 * opt_.edge_capacity;
  auto cong_eq = [&](double a, double b) {
    return a == b || (a <= half && b <= half);
  };
  auto update_diff = [&](int e) {
    const auto se = static_cast<std::size_t>(e);
    const bool d =
        h_prev[se] != history_[se] || !cong_eq(u_prev[se], usage_[se]);
    if (d && !diff[se]) {
      diff[se] = 1;
      ++n_diff;
      diff_list.push_back(e);
    } else if (!d && diff[se]) {
      diff[se] = 0;
      --n_diff;
    }
  };
  auto edge_indices_of = [&](const RouteTree& t) {
    std::vector<int> out;
    out.reserve(t.edges.size());
    for (const auto& [a, b] : t.edges) out.push_back(edge_index(a, b));
    std::sort(out.begin(), out.end());
    return out;
  };

  // Latest committed tree per key in the replayed run (needed to rip the
  // net's own previous tree during rip-up replay).
  std::unordered_map<long long, const RouteTree*> prev_tree_of;
  std::unordered_map<long long, std::size_t> prev_req_of;
  for (std::size_t q = 0; q < prev.keys.size(); ++q)
    prev_req_of.emplace(prev.keys[q], q);
  // (phase, key) -> event position, for candidate lookup.
  std::map<std::pair<int, long long>, std::size_t> event_at;
  for (std::size_t p = 0; p < prev.events.size(); ++p)
    event_at.emplace(std::make_pair(prev.events[p].phase, prev.events[p].key),
                     p);

  std::size_t cursor = 0;  // first unconsumed log event
  int prev_phase = 0;      // rip-up rounds already entered by the replay
  auto bump_prev_history = [&]() {
    for (std::size_t e = 0; e < ne; ++e)
      if (u_prev[e] > opt_.edge_capacity) {
        h_prev[e] += opt_.history_weight;
        update_diff(static_cast<int>(e));
      }
  };
  auto commit_prev = [&](const RouteLog::Event& ev) {
    if (ev.phase >= 1) {
      const auto it = prev_tree_of.find(ev.key);
      LAC_CHECK(it != prev_tree_of.end());
      for (const auto& [a, b] : it->second->edges) {
        const int e = edge_index(a, b);
        u_prev[static_cast<std::size_t>(e)] -= 1.0;
        update_diff(e);
      }
    }
    for (const auto& [a, b] : ev.tree.edges) {
      const int e = edge_index(a, b);
      u_prev[static_cast<std::size_t>(e)] += 1.0;
      update_diff(e);
    }
    prev_tree_of[ev.key] = &ev.tree;
  };
  // Consumes log events before position `target` and applies the replayed
  // run's round-boundary history bumps up to the target event's phase, so
  // u_prev/h_prev are exactly the logged run's state just before `target`.
  auto align_to = [&](std::size_t target) {
    while (cursor < target) {
      const auto& ev = prev.events[cursor];
      while (prev_phase < ev.phase) {
        bump_prev_history();
        ++prev_phase;
      }
      commit_prev(ev);
      ++cursor;
    }
    while (prev_phase < prev.events[target].phase) {
      bump_prev_history();
      ++prev_phase;
    }
  };

  if (log != nullptr) {
    log->nx = grid_.nx();
    log->ny = grid_.ny();
    log->requests = nets;
    log->keys = keys;
    log->events.clear();
  }
  IncRouteStats local_inc;
  auto record = [&](long long key, int phase, const RouteTree& t) {
    if (log != nullptr) log->events.push_back({key, phase, t});
  };

  // ---- initial pass, identical order to the cold path ---------------------
  std::vector<std::size_t> order(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     auto net_span = [&](const RouteRequest& n) {
                       Coord s = 0;
                       for (const Cell& c : n.sinks)
                         s += std::abs(c.gx - n.source.gx) +
                              std::abs(c.gy - n.source.gy);
                       return s;
                     };
                     return net_span(nets[a]) > net_span(nets[b]);
                   });
  for (const std::size_t i : order) {
    const long long k = keys[i];
    bool reused = false;
    const auto pit = event_at.find({0, k});
    const auto rit = prev_req_of.find(k);
    const bool request_unchanged =
        rit != prev_req_of.end() && prev.requests[rit->second] == nets[i];
    if (!request_unchanged) ++local_inc.invalidated;
    if (pit != event_at.end() && pit->second >= cursor) {
      align_to(pit->second);
      const auto& ev = prev.events[pit->second];
      if (request_unchanged && n_diff == 0) {
        trees[i] = ev.tree;
        reused = true;
      }
      commit_prev(ev);
      ++cursor;
    }
    if (!reused) trees[i] = route_one(nets[i]);
    add_usage(trees[i], 1.0);
    for (const auto& [a, b] : trees[i].edges) update_diff(edge_index(a, b));
    record(k, 0, trees[i]);
    ++(reused ? local_inc.reused_initial : local_inc.cold_initial);
  }

  // ---- rip-up rounds, identical schedule to the cold path -----------------
  for (int round = 0; round < opt_.ripup_rounds; ++round) {
    std::vector<char> overflowed(usage_.size(), 0);
    int n_over = 0;
    for (std::size_t e = 0; e < usage_.size(); ++e) {
      if (usage_[e] > opt_.edge_capacity) {
        overflowed[e] = 1;
        ++n_over;
        history_[e] += opt_.history_weight;
        update_diff(static_cast<int>(e));
      }
    }
    if (n_over == 0) break;
    obs::Span round_span("route.ripup_round");
    round_span.annotate("round", round + 1);
    round_span.annotate("overflowed_edges", n_over);
    stats_.ripup_rounds_used = round + 1;
    std::vector<std::size_t> to_reroute;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (!trees[i].routed()) continue;
      for (const auto& [a, b] : trees[i].edges)
        if (overflowed[static_cast<std::size_t>(edge_index(a, b))]) {
          to_reroute.push_back(i);
          break;
        }
    }
    for (const std::size_t i : to_reroute) {
      const long long k = keys[i];
      const std::vector<int> own_cur = edge_indices_of(trees[i]);
      bool reused = false;
      RouteTree next;
      const auto pit = event_at.find({round + 1, k});
      const auto rit = prev_req_of.find(k);
      const bool request_unchanged =
          rit != prev_req_of.end() && prev.requests[rit->second] == nets[i];
      if (pit != event_at.end() && pit->second >= cursor && request_unchanged) {
        align_to(pit->second);
        const auto& ev = prev.events[pit->second];
        // The logged Dijkstra ran with the net's own previous tree
        // subtracted; the live one subtracts own_cur.  Outside the marked
        // diff edges and the own-tree symmetric difference the adjusted
        // costs agree automatically, so only those edges need checking.
        const auto pt = prev_tree_of.find(k);
        LAC_CHECK(pt != prev_tree_of.end());
        const std::vector<int> own_prev = edge_indices_of(*pt->second);
        auto adjusted_eq = [&](int e) {
          const auto se = static_cast<std::size_t>(e);
          if (h_prev[se] != history_[se]) return false;
          const double ap =
              u_prev[se] -
              (std::binary_search(own_prev.begin(), own_prev.end(), e) ? 1.0
                                                                       : 0.0);
          const double ac =
              usage_[se] -
              (std::binary_search(own_cur.begin(), own_cur.end(), e) ? 1.0
                                                                     : 0.0);
          return cong_eq(ap, ac);
        };
        bool ok = true;
        for (const int e : diff_list) {
          if (!diff[static_cast<std::size_t>(e)]) continue;  // stale entry
          if (!adjusted_eq(e)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          for (std::size_t a = 0, b = 0;
               ok && (a < own_prev.size() || b < own_cur.size());) {
            int e;
            if (b >= own_cur.size() ||
                (a < own_prev.size() && own_prev[a] < own_cur[b])) {
              e = own_prev[a++];
            } else if (a >= own_prev.size() || own_cur[b] < own_prev[a]) {
              e = own_cur[b++];
            } else {  // present in both: adjustment cancels
              ++a;
              ++b;
              continue;
            }
            if (!adjusted_eq(e)) ok = false;
          }
        }
        if (ok) {
          next = ev.tree;
          reused = true;
        }
        commit_prev(ev);
        ++cursor;
      }
      // Rip the net's own tree, then (when not reusing) route on the live
      // state with no overlay — exactly the sequential reference semantics.
      add_usage(trees[i], -1.0);
      for (const int e : own_cur) update_diff(e);
      if (!reused) next = route_one(nets[i]);
      trees[i] = std::move(next);
      add_usage(trees[i], 1.0);
      for (const auto& [a, b] : trees[i].edges) update_diff(edge_index(a, b));
      record(k, round + 1, trees[i]);
      ++(reused ? local_inc.reused_ripup : local_inc.cold_ripup);
    }
    const long long rerouted = static_cast<long long>(to_reroute.size());
    stats_.nets_rerouted += rerouted;
    round_span.annotate("nets_rerouted", rerouted);
  }

  finalize_stats(trees);
  span.annotate("nets_routed", stats_.nets_routed);
  span.annotate("nets_rerouted", stats_.nets_rerouted);
  span.annotate("ripup_rounds_used", stats_.ripup_rounds_used);
  span.annotate("overflowed_edges", stats_.overflowed_edges);
  span.annotate("max_usage", stats_.max_usage);
  span.annotate("total_wirelength_um", stats_.total_wirelength_um);
  if (inc != nullptr) *inc = local_inc;
  return trees;
}

}  // namespace lac::route
