#include "route/global_router.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "base/check.h"
#include "base/parallel.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace lac::route {

GlobalRouter::GlobalRouter(const tile::TileGrid& grid, RouterOptions opt)
    : grid_(grid), opt_(opt) {
  const int nh = (grid_.nx() - 1) * grid_.ny();   // horizontal boundaries
  const int nv = grid_.nx() * (grid_.ny() - 1);   // vertical boundaries
  usage_.assign(static_cast<std::size_t>(nh + nv), 0.0);
  history_.assign(static_cast<std::size_t>(nh + nv), 0.0);
}

int GlobalRouter::edge_index(int cell_a, int cell_b) const {
  const int nx = grid_.nx();
  int a = std::min(cell_a, cell_b);
  int b = std::max(cell_a, cell_b);
  if (b == a + 1) {
    // horizontal edge between (gx, gy) and (gx+1, gy), gx = a % nx
    LAC_CHECK(a % nx != nx - 1);
    return (a / nx) * (nx - 1) + (a % nx);
  }
  LAC_CHECK(b == a + nx);
  return (nx - 1) * grid_.ny() + a;  // vertical edges after all horizontal
}

RouteTree GlobalRouter::route_one(const RouteRequest& net) const {
  return route_one(net, usage_.data(), nullptr);
}

RouteTree GlobalRouter::route_one(
    const RouteRequest& net, const double* usage,
    const std::vector<int>* removed_edges) const {
  const int nx = grid_.nx();
  const int ny = grid_.ny();
  const int n_cells = nx * ny;
  auto idx = [&](const Cell& c) { return c.gy * nx + c.gx; };

  RouteTree tree;
  // Distinct sink cells, excluding the source cell (colocated sinks need no
  // global wire).
  std::vector<Cell> sinks;
  for (const Cell& s : net.sinks)
    if (s != net.source &&
        std::find(sinks.begin(), sinks.end(), s) == sinks.end())
      sinks.push_back(s);
  if (sinks.empty()) return tree;

  // parent[cell] = neighbour one step closer to the source along the tree.
  std::vector<int> parent(static_cast<std::size_t>(n_cells), -2);  // -2: not in tree
  parent[static_cast<std::size_t>(idx(net.source))] = -1;          // root
  std::vector<int> tree_cells{idx(net.source)};

  std::vector<double> dist(static_cast<std::size_t>(n_cells));
  std::vector<int> pred(static_cast<std::size_t>(n_cells));
  std::vector<char> pending_sink(static_cast<std::size_t>(n_cells), 0);
  for (const Cell& s : sinks) pending_sink[static_cast<std::size_t>(idx(s))] = 1;

  auto edge_cost = [&](int a, int b) {
    const int e = edge_index(a, b);
    double u = usage[static_cast<std::size_t>(e)];
    if (removed_edges != nullptr &&
        std::binary_search(removed_edges->begin(), removed_edges->end(), e))
      u -= 1.0;
    const double cap = opt_.edge_capacity;
    double cost = 1.0 + history_[static_cast<std::size_t>(e)];
    if (u >= cap) {
      cost += opt_.congestion_weight * (1.0 + (u - cap));
    } else if (u > 0.5 * cap) {
      cost += opt_.congestion_weight * (u - 0.5 * cap) / (0.5 * cap);
    }
    return cost;
  };

  int remaining = static_cast<int>(sinks.size());
  while (remaining > 0) {
    // Dijkstra from the whole current tree to the nearest pending sink.
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    std::fill(pred.begin(), pred.end(), -1);
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    for (const int c : tree_cells) {
      dist[static_cast<std::size_t>(c)] = 0.0;
      heap.push({0.0, c});
    }
    int found = -1;
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d != dist[static_cast<std::size_t>(u)]) continue;
      if (pending_sink[static_cast<std::size_t>(u)]) {
        found = u;
        break;
      }
      const int ux = u % nx, uy = u / nx;
      const int nbr[4] = {ux > 0 ? u - 1 : -1, ux < nx - 1 ? u + 1 : -1,
                          uy > 0 ? u - nx : -1, uy < ny - 1 ? u + nx : -1};
      for (const int v : nbr) {
        if (v < 0) continue;
        const double nd = d + edge_cost(u, v);
        if (nd < dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] = nd;
          pred[static_cast<std::size_t>(v)] = u;
          heap.push({nd, v});
        }
      }
    }
    LAC_CHECK_MSG(found != -1, "maze router failed to reach a sink");

    // Splice the new path into the tree (stop where it meets the tree).
    int v = found;
    while (parent[static_cast<std::size_t>(v)] == -2) {
      const int p = pred[static_cast<std::size_t>(v)];
      LAC_CHECK(p != -1);
      parent[static_cast<std::size_t>(v)] = p;
      tree_cells.push_back(v);
      v = p;
    }
    pending_sink[static_cast<std::size_t>(found)] = 0;
    --remaining;
  }

  // Emit per-sink source paths (parallel to net.sinks — a sink colocated
  // with the source gets the trivial single-cell path) and the edge set.
  tree.sink_paths.reserve(net.sinks.size());
  for (const Cell& s : net.sinks) {
    std::vector<Cell> path;
    for (int v = idx(s); v != -1; v = parent[static_cast<std::size_t>(v)])
      path.push_back(Cell{v % nx, v / nx});
    std::reverse(path.begin(), path.end());
    LAC_CHECK(path.front() == net.source);
    tree.sink_paths.push_back(std::move(path));
  }
  for (const int c : tree_cells) {
    const int p = parent[static_cast<std::size_t>(c)];
    if (p >= 0) tree.edges.emplace_back(std::min(c, p), std::max(c, p));
  }
  std::sort(tree.edges.begin(), tree.edges.end());
  tree.edges.erase(std::unique(tree.edges.begin(), tree.edges.end()),
                   tree.edges.end());
  return tree;
}

void GlobalRouter::add_usage(const RouteTree& t, double delta) {
  for (const auto& [a, b] : t.edges)
    usage_[static_cast<std::size_t>(edge_index(a, b))] += delta;
}

void GlobalRouter::route_batch(const std::vector<RouteRequest>& nets,
                               const std::vector<std::size_t>& batch,
                               bool ripup, std::vector<RouteTree>& trees,
                               std::vector<char>& dirty) {
  // Candidates are routed in parallel against a frozen usage snapshot;
  // edge_cost is constant below half capacity, so a candidate stays exact
  // as long as every usage change from earlier commits in this batch kept
  // its edge in the flat-cost region (or didn't change effective usage at
  // all).  That check is done per net at commit time, in batch order.
  const std::vector<double> snapshot = usage_;
  std::vector<RouteTree> candidates(batch.size());
  std::vector<std::vector<int>> own(batch.size());
  if (ripup) {
    for (std::size_t k = 0; k < batch.size(); ++k) {
      for (const auto& [a, b] : trees[batch[k]].edges)
        own[k].push_back(edge_index(a, b));
      std::sort(own[k].begin(), own[k].end());
    }
  }
  base::parallel_for(opt_.exec, batch.size(), [&](std::size_t k) {
    candidates[k] =
        route_one(nets[batch[k]], snapshot.data(), ripup ? &own[k] : nullptr);
  });

  const double half = 0.5 * opt_.edge_capacity;
  std::vector<int> dirty_list;
  auto mark = [&](const RouteTree& t) {
    for (const auto& [a, b] : t.edges) {
      const int e = edge_index(a, b);
      if (!dirty[static_cast<std::size_t>(e)]) {
        dirty[static_cast<std::size_t>(e)] = 1;
        dirty_list.push_back(e);
      }
    }
  };
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const std::size_t i = batch[k];
    bool valid = true;
    for (const int e : dirty_list) {
      double s = snapshot[static_cast<std::size_t>(e)];
      double c = usage_[static_cast<std::size_t>(e)];
      if (ripup && std::binary_search(own[k].begin(), own[k].end(), e)) {
        s -= 1.0;
        c -= 1.0;
      }
      if (s != c && !(s <= half && c <= half)) {
        valid = false;
        break;
      }
    }
    if (ripup) {
      mark(trees[i]);
      add_usage(trees[i], -1.0);
    }
    if (valid)
      trees[i] = std::move(candidates[k]);
    else
      trees[i] = route_one(nets[i]);  // sequential fallback, current usage
    add_usage(trees[i], 1.0);
    mark(trees[i]);
  }
  for (const int e : dirty_list) dirty[static_cast<std::size_t>(e)] = 0;
}

std::vector<RouteTree> GlobalRouter::route_all(
    const std::vector<RouteRequest>& nets) {
  stats_ = {};
  obs::Span span("route.route_all");
  span.annotate("nets", nets.size());
  std::vector<RouteTree> trees(nets.size());
  // Initial routing, long nets first (they have the least flexibility).
  std::vector<std::size_t> order(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    auto span = [&](const RouteRequest& n) {
      Coord s = 0;
      for (const Cell& c : n.sinks)
        s += std::abs(c.gx - n.source.gx) + std::abs(c.gy - n.source.gy);
      return s;
    };
    return span(nets[a]) > span(nets[b]);
  });
  // One batched path for every thread count, with a fixed batch size: the
  // snapshot-validity check already makes the result independent of how
  // the batch is split, and a worker-independent batch partition keeps
  // every per-batch effect — obs task captures, snapshot/candidate
  // allocations charged to the route span — byte-identical too.
  std::vector<char> dirty(usage_.size(), 0);
  constexpr std::size_t kBatchSize = 32;
  for (std::size_t begin = 0; begin < order.size(); begin += kBatchSize) {
    const std::size_t end = std::min(order.size(), begin + kBatchSize);
    const std::vector<std::size_t> batch(
        order.begin() + static_cast<std::ptrdiff_t>(begin),
        order.begin() + static_cast<std::ptrdiff_t>(end));
    route_batch(nets, batch, /*ripup=*/false, trees, dirty);
  }

  // Rip-up & re-route rounds over nets that touch overflowed edges.
  for (int round = 0; round < opt_.ripup_rounds; ++round) {
    std::vector<char> overflowed(usage_.size(), 0);
    int n_over = 0;
    for (std::size_t e = 0; e < usage_.size(); ++e) {
      if (usage_[e] > opt_.edge_capacity) {
        overflowed[e] = 1;
        ++n_over;
        history_[e] += opt_.history_weight;
      }
    }
    if (n_over == 0) break;
    obs::Span round_span("route.ripup_round");
    round_span.annotate("round", round + 1);
    round_span.annotate("overflowed_edges", n_over);
    stats_.ripup_rounds_used = round + 1;
    // The reroute set is fixed at round start: every net is tested before
    // it is itself rerouted, and reroutes of other nets don't change it.
    std::vector<std::size_t> to_reroute;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (!trees[i].routed()) continue;
      for (const auto& [a, b] : trees[i].edges)
        if (overflowed[static_cast<std::size_t>(edge_index(a, b))]) {
          to_reroute.push_back(i);
          break;
        }
    }
    for (std::size_t begin = 0; begin < to_reroute.size();
         begin += kBatchSize) {
      const std::size_t end = std::min(to_reroute.size(), begin + kBatchSize);
      const std::vector<std::size_t> batch(
          to_reroute.begin() + static_cast<std::ptrdiff_t>(begin),
          to_reroute.begin() + static_cast<std::ptrdiff_t>(end));
      route_batch(nets, batch, /*ripup=*/true, trees, dirty);
    }
    const long long rerouted = static_cast<long long>(to_reroute.size());
    stats_.nets_rerouted += rerouted;
    round_span.annotate("nets_rerouted", rerouted);
  }

  // Final statistics.
  stats_.total_wirelength_um = 0.0;
  stats_.overflowed_edges = 0;
  stats_.max_usage = 0.0;
  for (const auto& t : trees) {
    if (t.routed()) ++stats_.nets_routed;
    stats_.total_wirelength_um +=
        static_cast<double>(t.edges.size()) *
        static_cast<double>(grid_.tile_size());
  }
  for (const double u : usage_) {
    stats_.max_usage = std::max(stats_.max_usage, u);
    if (u > opt_.edge_capacity) ++stats_.overflowed_edges;
    if (u <= 0.0) {
      ++stats_.idle_edges;
      continue;
    }
    const double ratio = u / opt_.edge_capacity;
    std::size_t b = 0;
    while (b < RoutingStats::kUsageBucketBounds.size() &&
           ratio > RoutingStats::kUsageBucketBounds[b])
      ++b;
    ++stats_.usage_histogram[b];
  }

  span.annotate("nets_routed", stats_.nets_routed);
  span.annotate("nets_rerouted", stats_.nets_rerouted);
  span.annotate("ripup_rounds_used", stats_.ripup_rounds_used);
  span.annotate("overflowed_edges", stats_.overflowed_edges);
  span.annotate("max_usage", stats_.max_usage);
  span.annotate("total_wirelength_um", stats_.total_wirelength_um);
  obs::count("route.nets", stats_.nets_routed);
  obs::count("route.nets_rerouted", stats_.nets_rerouted);
  obs::count("route.overflowed_edges", stats_.overflowed_edges);
  obs::observe("route.max_usage", stats_.max_usage);
  return trees;
}

}  // namespace lac::route
