// Standalone rectilinear Steiner tree construction.
//
// The planner's global router (global_router.h) builds congestion-aware
// trees on the tile grid by maze expansion; this module provides the
// geometric counterpart used for fast wirelength estimation (e.g. when
// sizing channels before any routing exists): a classic MST-based
// rectilinear Steiner heuristic in the spirit of Ho–Vijayan–Wong [5] —
// build the rectilinear minimum spanning tree, then embed each tree edge
// as an L whose orientation maximises overlap with already-embedded
// segments, which introduces Steiner points for free.
//
// Quality: never worse than the RMST (overlap can only help), hence within
// 1.5x of the rectilinear Steiner minimum; typically 8–12% better than the
// RMST on random instances (see tests).
#pragma once

#include <utility>
#include <vector>

#include "base/geometry.h"

namespace lac::route {

struct SteinerTree {
  std::vector<Point> terminals;
  // Axis-aligned segments (lo <= hi on the varying axis); overlapping
  // collinear spans have been merged, so summing lengths counts shared
  // trunk wire once.
  std::vector<std::pair<Point, Point>> segments;

  [[nodiscard]] Coord length() const;
};

// Builds a tree over the distinct terminals.  A single terminal yields an
// empty segment set.
[[nodiscard]] SteinerTree rectilinear_steiner(std::vector<Point> terminals);

// Length of the rectilinear minimum spanning tree (Prim), the baseline the
// Steiner construction improves on.
[[nodiscard]] Coord rmst_length(const std::vector<Point>& terminals);

// Half-perimeter wirelength of the terminals' bounding box — a lower bound
// for any connecting tree.
[[nodiscard]] Coord hpwl(const std::vector<Point>& terminals);

}  // namespace lac::route
