// Repeater planning and interconnect-unit segmentation (paper §3.2, §4.1).
//
// Repeaters are inserted on each routed Steiner tree so that the wire
// length between consecutive repeaters (and between a terminal and its
// nearest repeater) never exceeds L_max, the signal-integrity bound.  The
// placement walks the tree from the driver; when the unrepeated length
// would exceed L_max it places a repeater, choosing — among the recent
// cells that keep both spacings legal — the one whose tile has the most
// remaining capacity (the capacity-aware refinement of Alpert-style site
// selection).  Each placed repeater permanently consumes tile capacity, so
// the capacities the retimer later sees are "after repeater insertion"
// exactly as the paper specifies.
//
// Segmentation: every driver→sink path is cut at its repeaters into
// *interconnect units*.  Unit delay = (repeater intrinsic delay if the unit
// starts at a repeater) + Elmore delay of the wire span into the next
// stage's input capacitance.  Optionally each stage is further subdivided
// into `units_per_segment` sub-units (the paper's "even more flexibility"
// refinement), with delay apportioned by length — a fixed, conservative
// assignment per the paper's max-delay rule.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "route/global_router.h"
#include "tile/tile_grid.h"
#include "timing/technology.h"

namespace lac::repeater {

struct InterconnectUnit {
  double delay_ps = 0.0;
  tile::TileId tile;   // tile a flip-flop placed after this unit lands in
  route::Cell at;      // representative cell (end of the unit's span)
};

struct BufferedSinkPath {
  std::vector<InterconnectUnit> units;  // ordered driver -> sink
  double total_delay_ps = 0.0;          // sum of unit delays
  double length_um = 0.0;
};

struct BufferedNet {
  std::vector<route::Cell> repeater_cells;  // on the tree, distinct
  std::vector<BufferedSinkPath> sinks;      // parallel to RouteTree::sink_paths
};

struct RepeaterPlanOptions {
  int units_per_segment = 1;   // >= 1; sub-division of repeater stages
  bool capacity_aware = true;  // look-back site selection by tile capacity
};

// Replay trace of one plan() call: every grid interaction the planner's
// decisions depended on, in query order.  try_replay() re-validates the
// trace against the current grid and, when every query still returns the
// recorded answer, re-applies the recorded result without re-planning —
// exact because plan() is a deterministic function of (tree, these
// query answers).
struct PlanTrace {
  struct Event {
    enum Kind : std::uint8_t { kTileQuery, kCapacityQuery, kConsume };
    Kind kind = Kind::kTileQuery;
    int cell = 0;            // physical grid cell index (gy * nx + gx)
    tile::TileId tile;       // tile_of_cell(cell) at plan time
    double capacity = 0.0;   // capacity(tile) at query time (kCapacityQuery)
  };
  std::vector<Event> events;
};

class RepeaterPlanner {
 public:
  // The grid is mutated: every repeater consumes `tech.repeater_area`.
  RepeaterPlanner(tile::TileGrid& grid, const timing::Technology& tech,
                  RepeaterPlanOptions opt = {});

  // `driver_res` = output resistance of the net's driving functional unit;
  // `sink_cap` = input capacitance presented by each sink functional unit.
  // When `trace` is non-null the call records its grid queries for later
  // try_replay().
  [[nodiscard]] BufferedNet plan(const route::RouteTree& tree,
                                 double driver_res, double sink_cap,
                                 PlanTrace* trace = nullptr);

  // Replays a previous plan() of the *same* tree (and the same tech /
  // options / driver_res / sink_cap — the caller's responsibility).
  // Returns a copy of `prev_result` after consuming the recorded tile
  // capacity iff every recorded query answer matches the current grid;
  // returns nullopt (grid untouched) otherwise, in which case the caller
  // re-plans.
  [[nodiscard]] std::optional<BufferedNet> try_replay(
      const BufferedNet& prev_result, const PlanTrace& trace);

  [[nodiscard]] int repeaters_inserted() const { return repeaters_inserted_; }
  [[nodiscard]] double area_consumed() const { return area_consumed_; }

 private:
  tile::TileGrid& grid_;
  const timing::Technology& tech_;
  RepeaterPlanOptions opt_;
  int repeaters_inserted_ = 0;
  double area_consumed_ = 0.0;
};

}  // namespace lac::repeater
