#include "repeater/repeater_planner.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/check.h"
#include "obs/metrics.h"

namespace lac::repeater {

namespace {

// Tree adjacency reconstructed from the distinct edge list.
struct Tree {
  std::map<int, std::vector<int>> adj;
};

}  // namespace

RepeaterPlanner::RepeaterPlanner(tile::TileGrid& grid,
                                 const timing::Technology& tech,
                                 RepeaterPlanOptions opt)
    : grid_(grid), tech_(tech), opt_(opt) {
  LAC_CHECK(opt_.units_per_segment >= 1);
  LAC_CHECK(tech_.max_repeater_interval >= static_cast<double>(grid_.tile_size()));
}

BufferedNet RepeaterPlanner::plan(const route::RouteTree& tree,
                                  double driver_res, double sink_cap,
                                  PlanTrace* trace) {
  BufferedNet out;
  if (!tree.routed()) return out;

  const int nx = grid_.nx();
  auto cell_idx = [&](const route::Cell& c) { return c.gy * nx + c.gx; };
  auto cell_of = [&](int i) { return route::Cell{i % nx, i / nx}; };
  const double step = static_cast<double>(grid_.tile_size());
  const double lmax = tech_.max_repeater_interval;

  // Traced grid reads: every answer a planning decision depends on is
  // recorded so try_replay() can re-validate it later.
  auto read_capacity = [&](int cell) {
    const tile::TileId tid = grid_.tile_of_cell(cell % nx, cell / nx);
    const double cap = grid_.capacity(tid);
    if (trace != nullptr)
      trace->events.push_back(
          {PlanTrace::Event::kCapacityQuery, cell, tid, cap});
    return cap;
  };
  auto read_tile = [&](int cell) {
    const tile::TileId tid = grid_.tile_of_cell(cell % nx, cell / nx);
    if (trace != nullptr)
      trace->events.push_back({PlanTrace::Event::kTileQuery, cell, tid, 0.0});
    return tid;
  };

  Tree t;
  for (const auto& [a, b] : tree.edges) {
    t.adj[a].push_back(b);
    t.adj[b].push_back(a);
  }
  const int root = cell_idx(tree.sink_paths.front().front());

  // DFS with unrepeated-distance tracking.  `chain` holds the cells since
  // the last repeater on the current root path, below the last branch point
  // (the look-back window must not cross a branch: cells above a branch
  // affect other subtrees whose spacing decisions were already taken).
  std::set<int> repeater_at;
  struct Frame {
    int cell;
    int parent;
    double dist;                          // unrepeated length entering cell
    std::vector<std::pair<int, double>> chain;  // look-back candidates
  };
  std::vector<Frame> stack;
  stack.push_back({root, -1, 0.0, {}});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();

    const auto& nbrs = t.adj[f.cell];
    int degree_down = 0;
    for (const int n : nbrs) degree_down += (n != f.parent);

    for (const int n : nbrs) {
      if (n == f.parent) continue;
      double ndist = f.dist + step;
      auto nchain = degree_down > 1
                        ? std::vector<std::pair<int, double>>{}
                        : f.chain;  // branch point: reset look-back window
      int place_at = -1;
      if (ndist > lmax) {
        // Must place a repeater at some cell on the chain (or the current
        // cell) so the spacing into `n` is legal.
        place_at = f.cell;
        double best_cap = read_capacity(f.cell);
        if (opt_.capacity_aware) {
          for (const auto& [c, d] : nchain) {
            // Placing at c leaves `ndist - d` of wire into n; require legal.
            if (ndist - d > lmax) continue;
            const double cap = read_capacity(c);
            if (cap > best_cap) {
              best_cap = cap;
              place_at = c;
            }
          }
        }
      }
      if (place_at != -1) {
        if (repeater_at.insert(place_at).second) {
          const tile::TileId tid =
              grid_.tile_of_cell(place_at % nx, place_at / nx);
          if (trace != nullptr)
            trace->events.push_back(
                {PlanTrace::Event::kConsume, place_at, tid, 0.0});
          grid_.consume(tid, tech_.repeater_area);
          area_consumed_ += tech_.repeater_area;
          ++repeaters_inserted_;
          obs::count("repeater.inserted");
        }
        // Distance now measured from the repeater.
        double d_at = 0.0;
        for (const auto& [c, d] : nchain)
          if (c == place_at) d_at = d;
        if (place_at == f.cell) d_at = f.dist;
        ndist = ndist - d_at;
        // Truncate the chain after the repeater.
        std::vector<std::pair<int, double>> trimmed;
        bool after = false;
        for (const auto& [c, d] : nchain) {
          if (after) trimmed.emplace_back(c, d - d_at);
          if (c == place_at) after = true;
        }
        if (place_at != f.cell) trimmed.emplace_back(f.cell, f.dist - d_at);
        nchain = std::move(trimmed);
      } else {
        nchain.emplace_back(f.cell, f.dist);
      }
      stack.push_back({n, f.cell, ndist, std::move(nchain)});
    }
  }

  for (const int c : repeater_at) out.repeater_cells.push_back(cell_of(c));

  // Segmentation of each driver->sink path at the repeaters.
  out.sinks.reserve(tree.sink_paths.size());
  for (const auto& path : tree.sink_paths) {
    BufferedSinkPath bsp;
    bsp.length_um = static_cast<double>(path.size() - 1) * step;

    // Stage boundaries: indices into `path` where a stage ends.
    std::vector<std::size_t> cuts;
    for (std::size_t i = 1; i + 1 < path.size(); ++i)
      if (repeater_at.count(cell_idx(path[i]))) cuts.push_back(i);
    cuts.push_back(path.size() - 1);

    std::size_t begin = 0;
    for (std::size_t s = 0; s < cuts.size(); ++s) {
      const std::size_t end = cuts[s];
      const double len = static_cast<double>(end - begin) * step;
      const bool starts_at_repeater = s > 0;
      const bool ends_at_sink = (s + 1 == cuts.size());
      const double rd = starts_at_repeater ? tech_.repeater_out_res : driver_res;
      const double cl = ends_at_sink ? sink_cap : tech_.repeater_in_cap;
      double stage_delay = timing::wire_elmore_delay(tech_, rd, len, cl);
      if (starts_at_repeater) stage_delay += tech_.repeater_intrinsic_delay;

      // Sub-divide the stage into fixed-delay interconnect units.
      const int k = opt_.units_per_segment;
      for (int u = 0; u < k; ++u) {
        // Representative cell: end of this sub-span along the path.
        const std::size_t pos =
            begin + (end - begin) * static_cast<std::size_t>(u + 1) /
                        static_cast<std::size_t>(k);
        InterconnectUnit unit;
        unit.delay_ps = stage_delay / k;
        unit.at = path[pos];
        unit.tile = read_tile(cell_idx(unit.at));
        bsp.units.push_back(unit);
      }
      bsp.total_delay_ps += stage_delay;
      begin = end;
    }
    // Degenerate single-cell path: no wire, no units.
    if (path.size() == 1) {
      bsp.units.clear();
      bsp.total_delay_ps = 0.0;
    }
    out.sinks.push_back(std::move(bsp));
  }
  return out;
}

std::optional<BufferedNet> RepeaterPlanner::try_replay(
    const BufferedNet& prev_result, const PlanTrace& trace) {
  const int nx = grid_.nx();
  // Pass 1: validate every recorded answer against the current grid without
  // mutating it.  Consumes recorded earlier in the trace lower the expected
  // value of later capacity reads on the same tile, so they are simulated
  // through `pending`.
  std::map<int, double> pending;  // tile index -> consumed area so far
  for (const auto& ev : trace.events) {
    const tile::TileId tid = grid_.tile_of_cell(ev.cell % nx, ev.cell / nx);
    if (tid != ev.tile) return std::nullopt;
    switch (ev.kind) {
      case PlanTrace::Event::kTileQuery:
        break;
      case PlanTrace::Event::kCapacityQuery: {
        double cap = grid_.capacity(tid);
        const auto it = pending.find(tid.value());
        if (it != pending.end()) cap -= it->second;
        if (cap != ev.capacity) return std::nullopt;
        break;
      }
      case PlanTrace::Event::kConsume:
        pending[tid.value()] += tech_.repeater_area;
        break;
    }
  }
  // Pass 2: the trace holds — apply the consumes and accounting for real.
  for (const auto& ev : trace.events) {
    if (ev.kind != PlanTrace::Event::kConsume) continue;
    grid_.consume(ev.tile, tech_.repeater_area);
    area_consumed_ += tech_.repeater_area;
    ++repeaters_inserted_;
    obs::count("repeater.inserted");
  }
  return prev_result;
}

}  // namespace lac::repeater
