#include "obs/analyze.h"

#include <algorithm>
#include <map>
#include <utility>

namespace lac::obs {

namespace {

Annotation annotation_from_json(const std::string& key, const json::Value& v) {
  Annotation a;
  a.key = key;
  switch (v.kind) {
    case json::Value::Kind::kString:
      a.kind = Annotation::Kind::kString;
      a.s = v.str;
      break;
    case json::Value::Kind::kBool:
      a.kind = Annotation::Kind::kBool;
      a.b = v.b;
      break;
    case json::Value::Kind::kNumber: {
      // Report writers emit integral annotations without a fraction;
      // recover the integer kind when the value round-trips exactly.
      const auto i = static_cast<std::int64_t>(v.num);
      if (static_cast<double>(i) == v.num) {
        a.kind = Annotation::Kind::kInt;
        a.i = i;
      } else {
        a.kind = Annotation::Kind::kDouble;
        a.d = v.num;
      }
      break;
    }
    default:
      a.kind = Annotation::Kind::kString;
      break;
  }
  return a;
}

}  // namespace

std::optional<SpanNode> span_from_json(const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  const json::Value* name = v.find("name");
  if (name == nullptr || name->kind != json::Value::Kind::kString)
    return std::nullopt;
  SpanNode node;
  node.name = name->str;
  if (const json::Value* s = v.find("seconds");
      s != nullptr && s->kind == json::Value::Kind::kNumber)
    node.seconds = s->num;
  // Memory fields (v2).  Any one present marks the span as tracked; v1
  // reports and strip-times'd baselines leave mem_valid false.
  const auto read_bytes = [&](const char* key, std::int64_t& out) {
    if (const json::Value* b = v.find(key);
        b != nullptr && b->kind == json::Value::Kind::kNumber) {
      out = static_cast<std::int64_t>(b->num);
      node.mem_valid = true;
    }
  };
  read_bytes("alloc_bytes", node.alloc_bytes);
  read_bytes("freed_bytes", node.freed_bytes);
  read_bytes("peak_live_bytes", node.peak_live_bytes);
  if (const json::Value* ann = v.find("annotations"); ann && ann->is_object())
    for (const auto& [k, av] : ann->object)
      node.annotations.push_back(annotation_from_json(k, av));
  if (const json::Value* kids = v.find("children"); kids && kids->is_array())
    for (const json::Value& c : kids->array)
      if (auto child = span_from_json(c)) node.children.push_back(*child);
  return node;
}

std::vector<SpanNode> trace_from_report(const json::Value& report) {
  std::vector<SpanNode> roots;
  const json::Value* trace = report.find("trace");
  if (trace == nullptr || !trace->is_array()) return roots;
  for (const json::Value& v : trace->array)
    if (auto span = span_from_json(v)) roots.push_back(std::move(*span));
  return roots;
}

namespace {

bool span_json_has_times(const json::Value& v) {
  if (!v.is_object()) return false;
  if (const json::Value* s = v.find("seconds");
      s != nullptr && s->kind == json::Value::Kind::kNumber)
    return true;
  if (const json::Value* kids = v.find("children"); kids && kids->is_array())
    for (const json::Value& c : kids->array)
      if (span_json_has_times(c)) return true;
  return false;
}

}  // namespace

bool report_has_times(const json::Value& report) {
  const json::Value* trace = report.find("trace");
  if (trace == nullptr || !trace->is_array()) return false;
  for (const json::Value& v : trace->array)
    if (span_json_has_times(v)) return true;
  return false;
}

double self_seconds(const SpanNode& node) {
  double child_total = 0.0;
  for (const SpanNode& c : node.children) child_total += c.seconds;
  return std::max(0.0, node.seconds - child_total);
}

std::int64_t self_alloc_bytes(const SpanNode& node) {
  std::int64_t child_total = 0;
  for (const SpanNode& c : node.children) child_total += c.alloc_bytes;
  return std::max<std::int64_t>(0, node.alloc_bytes - child_total);
}

namespace {

void accumulate(const SpanNode& node,
                std::map<std::string, SpanStats>& by_name) {
  SpanStats& s = by_name[node.name];
  if (s.count == 0) {
    s.name = node.name;
    s.min_seconds = node.seconds;
    s.max_seconds = node.seconds;
  } else {
    s.min_seconds = std::min(s.min_seconds, node.seconds);
    s.max_seconds = std::max(s.max_seconds, node.seconds);
  }
  ++s.count;
  s.total_seconds += node.seconds;
  s.self_seconds += self_seconds(node);
  if (node.mem_valid) {
    s.has_mem = true;
    s.alloc_bytes += node.alloc_bytes;
    s.freed_bytes += node.freed_bytes;
    s.self_alloc_bytes += lac::obs::self_alloc_bytes(node);
    s.peak_live_bytes = std::max(s.peak_live_bytes, node.peak_live_bytes);
  }
  for (const SpanNode& c : node.children) accumulate(c, by_name);
}

}  // namespace

std::vector<SpanStats> aggregate_spans(const std::vector<SpanNode>& roots) {
  std::map<std::string, SpanStats> by_name;
  for (const SpanNode& r : roots) accumulate(r, by_name);
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [_, s] : by_name) out.push_back(std::move(s));
  std::sort(out.begin(), out.end(),
            [](const SpanStats& a, const SpanStats& b) {
              if (a.total_seconds != b.total_seconds)
                return a.total_seconds > b.total_seconds;
              return a.name < b.name;
            });
  return out;
}

std::vector<const SpanNode*> critical_chain(
    const std::vector<SpanNode>& roots) {
  std::vector<const SpanNode*> chain;
  const SpanNode* cur = nullptr;
  for (const SpanNode& r : roots)
    if (cur == nullptr || r.seconds > cur->seconds) cur = &r;
  while (cur != nullptr) {
    chain.push_back(cur);
    const SpanNode* hottest = nullptr;
    for (const SpanNode& c : cur->children)
      if (hottest == nullptr || c.seconds > hottest->seconds) hottest = &c;
    cur = hottest;
  }
  return chain;
}

}  // namespace lac::obs
