#include "obs/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/analyze.h"

namespace lac::obs {

namespace {

// Non-timing doubles (gauges, histogram sums of counts) come from the
// same deterministic arithmetic as the counters; the epsilon only
// forgives decimal round-tripping through the report text.
constexpr double kExactRelTol = 1e-9;

bool nearly_equal(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  if (a == b) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= kExactRelTol * scale;
}

std::map<std::string, double> number_map(const json::Value& report,
                                         std::string_view section) {
  std::map<std::string, double> out;
  if (const json::Value* obj = report.at_path({"metrics", section});
      obj != nullptr && obj->is_object())
    for (const auto& [k, v] : obj->object)
      if (v.kind == json::Value::Kind::kNumber) out.emplace(k, v.num);
  return out;
}

std::map<std::string, const json::Value*> object_map(
    const json::Value& report, std::string_view section) {
  std::map<std::string, const json::Value*> out;
  if (const json::Value* obj = report.at_path({"metrics", section});
      obj != nullptr && obj->is_object())
    for (const auto& [k, v] : obj->object)
      if (v.is_object()) out.emplace(k, &v);
  return out;
}

void raise(DiffResult& res, Verdict v) {
  if (static_cast<int>(v) > static_cast<int>(res.verdict)) res.verdict = v;
}

void add_entry(DiffResult& res, DiffEntry::Kind kind, std::string name,
               double baseline, double current, Verdict verdict,
               std::string note = {}) {
  raise(res, verdict);
  res.entries.push_back({kind, std::move(name), baseline, current, verdict,
                         std::move(note)});
}

bool ignored(std::string_view name, const DiffOptions& opts) {
  for (const std::string& p : opts.ignore_prefixes)
    if (name.size() >= p.size() && name.compare(0, p.size(), p) == 0)
      return true;
  return false;
}

Verdict timing_verdict(double base, double cur, const DiffOptions& opts,
                       std::string& note) {
  double rel;
  if (base > 0.0) {
    rel = std::fabs(cur - base) / base;
  } else {
    rel = cur >= opts.min_seconds ? opts.time_fail_tol + 1.0 : 0.0;
  }
  Verdict v = Verdict::kOk;
  if (rel > opts.time_fail_tol) {
    v = opts.timings_warn_only ? Verdict::kWarn : Verdict::kRegress;
  } else if (rel > opts.time_warn_tol) {
    v = Verdict::kWarn;
  }
  if (v != Verdict::kOk) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "timing moved %+.1f%%",
                  100.0 * (base > 0.0 ? (cur - base) / base : 1.0));
    note = buf;
    if (opts.timings_warn_only && rel > opts.time_fail_tol)
      note += " (capped at warn)";
  }
  return v;
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kWarn: return "warn";
    case Verdict::kRegress: return "regress";
  }
  return "?";
}

int DiffResult::count(Verdict v) const {
  int n = 0;
  for (const DiffEntry& e : entries)
    if (e.verdict == v) ++n;
  return n;
}

bool is_timing_name(std::string_view name) {
  return name.find("seconds") != std::string_view::npos;
}

bool is_noisy_name(std::string_view name) {
  return is_timing_name(name) || name.find("rss") != std::string_view::npos;
}

DiffResult diff_reports(const json::Value& baseline,
                        const json::Value& current,
                        const DiffOptions& opts) {
  DiffResult res;

  // Deterministic counters: exact match or hard fail, both directions.
  {
    const auto base = number_map(baseline, "counters");
    const auto cur = number_map(current, "counters");
    for (const auto& [name, bv] : base) {
      if (ignored(name, opts)) continue;
      const auto it = cur.find(name);
      if (it == cur.end()) {
        add_entry(res, DiffEntry::Kind::kCounter, name, bv, 0.0,
                  Verdict::kRegress, "counter missing from current report");
      } else if (bv != it->second) {
        add_entry(res, DiffEntry::Kind::kCounter, name, bv, it->second,
                  Verdict::kRegress, "deterministic counter changed");
      } else {
        add_entry(res, DiffEntry::Kind::kCounter, name, bv, it->second,
                  Verdict::kOk);
      }
    }
    for (const auto& [name, cv] : cur)
      if (base.find(name) == base.end() && !ignored(name, opts))
        add_entry(res, DiffEntry::Kind::kCounter, name, 0.0, cv,
                  Verdict::kRegress,
                  "counter not in baseline (regenerate the baseline?)");
  }

  // Gauges: timing-named ones follow the timing tolerance; rss readings
  // are machine-dependent and never gated; the rest are deterministic
  // (including logical-size mem.*_bytes gauges — those come from
  // container sizes, not the allocator).
  {
    const auto base = number_map(baseline, "gauges");
    const auto cur = number_map(current, "gauges");
    for (const auto& [name, bv] : base) {
      if (ignored(name, opts)) continue;
      const auto it = cur.find(name);
      if (is_noisy_name(name)) {
        if (!is_timing_name(name)) continue;  // rss: informational only
        if (it == cur.end()) continue;  // stripped side: nothing to diff
        if (bv < opts.min_seconds && it->second < opts.min_seconds) continue;
        std::string note;
        const Verdict v = timing_verdict(bv, it->second, opts, note);
        add_entry(res, DiffEntry::Kind::kGauge, name, bv, it->second, v,
                  std::move(note));
        continue;
      }
      if (it == cur.end()) {
        add_entry(res, DiffEntry::Kind::kGauge, name, bv, 0.0,
                  Verdict::kRegress, "gauge missing from current report");
      } else if (!nearly_equal(bv, it->second)) {
        add_entry(res, DiffEntry::Kind::kGauge, name, bv, it->second,
                  Verdict::kRegress, "deterministic gauge changed");
      } else {
        add_entry(res, DiffEntry::Kind::kGauge, name, bv, it->second,
                  Verdict::kOk);
      }
    }
    for (const auto& [name, cv] : cur)
      if (base.find(name) == base.end() && !is_noisy_name(name) &&
          !ignored(name, opts))
        add_entry(res, DiffEntry::Kind::kGauge, name, 0.0, cv,
                  Verdict::kRegress,
                  "gauge not in baseline (regenerate the baseline?)");
  }

  // Histograms: observation counts are deterministic; sums follow the
  // timing rules when the name is a timing (a strip-times'd baseline has
  // no timing sums, so those comparisons vanish).
  {
    const auto base = object_map(baseline, "histograms");
    const auto cur = object_map(current, "histograms");
    const auto num_field = [](const json::Value* h, const char* f,
                              double& out) {
      const json::Value* v = h->find(f);
      if (v == nullptr || v->kind != json::Value::Kind::kNumber) return false;
      out = v->num;
      return true;
    };
    for (const auto& [name, bh] : base) {
      if (ignored(name, opts)) continue;
      const auto it = cur.find(name);
      if (it == cur.end()) {
        add_entry(res, DiffEntry::Kind::kHistogram, name, 0.0, 0.0,
                  Verdict::kRegress, "histogram missing from current report");
        continue;
      }
      double bc = 0.0, cc = 0.0;
      if (num_field(bh, "count", bc) && num_field(it->second, "count", cc)) {
        if (bc != cc) {
          add_entry(res, DiffEntry::Kind::kHistogram, name + ".count", bc, cc,
                    Verdict::kRegress,
                    "deterministic observation count changed");
        } else {
          add_entry(res, DiffEntry::Kind::kHistogram, name + ".count", bc, cc,
                    Verdict::kOk);
        }
      }
      double bs = 0.0, cs = 0.0;
      if (num_field(bh, "sum", bs) && num_field(it->second, "sum", cs)) {
        if (is_timing_name(name)) {
          if (bs >= opts.min_seconds || cs >= opts.min_seconds) {
            std::string note;
            const Verdict v = timing_verdict(bs, cs, opts, note);
            add_entry(res, DiffEntry::Kind::kHistogram, name + ".sum", bs, cs,
                      v, std::move(note));
          }
        } else if (!nearly_equal(bs, cs)) {
          add_entry(res, DiffEntry::Kind::kHistogram, name + ".sum", bs, cs,
                    Verdict::kRegress, "deterministic histogram sum changed");
        }
      }
    }
    for (const auto& [name, ch] : cur)
      if (base.find(name) == base.end() && !ignored(name, opts))
        add_entry(res, DiffEntry::Kind::kHistogram, name, 0.0, 0.0,
                  Verdict::kRegress,
                  "histogram not in baseline (regenerate the baseline?)");
  }

  // Spans: per-name counts are deterministic structure; per-name total
  // times follow the timing tolerance and need wall-clock data on both
  // sides.
  {
    const auto broots = trace_from_report(baseline);
    const auto croots = trace_from_report(current);
    std::map<std::string, SpanStats> base, cur;
    for (const SpanStats& s : aggregate_spans(broots)) base.emplace(s.name, s);
    for (const SpanStats& s : aggregate_spans(croots)) cur.emplace(s.name, s);
    const bool both_timed =
        report_has_times(baseline) && report_has_times(current);
    for (const auto& [name, bs] : base) {
      if (ignored(name, opts)) continue;
      const auto it = cur.find(name);
      if (it == cur.end()) {
        add_entry(res, DiffEntry::Kind::kSpanCount, name,
                  static_cast<double>(bs.count), 0.0, Verdict::kRegress,
                  "span missing from current report");
        continue;
      }
      if (bs.count != it->second.count) {
        add_entry(res, DiffEntry::Kind::kSpanCount, name,
                  static_cast<double>(bs.count),
                  static_cast<double>(it->second.count), Verdict::kRegress,
                  "deterministic span count changed");
      } else {
        add_entry(res, DiffEntry::Kind::kSpanCount, name,
                  static_cast<double>(bs.count),
                  static_cast<double>(it->second.count), Verdict::kOk);
      }
      if (both_timed && (bs.total_seconds >= opts.min_seconds ||
                         it->second.total_seconds >= opts.min_seconds)) {
        std::string note;
        const Verdict v = timing_verdict(bs.total_seconds,
                                         it->second.total_seconds, opts, note);
        add_entry(res, DiffEntry::Kind::kSpanTime, name, bs.total_seconds,
                  it->second.total_seconds, v, std::move(note));
      }
    }
    for (const auto& [name, cs] : cur)
      if (base.find(name) == base.end() && !ignored(name, opts))
        add_entry(res, DiffEntry::Kind::kSpanCount, name, 0.0,
                  static_cast<double>(cs.count), Verdict::kRegress,
                  "span not in baseline (regenerate the baseline?)");
  }

  return res;
}

json::Value strip_span_times(const json::Value& span) {
  json::Value out;
  out.kind = json::Value::Kind::kObject;
  for (const auto& [k, v] : span.object) {
    if (k == "seconds") continue;
    // Allocation deltas are deterministic per build but shift with every
    // toolchain upgrade (container growth policies, node sizes); a
    // checked-in baseline must not pin them.
    if (k == "alloc_bytes" || k == "freed_bytes" || k == "peak_live_bytes")
      continue;
    if (k == "children" && v.is_array()) {
      json::Value kids;
      kids.kind = json::Value::Kind::kArray;
      for (const json::Value& c : v.array)
        kids.array.push_back(c.is_object() ? strip_span_times(c) : c);
      out.object.emplace_back(k, std::move(kids));
      continue;
    }
    out.object.emplace_back(k, v);
  }
  return out;
}

namespace {

json::Value strip_metrics_times(const json::Value& metrics) {
  json::Value out;
  out.kind = json::Value::Kind::kObject;
  for (const auto& [k, v] : metrics.object) {
    if (k == "memory") continue;  // process facts (rss, tracking): all noisy
    if (k == "gauges" && v.is_object()) {
      json::Value gauges;
      gauges.kind = json::Value::Kind::kObject;
      for (const auto& [gk, gv] : v.object)
        if (!is_noisy_name(gk)) gauges.object.emplace_back(gk, gv);
      out.object.emplace_back(k, std::move(gauges));
      continue;
    }
    if (k == "histograms" && v.is_object()) {
      json::Value hists;
      hists.kind = json::Value::Kind::kObject;
      for (const auto& [hk, hv] : v.object) {
        if (!is_timing_name(hk) || !hv.is_object()) {
          hists.object.emplace_back(hk, hv);
          continue;
        }
        json::Value h;
        h.kind = json::Value::Kind::kObject;
        if (const json::Value* c = hv.find("count"))
          h.object.emplace_back("count", *c);
        hists.object.emplace_back(hk, std::move(h));
      }
      out.object.emplace_back(k, std::move(hists));
      continue;
    }
    out.object.emplace_back(k, v);
  }
  return out;
}

}  // namespace

json::Value strip_times(const json::Value& report) {
  if (!report.is_object()) return report;
  json::Value out;
  out.kind = json::Value::Kind::kObject;
  for (const auto& [k, v] : report.object) {
    if (k == "trace" && v.is_array()) {
      json::Value trace;
      trace.kind = json::Value::Kind::kArray;
      for (const json::Value& s : v.array)
        trace.array.push_back(s.is_object() ? strip_span_times(s) : s);
      out.object.emplace_back(k, std::move(trace));
      continue;
    }
    if (k == "metrics" && v.is_object()) {
      out.object.emplace_back(k, strip_metrics_times(v));
      continue;
    }
    if (k == "meta" && v.is_object()) {
      json::Value meta;
      meta.kind = json::Value::Kind::kObject;
      for (const auto& [mk, mv] : v.object)
        if (!is_noisy_name(mk)) meta.object.emplace_back(mk, mv);
      out.object.emplace_back(k, std::move(meta));
      continue;
    }
    out.object.emplace_back(k, v);
  }
  return out;
}

}  // namespace lac::obs
