#include "obs/task.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/stream.h"

namespace lac::obs {

namespace {

thread_local TaskCapture* tl_sink = nullptr;

}  // namespace

namespace detail {

TaskCapture* current_task_sink() { return tl_sink; }

// Defined in span.cc: swaps the thread's innermost-open-span pointer.
void* exchange_current_span(void* span);
// Defined in span.cc: appends to the process-wide root store.
void publish_root_globally(SpanNode&& node);

void publish_root(SpanNode&& node) {
  if (tl_sink != nullptr) {
    tl_sink->roots.push_back(std::move(node));
    return;
  }
  publish_root_globally(std::move(node));
}

}  // namespace detail

ScopedTaskCapture::ScopedTaskCapture(TaskCapture* capture)
    : capture_(capture),
      prev_sink_(tl_sink),
      prev_span_(detail::exchange_current_span(nullptr)),
      mem_saved_(memory::detach_context()) {
  tl_sink = capture;
}

ScopedTaskCapture::~ScopedTaskCapture() {
  // The detached context accumulated exactly this task's heap traffic
  // (detach resets any engine PauseScope for the task's duration); the
  // committing thread credits it back in task-index order.
  const memory::ThreadCounters task_mem = memory::thread_counters();
  if (capture_ != nullptr) {
    capture_->alloc_bytes += task_mem.alloc_bytes;
    capture_->freed_bytes += task_mem.freed_bytes;
  }
  memory::restore_context(mem_saved_);
  tl_sink = prev_sink_;
  (void)detail::exchange_current_span(prev_span_);
}

void commit_task_capture(TaskCapture&& capture) {
  // Replaying through the public entry points routes into the enclosing
  // capture when loops nest, and into the global store/registry otherwise.
  memory::credit(capture.alloc_bytes, capture.freed_bytes);
  // Stream lines first: emit_line re-buffers them when an enclosing
  // capture is installed, so nested loops drain in outer-task order too.
  for (std::string& line : capture.stream_lines)
    stream::detail::emit_line(std::move(line));
  for (MetricEvent& e : capture.events) {
    switch (e.kind) {
      case MetricEvent::Kind::kCount:
        count(e.name.c_str(), e.delta);
        break;
      case MetricEvent::Kind::kGauge:
        gauge(e.name.c_str(), e.value);
        break;
      case MetricEvent::Kind::kObserve:
        observe(e.name.c_str(), e.value);
        break;
    }
  }
  for (SpanNode& r : capture.roots) {
    // At the global level a committed task root streams as one complete
    // `span` tree — the deterministic analogue of the open/close pairs
    // global-level spans emit live.
    if (stream::active() && tl_sink == nullptr) stream::detail::emit_tree(r);
    detail::publish_root(std::move(r));
  }
  capture = {};
}

}  // namespace lac::obs
