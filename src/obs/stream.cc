#include "obs/stream.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "obs/compare.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/task.h"

namespace lac::obs::stream {

namespace {

constexpr long long kDefaultHeartbeatMs = 1000;

// Sink state.  g_active is the hot-path switch; everything else is
// guarded by g_mu.  The heartbeat thread has its own cv/mutex so close()
// can wake it without holding the file lock.
std::atomic<bool> g_active{false};
std::mutex g_mu;
std::FILE* g_file = nullptr;
std::chrono::steady_clock::time_point g_t0;
std::atomic<std::int64_t> g_next_id{0};

std::thread g_hb_thread;
std::mutex g_hb_mu;
std::condition_variable g_hb_cv;
bool g_hb_stop = false;

double rel_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_t0)
      .count();
}

long long heartbeat_interval_ms() {
  const char* env = std::getenv("LAC_OBS_HEARTBEAT_MS");
  if (env == nullptr || *env == '\0') return kDefaultHeartbeatMs;
  char* end = nullptr;
  const long long ms = std::strtoll(env, &end, 10);
  if (end == nullptr || *end != '\0' || ms < 0) return kDefaultHeartbeatMs;
  return ms;
}

// Appends one line (plus newline) and flushes, so the line is in the
// kernel before the call returns — a SIGKILL never costs more than the
// event currently being formatted.
void write_line(std::string_view line) {
  std::lock_guard lock(g_mu);
  if (g_file == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), g_file);
  std::fputc('\n', g_file);
  std::fflush(g_file);
}

void emit_heartbeat() {
  json::Writer w;
  w.begin_object();
  w.kv("ev", "hb");
  w.kv("t", rel_seconds());
  if (const std::int64_t rss = memory::current_rss_bytes(); rss > 0)
    w.kv("rss_bytes", rss);
  if (const std::int64_t peak = memory::peak_rss_bytes(); peak > 0)
    w.kv("peak_rss_bytes", peak);
  w.end_object();
  write_line(w.take());
}

void heartbeat_main(long long interval_ms) {
  std::unique_lock lock(g_hb_mu);
  while (!g_hb_stop) {
    if (g_hb_cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                         [] { return g_hb_stop; }))
      break;
    lock.unlock();
    emit_heartbeat();
    lock.lock();
  }
}

// Splices the members of a serialised JSON object into an event line
// under construction: serialize(v) is "{...}"; everything after the
// opening brace (including the closing one) follows a comma.
void splice_object_members(std::string& line, const json::Value& v) {
  const std::string body = json::serialize(v);
  if (body.size() <= 2) {  // "{}": nothing to splice
    line += '}';
    return;
  }
  line += ',';
  line.append(body, 1, std::string::npos);
}

}  // namespace

bool open(const std::string& path, std::string_view run_name,
          std::string* error) {
  if (error != nullptr) error->clear();
  std::lock_guard lock(g_mu);
  if (g_file != nullptr) {
    if (error != nullptr) *error = "event stream already open";
    return false;
  }
  const std::filesystem::path fs_path(path);
  if (const std::filesystem::path parent = fs_path.parent_path();
      !parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      if (error != nullptr)
        *error = "cannot create directory " + parent.string() + ": " +
                 ec.message();
      return false;
    }
  }
  errno = 0;
  g_file = std::fopen(path.c_str(), "w");
  if (g_file == nullptr) {
    if (error != nullptr)
      *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  g_t0 = std::chrono::steady_clock::now();
  g_next_id.store(0, std::memory_order_relaxed);

  json::Writer w;
  w.begin_object();
  w.kv("ev", "run");
  w.kv("schema", kSchema);
  w.kv("name", run_name);
  w.kv("unix_ms",
       static_cast<std::int64_t>(
           std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
               .count()));
  w.kv("obs_enabled", enabled());
  w.kv("mem_tracking", memory::tracking_enabled());
  w.end_object();
  const std::string header = w.take();
  std::fwrite(header.data(), 1, header.size(), g_file);
  std::fputc('\n', g_file);
  std::fflush(g_file);

  g_active.store(true, std::memory_order_release);

  const long long interval = heartbeat_interval_ms();
  if (interval > 0) {
    std::lock_guard hb_lock(g_hb_mu);
    g_hb_stop = false;
    g_hb_thread = std::thread(heartbeat_main, interval);
  }
  // Tools leave the sink open for their whole lifetime; retire the
  // heartbeat thread and flush the file on normal exit (a SIGKILL skips
  // this, which is exactly the truncated-stream case fold() handles).
  static const bool at_exit_registered = [] {
    return std::atexit([] { close(); }) == 0;
  }();
  (void)at_exit_registered;
  return true;
}

void close() {
  // Stop the hooks first so no event races the fclose, then retire the
  // heartbeat thread, then close the file.
  g_active.store(false, std::memory_order_release);
  {
    std::lock_guard hb_lock(g_hb_mu);
    g_hb_stop = true;
  }
  g_hb_cv.notify_all();
  if (g_hb_thread.joinable()) g_hb_thread.join();
  std::lock_guard lock(g_mu);
  if (g_file != nullptr) {
    std::fclose(g_file);
    g_file = nullptr;
  }
}

bool active() { return g_active.load(std::memory_order_acquire); }

Event::Event(const char* kind) {
  if (!active() || !enabled()) return;
  on_ = true;
  line_.reserve(96);
  line_ += "{\"ev\":\"";
  line_ += json::escape(kind);
  line_ += '"';
}

Event::~Event() {
  if (!on_) return;
  line_ += ",\"t\":";
  {
    json::Writer w;
    w.value(rel_seconds());
    line_ += w.take();
  }
  line_ += '}';
  detail::emit_line(std::move(line_));
}

Event& Event::field(const char* key, std::int64_t v) {
  if (!on_) return *this;
  line_ += ",\"";
  line_ += json::escape(key);
  line_ += "\":";
  json::Writer w;
  w.value(v);
  line_ += w.take();
  return *this;
}

Event& Event::field(const char* key, double v) {
  if (!on_) return *this;
  line_ += ",\"";
  line_ += json::escape(key);
  line_ += "\":";
  json::Writer w;
  w.value(v);
  line_ += w.take();
  return *this;
}

Event& Event::field(const char* key, bool v) {
  if (!on_) return *this;
  line_ += ",\"";
  line_ += json::escape(key);
  line_ += "\":";
  line_ += v ? "true" : "false";
  return *this;
}

Event& Event::field(const char* key, std::string_view v) {
  if (!on_) return *this;
  line_ += ",\"";
  line_ += json::escape(key);
  line_ += "\":\"";
  line_ += json::escape(v);
  line_ += '"';
  return *this;
}

namespace detail {

std::int64_t next_span_id() {
  return g_next_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

void emit_line(std::string&& line) {
  if (TaskCapture* sink = obs::detail::current_task_sink()) {
    sink->stream_lines.push_back(std::move(line));
    return;
  }
  write_line(line);
}

void emit_open(std::int64_t id, std::int64_t parent, std::string_view name) {
  std::string line;
  line.reserve(96);
  line += "{\"ev\":\"open\",\"id\":";
  line += std::to_string(id);
  if (parent != 0) {
    line += ",\"parent\":";
    line += std::to_string(parent);
  }
  line += ",\"t\":";
  {
    json::Writer w;
    w.value(rel_seconds());
    line += w.take();
  }
  line += ",\"name\":\"";
  line += json::escape(name);
  line += "\"}";
  emit_line(std::move(line));
}

void emit_close(std::int64_t id, const SpanNode& node) {
  std::string line;
  line.reserve(192);
  line += "{\"ev\":\"close\",\"id\":";
  line += std::to_string(id);
  line += ",\"t\":";
  {
    json::Writer w;
    w.value(rel_seconds());
    line += w.take();
  }
  // The span's own fields, exactly as span_to_json renders them (children
  // excluded: they streamed as their own close events) — fold() re-embeds
  // them verbatim, so the folded report is byte-identical to the direct
  // one.
  splice_object_members(line, span_to_json(node, /*include_children=*/false));
  emit_line(std::move(line));
}

void emit_tree(const SpanNode& node) {
  std::string line;
  line.reserve(256);
  line += "{\"ev\":\"span\",\"t\":";
  {
    json::Writer w;
    w.value(rel_seconds());
    line += w.take();
  }
  line += ",\"root\":";
  line += json::serialize(span_to_json(node));
  line += '}';
  emit_line(std::move(line));
}

void emit_count(const char* name, std::int64_t delta) {
  std::string line;
  line.reserve(64);
  line += "{\"ev\":\"count\",\"name\":\"";
  line += json::escape(name);
  line += "\",\"delta\":";
  line += std::to_string(delta);
  line += '}';
  emit_line(std::move(line));
}

void emit_gauge(const char* name, double value) {
  std::string line;
  line.reserve(64);
  line += "{\"ev\":\"gauge\",\"name\":\"";
  line += json::escape(name);
  line += "\",\"value\":";
  json::Writer w;
  w.value(value);
  line += w.take();
  line += '}';
  emit_line(std::move(line));
}

void emit_observe(const char* name, double value) {
  std::string line;
  line.reserve(64);
  line += "{\"ev\":\"observe\",\"name\":\"";
  line += json::escape(name);
  line += "\",\"value\":";
  json::Writer w;
  w.value(value);
  line += w.take();
  line += '}';
  emit_line(std::move(line));
}

void emit_end(std::string_view name, const json::Value& meta,
              bool obs_enabled, std::int64_t dropped_root_spans,
              bool mem_tracking, std::int64_t peak_rss_bytes) {
  std::string line;
  line.reserve(192);
  line += "{\"ev\":\"end\",\"t\":";
  {
    json::Writer w;
    w.value(rel_seconds());
    line += w.take();
  }
  line += ",\"name\":\"";
  line += json::escape(name);
  line += "\",\"obs_enabled\":";
  line += obs_enabled ? "true" : "false";
  line += ",\"meta\":";
  line += json::serialize(meta);
  line += ",\"dropped_root_spans\":";
  line += std::to_string(dropped_root_spans);
  line += ",\"mem_tracking\":";
  line += mem_tracking ? "true" : "false";
  if (peak_rss_bytes > 0) {
    line += ",\"peak_rss_bytes\":";
    line += std::to_string(peak_rss_bytes);
  }
  line += '}';
  emit_line(std::move(line));
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Folding: stream -> lac-obs-report/2.

namespace {

const json::Value* find_string(const json::Value& v, std::string_view key) {
  const json::Value* f = v.find(key);
  return f != nullptr && f->kind == json::Value::Kind::kString ? f : nullptr;
}

double number_or(const json::Value& v, std::string_view key, double fallback) {
  const json::Value* f = v.find(key);
  return f != nullptr && f->kind == json::Value::Kind::kNumber ? f->num
                                                               : fallback;
}

bool bool_or(const json::Value& v, std::string_view key, bool fallback) {
  const json::Value* f = v.find(key);
  return f != nullptr && f->kind == json::Value::Kind::kBool ? f->b : fallback;
}

// A span opened (open event seen) but not yet closed.
struct OpenSpan {
  std::string name;
  std::int64_t parent = 0;
  std::vector<json::Value> children;  // closed children, completion order
};

struct FoldState {
  std::string run_name = "stream";
  bool run_obs_enabled = false;
  bool run_mem_tracking = false;
  std::int64_t hb_peak_rss = 0;

  std::map<std::int64_t, OpenSpan> open;  // keyed by id (ascending)
  std::vector<json::Value> trace;         // roots since the last end event
  Metrics metrics;  // local registry replaying count/gauge/observe events

  json::Value last_report;  // complete report from the last end event
  bool end_seen = false;
  std::int64_t events_after_end = 0;

  json::Value metrics_json(bool mem_tracking,
                           std::int64_t peak_rss_bytes) const {
    json::Value m = metrics_to_json(metrics);
    json::Value mem;
    mem.kind = json::Value::Kind::kObject;
    mem.object.emplace_back("tracking", json::Value::of(mem_tracking));
    if (peak_rss_bytes > 0)
      mem.object.emplace_back("peak_rss_bytes",
                              json::Value::of(peak_rss_bytes));
    m.object.emplace_back("memory", std::move(mem));
    return m;
  }
};

void fold_close(FoldState& st, const json::Value& ev) {
  const std::int64_t id =
      static_cast<std::int64_t>(number_or(ev, "id", 0.0));
  // The span's own fields are everything but the envelope, in
  // span_to_json order; closed children collected so far are appended
  // last, exactly where span_to_json puts them.
  json::Value node;
  node.kind = json::Value::Kind::kObject;
  for (const auto& [k, v] : ev.object) {
    if (k == "ev" || k == "id" || k == "t") continue;
    node.object.emplace_back(k, v);
  }
  std::int64_t parent = 0;
  if (const auto it = st.open.find(id); it != st.open.end()) {
    parent = it->second.parent;
    if (!it->second.children.empty()) {
      json::Value kids;
      kids.kind = json::Value::Kind::kArray;
      kids.array = std::move(it->second.children);
      node.object.emplace_back("children", std::move(kids));
    }
    st.open.erase(it);
  }
  if (parent != 0) {
    if (const auto pit = st.open.find(parent); pit != st.open.end()) {
      pit->second.children.push_back(std::move(node));
      return;
    }
  }
  st.trace.push_back(std::move(node));
}

void fold_end(FoldState& st, const json::Value& ev) {
  json::Value report;
  report.kind = json::Value::Kind::kObject;
  report.object.emplace_back("schema",
                             json::Value::of("lac-obs-report/2"));
  const json::Value* name = find_string(ev, "name");
  report.object.emplace_back(
      "name", json::Value::of(name != nullptr ? std::string_view(name->str)
                                              : std::string_view("stream")));
  report.object.emplace_back(
      "obs_enabled",
      json::Value::of(bool_or(ev, "obs_enabled", st.run_obs_enabled)));
  if (const json::Value* meta = ev.find("meta");
      meta != nullptr && meta->is_object()) {
    report.object.emplace_back("meta", *meta);
  } else {
    json::Value empty;
    empty.kind = json::Value::Kind::kObject;
    report.object.emplace_back("meta", std::move(empty));
  }
  json::Value trace;
  trace.kind = json::Value::Kind::kArray;
  trace.array = std::move(st.trace);
  st.trace.clear();
  report.object.emplace_back("trace", std::move(trace));
  report.object.emplace_back(
      "metrics",
      st.metrics_json(
          bool_or(ev, "mem_tracking", st.run_mem_tracking),
          static_cast<std::int64_t>(number_or(ev, "peak_rss_bytes", 0.0))));
  report.object.emplace_back(
      "dropped_root_spans",
      json::Value::of(
          static_cast<std::int64_t>(number_or(ev, "dropped_root_spans", 0.0))));
  st.last_report = std::move(report);
  st.end_seen = true;
  st.events_after_end = 0;
}

// Synthesizes report spans for the spans still open at truncation, each
// marked with an "unclosed" annotation.  Children opened later than their
// parents, so walking ids in descending order folds leaves into parents
// before the parents themselves are synthesized.
void append_unclosed(FoldState& st) {
  std::vector<json::Value> roots;
  while (!st.open.empty()) {
    auto it = std::prev(st.open.end());
    json::Value node;
    node.kind = json::Value::Kind::kObject;
    node.object.emplace_back("name", json::Value::of(it->second.name));
    json::Value ann;
    ann.kind = json::Value::Kind::kObject;
    ann.object.emplace_back("unclosed", json::Value::of(true));
    node.object.emplace_back("annotations", std::move(ann));
    if (!it->second.children.empty()) {
      json::Value kids;
      kids.kind = json::Value::Kind::kArray;
      kids.array = std::move(it->second.children);
      node.object.emplace_back("children", std::move(kids));
    }
    const std::int64_t parent = it->second.parent;
    st.open.erase(it);
    if (parent != 0) {
      if (const auto pit = st.open.find(parent); pit != st.open.end()) {
        pit->second.children.push_back(std::move(node));
        continue;
      }
    }
    roots.push_back(std::move(node));
  }
  // Unclosed roots were collected deepest-first; restore open (id) order.
  for (auto rit = roots.rbegin(); rit != roots.rend(); ++rit)
    st.trace.push_back(std::move(*rit));
}

}  // namespace

std::optional<FoldResult> fold(std::string_view text) {
  FoldState st;
  FoldResult res;
  bool tail_partial = false;

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    const bool has_newline = nl != std::string_view::npos;
    if (!has_newline) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = has_newline ? nl + 1 : text.size();
    if (line.empty()) continue;

    const std::optional<json::Value> parsed = json::parse(line);
    if (!parsed || !parsed->is_object()) {
      ++res.skipped_lines;
      if (!has_newline || pos >= text.size()) tail_partial = true;
      continue;
    }
    const json::Value& ev = *parsed;
    const json::Value* kind = find_string(ev, "ev");
    if (kind == nullptr) {
      ++res.skipped_lines;
      continue;
    }
    ++res.events;
    const std::string& k = kind->str;
    // A heartbeat can land between build_report()'s `end` and close();
    // it carries no run data, so it must not demote the stream to
    // truncated.
    if (st.end_seen && k != "hb") ++st.events_after_end;
    if (k == "run") {
      if (const json::Value* n = find_string(ev, "name"))
        st.run_name = n->str;
      st.run_obs_enabled = bool_or(ev, "obs_enabled", false);
      st.run_mem_tracking = bool_or(ev, "mem_tracking", false);
    } else if (k == "open") {
      OpenSpan s;
      if (const json::Value* n = find_string(ev, "name")) s.name = n->str;
      s.parent = static_cast<std::int64_t>(number_or(ev, "parent", 0.0));
      st.open[static_cast<std::int64_t>(number_or(ev, "id", 0.0))] =
          std::move(s);
    } else if (k == "close") {
      fold_close(st, ev);
    } else if (k == "span") {
      if (const json::Value* root = ev.find("root");
          root != nullptr && root->is_object())
        st.trace.push_back(*root);
    } else if (k == "count") {
      if (const json::Value* n = find_string(ev, "name"))
        st.metrics.add_counter(
            n->str, static_cast<std::int64_t>(number_or(ev, "delta", 0.0)));
    } else if (k == "gauge") {
      if (const json::Value* n = find_string(ev, "name"))
        st.metrics.set_gauge(n->str, number_or(ev, "value", 0.0));
    } else if (k == "observe") {
      if (const json::Value* n = find_string(ev, "name"))
        st.metrics.observe(n->str, number_or(ev, "value", 0.0));
    } else if (k == "hb") {
      if (const double peak = number_or(ev, "peak_rss_bytes", 0.0); peak > 0)
        st.hb_peak_rss = static_cast<std::int64_t>(peak);
    } else if (k == "end") {
      fold_end(st, ev);
    }
    // Unknown kinds (future schema growth, `round` progress) fold to
    // nothing: the report carries only what the report schema knows.
  }

  if (res.events == 0) return std::nullopt;

  if (st.end_seen && st.events_after_end == 0 && !tail_partial &&
      st.open.empty() && st.trace.empty()) {
    res.report = std::move(st.last_report);
    res.truncated = false;
    return res;
  }

  // Forensic (truncated) report: whatever closed plus the spans cut off
  // mid-flight, with the metric state at the moment the stream stopped.
  res.truncated = true;
  append_unclosed(st);
  json::Value report;
  report.kind = json::Value::Kind::kObject;
  report.object.emplace_back("schema", json::Value::of("lac-obs-report/2"));
  report.object.emplace_back("name", json::Value::of(st.run_name));
  report.object.emplace_back("obs_enabled",
                             json::Value::of(st.run_obs_enabled));
  json::Value meta;
  meta.kind = json::Value::Kind::kObject;
  report.object.emplace_back("meta", std::move(meta));
  json::Value trace;
  trace.kind = json::Value::Kind::kArray;
  trace.array = std::move(st.trace);
  report.object.emplace_back("trace", std::move(trace));
  report.object.emplace_back(
      "metrics", st.metrics_json(st.run_mem_tracking, st.hb_peak_rss));
  report.object.emplace_back("dropped_root_spans", json::Value::of(0));
  report.object.emplace_back("truncated", json::Value::of(true));
  res.report = std::move(report);
  return res;
}

std::optional<FoldResult> fold_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return fold(buf.str());
}

// ---------------------------------------------------------------------------
// Stripping: remove everything time- or machine-dependent.

namespace {

constexpr std::string_view kNoisyEventKeys[] = {
    "t",           "unix_ms",         "seconds",
    "alloc_bytes", "freed_bytes",     "peak_live_bytes",
    "rss_bytes",   "peak_rss_bytes",
};

bool is_noisy_event_key(std::string_view key) {
  for (const std::string_view k : kNoisyEventKeys)
    if (key == k) return true;
  return false;
}

}  // namespace

std::string strip_stream(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;

    const std::optional<json::Value> parsed = json::parse(line);
    if (!parsed || !parsed->is_object()) {
      // Not an event (partial tail): keep verbatim so truncation stays
      // visible in the stripped form.
      out.append(line);
      out += '\n';
      continue;
    }
    const json::Value* kind = find_string(*parsed, "ev");
    const std::string k = kind != nullptr ? kind->str : std::string();
    if (k == "hb") continue;  // pure-time events vanish entirely
    if (k == "gauge") {
      if (const json::Value* n = find_string(*parsed, "name");
          n != nullptr && is_noisy_name(n->str))
        continue;  // rss/timing gauges are per-run noise
    }
    const bool noisy_observe = [&] {
      if (k != "observe") return false;
      const json::Value* n = find_string(*parsed, "name");
      return n != nullptr && is_noisy_name(n->str);
    }();

    json::Value stripped;
    stripped.kind = json::Value::Kind::kObject;
    for (const auto& [key, v] : parsed->object) {
      if (is_noisy_event_key(key)) continue;
      if (noisy_observe && key == "value") continue;  // count still compares
      if (key == "root" && v.is_object()) {
        stripped.object.emplace_back(key, strip_span_times(v));
        continue;
      }
      if (k == "end" && key == "meta" && v.is_object()) {
        json::Value meta;
        meta.kind = json::Value::Kind::kObject;
        for (const auto& [mk, mv] : v.object)
          if (!is_noisy_name(mk)) meta.object.emplace_back(mk, mv);
        stripped.object.emplace_back(key, std::move(meta));
        continue;
      }
      stripped.object.emplace_back(key, v);
    }
    out += json::serialize(stripped);
    out += '\n';
  }
  return out;
}

}  // namespace lac::obs::stream
