// Diffing two lac-obs-report documents (v1 or v2, mixed freely), with
// verdicts a CI gate can act on.
//
// The diff distinguishes two classes of data:
//   * deterministic values — counters (mcf.augmentations, lac.rounds,
//     route.nets, ...), histogram observation counts, per-name span
//     counts, and non-noisy gauges/sums.  Logical-size memory gauges
//     (mcf.network_bytes-style bytes_used() readings) belong here: they
//     are computed from container sizes, not the allocator, so they must
//     match exactly.  Any mismatch is a hard kRegress.
//   * noisy values — span wall times, any metric whose name contains
//     "seconds", and RSS readings (names containing "rss").  Timings are
//     compared per span *name* (aggregated totals) with a fractional
//     tolerance and warn/fail tiers, and can be capped at kWarn for noisy
//     shared CI runners (timings_warn_only); rss gauges are never gated.
//
// Per-span allocation deltas (alloc_bytes/freed_bytes/peak_live_bytes)
// are deliberately NOT diffed: they count requested allocation sizes,
// which are deterministic per build but shift with every standard-library
// or compiler upgrade (container growth policies, node sizes), so
// checked-in baselines would not be portable across toolchains.
// strip_times removes them.
//
// A baseline stripped of wall-clock data (`lacobs strip-times`, see
// strip_times below) produces no timing comparisons at all: deterministic
// structure is still enforced while nothing noisy is diffed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace lac::obs {

// Ordered by severity; values double as the `lacobs diff` exit code.
enum class Verdict { kOk = 0, kWarn = 1, kRegress = 2 };

[[nodiscard]] const char* verdict_name(Verdict v);

struct DiffOptions {
  double time_warn_tol = 0.15;  // fractional timing delta above which kWarn
  double time_fail_tol = 0.50;  // ... and above which kRegress
  // Cap timing verdicts at kWarn (shared CI runners have noisy clocks;
  // deterministic mismatches still fail hard).
  bool timings_warn_only = false;
  // Timing deltas where both sides are below this are ignored entirely.
  double min_seconds = 1e-3;
  // Names (counters, gauges, histograms, spans) starting with any of these
  // prefixes are skipped entirely.  Used to compare runs of *different*
  // configurations of the same pipeline: `--ignore mcf.` checks that two
  // modes agree on every lac.* quality counter and the span structure
  // while exempting solver-effort metrics that legitimately differ (a
  // warm-started solve does fewer augmentations than a cold one).
  std::vector<std::string> ignore_prefixes;
};

struct DiffEntry {
  enum class Kind { kCounter, kGauge, kHistogram, kSpanCount, kSpanTime };

  Kind kind = Kind::kCounter;
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  Verdict verdict = Verdict::kOk;
  std::string note;  // human-readable reason, set for non-kOk entries
};

struct DiffResult {
  Verdict verdict = Verdict::kOk;  // max over entries
  std::vector<DiffEntry> entries;

  [[nodiscard]] int count(Verdict v) const;
};

// True for metric/span names carrying wall-clock data ("mcf.solve_seconds",
// "lac.round_seconds", ...): the name contains "seconds".
[[nodiscard]] bool is_timing_name(std::string_view name);

// True for names carrying run-to-run-noisy data: timings plus RSS
// readings ("mem.peak_rss_bytes").  Noisy names are exempt from the
// exact-match gate and dropped by strip_times.
[[nodiscard]] bool is_noisy_name(std::string_view name);

// Diffs `current` against `baseline` (both parsed reports).
[[nodiscard]] DiffResult diff_reports(const json::Value& baseline,
                                      const json::Value& current,
                                      const DiffOptions& opts = {});

// Returns a copy of `report` with all wall-clock and allocator-dependent
// data removed, suitable for checking in as a byte-stable CI baseline:
//   * every span's "seconds", "alloc_bytes", "freed_bytes" and
//     "peak_live_bytes" members are dropped (structure, names and
//     annotations are kept — span counts stay enforceable);
//   * timing histograms keep only their deterministic "count";
//   * noisy gauges (timings, rss) and noisy meta entries are dropped;
//   * the metrics "memory" section (process facts) is dropped.
[[nodiscard]] json::Value strip_times(const json::Value& report);

// The per-span half of strip_times: one span object (and its children)
// minus "seconds" and the allocation deltas.  obs/stream.cc uses it to
// strip the span trees embedded in `close`/`span` events.
[[nodiscard]] json::Value strip_span_times(const json::Value& span);

}  // namespace lac::obs
