// Hierarchical trace spans: steady-clock RAII timers with parent/child
// nesting and per-span key=value annotations.
//
// Nesting is tracked per thread: a Span constructed while another is open
// on the same thread becomes its child; the outermost span of a thread is
// a *root* and, on destruction, is published to a process-wide store that
// report writers drain (take_finished_roots()).  Strict RAII nesting —
// the natural result of scoped locals — is assumed; a span destroyed out
// of order is still recorded, just attached to its construction-time
// parent.
//
// When obs::enabled() is false at construction, the span records nothing
// and allocates nothing, but elapsed_seconds() still works: Span doubles
// as the repository's single steady-clock timer, so stage timings (e.g.
// PlanResult::exec_seconds) come from one source whether or not tracing
// is on.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/memory.h"

namespace lac::obs {

struct Annotation {
  enum class Kind { kString, kDouble, kInt, kBool };

  std::string key;
  Kind kind = Kind::kString;
  std::string s;
  double d = 0.0;
  std::int64_t i = 0;
  bool b = false;
};

// One finished span: name, wall time, annotations, finished children in
// completion order.  When memory tracking was active (obs/memory.h) the
// span also carries its heap traffic: bytes allocated and freed while the
// span was open on its thread (inclusive of children and of parallel work
// committed into it), and the live-byte high-water mark above the entry
// level.  mem_valid distinguishes "tracked, zero bytes" from "untracked".
struct SpanNode {
  std::string name;
  double seconds = 0.0;
  std::int64_t alloc_bytes = 0;
  std::int64_t freed_bytes = 0;
  std::int64_t peak_live_bytes = 0;
  bool mem_valid = false;
  std::vector<Annotation> annotations;
  std::vector<SpanNode> children;

  // First direct child with the given name; nullptr when absent.
  [[nodiscard]] const SpanNode* find_child(std::string_view child_name) const;
  // First annotation with the given key; nullptr when absent.
  [[nodiscard]] const Annotation* find_annotation(std::string_view key) const;
};

class Span {
 public:
  explicit Span(std::string_view name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  void annotate(std::string_view key, std::string_view value);
  void annotate(std::string_view key, const char* value) {
    annotate(key, std::string_view(value));
  }
  void annotate(std::string_view key, double value);
  void annotate(std::string_view key, std::int64_t value);
  void annotate(std::string_view key, int value) {
    annotate(key, static_cast<std::int64_t>(value));
  }
  void annotate(std::string_view key, long long value) {
    annotate(key, static_cast<std::int64_t>(value));
  }
  void annotate(std::string_view key, std::size_t value) {
    annotate(key, static_cast<std::int64_t>(value));
  }
  void annotate(std::string_view key, bool value);

  // Steady-clock seconds since construction; valid regardless of whether
  // the span is recording.
  [[nodiscard]] double elapsed_seconds() const;

  [[nodiscard]] bool recording() const { return node_ != nullptr; }

 private:
  std::chrono::steady_clock::time_point t0_;
  SpanNode* node_ = nullptr;  // owned while open; null when not recording
  Span* parent_ = nullptr;    // enclosing recording span on this thread
  bool mem_track_ = false;    // memory tracking was on at construction
  memory::SpanMark mem_mark_;
  // Event-stream id when this span emitted a live `open` event (spans at
  // the global level while obs::stream is active); 0 otherwise.  Spans
  // inside task captures never stream pairs — they arrive as complete
  // trees when the capture commits.
  std::int64_t stream_id_ = 0;
};

// Drains and returns the finished root spans published so far (across all
// threads, in completion order).
[[nodiscard]] std::vector<SpanNode> take_finished_roots();

// Root spans discarded because the store hit its safety cap (long-running
// processes that never drain, e.g. benchmark loops).
[[nodiscard]] std::int64_t dropped_roots();

// Capacity of the root-span store.  Defaults to 4096; configurable via
// base::RunControls::max_root_spans so long LAC loops with many plans per
// process can keep their whole trace (`lacobs summary` warns when a
// report's dropped_root_spans is nonzero).  A cap of 0 keeps spans
// recording but publishes no roots.
void set_max_root_spans(std::size_t cap);
[[nodiscard]] std::size_t max_root_spans();

}  // namespace lac::obs
