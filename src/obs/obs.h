// Process-wide observability switch.
//
// Everything in src/obs — trace spans, the metrics registry, report
// writers — consults one atomic flag.  When the flag is off, spans do not
// record, metrics calls return immediately, and neither allocates: the
// instrumented hot paths (min-cost-flow solves, LAC rounds, maze routing)
// pay one relaxed atomic load per event.
//
// The flag is initialised from the LAC_OBS environment variable ("0",
// "false", "off" or "no" disable; unset or anything else enables) and can
// be overridden programmatically (PlannerConfig::observability routes
// through ScopedEnable).
#pragma once

namespace lac::obs {

// Current state of the global switch.
[[nodiscard]] bool enabled();

// Sets the global switch; spans already open keep their recording state.
void set_enabled(bool on);

// Three-way setting for configs that may or may not override the
// environment default.
enum class Override {
  kEnv,  // leave the global switch as LAC_OBS / set_enabled() decided
  kOn,
  kOff,
};

// RAII override of the global switch, restoring the previous state.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on);
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;
  ~ScopedEnable();

 private:
  bool prev_;
};

}  // namespace lac::obs
