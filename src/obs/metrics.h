// Process-wide metrics registry: named counters, gauges and histograms.
//
// The registry is a mutex-protected singleton — planner instrumentation
// events are coarse (per solve, per round, per net), so contention is not
// a concern; what matters is the disabled path.  The free functions
// count()/gauge()/observe() check obs::enabled() before touching the
// registry and take const char* names, so a disabled build performs no
// allocation and no locking on the hot path.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lac::obs {

struct HistogramSnapshot {
  static constexpr int kNumBuckets = 24;

  // Upper bound of bucket i: 2^(i-10) (≈1e-3 .. 4096), last bucket +inf.
  // Cumulative ("le") semantics are applied at report time; the stored
  // buckets are disjoint.
  [[nodiscard]] static double bucket_bound(int i);

  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::int64_t, kNumBuckets> buckets{};
};

class Metrics {
 public:
  // The process-wide registry used by count()/gauge()/observe().
  static Metrics& instance();

  void add_counter(std::string_view name, std::int64_t delta);
  void set_gauge(std::string_view name, double value);
  void observe(std::string_view name, double value);

  // Point queries (0 / nullopt when absent).
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
  [[nodiscard]] std::optional<double> gauge(std::string_view name) const;
  [[nodiscard]] std::optional<HistogramSnapshot> histogram(
      std::string_view name) const;

  // Sorted snapshots for report serialisation.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> counters()
      const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>>
  histograms() const;

  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramSnapshot, std::less<>> hists_;
};

// Convenience wrappers on Metrics::instance().  No-ops — with no
// allocation and no lock — when obs::enabled() is false.
void count(const char* name, std::int64_t delta = 1);
void gauge(const char* name, double value);
void observe(const char* name, double value);

}  // namespace lac::obs
