// Minimal JSON support for the run-report pipeline: an RFC 8259 escaper,
// a streaming writer (no intermediate DOM needed to serialise a report),
// and a small recursive-descent parser so report consumers — examples,
// tests, downstream tooling — can read reports back without an external
// dependency.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lac::obs::json {

// Escapes `s` for inclusion inside a JSON string literal (quotes and
// backslashes escaped, control characters as \n, \t, ... or \u00XX).
// Does not add the surrounding quotes.
[[nodiscard]] std::string escape(std::string_view s);

// Streaming JSON writer.  Commas and colons are inserted automatically;
// the caller is responsible for well-formed nesting (begin/end pairs and
// key() before every value inside an object).
class Writer {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Object member key; must precede the member's value.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  // key() + value() shorthand.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  // The finished document.  The writer is left empty.
  [[nodiscard]] std::string take();

 private:
  void separate();  // comma bookkeeping before a value or key

  std::string out_;
  std::vector<char> first_;  // nesting stack; 1 = no member emitted yet
  bool after_key_ = false;
};

// Parsed JSON value (DOM).  Numbers are kept as double — report values
// are counts and seconds, both exact in a double's 53-bit mantissa.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  static Value of(std::string_view s);
  static Value of(const char* s) { return of(std::string_view(s)); }
  static Value of(double v);
  static Value of(std::int64_t v);
  static Value of(int v) { return of(static_cast<std::int64_t>(v)); }
  static Value of(long long v) { return of(static_cast<std::int64_t>(v)); }
  static Value of(std::size_t v) { return of(static_cast<std::int64_t>(v)); }
  static Value of(bool v);

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }

  // Object member lookup (first match); nullptr when absent or not an
  // object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  // Chained find() through nested objects; nullptr when any hop fails.
  [[nodiscard]] const Value* at_path(
      std::initializer_list<std::string_view> keys) const;
};

// Parses a complete JSON document (trailing whitespace allowed, trailing
// garbage rejected).  Returns nullopt on malformed input or nesting
// deeper than an internal recursion limit.
[[nodiscard]] std::optional<Value> parse(std::string_view text);

// Reads `path` and parses it; nullopt on I/O or parse failure.
[[nodiscard]] std::optional<Value> parse_file(const std::string& path);

// Serialises a Value (inverse of parse; objects keep insertion order).
[[nodiscard]] std::string serialize(const Value& v);

}  // namespace lac::obs::json
