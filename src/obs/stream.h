// Streaming telemetry: a crash-safe, append-only event log written while
// the run executes, so a long plan can be watched live and a killed one
// leaves forensics behind.
//
// The sink is process-wide (`open()` / `close()`), opened from
// RunControls::stream_path (bench drivers: `--stream <path>`, environment
// `LAC_OBS_STREAM`).  Each event is one line of JSON ("lac-obs-events/1"),
// written and flushed individually, so a SIGKILL'd run always leaves a
// parseable prefix — `fold()` turns that prefix (complete or truncated)
// back into a lac-obs-report/2 document that every report consumer
// (`lacobs summary/diff/mem/top`, obs/analyze.h, obs/compare.h) accepts
// unchanged.
//
// Event kinds:
//   run    stream header: schema, run name, obs switch state, wall clock
//   open   a span started at the global level (id, parent id, name)
//   close  ... and finished: seconds, memory deltas, annotations
//   span   a complete span tree committed from a parallel task
//   count / gauge / observe   one metrics-registry update
//   round  LAC round progress (lac_retimer.cc), fields free-form
//   hb     periodic heartbeat: relative time, current and peak RSS
//   end    a report was built: name, meta, dropped_root_spans, memory facts
//
// Determinism.  Events emitted inside a parallel task are buffered in the
// task's TaskCapture (obs/task.h) and replayed when the engine commits
// captures in task-index order, exactly like spans and metric events — so
// the event sequence is byte-identical for every thread count once the
// time-dependent data is removed (`strip_stream()`: drops heartbeats and
// every wall-clock / RSS field).  Span open/close pairs are only emitted
// at the global (uncaptured) level; task spans arrive as self-contained
// `span` trees at commit, the same moment they publish to the root store.
//
// When the sink is closed — and on every hot path while obs is disabled —
// the hooks cost one relaxed atomic load and perform no allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "obs/span.h"

namespace lac::obs::stream {

inline constexpr std::string_view kSchema = "lac-obs-events/1";

// Opens the process-wide sink, emits the `run` header and starts the
// heartbeat thread (interval from LAC_OBS_HEARTBEAT_MS, default 1000;
// 0 disables).  A second open while active fails.  False on I/O failure
// with a description in `error`.
bool open(const std::string& path, std::string_view run_name,
          std::string* error = nullptr);

// Stops the heartbeat thread and closes the file.  Idempotent.  The
// stream carries no footer of its own — the `end` event comes from
// build_report(), so a run that never reports is recognisably truncated.
void close();

// True while a sink is open (one relaxed atomic load).
[[nodiscard]] bool active();

// One custom event under construction; emitted by the destructor through
// the task-capture routing.  When the sink is closed (or obs is disabled)
// construction and every field() are no-ops with no allocation.
//
//   stream::Event ev("round");
//   ev.field("round", rs.round).field("n_foa", rs.n_foa);
class Event {
 public:
  explicit Event(const char* kind);
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  ~Event();

  Event& field(const char* key, std::int64_t v);
  Event& field(const char* key, int v) {
    return field(key, static_cast<std::int64_t>(v));
  }
  Event& field(const char* key, double v);
  Event& field(const char* key, bool v);
  Event& field(const char* key, std::string_view v);

  // True when the event will actually be written — lets callers skip
  // computing expensive fields.
  [[nodiscard]] bool live() const { return on_; }

 private:
  std::string line_;
  bool on_ = false;
};

// Folding: reduce a stream (complete or truncated) into a
// lac-obs-report/2 document.
//
// A complete stream — one whose last parseable event is `end` — folds to
// the report build_report() produced in-process: the span trees, counter
// sums, gauge last-writes and histogram accumulations are replayed from
// the events in emission order, so after `lacobs strip-times` the folded
// and the directly-written documents are byte-identical.
//
// A truncated stream (killed run: no `end`, possibly a partial last
// line) folds to a forensic report: every span closed so far, spans
// still open marked with an `"unclosed": true` annotation, the metric
// state at the moment of death, and a top-level `"truncated": true`.
struct FoldResult {
  json::Value report;
  bool truncated = false;
  std::int64_t events = 0;         // parseable event lines consumed
  std::int64_t skipped_lines = 0;  // unparseable lines (partial tail, ...)
};

// Folds raw stream text (see above).  Returns nullopt only when the text
// contains no parseable event at all.
[[nodiscard]] std::optional<FoldResult> fold(std::string_view text);

// Reads and folds `path`; nullopt on I/O failure or an empty stream.
[[nodiscard]] std::optional<FoldResult> fold_file(const std::string& path);

// Removes every time-dependent field from a stream: heartbeat lines,
// `t` / `unix_ms` / `seconds` fields, span memory deltas, noisy gauges
// (rss), and the values of timing observations (their count remains).
// Two runs of the same work at any two thread counts strip to identical
// text — the streaming analogue of `lacobs strip-times`.
[[nodiscard]] std::string strip_stream(std::string_view text);

namespace detail {
// Span-id allocator for global-level open/close pairs; ids are assigned
// in emission order, which is deterministic (see header comment).
[[nodiscard]] std::int64_t next_span_id();
void emit_open(std::int64_t id, std::int64_t parent, std::string_view name);
// `node` is the finished span *without* its children (they streamed as
// their own close events).
void emit_close(std::int64_t id, const SpanNode& node);
// A task root committed at the global level: the complete subtree.
void emit_tree(const SpanNode& node);
void emit_count(const char* name, std::int64_t delta);
void emit_gauge(const char* name, double value);
void emit_observe(const char* name, double value);
// From build_report(): the report closure event.
void emit_end(std::string_view name, const json::Value& meta,
              bool obs_enabled, std::int64_t dropped_root_spans,
              bool mem_tracking, std::int64_t peak_rss_bytes);
// Routes one rendered line: buffered into the current task capture when
// one is installed, appended to the file otherwise.
void emit_line(std::string&& line);
}  // namespace detail

}  // namespace lac::obs::stream
