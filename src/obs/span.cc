#include "obs/span.h"

#include <mutex>
#include <utility>

#include "obs/obs.h"
#include "obs/stream.h"
#include "obs/task.h"

namespace lac::obs {

namespace {

// Default safety cap for processes that record forever without draining
// (e.g. google-benchmark loops running plan() thousands of times).
constexpr std::size_t kDefaultMaxRoots = 4096;

thread_local Span* tl_current = nullptr;

std::mutex g_roots_mu;
std::vector<SpanNode> g_roots;
std::int64_t g_dropped = 0;
std::size_t g_max_roots = kDefaultMaxRoots;

}  // namespace

namespace detail {

// Task-capture support (obs/task.h): the engine detaches span nesting for
// the duration of a task so task spans become roots of their own track.
void* exchange_current_span(void* span) {
  return std::exchange(tl_current, static_cast<Span*>(span));
}

void publish_root_globally(SpanNode&& node) {
  std::lock_guard lock(g_roots_mu);
  if (g_roots.size() < g_max_roots)
    g_roots.push_back(std::move(node));
  else
    ++g_dropped;
}

}  // namespace detail

const SpanNode* SpanNode::find_child(std::string_view child_name) const {
  for (const SpanNode& c : children)
    if (c.name == child_name) return &c;
  return nullptr;
}

const Annotation* SpanNode::find_annotation(std::string_view key) const {
  for (const Annotation& a : annotations)
    if (a.key == key) return &a;
  return nullptr;
}

Span::Span(std::string_view name) : t0_(std::chrono::steady_clock::now()) {
  if (!enabled()) return;
  // The mark comes first so the span's own node (and everything after)
  // counts toward its delta; the node is tiny and fixed-size, so deltas
  // stay deterministic.
  if (memory::tracking_enabled()) {
    mem_track_ = true;
    mem_mark_ = memory::begin_span();
  }
  node_ = new SpanNode;
  node_->name.assign(name);
  parent_ = tl_current;
  tl_current = this;
  // Live open/close pairs stream only at the global level; spans inside a
  // task capture arrive as complete trees when the capture commits, which
  // keeps the event order task-index-deterministic.
  if (stream::active() && detail::current_task_sink() == nullptr) {
    stream_id_ = stream::detail::next_span_id();
    stream::detail::emit_open(
        stream_id_, parent_ != nullptr ? parent_->stream_id_ : 0, name);
  }
}

Span::~Span() {
  if (node_ == nullptr) return;
  node_->seconds = elapsed_seconds();
  if (mem_track_) {
    const memory::SpanDelta d = memory::end_span(mem_mark_);
    node_->alloc_bytes = d.alloc_bytes;
    node_->freed_bytes = d.freed_bytes;
    node_->peak_live_bytes = d.peak_live_bytes;
    node_->mem_valid = true;
  }
  if (stream_id_ != 0) stream::detail::emit_close(stream_id_, *node_);
  if (tl_current == this) tl_current = parent_;
  if (parent_ != nullptr && parent_->node_ != nullptr) {
    parent_->node_->children.push_back(std::move(*node_));
  } else {
    detail::publish_root(std::move(*node_));
  }
  delete node_;
}

void Span::annotate(std::string_view key, std::string_view value) {
  if (node_ == nullptr) return;
  Annotation a;
  a.key.assign(key);
  a.kind = Annotation::Kind::kString;
  a.s.assign(value);
  node_->annotations.push_back(std::move(a));
}

void Span::annotate(std::string_view key, double value) {
  if (node_ == nullptr) return;
  Annotation a;
  a.key.assign(key);
  a.kind = Annotation::Kind::kDouble;
  a.d = value;
  node_->annotations.push_back(std::move(a));
}

void Span::annotate(std::string_view key, std::int64_t value) {
  if (node_ == nullptr) return;
  Annotation a;
  a.key.assign(key);
  a.kind = Annotation::Kind::kInt;
  a.i = value;
  node_->annotations.push_back(std::move(a));
}

void Span::annotate(std::string_view key, bool value) {
  if (node_ == nullptr) return;
  Annotation a;
  a.key.assign(key);
  a.kind = Annotation::Kind::kBool;
  a.b = value;
  node_->annotations.push_back(std::move(a));
}

double Span::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
      .count();
}

std::vector<SpanNode> take_finished_roots() {
  std::lock_guard lock(g_roots_mu);
  return std::exchange(g_roots, {});
}

std::int64_t dropped_roots() {
  std::lock_guard lock(g_roots_mu);
  return g_dropped;
}

void set_max_root_spans(std::size_t cap) {
  std::lock_guard lock(g_roots_mu);
  g_max_roots = cap;
}

std::size_t max_root_spans() {
  std::lock_guard lock(g_roots_mu);
  return g_max_roots;
}

}  // namespace lac::obs
