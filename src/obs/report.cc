#include "obs/report.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "obs/memory.h"
#include "obs/obs.h"
#include "obs/stream.h"

namespace lac::obs {

namespace {

json::Value annotation_to_json(const Annotation& a) {
  switch (a.kind) {
    case Annotation::Kind::kString: return json::Value::of(a.s);
    case Annotation::Kind::kDouble: return json::Value::of(a.d);
    case Annotation::Kind::kInt: return json::Value::of(a.i);
    case Annotation::Kind::kBool: return json::Value::of(a.b);
  }
  return {};
}

json::Value histogram_to_json(const HistogramSnapshot& h) {
  json::Value v;
  v.kind = json::Value::Kind::kObject;
  v.object.emplace_back("count", json::Value::of(h.count));
  v.object.emplace_back("sum", json::Value::of(h.sum));
  v.object.emplace_back("min", json::Value::of(h.min));
  v.object.emplace_back("max", json::Value::of(h.max));
  json::Value buckets;
  buckets.kind = json::Value::Kind::kArray;
  for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
    if (h.buckets[static_cast<std::size_t>(i)] == 0) continue;  // sparse
    json::Value b;
    b.kind = json::Value::Kind::kObject;
    b.object.emplace_back("le",
                          json::Value::of(HistogramSnapshot::bucket_bound(i)));
    b.object.emplace_back(
        "count", json::Value::of(h.buckets[static_cast<std::size_t>(i)]));
    buckets.array.push_back(std::move(b));
  }
  v.object.emplace_back("buckets", std::move(buckets));
  return v;
}

}  // namespace

json::Value span_to_json(const SpanNode& node) {
  return span_to_json(node, /*include_children=*/true);
}

json::Value span_to_json(const SpanNode& node, bool include_children) {
  json::Value v;
  v.kind = json::Value::Kind::kObject;
  v.object.emplace_back("name", json::Value::of(node.name));
  v.object.emplace_back("seconds", json::Value::of(node.seconds));
  if (node.mem_valid) {
    v.object.emplace_back("alloc_bytes", json::Value::of(node.alloc_bytes));
    v.object.emplace_back("freed_bytes", json::Value::of(node.freed_bytes));
    v.object.emplace_back("peak_live_bytes",
                          json::Value::of(node.peak_live_bytes));
  }
  if (!node.annotations.empty()) {
    json::Value ann;
    ann.kind = json::Value::Kind::kObject;
    for (const Annotation& a : node.annotations)
      ann.object.emplace_back(a.key, annotation_to_json(a));
    v.object.emplace_back("annotations", std::move(ann));
  }
  if (include_children && !node.children.empty()) {
    json::Value kids;
    kids.kind = json::Value::Kind::kArray;
    for (const SpanNode& c : node.children)
      kids.array.push_back(span_to_json(c));
    v.object.emplace_back("children", std::move(kids));
  }
  return v;
}

json::Value metrics_to_json(const Metrics& m) {
  json::Value metrics;
  metrics.kind = json::Value::Kind::kObject;
  json::Value counters;
  counters.kind = json::Value::Kind::kObject;
  for (const auto& [k, v] : m.counters())
    counters.object.emplace_back(k, json::Value::of(v));
  metrics.object.emplace_back("counters", std::move(counters));
  json::Value gauges;
  gauges.kind = json::Value::Kind::kObject;
  for (const auto& [k, v] : m.gauges())
    gauges.object.emplace_back(k, json::Value::of(v));
  metrics.object.emplace_back("gauges", std::move(gauges));
  json::Value hists;
  hists.kind = json::Value::Kind::kObject;
  for (const auto& [k, v] : m.histograms())
    hists.object.emplace_back(k, histogram_to_json(v));
  metrics.object.emplace_back("histograms", std::move(hists));
  return metrics;
}

json::Value build_report(
    std::string_view name,
    const std::vector<std::pair<std::string, json::Value>>& meta) {
  json::Value root;
  root.kind = json::Value::Kind::kObject;
  root.object.emplace_back("schema", json::Value::of("lac-obs-report/2"));
  root.object.emplace_back("name", json::Value::of(name));
  root.object.emplace_back("obs_enabled", json::Value::of(enabled()));

  json::Value meta_obj;
  meta_obj.kind = json::Value::Kind::kObject;
  for (const auto& [k, v] : meta) meta_obj.object.emplace_back(k, v);
  root.object.emplace_back("meta", std::move(meta_obj));

  json::Value trace;
  trace.kind = json::Value::Kind::kArray;
  for (const SpanNode& span : take_finished_roots())
    trace.array.push_back(span_to_json(span));
  root.object.emplace_back("trace", std::move(trace));

  json::Value metrics = metrics_to_json(Metrics::instance());
  // Process-level memory facts (v2).  peak_rss_bytes is machine- and
  // scheduling-dependent; compare/strip classify the whole section noisy.
  const bool mem_tracking = memory::tracking_enabled();
  const std::int64_t rss = memory::peak_rss_bytes();
  json::Value mem;
  mem.kind = json::Value::Kind::kObject;
  mem.object.emplace_back("tracking", json::Value::of(mem_tracking));
  if (rss > 0)
    mem.object.emplace_back("peak_rss_bytes", json::Value::of(rss));
  metrics.object.emplace_back("memory", std::move(mem));
  root.object.emplace_back("metrics", std::move(metrics));

  const std::int64_t dropped = dropped_roots();
  root.object.emplace_back("dropped_root_spans", json::Value::of(dropped));

  // The stream has no footer of its own: the `end` event is the report
  // closure, so a streamed run that never reached build_report() folds as
  // truncated.
  if (stream::active()) {
    const json::Value* meta_v = root.find("meta");
    stream::detail::emit_end(name, meta_v != nullptr ? *meta_v : json::Value{},
                             enabled(), dropped, mem_tracking, rss);
  }
  return root;
}

std::string render_report(
    std::string_view name,
    const std::vector<std::pair<std::string, json::Value>>& meta) {
  return json::serialize(build_report(name, meta));
}

bool write_report(
    const std::string& path, std::string_view name,
    const std::vector<std::pair<std::string, json::Value>>& meta,
    std::string* error) {
  if (error != nullptr) error->clear();
  // Render first: the trace must be drained even when the write fails.
  const std::string text = render_report(name, meta);

  const std::filesystem::path fs_path(path);
  if (const std::filesystem::path parent = fs_path.parent_path();
      !parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      if (error != nullptr)
        *error = "cannot create directory " + parent.string() + ": " +
                 ec.message();
      return false;
    }
  }

  errno = 0;
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr)
      *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  out << text << '\n';
  out.flush();
  if (!out) {
    if (error != nullptr)
      *error = "short write to " + path + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace lac::obs
