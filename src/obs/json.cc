#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace lac::obs::json {

namespace {

constexpr int kMaxDepth = 256;

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no Inf/NaN
    return;
  }
  char buf[32];
  const double r = std::nearbyint(v);
  if (r == v && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(r));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

}  // namespace

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = 0;
    } else {
      out_ += ',';
    }
  }
}

void Writer::begin_object() {
  separate();
  out_ += '{';
  first_.push_back(1);
}

void Writer::end_object() {
  first_.pop_back();
  out_ += '}';
}

void Writer::begin_array() {
  separate();
  out_ += '[';
  first_.push_back(1);
}

void Writer::end_array() {
  first_.pop_back();
  out_ += ']';
}

void Writer::key(std::string_view k) {
  separate();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
}

void Writer::value(std::string_view v) {
  separate();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
}

void Writer::value(double v) {
  separate();
  append_number(out_, v);
}

void Writer::value(std::int64_t v) {
  separate();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
}

void Writer::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
}

void Writer::null() {
  separate();
  out_ += "null";
}

std::string Writer::take() {
  std::string r = std::move(out_);
  out_.clear();
  first_.clear();
  after_key_ = false;
  return r;
}

Value Value::of(std::string_view s) {
  Value v;
  v.kind = Kind::kString;
  v.str.assign(s);
  return v;
}

Value Value::of(double d) {
  Value v;
  v.kind = Kind::kNumber;
  v.num = d;
  return v;
}

Value Value::of(std::int64_t i) {
  Value v;
  v.kind = Kind::kNumber;
  v.num = static_cast<double>(i);
  return v;
}

Value Value::of(bool b) {
  Value v;
  v.kind = Kind::kBool;
  v.b = b;
  return v;
}

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const Value* Value::at_path(
    std::initializer_list<std::string_view> keys) const {
  const Value* cur = this;
  for (const std::string_view k : keys) {
    cur = cur->find(k);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  bool consume(char c) {
    if (eof() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > s_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return false;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: expect \uDC00..\uDFFF next.
            unsigned lo = 0;
            if (!consume('\\') || !consume('u') || !parse_hex4(lo) ||
                lo < 0xDC00 || lo > 0xDFFF)
              return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // lone low surrogate
          }
          append_utf8(out, cp);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(Value& v) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (eof()) return false;
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' || peek() == '+' ||
                      peek() == '-'))
      ++pos_;
    if (pos_ == start) return false;
    const std::string num(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    v.kind = Value::Kind::kNumber;
    v.num = d;
    return true;
  }

  bool parse_value(Value& v, int depth) {
    if (depth > kMaxDepth || eof()) return false;
    switch (peek()) {
      case '{': {
        ++pos_;
        v.kind = Value::Kind::kObject;
        skip_ws();
        if (consume('}')) return true;
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          skip_ws();
          Value member;
          if (!parse_value(member, depth + 1)) return false;
          v.object.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (consume(',')) continue;
          return consume('}');
        }
      }
      case '[': {
        ++pos_;
        v.kind = Value::Kind::kArray;
        skip_ws();
        if (consume(']')) return true;
        while (true) {
          skip_ws();
          Value element;
          if (!parse_value(element, depth + 1)) return false;
          v.array.push_back(std::move(element));
          skip_ws();
          if (consume(',')) continue;
          return consume(']');
        }
      }
      case '"': {
        v.kind = Value::Kind::kString;
        return parse_string(v.str);
      }
      case 't':
        v.kind = Value::Kind::kBool;
        v.b = true;
        return literal("true");
      case 'f':
        v.kind = Value::Kind::kBool;
        v.b = false;
        return literal("false");
      case 'n':
        v.kind = Value::Kind::kNull;
        return literal("null");
      default:
        return parse_number(v);
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

void serialize_into(const Value& v, Writer& w) {
  switch (v.kind) {
    case Value::Kind::kNull: w.null(); break;
    case Value::Kind::kBool: w.value(v.b); break;
    case Value::Kind::kNumber: w.value(v.num); break;
    case Value::Kind::kString: w.value(std::string_view(v.str)); break;
    case Value::Kind::kArray:
      w.begin_array();
      for (const auto& e : v.array) serialize_into(e, w);
      w.end_array();
      break;
    case Value::Kind::kObject:
      w.begin_object();
      for (const auto& [k, member] : v.object) {
        w.key(k);
        serialize_into(member, w);
      }
      w.end_object();
      break;
  }
}

}  // namespace

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

std::optional<Value> parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::string serialize(const Value& v) {
  Writer w;
  serialize_into(v, w);
  return w.take();
}

}  // namespace lac::obs::json
