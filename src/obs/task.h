// Deterministic observability under parallel execution.
//
// The span store and the metrics registry are process-wide; when tasks run
// on a thread pool, the order in which their spans publish and their
// metric events apply would follow completion time — nondeterministic, so
// two runs of the same work at different thread counts would produce
// byte-different reports.  TaskCapture fixes that: the parallel engine
// (base/parallel) redirects each task's observability output into a
// per-task buffer and, after the loop joins, commits the buffers in task
// order on the calling thread.  The resulting span sequence and metric
// state are identical for every thread count, including fully inline
// execution.
//
// Commit *replays* the buffered events through the public obs entry
// points, so nested parallel loops compose: a task's inner loop commits
// into the enclosing task's capture, which the outer loop later commits
// wherever *it* is running.
//
// When obs::enabled() is false nothing records, captures stay empty and
// the redirection costs two thread-local writes per task.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.h"

namespace lac::obs {

struct MetricEvent {
  enum class Kind { kCount, kGauge, kObserve };

  Kind kind = Kind::kCount;
  std::string name;
  std::int64_t delta = 0;  // kCount
  double value = 0.0;      // kGauge / kObserve
};

// Buffered observability output of one task: root spans finished while the
// capture was installed, metric events in emission order, and the task's
// net heap traffic (obs/memory.h) — credited to the committing thread so
// per-span allocation deltas are independent of which worker ran the task.
struct TaskCapture {
  std::vector<SpanNode> roots;
  std::vector<MetricEvent> events;
  // Pre-rendered obs::stream event lines (stream::Event emitted inside the
  // task); replayed before the metric events so custom events precede the
  // metric updates of the same task, matching inline emission order.
  std::vector<std::string> stream_lines;
  std::int64_t alloc_bytes = 0;
  std::int64_t freed_bytes = 0;

  [[nodiscard]] bool empty() const {
    return roots.empty() && events.empty() && stream_lines.empty() &&
           alloc_bytes == 0 && freed_bytes == 0;
  }
};

// RAII: redirects this thread's observability output into `capture` and
// detaches span nesting (spans opened inside the task become task-local
// roots rather than children of whatever span the caller had open — each
// task is its own trace track).  Restores the previous sink and span
// context on destruction.  Captures nest: the previous sink, if any,
// resumes when this one ends.
class ScopedTaskCapture {
 public:
  explicit ScopedTaskCapture(TaskCapture* capture);
  ScopedTaskCapture(const ScopedTaskCapture&) = delete;
  ScopedTaskCapture& operator=(const ScopedTaskCapture&) = delete;
  ~ScopedTaskCapture();

 private:
  TaskCapture* capture_ = nullptr;
  TaskCapture* prev_sink_ = nullptr;
  void* prev_span_ = nullptr;  // opaque Span*; span.cc owns the type
  memory::Context mem_saved_;  // counters detached for the task's duration
};

// Applies a capture's events and publishes its roots *at the current
// thread's sink* — the global store/registry, or the enclosing capture if
// one is installed.  Consumes the capture.
void commit_task_capture(TaskCapture&& capture);

namespace detail {
// Current thread's capture sink; nullptr when publishing directly to the
// process-wide store/registry.  Used by span.cc and metrics.cc.
[[nodiscard]] TaskCapture* current_task_sink();
// Publishes a finished root span at the current sink (or globally).
void publish_root(SpanNode&& node);
}  // namespace detail

}  // namespace lac::obs
