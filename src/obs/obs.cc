#include "obs/obs.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace lac::obs {

namespace {

bool env_default() {
  const char* v = std::getenv("LAC_OBS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "off") == 0 || std::strcmp(v, "no") == 0);
}

std::atomic<bool>& flag() {
  static std::atomic<bool> g{env_default()};
  return g;
}

}  // namespace

bool enabled() { return flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) { flag().store(on, std::memory_order_relaxed); }

ScopedEnable::ScopedEnable(bool on) : prev_(enabled()) { set_enabled(on); }

ScopedEnable::~ScopedEnable() { set_enabled(prev_); }

}  // namespace lac::obs
