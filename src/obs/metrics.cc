#include "obs/metrics.h"

#include <cmath>
#include <limits>

#include "obs/obs.h"
#include "obs/stream.h"
#include "obs/task.h"

namespace lac::obs {

double HistogramSnapshot::bucket_bound(int i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, i - 10);
}

Metrics& Metrics::instance() {
  static Metrics m;
  return m;
}

void Metrics::add_counter(std::string_view name, std::int64_t delta) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void Metrics::set_gauge(std::string_view name, double value) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    gauges_.emplace(std::string(name), value);
  else
    it->second = value;
}

void Metrics::observe(std::string_view name, double value) {
  std::lock_guard lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end())
    it = hists_.emplace(std::string(name), HistogramSnapshot{}).first;
  HistogramSnapshot& h = it->second;
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  const double v = std::max(value, 0.0);
  int b = 0;
  while (b < HistogramSnapshot::kNumBuckets - 1 &&
         v > HistogramSnapshot::bucket_bound(b))
    ++b;
  ++h.buckets[static_cast<std::size_t>(b)];
}

std::int64_t Metrics::counter(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::optional<double> Metrics::gauge(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

std::optional<HistogramSnapshot> Metrics::histogram(
    std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = hists_.find(name);
  if (it == hists_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, std::int64_t>> Metrics::counters() const {
  std::lock_guard lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> Metrics::gauges() const {
  std::lock_guard lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::vector<std::pair<std::string, HistogramSnapshot>> Metrics::histograms()
    const {
  std::lock_guard lock(mu_);
  return {hists_.begin(), hists_.end()};
}

void Metrics::reset() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  hists_.clear();
}

void count(const char* name, std::int64_t delta) {
  if (!enabled()) return;
  if (TaskCapture* sink = detail::current_task_sink()) {
    sink->events.push_back(
        {MetricEvent::Kind::kCount, name, delta, 0.0});
    return;
  }
  Metrics::instance().add_counter(name, delta);
  if (stream::active()) stream::detail::emit_count(name, delta);
}

void gauge(const char* name, double value) {
  if (!enabled()) return;
  if (TaskCapture* sink = detail::current_task_sink()) {
    sink->events.push_back(
        {MetricEvent::Kind::kGauge, name, 0, value});
    return;
  }
  Metrics::instance().set_gauge(name, value);
  if (stream::active()) stream::detail::emit_gauge(name, value);
}

void observe(const char* name, double value) {
  if (!enabled()) return;
  if (TaskCapture* sink = detail::current_task_sink()) {
    sink->events.push_back(
        {MetricEvent::Kind::kObserve, name, 0, value});
    return;
  }
  Metrics::instance().observe(name, value);
  if (stream::active()) stream::detail::emit_observe(name, value);
}

}  // namespace lac::obs
