// Deterministic memory accounting for the observability layer.
//
// The heap traffic of the pipeline's C++ containers is observed by
// replacing the global `operator new` / `operator delete` (memory.cc) and
// counting bytes into plain thread-local counters — no locks, no atomics
// on the allocation path, and the accounting itself never allocates.
// Counted bytes are the *requested* sizes, not what the allocator hands
// out: glibc's actual chunk sizes depend on heap history (and with it on
// thread timing), while requested sizes are a pure function of program
// behaviour — byte-identical for any thread count and any allocator.
// The free side learns sizes from C++14 sized `operator delete` (what
// libstdc++ containers emit); unsized deletes count zero freed bytes,
// keeping freed_bytes deterministic at the cost of live/peak being a
// slight deterministic overestimate.  The hooks are enabled on glibc; on
// other platforms they are compiled out and tracking_available() is
// false — everything else degrades gracefully (spans simply omit their
// memory fields, reports omit span deltas).
//
// Determinism contract.  Per-span allocation deltas must be byte-identical
// for any thread count, exactly like counters and span trees.  Three
// mechanisms deliver that, mirroring obs/task.h:
//   1. Task contexts: ScopedTaskCapture detaches this thread's counters
//      (detach_context) so a task's traffic accumulates from zero, and
//      commit_task_capture credits the net delta back on the calling
//      thread in task-index order (credit()) — where it flows into
//      whatever span is open there, independent of which worker actually
//      ran the task.
//   2. Pause scopes: the parallel engine wraps its own bookkeeping
//      (capture arrays, the pool body, thread creation) in a PauseScope
//      so pooled and inline execution charge identical bytes to spans.
//   3. Worker-count-independent chunking (base/parallel.cc): per-chunk
//      scratch allocated by task bodies is identical for every thread
//      count because the chunk partition itself is.
//
// `peak_live_bytes` is a high-water mark of the thread's live bytes
// relative to span entry.  Net task deltas are credited as a single
// step, so a span enclosing a parallel region sees the committed net
// growth, not the workers' transient peaks — deterministic, but a lower
// bound on the true process peak (mem.peak_rss_bytes reports that).
//
// Tracking is on by default when available; set LAC_OBS_MEM=0/false/off/no
// to disable.  While obs::enabled() is false nothing is counted at all.
#pragma once

#include <cstdint>

namespace lac::obs::memory {

// True when this build can observe heap traffic (glibc new/delete hooks).
[[nodiscard]] bool tracking_available();

// tracking_available() and not disabled via LAC_OBS_MEM.
[[nodiscard]] bool tracking_enabled();

// Raw count of operator-new calls made by this thread since thread
// start.  Unlike the byte counters it is never gated — not by
// obs::enabled(), LAC_OBS_MEM, PauseScope, or detach_context() — so
// tests can assert a code path performs no allocation at all.  Frozen
// (and zero) when tracking_available() is false.
[[nodiscard]] std::uint64_t thread_alloc_calls();

// This thread's counters since thread start (or the enclosing
// detach_context()).  live/peak are relative to the same origin and may
// go negative when memory allocated elsewhere is freed here.
struct ThreadCounters {
  std::int64_t alloc_bytes = 0;
  std::int64_t freed_bytes = 0;
  std::int64_t live_bytes = 0;
  std::int64_t peak_live_bytes = 0;
};
[[nodiscard]] ThreadCounters thread_counters();

// RAII: suspends counting on this thread (nests).  Used by the parallel
// engine around bookkeeping whose size depends on the worker count.
class PauseScope {
 public:
  PauseScope();
  PauseScope(const PauseScope&) = delete;
  PauseScope& operator=(const PauseScope&) = delete;
  ~PauseScope();
};

// Saved attribution state of a thread, for task captures.
struct Context {
  std::int64_t alloc_bytes = 0;
  std::int64_t freed_bytes = 0;
  std::int64_t live_bytes = 0;
  std::int64_t peak_live_bytes = 0;
  int pause_depth = 0;
};

// Zeroes this thread's counters and pause depth (a task accounts from a
// clean slate even when the engine paused the spawning scope), returning
// the previous state for restore_context().
[[nodiscard]] Context detach_context();
void restore_context(const Context& saved);

// Credits a committed task's net traffic to this thread's counters, as
// one allocation step (bypasses PauseScope: crediting is deliberate).
void credit(std::int64_t alloc_bytes, std::int64_t freed_bytes);

// Span bookkeeping (span.cc).  begin_span() snapshots the counters and
// resets the peak watermark to the current live level; end_span() returns
// the deltas accumulated since.
struct SpanMark {
  std::int64_t alloc0 = 0;
  std::int64_t freed0 = 0;
  std::int64_t live0 = 0;
  std::int64_t peak_saved = 0;
};
[[nodiscard]] SpanMark begin_span();

struct SpanDelta {
  std::int64_t alloc_bytes = 0;
  std::int64_t freed_bytes = 0;
  std::int64_t peak_live_bytes = 0;  // max live above the entry level, >= 0
};
[[nodiscard]] SpanDelta end_span(const SpanMark& mark);

// Process peak resident set (/proc/self/status VmHWM) in bytes; 0 when
// unavailable (non-Linux).  Machine- and scheduling-dependent: reports
// classify it noisy, like wall-clock timings.
[[nodiscard]] std::int64_t peak_rss_bytes();

// Current resident set (/proc/self/status VmRSS) in bytes; 0 when
// unavailable.
[[nodiscard]] std::int64_t current_rss_bytes();

}  // namespace lac::obs::memory
