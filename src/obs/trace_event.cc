#include "obs/trace_event.h"

#include <utility>

namespace lac::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

json::Value object() {
  json::Value v;
  v.kind = json::Value::Kind::kObject;
  return v;
}

json::Value array() {
  json::Value v;
  v.kind = json::Value::Kind::kArray;
  return v;
}

json::Value event(std::string_view name, const char* phase, double ts_us,
                  int tid) {
  json::Value e = object();
  e.object.emplace_back("name", json::Value::of(name));
  e.object.emplace_back("ph", json::Value::of(phase));
  e.object.emplace_back("ts", json::Value::of(ts_us));
  e.object.emplace_back("pid", json::Value::of(0));
  e.object.emplace_back("tid", json::Value::of(tid));
  return e;
}

json::Value counter_event(std::string_view name, double value) {
  json::Value e = event(name, "C", 0.0, 0);
  json::Value args = object();
  args.object.emplace_back("value", json::Value::of(value));
  e.object.emplace_back("args", std::move(args));
  return e;
}

// Emits `span` (a report-JSON span object) as an "X" event starting at
// `ts_us`, then its children back-to-back from the same origin.
void emit_span(const json::Value& span, double ts_us, int tid,
               json::Value& events) {
  const json::Value* name = span.find("name");
  if (name == nullptr || name->kind != json::Value::Kind::kString) return;
  const json::Value* seconds = span.find("seconds");
  const double dur_us =
      (seconds != nullptr && seconds->kind == json::Value::Kind::kNumber)
          ? seconds->num * kMicrosPerSecond
          : 0.0;

  json::Value e = event(name->str, "X", ts_us, tid);
  e.object.emplace_back("dur", json::Value::of(dur_us));
  json::Value args = object();
  if (const json::Value* ann = span.find("annotations");
      ann != nullptr && ann->is_object())
    args = *ann;
  // v2 span memory deltas ride along as args so slice selection in
  // Perfetto shows them next to the annotations.
  for (const char* key : {"alloc_bytes", "freed_bytes", "peak_live_bytes"})
    if (const json::Value* b = span.find(key);
        b != nullptr && b->kind == json::Value::Kind::kNumber)
      args.object.emplace_back(key, *b);
  if (!args.object.empty()) e.object.emplace_back("args", std::move(args));
  events.array.push_back(std::move(e));

  if (const json::Value* kids = span.find("children");
      kids != nullptr && kids->is_array()) {
    double child_ts = ts_us;
    for (const json::Value& c : kids->array) {
      emit_span(c, child_ts, tid, events);
      if (const json::Value* cs = c.find("seconds");
          cs != nullptr && cs->kind == json::Value::Kind::kNumber)
        child_ts += cs->num * kMicrosPerSecond;
    }
  }
}

}  // namespace

json::Value to_trace_events(const json::Value& report) {
  json::Value events = array();

  const json::Value* report_name = report.find("name");
  {
    json::Value proc = event("process_name", "M", 0.0, 0);
    json::Value args = object();
    args.object.emplace_back(
        "name", report_name != nullptr &&
                        report_name->kind == json::Value::Kind::kString
                    ? json::Value::of(report_name->str)
                    : json::Value::of("lac-obs-report"));
    proc.object.emplace_back("args", std::move(args));
    events.array.push_back(std::move(proc));
  }

  if (const json::Value* trace = report.find("trace");
      trace != nullptr && trace->is_array()) {
    int tid = 1;
    for (const json::Value& root : trace->array) {
      if (const json::Value* rn = root.find("name");
          rn != nullptr && rn->kind == json::Value::Kind::kString) {
        json::Value meta = event("thread_name", "M", 0.0, tid);
        json::Value args = object();
        args.object.emplace_back("name", json::Value::of(rn->str));
        meta.object.emplace_back("args", std::move(args));
        events.array.push_back(std::move(meta));
      }
      emit_span(root, 0.0, tid, events);
      ++tid;
    }
  }

  if (const json::Value* counters = report.at_path({"metrics", "counters"});
      counters != nullptr && counters->is_object())
    for (const auto& [k, v] : counters->object)
      if (v.kind == json::Value::Kind::kNumber)
        events.array.push_back(counter_event(k, v.num));
  if (const json::Value* gauges = report.at_path({"metrics", "gauges"});
      gauges != nullptr && gauges->is_object())
    for (const auto& [k, v] : gauges->object)
      if (v.kind == json::Value::Kind::kNumber)
        events.array.push_back(counter_event(k, v.num));
  if (const json::Value* hists = report.at_path({"metrics", "histograms"});
      hists != nullptr && hists->is_object())
    for (const auto& [k, v] : hists->object) {
      if (const json::Value* c = v.find("count");
          c != nullptr && c->kind == json::Value::Kind::kNumber)
        events.array.push_back(counter_event(k + ".count", c->num));
      if (const json::Value* s = v.find("sum");
          s != nullptr && s->kind == json::Value::Kind::kNumber)
        events.array.push_back(counter_event(k + ".sum", s->num));
    }
  // v2 process-memory facts become their own counter track family so
  // Perfetto groups them away from the mcf.*/lac.* pipeline metrics.
  if (const json::Value* mem = report.at_path({"metrics", "memory"});
      mem != nullptr && mem->is_object())
    for (const auto& [k, v] : mem->object)
      if (v.kind == json::Value::Kind::kNumber)
        events.array.push_back(counter_event("memory." + k, v.num));

  json::Value doc = object();
  doc.object.emplace_back("traceEvents", std::move(events));
  doc.object.emplace_back("displayTimeUnit", json::Value::of("ms"));
  json::Value other = object();
  const json::Value* schema = report.find("schema");
  other.object.emplace_back(
      "source_schema",
      schema != nullptr && schema->kind == json::Value::Kind::kString
          ? json::Value::of(schema->str)
          : json::Value::of("lac-obs-report/1"));
  doc.object.emplace_back("otherData", std::move(other));
  return doc;
}

std::string render_trace_events(const json::Value& report) {
  return json::serialize(to_trace_events(report));
}

}  // namespace lac::obs
