// lac-obs-report/2 (or /1) → Chrome trace-event JSON (the "JSON Object Format"
// with a "traceEvents" array), loadable in Perfetto and chrome://tracing.
//
// Reports record durations, not absolute timestamps, so the timeline is
// reconstructed deterministically:
//   * each root span becomes its own track (tid = root index + 1, named
//     by a "thread_name" metadata event) starting at t = 0;
//   * children are laid out back-to-back from their parent's start, in
//     recorded (completion) order, as complete ("X") events — a parent's
//     self time therefore shows as the gap at the end of its bar;
//   * span annotations become the event's "args";
//   * counters and gauges become "C" counter events at t = 0, histograms
//     two counter series (<name>.count / <name>.sum), so Perfetto renders
//     metric tracks next to the trace.
// Timestamps and durations are in microseconds per the spec.
#pragma once

#include <string>

#include "obs/json.h"

namespace lac::obs {

// Converts a parsed report into the trace-event document.
[[nodiscard]] json::Value to_trace_events(const json::Value& report);

// to_trace_events() serialised to text.
[[nodiscard]] std::string render_trace_events(const json::Value& report);

}  // namespace lac::obs
