// Post-hoc analysis of lac-obs-report documents (v1 and v2): re-hydrating
// span trees from parsed report JSON, per-span self time and self
// allocation (exclusive of children), per-name aggregation, and
// critical-chain extraction.  v1 reports simply have no memory fields;
// everything memory-flavoured degrades to zeros with has_mem == false.
//
// Everything operates on parsed reports (json::Value) or the SpanNode
// trees reconstructed from them, so the same code serves in-process
// consumers (tests, examples) and the offline `lacobs` CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/span.h"

namespace lac::obs {

// Rebuilds one span tree from its report JSON (inverse of span_to_json).
// Spans stripped of wall-clock fields (`lacobs strip-times`) come back
// with seconds == 0.  Returns nullopt when `v` is not an object with a
// string "name".
[[nodiscard]] std::optional<SpanNode> span_from_json(const json::Value& v);

// All root spans under the report's "trace"; empty when absent or
// malformed (individual malformed spans are skipped, not fatal).
[[nodiscard]] std::vector<SpanNode> trace_from_report(
    const json::Value& report);

// True when any span in the report carries a "seconds" field — false for
// strip-times'd baselines, which suppresses timing comparisons in
// compare.h.
[[nodiscard]] bool report_has_times(const json::Value& report);

// Wall time spent in `node` itself, exclusive of its children.  Clamped
// at zero: child timers stopping after the parent's reading can push the
// raw difference negative by a clock quantum.
[[nodiscard]] double self_seconds(const SpanNode& node);

// Bytes allocated in `node` itself, exclusive of its children (span
// alloc_bytes is inclusive).  Clamped at zero.
[[nodiscard]] std::int64_t self_alloc_bytes(const SpanNode& node);

// Aggregate statistics for every span sharing one name.
struct SpanStats {
  std::string name;
  std::int64_t count = 0;
  double total_seconds = 0.0;  // inclusive wall time
  double self_seconds = 0.0;   // exclusive of children
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  // Memory aggregates (v2 reports); meaningful when has_mem.
  bool has_mem = false;
  std::int64_t alloc_bytes = 0;       // Σ inclusive allocations
  std::int64_t freed_bytes = 0;       // Σ inclusive frees
  std::int64_t self_alloc_bytes = 0;  // Σ exclusive of children
  std::int64_t peak_live_bytes = 0;   // max over spans of the name

  [[nodiscard]] double mean_seconds() const {
    return count > 0 ? total_seconds / static_cast<double>(count) : 0.0;
  }
};

// Aggregates every span in the forest (recursively) by name, sorted by
// total time descending, ties by name.
[[nodiscard]] std::vector<SpanStats> aggregate_spans(
    const std::vector<SpanNode>& roots);

// The hottest root-to-leaf chain: the root with the largest wall time,
// then repeatedly the slowest child.  Pointers into `roots`; empty when
// `roots` is.
[[nodiscard]] std::vector<const SpanNode*> critical_chain(
    const std::vector<SpanNode>& roots);

}  // namespace lac::obs
