// Structured JSON run reports: the span tree + metrics registry snapshot
// serialised into one machine-readable document.
//
// Schema ("lac-obs-report/2"):
//   {
//     "schema": "lac-obs-report/2",
//     "name": <report name>,
//     "obs_enabled": <bool>,             // switch state at build time
//     "meta": { <caller-supplied> },
//     "trace": [ <span>... ],            // finished root spans (drained)
//     "metrics": {
//       "counters":   { name: int, ... },
//       "gauges":     { name: number, ... },
//       "histograms": { name: {count, sum, min, max,
//                              buckets: [{le, count}, ...]}, ... },
//       "memory":     { "tracking": <bool>,
//                       "peak_rss_bytes": <int> }   // only when > 0
//     },
//     "dropped_root_spans": <int>
//   }
// where <span> = {"name", "seconds", "annotations": {k: v}, "children":
// [<span>...]} plus, when memory tracking was on for the span,
// "alloc_bytes" / "freed_bytes" / "peak_live_bytes" (requested-size
// deltas; see obs/memory.h).  v1 reports are identical minus the memory
// fields and parse everywhere a v2 report does.
//
// Building a report *drains* the finished-root-span store, so successive
// reports partition the trace rather than repeating it.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace lac::obs {

// One span tree as a json::Value (see schema above).
[[nodiscard]] json::Value span_to_json(const SpanNode& node);

// Same, optionally without the "children" member — obs/stream.cc emits a
// span's own fields in its `close` event while the children streamed as
// their own events.
[[nodiscard]] json::Value span_to_json(const SpanNode& node,
                                       bool include_children);

// The "counters" / "gauges" / "histograms" sections for an arbitrary
// registry (the process-wide section of the schema minus "memory", which
// holds process-level facts).  stream::fold() replays a stream's metric
// events into a local Metrics and serialises it through this exact
// function, which is what makes folded and direct reports byte-identical.
[[nodiscard]] json::Value metrics_to_json(const Metrics& m);

// Snapshot of everything observed so far.  `meta` entries are emitted
// verbatim under "meta".
[[nodiscard]] json::Value build_report(
    std::string_view name,
    const std::vector<std::pair<std::string, json::Value>>& meta = {});

// build_report() serialised to text.
[[nodiscard]] std::string render_report(
    std::string_view name,
    const std::vector<std::pair<std::string, json::Value>>& meta = {});

// Renders and writes the report to `path`, creating missing parent
// directories; false on I/O failure (the trace is drained either way).
// When `error` is non-null it receives a description of the failure
// (including strerror(errno) context) or is cleared on success.
bool write_report(
    const std::string& path, std::string_view name,
    const std::vector<std::pair<std::string, json::Value>>& meta = {},
    std::string* error = nullptr);

}  // namespace lac::obs
