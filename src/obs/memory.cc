#include "obs/memory.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "obs/obs.h"

#if defined(__GLIBC__)
#define LAC_OBS_MEMORY_HOOKS 1
#else
#define LAC_OBS_MEMORY_HOOKS 0
#endif

namespace lac::obs::memory {

namespace {

// Per-thread attribution state.  Trivially constructible / destructible so
// it is safe to touch from operator new/delete at any point of a thread's
// lifetime, including before main and during thread teardown.
struct TlsMem {
  std::int64_t alloc = 0;
  std::int64_t freed = 0;
  std::int64_t live = 0;
  std::int64_t peak = 0;
  int pause = 0;
  std::uint64_t calls = 0;  // raw probe, never gated or reset
};
thread_local TlsMem tl_mem;

// Tri-state runtime switch resolved lazily from LAC_OBS_MEM: operator new
// runs before any static initialiser in this TU could, so the state lives
// in a constant-initialised atomic (0 = unresolved, 1 = on, 2 = off).
std::atomic<unsigned char> g_track_state{0};

bool resolve_tracking() {
  unsigned char on = 1;
#if !LAC_OBS_MEMORY_HOOKS
  on = 2;
#else
  if (const char* v = std::getenv("LAC_OBS_MEM"); v != nullptr)
    if (std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
        std::strcmp(v, "off") == 0 || std::strcmp(v, "no") == 0)
      on = 2;
#endif
  g_track_state.store(on, std::memory_order_relaxed);
  return on == 1;
}

inline bool tracking_on() {
  const unsigned char s = g_track_state.load(std::memory_order_relaxed);
  if (s != 0) return s == 1;
  return resolve_tracking();
}

#if LAC_OBS_MEMORY_HOOKS

// Counted sizes are the *requested* sizes, never malloc_usable_size: the
// bytes glibc actually hands out depend on heap history (recycled chunks
// keep unsplit remainders), and heap history depends on thread timing —
// usable sizes would differ run to run even for a fully serial stage.
// Requested sizes are a pure function of program behaviour, so they are
// byte-identical for any thread count and any allocator.

inline void on_alloc(std::size_t size) {
  if (!enabled() || !tracking_on()) return;
  TlsMem& m = tl_mem;
  if (m.pause != 0) return;
  m.alloc += static_cast<std::int64_t>(size);
  m.live += static_cast<std::int64_t>(size);
  if (m.live > m.peak) m.peak = m.live;
}

// The free side only knows the requested size for C++14 sized delete —
// which is what libstdc++ containers, strings and node types emit.
// Unsized deletes count zero freed bytes: still deterministic (the only
// alternative, malloc_usable_size, is not), at the cost of live/peak
// being a slight, deterministic overestimate when unsized deletes occur.
inline void on_free(std::size_t size) {
  if (!enabled() || !tracking_on()) return;
  TlsMem& m = tl_mem;
  if (m.pause != 0) return;
  m.freed += static_cast<std::int64_t>(size);
  m.live -= static_cast<std::int64_t>(size);
}

// malloc with the standard new-handler retry loop; returns nullptr only
// once no handler is installed.
void* alloc_retry(std::size_t size) {
  ++tl_mem.calls;
  std::size_t request = size == 0 ? 1 : size;
  for (;;) {
    void* p = std::malloc(request);
    if (p != nullptr) {
      on_alloc(size);  // the original size, matching sized delete
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

void* aligned_alloc_retry(std::size_t size, std::size_t align) {
  ++tl_mem.calls;
  std::size_t request = size == 0 ? 1 : size;
  if (align < sizeof(void*)) align = sizeof(void*);
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, align, request) == 0 && p != nullptr) {
      on_alloc(size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

inline void dealloc(void* p) {
  if (p == nullptr) return;
  std::free(p);
}

inline void dealloc_sized(void* p, std::size_t size) {
  if (p == nullptr) return;
  on_free(size);
  std::free(p);
}

#endif  // LAC_OBS_MEMORY_HOOKS

}  // namespace

bool tracking_available() { return LAC_OBS_MEMORY_HOOKS != 0; }

bool tracking_enabled() { return tracking_on(); }

ThreadCounters thread_counters() {
  const TlsMem& m = tl_mem;
  return {m.alloc, m.freed, m.live, m.peak};
}

std::uint64_t thread_alloc_calls() { return tl_mem.calls; }

PauseScope::PauseScope() { ++tl_mem.pause; }
PauseScope::~PauseScope() { --tl_mem.pause; }

Context detach_context() {
  TlsMem& m = tl_mem;
  const Context saved{m.alloc, m.freed, m.live, m.peak, m.pause};
  const std::uint64_t calls = m.calls;  // the probe is not attribution state
  m = TlsMem{};
  m.calls = calls;
  return saved;
}

void restore_context(const Context& saved) {
  TlsMem& m = tl_mem;
  m.alloc = saved.alloc_bytes;
  m.freed = saved.freed_bytes;
  m.live = saved.live_bytes;
  m.peak = saved.peak_live_bytes;
  m.pause = saved.pause_depth;
}

void credit(std::int64_t alloc_bytes, std::int64_t freed_bytes) {
  TlsMem& m = tl_mem;
  m.alloc += alloc_bytes;
  m.freed += freed_bytes;
  m.live += alloc_bytes - freed_bytes;
  if (m.live > m.peak) m.peak = m.live;
}

SpanMark begin_span() {
  TlsMem& m = tl_mem;
  const SpanMark mark{m.alloc, m.freed, m.live, m.peak};
  m.peak = m.live;
  return mark;
}

SpanDelta end_span(const SpanMark& mark) {
  TlsMem& m = tl_mem;
  SpanDelta d;
  d.alloc_bytes = m.alloc - mark.alloc0;
  d.freed_bytes = m.freed - mark.freed0;
  d.peak_live_bytes = m.peak > mark.live0 ? m.peak - mark.live0 : 0;
  if (mark.peak_saved > m.peak) m.peak = mark.peak_saved;
  return d;
}

namespace {

// Reads one "<key>:   <n> kB" line from /proc/self/status; 0 elsewhere.
std::int64_t proc_status_kb(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::int64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':')
      continue;
    kb = std::strtoll(line + key_len + 1, nullptr, 10);
    break;
  }
  std::fclose(f);
  return kb;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

std::int64_t peak_rss_bytes() { return proc_status_kb("VmHWM") * 1024; }

std::int64_t current_rss_bytes() { return proc_status_kb("VmRSS") * 1024; }

}  // namespace lac::obs::memory

#if LAC_OBS_MEMORY_HOOKS

// Global operator new/delete replacement.  All variants funnel through the
// counting helpers above; delete works for both malloc and posix_memalign
// storage, so one deallocation path serves every overload.

namespace lacmem = lac::obs::memory;

void* operator new(std::size_t size) {
  void* p = lacmem::alloc_retry(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return lacmem::alloc_retry(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return lacmem::alloc_retry(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = lacmem::aligned_alloc_retry(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return lacmem::aligned_alloc_retry(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return lacmem::aligned_alloc_retry(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { lacmem::dealloc(p); }
void operator delete[](void* p) noexcept { lacmem::dealloc(p); }
void operator delete(void* p, std::size_t size) noexcept {
  lacmem::dealloc_sized(p, size);
}
void operator delete[](void* p, std::size_t size) noexcept {
  lacmem::dealloc_sized(p, size);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  lacmem::dealloc(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  lacmem::dealloc(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  lacmem::dealloc(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  lacmem::dealloc(p);
}
void operator delete(void* p, std::size_t size, std::align_val_t) noexcept {
  lacmem::dealloc_sized(p, size);
}
void operator delete[](void* p, std::size_t size, std::align_val_t) noexcept {
  lacmem::dealloc_sized(p, size);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  lacmem::dealloc(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  lacmem::dealloc(p);
}

#endif  // LAC_OBS_MEMORY_HOOKS
