// Technology parameters and Elmore delay models.
//
// The paper's experiments predate published technology numbers, so we use a
// self-consistent deep-submicron-flavoured parameter set (see
// `Technology::paper_default()`), chosen so that — as the paper's premise
// requires — a cross-chip global wire costs several clock cycles while a
// gate costs a small fraction of one.  All delays are in picoseconds,
// lengths in database units (1 unit = 1 µm), capacitance in fF, resistance
// in Ω (R·C with these units gives femtoseconds·10³ = picoseconds when we
// scale by 1e-3; the helpers below fold the scaling in).
#pragma once

namespace lac::timing {

struct Technology {
  // Wire parasitics per µm.
  double wire_res_per_um = 0.08;   // Ω/µm
  double wire_cap_per_um = 0.20;   // fF/µm

  // Repeater (buffer) characteristics.
  double repeater_out_res = 180.0;       // Ω
  double repeater_in_cap = 10.0;         // fF
  double repeater_intrinsic_delay = 15.0;  // ps

  // Functional units.  The paper treats every ISCAS89 gate as an RT-level
  // functional unit with a large fixed delay and area.
  double gate_delay = 60.0;    // ps
  double gate_in_cap = 8.0;    // fF, load seen by an interconnect's last stage
  double gate_out_res = 250.0; // Ω, drive of the first wire segment
  double dff_delay = 25.0;     // ps, clk->q (+ setup folded in)

  // Area model (µm²).
  double gate_area = 10000.0;
  double dff_area = 2500.0;
  double repeater_area = 800.0;

  // Maximum interval between consecutive repeaters (signal-integrity bound
  // L_max in the paper), in µm.
  double max_repeater_interval = 2000.0;

  [[nodiscard]] static Technology paper_default() { return {}; }
};

// Elmore delay (ps) of a uniform wire of length `len` µm driven by a source
// with output resistance `rd` Ω into a lumped far-end load `cl` fF:
//   d = rd (c·len + cl) + r·len (c·len/2 + cl)        [Ω·fF = 1e-3 ps]
[[nodiscard]] double wire_elmore_delay(const Technology& t, double rd,
                                       double len, double cl);

// Delay (ps) of one repeater stage: intrinsic delay plus Elmore delay of a
// `len` µm segment into `load_cap` fF.
[[nodiscard]] double repeater_stage_delay(const Technology& t, double len,
                                          double load_cap);

// Convenience: total delay of an optimally *unbuffered* wire (for
// comparisons in examples/benches).
[[nodiscard]] double unbuffered_wire_delay(const Technology& t, double rd,
                                           double len, double cl);

}  // namespace lac::timing
