#include "timing/technology.h"

#include "base/check.h"

namespace lac::timing {

namespace {
// Ω · fF = 1e-15 s · 1e+3 = 1e-3 ps.
constexpr double kOhmFemtofaradToPs = 1e-3;
}  // namespace

double wire_elmore_delay(const Technology& t, double rd, double len,
                         double cl) {
  LAC_CHECK(len >= 0.0);
  const double cwire = t.wire_cap_per_um * len;
  const double rwire = t.wire_res_per_um * len;
  return kOhmFemtofaradToPs * (rd * (cwire + cl) + rwire * (cwire / 2.0 + cl));
}

double repeater_stage_delay(const Technology& t, double len, double load_cap) {
  return t.repeater_intrinsic_delay +
         wire_elmore_delay(t, t.repeater_out_res, len, load_cap);
}

double unbuffered_wire_delay(const Technology& t, double rd, double len,
                             double cl) {
  return wire_elmore_delay(t, rd, len, cl);
}

}  // namespace lac::timing
