// Three-valued (0/1/X) event-free cycle simulator for sequential netlists.
//
// Used to *functionally verify* retiming: a legal retiming preserves
// steady-state behaviour, but the transient after power-up differs because
// relocated registers hold unknown values.  With X-initialised flip-flops,
// both the original and the retimed circuit compute conservative
// approximations of the same input/output function, so on any cycle where
// BOTH outputs are defined (non-X) they must agree.  tests/ and the
// retime_equivalence example rely on exactly that property.
//
// Semantics: combinational evaluation in topological order each cycle with
// standard Kleene logic (e.g. AND(0, X) = 0, AND(1, X) = X), then all DFFs
// update simultaneously with their fanin value.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace lac::netlist {

enum class Logic : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

[[nodiscard]] Logic logic_not(Logic a);
[[nodiscard]] Logic logic_and(Logic a, Logic b);
[[nodiscard]] Logic logic_or(Logic a, Logic b);
[[nodiscard]] Logic logic_xor(Logic a, Logic b);

class Simulator {
 public:
  // Precomputes the combinational evaluation order.  The netlist must be
  // valid (see Netlist::validate) and outlive the simulator.
  explicit Simulator(const Netlist& nl);

  // Resets all flip-flops to X (power-up) or a given constant.
  void reset(Logic ff_state = Logic::kX);

  // Simulates one clock cycle: applies `inputs` (one value per kInput cell
  // in cells_of_type order), evaluates logic, samples outputs, then clocks
  // the flip-flops.  Returns one value per kOutput cell.
  std::vector<Logic> step(const std::vector<Logic>& inputs);

  [[nodiscard]] int num_inputs() const { return static_cast<int>(inputs_.size()); }
  [[nodiscard]] int num_outputs() const { return static_cast<int>(outputs_.size()); }

  // Current value of any cell's output (after the last step()).
  [[nodiscard]] Logic value(CellId c) const { return value_.at(c.index()); }

 private:
  const Netlist& nl_;
  std::vector<CellId> inputs_;
  std::vector<CellId> outputs_;
  std::vector<CellId> eval_order_;  // gates + outputs, topological
  std::vector<Logic> value_;        // per cell
  std::vector<Logic> ff_state_;     // per cell (DFFs only meaningful)
};

}  // namespace lac::netlist
