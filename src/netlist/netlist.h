// Sequential gate-level netlist.
//
// Cells are stored densely and indexed by `CellId`; connectivity is a fanin
// list per cell with derived fanout lists.  Names are unique and preserved
// through .bench round-trips.
//
// Structural legality (`validate()`):
//   * arities respected (INPUT no fanin, OUTPUT/DFF/NOT/BUF exactly one);
//   * all fanin references resolve;
//   * every directed cycle passes through at least one DFF — i.e. the
//     combinational subgraph is acyclic.  This is the precondition for the
//     whole retiming machinery.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/cell.h"

namespace lac::netlist {

class Netlist {
 public:
  explicit Netlist(std::string name = "netlist") : name_(std::move(name)) {}

  // --- construction -------------------------------------------------------
  // Adds a cell with no fanins yet; name must be unique and non-empty.
  CellId add_cell(std::string_view name, CellType type);
  // Appends `driver` to `cell`'s fanin list.
  void connect(CellId cell, CellId driver);

  // --- in-place editing (ECO support) -------------------------------------
  // Replaces the first `old_driver` entry of `cell`'s fanin list with
  // `new_driver`, keeping both fanout lists consistent.  The entry must
  // exist.
  void rewire_fanin(CellId cell, CellId old_driver, CellId new_driver);
  // Removes a cell, keeping every other CellId stable (the slot becomes a
  // tombstone skipped by cells()/count()/validate()).  Legal when the cell
  // has no fanouts, or when it has exactly one fanin — in the latter case
  // its fanouts are rewired to that fanin (buffer bypass).  The name is
  // released for reuse.
  void remove_cell(CellId c);
  [[nodiscard]] bool is_removed(CellId c) const {
    return c.index() < removed_.size() && removed_[c.index()] != 0;
  }

  // --- accessors -----------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] int num_cells() const { return static_cast<int>(type_.size()); }
  [[nodiscard]] CellType type(CellId c) const { return type_.at(c.index()); }
  [[nodiscard]] const std::string& cell_name(CellId c) const {
    return cell_name_.at(c.index());
  }
  [[nodiscard]] std::span<const CellId> fanins(CellId c) const {
    return fanin_.at(c.index());
  }
  [[nodiscard]] std::span<const CellId> fanouts(CellId c) const {
    return fanout_.at(c.index());
  }
  [[nodiscard]] std::optional<CellId> find(std::string_view name) const;

  // All live cell ids in ascending order (removed slots are skipped), for
  // range-for convenience.  Ids index dense per-cell arrays of size
  // num_cells(), which counts tombstones too.
  [[nodiscard]] std::vector<CellId> cells() const;
  [[nodiscard]] std::vector<CellId> cells_of_type(CellType t) const;

  [[nodiscard]] int count(CellType t) const;
  // Number of non-DFF, non-IO cells (the paper's "gates").
  [[nodiscard]] int num_gates() const;

  // --- invariants ----------------------------------------------------------
  // Returns an error description, or nullopt if the netlist is legal.
  [[nodiscard]] std::optional<std::string> validate() const;

 private:
  std::string name_;
  std::vector<CellType> type_;
  std::vector<std::string> cell_name_;
  std::vector<std::vector<CellId>> fanin_;
  std::vector<std::vector<CellId>> fanout_;
  std::vector<char> removed_;  // tombstones; empty until the first removal
  std::unordered_map<std::string, CellId> by_name_;
};

}  // namespace lac::netlist
