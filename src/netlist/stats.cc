#include "netlist/stats.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"
#include "graph/dag.h"

namespace lac::netlist {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.num_cells = nl.num_cells();
  s.num_gates = nl.num_gates();
  s.num_dffs = nl.count(CellType::kDff);
  s.num_inputs = nl.count(CellType::kInput);
  s.num_outputs = nl.count(CellType::kOutput);

  // Depth over the combinational subgraph, counting gate vertices only.
  std::vector<std::pair<int, int>> arcs;
  std::vector<double> unit(static_cast<std::size_t>(nl.num_cells()), 0.0);
  for (const auto c : nl.cells()) {
    if (is_combinational(nl.type(c))) unit[c.index()] = 1.0;
    if (nl.type(c) == CellType::kDff) continue;
    for (const auto f : nl.fanins(c)) {
      if (nl.type(f) == CellType::kDff) continue;
      arcs.emplace_back(f.value(), c.value());
    }
  }
  const auto depths = graph::longest_path_to(nl.num_cells(), arcs, unit);
  double depth = 0.0;
  for (const double d : depths) depth = std::max(depth, d);
  s.logic_depth = static_cast<int>(depth);

  int drivers = 0;
  long long total_fanout = 0;
  for (const auto c : nl.cells()) {
    if (nl.type(c) == CellType::kOutput) continue;
    const int fo = static_cast<int>(nl.fanouts(c).size());
    s.max_fanout = std::max(s.max_fanout, fo);
    total_fanout += fo;
    ++drivers;
    if (static_cast<int>(s.fanout_histogram.size()) <= fo)
      s.fanout_histogram.resize(static_cast<std::size_t>(fo) + 1, 0);
    ++s.fanout_histogram[static_cast<std::size_t>(fo)];
  }
  s.avg_fanout =
      drivers > 0 ? static_cast<double>(total_fanout) / drivers : 0.0;

  for (const auto d : nl.cells_of_type(CellType::kDff)) {
    const auto drv = nl.fanins(d)[0];
    if (nl.type(drv) == CellType::kDff) ++s.dff_chains;
    // Self-loop: the DFF's driver is a gate fed (possibly directly) by the
    // DFF itself — only the direct case is counted here.
    for (const auto f : nl.fanouts(d))
      if (f == drv) ++s.self_loop_dffs;
  }
  return s;
}

std::string format_stats(const NetlistStats& s, const std::string& name) {
  std::ostringstream os;
  os << name << ": " << s.num_gates << " gates, " << s.num_dffs << " DFFs, "
     << s.num_inputs << " PI, " << s.num_outputs << " PO, depth "
     << s.logic_depth << ", fanout avg " << s.avg_fanout << " max "
     << s.max_fanout;
  return os.str();
}

}  // namespace lac::netlist
