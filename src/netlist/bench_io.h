// ISCAS89 .bench reader/writer.
//
// Grammar (as used by the ISCAS89 distribution and its addendum):
//   # comment to end of line
//   INPUT(name)
//   OUTPUT(name)
//   name = TYPE(arg1, arg2, ...)
//
// OUTPUT(x) declares a primary output driven by signal x; we materialise it
// as a kOutput cell named "x__po" so that signal x itself can still be a
// gate.  The writer reverses this, so parse/write round-trips exactly.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace lac::netlist {

struct BenchParseError {
  int line = 0;
  std::string message;
};

// Throws lac::CheckError wrapping line/message on malformed input.
[[nodiscard]] Netlist parse_bench(std::string_view text,
                                  std::string_view netlist_name = "bench");
[[nodiscard]] Netlist parse_bench_file(const std::string& path);

[[nodiscard]] std::string write_bench(const Netlist& nl);
void write_bench_file(const Netlist& nl, const std::string& path);

}  // namespace lac::netlist
