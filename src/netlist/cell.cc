#include "netlist/cell.h"

#include "base/check.h"
#include "base/str_util.h"

namespace lac::netlist {

std::string_view cell_type_name(CellType t) {
  switch (t) {
    case CellType::kInput: return "INPUT";
    case CellType::kOutput: return "OUTPUT";
    case CellType::kDff: return "DFF";
    case CellType::kBuf: return "BUF";
    case CellType::kNot: return "NOT";
    case CellType::kAnd: return "AND";
    case CellType::kNand: return "NAND";
    case CellType::kOr: return "OR";
    case CellType::kNor: return "NOR";
    case CellType::kXor: return "XOR";
    case CellType::kXnor: return "XNOR";
  }
  LAC_CHECK_MSG(false, "unknown cell type");
}

std::optional<CellType> parse_cell_type(std::string_view s) {
  for (const CellType t :
       {CellType::kInput, CellType::kOutput, CellType::kDff, CellType::kBuf,
        CellType::kNot, CellType::kAnd, CellType::kNand, CellType::kOr,
        CellType::kNor, CellType::kXor, CellType::kXnor}) {
    if (iequals(s, cell_type_name(t))) return t;
  }
  // Common .bench aliases.
  if (iequals(s, "BUFF")) return CellType::kBuf;
  if (iequals(s, "INV")) return CellType::kNot;
  return std::nullopt;
}

Arity cell_arity(CellType t) {
  switch (t) {
    case CellType::kInput: return {0, 0};
    case CellType::kOutput: return {1, 1};
    case CellType::kDff: return {1, 1};
    case CellType::kBuf: return {1, 1};
    case CellType::kNot: return {1, 1};
    case CellType::kAnd:
    case CellType::kNand:
    case CellType::kOr:
    case CellType::kNor:
    case CellType::kXor:
    case CellType::kXnor: return {1, -1};
  }
  LAC_CHECK_MSG(false, "unknown cell type");
}

}  // namespace lac::netlist
