#include "netlist/simulate.h"

#include <utility>

#include "base/check.h"
#include "graph/dag.h"

namespace lac::netlist {

Logic logic_not(Logic a) {
  if (a == Logic::kX) return Logic::kX;
  return a == Logic::kZero ? Logic::kOne : Logic::kZero;
}

Logic logic_and(Logic a, Logic b) {
  if (a == Logic::kZero || b == Logic::kZero) return Logic::kZero;
  if (a == Logic::kOne && b == Logic::kOne) return Logic::kOne;
  return Logic::kX;
}

Logic logic_or(Logic a, Logic b) {
  if (a == Logic::kOne || b == Logic::kOne) return Logic::kOne;
  if (a == Logic::kZero && b == Logic::kZero) return Logic::kZero;
  return Logic::kX;
}

Logic logic_xor(Logic a, Logic b) {
  if (a == Logic::kX || b == Logic::kX) return Logic::kX;
  return a == b ? Logic::kZero : Logic::kOne;
}

namespace {

Logic evaluate(const Netlist& nl, CellId c, const std::vector<Logic>& value) {
  const auto fi = nl.fanins(c);
  auto in = [&](std::size_t i) { return value[fi[i].index()]; };
  switch (nl.type(c)) {
    case CellType::kBuf:
    case CellType::kOutput:
      return in(0);
    case CellType::kNot:
      return logic_not(in(0));
    case CellType::kAnd:
    case CellType::kNand: {
      Logic acc = in(0);
      for (std::size_t i = 1; i < fi.size(); ++i) acc = logic_and(acc, in(i));
      return nl.type(c) == CellType::kNand ? logic_not(acc) : acc;
    }
    case CellType::kOr:
    case CellType::kNor: {
      Logic acc = in(0);
      for (std::size_t i = 1; i < fi.size(); ++i) acc = logic_or(acc, in(i));
      return nl.type(c) == CellType::kNor ? logic_not(acc) : acc;
    }
    case CellType::kXor:
    case CellType::kXnor: {
      Logic acc = in(0);
      for (std::size_t i = 1; i < fi.size(); ++i) acc = logic_xor(acc, in(i));
      return nl.type(c) == CellType::kXnor ? logic_not(acc) : acc;
    }
    case CellType::kInput:
    case CellType::kDff:
      break;  // handled by the caller
  }
  LAC_CHECK_MSG(false, "evaluate called on non-combinational cell");
}

}  // namespace

Simulator::Simulator(const Netlist& nl) : nl_(nl) {
  const auto err = nl.validate();
  LAC_CHECK_MSG(!err, "cannot simulate invalid netlist: " << *err);
  inputs_ = nl.cells_of_type(CellType::kInput);
  outputs_ = nl.cells_of_type(CellType::kOutput);

  // Topological order over combinational cells and outputs (DFF outputs and
  // PIs are sources whose values exist before combinational evaluation).
  std::vector<std::pair<int, int>> arcs;
  for (const auto c : nl.cells()) {
    if (nl.type(c) == CellType::kDff || nl.type(c) == CellType::kInput)
      continue;
    for (const auto f : nl.fanins(c)) {
      if (nl.type(f) == CellType::kDff || nl.type(f) == CellType::kInput)
        continue;
      arcs.emplace_back(f.value(), c.value());
    }
  }
  const auto order = graph::topo_order(nl.num_cells(), arcs);
  LAC_CHECK(order.has_value());
  for (const int v : *order) {
    const CellId c{v};
    if (nl.type(c) != CellType::kDff && nl.type(c) != CellType::kInput)
      eval_order_.push_back(c);
  }

  value_.assign(static_cast<std::size_t>(nl.num_cells()), Logic::kX);
  ff_state_.assign(static_cast<std::size_t>(nl.num_cells()), Logic::kX);
}

void Simulator::reset(Logic ff_state) {
  std::fill(value_.begin(), value_.end(), Logic::kX);
  std::fill(ff_state_.begin(), ff_state_.end(), ff_state);
}

std::vector<Logic> Simulator::step(const std::vector<Logic>& inputs) {
  LAC_CHECK_MSG(static_cast<int>(inputs.size()) == num_inputs(),
                "expected " << num_inputs() << " input values");
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    value_[inputs_[i].index()] = inputs[i];
  for (const auto d : nl_.cells_of_type(CellType::kDff))
    value_[d.index()] = ff_state_[d.index()];

  for (const auto c : eval_order_) value_[c.index()] = evaluate(nl_, c, value_);

  std::vector<Logic> out;
  out.reserve(outputs_.size());
  for (const auto o : outputs_) out.push_back(value_[o.index()]);

  // Simultaneous flip-flop update.
  for (const auto d : nl_.cells_of_type(CellType::kDff))
    ff_state_[d.index()] = value_[nl_.fanins(d)[0].index()];
  return out;
}

}  // namespace lac::netlist
