#include "netlist/bench_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "base/check.h"
#include "base/str_util.h"

namespace lac::netlist {

namespace {

struct PendingGate {
  std::string name;
  CellType type = CellType::kBuf;
  std::vector<std::string> args;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  LAC_CHECK_MSG(false, "bench parse error at line " << line << ": " << msg);
}

// Parses "HEAD(a, b, c)" -> {HEAD, {a,b,c}}.  Returns false if no parens.
bool parse_call(std::string_view s, std::string_view& head,
                std::vector<std::string>& args) {
  const auto lp = s.find('(');
  const auto rp = s.rfind(')');
  if (lp == std::string_view::npos || rp == std::string_view::npos || rp < lp)
    return false;
  head = trim(s.substr(0, lp));
  args.clear();
  for (const auto piece : split(s.substr(lp + 1, rp - lp - 1), ","))
    args.emplace_back(trim(piece));
  return true;
}

}  // namespace

Netlist parse_bench(std::string_view text, std::string_view netlist_name) {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<PendingGate> gates;
  std::unordered_set<std::string> defined;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl_pos = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl_pos == std::string_view::npos ? std::string_view::npos
                                                          : nl_pos - pos);
    pos = nl_pos == std::string_view::npos ? text.size() + 1 : nl_pos + 1;
    ++line_no;

    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(...) or OUTPUT(...)
      std::string_view head;
      std::vector<std::string> args;
      if (!parse_call(line, head, args) || args.size() != 1)
        fail(line_no, "expected INPUT(x) or OUTPUT(x), got '" +
                          std::string(line) + "'");
      if (iequals(head, "INPUT")) {
        if (!defined.insert(args[0]).second)
          fail(line_no, "redefinition of signal " + args[0]);
        inputs.push_back(args[0]);
      } else if (iequals(head, "OUTPUT")) {
        outputs.push_back(args[0]);
      } else {
        fail(line_no, "unknown directive '" + std::string(head) + "'");
      }
      continue;
    }

    PendingGate g;
    g.name = std::string(trim(line.substr(0, eq)));
    g.line = line_no;
    std::string_view head;
    if (!parse_call(line.substr(eq + 1), head, g.args))
      fail(line_no, "expected TYPE(args) on right-hand side");
    const auto type = parse_cell_type(head);
    if (!type) fail(line_no, "unknown cell type '" + std::string(head) + "'");
    if (*type == CellType::kInput || *type == CellType::kOutput)
      fail(line_no, "INPUT/OUTPUT cannot appear on a right-hand side");
    g.type = *type;
    if (g.name.empty()) fail(line_no, "empty signal name");
    if (!defined.insert(g.name).second)
      fail(line_no, "redefinition of signal " + g.name);
    gates.push_back(std::move(g));
  }

  Netlist nl{std::string(netlist_name)};
  for (const auto& in : inputs) nl.add_cell(in, CellType::kInput);
  for (const auto& g : gates) nl.add_cell(g.name, g.type);
  // Resolve fanins now that every signal exists.
  for (const auto& g : gates) {
    const CellId cell = *nl.find(g.name);
    const Arity a = cell_arity(g.type);
    if (static_cast<int>(g.args.size()) < a.min ||
        (a.max >= 0 && static_cast<int>(g.args.size()) > a.max))
      fail(g.line, "bad fanin count for " + g.name);
    for (const auto& arg : g.args) {
      const auto drv = nl.find(arg);
      if (!drv) fail(g.line, "undefined signal '" + arg + "' feeding " + g.name);
      nl.connect(cell, *drv);
    }
  }
  // Materialise primary outputs.
  for (const auto& out : outputs) {
    const auto drv = nl.find(out);
    LAC_CHECK_MSG(drv.has_value(), "OUTPUT(" << out << ") of undefined signal");
    const CellId po = nl.add_cell(out + "__po", CellType::kOutput);
    nl.connect(po, *drv);
  }

  const auto err = nl.validate();
  LAC_CHECK_MSG(!err, "parsed netlist invalid: " << *err);
  return nl;
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  LAC_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  // Netlist name = file stem.
  auto stem = path;
  if (const auto slash = stem.rfind('/'); slash != std::string::npos)
    stem = stem.substr(slash + 1);
  if (const auto dot = stem.rfind('.'); dot != std::string::npos)
    stem = stem.substr(0, dot);
  return parse_bench(buf.str(), stem);
}

std::string write_bench(const Netlist& nl) {
  std::ostringstream os;
  os << "# " << nl.name() << " — written by lacretime\n";
  for (const CellId c : nl.cells_of_type(CellType::kInput))
    os << "INPUT(" << nl.cell_name(c) << ")\n";
  for (const CellId c : nl.cells_of_type(CellType::kOutput)) {
    LAC_CHECK(nl.fanins(c).size() == 1);
    os << "OUTPUT(" << nl.cell_name(nl.fanins(c)[0]) << ")\n";
  }
  for (const CellId c : nl.cells()) {
    const CellType t = nl.type(c);
    if (t == CellType::kInput || t == CellType::kOutput) continue;
    os << nl.cell_name(c) << " = " << cell_type_name(t) << '(';
    const auto fi = nl.fanins(c);
    for (std::size_t i = 0; i < fi.size(); ++i) {
      if (i) os << ", ";
      os << nl.cell_name(fi[i]);
    }
    os << ")\n";
  }
  return os.str();
}

void write_bench_file(const Netlist& nl, const std::string& path) {
  std::ofstream out(path);
  LAC_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << write_bench(nl);
}

}  // namespace lac::netlist
