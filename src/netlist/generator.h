// Seeded generator of ISCAS89-shaped sequential netlists.
//
// The paper evaluates on ISCAS89 circuits.  The real .bench files cannot be
// shipped in this offline environment (see DESIGN.md §4), so this generator
// produces structurally equivalent stand-ins: a layered acyclic
// combinational core over primary inputs and flip-flop outputs, flip-flops
// that close sequential cycles (so min-period/min-area retiming has real
// work to do), realistic gate-type and fanin/fanout distributions, and
// every cycle crossing at least one DFF (validated).
//
// Determinism: the output depends only on the spec (including the seed).
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace lac::netlist {

struct GenSpec {
  std::string name = "synth";
  int num_inputs = 8;
  int num_outputs = 8;
  int num_gates = 100;   // combinational cells
  int num_dffs = 10;
  int depth = 8;         // target combinational depth (layers)
  double dff_chain_prob = 0.1;  // probability a DFF feeds from another DFF
  std::uint64_t seed = 1;
};

// Generates a legal netlist (validate() passes).  The gate count is exact;
// the primary-output count may exceed the spec when dangling last-layer
// gates are promoted to outputs (kept rare by construction).
[[nodiscard]] Netlist generate_netlist(const GenSpec& spec);

}  // namespace lac::netlist
