// Structural statistics of sequential netlists.
//
// Used by the generator's calibration tests (the synthetic suite must
// match the published ISCAS89 size points not just in counts but in
// shape), by reports, and by anyone sanity-checking a .bench import.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace lac::netlist {

struct NetlistStats {
  int num_cells = 0;
  int num_gates = 0;
  int num_dffs = 0;
  int num_inputs = 0;
  int num_outputs = 0;

  // Combinational depth: longest gate chain between sequential boundaries
  // (PIs/DFF outputs to POs/DFF inputs), in gate levels.
  int logic_depth = 0;

  // Fanout distribution over driving cells (gates, PIs and DFFs).
  int max_fanout = 0;
  double avg_fanout = 0.0;
  std::vector<int> fanout_histogram;  // index = fanout, value = #cells

  // Register structure.
  int dff_chains = 0;      // DFFs directly fed by another DFF
  int self_loop_dffs = 0;  // DFFs on a length-1 sequential cycle
};

[[nodiscard]] NetlistStats compute_stats(const Netlist& nl);

// Human-readable one-circuit summary.
[[nodiscard]] std::string format_stats(const NetlistStats& s,
                                       const std::string& name);

}  // namespace lac::netlist
