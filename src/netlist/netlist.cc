#include "netlist/netlist.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"
#include "graph/dag.h"

namespace lac::netlist {

CellId Netlist::add_cell(std::string_view name, CellType type) {
  LAC_CHECK_MSG(!name.empty(), "cell name must be non-empty");
  LAC_CHECK_MSG(by_name_.find(std::string(name)) == by_name_.end(),
                "duplicate cell name: " << name);
  const CellId id{static_cast<CellId::value_type>(type_.size())};
  type_.push_back(type);
  cell_name_.emplace_back(name);
  fanin_.emplace_back();
  fanout_.emplace_back();
  by_name_.emplace(std::string(name), id);
  return id;
}

void Netlist::connect(CellId cell, CellId driver) {
  LAC_CHECK(cell.valid() && cell.index() < type_.size());
  LAC_CHECK(driver.valid() && driver.index() < type_.size());
  LAC_CHECK_MSG(!is_removed(cell) && !is_removed(driver),
                "connect() on a removed cell");
  fanin_[cell.index()].push_back(driver);
  fanout_[driver.index()].push_back(cell);
}

void Netlist::rewire_fanin(CellId cell, CellId old_driver, CellId new_driver) {
  LAC_CHECK(cell.valid() && cell.index() < type_.size());
  LAC_CHECK(new_driver.valid() && new_driver.index() < type_.size());
  LAC_CHECK_MSG(!is_removed(cell) && !is_removed(new_driver),
                "rewire_fanin() on a removed cell");
  auto& fi = fanin_[cell.index()];
  const auto it = std::find(fi.begin(), fi.end(), old_driver);
  LAC_CHECK_MSG(it != fi.end(), "rewire_fanin: " << cell_name(cell)
                                                 << " is not driven by "
                                                 << cell_name(old_driver));
  *it = new_driver;
  auto& fo = fanout_[old_driver.index()];
  const auto ot = std::find(fo.begin(), fo.end(), cell);
  LAC_CHECK(ot != fo.end());
  fo.erase(ot);
  fanout_[new_driver.index()].push_back(cell);
}

void Netlist::remove_cell(CellId c) {
  LAC_CHECK(c.valid() && c.index() < type_.size());
  LAC_CHECK_MSG(!is_removed(c), "remove_cell() called twice");
  auto& fo = fanout_[c.index()];
  if (!fo.empty()) {
    // Bypass: every fanout is rewired to the single fanin (in fanout-list
    // order, so the edit is deterministic).
    LAC_CHECK_MSG(fanin_[c.index()].size() == 1,
                  "remove_cell: " << cell_name(c)
                                  << " has fanouts but not exactly one fanin");
    const CellId driver = fanin_[c.index()].front();
    for (const CellId f : std::vector<CellId>(fo))
      rewire_fanin(f, c, driver);
  }
  // Detach remaining fanin references (one fanout entry per connection).
  for (const CellId d : fanin_[c.index()]) {
    auto& dfo = fanout_[d.index()];
    const auto it = std::find(dfo.begin(), dfo.end(), c);
    LAC_CHECK(it != dfo.end());
    dfo.erase(it);
  }
  fanin_[c.index()].clear();
  fanout_[c.index()].clear();
  by_name_.erase(cell_name_[c.index()]);
  if (removed_.size() < type_.size()) removed_.resize(type_.size(), 0);
  removed_[c.index()] = 1;
}

std::optional<CellId> Netlist::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<CellId> Netlist::cells() const {
  std::vector<CellId> out;
  out.reserve(type_.size());
  for (int i = 0; i < num_cells(); ++i)
    if (!is_removed(CellId{i})) out.emplace_back(i);
  return out;
}

std::vector<CellId> Netlist::cells_of_type(CellType t) const {
  std::vector<CellId> out;
  for (int i = 0; i < num_cells(); ++i)
    if (type_[static_cast<std::size_t>(i)] == t && !is_removed(CellId{i}))
      out.emplace_back(i);
  return out;
}

int Netlist::count(CellType t) const {
  int n = 0;
  for (int i = 0; i < num_cells(); ++i)
    n += (type_[static_cast<std::size_t>(i)] == t && !is_removed(CellId{i}));
  return n;
}

int Netlist::num_gates() const {
  int n = 0;
  for (int i = 0; i < num_cells(); ++i)
    n += (is_combinational(type_[static_cast<std::size_t>(i)]) &&
          !is_removed(CellId{i}));
  return n;
}

std::optional<std::string> Netlist::validate() const {
  for (int i = 0; i < num_cells(); ++i) {
    const CellId c{i};
    if (is_removed(c)) continue;
    const Arity a = cell_arity(type(c));
    const int nf = static_cast<int>(fanins(c).size());
    if (nf < a.min || (a.max >= 0 && nf > a.max)) {
      std::ostringstream os;
      os << "cell " << cell_name(c) << " (" << cell_type_name(type(c))
         << ") has " << nf << " fanins, allowed [" << a.min << ","
         << (a.max < 0 ? std::string("inf") : std::to_string(a.max)) << "]";
      return os.str();
    }
  }
  // Combinational subgraph (arcs that do not leave a DFF and do not enter a
  // DFF's output — i.e. arcs driver->sink where the driver is not a DFF)
  // must be acyclic: a cycle of such arcs is a flip-flop-free loop.
  std::vector<std::pair<int, int>> comb_arcs;
  for (int i = 0; i < num_cells(); ++i) {
    const CellId c{i};
    if (is_removed(c)) continue;
    if (type(c) == CellType::kDff) continue;  // DFF output breaks the path
    for (const CellId f : fanins(c)) {
      if (type(f) == CellType::kDff) continue;
      comb_arcs.emplace_back(f.value(), i);
    }
  }
  if (!graph::topo_order(num_cells(), comb_arcs))
    return "combinational cycle (a directed cycle with no DFF)";
  return std::nullopt;
}

}  // namespace lac::netlist
