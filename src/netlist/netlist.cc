#include "netlist/netlist.h"

#include <sstream>

#include "base/check.h"
#include "graph/dag.h"

namespace lac::netlist {

CellId Netlist::add_cell(std::string_view name, CellType type) {
  LAC_CHECK_MSG(!name.empty(), "cell name must be non-empty");
  LAC_CHECK_MSG(by_name_.find(std::string(name)) == by_name_.end(),
                "duplicate cell name: " << name);
  const CellId id{static_cast<CellId::value_type>(type_.size())};
  type_.push_back(type);
  cell_name_.emplace_back(name);
  fanin_.emplace_back();
  fanout_.emplace_back();
  by_name_.emplace(std::string(name), id);
  return id;
}

void Netlist::connect(CellId cell, CellId driver) {
  LAC_CHECK(cell.valid() && cell.index() < type_.size());
  LAC_CHECK(driver.valid() && driver.index() < type_.size());
  fanin_[cell.index()].push_back(driver);
  fanout_[driver.index()].push_back(cell);
}

std::optional<CellId> Netlist::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<CellId> Netlist::cells() const {
  std::vector<CellId> out;
  out.reserve(type_.size());
  for (int i = 0; i < num_cells(); ++i) out.emplace_back(i);
  return out;
}

std::vector<CellId> Netlist::cells_of_type(CellType t) const {
  std::vector<CellId> out;
  for (int i = 0; i < num_cells(); ++i)
    if (type_[static_cast<std::size_t>(i)] == t) out.emplace_back(i);
  return out;
}

int Netlist::count(CellType t) const {
  int n = 0;
  for (const CellType ct : type_) n += (ct == t);
  return n;
}

int Netlist::num_gates() const {
  int n = 0;
  for (const CellType ct : type_) n += is_combinational(ct);
  return n;
}

std::optional<std::string> Netlist::validate() const {
  for (int i = 0; i < num_cells(); ++i) {
    const CellId c{i};
    const Arity a = cell_arity(type(c));
    const int nf = static_cast<int>(fanins(c).size());
    if (nf < a.min || (a.max >= 0 && nf > a.max)) {
      std::ostringstream os;
      os << "cell " << cell_name(c) << " (" << cell_type_name(type(c))
         << ") has " << nf << " fanins, allowed [" << a.min << ","
         << (a.max < 0 ? std::string("inf") : std::to_string(a.max)) << "]";
      return os.str();
    }
  }
  // Combinational subgraph (arcs that do not leave a DFF and do not enter a
  // DFF's output — i.e. arcs driver->sink where the driver is not a DFF)
  // must be acyclic: a cycle of such arcs is a flip-flop-free loop.
  std::vector<std::pair<int, int>> comb_arcs;
  for (int i = 0; i < num_cells(); ++i) {
    const CellId c{i};
    if (type(c) == CellType::kDff) continue;  // DFF output breaks the path
    for (const CellId f : fanins(c)) {
      if (type(f) == CellType::kDff) continue;
      comb_arcs.emplace_back(f.value(), i);
    }
  }
  if (!graph::topo_order(num_cells(), comb_arcs))
    return "combinational cycle (a directed cycle with no DFF)";
  return std::nullopt;
}

}  // namespace lac::netlist
