#include "netlist/generator.h"

#include <algorithm>
#include <vector>

#include "base/check.h"
#include "base/rng.h"

namespace lac::netlist {

namespace {

CellType random_gate_type(Rng& rng, int fanin_hint) {
  if (fanin_hint == 1) {
    return rng.bernoulli(0.7) ? CellType::kNot : CellType::kBuf;
  }
  // Rough ISCAS89 mix: NAND/NOR-heavy with some AND/OR/XOR.
  const double x = rng.uniform_real();
  if (x < 0.35) return CellType::kNand;
  if (x < 0.60) return CellType::kNor;
  if (x < 0.75) return CellType::kAnd;
  if (x < 0.90) return CellType::kOr;
  if (x < 0.96) return CellType::kXor;
  return CellType::kXnor;
}

}  // namespace

Netlist generate_netlist(const GenSpec& spec) {
  LAC_CHECK(spec.num_inputs >= 1);
  LAC_CHECK(spec.num_outputs >= 1);
  LAC_CHECK(spec.num_gates >= 1);
  LAC_CHECK(spec.num_dffs >= 0);
  LAC_CHECK(spec.depth >= 1);

  Rng rng(spec.seed ^ 0xA5A5A5A5ULL);
  Netlist nl(spec.name);

  std::vector<CellId> pis;
  pis.reserve(static_cast<std::size_t>(spec.num_inputs));
  for (int i = 0; i < spec.num_inputs; ++i)
    pis.push_back(nl.add_cell("pi" + std::to_string(i), CellType::kInput));

  // DFF cells exist up front so their outputs can drive layer-0 logic; their
  // single fanin is connected after the combinational core is built.
  std::vector<CellId> dffs;
  dffs.reserve(static_cast<std::size_t>(spec.num_dffs));
  for (int i = 0; i < spec.num_dffs; ++i)
    dffs.push_back(nl.add_cell("ff" + std::to_string(i), CellType::kDff));

  // Layered combinational core.  layer_of[g] in [0, depth); fanins come from
  // strictly earlier layers, PIs, or DFF outputs, so the core is acyclic.
  const int depth = std::min(spec.depth, spec.num_gates);
  std::vector<std::vector<CellId>> layers(static_cast<std::size_t>(depth));
  std::vector<CellId> gates;
  gates.reserve(static_cast<std::size_t>(spec.num_gates));
  for (int i = 0; i < spec.num_gates; ++i) {
    // Spread gates over layers, guaranteeing each layer is non-empty.
    const int layer =
        i < depth ? i : static_cast<int>(rng.uniform(static_cast<std::uint64_t>(depth)));
    // Fanin count: unate buffers ~15%, else 2 + geometric tail capped at 4.
    int nf;
    if (rng.bernoulli(0.15)) {
      nf = 1;
    } else {
      nf = 2;
      while (nf < 4 && rng.bernoulli(0.25)) ++nf;
    }
    const CellType t = random_gate_type(rng, nf);
    const CellId g =
        nl.add_cell("g" + std::to_string(i), t);
    // Candidate drivers: earlier-layer gates with locality bias, else
    // sequential sources (PIs / DFF outputs).
    std::vector<CellId> chosen;
    int dedupe_retries = 0;
    for (int k = 0; k < nf; ++k) {
      CellId drv = CellId::invalid();
      if (layer > 0 && rng.bernoulli(0.75)) {
        int src_layer = layer - 1;
        while (src_layer > 0 && rng.bernoulli(0.3)) --src_layer;
        const auto& pool = layers[static_cast<std::size_t>(src_layer)];
        if (!pool.empty()) {
          // Prefer gates that do not drive anything yet: keeps the fanout
          // distribution realistic and avoids a tail of dangling gates that
          // would have to be promoted to primary outputs.
          drv = pool[rng.uniform(pool.size())];
          for (int attempt = 0; attempt < 3 && !nl.fanouts(drv).empty();
               ++attempt)
            drv = pool[rng.uniform(pool.size())];
        }
      }
      if (!drv.valid()) {
        // Sequential source.
        const std::uint64_t total = pis.size() + dffs.size();
        const std::uint64_t pick = rng.uniform(total);
        drv = pick < pis.size() ? pis[pick]
                                : dffs[pick - pis.size()];
      }
      // Avoid duplicate fanins on the same gate (legal but pointless);
      // give up after a few retries when the candidate pool is tiny.
      if (std::find(chosen.begin(), chosen.end(), drv) != chosen.end()) {
        if (++dedupe_retries < 8) {
          --k;
          continue;
        }
      }
      dedupe_retries = 0;
      chosen.push_back(drv);
    }
    for (const CellId d : chosen) nl.connect(g, d);
    layers[static_cast<std::size_t>(layer)].push_back(g);
    gates.push_back(g);
  }

  // Connect each DFF's data input: usually a late-layer gate, occasionally
  // another DFF (shift-register chains), occasionally a PI.
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    CellId drv = CellId::invalid();
    if (!dffs.empty() && rng.bernoulli(spec.dff_chain_prob) && dffs.size() > 1) {
      // Chain from a *different* DFF.
      std::uint64_t j = rng.uniform(dffs.size() - 1);
      if (j >= i) ++j;
      drv = dffs[j];
    } else if (!gates.empty()) {
      // Bias toward deeper layers so retiming has room to move registers.
      int layer = depth - 1;
      while (layer > 0 && rng.bernoulli(0.35)) --layer;
      const auto& pool = layers[static_cast<std::size_t>(layer)];
      drv = pool.empty() ? gates[rng.uniform(gates.size())]
                         : pool[rng.uniform(pool.size())];
    } else {
      drv = pis[rng.uniform(pis.size())];
    }
    nl.connect(dffs[i], drv);
  }

  // Primary outputs: distinct drivers chosen from late layers / DFFs.
  std::vector<CellId> po_drivers;
  {
    std::vector<CellId> pool;
    for (int l = depth - 1; l >= 0 && pool.size() < 4 * static_cast<std::size_t>(spec.num_outputs); --l)
      pool.insert(pool.end(), layers[static_cast<std::size_t>(l)].begin(),
                  layers[static_cast<std::size_t>(l)].end());
    pool.insert(pool.end(), dffs.begin(), dffs.end());
    for (int i = 0; i < spec.num_outputs && !pool.empty(); ++i) {
      const std::uint64_t j = rng.uniform(pool.size());
      po_drivers.push_back(pool[j]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(j));
    }
  }
  // Absorb dangling gates (no fanout) so the netlist has no dead logic:
  // feed them into a variadic gate of a later layer where possible, and
  // only promote last-layer leftovers to extra primary outputs.
  std::vector<int> gate_layer(static_cast<std::size_t>(nl.num_cells()), -1);
  for (int l = 0; l < depth; ++l)
    for (const CellId g : layers[static_cast<std::size_t>(l)])
      gate_layer[g.index()] = l;
  for (const CellId g : gates) {
    if (!nl.fanouts(g).empty() ||
        std::find(po_drivers.begin(), po_drivers.end(), g) != po_drivers.end())
      continue;
    const int l = gate_layer[g.index()];
    CellId host = CellId::invalid();
    for (int attempt = 0; attempt < 12 && !host.valid(); ++attempt) {
      const CellId cand = gates[rng.uniform(gates.size())];
      if (gate_layer[cand.index()] > l &&
          cell_arity(nl.type(cand)).max < 0 && nl.fanins(cand).size() < 5)
        host = cand;
    }
    if (host.valid())
      nl.connect(host, g);
    else
      po_drivers.push_back(g);
  }
  for (std::size_t i = 0; i < po_drivers.size(); ++i) {
    const CellId po = nl.add_cell("po" + std::to_string(i), CellType::kOutput);
    nl.connect(po, po_drivers[i]);
  }

  const auto err = nl.validate();
  LAC_CHECK_MSG(!err, "generator produced invalid netlist: " << *err);
  return nl;
}

}  // namespace lac::netlist
