// Cell model for gate-level / RT-level sequential netlists.
//
// The paper treats ISCAS89 gate-level netlists as RT-level netlists: every
// gate is a functional unit with (inflated) area and delay.  We therefore
// keep the cell vocabulary small — the ISCAS89 .bench primitive set plus
// primary inputs/outputs and the edge-triggered DFF.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "base/ids.h"

namespace lac::netlist {

struct CellTag {};
using CellId = Id<CellTag>;

enum class CellType : std::uint8_t {
  kInput,   // primary input (no fanin)
  kOutput,  // primary output (exactly one fanin)
  kDff,     // edge-triggered flip-flop (exactly one fanin)
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
};

// .bench keyword for a type (upper case), e.g. kNand -> "NAND".
[[nodiscard]] std::string_view cell_type_name(CellType t);

// Parse a .bench keyword (case-insensitive); nullopt for unknown names.
[[nodiscard]] std::optional<CellType> parse_cell_type(std::string_view s);

// Allowed fanin counts.  min==max for fixed-arity cells; variadic gates
// (AND/NAND/OR/NOR/XOR/XNOR) accept [1, unlimited) in .bench practice.
struct Arity {
  int min = 0;
  int max = 0;  // max < 0 means unbounded
};
[[nodiscard]] Arity cell_arity(CellType t);

[[nodiscard]] constexpr bool is_combinational(CellType t) {
  return t != CellType::kInput && t != CellType::kOutput &&
         t != CellType::kDff;
}

}  // namespace lac::netlist
