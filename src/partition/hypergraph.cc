#include "partition/hypergraph.h"

#include <algorithm>

#include "base/check.h"

namespace lac::partition {

Hypergraph build_hypergraph(const netlist::Netlist& nl) {
  Hypergraph hg;
  hg.num_vertices = nl.num_cells();
  hg.pins_of.resize(static_cast<std::size_t>(hg.num_vertices));
  for (const auto c : nl.cells()) {
    const auto fo = nl.fanouts(c);
    if (fo.empty()) continue;
    std::vector<int> pins;
    pins.reserve(fo.size() + 1);
    pins.push_back(c.value());
    for (const auto s : fo) pins.push_back(s.value());
    std::sort(pins.begin() + 1, pins.end());
    pins.erase(std::unique(pins.begin() + 1, pins.end()), pins.end());
    // A driver can appear again as its own (self-loop) sink only through a
    // DFF, which validate() guarantees; drop such self pins.
    pins.erase(std::remove(pins.begin() + 1, pins.end(), pins.front()),
               pins.end());
    if (pins.size() < 2) continue;
    const int net_idx = hg.num_nets();
    for (const int p : pins)
      hg.pins_of[static_cast<std::size_t>(p)].push_back(net_idx);
    hg.nets.push_back(std::move(pins));
  }
  return hg;
}

int cut_size(const Hypergraph& hg, const std::vector<int>& part) {
  LAC_CHECK(static_cast<int>(part.size()) == hg.num_vertices);
  int cut = 0;
  for (const auto& net : hg.nets) {
    const int p0 = part[static_cast<std::size_t>(net.front())];
    for (const int v : net) {
      if (part[static_cast<std::size_t>(v)] != p0) {
        ++cut;
        break;
      }
    }
  }
  return cut;
}

}  // namespace lac::partition
