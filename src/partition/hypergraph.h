// Hypergraph view of a netlist for partitioning.
//
// One hyperedge per driving cell with at least one fanout; its pins are the
// driver and all distinct sinks.  This is the standard netlist-to-hypergraph
// mapping: cutting the hyperedge means the signal crosses blocks and becomes
// a *global interconnect* that the downstream planner must route, buffer and
// possibly pipeline.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace lac::partition {

struct Hypergraph {
  int num_vertices = 0;
  // nets[n] = pin list (vertex indices, first entry is the driver).
  std::vector<std::vector<int>> nets;
  // pins_of[v] = net indices containing v.
  std::vector<std::vector<int>> pins_of;

  [[nodiscard]] int num_nets() const { return static_cast<int>(nets.size()); }
};

// Vertices are cell ids 0..num_cells-1.
[[nodiscard]] Hypergraph build_hypergraph(const netlist::Netlist& nl);

// Number of nets with pins in >= 2 distinct parts.
[[nodiscard]] int cut_size(const Hypergraph& hg, const std::vector<int>& part);

}  // namespace lac::partition
