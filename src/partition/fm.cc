#include "partition/fm.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"
#include "base/rng.h"

namespace lac::partition {

namespace {

// Doubly-linked gain buckets over local vertex indices.
class GainBuckets {
 public:
  GainBuckets(int num_vertices, int max_gain)
      : offset_(max_gain),
        head_(static_cast<std::size_t>(2 * max_gain + 1), -1),
        prev_(static_cast<std::size_t>(num_vertices), -1),
        next_(static_cast<std::size_t>(num_vertices), -1),
        gain_of_(static_cast<std::size_t>(num_vertices), 0),
        in_(static_cast<std::size_t>(num_vertices), false),
        max_idx_(-1) {}

  void insert(int v, int gain) {
    LAC_CHECK(!in_[static_cast<std::size_t>(v)]);
    const int b = gain + offset_;
    LAC_CHECK(b >= 0 && b < static_cast<int>(head_.size()));
    gain_of_[static_cast<std::size_t>(v)] = gain;
    prev_[static_cast<std::size_t>(v)] = -1;
    next_[static_cast<std::size_t>(v)] = head_[static_cast<std::size_t>(b)];
    if (head_[static_cast<std::size_t>(b)] != -1)
      prev_[static_cast<std::size_t>(head_[static_cast<std::size_t>(b)])] = v;
    head_[static_cast<std::size_t>(b)] = v;
    in_[static_cast<std::size_t>(v)] = true;
    max_idx_ = std::max(max_idx_, b);
  }

  void erase(int v) {
    LAC_CHECK(in_[static_cast<std::size_t>(v)]);
    const int b = gain_of_[static_cast<std::size_t>(v)] + offset_;
    const int p = prev_[static_cast<std::size_t>(v)];
    const int n = next_[static_cast<std::size_t>(v)];
    if (p != -1)
      next_[static_cast<std::size_t>(p)] = n;
    else
      head_[static_cast<std::size_t>(b)] = n;
    if (n != -1) prev_[static_cast<std::size_t>(n)] = p;
    in_[static_cast<std::size_t>(v)] = false;
  }

  void adjust(int v, int delta) {
    if (!in_[static_cast<std::size_t>(v)]) return;
    const int g = gain_of_[static_cast<std::size_t>(v)];
    erase(v);
    insert(v, g + delta);
  }

  [[nodiscard]] bool contains(int v) const {
    return in_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int gain(int v) const {
    return gain_of_[static_cast<std::size_t>(v)];
  }

  // Highest-gain vertex satisfying `fits`; -1 if none.
  template <typename Pred>
  [[nodiscard]] int best(Pred fits) {
    for (int b = max_idx_; b >= 0; --b) {
      bool bucket_nonempty = false;
      for (int v = head_[static_cast<std::size_t>(b)]; v != -1;
           v = next_[static_cast<std::size_t>(v)]) {
        bucket_nonempty = true;
        if (fits(v)) return v;
      }
      if (!bucket_nonempty && b == max_idx_) --max_idx_;
    }
    return -1;
  }

 private:
  int offset_;
  std::vector<int> head_;
  std::vector<int> prev_, next_;
  std::vector<int> gain_of_;
  std::vector<bool> in_;
  int max_idx_;
};

}  // namespace

std::vector<int> fm_bipartition(const Hypergraph& hg,
                                const std::vector<int>& active,
                                const std::vector<double>& area,
                                double target0, const FmOptions& opt) {
  const int m = static_cast<int>(active.size());
  LAC_CHECK(m >= 1);
  LAC_CHECK(target0 > 0.0 && target0 < 1.0);

  // Local index mapping.
  std::vector<int> local(static_cast<std::size_t>(hg.num_vertices), -1);
  for (int i = 0; i < m; ++i)
    local[static_cast<std::size_t>(active[static_cast<std::size_t>(i)])] = i;

  // Induced nets: local pin lists with >= 2 pins.
  std::vector<std::vector<int>> nets;
  std::vector<std::vector<int>> nets_of(static_cast<std::size_t>(m));
  for (const auto& net : hg.nets) {
    std::vector<int> pins;
    for (const int v : net)
      if (local[static_cast<std::size_t>(v)] != -1)
        pins.push_back(local[static_cast<std::size_t>(v)]);
    if (pins.size() < 2) continue;
    const int idx = static_cast<int>(nets.size());
    for (const int p : pins) nets_of[static_cast<std::size_t>(p)].push_back(idx);
    nets.push_back(std::move(pins));
  }

  double total_area = 0.0;
  for (int i = 0; i < m; ++i) {
    LAC_CHECK(area[static_cast<std::size_t>(active[static_cast<std::size_t>(i)])] > 0.0);
    total_area += area[static_cast<std::size_t>(active[static_cast<std::size_t>(i)])];
  }
  const double target_area0 = target0 * total_area;
  const double max_area[2] = {
      target_area0 * (1.0 + opt.balance_tolerance),
      (total_area - target_area0) * (1.0 + opt.balance_tolerance)};
  auto a_of = [&](int i) {
    return area[static_cast<std::size_t>(active[static_cast<std::size_t>(i)])];
  };

  // Initial greedy assignment: big vertices first, fill the side with the
  // larger remaining target.  Shuffled tie-breaks come from the seed.
  Rng rng(opt.seed);
  std::vector<int> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  for (int i = m - 1; i > 0; --i)
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng.uniform(static_cast<std::uint64_t>(i + 1))]);
  std::stable_sort(order.begin(), order.end(),
                   [&](int x, int y) { return a_of(x) > a_of(y); });
  std::vector<int> side(static_cast<std::size_t>(m), 0);
  double side_area[2] = {0.0, 0.0};
  for (const int v : order) {
    const double want0 = target_area0 - side_area[0];
    const double want1 = (total_area - target_area0) - side_area[1];
    const int s = want0 >= want1 ? 0 : 1;
    side[static_cast<std::size_t>(v)] = s;
    side_area[s] += a_of(v);
  }

  // Per-net side pin counts.
  std::vector<int> cnt[2];
  cnt[0].assign(nets.size(), 0);
  cnt[1].assign(nets.size(), 0);
  auto recount = [&] {
    std::fill(cnt[0].begin(), cnt[0].end(), 0);
    std::fill(cnt[1].begin(), cnt[1].end(), 0);
    for (std::size_t n = 0; n < nets.size(); ++n)
      for (const int p : nets[n])
        ++cnt[side[static_cast<std::size_t>(p)]][n];
  };
  recount();

  int max_deg = 1;
  for (int i = 0; i < m; ++i)
    max_deg = std::max(max_deg,
                       static_cast<int>(nets_of[static_cast<std::size_t>(i)].size()));

  for (int pass = 0; pass < opt.max_passes; ++pass) {
    GainBuckets buckets(m, max_deg);
    for (int v = 0; v < m; ++v) {
      int g = 0;
      const int f = side[static_cast<std::size_t>(v)];
      for (const int n : nets_of[static_cast<std::size_t>(v)]) {
        if (cnt[f][static_cast<std::size_t>(n)] == 1) ++g;
        if (cnt[1 - f][static_cast<std::size_t>(n)] == 0) --g;
      }
      buckets.insert(v, g);
    }

    std::vector<int> moved;
    moved.reserve(static_cast<std::size_t>(m));
    int cum_gain = 0, best_gain = 0;
    int best_prefix = 0;

    while (true) {
      const int v = buckets.best([&](int u) {
        const int t = 1 - side[static_cast<std::size_t>(u)];
        return side_area[t] + a_of(u) <= max_area[t];
      });
      if (v == -1) break;
      const int f = side[static_cast<std::size_t>(v)];
      const int t = 1 - f;
      cum_gain += buckets.gain(v);
      buckets.erase(v);

      // FM incremental gain update around v's nets.
      for (const int n : nets_of[static_cast<std::size_t>(v)]) {
        auto& fc = cnt[f][static_cast<std::size_t>(n)];
        auto& tc = cnt[t][static_cast<std::size_t>(n)];
        if (tc == 0) {
          for (const int p : nets[static_cast<std::size_t>(n)])
            buckets.adjust(p, +1);
        } else if (tc == 1) {
          for (const int p : nets[static_cast<std::size_t>(n)])
            if (side[static_cast<std::size_t>(p)] == t) buckets.adjust(p, -1);
        }
        --fc;
        ++tc;
        if (fc == 0) {
          for (const int p : nets[static_cast<std::size_t>(n)])
            buckets.adjust(p, -1);
        } else if (fc == 1) {
          for (const int p : nets[static_cast<std::size_t>(n)])
            if (side[static_cast<std::size_t>(p)] == f) buckets.adjust(p, +1);
        }
      }
      side[static_cast<std::size_t>(v)] = t;
      side_area[f] -= a_of(v);
      side_area[t] += a_of(v);
      moved.push_back(v);
      if (cum_gain > best_gain) {
        best_gain = cum_gain;
        best_prefix = static_cast<int>(moved.size());
      }
    }

    // Roll back to the best prefix.
    for (int i = static_cast<int>(moved.size()) - 1; i >= best_prefix; --i) {
      const int v = moved[static_cast<std::size_t>(i)];
      const int f = side[static_cast<std::size_t>(v)];
      side[static_cast<std::size_t>(v)] = 1 - f;
      side_area[f] -= a_of(v);
      side_area[1 - f] += a_of(v);
    }
    recount();
    if (best_gain <= 0) break;
  }
  return side;
}

KWayResult partition_netlist(const netlist::Netlist& nl,
                             const std::vector<double>& cell_area,
                             int num_blocks, const FmOptions& opt) {
  LAC_CHECK(num_blocks >= 1);
  LAC_CHECK(static_cast<int>(cell_area.size()) == nl.num_cells());
  const Hypergraph hg = build_hypergraph(nl);

  KWayResult res;
  res.block_of.assign(static_cast<std::size_t>(nl.num_cells()), 0);

  // Recursive bisection: (active set, number of blocks, first block id).
  struct Job {
    std::vector<int> active;
    int k;
    int first_block;
  };
  std::vector<Job> stack;
  {
    std::vector<int> all(static_cast<std::size_t>(nl.num_cells()));
    std::iota(all.begin(), all.end(), 0);
    stack.push_back({std::move(all), num_blocks, 0});
  }
  std::uint64_t salt = 0;
  while (!stack.empty()) {
    Job job = std::move(stack.back());
    stack.pop_back();
    if (job.k == 1) {
      for (const int v : job.active)
        res.block_of[static_cast<std::size_t>(v)] = job.first_block;
      continue;
    }
    const int k0 = job.k / 2;
    const int k1 = job.k - k0;
    FmOptions local_opt = opt;
    local_opt.seed = opt.seed + 0x9e37 * ++salt;
    const auto side = fm_bipartition(
        hg, job.active, cell_area,
        static_cast<double>(k0) / static_cast<double>(job.k), local_opt);
    Job left{{}, k0, job.first_block};
    Job right{{}, k1, job.first_block + k0};
    for (std::size_t i = 0; i < job.active.size(); ++i)
      (side[i] == 0 ? left.active : right.active).push_back(job.active[i]);
    // A degenerate empty side (tiny inputs) falls back to a size split.
    if (left.active.empty() || right.active.empty()) {
      left.active.clear();
      right.active.clear();
      for (std::size_t i = 0; i < job.active.size(); ++i)
        (i % 2 == 0 ? left.active : right.active).push_back(job.active[i]);
      if (right.active.empty()) right.active.push_back(left.active.back()),
                                left.active.pop_back();
    }
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }
  res.cut = cut_size(hg, res.block_of);
  return res;
}

}  // namespace lac::partition
