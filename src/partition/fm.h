// Fiduccia–Mattheyses min-cut bipartitioning with gain buckets, and a
// recursive driver that produces an area-balanced k-way partition of a
// netlist into circuit blocks (the paper's precondition: "a partition of
// the RT level functional units into circuit blocks").
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "partition/hypergraph.h"

namespace lac::partition {

struct FmOptions {
  // Allowed relative deviation of each side's area from its target.
  double balance_tolerance = 0.10;
  // FM passes per bisection (each pass is a full move sequence + rollback).
  int max_passes = 10;
  std::uint64_t seed = 1;
};

// Bipartition `active` vertices (a subset of hg's vertices) into sides 0/1
// with area ratio target0 : (1-target0).  Returns side per active index.
// `area[v]` must be positive for all active v.
[[nodiscard]] std::vector<int> fm_bipartition(
    const Hypergraph& hg, const std::vector<int>& active,
    const std::vector<double>& area, double target0, const FmOptions& opt);

struct KWayResult {
  std::vector<int> block_of;  // cell index -> block [0, num_blocks)
  int cut = 0;                // hyperedges spanning >= 2 blocks
};

// Recursive bisection into `num_blocks` blocks (any k >= 1).
[[nodiscard]] KWayResult partition_netlist(const netlist::Netlist& nl,
                                           const std::vector<double>& cell_area,
                                           int num_blocks,
                                           const FmOptions& opt = {});

}  // namespace lac::partition
