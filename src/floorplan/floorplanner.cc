#include "floorplan/floorplanner.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "base/check.h"
#include "base/rng.h"
#include "base/str_util.h"
#include "floorplan/sequence_pair.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace lac::floorplan {

namespace {

std::pair<Coord, Coord> dims_for(const BlockSpec& b, double aspect) {
  if (b.hard) {
    LAC_CHECK(b.fixed_w > 0 && b.fixed_h > 0);
    return {b.fixed_w, b.fixed_h};
  }
  LAC_CHECK(b.area > 0.0);
  const double w = std::sqrt(b.area * aspect);
  const Coord wi = std::max<Coord>(1, static_cast<Coord>(std::lround(w)));
  const Coord hi = std::max<Coord>(
      1, static_cast<Coord>(std::ceil(b.area / static_cast<double>(wi))));
  return {wi, hi};
}

double packing_cost(const Packing& pk) {
  const double area = static_cast<double>(pk.width) * static_cast<double>(pk.height);
  const double ar = pk.height == 0
                        ? 1.0
                        : static_cast<double>(pk.width) / static_cast<double>(pk.height);
  const double squareness = std::max(ar, 1.0 / std::max(ar, 1e-9)) - 1.0;
  return area * (1.0 + 0.1 * squareness);
}

}  // namespace

BlockId Floorplan::block_at(const Point& p) const {
  for (int b = 0; b < num_blocks(); ++b)
    if (placement[static_cast<std::size_t>(b)].contains(p))
      return BlockId{b};
  return BlockId::invalid();
}

Floorplan floorplan_blocks(std::vector<BlockSpec> blocks,
                           const FloorplanOptions& opt) {
  const int n = static_cast<int>(blocks.size());
  LAC_CHECK(n >= 1);
  obs::Span span("floorplan.anneal");
  span.annotate("blocks", n);
  Rng rng(opt.seed ^ 0xF10077ULL);

  SequencePair sp = SequencePair::identity(n);
  // Random initial permutations.
  for (int i = n - 1; i > 0; --i) {
    std::swap(sp.p[static_cast<std::size_t>(i)],
              sp.p[rng.uniform(static_cast<std::uint64_t>(i + 1))]);
    std::swap(sp.q[static_cast<std::size_t>(i)],
              sp.q[rng.uniform(static_cast<std::uint64_t>(i + 1))]);
  }
  std::vector<double> aspect(static_cast<std::size_t>(n), 1.0);
  auto all_dims = [&] {
    std::vector<std::pair<Coord, Coord>> dims;
    dims.reserve(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b)
      dims.push_back(dims_for(blocks[static_cast<std::size_t>(b)],
                              aspect[static_cast<std::size_t>(b)]));
    return dims;
  };

  double cost = packing_cost(pack(sp, all_dims()));
  SequencePair best_sp = sp;
  std::vector<double> best_aspect = aspect;
  double best_cost = cost;

  // Calibrate T0 from the average uphill delta of a random-move sample.
  double avg_delta = 0.0;
  {
    int samples = 0;
    for (int s = 0; s < 50; ++s) {
      SequencePair trial = sp;
      const int i = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      const int j = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      std::swap(trial.p[static_cast<std::size_t>(i)],
                trial.p[static_cast<std::size_t>(j)]);
      const double d = packing_cost(pack(trial, all_dims())) - cost;
      if (d > 0) {
        avg_delta += d;
        ++samples;
      }
    }
    if (samples > 0) avg_delta /= samples;
    if (avg_delta <= 0) avg_delta = std::max(1.0, cost * 0.01);
  }
  double temp = -avg_delta / std::log(opt.initial_accept_prob);
  const double temp0 = temp;
  const double initial_cost = cost;

  const int moves_per_temp = std::max(10, 4 * n);
  const int total_moves = std::max(200, opt.sa_moves_per_block * n);
  int accepted_total = 0;
  int accepted_stage = 0;
  std::vector<double> accept_trajectory;  // accept rate per cooling stage
  std::vector<double> temp_trajectory;
  for (int move = 0; move < total_moves; ++move) {
    SequencePair trial = sp;
    std::vector<double> trial_aspect = aspect;
    const double kind = rng.uniform_real();
    const int i = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    const int j = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (kind < 0.35) {
      std::swap(trial.p[static_cast<std::size_t>(i)],
                trial.p[static_cast<std::size_t>(j)]);
    } else if (kind < 0.70) {
      std::swap(trial.q[static_cast<std::size_t>(i)],
                trial.q[static_cast<std::size_t>(j)]);
    } else if (kind < 0.85) {
      std::swap(trial.p[static_cast<std::size_t>(i)],
                trial.p[static_cast<std::size_t>(j)]);
      std::swap(trial.q[static_cast<std::size_t>(i)],
                trial.q[static_cast<std::size_t>(j)]);
    } else {
      // Reshape a random soft block within its aspect range (hard blocks
      // have no shaping freedom; retry cheaply by falling through).
      const auto& b = blocks[static_cast<std::size_t>(i)];
      if (!b.hard) {
        const double lo = b.aspect_min, hi = b.aspect_max;
        trial_aspect[static_cast<std::size_t>(i)] =
            lo + (hi - lo) * rng.uniform_real();
      }
    }
    std::vector<std::pair<Coord, Coord>> dims;
    dims.reserve(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b)
      dims.push_back(dims_for(blocks[static_cast<std::size_t>(b)],
                              trial_aspect[static_cast<std::size_t>(b)]));
    const double trial_cost = packing_cost(pack(trial, dims));
    const double delta = trial_cost - cost;
    if (delta <= 0 || rng.uniform_real() < std::exp(-delta / temp)) {
      sp = std::move(trial);
      aspect = std::move(trial_aspect);
      cost = trial_cost;
      ++accepted_total;
      ++accepted_stage;
      if (cost < best_cost) {
        best_cost = cost;
        best_sp = sp;
        best_aspect = aspect;
      }
    }
    if ((move + 1) % moves_per_temp == 0) {
      const double rate =
          static_cast<double>(accepted_stage) / moves_per_temp;
      accept_trajectory.push_back(rate);
      temp_trajectory.push_back(temp);
      obs::observe("floorplan.stage_accept_rate", rate);
      accepted_stage = 0;
      temp *= opt.cooling;
    }
  }

  // Final packing of the best state, then spread to realise whitespace.
  aspect = best_aspect;
  const auto dims = all_dims();
  const Packing pk = pack(best_sp, dims);

  double block_area = 0.0;
  for (const auto& [w, h] : dims)
    block_area += static_cast<double>(w) * static_cast<double>(h);
  const double packed_area =
      static_cast<double>(pk.width) * static_cast<double>(pk.height);
  const double want_chip_area =
      block_area / std::max(1e-9, 1.0 - opt.whitespace_target);
  const double scale =
      std::max(1.0, std::sqrt(want_chip_area / std::max(packed_area, 1.0)));

  Floorplan fp;
  fp.blocks = std::move(blocks);
  fp.placement.reserve(static_cast<std::size_t>(n));
  Coord chip_w = 0, chip_h = 0;
  for (int b = 0; b < n; ++b) {
    const Point o = pk.origin[static_cast<std::size_t>(b)];
    const Point so{static_cast<Coord>(std::llround(static_cast<double>(o.x) * scale)),
                   static_cast<Coord>(std::llround(static_cast<double>(o.y) * scale))};
    const Rect r{so, {so.x + dims[static_cast<std::size_t>(b)].first,
                      so.y + dims[static_cast<std::size_t>(b)].second}};
    chip_w = std::max(chip_w, r.hi.x);
    chip_h = std::max(chip_h, r.hi.y);
    fp.placement.push_back(r);
  }
  // A thin boundary channel around the core keeps I/O routing resources.
  const Coord margin = std::max<Coord>(1, (chip_w + chip_h) / 100);
  fp.chip = Rect{{0, 0}, {chip_w + margin, chip_h + margin}};
  for (auto& r : fp.placement) {
    r.lo.x += margin / 2;
    r.lo.y += margin / 2;
    r.hi.x += margin / 2;
    r.hi.y += margin / 2;
  }
  fp.whitespace_fraction = 1.0 - block_area / fp.chip.area();

  if (span.recording()) {
    span.annotate("moves", total_moves);
    span.annotate("accepted", accepted_total);
    span.annotate("accept_rate",
                  static_cast<double>(accepted_total) / total_moves);
    span.annotate("temp0", temp0);
    span.annotate("temp_final", temp);
    span.annotate("initial_cost", initial_cost);
    span.annotate("best_cost", best_cost);
    span.annotate("whitespace_fraction", fp.whitespace_fraction);
    span.annotate("chip_w", fp.chip.width());
    span.annotate("chip_h", fp.chip.height());
    // Cooling trajectory, evenly sampled down to at most 64 points so the
    // annotation stays bounded for large designs.
    const std::size_t stages = accept_trajectory.size();
    const std::size_t step = std::max<std::size_t>(1, (stages + 63) / 64);
    std::string accept_str, temp_str;
    for (std::size_t s = 0; s < stages; s += step) {
      if (!accept_str.empty()) {
        accept_str += ',';
        temp_str += ',';
      }
      accept_str += format_double(accept_trajectory[s], 3);
      temp_str += format_double(temp_trajectory[s], 3);
    }
    span.annotate("accept_rate_trajectory", accept_str);
    span.annotate("temp_trajectory", temp_str);
  }
  obs::count("floorplan.anneals");
  obs::count("floorplan.moves", total_moves);

  // Invariant: pairwise disjoint interiors.
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      LAC_CHECK_MSG(!fp.placement[static_cast<std::size_t>(a)].overlaps(
                        fp.placement[static_cast<std::size_t>(b)]),
                    "floorplanner produced overlapping blocks " << a << "," << b);
  return fp;
}

Floorplan refloorplan_expanded(const Floorplan& prev,
                               const std::vector<double>& new_area,
                               double extra_whitespace,
                               const FloorplanOptions& opt) {
  LAC_CHECK(static_cast<int>(new_area.size()) == prev.num_blocks());
  std::vector<BlockSpec> blocks = prev.blocks;
  for (int b = 0; b < prev.num_blocks(); ++b) {
    auto& spec = blocks[static_cast<std::size_t>(b)];
    if (spec.hard) continue;  // hard blocks cannot grow
    LAC_CHECK(new_area[static_cast<std::size_t>(b)] >= spec.area * 0.999);
    spec.area = new_area[static_cast<std::size_t>(b)];
  }
  FloorplanOptions o = opt;
  o.whitespace_target = std::min(0.9, opt.whitespace_target + extra_whitespace);
  return floorplan_blocks(std::move(blocks), o);
}

std::optional<Floorplan> resize_block_in_place(const Floorplan& prev,
                                               int block, double new_area) {
  LAC_CHECK(block >= 0 && block < prev.num_blocks());
  LAC_CHECK(new_area > 0.0);
  if (prev.blocks[static_cast<std::size_t>(block)].hard) return std::nullopt;

  const Rect r = prev.placement[static_cast<std::size_t>(block)];
  auto legal = [&](const Rect& cand) {
    if (cand.width() < 1 || cand.height() < 1) return false;
    if (cand.lo.x < prev.chip.lo.x || cand.lo.y < prev.chip.lo.y ||
        cand.hi.x > prev.chip.hi.x || cand.hi.y > prev.chip.hi.y)
      return false;
    for (int b = 0; b < prev.num_blocks(); ++b)
      if (b != block &&
          cand.overlaps(prev.placement[static_cast<std::size_t>(b)]))
        return false;
    return true;
  };

  // Candidate rects in a fixed order; the first legal one wins, so the
  // edit is deterministic.  Width changes keep the height and vice versa.
  const Coord w_for_h = std::max<Coord>(
      1, static_cast<Coord>(std::ceil(new_area / static_cast<double>(r.height()))));
  const Coord h_for_w = std::max<Coord>(
      1, static_cast<Coord>(std::ceil(new_area / static_cast<double>(r.width()))));
  const Rect candidates[] = {
      {r.lo, {r.lo.x + w_for_h, r.hi.y}},              // right edge moves
      {{r.hi.x - w_for_h, r.lo.y}, r.hi},              // left edge moves
      {r.lo, {r.hi.x, r.lo.y + h_for_w}},              // top edge moves
      {{r.lo.x, r.hi.y - h_for_w}, r.hi},              // bottom edge moves
  };
  for (const Rect& cand : candidates) {
    if (!legal(cand)) continue;
    Floorplan fp = prev;
    fp.placement[static_cast<std::size_t>(block)] = cand;
    fp.blocks[static_cast<std::size_t>(block)].area = new_area;
    double block_area = 0.0;
    for (const BlockSpec& b : fp.blocks) block_area += b.area;
    fp.whitespace_fraction = 1.0 - block_area / fp.chip.area();
    return fp;
  }
  return std::nullopt;
}

}  // namespace lac::floorplan
