// Simulated-annealing sequence-pair floorplanner.
//
// Input: one BlockSpec per circuit block (area; hard blocks have fixed
// dimensions, soft blocks are reshaped within an aspect-ratio range).
// Output: non-overlapping placements inside a chip rectangle with a
// configurable whitespace fraction — the whitespace *is* the channel /
// dead-area resource that the paper's interconnect planner uses for
// repeater and flip-flop insertion, so we spread the packed blocks apart
// rather than abutting them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/geometry.h"
#include "base/ids.h"

namespace lac::floorplan {

struct BlockTag {};
using BlockId = Id<BlockTag>;

struct BlockSpec {
  std::string name;
  double area = 0.0;       // required block area (database units squared)
  bool hard = false;       // hard blocks keep fixed dimensions
  double aspect_min = 0.5; // soft-block shaping range (w/h)
  double aspect_max = 2.0;
  Coord fixed_w = 0;       // used when hard
  Coord fixed_h = 0;
};

struct Floorplan {
  Rect chip;
  std::vector<BlockSpec> blocks;
  std::vector<Rect> placement;  // per block, inside chip, pairwise disjoint
  double whitespace_fraction = 0.0;  // 1 - (block area / chip area)

  [[nodiscard]] int num_blocks() const {
    return static_cast<int>(blocks.size());
  }
  // Block whose rect contains p (boundaries inclusive, first match), or
  // invalid if p is in channel / dead area.
  [[nodiscard]] BlockId block_at(const Point& p) const;

  // Logical heap footprint (element counts × element sizes, plus block
  // name characters; not allocator capacity) — deterministic for any
  // thread count, reported as the mem.floorplan_bytes gauge.
  [[nodiscard]] std::int64_t bytes_used() const {
    std::size_t bytes = blocks.size() * sizeof(BlockSpec) +
                        placement.size() * sizeof(Rect);
    for (const BlockSpec& b : blocks) bytes += b.name.size();
    return static_cast<std::int64_t>(bytes);
  }
};

struct FloorplanOptions {
  double whitespace_target = 0.25;  // fraction of chip left as channels
  int sa_moves_per_block = 600;     // annealing effort
  double initial_accept_prob = 0.9;
  double cooling = 0.95;
  std::uint64_t seed = 1;
};

// Anneals a sequence pair minimising bounding-box area (with a mild squareness
// penalty), then spreads blocks to realise the whitespace target.
[[nodiscard]] Floorplan floorplan_blocks(std::vector<BlockSpec> blocks,
                                         const FloorplanOptions& opt = {});

// Planning-iteration-2 support: re-floorplan after the caller has enlarged
// some block areas (the paper expands congested soft blocks and channels).
// Uses the same seed so the layout changes incrementally, and bumps the
// whitespace target by `extra_whitespace`.
[[nodiscard]] Floorplan refloorplan_expanded(const Floorplan& prev,
                                             const std::vector<double>& new_area,
                                             double extra_whitespace,
                                             const FloorplanOptions& opt = {});

// ECO support: resizes one soft block's placed rectangle in place, leaving
// the chip outline and every other block untouched — the local edit that
// keeps most of an incremental re-plan reusable (a full re-anneal moves
// everything).  A shrink pulls the right edge in; a grow extends the rect
// into adjacent free space, trying right, left, up, then down.  Returns
// nullopt when the block is hard or no single-direction extension fits,
// in which case the caller falls back to refloorplan_expanded.
[[nodiscard]] std::optional<Floorplan> resize_block_in_place(
    const Floorplan& prev, int block, double new_area);

}  // namespace lac::floorplan
