#include "floorplan/sequence_pair.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace lac::floorplan {

SequencePair SequencePair::identity(int n) {
  SequencePair sp;
  sp.p.resize(static_cast<std::size_t>(n));
  sp.q.resize(static_cast<std::size_t>(n));
  std::iota(sp.p.begin(), sp.p.end(), 0);
  std::iota(sp.q.begin(), sp.q.end(), 0);
  return sp;
}

Packing pack(const SequencePair& sp,
             const std::vector<std::pair<Coord, Coord>>& dims) {
  const int n = static_cast<int>(dims.size());
  LAC_CHECK(static_cast<int>(sp.p.size()) == n);
  LAC_CHECK(static_cast<int>(sp.q.size()) == n);

  std::vector<int> pos_p(static_cast<std::size_t>(n));
  std::vector<int> pos_q(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pos_p[static_cast<std::size_t>(sp.p[static_cast<std::size_t>(i)])] = i;
    pos_q[static_cast<std::size_t>(sp.q[static_cast<std::size_t>(i)])] = i;
  }

  Packing out;
  out.origin.assign(static_cast<std::size_t>(n), Point{0, 0});

  // x-coordinates: process blocks in p-order; for each block, x = max over
  // already-processed blocks that are left-of it.  Left-of(b, c) iff b
  // precedes c in both sequences.  Processing in p-order guarantees all
  // left-of predecessors are already placed.
  std::vector<Coord> x(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const int c = sp.p[static_cast<std::size_t>(i)];
    Coord best = 0;
    for (int j = 0; j < i; ++j) {
      const int b = sp.p[static_cast<std::size_t>(j)];
      if (pos_q[static_cast<std::size_t>(b)] < pos_q[static_cast<std::size_t>(c)])
        best = std::max(best, x[static_cast<std::size_t>(b)] +
                                  dims[static_cast<std::size_t>(b)].first);
    }
    x[static_cast<std::size_t>(c)] = best;
    out.width = std::max(out.width, best + dims[static_cast<std::size_t>(c)].first);
  }

  // y-coordinates: below(b, c) iff b is after c in p and before c in q.
  // Process in reverse p-order so below-predecessors are already placed.
  std::vector<Coord> y(static_cast<std::size_t>(n), 0);
  for (int i = n - 1; i >= 0; --i) {
    const int c = sp.p[static_cast<std::size_t>(i)];
    Coord best = 0;
    for (int j = n - 1; j > i; --j) {
      const int b = sp.p[static_cast<std::size_t>(j)];
      if (pos_q[static_cast<std::size_t>(b)] < pos_q[static_cast<std::size_t>(c)])
        best = std::max(best, y[static_cast<std::size_t>(b)] +
                                  dims[static_cast<std::size_t>(b)].second);
    }
    y[static_cast<std::size_t>(c)] = best;
    out.height =
        std::max(out.height, best + dims[static_cast<std::size_t>(c)].second);
  }

  for (int b = 0; b < n; ++b)
    out.origin[static_cast<std::size_t>(b)] =
        Point{x[static_cast<std::size_t>(b)], y[static_cast<std::size_t>(b)]};
  return out;
}

}  // namespace lac::floorplan
