// Sequence-pair floorplan representation and packing.
//
// A sequence pair (Murata et al.) encodes pairwise left-of / below
// relations between blocks with two permutations p, q:
//   * b before c in BOTH p and q  ->  b is left of c;
//   * b before c in p, after in q ->  b is above c (equivalently c below b).
// Packing evaluates the longest paths in the induced horizontal and
// vertical constraint graphs; we use the direct O(n^2) relation scan, which
// is plenty for the paper's block counts (tens of blocks).
#pragma once

#include <cstdint>
#include <vector>

#include "base/geometry.h"

namespace lac::floorplan {

struct SequencePair {
  std::vector<int> p;  // first sequence (block indices)
  std::vector<int> q;  // second sequence

  [[nodiscard]] static SequencePair identity(int n);
};

struct Packing {
  std::vector<Point> origin;  // lower-left corner per block
  Coord width = 0;            // bounding box of the packing
  Coord height = 0;
};

// dims[b] = (w, h) of block b.  Runs the two longest-path evaluations.
[[nodiscard]] Packing pack(const SequencePair& sp,
                           const std::vector<std::pair<Coord, Coord>>& dims);

}  // namespace lac::floorplan
