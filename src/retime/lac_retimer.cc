#include "retime/lac_retimer.h"

#include <algorithm>
#include <optional>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/stream.h"
#include "retime/min_area.h"
#include "retime/weighted_min_area_solver.h"

namespace lac::retime {

namespace {
// Every option is validated before any work happens; a bad option used to
// surface as an unrelated internal check much later (e.g. max_rounds <= 0
// skipped the loop entirely and tripped LAC_CHECK(have_best)).
void validate_options(const LacOptions& opt) {
  LAC_CHECK_MSG(opt.alpha >= 0.0 && opt.alpha <= 1.0,
                "LacOptions::alpha must be in [0, 1], got " << opt.alpha);
  LAC_CHECK_MSG(opt.n_max >= 1,
                "LacOptions::n_max must be >= 1, got " << opt.n_max);
  LAC_CHECK_MSG(opt.max_rounds >= 1,
                "LacOptions::max_rounds must be >= 1, got " << opt.max_rounds);
  LAC_CHECK_MSG(opt.ff_area > 0.0,
                "LacOptions::ff_area must be > 0, got " << opt.ff_area);
  LAC_CHECK_MSG(opt.full_tile_ratio >= 1.0,
                "LacOptions::full_tile_ratio must be >= 1, got "
                    << opt.full_tile_ratio);
  LAC_CHECK_MSG(opt.weight_min > 0.0,
                "LacOptions::weight_min must be > 0, got " << opt.weight_min);
  LAC_CHECK_MSG(opt.weight_min <= opt.weight_max,
                "LacOptions::weight_min (" << opt.weight_min
                    << ") must be <= weight_max (" << opt.weight_max << ")");
}
LacResult lac_retiming_impl(const RetimingGraph& g,
                            const tile::TileGrid& grid,
                            const ConstraintSet& cs, const LacOptions& opt,
                            WeightedMinAreaSolver* external) {
  validate_options(opt);

  obs::Span lac_span("lac.retiming");
  lac_span.annotate("vertices", g.num_vertices());
  lac_span.annotate("tiles", grid.num_tiles());
  lac_span.annotate("alpha", opt.alpha);
  lac_span.annotate("incremental", opt.incremental || external != nullptr);

  // One solver session for the whole call: the flow network is built once
  // and rounds >= 2 warm-start from the previous round's flow.  The cold
  // path (a fresh network + solve per round) is kept for A/B comparison;
  // both produce bit-identical retimings every round.  A caller-owned
  // session (ECO re-plan) takes precedence and may arrive already warm.
  std::optional<WeightedMinAreaSolver> owned;
  WeightedMinAreaSolver* session = external;
  if (session == nullptr && opt.incremental) {
    owned.emplace(g, cs);
    session = &*owned;
  }

  LacResult best;
  bool have_best = false;
  std::vector<LacRoundStats> rounds;

  std::vector<double> tile_weight(static_cast<std::size_t>(grid.num_tiles()),
                                  1.0);
  std::vector<double> area_weight(static_cast<std::size_t>(g.num_vertices()),
                                  1.0);

  int no_improve = 0;
  for (int round = 0; round < opt.max_rounds; ++round) {
    obs::Span round_span("lac.round");
    LacRoundStats rs;
    rs.round = round + 1;
    if (!tile_weight.empty()) {
      const auto [lo, hi] =
          std::minmax_element(tile_weight.begin(), tile_weight.end());
      rs.weight_lo = *lo;
      rs.weight_hi = *hi;
    }

    // Vertex weights follow their tile's adaptive weight, with the same
    // epsilon tie-break as the plain baseline (min_area.cc): cost-equal
    // registers stay with the logic rather than at an arbitrary position
    // along a wire's unit chain.
    for (int v = 0; v < g.num_vertices(); ++v) {
      const tile::TileId t = g.tile(v);
      const double tiebreak =
          g.kind(v) == VertexKind::kInterconnect ? 1.002 : 1.0;
      area_weight[static_cast<std::size_t>(v)] =
          (t.valid() ? tile_weight[t.index()] : 1.0) * tiebreak;
    }

    MinAreaStats solve_stats;
    const auto r =
        session != nullptr
            ? session->solve(area_weight, &solve_stats)
            : weighted_min_area_retiming(g, cs, area_weight, &solve_stats);
    LAC_CHECK_MSG(r.has_value(), "LAC-retiming called with infeasible period");
    AreaReport rep = place_flipflops(g, grid, *r, opt.ff_area);
    const int n_wr_so_far = round + 1;

    const bool improved =
        !have_best || rep.n_foa < best.report.n_foa ||
        (rep.n_foa == best.report.n_foa && rep.n_f < best.report.n_f);
    if (improved) {
      best.r = *r;
      best.report = rep;
      best.tile_weight = tile_weight;
      have_best = true;
      no_improve = 0;
    } else {
      ++no_improve;
    }
    best.n_wr = n_wr_so_far;

    rs.n_foa = rep.n_foa;
    rs.n_f = rep.n_f;
    rs.best_n_foa = best.report.n_foa;
    rs.max_overflow = rep.worst_overflow;
    rs.improved = improved;
    rs.phases = solve_stats.phases;
    rs.augmentations = solve_stats.augmentations;
    rs.warm = solve_stats.warm;
    rs.repaired_arcs = solve_stats.repaired_arcs;
    rs.solve_seconds = round_span.elapsed_seconds();
    round_span.annotate("round", rs.round);
    round_span.annotate("n_foa", rs.n_foa);
    round_span.annotate("n_f", rs.n_f);
    round_span.annotate("best_n_foa", rs.best_n_foa);
    round_span.annotate("max_overflow", rs.max_overflow);
    round_span.annotate("weight_lo", rs.weight_lo);
    round_span.annotate("weight_hi", rs.weight_hi);
    round_span.annotate("improved", rs.improved);
    round_span.annotate("warm", rs.warm);
    obs::count("lac.rounds");
    obs::observe("lac.round_seconds", rs.solve_seconds);
    obs::observe("lac.round_n_foa", static_cast<double>(rs.n_foa));
    {
      // Per-round progress for `lacobs tail`: the long inner loop a live
      // watcher actually wants to see converge.
      obs::stream::Event ev("round");
      ev.field("round", rs.round)
          .field("n_foa", rs.n_foa)
          .field("n_f", rs.n_f)
          .field("best_n_foa", rs.best_n_foa)
          .field("max_overflow", rs.max_overflow)
          .field("improved", rs.improved)
          .field("warm", rs.warm)
          .field("seconds", rs.solve_seconds);
    }
    rounds.push_back(rs);

    if (rep.n_foa == 0) break;                 // all tiles fit — done
    if (no_improve >= opt.n_max) break;        // stagnated

    // Adaptive re-weighting (paper step 6).  Over-utilised tiles get
    // heavier — flip-flops there become expensive — and under-utilised
    // tiles decay back toward attractiveness.
    for (int t = 0; t < grid.num_tiles(); ++t) {
      const double cap = grid.capacity(tile::TileId{t});
      const double ac = rep.ac[static_cast<std::size_t>(t)];
      double ratio;
      if (cap > 1e-9) {
        ratio = ac / cap;
      } else {
        ratio = ac > 0.0 ? opt.full_tile_ratio : 1.0;
      }
      ratio = std::min(ratio, opt.full_tile_ratio);
      double& w = tile_weight[static_cast<std::size_t>(t)];
      w *= (1.0 - opt.alpha) + opt.alpha * ratio;
      w = std::clamp(w, opt.weight_min, opt.weight_max);
    }
  }

  LAC_CHECK(have_best);
  best.met_all_constraints = best.report.fits();
  best.rounds = std::move(rounds);
  lac_span.annotate("n_wr", best.n_wr);
  lac_span.annotate("n_foa", best.report.n_foa);
  lac_span.annotate("n_f", best.report.n_f);
  lac_span.annotate("met_all_constraints", best.met_all_constraints);
  return best;
}

}  // namespace

LacResult lac_retiming(const RetimingGraph& g, const tile::TileGrid& grid,
                       const ConstraintSet& cs, const LacOptions& opt) {
  return lac_retiming_impl(g, grid, cs, opt, nullptr);
}

LacResult lac_retiming(const RetimingGraph& g, const tile::TileGrid& grid,
                       const ConstraintSet& cs,
                       WeightedMinAreaSolver* session, const LacOptions& opt) {
  LAC_CHECK(session != nullptr);
  LAC_CHECK_MSG(session->matches(g, cs),
                "external solver session does not match (g, cs)");
  return lac_retiming_impl(g, grid, cs, opt, session);
}

}  // namespace lac::retime
