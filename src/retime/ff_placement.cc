#include "retime/ff_placement.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace lac::retime {

AreaReport place_flipflops(const RetimingGraph& g, const tile::TileGrid& grid,
                           const std::vector<int>& r, double ff_area) {
  LAC_CHECK(ff_area > 0.0);
  LAC_CHECK(g.is_legal_retiming(r));
  AreaReport rep;
  rep.ac.assign(static_cast<std::size_t>(grid.num_tiles()), 0.0);

  for (int e = 0; e < g.num_edges(); ++e) {
    const std::int64_t w = g.retimed_weight(e, r);
    if (w == 0) continue;
    rep.n_f += w;
    const int tail = g.edge(e).tail;
    if (g.kind(tail) == VertexKind::kInterconnect) rep.n_fn += w;
    const tile::TileId t = g.tile(tail);
    if (t.valid())
      rep.ac[t.index()] += static_cast<double>(w) * ff_area;
  }

  for (int t = 0; t < grid.num_tiles(); ++t) {
    const double over = rep.ac[static_cast<std::size_t>(t)] -
                        grid.capacity(tile::TileId{t});
    if (over > 1e-9) {
      ++rep.tiles_violating;
      rep.worst_overflow = std::max(rep.worst_overflow, over);
      rep.n_foa += static_cast<std::int64_t>(std::ceil(over / ff_area - 1e-9));
    }
  }
  return rep;
}

}  // namespace lac::retime
