// Retiming constraint systems (paper Eqns. (1) and (2)).
//
// All constraints have the difference form  r(u) - r(v) <= c :
//   * edge constraints   — r(tail) - r(head) <= w(e)        (w_r >= 0);
//   * clock constraints  — r(u) - r(v) <= W(u,v) - 1        for D(u,v) > T;
//   * I/O pinning        — r(io) = r(host), as two inequalities, so that
//                          retiming never changes I/O latency.
//
// Clock-constraint pruning (cf. Shenoy–Rudell / Maheshwari–Sapatnekar):
// a constraint is dropped when it is implied by another clock constraint
// plus edge constraints along a tight minimum-weight path:
//   * target side: (u,v) is implied by (u,x) + edge x->v when
//       D(u,x) > T  and  W(u,v) = W(u,x) + w(x->v);
//   * source side: (u,v) is implied by edge u->y + (y,v) when
//       D(y,v) > T  and  W(u,v) = w(u->y) + W(y,v).
// Implication is transitive and (as the register-free-cycle argument in
// constraints.cc shows) acyclic, so pruning with both rules preserves the
// feasible set exactly.  This typically shrinks the O(V^2) constraint set
// by one to two orders of magnitude, which is what keeps the repeated
// min-cost-flow solves of LAC-retiming fast.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "retime/retiming_graph.h"
#include "retime/wd_matrices.h"

namespace lac::retime {

struct Constraint {
  int u = -1;
  int v = -1;
  std::int32_t c = 0;  // r(u) - r(v) <= c
  friend bool operator==(const Constraint&, const Constraint&) = default;
};

struct ConstraintSet {
  int num_vars = 0;  // == graph num_vertices(); host participates
  std::vector<Constraint> edge;   // one per graph edge
  std::vector<Constraint> clock;  // pruned period constraints
  std::vector<Constraint> io;     // pin r(io) = r(host) (pairs)
  std::size_t clock_before_pruning = 0;  // for reporting

  [[nodiscard]] std::size_t total() const {
    return edge.size() + clock.size() + io.size();
  }
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& c : edge) f(c);
    for (const auto& c : clock) f(c);
    for (const auto& c : io) f(c);
  }

  // Content equality — two sets with identical constraints (in order) build
  // identical flow networks, which is what lets an ECO re-plan keep a warm
  // WeightedMinAreaSolver session (see its matches()/rebind()).
  friend bool operator==(const ConstraintSet&, const ConstraintSet&) = default;
};

struct ConstraintOptions {
  bool prune = true;
};

// Builds the constraint system for target clock period T (deci-ps).
[[nodiscard]] ConstraintSet build_constraints(const RetimingGraph& g,
                                              const WdMatrices& wd,
                                              std::int32_t period_decips,
                                              const ConstraintOptions& opt = {});

// Feasibility of a clock period (Bellman–Ford on the constraint graph).
[[nodiscard]] bool period_feasible(const RetimingGraph& g,
                                   const WdMatrices& wd,
                                   std::int32_t period_decips);

// Minimum achievable clock period over all retimings (ps), via integer
// binary search on deci-ps (exact: all D values are integral deci-ps).
// If r_out is non-null it receives a legal retiming achieving the period.
[[nodiscard]] double min_period_retiming(const RetimingGraph& g,
                                         const WdMatrices& wd,
                                         std::vector<int>* r_out = nullptr);

}  // namespace lac::retime
