#include "retime/sharing.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "graph/min_cost_flow.h"

namespace lac::retime {

namespace {
constexpr double kWeightGrid = 1 << 14;
}  // namespace

std::optional<std::vector<int>> min_area_retiming_shared(
    const RetimingGraph& g, const WdMatrices& wd, std::int32_t period_decips,
    const std::vector<double>& area_weight) {
  const int n = g.num_vertices();
  LAC_CHECK(static_cast<int>(area_weight.size()) == n);

  // Objective terms: (u, v, w, beta) meaning beta · w_r over the arc
  // u -> v of weight w.  Single-fanout vertices keep their plain edge;
  // multi-fanout vertices contribute fanout + mirror terms.
  struct Term {
    int u, v, w;
    double beta;
  };
  std::vector<Term> terms;
  int num_vars = n;
  for (int v = 0; v < n; ++v) {
    if (v == g.host()) continue;
    const auto& fo = g.out_edges(v);
    if (fo.empty()) continue;
    LAC_CHECK_MSG(area_weight[static_cast<std::size_t>(v)] > 0.0,
                  "area weight of vertex " << v << " must be positive");
    if (fo.size() == 1) {
      const auto& e = g.edge(fo.front());
      terms.push_back({v, e.head, e.w, area_weight[static_cast<std::size_t>(v)]});
      continue;
    }
    int w_max = 0;
    for (const int ei : fo) w_max = std::max(w_max, g.edge(ei).w);
    const int mirror = num_vars++;
    const double beta =
        area_weight[static_cast<std::size_t>(v)] / static_cast<double>(fo.size());
    for (const int ei : fo) {
      const auto& e = g.edge(ei);
      terms.push_back({v, e.head, e.w, beta});
      terms.push_back({e.head, mirror, w_max - e.w, beta});
    }
  }

  // Constraint system: clock + edge + io constraints of the original graph,
  // plus non-negativity for every mirror arc.
  ConstraintSet cs = build_constraints(g, wd, period_decips);
  cs.num_vars = num_vars;
  for (const Term& t : terms)
    if (t.v >= n) cs.edge.push_back({t.u, t.v, t.w});

  // Quantised breadths.
  double max_beta = 0.0;
  for (const Term& t : terms) max_beta = std::max(max_beta, t.beta);
  LAC_CHECK(max_beta > 0.0);
  auto quantise = [&](double b) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(b / max_beta * kWeightGrid)));
  };

  // Transshipment dual (same derivation as min_area.cc, with per-arc
  // breadths): minimise Σ b(x)·r(x), b(x) = Σ_in β − Σ_out β.
  graph::MinCostFlow mcf(num_vars);
  for (const Term& t : terms) {
    const std::int64_t bi = quantise(t.beta);
    mcf.add_supply(t.u, bi);
    mcf.add_supply(t.v, -bi);
  }
  std::int64_t max_c = 1;
  cs.for_each([&](const Constraint& c) {
    mcf.add_arc(c.u, c.v, graph::MinCostFlow::kInfCap, c.c);
    max_c = std::max<std::int64_t>(max_c, std::abs(static_cast<std::int64_t>(c.c)));
  });
  const std::int64_t big_k = static_cast<std::int64_t>(num_vars + 1) * (max_c + 1);
  for (int v = 0; v < num_vars; ++v) {
    if (v == g.host()) continue;
    mcf.add_arc(v, g.host(), graph::MinCostFlow::kInfCap, big_k);
    mcf.add_arc(g.host(), v, graph::MinCostFlow::kInfCap, big_k);
  }

  const auto sol = mcf.solve();
  if (!sol) return std::nullopt;

  std::vector<int> r(static_cast<std::size_t>(n));
  const std::int64_t base = sol->potential[static_cast<std::size_t>(g.host())];
  for (int v = 0; v < n; ++v)
    r[static_cast<std::size_t>(v)] =
        static_cast<int>(base - sol->potential[static_cast<std::size_t>(v)]);
  LAC_CHECK_MSG(g.is_legal_retiming(r),
                "sharing-aware flow produced an illegal retiming");
  return r;
}

double shared_ff_area(const RetimingGraph& g, const std::vector<int>& r,
                      const std::vector<double>& area_weight) {
  double total = 0.0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    std::int64_t w_max = 0;
    for (const int ei : g.out_edges(v))
      w_max = std::max(w_max, g.retimed_weight(ei, r));
    total += static_cast<double>(w_max) * area_weight[static_cast<std::size_t>(v)];
  }
  return total;
}

}  // namespace lac::retime
