#include "retime/collapse.h"

#include <utility>

namespace lac::retime {

std::vector<Connection> collapse_registers(const netlist::Netlist& nl) {
  using netlist::CellId;
  using netlist::CellType;
  std::vector<Connection> out;
  for (const CellId u : nl.cells()) {
    if (nl.type(u) == CellType::kDff) continue;
    // DFS through register chains starting at u's fanouts.
    std::vector<std::pair<CellId, int>> stack;
    for (const CellId f : nl.fanouts(u)) stack.emplace_back(f, 0);
    while (!stack.empty()) {
      const auto [c, w] = stack.back();
      stack.pop_back();
      if (nl.type(c) == CellType::kDff) {
        for (const CellId f : nl.fanouts(c)) stack.emplace_back(f, w + 1);
      } else {
        out.push_back({u, c, w});
      }
    }
  }
  return out;
}

}  // namespace lac::retime
