#include "retime/weighted_min_area_solver.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace lac::retime {

namespace {
// Integer grid for quantised area weights.  The largest weight maps to
// kWeightGrid; anything positive maps to at least 1.
constexpr double kWeightGrid = 1 << 14;
}  // namespace

WeightedMinAreaSolver::WeightedMinAreaSolver(const RetimingGraph& g,
                                             const ConstraintSet& cs)
    : g_(&g),
      cs_(&cs),
      mcf_(g.num_vertices()),
      ai_(static_cast<std::size_t>(g.num_vertices()), 0),
      supply_(static_cast<std::size_t>(g.num_vertices()), 0) {
  const int n = g_->num_vertices();
  LAC_CHECK(cs_->num_vars == n);

  // One arc per constraint r(u) − r(v) ≤ c:  u -> v, cost c, cap ∞.
  cs_->for_each([&](const Constraint& c) {
    mcf_.add_arc(c.u, c.v, graph::MinCostFlow::kInfCap, c.c);
  });
  // Bounding/connectivity arcs through the host.  K must exceed any label
  // magnitude an optimal basic solution can need; |r(v)| is bounded by
  // (#vars) · (largest |constraint constant|) for shortest-path-derived
  // solutions, so this K keeps the box constraints slack at some optimum.
  std::int64_t max_c = 1;
  cs_->for_each([&](const Constraint& c) {
    max_c = std::max<std::int64_t>(max_c, std::abs(static_cast<std::int64_t>(c.c)));
  });
  const std::int64_t big_k = static_cast<std::int64_t>(n + 1) * (max_c + 1);
  for (int v = 0; v < n; ++v) {
    if (v == g_->host()) continue;
    mcf_.add_arc(v, g_->host(), graph::MinCostFlow::kInfCap, big_k);
    mcf_.add_arc(g_->host(), v, graph::MinCostFlow::kInfCap, big_k);
  }
  // Before the first solve the warm-start vectors are still empty, so warm
  // and cold instances of the same network report the same value.
  obs::gauge("mem.mcf_network_bytes", static_cast<double>(mcf_.bytes_used()));
}

std::optional<std::vector<int>> WeightedMinAreaSolver::solve(
    const std::vector<double>& area_weight, MinAreaStats* stats) {
  const int n = g_->num_vertices();
  LAC_CHECK(static_cast<int>(area_weight.size()) == n);

  obs::Span span("retime.weighted_min_area");
  span.annotate("vertices", n);
  span.annotate("constraints", cs_->total());
  const bool warm_round = rounds_ > 0;
  span.annotate("warm", warm_round);
  ++rounds_;

  double max_w = 0.0;
  for (int v = 0; v < n; ++v) {
    if (v == g_->host()) continue;
    LAC_CHECK_MSG(area_weight[static_cast<std::size_t>(v)] > 0.0,
                  "area weight of vertex " << v << " must be positive");
    max_w = std::max(max_w, area_weight[static_cast<std::size_t>(v)]);
  }
  LAC_CHECK(max_w > 0.0);
  for (int v = 0; v < n; ++v) {
    ai_[static_cast<std::size_t>(v)] =
        v == g_->host()
            ? 0
            : std::max<std::int64_t>(
                  1, static_cast<std::int64_t>(std::llround(
                         area_weight[static_cast<std::size_t>(v)] / max_w *
                         kWeightGrid)));
  }

  // Supplies: supply(v) = fo(v) − fi(v) (see min_area.h derivation).  Only
  // the supplies change between rounds; arcs and costs are fixed.
  std::fill(supply_.begin(), supply_.end(), 0);
  for (const auto& e : g_->edges()) {
    supply_[static_cast<std::size_t>(e.tail)] +=
        ai_[static_cast<std::size_t>(e.tail)];  // fo
    supply_[static_cast<std::size_t>(e.head)] -=
        ai_[static_cast<std::size_t>(e.tail)];  // fi
  }
  for (int v = 0; v < n; ++v)
    mcf_.set_supply(v, supply_[static_cast<std::size_t>(v)]);

  // Round 1 runs cold; later rounds warm-start from the previous flow
  // (resolve() falls back to a cold solve when no optimum is retained,
  // e.g. after an infeasible round).
  const auto sol = mcf_.resolve();
  span.annotate("feasible", sol.has_value());
  span.annotate("phases", mcf_.stats().phases);
  span.annotate("augmentations", mcf_.stats().augmentations);
  if (!sol) return std::nullopt;  // negative cycle <=> constraints infeasible

  // Canonical labels: r(v) = −d(host → v) over the optimal residual
  // network.  Unlike the raw solver potentials, these do not depend on the
  // augmentation history, so cold and warm solves (and any thread count)
  // produce the same retiming.
  const auto dist = mcf_.residual_distances_from(g_->host());
  std::vector<int> r(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const std::int64_t d = dist[static_cast<std::size_t>(v)];
    LAC_CHECK_MSG(d != graph::MinCostFlow::kUnreachable,
                  "vertex " << v << " unreachable from host in residual net");
    r[static_cast<std::size_t>(v)] = static_cast<int>(-d);
  }

  LAC_CHECK_MSG(g_->is_legal_retiming(r),
                "min-cost-flow produced an illegal retiming");
  if (stats != nullptr) {
    stats->objective = weighted_ff_area(*g_, r, area_weight);
    stats->flow_cost_exact = sol->total_cost_exact;
    stats->phases = mcf_.stats().phases;
    stats->augmentations = mcf_.stats().augmentations;
    stats->warm = mcf_.stats().warm;
    stats->repaired_arcs = mcf_.stats().repaired_arcs;
  }
  return r;
}

bool WeightedMinAreaSolver::matches(const RetimingGraph& g,
                                    const ConstraintSet& cs) const {
  return g.num_vertices() == g_->num_vertices() && cs == *cs_;
}

void WeightedMinAreaSolver::rebind(const RetimingGraph& g,
                                   const ConstraintSet& cs) {
  // No content check here: rebind is also used after the previous targets
  // have been moved-from (a PlanSession relocating its result), when they
  // can no longer witness their original content.  Callers verify
  // matches() while the old targets are still intact.
  g_ = &g;
  cs_ = &cs;
}

}  // namespace lac::retime
