// (Weighted) minimum-area retiming via minimum-cost flow (paper §3.1, §4.2).
//
// Objective (paper):  N'(G_r) = const + Σ_v r(v)·(fi(v) − fo(v)), with
//   fi(v) = Σ_{u ∈ FI(v)} A(u)        (area weight of fanin units)
//   fo(v) = A(v)·|FO(v)|.
// Minimising  Σ_v b(v)·r(v)  (b = fi − fo) subject to the difference
// constraints is the LP dual of a transshipment problem:
//
//   min Σ c(x,y)·f(x,y)   s.t.  outflow(v) − inflow(v) = −b(v),  f ≥ 0,
//
// with one arc per constraint  r(x) − r(y) ≤ c(x,y).  At a min-cost flow
// optimum with node potentials π, every arc satisfies
// c + π(x) − π(y) ≥ 0, so  r(v) := π(host) − π(v)  is feasible
// (r(x) − r(y) = π(y) − π(x) ≤ c) and complementary slackness makes it
// optimal.  Costs are integral, hence so is r.
//
// Two `host` arcs of large cost K bound every label (|r| ≤ K) and connect
// all components, guaranteeing the flow problem is feasible whenever the
// constraint system is; K exceeds any label an optimal basic solution
// needs, so the optimum is unchanged.
//
// Area weights are reals (the LAC loop rescales them adaptively); they are
// quantised onto a fixed integer grid for the flow supplies.  Quantisation
// only perturbs the objective's tie-breaking, never feasibility.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "retime/constraints.h"
#include "retime/retiming_graph.h"

namespace lac::retime {

struct MinAreaStats {
  double objective = 0.0;  // Σ A(tail(e)) · w_r(e), the weighted FF area
  // Exact optimum of the quantised flow objective (int64, never narrowed);
  // warm and cold solves of the same instance agree on it bit for bit.
  std::int64_t flow_cost_exact = 0;
  int phases = 0;          // min-cost-flow Dijkstra phases of the solve
  int augmentations = 0;   // min-cost-flow tree-drain pushes of the solve
  bool warm = false;       // solve warm-started from a previous round's flow
  int repaired_arcs = 0;   // residual arcs cancel-and-rerouted by the solve
};

// Solves weighted min-area retiming for the given constraint system.
// `area_weight[v]` must be > 0 for every non-host vertex.  Returns the
// optimal retiming labels normalised to r[host] = 0, or nullopt if the
// constraints are infeasible.  One-shot convenience over
// WeightedMinAreaSolver (weighted_min_area_solver.h) — a loop that
// re-solves with changing weights should hold a solver session instead,
// which warm-starts every round after the first and returns bit-identical
// retimings to this function.
[[nodiscard]] std::optional<std::vector<int>> weighted_min_area_retiming(
    const RetimingGraph& g, const ConstraintSet& cs,
    const std::vector<double>& area_weight, MinAreaStats* stats = nullptr);

// Classic min-area retiming: all units weigh 1.
[[nodiscard]] std::optional<std::vector<int>> min_area_retiming(
    const RetimingGraph& g, const ConstraintSet& cs,
    MinAreaStats* stats = nullptr);

// Weighted flip-flop area of a retiming:  Σ_e A(tail(e)) · w_r(e).
[[nodiscard]] double weighted_ff_area(const RetimingGraph& g,
                                      const std::vector<int>& r,
                                      const std::vector<double>& area_weight);

}  // namespace lac::retime
