#include "retime/apply.h"

#include <string>

#include "base/check.h"

namespace lac::retime {

using netlist::CellId;
using netlist::CellType;
using netlist::Netlist;

LogicGraph build_logic_graph(const Netlist& nl, double gate_delay_ps) {
  LogicGraph lg;
  lg.vertex_of_cell.assign(static_cast<std::size_t>(nl.num_cells()), -1);
  for (const auto c : nl.cells()) {
    const auto type = nl.type(c);
    if (type == CellType::kDff) continue;
    const bool io = type == CellType::kInput || type == CellType::kOutput;
    lg.vertex_of_cell[c.index()] = lg.graph.add_vertex(
        VertexKind::kFunctional, io ? 0.0 : gate_delay_ps,
        tile::TileId::invalid());
    if (io) lg.graph.mark_io(lg.vertex_of_cell[c.index()]);
  }
  // One edge per (sink, fanin slot): walk backwards through the register
  // chain (every DFF has exactly one fanin) to the driving functional unit.
  for (const auto c : nl.cells()) {
    if (nl.type(c) == CellType::kDff) continue;
    const auto fanins = nl.fanins(c);
    for (int slot = 0; slot < static_cast<int>(fanins.size()); ++slot) {
      CellId drv = fanins[static_cast<std::size_t>(slot)];
      int w = 0;
      while (nl.type(drv) == CellType::kDff) {
        ++w;
        drv = nl.fanins(drv)[0];
      }
      const int tail = lg.vertex_of_cell[drv.index()];
      const int head = lg.vertex_of_cell[c.index()];
      LAC_CHECK(tail > 0 && head > 0);
      const int e = lg.graph.add_edge(tail, head, w);
      LAC_CHECK(e == static_cast<int>(lg.slot_of_edge.size()));
      lg.slot_of_edge.emplace_back(c, slot);
    }
  }
  return lg;
}

Netlist apply_retiming(const Netlist& nl, const LogicGraph& lg,
                       const std::vector<int>& r) {
  LAC_CHECK_MSG(lg.graph.is_legal_retiming(r),
                "apply_retiming requires a legal retiming");
  Netlist out(nl.name() + "_retimed");

  // Same non-register cells, same names and types (creation in original id
  // order keeps name->cell lookups stable).
  for (const auto c : nl.cells())
    if (nl.type(c) != CellType::kDff) out.add_cell(nl.cell_name(c), nl.type(c));

  // Inverse map: graph vertex -> source cell.
  std::vector<CellId> cell_of_vertex(
      static_cast<std::size_t>(lg.graph.num_vertices()), CellId::invalid());
  for (const auto c : nl.cells())
    if (lg.vertex_of_cell[c.index()] >= 0)
      cell_of_vertex[static_cast<std::size_t>(lg.vertex_of_cell[c.index()])] = c;

  // Rewire every fanin slot through a fresh register chain of length w_r.
  // Edges were emitted sink-by-sink in fanin-slot order, so connecting in
  // edge order reconstructs every gate's fanin list in its original order.
  for (int e = 0; e < lg.graph.num_edges(); ++e) {
    const auto [sink_cell, slot] = lg.slot_of_edge[static_cast<std::size_t>(e)];
    (void)slot;
    const auto w = lg.graph.retimed_weight(e, r);
    const CellId driver =
        cell_of_vertex[static_cast<std::size_t>(lg.graph.edge(e).tail)];
    LAC_CHECK(driver.valid());
    CellId prev = *out.find(nl.cell_name(driver));
    for (std::int64_t k = 0; k < w; ++k) {
      const CellId ff = out.add_cell(
          "rt" + std::to_string(e) + "_" + std::to_string(k), CellType::kDff);
      out.connect(ff, prev);
      prev = ff;
    }
    out.connect(*out.find(nl.cell_name(sink_cell)), prev);
  }

  const auto err = out.validate();
  LAC_CHECK_MSG(!err, "apply_retiming produced invalid netlist: " << *err);
  return out;
}

}  // namespace lac::retime
