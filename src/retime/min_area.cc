#include "retime/min_area.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "graph/min_cost_flow.h"
#include "obs/span.h"

namespace lac::retime {

namespace {
// Integer grid for quantised area weights.  The largest weight maps to
// kWeightGrid; anything positive maps to at least 1.
constexpr double kWeightGrid = 1 << 14;
}  // namespace

std::optional<std::vector<int>> weighted_min_area_retiming(
    const RetimingGraph& g, const ConstraintSet& cs,
    const std::vector<double>& area_weight, MinAreaStats* stats) {
  const int n = g.num_vertices();
  LAC_CHECK(cs.num_vars == n);
  LAC_CHECK(static_cast<int>(area_weight.size()) == n);

  obs::Span span("retime.weighted_min_area");
  span.annotate("vertices", n);
  span.annotate("constraints", cs.total());

  double max_w = 0.0;
  for (int v = 0; v < n; ++v) {
    if (v == g.host()) continue;
    LAC_CHECK_MSG(area_weight[static_cast<std::size_t>(v)] > 0.0,
                  "area weight of vertex " << v << " must be positive");
    max_w = std::max(max_w, area_weight[static_cast<std::size_t>(v)]);
  }
  LAC_CHECK(max_w > 0.0);
  std::vector<std::int64_t> ai(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    if (v == g.host()) continue;
    ai[static_cast<std::size_t>(v)] = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(
               area_weight[static_cast<std::size_t>(v)] / max_w * kWeightGrid)));
  }

  // Supplies: supply(v) = fo(v) − fi(v) (see header derivation).
  graph::MinCostFlow mcf(n);
  for (const auto& e : g.edges()) {
    mcf.add_supply(e.tail, ai[static_cast<std::size_t>(e.tail)]);   // fo
    mcf.add_supply(e.head, -ai[static_cast<std::size_t>(e.tail)]);  // fi
  }

  // One arc per constraint r(u) − r(v) ≤ c:  u -> v, cost c, cap ∞.
  cs.for_each([&](const Constraint& c) {
    mcf.add_arc(c.u, c.v, graph::MinCostFlow::kInfCap, c.c);
  });
  // Bounding/connectivity arcs through the host.  K must exceed any label
  // magnitude an optimal basic solution can need; |r(v)| is bounded by
  // (#vars) · (largest |constraint constant|) for shortest-path-derived
  // solutions, so this K keeps the box constraints slack at some optimum.
  std::int64_t max_c = 1;
  cs.for_each([&](const Constraint& c) {
    max_c = std::max<std::int64_t>(max_c, std::abs(static_cast<std::int64_t>(c.c)));
  });
  const std::int64_t big_k = static_cast<std::int64_t>(n + 1) * (max_c + 1);
  for (int v = 0; v < n; ++v) {
    if (v == g.host()) continue;
    mcf.add_arc(v, g.host(), graph::MinCostFlow::kInfCap, big_k);
    mcf.add_arc(g.host(), v, graph::MinCostFlow::kInfCap, big_k);
  }

  const auto sol = mcf.solve();
  span.annotate("feasible", sol.has_value());
  span.annotate("augmentations", mcf.stats().augmentations);
  if (!sol) return std::nullopt;  // negative cycle <=> constraints infeasible

  std::vector<int> r(static_cast<std::size_t>(n));
  const std::int64_t base = sol->potential[static_cast<std::size_t>(g.host())];
  for (int v = 0; v < n; ++v)
    r[static_cast<std::size_t>(v)] =
        static_cast<int>(base - sol->potential[static_cast<std::size_t>(v)]);

  LAC_CHECK_MSG(g.is_legal_retiming(r),
                "min-cost-flow produced an illegal retiming");
  if (stats != nullptr) {
    stats->objective = weighted_ff_area(g, r, area_weight);
    stats->augmentations = mcf.stats().augmentations;
  }
  return r;
}

std::optional<std::vector<int>> min_area_retiming(const RetimingGraph& g,
                                                  const ConstraintSet& cs,
                                                  MinAreaStats* stats) {
  // Unit areas, with an epsilon preference for keeping registers at
  // functional-unit outputs: along an interconnect-unit chain every
  // position has the same register count, so the optimum is degenerate;
  // the tie-break keeps cost-equal registers with the logic (where a
  // physical flop would integrate) instead of at an arbitrary wire
  // position.  The epsilon is far below any real weight difference, so
  // the register COUNT optimum is unchanged.
  std::vector<double> weights(static_cast<std::size_t>(g.num_vertices()), 1.0);
  for (int v = 0; v < g.num_vertices(); ++v)
    if (g.kind(v) == VertexKind::kInterconnect)
      weights[static_cast<std::size_t>(v)] = 1.002;
  return weighted_min_area_retiming(g, cs, weights, stats);
}

double weighted_ff_area(const RetimingGraph& g, const std::vector<int>& r,
                        const std::vector<double>& area_weight) {
  double total = 0.0;
  for (int e = 0; e < g.num_edges(); ++e) {
    const auto w = g.retimed_weight(e, r);
    total += static_cast<double>(w) *
             area_weight[static_cast<std::size_t>(g.edge(e).tail)];
  }
  return total;
}

}  // namespace lac::retime
