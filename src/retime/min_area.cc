#include "retime/min_area.h"

#include "retime/weighted_min_area_solver.h"

namespace lac::retime {

std::optional<std::vector<int>> weighted_min_area_retiming(
    const RetimingGraph& g, const ConstraintSet& cs,
    const std::vector<double>& area_weight, MinAreaStats* stats) {
  // A fresh one-round session: builds the flow network and solves cold.
  WeightedMinAreaSolver solver(g, cs);
  return solver.solve(area_weight, stats);
}

std::optional<std::vector<int>> min_area_retiming(const RetimingGraph& g,
                                                  const ConstraintSet& cs,
                                                  MinAreaStats* stats) {
  // Unit areas, with an epsilon preference for keeping registers at
  // functional-unit outputs: along an interconnect-unit chain every
  // position has the same register count, so the optimum is degenerate;
  // the tie-break keeps cost-equal registers with the logic (where a
  // physical flop would integrate) instead of at an arbitrary wire
  // position.  The epsilon is far below any real weight difference, so
  // the register COUNT optimum is unchanged.
  std::vector<double> weights(static_cast<std::size_t>(g.num_vertices()), 1.0);
  for (int v = 0; v < g.num_vertices(); ++v)
    if (g.kind(v) == VertexKind::kInterconnect)
      weights[static_cast<std::size_t>(v)] = 1.002;
  return weighted_min_area_retiming(g, cs, weights, stats);
}

double weighted_ff_area(const RetimingGraph& g, const std::vector<int>& r,
                        const std::vector<double>& area_weight) {
  double total = 0.0;
  for (int e = 0; e < g.num_edges(); ++e) {
    const auto w = g.retimed_weight(e, r);
    total += static_cast<double>(w) *
             area_weight[static_cast<std::size_t>(g.edge(e).tail)];
  }
  return total;
}

}  // namespace lac::retime
