// Collapse DFF cells into weighted connections (paper §3.1).
//
// A gate-level netlist stores flip-flops as cells; the retiming model
// stores them as edge weights.  `collapse_registers` traverses every
// register chain and emits one Connection per (driver, sink) pair of
// non-DFF cells, weighted by the number of DFFs on the chain between them.
// Because every DFF has exactly one fanin, the chains reachable from a
// driver form a tree — the traversal needs no cycle guard.  Pure-register
// rings that no functional unit drives (dead state machines) are
// unreachable and dropped.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace lac::retime {

struct Connection {
  netlist::CellId driver;  // non-DFF
  netlist::CellId sink;    // non-DFF
  int w = 0;               // flip-flops between them
};

[[nodiscard]] std::vector<Connection> collapse_registers(
    const netlist::Netlist& nl);

}  // namespace lac::retime
