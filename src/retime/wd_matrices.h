// Leiserson–Saxe W and D matrices.
//
//   W(u,v) = minimum flip-flop count over all paths u -> v;
//   D(u,v) = maximum total vertex delay among the minimum-weight paths.
//
// Computed with Johnson's technique on the scalarised lexicographic cost
//   cost(e) = w(e) * BIG - d(tail(e)),   BIG > Σ_v d(v),
// which makes lexicographic (W, -delay) minimisation a single shortest-path
// problem.  Costs can be negative (w = 0 edges), but every cycle has w >= 1
// in a valid sequential circuit so there is no negative cycle; one
// Bellman–Ford pass produces potentials for per-source Dijkstra.
//
// The full matrices take O(V^2) * 8 bytes; for the circuit sizes of the
// paper's evaluation (a few thousand vertices including interconnect
// units) this is tens to a couple of hundred MB, computed once per
// planning run exactly as the paper notes ("the clock period constraints
// are generated only once").
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "base/exec_policy.h"
#include "retime/retiming_graph.h"

namespace lac::retime {

class WdMatrices {
 public:
  static constexpr std::int32_t kUnreachable =
      std::numeric_limits<std::int32_t>::max();

  // The per-source sweeps write disjoint rows, so they parallelise under
  // `exec` with bitwise-identical results for any thread count.  The
  // single-argument form runs sequentially.
  [[nodiscard]] static WdMatrices compute(const RetimingGraph& g) {
    return compute(g, base::ExecPolicy::sequential());
  }
  [[nodiscard]] static WdMatrices compute(const RetimingGraph& g,
                                          const base::ExecPolicy& exec);

  // Incremental recompute across an ECO.  `prev` was computed on `prev_g`;
  // `new_to_old[v]` gives v's counterpart in prev_g, or -1 when v is new.
  // A source row is copied from `prev` (columns permuted through the
  // mapping) when the source provably cannot reach — in g — any *changed*
  // vertex: one that is new, has a different delay, or whose out-edge list
  // differs under the mapping.  W/D entries are intrinsic path properties
  // (register count / path delay), independent of the BIG scalarisation
  // constant, so the result is bit-identical to compute(g, exec) for any
  // thread count.  `rows_rebuilt` (optional) receives the number of
  // per-source Dijkstra runs actually performed.
  [[nodiscard]] static WdMatrices compute_incremental(
      const RetimingGraph& g, const base::ExecPolicy& exec,
      const RetimingGraph& prev_g, const WdMatrices& prev,
      const std::vector<int>& new_to_old,
      std::int64_t* rows_rebuilt = nullptr);

  [[nodiscard]] int n() const { return n_; }
  // W(u,v); kUnreachable when no u->v path exists.  W(v,v) = 0 by
  // convention (the empty path).
  [[nodiscard]] std::int32_t w(int u, int v) const {
    return w_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(v)];
  }
  // D(u,v) in deci-ps; meaningful only when w(u,v) != kUnreachable.
  [[nodiscard]] std::int32_t d_decips(int u, int v) const {
    return d_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(v)];
  }
  [[nodiscard]] double d_ps(int u, int v) const {
    return from_decips(d_decips(u, v));
  }

  // Minimum feasible clock period with the registers where they are:
  // max { D(u,v) : W(u,v) = 0 }  (covers single vertices via D(v,v)=d(v)).
  [[nodiscard]] double t_init_ps() const { return from_decips(t_init_); }

  // Trivial lower bound for any feasible period: the largest single-vertex
  // delay (deci-ps).  Used as the floor of min-period binary search.
  [[nodiscard]] std::int32_t max_vertex_delay_decips() const {
    return max_vertex_delay_;
  }

  // Logical heap footprint of the two dense matrices (element count ×
  // element size, not allocator capacity) — deterministic for any thread
  // count, reported as the mem.wd_bytes gauge.
  [[nodiscard]] std::int64_t bytes_used() const {
    return static_cast<std::int64_t>(w_.size() * sizeof(std::int32_t) +
                                     d_.size() * sizeof(std::int32_t));
  }

 private:
  int n_ = 0;
  std::vector<std::int32_t> w_;
  std::vector<std::int32_t> d_;
  std::int32_t t_init_ = 0;
  std::int32_t max_vertex_delay_ = 0;
};

}  // namespace lac::retime
