// Session object for repeated weighted min-area retiming solves over one
// constraint system — the engine of the LAC loop's inner iteration.
//
// The LAC heuristic is "a series of weighted min-area retiming problems"
// that differ only in the per-vertex area weights; the constraint system
// (and therefore the whole flow network: arcs, costs) is fixed for the
// duration of one lac_retiming call.  This class builds the
// retiming-graph→flow-network mapping once and re-solves per round with
// only the supply vector updated (the quantised weights enter the
// transshipment problem as node supplies, see retime/min_area.h for the
// reduction).  Round 1 solves cold; every later round warm-starts from
// the previous round's flow and potentials and ships only the supply
// delta (graph::MinCostFlow::resolve()).
//
// Exactness: every round returns an exact optimum, and the returned
// retiming is *canonical* — labels are derived from residual shortest
// distances from the host, which are identical for every optimal flow of
// the instance (see MinCostFlow::residual_distances_from).  A session
// therefore returns bit-identical retimings to a fresh cold
// weighted_min_area_retiming() call on every round, which is what lets
// LacOptions::incremental default to on without perturbing results.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/min_cost_flow.h"
#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/retiming_graph.h"

namespace lac::retime {

class WeightedMinAreaSolver {
 public:
  // Builds the flow network (one arc per constraint plus the host
  // bounding arcs) once.  `g` and `cs` must outlive the solver (or be
  // replaced via rebind()).
  WeightedMinAreaSolver(const RetimingGraph& g, const ConstraintSet& cs);

  // Solves weighted min-area retiming for the given weights
  // (`area_weight[v]` > 0 for every non-host vertex).  Returns the optimal
  // retiming normalised to r[host] = 0, or nullopt if the constraints are
  // infeasible.  The first call per session solves cold; later calls
  // warm-start from the previous round's optimum.
  [[nodiscard]] std::optional<std::vector<int>> solve(
      const std::vector<double>& area_weight, MinAreaStats* stats = nullptr);

  // Number of solve() calls served so far.
  [[nodiscard]] int rounds() const { return rounds_; }

  // True when (g, cs) would build the *identical* flow network this session
  // already holds: same vertex count and content-equal constraint set.  The
  // network depends on nothing else, so a matching session can keep its
  // warm flow across an ECO re-plan.
  [[nodiscard]] bool matches(const RetimingGraph& g,
                             const ConstraintSet& cs) const;

  // Re-points the session at (g, cs) without touching the flow network.
  // The caller guarantees content-identity (matches() before any move) —
  // used after an ECO re-plan relocates the graph/constraints into a new
  // cache generation (same content, new addresses).
  void rebind(const RetimingGraph& g, const ConstraintSet& cs);

 private:
  const RetimingGraph* g_;
  const ConstraintSet* cs_;
  graph::MinCostFlow mcf_;
  std::vector<std::int64_t> ai_;      // quantised weights (scratch)
  std::vector<std::int64_t> supply_;  // per-node supplies (scratch)
  int rounds_ = 0;
};

}  // namespace lac::retime
