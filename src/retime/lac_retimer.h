// Local-Area-Constrained retiming — the paper's core algorithm (§4.2).
//
// LAC-retiming asks for a retiming that satisfies edge, clock AND per-tile
// area constraints.  The area constraints couple many retiming variables,
// so the problem is an ILP; the paper's heuristic solves a series of
// *weighted* min-area retimings, re-weighting each tile by its utilisation:
//
//   1. build edge + clock constraints once;
//   2. uniform unit weights;
//   3. solve weighted min-area retiming (min-cost flow);
//   4. place flip-flops, compute AC(t) per tile;
//   5. done if every AC(t) <= C(t), or no improvement for N_max rounds;
//   6. weight(t) *= (1 - alpha) + alpha * AC(t)/C(t);  goto 3.
//
// alpha defaults to 0.2 (the paper: "a value of around 0.2 typically
// produces the best results").  The best solution seen (fewest violating
// flip-flops, then fewest total flip-flops) is returned.
#pragma once

#include <cstdint>
#include <vector>

#include "retime/constraints.h"
#include "retime/ff_placement.h"
#include "retime/retiming_graph.h"
#include "tile/tile_grid.h"

namespace lac::retime {

struct LacOptions {
  double alpha = 0.2;
  int n_max = 10;        // consecutive non-improving rounds before giving up
  int max_rounds = 60;   // absolute safety cap
  double ff_area = 400;  // µm² per flip-flop (timing::Technology::dff_area)
  // Weight used for AC/C when a tile has (near-)zero capacity.
  double full_tile_ratio = 8.0;
  double weight_min = 1e-3;
  double weight_max = 1e6;
  // Reuse one WeightedMinAreaSolver session across rounds: the flow
  // network is built once per lac_retiming call and every round after the
  // first warm-starts from the previous round's min-cost flow (see
  // docs/INCREMENTAL_MCF.md).  Results are bit-identical to the cold
  // per-round path, which is kept (set false) for A/B comparison and the
  // cold-vs-warm bench.
  bool incremental = true;
};

// Convergence record of one round of the adaptive re-weighting loop (one
// weighted min-area solve).  The trajectory across rounds is the paper's
// N_wr-vs-quality trade-off made explicit.
struct LacRoundStats {
  int round = 0;                // 1-based round number
  std::int64_t n_foa = 0;       // violating flip-flops this round
  std::int64_t n_f = 0;         // total flip-flops this round
  std::int64_t best_n_foa = 0;  // best-so-far N_FOA after this round
  double max_overflow = 0.0;    // worst tile overflow (µm²) this round
  double weight_lo = 1.0;       // tile-weight spread entering the round
  double weight_hi = 1.0;
  bool improved = false;        // did this round improve the best solution
  int phases = 0;               // min-cost-flow Dijkstra phases of the solve
  int augmentations = 0;        // min-cost-flow tree-drain pushes of the solve
  bool warm = false;            // solve warm-started from the previous round
  int repaired_arcs = 0;        // residual arcs repaired by the warm solve
  double solve_seconds = 0.0;   // wall time of solve + placement
};

struct LacResult {
  std::vector<int> r;        // best retiming found
  AreaReport report;         // its area accounting
  int n_wr = 0;              // number of weighted min-area retimings solved
  bool met_all_constraints = false;
  std::vector<double> tile_weight;  // final adaptive weights (per tile)
  // Per-round convergence history; rounds.size() == n_wr always, and
  // best_n_foa is monotone non-increasing across rounds.
  std::vector<LacRoundStats> rounds;
};

class WeightedMinAreaSolver;

// `cs` must be feasible (callers check the clock period first); throws
// CheckError otherwise.
[[nodiscard]] LacResult lac_retiming(const RetimingGraph& g,
                                     const tile::TileGrid& grid,
                                     const ConstraintSet& cs,
                                     const LacOptions& opt = {});

// Same algorithm, but the weighted solves run through `session`, an
// external WeightedMinAreaSolver owned by the caller (a PlanSession keeping
// the min-cost flow warm across ECO re-plans).  `session` must satisfy
// session->matches(g, cs).  A fresh external session behaves exactly like
// the internal one; a previously-used one returns bit-identical retimings
// (canonical label extraction) with less flow work — only the effort
// fields of LacRoundStats differ.  `opt.incremental` is ignored.
[[nodiscard]] LacResult lac_retiming(const RetimingGraph& g,
                                     const tile::TileGrid& grid,
                                     const ConstraintSet& cs,
                                     WeightedMinAreaSolver* session,
                                     const LacOptions& opt = {});

}  // namespace lac::retime
