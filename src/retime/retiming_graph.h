// Retiming graph: functional units + interconnect units (paper §3).
//
// Vertices model fixed-delay units:
//   * kFunctional   — gates / RT functional units (and chip I/O with delay 0);
//   * kInterconnect — repeater-stage segments of routed global wires,
//                     produced by repeater::RepeaterPlanner;
//   * kHost         — a single edge-less anchor vertex; the solvers pin
//                     every I/O vertex's retiming label to the host's so
//                     that retiming never changes the chip's I/O latency.
//                     Keeping the host edge-less (instead of the textbook
//                     0-weight host edges) avoids register-free cycles
//                     through the environment, which would make the D
//                     matrix ill-defined.
//
// Edges carry the flip-flop count w(e) >= 0.  A retiming r relabels
// vertices; the retimed weight is  w_r(e) = w(e) + r(head) - r(tail).
//
// Delays are stored in integer deci-picoseconds so that the W/D machinery
// is exact; the public API speaks double picoseconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/check.h"
#include "tile/tile_grid.h"

namespace lac::retime {

enum class VertexKind : std::uint8_t { kFunctional, kInterconnect, kHost };

// Delay quantum: 0.1 ps.
constexpr double kDeciPsPerPs = 10.0;
[[nodiscard]] inline std::int32_t to_decips(double ps) {
  return static_cast<std::int32_t>(ps * kDeciPsPerPs + 0.5);
}
[[nodiscard]] inline double from_decips(std::int64_t dps) {
  return static_cast<double>(dps) / kDeciPsPerPs;
}

class RetimingGraph {
 public:
  struct Edge {
    int tail = -1;
    int head = -1;
    int w = 0;  // flip-flop count, >= 0
  };

  RetimingGraph();

  // The host vertex always exists and has index host().
  [[nodiscard]] int host() const { return 0; }

  int add_vertex(VertexKind kind, double delay_ps, tile::TileId tile);
  int add_edge(int tail, int head, int w);

  [[nodiscard]] int num_vertices() const {
    return static_cast<int>(kind_.size());
  }
  [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }
  [[nodiscard]] VertexKind kind(int v) const {
    return kind_.at(static_cast<std::size_t>(v));
  }
  [[nodiscard]] std::int32_t delay_decips(int v) const {
    return delay_.at(static_cast<std::size_t>(v));
  }
  [[nodiscard]] double delay_ps(int v) const {
    return from_decips(delay_decips(v));
  }
  [[nodiscard]] tile::TileId tile(int v) const {
    return tile_.at(static_cast<std::size_t>(v));
  }
  [[nodiscard]] const Edge& edge(int e) const {
    return edges_.at(static_cast<std::size_t>(e));
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<int>& out_edges(int v) const {
    return out_.at(static_cast<std::size_t>(v));
  }
  [[nodiscard]] const std::vector<int>& in_edges(int v) const {
    return in_.at(static_cast<std::size_t>(v));
  }

  // I/O vertices (functional units whose label the solvers pin to host's).
  void mark_io(int v);
  [[nodiscard]] const std::vector<int>& io_vertices() const { return io_; }

  [[nodiscard]] int num_interconnect_units() const;
  [[nodiscard]] std::int64_t total_weight() const;  // Σ w(e)
  [[nodiscard]] std::int64_t total_delay_decips() const;

  // Logical heap footprint (element counts × element sizes, not allocator
  // capacity) — deterministic for any thread count, reported as the
  // mem.retiming_graph_bytes gauge.
  [[nodiscard]] std::int64_t bytes_used() const;

  // Retimed weight of edge e under labels r.  r[host()] is the reference.
  [[nodiscard]] std::int64_t retimed_weight(int e,
                                            const std::vector<int>& r) const {
    const Edge& ed = edge(e);
    return static_cast<std::int64_t>(ed.w) + r.at(static_cast<std::size_t>(ed.head)) -
           r.at(static_cast<std::size_t>(ed.tail));
  }

  // Legality of a retiming: all retimed weights nonnegative and all I/O
  // labels equal to the host label.
  [[nodiscard]] bool is_legal_retiming(const std::vector<int>& r) const;

  // Minimum feasible clock period (ps) of the graph AS IS (no retiming):
  // the longest register-free path by total vertex delay.  Requires the
  // register-free subgraph to be acyclic (guaranteed for graphs built from
  // valid netlists).
  [[nodiscard]] double period_as_is_ps() const;
  // Same, after applying retiming r.
  [[nodiscard]] double period_after_ps(const std::vector<int>& r) const;

 private:
  std::vector<VertexKind> kind_;
  std::vector<std::int32_t> delay_;
  std::vector<tile::TileId> tile_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_, in_;
  std::vector<int> io_;
};

}  // namespace lac::retime
