// Building a pure-logic retiming graph from a netlist, and materialising a
// retiming back INTO a netlist.
//
// `build_logic_graph` maps every non-DFF cell to a functional vertex and
// every (driver, sink-fanin-slot) pair to one edge whose weight is the
// number of DFFs on the register chain between them — the per-edge model
// of §3.1.  The slot mapping is retained so `apply_retiming` can
// reconstruct each gate's fanin list exactly.
//
// `apply_retiming` produces a NEW netlist with the same combinational
// cells and I/O, where each edge carries w_r(e) freshly created DFFs.
// Together with netlist::Simulator this closes the loop: the retimed
// machine can be checked I/O-equivalent to the original (see
// tests/equivalence_test.cc and examples/retime_equivalence.cpp).
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "retime/retiming_graph.h"

namespace lac::retime {

struct LogicGraph {
  RetimingGraph graph;
  // cell -> vertex (-1 for DFF cells, which become edge weights).
  std::vector<int> vertex_of_cell;
  // Edge e of `graph` feeds fanin slot `slot_of_edge[e].second` of cell
  // `slot_of_edge[e].first` in the source netlist.
  std::vector<std::pair<netlist::CellId, int>> slot_of_edge;
};

// Gate vertices get `gate_delay_ps`; I/O cells get delay 0 and pinned
// labels.  No tiles are assigned (pure-logic use; the planner builds its
// own physically-annotated graph).
[[nodiscard]] LogicGraph build_logic_graph(const netlist::Netlist& nl,
                                           double gate_delay_ps);

// Returns a valid netlist realising the retiming r (which must be legal
// for lg.graph).  New registers are named "rt<edge>_<position>".
[[nodiscard]] netlist::Netlist apply_retiming(const netlist::Netlist& nl,
                                              const LogicGraph& lg,
                                              const std::vector<int>& r);

}  // namespace lac::retime
