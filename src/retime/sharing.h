// Register-sharing minimum-area retiming (Leiserson–Saxe mirror-vertex
// model).
//
// The per-edge model of min_area.h counts a register once per fanout edge:
// a vertex whose k fanouts each carry w registers is charged k·w, although
// hardware would realise max_e w_r(e) registers as one shared chain tapped
// at different depths.  The classic fix augments the graph with one
// *mirror vertex* v̂ per multi-fanout vertex v and edges
//
//     u_i -> v̂   with weight  ŵ_i = (max_j w_j) − w_i ≥ 0
//
// and charges every fanout edge and mirror edge a breadth of A(v)/k.  At a
// min-cost optimum the mirror labels settle so that the objective equals
//
//     Σ_v A(v) · max_{e ∈ FO(v)} w_r(e)               (shared area)
//
// plus the unchanged single-fanout terms.  Clock constraints still come
// from the ORIGINAL graph (mirror vertices have no delay and no physical
// paths); mirror edges only contribute non-negativity constraints.
//
// This is an extension beyond the paper, which uses the per-edge model
// throughout (its Eqn. (3) sums per edge); bench/sharing_ablation.cpp
// quantifies the difference on the Table-1 suite.
#pragma once

#include <optional>
#include <vector>

#include "retime/constraints.h"
#include "retime/retiming_graph.h"
#include "retime/wd_matrices.h"

namespace lac::retime {

// Minimises the shared register area at the given period.  `area_weight`
// is per original vertex (> 0 except host); pass all-ones for pure
// register count.  Returns labels for the ORIGINAL graph's vertices
// (normalised to r[host] = 0), or nullopt when the period is infeasible.
[[nodiscard]] std::optional<std::vector<int>> min_area_retiming_shared(
    const RetimingGraph& g, const WdMatrices& wd, std::int32_t period_decips,
    const std::vector<double>& area_weight);

// Shared register area of a retiming: Σ_v A(v) · max_{e∈FO(v)} w_r(e).
[[nodiscard]] double shared_ff_area(const RetimingGraph& g,
                                    const std::vector<int>& r,
                                    const std::vector<double>& area_weight);

}  // namespace lac::retime
