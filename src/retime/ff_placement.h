// Flip-flop placement and per-tile area accounting (paper §4.2, Eqn. (3)).
//
// Placement rule (paper): every flip-flop on edge e lives in the tile of
// the edge's FANIN unit, P(tail(e)).  The area consumption of tile t is
//   AC(t) = Σ_{e : P(tail(e)) = t} w_r(e) · ff_area,
// compared against the remaining capacity C(t) (after functional units and
// repeaters).  N_FOA — the paper's violation metric — is the number of
// flip-flops that do not fit: Σ_t ceil(max(0, AC(t) − C(t)) / ff_area).
#pragma once

#include <cstdint>
#include <vector>

#include "retime/retiming_graph.h"
#include "tile/tile_grid.h"

namespace lac::retime {

struct AreaReport {
  std::vector<double> ac;      // per tile, µm² of flip-flop area
  std::int64_t n_f = 0;        // total flip-flops, Σ_e w_r(e)
  std::int64_t n_fn = 0;       // flip-flops inside interconnects
                               // (edges whose tail is an interconnect unit)
  std::int64_t n_foa = 0;      // flip-flops violating local area constraints
  int tiles_violating = 0;     // tiles with AC > C
  double worst_overflow = 0.0; // max µm² overflow over tiles

  [[nodiscard]] bool fits() const { return n_foa == 0; }
};

// Edges whose tail has an invalid tile (host — never has edges — or
// unplaced vertices) are charged to no tile; the graph builder assigns a
// tile to every functional and interconnect unit, so in practice every
// flip-flop is accounted.
[[nodiscard]] AreaReport place_flipflops(const RetimingGraph& g,
                                         const tile::TileGrid& grid,
                                         const std::vector<int>& r,
                                         double ff_area);

}  // namespace lac::retime
