#include "retime/wd_matrices.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "base/check.h"
#include "base/parallel.h"

namespace lac::retime {

namespace {

// Scalarised edge cost: w*BIG - d(tail).  Negative-cost edges exist
// (w = 0), but every cycle carries at least one register so cycle costs
// are >= BIG - Σd > 0: no negative cycles.
std::int64_t edge_cost(const RetimingGraph& g, std::int64_t big, int e) {
  const auto& ed = g.edge(e);
  return static_cast<std::int64_t>(ed.w) * big -
         static_cast<std::int64_t>(g.delay_decips(ed.tail));
}

// Bellman–Ford potentials from a virtual source (all vertices at 0).
std::vector<std::int64_t> bellman_ford_potentials(const RetimingGraph& g,
                                                  std::int64_t big) {
  const int n = g.num_vertices();
  std::vector<std::int64_t> h(static_cast<std::size_t>(n), 0);
  std::vector<int> relax_count(static_cast<std::size_t>(n), 0);
  std::vector<char> in_queue(static_cast<std::size_t>(n), 1);
  std::deque<int> queue;
  for (int v = 0; v < n; ++v) queue.push_back(v);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    in_queue[static_cast<std::size_t>(u)] = 0;
    for (const int e : g.out_edges(u)) {
      const int v = g.edge(e).head;
      const std::int64_t nd =
          h[static_cast<std::size_t>(u)] + edge_cost(g, big, e);
      if (nd < h[static_cast<std::size_t>(v)]) {
        h[static_cast<std::size_t>(v)] = nd;
        LAC_CHECK_MSG(++relax_count[static_cast<std::size_t>(v)] <= n,
                      "register-free cycle: not a valid sequential circuit");
        if (!in_queue[static_cast<std::size_t>(v)]) {
          in_queue[static_cast<std::size_t>(v)] = 1;
          queue.push_back(v);
        }
      }
    }
  }
  return h;
}

// One source row of W/D: Dijkstra with reduced costs from u, decoding
// distances into (w, d) entries.  `wrow`/`drow` must be pre-filled with
// kUnreachable / 0; `dist` is caller-provided scratch of size n.  Returns
// the row's contribution to t_init (max d over w == 0 entries).
std::int32_t dijkstra_row(const RetimingGraph& g, std::int64_t big,
                          const std::vector<std::int64_t>& h, int u,
                          std::vector<std::int64_t>& dist, std::int32_t* wrow,
                          std::int32_t* drow) {
  const int n = g.num_vertices();
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  using Item = std::pair<std::int64_t, int>;
  std::fill(dist.begin(), dist.end(), kInf);
  dist[static_cast<std::size_t>(u)] = 0;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0, u});
  while (!heap.empty()) {
    const auto [dd, x] = heap.top();
    heap.pop();
    if (dd != dist[static_cast<std::size_t>(x)]) continue;
    for (const int e : g.out_edges(x)) {
      const int y = g.edge(e).head;
      const std::int64_t rc = edge_cost(g, big, e) +
                              h[static_cast<std::size_t>(x)] -
                              h[static_cast<std::size_t>(y)];
      LAC_CHECK(rc >= 0);
      const std::int64_t nd = dd + rc;
      if (nd < dist[static_cast<std::size_t>(y)]) {
        dist[static_cast<std::size_t>(y)] = nd;
        heap.push({nd, y});
      }
    }
  }
  std::int32_t t_init = 0;
  for (int v = 0; v < n; ++v) {
    if (dist[static_cast<std::size_t>(v)] >= kInf) continue;
    // Undo the reweighting to recover the true scalar distance.
    const std::int64_t true_dist = dist[static_cast<std::size_t>(v)] -
                                   h[static_cast<std::size_t>(u)] +
                                   h[static_cast<std::size_t>(v)];
    // Decode (W, S): dist = W*BIG - S with 0 <= S < BIG.
    const std::int64_t w64 = (true_dist + big - 1) / big;
    const std::int64_t s = w64 * big - true_dist;
    LAC_CHECK(w64 >= 0 && s >= 0 && s < big);
    const std::int64_t d64 = s + g.delay_decips(v);
    wrow[v] = static_cast<std::int32_t>(w64);
    drow[v] = static_cast<std::int32_t>(d64);
    if (w64 == 0) t_init = std::max(t_init, static_cast<std::int32_t>(d64));
  }
  return t_init;
}

}  // namespace

WdMatrices WdMatrices::compute(const RetimingGraph& g,
                               const base::ExecPolicy& exec) {
  const int n = g.num_vertices();
  // Dense storage is O(n^2) * 8 bytes; refuse sizes that would silently
  // exhaust memory (50k vertices ~ 20 GB) — callers at that scale should
  // stream constraints per source instead.
  LAC_CHECK_MSG(n <= 40000, "graph too large for dense W/D matrices: " << n);
  WdMatrices out;
  out.n_ = n;
  out.w_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                kUnreachable);
  out.d_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);

  const std::int64_t big = g.total_delay_decips() + 1;
  const std::vector<std::int64_t> h = bellman_ford_potentials(g, big);

  out.t_init_ = 0;
  out.max_vertex_delay_ = 0;
  for (int v = 0; v < n; ++v)
    out.max_vertex_delay_ =
        std::max(out.max_vertex_delay_, g.delay_decips(v));

  // Per-source Dijkstra with reduced costs.  Each source u writes only its
  // own row of W/D plus its own slot of t_init_row, so sources are
  // independent and run under the caller's ExecPolicy; the t_init max is
  // reduced sequentially afterwards in source order.
  std::vector<std::int32_t> t_init_row(static_cast<std::size_t>(n), 0);
  base::parallel_for_chunked(
      exec, static_cast<std::size_t>(n),
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        // One scratch buffer per chunk, reused across its sources.
        std::vector<std::int64_t> dist(static_cast<std::size_t>(n));
        for (std::size_t su = chunk_begin; su < chunk_end; ++su) {
          const int u = static_cast<int>(su);
          const std::size_t row =
              static_cast<std::size_t>(u) * static_cast<std::size_t>(n);
          t_init_row[su] =
              dijkstra_row(g, big, h, u, dist, &out.w_[row], &out.d_[row]);
        }
      });
  for (const std::int32_t t : t_init_row)
    out.t_init_ = std::max(out.t_init_, t);
  return out;
}

WdMatrices WdMatrices::compute_incremental(const RetimingGraph& g,
                                           const base::ExecPolicy& exec,
                                           const RetimingGraph& prev_g,
                                           const WdMatrices& prev,
                                           const std::vector<int>& new_to_old,
                                           std::int64_t* rows_rebuilt) {
  const int n = g.num_vertices();
  const int pn = prev_g.num_vertices();
  LAC_CHECK_MSG(n <= 40000, "graph too large for dense W/D matrices: " << n);
  LAC_CHECK(prev.n() == pn);
  LAC_CHECK(static_cast<int>(new_to_old.size()) == n);

  // Inverse mapping (old vertex -> new vertex, -1 when removed).  The
  // forward mapping must be injective and in range.
  std::vector<int> old_to_new(static_cast<std::size_t>(pn), -1);
  for (int v = 0; v < n; ++v) {
    const int ov = new_to_old[static_cast<std::size_t>(v)];
    if (ov < 0) continue;
    LAC_CHECK(ov < pn);
    LAC_CHECK_MSG(old_to_new[static_cast<std::size_t>(ov)] < 0,
                  "new_to_old maps two vertices onto old vertex " << ov);
    old_to_new[static_cast<std::size_t>(ov)] = v;
  }

  // A vertex is *changed* when its old row context cannot be trusted: it is
  // new, its delay moved, or its out-edges differ under the mapping.
  std::vector<char> changed(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    const int ov = new_to_old[static_cast<std::size_t>(v)];
    if (ov < 0) {
      changed[static_cast<std::size_t>(v)] = 1;
      continue;
    }
    if (prev_g.delay_decips(ov) != g.delay_decips(v)) {
      changed[static_cast<std::size_t>(v)] = 1;
      continue;
    }
    const auto& ne = g.out_edges(v);
    const auto& oe = prev_g.out_edges(ov);
    if (ne.size() != oe.size()) {
      changed[static_cast<std::size_t>(v)] = 1;
      continue;
    }
    for (std::size_t k = 0; k < ne.size(); ++k) {
      const auto& ned = g.edge(ne[k]);
      const auto& oed = prev_g.edge(oe[k]);
      const int mapped_head =
          old_to_new[static_cast<std::size_t>(oed.head)];
      if (mapped_head != ned.head || oed.w != ned.w) {
        changed[static_cast<std::size_t>(v)] = 1;
        break;
      }
    }
  }

  // Affected sources: everything that can reach a changed vertex in g
  // (reverse BFS).  Any other source sees a subgraph isomorphic — same
  // delays, same weights — to what prev_g showed it, so its row transfers.
  std::vector<char> affected = changed;
  std::deque<int> queue;
  for (int v = 0; v < n; ++v)
    if (changed[static_cast<std::size_t>(v)]) queue.push_back(v);
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (const int e : g.in_edges(v)) {
      const int t = g.edge(e).tail;
      if (!affected[static_cast<std::size_t>(t)]) {
        affected[static_cast<std::size_t>(t)] = 1;
        queue.push_back(t);
      }
    }
  }

  WdMatrices out;
  out.n_ = n;
  out.w_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                kUnreachable);
  out.d_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);

  const std::int64_t big = g.total_delay_decips() + 1;
  const std::vector<std::int64_t> h = bellman_ford_potentials(g, big);

  out.t_init_ = 0;
  out.max_vertex_delay_ = 0;
  for (int v = 0; v < n; ++v)
    out.max_vertex_delay_ =
        std::max(out.max_vertex_delay_, g.delay_decips(v));

  std::vector<std::int32_t> t_init_row(static_cast<std::size_t>(n), 0);
  base::parallel_for_chunked(
      exec, static_cast<std::size_t>(n),
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        std::vector<std::int64_t> dist(static_cast<std::size_t>(n));
        for (std::size_t su = chunk_begin; su < chunk_end; ++su) {
          const int u = static_cast<int>(su);
          const std::size_t row =
              static_cast<std::size_t>(u) * static_cast<std::size_t>(n);
          if (affected[su]) {
            t_init_row[su] =
                dijkstra_row(g, big, h, u, dist, &out.w_[row], &out.d_[row]);
            continue;
          }
          // Transfer the old row, permuting columns old -> new.  Columns of
          // removed old vertices are necessarily kUnreachable here (a
          // reachable removed vertex would have marked u affected), and new
          // vertices are unreachable from u for the same reason, so the
          // kUnreachable/0 fill is already correct for them.
          const int ou = new_to_old[su];
          const std::size_t old_row =
              static_cast<std::size_t>(ou) * static_cast<std::size_t>(pn);
          for (int ov = 0; ov < pn; ++ov) {
            const int nv = old_to_new[static_cast<std::size_t>(ov)];
            if (nv < 0) continue;
            const std::int32_t w =
                prev.w_[old_row + static_cast<std::size_t>(ov)];
            if (w == kUnreachable) continue;
            const std::int32_t d =
                prev.d_[old_row + static_cast<std::size_t>(ov)];
            out.w_[row + static_cast<std::size_t>(nv)] = w;
            out.d_[row + static_cast<std::size_t>(nv)] = d;
            if (w == 0) t_init_row[su] = std::max(t_init_row[su], d);
          }
        }
      });
  for (const std::int32_t t : t_init_row)
    out.t_init_ = std::max(out.t_init_, t);

  if (rows_rebuilt != nullptr) {
    std::int64_t rebuilt = 0;
    for (const char a : affected) rebuilt += a;
    *rows_rebuilt = rebuilt;
  }
  return out;
}

}  // namespace lac::retime
