#include "retime/wd_matrices.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "base/check.h"
#include "base/parallel.h"

namespace lac::retime {

WdMatrices WdMatrices::compute(const RetimingGraph& g,
                               const base::ExecPolicy& exec) {
  const int n = g.num_vertices();
  // Dense storage is O(n^2) * 8 bytes; refuse sizes that would silently
  // exhaust memory (50k vertices ~ 20 GB) — callers at that scale should
  // stream constraints per source instead.
  LAC_CHECK_MSG(n <= 40000, "graph too large for dense W/D matrices: " << n);
  WdMatrices out;
  out.n_ = n;
  out.w_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                kUnreachable);
  out.d_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);

  const std::int64_t big = g.total_delay_decips() + 1;

  // Scalarised edge cost: w*BIG - d(tail).  Negative-cost edges exist
  // (w = 0), but every cycle carries at least one register so cycle costs
  // are >= BIG - Σd > 0: no negative cycles.
  auto cost = [&](int e) {
    const auto& ed = g.edge(e);
    return static_cast<std::int64_t>(ed.w) * big -
           static_cast<std::int64_t>(g.delay_decips(ed.tail));
  };

  // Bellman–Ford potentials from a virtual source (all vertices at 0).
  std::vector<std::int64_t> h(static_cast<std::size_t>(n), 0);
  {
    std::vector<int> relax_count(static_cast<std::size_t>(n), 0);
    std::vector<char> in_queue(static_cast<std::size_t>(n), 1);
    std::deque<int> queue;
    for (int v = 0; v < n; ++v) queue.push_back(v);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      in_queue[static_cast<std::size_t>(u)] = 0;
      for (const int e : g.out_edges(u)) {
        const int v = g.edge(e).head;
        const std::int64_t nd = h[static_cast<std::size_t>(u)] + cost(e);
        if (nd < h[static_cast<std::size_t>(v)]) {
          h[static_cast<std::size_t>(v)] = nd;
          LAC_CHECK_MSG(++relax_count[static_cast<std::size_t>(v)] <= n,
                        "register-free cycle: not a valid sequential circuit");
          if (!in_queue[static_cast<std::size_t>(v)]) {
            in_queue[static_cast<std::size_t>(v)] = 1;
            queue.push_back(v);
          }
        }
      }
    }
  }

  // Per-source Dijkstra with reduced costs.  Each source u writes only its
  // own row of W/D plus its own slot of t_init_row, so sources are
  // independent and run under the caller's ExecPolicy; the t_init max is
  // reduced sequentially afterwards in source order.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  using Item = std::pair<std::int64_t, int>;
  out.t_init_ = 0;
  out.max_vertex_delay_ = 0;
  for (int v = 0; v < n; ++v)
    out.max_vertex_delay_ =
        std::max(out.max_vertex_delay_, g.delay_decips(v));

  std::vector<std::int32_t> t_init_row(static_cast<std::size_t>(n), 0);
  base::parallel_for_chunked(
      exec, static_cast<std::size_t>(n),
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        // One scratch buffer per chunk, reused across its sources.
        std::vector<std::int64_t> dist(static_cast<std::size_t>(n));
        for (std::size_t su = chunk_begin; su < chunk_end; ++su) {
          const int u = static_cast<int>(su);
          std::fill(dist.begin(), dist.end(), kInf);
          dist[static_cast<std::size_t>(u)] = 0;
          std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
          heap.push({0, u});
          while (!heap.empty()) {
            const auto [dd, x] = heap.top();
            heap.pop();
            if (dd != dist[static_cast<std::size_t>(x)]) continue;
            for (const int e : g.out_edges(x)) {
              const int y = g.edge(e).head;
              const std::int64_t rc = cost(e) +
                                      h[static_cast<std::size_t>(x)] -
                                      h[static_cast<std::size_t>(y)];
              LAC_CHECK(rc >= 0);
              const std::int64_t nd = dd + rc;
              if (nd < dist[static_cast<std::size_t>(y)]) {
                dist[static_cast<std::size_t>(y)] = nd;
                heap.push({nd, y});
              }
            }
          }
          const std::size_t row =
              static_cast<std::size_t>(u) * static_cast<std::size_t>(n);
          for (int v = 0; v < n; ++v) {
            if (dist[static_cast<std::size_t>(v)] >= kInf) continue;
            // Undo the reweighting to recover the true scalar distance.
            const std::int64_t true_dist = dist[static_cast<std::size_t>(v)] -
                                           h[static_cast<std::size_t>(u)] +
                                           h[static_cast<std::size_t>(v)];
            // Decode (W, S): dist = W*BIG - S with 0 <= S < BIG.
            const std::int64_t w64 = (true_dist + big - 1) / big;
            const std::int64_t s = w64 * big - true_dist;
            LAC_CHECK(w64 >= 0 && s >= 0 && s < big);
            const std::int64_t d64 = s + g.delay_decips(v);
            out.w_[row + static_cast<std::size_t>(v)] =
                static_cast<std::int32_t>(w64);
            out.d_[row + static_cast<std::size_t>(v)] =
                static_cast<std::int32_t>(d64);
            if (w64 == 0)
              t_init_row[su] =
                  std::max(t_init_row[su], static_cast<std::int32_t>(d64));
          }
        }
      });
  for (const std::int32_t t : t_init_row)
    out.t_init_ = std::max(out.t_init_, t);
  return out;
}

}  // namespace lac::retime
