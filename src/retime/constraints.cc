#include "retime/constraints.h"

#include <algorithm>

#include "base/check.h"
#include "graph/diff_constraints.h"

namespace lac::retime {

ConstraintSet build_constraints(const RetimingGraph& g, const WdMatrices& wd,
                                std::int32_t period_decips,
                                const ConstraintOptions& opt) {
  const int n = g.num_vertices();
  LAC_CHECK(wd.n() == n);
  // Leiserson–Saxe constraint sufficiency requires T >= every single
  // vertex delay; below that no retiming can meet the period and the
  // pairwise system would be satisfiable yet meaningless.
  LAC_CHECK_MSG(period_decips >= wd.max_vertex_delay_decips(),
                "target period " << period_decips
                                 << " deci-ps is below the largest unit delay "
                                 << wd.max_vertex_delay_decips());
  ConstraintSet cs;
  cs.num_vars = n;

  for (const auto& e : g.edges()) cs.edge.push_back({e.tail, e.head, e.w});
  for (const int io : g.io_vertices()) {
    cs.io.push_back({io, g.host(), 0});
    cs.io.push_back({g.host(), io, 0});
  }

  auto violates = [&](int u, int v) {
    return wd.w(u, v) != WdMatrices::kUnreachable &&
           wd.d_decips(u, v) > period_decips;
  };

  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v || !violates(u, v)) continue;
      ++cs.clock_before_pruning;
      if (opt.prune) {
        bool implied = false;
        // Target side: (u,x) + edge (x -> v) with a tight weight.
        for (const int e : g.in_edges(v)) {
          const auto& ed = g.edge(e);
          const int x = ed.tail;
          if (x == v || x == u) continue;
          if (violates(u, x) &&
              wd.w(u, v) == wd.w(u, x) + ed.w) {
            implied = true;
            break;
          }
        }
        // Source side: edge (u -> y) + (y,v) with a tight weight.
        if (!implied) {
          for (const int e : g.out_edges(u)) {
            const auto& ed = g.edge(e);
            const int y = ed.head;
            if (y == u || y == v) continue;
            if (violates(y, v) &&
                wd.w(u, v) == ed.w + wd.w(y, v)) {
              implied = true;
              break;
            }
          }
        }
        if (implied) continue;
      }
      cs.clock.push_back({u, v, wd.w(u, v) - 1});
    }
  }
  return cs;
}

namespace {

bool feasible_internal(const ConstraintSet& cs) {
  graph::DiffConstraints dc(cs.num_vars);
  cs.for_each([&](const Constraint& c) { dc.add(c.u, c.v, c.c); });
  return dc.feasible();
}

std::optional<std::vector<int>> solve_labels(const ConstraintSet& cs) {
  graph::DiffConstraints dc(cs.num_vars);
  cs.for_each([&](const Constraint& c) { dc.add(c.u, c.v, c.c); });
  const auto sol = dc.solve();
  if (!sol) return std::nullopt;
  std::vector<int> r(sol->size());
  for (std::size_t i = 0; i < sol->size(); ++i)
    r[i] = static_cast<int>((*sol)[i]);
  return r;
}

}  // namespace

bool period_feasible(const RetimingGraph& g, const WdMatrices& wd,
                     std::int32_t period_decips) {
  if (period_decips < wd.max_vertex_delay_decips()) return false;
  return feasible_internal(build_constraints(g, wd, period_decips));
}

double min_period_retiming(const RetimingGraph& g, const WdMatrices& wd,
                           std::vector<int>* r_out) {
  std::int32_t lo = wd.max_vertex_delay_decips();
  std::int32_t hi = to_decips(wd.t_init_ps());
  LAC_CHECK_MSG(period_feasible(g, wd, hi),
                "T_init must be feasible (identity retiming)");
  while (lo < hi) {
    const std::int32_t mid =
        lo + static_cast<std::int32_t>((static_cast<std::int64_t>(hi) - lo) / 2);
    if (period_feasible(g, wd, mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  if (r_out != nullptr) {
    const auto cs = build_constraints(g, wd, hi);
    auto labels = solve_labels(cs);
    LAC_CHECK(labels.has_value());
    // Normalise so the host label is zero (I/O vertices follow via pinning).
    const int base = (*labels)[static_cast<std::size_t>(g.host())];
    for (auto& x : *labels) x -= base;
    LAC_CHECK(g.is_legal_retiming(*labels));
    *r_out = std::move(*labels);
  }
  return from_decips(hi);
}

}  // namespace lac::retime
