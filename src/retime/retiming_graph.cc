#include "retime/retiming_graph.h"

#include <algorithm>

#include "graph/dag.h"

namespace lac::retime {

RetimingGraph::RetimingGraph() {
  // Vertex 0 is the host.
  kind_.push_back(VertexKind::kHost);
  delay_.push_back(0);
  tile_.push_back(tile::TileId::invalid());
  out_.emplace_back();
  in_.emplace_back();
}

int RetimingGraph::add_vertex(VertexKind kind, double delay_ps,
                              tile::TileId tile) {
  LAC_CHECK(kind != VertexKind::kHost);
  LAC_CHECK(delay_ps >= 0.0);
  const int v = num_vertices();
  kind_.push_back(kind);
  delay_.push_back(to_decips(delay_ps));
  tile_.push_back(tile);
  out_.emplace_back();
  in_.emplace_back();
  return v;
}

int RetimingGraph::add_edge(int tail, int head, int w) {
  LAC_CHECK(tail > 0 && tail < num_vertices());  // host has no edges
  LAC_CHECK(head > 0 && head < num_vertices());
  LAC_CHECK(w >= 0);
  const int e = num_edges();
  edges_.push_back({tail, head, w});
  out_[static_cast<std::size_t>(tail)].push_back(e);
  in_[static_cast<std::size_t>(head)].push_back(e);
  return e;
}

void RetimingGraph::mark_io(int v) {
  LAC_CHECK(v > 0 && v < num_vertices());
  io_.push_back(v);
}

int RetimingGraph::num_interconnect_units() const {
  int n = 0;
  for (const VertexKind k : kind_) n += (k == VertexKind::kInterconnect);
  return n;
}

std::int64_t RetimingGraph::total_weight() const {
  std::int64_t s = 0;
  for (const Edge& e : edges_) s += e.w;
  return s;
}

std::int64_t RetimingGraph::total_delay_decips() const {
  std::int64_t s = 0;
  for (const std::int32_t d : delay_) s += d;
  return s;
}

std::int64_t RetimingGraph::bytes_used() const {
  std::size_t bytes = kind_.size() * sizeof(VertexKind) +
                      delay_.size() * sizeof(std::int32_t) +
                      tile_.size() * sizeof(tile::TileId) +
                      edges_.size() * sizeof(Edge) +
                      io_.size() * sizeof(int);
  bytes += (out_.size() + in_.size()) * sizeof(std::vector<int>);
  for (const std::vector<int>& adj : out_) bytes += adj.size() * sizeof(int);
  for (const std::vector<int>& adj : in_) bytes += adj.size() * sizeof(int);
  return static_cast<std::int64_t>(bytes);
}

bool RetimingGraph::is_legal_retiming(const std::vector<int>& r) const {
  if (static_cast<int>(r.size()) != num_vertices()) return false;
  for (int e = 0; e < num_edges(); ++e)
    if (retimed_weight(e, r) < 0) return false;
  for (const int v : io_)
    if (r[static_cast<std::size_t>(v)] != r[static_cast<std::size_t>(host())])
      return false;
  return true;
}

double RetimingGraph::period_as_is_ps() const {
  std::vector<int> zero(static_cast<std::size_t>(num_vertices()), 0);
  return period_after_ps(zero);
}

double RetimingGraph::period_after_ps(const std::vector<int>& r) const {
  LAC_CHECK(static_cast<int>(r.size()) == num_vertices());
  std::vector<std::pair<int, int>> ff_free;
  for (const Edge& e : edges_) {
    const std::int64_t w =
        static_cast<std::int64_t>(e.w) + r[static_cast<std::size_t>(e.head)] -
        r[static_cast<std::size_t>(e.tail)];
    LAC_CHECK_MSG(w >= 0, "period_after_ps on an illegal retiming");
    if (w == 0) ff_free.emplace_back(e.tail, e.head);
  }
  std::vector<double> delays(static_cast<std::size_t>(num_vertices()));
  for (int v = 0; v < num_vertices(); ++v)
    delays[static_cast<std::size_t>(v)] =
        static_cast<double>(delay_[static_cast<std::size_t>(v)]);
  const auto lp = graph::longest_path_to(num_vertices(), ff_free, delays);
  const double max_decips = *std::max_element(lp.begin(), lp.end());
  return from_decips(static_cast<std::int64_t>(max_decips + 0.5));
}

}  // namespace lac::retime
