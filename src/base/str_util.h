// Small string helpers shared by the .bench parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lac {

// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

// Split on any character in `delims`, dropping empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  std::string_view delims);

// Case-insensitive ASCII equality (bench keywords: DFF vs dff).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

// Upper-case copy.
[[nodiscard]] std::string to_upper(std::string_view s);

// printf-style %.3f without locale surprises.
[[nodiscard]] std::string format_double(double v, int precision);

}  // namespace lac
