// Deterministic parallel-for over a shared thread pool.
//
// The engine targets the pipeline's embarrassingly-parallel layers
// (per-source shortest-path sweeps, per-net route candidates, per-circuit
// suite fan-out) with one hard guarantee: *thread count never changes the
// computation*.  Three mechanisms deliver that:
//
//   1. Tasks are independent by contract (the caller must not share
//      mutable state between indices) and every reduction the engine
//      itself performs — committing per-chunk observability captures —
//      happens on the calling thread in ascending index order.
//   2. Scheduling is work-stealing-free.  With ExecPolicy::deterministic
//      (the default) chunks are assigned to workers by a static
//      round-robin function of (chunk index, worker count); with it off,
//      workers share remaining chunks dynamically, which never changes
//      results or trace order, only load balance.
//   3. Each chunk runs under an obs::ScopedTaskCapture, so spans and
//      metric events buffer per chunk and commit in index order — a run's
//      report is byte-identical (modulo wall-clock values) for any
//      `threads`, including 1.
//
// Nesting: a parallel_for issued from inside a worker task runs inline on
// that worker (no pool re-entry, no deadlock), preserving the same
// per-chunk capture discipline, so nested loops still trace and reduce
// deterministically.
//
// Exceptions: if chunk bodies throw, the first exception in *index* order
// is rethrown on the caller after all workers join; captures from chunks
// that completed before the throwing index are still committed.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "base/exec_policy.h"

namespace lac::base {

// Runs fn(begin, end) over contiguous chunks partitioning [0, n).
// Chunk size comes from policy.chunk (0 = auto: a fixed target chunk
// count, deliberately independent of the worker count so the chunk
// partition — and with it every per-chunk effect, from obs captures to
// scratch buffers allocated per chunk — is identical at any thread
// count).
void parallel_for_chunked(
    const ExecPolicy& policy, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn);

// Runs fn(i) for every i in [0, n).
inline void parallel_for(const ExecPolicy& policy, std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(policy, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

// Maps fn over [0, n) into a vector; out[i] = fn(i).  T must be
// default-constructible and move-assignable.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(const ExecPolicy& policy,
                                          std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(policy, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

// True while the calling thread is executing a pool task; nested
// parallel loops detect this and run inline.
[[nodiscard]] bool inside_parallel_task();

}  // namespace lac::base
