// Runtime invariant checks that stay on in release builds.
//
// EDA data structures are easy to corrupt silently (dangling ids, negative
// edge weights, off-grid coordinates).  `LAC_CHECK` expresses preconditions
// and invariants; violations throw `lac::CheckError` so tests can assert on
// them and applications fail loudly instead of producing wrong layouts.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lac {

class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace lac

#define LAC_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::lac::detail::check_failed(#expr, __FILE__, __LINE__, {});    \
  } while (0)

#define LAC_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream lac_check_os_;                              \
      lac_check_os_ << msg;                                          \
      ::lac::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                  lac_check_os_.str());              \
    }                                                                \
  } while (0)
