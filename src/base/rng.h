// Deterministic pseudo-random number generation.
//
// All stochastic components (netlist generator, simulated-annealing
// floorplanner, FM tie-breaking) take an explicit `Rng&` so that every
// experiment in the paper-reproduction harness is exactly reproducible from
// a seed.  The generator is xoshiro256**, seeded via splitmix64.
#pragma once

#include <cstdint>
#include <limits>

namespace lac {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding avoids correlated low-entropy states.
    std::uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      word = t ^ (t >> 31);
    }
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  // Uniform integer in [0, n).  n must be > 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform_real() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  [[nodiscard]] bool bernoulli(double p) { return uniform_real() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace lac
