#include "base/table.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"

namespace lac {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  LAC_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  LAC_CHECK_MSG(row.size() == header_.size(),
                "row width " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace lac
