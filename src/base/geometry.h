// Planar geometry primitives for floorplanning, tiling and routing.
//
// All coordinates are in database units (double micrometres are avoided in
// the floorplan/tiling layer; we use `double` only for areas/delays).  The
// library works on a Manhattan (rectilinear) metric throughout.
#pragma once

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace lac {

using Coord = std::int64_t;

struct Point {
  Coord x = 0;
  Coord y = 0;

  friend constexpr auto operator<=>(const Point&, const Point&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

// L1 (Manhattan) distance — wirelength metric for global routing.
[[nodiscard]] constexpr Coord manhattan(const Point& a, const Point& b) {
  const Coord dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const Coord dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

// Axis-aligned rectangle, half-open in neither sense: [lo.x, hi.x] x
// [lo.y, hi.y].  A rect with hi < lo on either axis is empty.
struct Rect {
  Point lo;
  Point hi;

  friend constexpr auto operator<=>(const Rect&, const Rect&) = default;

  [[nodiscard]] constexpr Coord width() const { return hi.x - lo.x; }
  [[nodiscard]] constexpr Coord height() const { return hi.y - lo.y; }
  [[nodiscard]] constexpr bool empty() const {
    return hi.x < lo.x || hi.y < lo.y;
  }
  [[nodiscard]] constexpr double area() const {
    if (empty()) return 0.0;
    return static_cast<double>(width()) * static_cast<double>(height());
  }
  [[nodiscard]] constexpr Point center() const {
    return Point{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  }
  [[nodiscard]] constexpr bool contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  // Strict interior overlap: touching boundaries do not count.  This is the
  // right notion for floorplan legality (abutting blocks are legal).
  [[nodiscard]] constexpr bool overlaps(const Rect& o) const {
    return lo.x < o.hi.x && o.lo.x < hi.x && lo.y < o.hi.y && o.lo.y < hi.y;
  }
  [[nodiscard]] constexpr Rect intersect(const Rect& o) const {
    return Rect{{std::max(lo.x, o.lo.x), std::max(lo.y, o.lo.y)},
                {std::min(hi.x, o.hi.x), std::min(hi.y, o.hi.y)}};
  }
  [[nodiscard]] constexpr Rect bounding_union(const Rect& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return Rect{{std::min(lo.x, o.lo.x), std::min(lo.y, o.lo.y)},
                {std::max(hi.x, o.hi.x), std::max(hi.y, o.hi.y)}};
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.lo << ".." << r.hi << ']';
}

}  // namespace lac
