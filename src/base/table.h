// Minimal fixed-width text table writer used by the benchmark harnesses to
// print paper-style result tables (Table 1 and the ablation sweeps).
#pragma once

#include <string>
#include <vector>

namespace lac {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Render with column alignment and a header separator line.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lac
