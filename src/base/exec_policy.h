// Execution policy: how much hardware a pipeline stage may use.
//
// One small value type flows from the CLI (`--threads`, bench_io::parse_cli)
// through PlannerConfig::run (RunControls) into every parallelisable layer
// — the per-source shortest-path sweeps of W/D computation, the global
// router's per-net candidate evaluation, and the bench suite drivers.
//
// Semantics:
//   * threads == 0 (the default, and the meaning of an unset --threads)
//     resolves to std::thread::hardware_concurrency() with a documented
//     floor of 1 (hardware_concurrency() may return 0 on exotic targets).
//   * threads >= 1 pins the worker count exactly.
//   * negative thread counts are a usage error; the CLI rejects them with
//     exit 64 and resolved_threads() throws CheckError.
//
// Determinism contract: results are bitwise-identical for every thread
// count.  `deterministic` (default true) additionally fixes the schedule
// itself — tasks are assigned to workers by a static round-robin function
// of (task count, worker count) with no time-dependent dispatch.  Setting
// it to false permits dynamic work-sharing (still no stealing); outputs
// and observability commit order do not change, only which worker runs
// which task.
#pragma once

#include <cstddef>
#include <thread>

#include "base/check.h"

namespace lac::base {

struct ExecPolicy {
  int threads = 0;           // 0 = auto: hardware_concurrency(), floor 1
  bool deterministic = true; // static schedule; false allows work-sharing
  int chunk = 0;             // tasks per scheduling unit; 0 = auto

  // The worker count this policy resolves to (>= 1).
  [[nodiscard]] int resolved_threads() const {
    LAC_CHECK_MSG(threads >= 0,
                  "ExecPolicy.threads must be >= 0, got " << threads);
    if (threads > 0) return threads;
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }

  // A policy that always runs inline on the calling thread.
  [[nodiscard]] static ExecPolicy sequential() { return {.threads = 1}; }
};

}  // namespace lac::base
