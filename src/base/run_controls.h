// RunControls: the execution-configuration surface shared by the planner,
// the bench drivers and the tools.
//
// Everything that controls *how* a run executes — as opposed to *what* it
// computes — lives here: the parallel execution policy, the observability
// override and the RNG seed.  PlannerConfig embeds one as `run`;
// bench_io::parse_cli fills one from the command line.  Keeping the
// surface in src/base means a tool can configure a run without pulling in
// planner headers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "base/exec_policy.h"
#include "obs/obs.h"

namespace lac::base {

struct RunControls {
  // Thread count / scheduling for every parallelised stage of the run.
  ExecPolicy exec;
  // Tracing + metrics override: kEnv defers to the LAC_OBS environment
  // variable, kOn/kOff force the switch for the duration of the run.
  obs::Override observability = obs::Override::kEnv;
  // Seed for every stochastic stage (partitioning, floorplan annealing).
  std::uint64_t seed = 1;
  // Root-span store capacity (obs::set_max_root_spans).  Spans beyond the
  // cap are timed but not retained; the report counts them in
  // dropped_root_spans and `lacobs summary` warns when that is non-zero.
  std::size_t max_root_spans = 4096;
  // When non-empty, the planner opens the streaming event sink
  // (obs::stream::open) at this path unless one is already active —
  // bench drivers (`--stream`, LAC_OBS_STREAM) open it earlier so the
  // stream covers CLI parsing and input loading too.
  std::string stream_path;
};

}  // namespace lac::base
