#include "base/str_util.h"

#include <cctype>
#include <cstdio>

namespace lac {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s,
                                    std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace lac
