#include "base/parallel.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/memory.h"
#include "obs/task.h"

namespace lac::base {

namespace {

thread_local bool tl_in_task = false;

struct ScopedInTask {
  bool prev = tl_in_task;
  ScopedInTask() { tl_in_task = true; }
  ~ScopedInTask() { tl_in_task = prev; }
};

// A fixed-function thread pool: helpers park on a condition variable and,
// per job, run a caller-supplied body for their slot.  There is no task
// queue and no stealing — the body itself walks the chunk space, either
// statically (slot-strided) or via a shared atomic cursor.  One job runs
// at a time; concurrent top-level parallel_for calls serialise on
// `run_mu_`.  The pool grows on demand up to the largest slot count ever
// requested and is intentionally leaked so worker lifetime never races
// static destruction.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool* pool = new ThreadPool;
    return *pool;
  }

  // Runs body(slot) for slots 1..slots-1 on helpers while the caller is
  // expected to run body(0) itself via the returned guard; blocks until
  // every helper slot finished.
  void run(int slots, const std::function<void(int)>& body) {
    std::lock_guard run_lock(run_mu_);
    {
      std::lock_guard lock(mu_);
      grow_locked(slots - 1);
      body_ = &body;
      slots_ = slots;
      remaining_ = slots - 1;
      ++generation_;
    }
    cv_job_.notify_all();
    body(0);
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    body_ = nullptr;
  }

 private:
  ThreadPool() = default;

  void grow_locked(int helpers_needed) {
    while (static_cast<int>(threads_.size()) < helpers_needed) {
      const int index = static_cast<int>(threads_.size());
      threads_.emplace_back([this, index] { worker_main(index); });
    }
  }

  void worker_main(int pool_index) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* body = nullptr;
      int slot = -1;
      {
        std::unique_lock lock(mu_);
        cv_job_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        if (pool_index + 1 < slots_) {
          body = body_;
          slot = pool_index + 1;
        }
      }
      if (body == nullptr) continue;  // not a participant of this job
      (*body)(slot);
      {
        std::lock_guard lock(mu_);
        --remaining_;
      }
      cv_done_.notify_one();
    }
  }

  std::mutex run_mu_;  // serialises whole jobs
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* body_ = nullptr;
  int slots_ = 0;
  int remaining_ = 0;
  std::uint64_t generation_ = 0;
};

struct ChunkSpace {
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::size_t num_chunks = 0;

  [[nodiscard]] std::size_t begin(std::size_t c) const { return c * chunk; }
  [[nodiscard]] std::size_t end(std::size_t c) const {
    return std::min(n, (c + 1) * chunk);
  }
};

// Auto-chunk target: enough chunks that static round-robin stays balanced
// for any realistic worker count, few enough that per-chunk capture and
// commit overhead stays negligible.
constexpr std::size_t kAutoChunkTarget = 32;

ChunkSpace make_chunks(const ExecPolicy& policy, std::size_t n) {
  ChunkSpace cs;
  cs.n = n;
  if (policy.chunk > 0) {
    cs.chunk = static_cast<std::size_t>(policy.chunk);
  } else {
    // The chunk partition must NOT depend on the worker count: per-chunk
    // effects — obs task captures, scratch buffers task bodies allocate
    // per chunk (wd_matrices.cc) — are part of the deterministic record,
    // so the same n must always split into the same chunks.  A fixed
    // target keeps round-robin balanced at any thread count the pipeline
    // realistically runs with.
    cs.chunk = std::max<std::size_t>(1, n / kAutoChunkTarget);
  }
  cs.num_chunks = (n + cs.chunk - 1) / cs.chunk;
  return cs;
}

}  // namespace

bool inside_parallel_task() { return tl_in_task; }

void parallel_for_chunked(
    const ExecPolicy& policy, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const ChunkSpace cs = make_chunks(policy, n);
  const int resolved = policy.resolved_threads();
  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolved), cs.num_chunks));

  auto run_chunk = [&](std::size_t c, obs::TaskCapture& cap,
                       std::exception_ptr& err) {
    ScopedInTask in_task;
    obs::ScopedTaskCapture scope(&cap);
    try {
      fn(cs.begin(c), cs.end(c));
    } catch (...) {
      err = std::current_exception();
    }
  };

  if (workers <= 1 || inside_parallel_task()) {
    // Inline execution follows the exact discipline of the pooled path —
    // per-chunk capture, commit in index order — so reports are
    // byte-identical across thread counts.
    for (std::size_t c = 0; c < cs.num_chunks; ++c) {
      obs::TaskCapture cap;
      std::exception_ptr err;
      run_chunk(c, cap, err);
      if (err) std::rethrow_exception(err);
      obs::commit_task_capture(std::move(cap));
    }
    return;
  }

  std::vector<obs::TaskCapture> captures;
  std::vector<std::exception_ptr> errors;
  std::atomic<std::size_t> cursor{0};

  {
    // Pooled-only engine bookkeeping (the capture/error arrays, the
    // type-erased body, lazily created pool threads) is off the memory
    // books: the inline path has none of it, and span allocation deltas
    // must not depend on which path ran.  Chunk bodies themselves account
    // normally — ScopedTaskCapture detaches into a clean context.
    obs::memory::PauseScope mem_pause;
    captures.resize(cs.num_chunks);
    errors.resize(cs.num_chunks);

    const std::function<void(int)> body = [&](int slot) {
      if (policy.deterministic) {
        // Static round-robin: chunk c belongs to worker c % workers.  No
        // time-dependent dispatch at all.
        for (std::size_t c = static_cast<std::size_t>(slot);
             c < cs.num_chunks; c += static_cast<std::size_t>(workers))
          run_chunk(c, captures[c], errors[c]);
      } else {
        // Dynamic work-sharing (still stealing-free): a shared cursor hands
        // out chunks in order.  Assignment is time-dependent; results and
        // committed observability order are not.
        for (;;) {
          const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
          if (c >= cs.num_chunks) break;
          run_chunk(c, captures[c], errors[c]);
        }
      }
    };

    ThreadPool::instance().run(workers, body);
  }

  for (std::size_t c = 0; c < cs.num_chunks; ++c) {
    if (errors[c]) std::rethrow_exception(errors[c]);
    obs::commit_task_capture(std::move(captures[c]));
  }

  {
    // The arrays' own storage was allocated under the pause above; free
    // it under a pause too so the books stay balanced.
    obs::memory::PauseScope mem_pause;
    std::vector<obs::TaskCapture>().swap(captures);
    std::vector<std::exception_ptr>().swap(errors);
  }
}

}  // namespace lac::base
