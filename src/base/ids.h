// Strongly-typed integer identifiers.
//
// Every subsystem in this library indexes its objects with dense integer
// ids (cells, nets, vertices, tiles, blocks...).  Using a raw `int`
// everywhere invites silent cross-indexing bugs (passing a net id where a
// cell id is expected), so each domain declares its own `Id` instantiation:
//
//   struct CellTag {};
//   using CellId = lac::Id<CellTag>;
//
// An `Id` is trivially copyable, ordered, hashable, and convertible to its
// underlying index only through the explicit `value()` accessor.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace lac {

template <typename Tag>
class Id {
 public:
  using value_type = std::int32_t;

  // Default-constructed ids are invalid; `valid()` distinguishes them.
  constexpr Id() = default;
  constexpr explicit Id(value_type v) : v_(v) {}

  [[nodiscard]] constexpr value_type value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ >= 0; }

  // Index into dense arrays.  Only meaningful for valid ids.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(v_);
  }

  [[nodiscard]] static constexpr Id invalid() { return Id{}; }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  value_type v_ = -1;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

}  // namespace lac

template <typename Tag>
struct std::hash<lac::Id<Tag>> {
  std::size_t operator()(lac::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
