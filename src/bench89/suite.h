// Benchmark circuits for the paper reproduction.
//
// The paper evaluates on ISCAS89 circuits treated as RT-level netlists.
// This module provides:
//   * `s27()` — the tiny public ISCAS89 circuit s27, embedded verbatim,
//     used as a parser fixture and end-to-end smoke test;
//   * `table1_suite()` — ten seeded synthetic stand-ins named yNNN after
//     the ISCAS89 size points (y298 ... y1423); gate/DFF/IO counts and
//     logic depths match the published circuit statistics.  See DESIGN.md
//     §4 for why this substitution preserves the paper's comparison.
// Real .bench files, when available, can be loaded with
// netlist::parse_bench_file and run through exactly the same harness.
#pragma once

#include <string>
#include <vector>

#include "netlist/generator.h"
#include "netlist/netlist.h"

namespace lac::bench89 {

[[nodiscard]] netlist::Netlist s27();

struct SuiteEntry {
  netlist::GenSpec spec;
  int recommended_blocks = 9;  // partition granularity for the planner
};

// The ten-circuit Table-1 suite, smallest first.
[[nodiscard]] const std::vector<SuiteEntry>& table1_suite();

// Loads one suite circuit (generation is deterministic).
[[nodiscard]] netlist::Netlist load(const SuiteEntry& entry);

// Lookup by name (e.g. "y641"); throws CheckError if unknown.
[[nodiscard]] const SuiteEntry& entry_by_name(const std::string& name);

}  // namespace lac::bench89
