#include "bench89/suite.h"

#include "base/check.h"
#include "netlist/bench_io.h"

namespace lac::bench89 {

namespace {

constexpr const char* kS27Bench = R"(# s27 — ISCAS89
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

SuiteEntry make(const char* name, int pi, int po, int gates, int dffs,
                int depth, std::uint64_t seed, int blocks) {
  SuiteEntry e;
  e.spec.name = name;
  e.spec.num_inputs = pi;
  e.spec.num_outputs = po;
  e.spec.num_gates = gates;
  e.spec.num_dffs = dffs;
  e.spec.depth = depth;
  e.spec.seed = seed;
  e.recommended_blocks = blocks;
  return e;
}

}  // namespace

netlist::Netlist s27() { return netlist::parse_bench(kS27Bench, "s27"); }

const std::vector<SuiteEntry>& table1_suite() {
  // Size points follow the published ISCAS89 statistics (gates, DFFs, I/O,
  // approximate logic depth) for the circuits the paper's table spans.
  static const std::vector<SuiteEntry> suite = {
      make("y298", 3, 6, 119, 14, 9, 298, 6),
      make("y386", 7, 7, 159, 6, 11, 386, 6),
      make("y400", 3, 6, 164, 21, 9, 400, 6),
      make("y526", 3, 6, 193, 21, 9, 526, 8),
      make("y641", 35, 24, 379, 19, 23, 641, 9),
      make("y838", 34, 1, 446, 32, 25, 838, 9),
      make("y953", 16, 23, 395, 29, 16, 953, 9),
      make("y1196", 14, 14, 529, 18, 24, 1196, 12),
      make("y1269", 18, 10, 569, 37, 18, 1269, 12),
      make("y1423", 17, 5, 657, 74, 30, 1423, 12),
  };
  return suite;
}

netlist::Netlist load(const SuiteEntry& entry) {
  return netlist::generate_netlist(entry.spec);
}

const SuiteEntry& entry_by_name(const std::string& name) {
  for (const auto& e : table1_suite())
    if (e.spec.name == name) return e;
  LAC_CHECK_MSG(false, "unknown suite circuit: " << name);
}

}  // namespace lac::bench89
