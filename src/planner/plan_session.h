// PlanSession: a long-lived planning session supporting journaled ECO
// (engineering change order) deltas with incremental re-planning.
//
// A session wraps a completed plan.  Between begin_eco() and end_eco() the
// caller records deltas — cell insert/remove/resize, buffer insertion,
// block resize, tile-capacity scaling, floorplan expansion — and end_eco()
// re-plans, invalidating only what the journal touched:
//   * only nets whose tiles or endpoints changed are re-routed
//     (route::GlobalRouter::route_all_incremental);
//   * repeater segments replay on nets whose tree and tile context is
//     unchanged (repeater::RepeaterPlanner::try_replay);
//   * W/D rows rebuild only for sources that can reach a changed vertex
//     (retime::WdMatrices::compute_incremental);
//   * the LAC loop resolves on the retained warm min-cost-flow session
//     when the constraint system is content-identical.
//
// The hard guarantee (docs/ECO.md, CI-gated): an ECO re-plan is
// bit-identical to a cold re-plan of the same edited inputs — replan_cold()
// produces the reference.  The eco.* counters and EcoStats quantify the
// work actually skipped.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "planner/interconnect_planner.h"
#include "planner/pipeline.h"

namespace lac::planner {

// One parsed journal operation (see parse_eco_journal for the text form).
struct EcoEdit {
  enum class Kind {
    kResizeBlock,           // resize_block <block> <new_area>
    kScaleBlockCapacity,    // scale_capacity <block> <factor>
    kScaleChannelCapacity,  // scale_capacity channel <factor>
    kResizeCell,            // resize_cell <name> <scale>
    kAddCell,               // add_cell <name> <type> <block> [fanin...]
    kRemoveCell,            // remove_cell <name>
    kBuffer,                // buffer <name> <driver> <sink>
    kExpandBlocks,          // expand_blocks
  };
  Kind kind = Kind::kExpandBlocks;
  int block = -1;                 // kResizeBlock/kScaleBlockCapacity/kAddCell
  double value = 0.0;             // area / factor / scale
  std::string name;               // cell name for cell edits
  netlist::CellType cell_type = netlist::CellType::kBuf;  // kAddCell
  std::vector<std::string> fanins;                        // kAddCell
  std::string driver;             // kBuffer
  std::string sink;               // kBuffer
};

// Parses an ECO journal: one operation per line in the forms listed above,
// '#' starts a comment, blank lines ignored.  Returns nullopt and sets
// `error` ("line N: why") on the first malformed line.  Name/block
// resolution is NOT checked here — apply() validates against the session.
[[nodiscard]] std::optional<std::vector<EcoEdit>> parse_eco_journal(
    const std::string& text, std::string* error);

class PlanSession {
 public:
  // Runs the full cold plan — same stages, spans and result as
  // InterconnectPlanner::plan(nl) — and captures the reuse caches.
  explicit PlanSession(const netlist::Netlist& nl, PlannerConfig config = {});

  [[nodiscard]] const PlanResult& result() const { return result_; }
  [[nodiscard]] const netlist::Netlist& netlist() const { return nl_; }
  [[nodiscard]] const PlannerConfig& config() const { return config_; }
  // Work accounting of the last end_eco() (zeros before the first one).
  [[nodiscard]] const EcoStats& last_eco() const { return eco_; }
  [[nodiscard]] bool in_eco() const { return in_eco_; }

  // Opens a journal.  Deltas below are only legal while one is open; they
  // mutate the session's planning inputs immediately but nothing re-plans
  // until end_eco().
  void begin_eco();

  // Resizes a soft block, in place when adjacent free space allows (the
  // cheap path: chip outline and every route stay reusable); falls back to
  // an incremental re-floorplan otherwise.
  void resize_block(int block, double new_area);
  // Scales the insertion capacity of every tile of `block` / every channel
  // tile.  Factors compose across edits.
  void scale_block_capacity(int block, double factor);
  void scale_channel_capacity(double factor);
  // Scales the area a cell contributes to its block's used area (and hence
  // the block tiles' remaining capacity).
  void resize_cell(const std::string& name, double scale);
  // Adds a cell to `block`, connected to the named fanins.
  netlist::CellId add_cell(const std::string& name, netlist::CellType type,
                           int block, const std::vector<std::string>& fanins);
  // Removes a cell (fanouts are bypassed to its single fanin — see
  // Netlist::remove_cell for legality).
  void remove_cell(const std::string& name);
  // Inserts a buffer named `name` on the driver->sink connection, placed in
  // the driver's block.
  netlist::CellId add_buffer(const std::string& name,
                             const std::string& driver,
                             const std::string& sink);
  // The paper's iteration-2 floorplan expansion as a delta: violating soft
  // blocks grow by their overflow, channel overflow raises the whitespace
  // target, and the floorplan re-anneals incrementally.  No-op when the
  // last result already fits.
  void expand_blocks();
  // Applies one parsed journal operation.
  void apply(const EcoEdit& edit);

  // Closes the journal and re-plans incrementally.  The returned result is
  // bit-identical (quality outputs) to replan_cold() on the same state.
  const PlanResult& end_eco();

  // Cold re-plan of the session's current (possibly edited) inputs with no
  // caches — the equivalence reference for end_eco().
  [[nodiscard]] PlanResult replan_cold() const;

 private:
  PlannerConfig config_;
  netlist::Netlist nl_;
  std::vector<int> block_of_;  // cell index -> block (pinned partition)
  floorplan::Floorplan fp_;    // current (possibly edited) floorplan
  EcoOverrides overrides_;
  PlanResult result_;
  PipelineCache cache_;
  EcoStats eco_;
  bool in_eco_ = false;
  int journal_edits_ = 0;
};

}  // namespace lac::planner
