// Shared planning pipeline: the single implementation behind both the cold
// InterconnectPlanner::plan() path and the incremental PlanSession ECO
// re-plan path.
//
// The pipeline (tile grid -> routing -> repeaters -> retiming graph ->
// W/D -> constraints -> min-area vs LAC retiming) is a deterministic
// function of (netlist, block assignment, floorplan, config, overrides).
// The caches below never change *what* it computes — only how much work
// the computation performs:
//   * route:    a RouteLog of the previous run lets provably-unchanged nets
//               skip their Dijkstra (route::route_all_incremental);
//   * repeater: a PlanTrace per net lets nets whose tree and tile context
//               are unchanged replay their previous plan;
//   * W/D:      rows whose source cannot reach any changed vertex are
//               copied (WdMatrices::compute_incremental);
//   * LAC:      a WeightedMinAreaSolver session keeps the min-cost flow
//               warm across re-plans when the constraint system is
//               content-identical.
// Every reuse path is gated on an exactness proof, so an ECO re-plan is
// bit-identical to a cold run of the pipeline on the same inputs — the
// invariant the eco-equivalence CI gate enforces.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "floorplan/floorplanner.h"
#include "netlist/netlist.h"
#include "planner/interconnect_planner.h"
#include "repeater/repeater_planner.h"
#include "retime/constraints.h"
#include "retime/wd_matrices.h"
#include "retime/weighted_min_area_solver.h"
#include "route/global_router.h"

namespace lac::planner {

// Non-structural ECO knobs: edits that change areas/capacities without
// touching netlist connectivity or the floorplan outline.  All fields
// default to "no change"; the same overrides feed both the incremental
// re-plan and its cold reference, so they cannot break equivalence.
struct EcoOverrides {
  // Per cell index: multiplier on the cell's area when deriving soft-block
  // used area (and hence block tile capacities).  Shorter than num_cells
  // (or empty) means 1.0 for the missing tail.
  std::vector<double> cell_area_scale;
  // Per block: multiplier applied to every tile of that block after grid
  // construction.  Empty means 1.0 everywhere.
  std::vector<double> block_capacity_scale;
  // Multiplier applied to every channel tile.
  double channel_capacity_scale = 1.0;

  [[nodiscard]] bool trivial() const {
    for (const double s : cell_area_scale)
      if (s != 1.0) return false;
    for (const double s : block_capacity_scale)
      if (s != 1.0) return false;
    return channel_capacity_scale == 1.0;
  }
};

// Work accounting of one incremental re-plan.  Pure effort metadata — none
// of these feed back into planning decisions.
struct EcoStats {
  long long invalidated_nets = 0;   // nets with a changed/new route request
  long long reused_routes = 0;      // initial-pass trees reused from the log
  long long reused_reroutes = 0;    // rip-up reroutes reused from the log
  long long cold_routes = 0;        // initial-pass Dijkstra runs
  long long cold_reroutes = 0;      // rip-up Dijkstra runs
  bool route_full_fallback = false; // grid dims changed: batched cold route
  long long repeater_replays = 0;   // nets whose repeater plan replayed
  long long repeater_replans = 0;   // nets re-planned from scratch
  std::int64_t wd_rows_rebuilt = 0; // per-source Dijkstra rows recomputed
  std::int64_t wd_rows_total = 0;   // == graph vertex count
  bool lac_warm = false;            // LAC ran on the retained warm session
};

// Reusable state carried between pipeline runs by a PlanSession.  The
// retiming graph itself lives in PlanResult; everything here is keyed to
// (or parallel with) that result.
struct PipelineCache {
  route::RouteLog route_log;                      // route replay log
  std::vector<route::RouteTree> trees;            // parallel to route_log.requests
  std::vector<repeater::BufferedNet> buffered;    // parallel to route_log.requests
  std::vector<repeater::PlanTrace> traces;        // parallel to route_log.requests
  // Per net (parallel to route_log.requests): interconnect-unit vertices in
  // creation order — the positional vertex correspondence for W/D reuse.
  std::vector<std::vector<int>> net_unit_vertices;
  std::vector<int> cell_vertex;                   // cell index -> vertex or -1
  retime::WdMatrices wd;
  retime::ConstraintSet cs;
  // Warm min-cost-flow session of the last LAC run; rebind() it whenever
  // the graph/constraints move to a new address.
  std::optional<retime::WeightedMinAreaSolver> lac_session;
};

namespace detail {

// Steps 1–2 of a cold plan: FM partition, block sizing, floorplan — with
// the same stage spans plan() has always emitted.
struct PartitionedFloorplan {
  std::vector<int> block_of;
  floorplan::Floorplan fp;
};
[[nodiscard]] PartitionedFloorplan partition_and_floorplan(
    const netlist::Netlist& nl, const PlannerConfig& config);

// Expansion amounts for the paper's iteration-2 replan, derived from the
// LAC violations of `prev`: violating soft blocks grow by 1.5x their
// overflow, channel/hard overflow raises the whitespace target.
struct ExpansionSpec {
  std::vector<double> new_area;  // per block
  double extra_whitespace = 0.0;
};
[[nodiscard]] ExpansionSpec expansion_spec(const PlanResult& prev);

// The pipeline proper.  All five trailing pointers may be null:
//   * overrides  — ECO knobs (null == no overrides);
//   * prev_cache / prev_res — previous run to reuse work from (both or
//     neither; prev_cache is non-const because a matching LAC session is
//     *moved* into out_cache rather than rebuilt);
//   * out_cache  — receives this run's reusable state;
//   * eco        — receives the work accounting (with prev_* set, the
//     eco.* counters and per-stage reuse annotations are also emitted).
// With every pointer null this is byte-for-byte the classic cold
// plan_on_floorplan body.
[[nodiscard]] PlanResult run_pipeline(
    const netlist::Netlist& nl, std::vector<int> block_of,
    floorplan::Floorplan fp, const PlannerConfig& config,
    const EcoOverrides* overrides, PipelineCache* prev_cache,
    const PlanResult* prev_res, PipelineCache* out_cache, EcoStats* eco);

}  // namespace detail
}  // namespace lac::planner
