// Independent verification of a PlanResult.
//
// Re-derives every promise the planner makes from the artifacts themselves
// — nothing is trusted from the cached summary fields:
//   * floorplan legality (disjoint blocks inside the chip);
//   * retiming legality and clock-period compliance for both solutions;
//   * timing landmark ordering T_min <= T_clk <= T_init;
//   * flip-flop area accounting matches an independent recomputation;
//   * LAC dominance: never more violating flip-flops than the min-area
//     baseline (its first weighted solve IS that baseline).
//
// Used by tests and by examples that want a one-call sanity gate after
// planning, and handy when replaying plans across library versions.
#pragma once

#include <string>
#include <vector>

#include "planner/interconnect_planner.h"

namespace lac::planner {

struct VerifyReport {
  std::vector<std::string> issues;  // empty == verified
  [[nodiscard]] bool ok() const { return issues.empty(); }
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] VerifyReport verify_plan(const PlanResult& res,
                                       const PlannerConfig& config);

}  // namespace lac::planner
