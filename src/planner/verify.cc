#include "planner/verify.h"

#include <cmath>
#include <sstream>

#include "retime/ff_placement.h"

namespace lac::planner {

namespace {

// 0.1 ps quantisation plus float formatting head-room.
constexpr double kPeriodTolerancePs = 0.11;

void check_reports_equal(const retime::AreaReport& got,
                         const retime::AreaReport& expect, const char* tag,
                         std::vector<std::string>& issues) {
  auto complain = [&](const std::string& what) {
    issues.push_back(std::string(tag) + ": " + what);
  };
  if (got.n_f != expect.n_f) complain("N_F mismatch vs recomputation");
  if (got.n_fn != expect.n_fn) complain("N_FN mismatch vs recomputation");
  if (got.n_foa != expect.n_foa) complain("N_FOA mismatch vs recomputation");
  if (got.ac.size() != expect.ac.size()) {
    complain("tile count mismatch");
    return;
  }
  for (std::size_t t = 0; t < got.ac.size(); ++t)
    if (std::abs(got.ac[t] - expect.ac[t]) > 1e-6) {
      complain("AC(t) mismatch at tile " + std::to_string(t));
      break;
    }
}

}  // namespace

std::string VerifyReport::to_string() const {
  if (ok()) return "plan verified: all invariants hold";
  std::ostringstream os;
  os << issues.size() << " issue(s):\n";
  for (const auto& i : issues) os << "  - " << i << '\n';
  return os.str();
}

VerifyReport verify_plan(const PlanResult& res, const PlannerConfig& config) {
  VerifyReport rep;
  auto complain = [&](const std::string& what) { rep.issues.push_back(what); };

  // Floorplan.
  const auto& fp = res.fp;
  for (int a = 0; a < fp.num_blocks(); ++a) {
    const auto& ra = fp.placement[static_cast<std::size_t>(a)];
    if (ra.lo.x < fp.chip.lo.x || ra.lo.y < fp.chip.lo.y ||
        ra.hi.x > fp.chip.hi.x || ra.hi.y > fp.chip.hi.y)
      complain("block " + std::to_string(a) + " outside chip");
    for (int b = a + 1; b < fp.num_blocks(); ++b)
      if (ra.overlaps(fp.placement[static_cast<std::size_t>(b)]))
        complain("blocks " + std::to_string(a) + " and " + std::to_string(b) +
                 " overlap");
  }

  // Timing landmarks.
  if (!(res.t_min_ps <= res.t_clk_ps + 1e-9 &&
        res.t_clk_ps <= res.t_init_ps + 1e-9))
    complain("timing landmarks not ordered: T_min <= T_clk <= T_init");

  // Retimings.
  for (const auto* outcome : {&res.min_area, &res.lac}) {
    const char* tag = outcome == &res.min_area ? "min-area" : "LAC";
    if (!res.graph.is_legal_retiming(outcome->r)) {
      complain(std::string(tag) + ": illegal retiming");
      continue;
    }
    const double p = res.graph.period_after_ps(outcome->r);
    if (p > res.t_clk_ps + kPeriodTolerancePs)
      complain(std::string(tag) + ": period " + std::to_string(p) +
               " exceeds T_clk " + std::to_string(res.t_clk_ps));
  }

  // Area accounting vs independent recomputation.
  if (res.grid.has_value()) {
    if (res.graph.is_legal_retiming(res.min_area.r))
      check_reports_equal(
          res.min_area.report,
          retime::place_flipflops(res.graph, *res.grid, res.min_area.r,
                                  config.tech.dff_area),
          "min-area", rep.issues);
    if (res.graph.is_legal_retiming(res.lac.r))
      check_reports_equal(res.lac.report,
                          retime::place_flipflops(res.graph, *res.grid,
                                                  res.lac.r,
                                                  config.tech.dff_area),
                          "LAC", rep.issues);
  } else {
    complain("tile grid missing from result");
  }

  // LAC dominance over the baseline.
  if (res.lac.report.n_foa > res.min_area.report.n_foa)
    complain("LAC has more violating flip-flops than the min-area baseline");

  return rep;
}

}  // namespace lac::planner
