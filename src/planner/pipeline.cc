#include "planner/pipeline.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "base/check.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "partition/fm.h"
#include "retime/collapse.h"
#include "retime/min_area.h"

namespace lac::planner {

namespace {

double cell_area_of(const netlist::Netlist& nl, netlist::CellId c,
                    const timing::Technology& tech) {
  switch (nl.type(c)) {
    case netlist::CellType::kDff: return tech.dff_area;
    case netlist::CellType::kInput:
    case netlist::CellType::kOutput: return tech.dff_area * 0.25;
    default: return tech.gate_area;
  }
}

// Area a cell contributes when *sizing* blocks.  The per-edge retiming model
// counts a register once per fanout edge (no sharing — paper Eqn. (3)), so
// blocks must be provisioned for that demand or the area constraints are
// unsatisfiable by construction rather than by flip-flop placement.
double sizing_area_of(const netlist::Netlist& nl, netlist::CellId c,
                      const timing::Technology& tech, double provision) {
  if (nl.type(c) == netlist::CellType::kDff) {
    const auto fanouts = nl.fanouts(c).size();
    return tech.dff_area * provision *
           static_cast<double>(std::max<std::size_t>(1, fanouts));
  }
  return cell_area_of(nl, c, tech);
}

double area_scale_of(const EcoOverrides* overrides, std::size_t cell_index) {
  if (overrides == nullptr ||
      cell_index >= overrides->cell_area_scale.size())
    return 1.0;
  return overrides->cell_area_scale[cell_index];
}

}  // namespace

namespace detail {

PartitionedFloorplan partition_and_floorplan(const netlist::Netlist& nl,
                                             const PlannerConfig& config) {
  // 1. Partition cells into circuit blocks.
  std::vector<double> cell_area(static_cast<std::size_t>(nl.num_cells()));
  for (const auto c : nl.cells())
    cell_area[c.index()] = cell_area_of(nl, c, config.tech);
  partition::FmOptions fm_opt;
  fm_opt.seed = config.run.seed;
  const auto part = [&] {
    obs::Span stage("stage.partition");
    auto p = partition::partition_netlist(nl, cell_area, config.num_blocks,
                                          fm_opt);
    stage.annotate("cut", p.cut);
    return p;
  }();

  // 2. Size blocks (cells + slack) and floorplan.  Every
  // ceil(1/hard_fraction)-th block becomes a hard macro.
  std::vector<floorplan::BlockSpec> specs(
      static_cast<std::size_t>(config.num_blocks));
  for (int b = 0; b < config.num_blocks; ++b)
    specs[static_cast<std::size_t>(b)].name = "blk" + std::to_string(b);
  for (const auto c : nl.cells())
    specs[static_cast<std::size_t>(part.block_of[c.index()])].area +=
        sizing_area_of(nl, c, config.tech, config.dff_provision_factor);
  const int hard_every =
      config.hard_block_fraction > 0.0
          ? std::max(1, static_cast<int>(1.0 / config.hard_block_fraction))
          : 0;
  for (int b = 0; b < config.num_blocks; ++b) {
    auto& spec = specs[static_cast<std::size_t>(b)];
    spec.area = std::max(spec.area, config.tech.gate_area);
    spec.area *= 1.0 + config.block_area_slack;
    if (hard_every > 0 && b % hard_every == hard_every - 1) {
      spec.hard = true;
      const Coord side = std::max<Coord>(
          1, static_cast<Coord>(std::llround(std::sqrt(spec.area))));
      spec.fixed_w = side;
      spec.fixed_h = side;
    }
  }
  floorplan::FloorplanOptions fp_opt = config.fp_opt;
  fp_opt.seed = config.run.seed;
  auto fp = [&] {
    obs::Span stage("stage.floorplan");
    return floorplan::floorplan_blocks(std::move(specs), fp_opt);
  }();
  return {part.block_of, std::move(fp)};
}

ExpansionSpec expansion_spec(const PlanResult& prev) {
  LAC_CHECK(prev.grid.has_value());
  const auto& grid = *prev.grid;
  const auto& rep = prev.lac.report;

  // Grow every violating soft block by 1.5x its overflow; violations in
  // channels or hard blocks translate into a higher whitespace target.
  ExpansionSpec spec;
  spec.new_area.reserve(prev.fp.blocks.size());
  for (const auto& b : prev.fp.blocks) spec.new_area.push_back(b.area);
  double channel_overflow = 0.0;
  for (int t = 0; t < grid.num_tiles(); ++t) {
    const tile::TileId tid{t};
    const double over =
        rep.ac[static_cast<std::size_t>(t)] - grid.capacity(tid);
    if (over <= 0.0) continue;
    if (grid.kind(tid) == tile::TileKind::kSoftBlock) {
      spec.new_area[grid.block(tid).index()] += 1.5 * over;
    } else {
      channel_overflow += over;
    }
  }
  spec.extra_whitespace =
      std::min(0.2, 2.0 * channel_overflow / prev.fp.chip.area());
  return spec;
}

PlanResult run_pipeline(const netlist::Netlist& nl, std::vector<int> block_of,
                        floorplan::Floorplan fp, const PlannerConfig& config,
                        const EcoOverrides* overrides,
                        PipelineCache* prev_cache, const PlanResult* prev_res,
                        PipelineCache* out_cache, EcoStats* eco) {
  LAC_CHECK((prev_cache == nullptr) == (prev_res == nullptr));
  obs::Span iter_span("planner.iteration");
  PlanResult res;
  res.circuit = nl.name();
  res.block_of = std::move(block_of);
  res.fp = std::move(fp);
  obs::gauge("mem.floorplan_bytes", static_cast<double>(res.fp.bytes_used()));

  // Cell positions: the RT abstraction places every cell at its block's
  // centre (intra-block distances are not yet known at this stage).
  std::vector<Point> pos(static_cast<std::size_t>(nl.num_cells()));
  for (const auto c : nl.cells())
    pos[c.index()] =
        res.fp.placement[static_cast<std::size_t>(res.block_of[c.index()])]
            .center();

  // Soft-block used area: functional units only — original flip-flops are
  // *not* pre-placed; they compete for the block's slack like relocated
  // ones (the paper's capacity is "after repeater insertion", FFs float).
  std::vector<double> used(static_cast<std::size_t>(res.fp.num_blocks()), 0.0);
  for (const auto c : nl.cells())
    if (nl.type(c) != netlist::CellType::kDff)
      used[static_cast<std::size_t>(res.block_of[c.index()])] +=
          cell_area_of(nl, c, config.tech) * area_scale_of(overrides, c.index());

  {
    obs::Span stage("stage.tile_grid");
    res.grid.emplace(res.fp, used, config.tile_opt);
    // ECO capacity overrides: derate/boost block or channel tiles.  Applied
    // identically on the cold reference, so reuse gating never sees a
    // capacity the reference would not see.
    if (overrides != nullptr && !overrides->trivial()) {
      for (int t = 0; t < res.grid->num_tiles(); ++t) {
        const tile::TileId tid{t};
        if (res.grid->kind(tid) == tile::TileKind::kChannel) {
          if (overrides->channel_capacity_scale != 1.0)
            res.grid->scale_capacity(tid, overrides->channel_capacity_scale);
        } else {
          const std::size_t b = res.grid->block(tid).index();
          if (b < overrides->block_capacity_scale.size() &&
              overrides->block_capacity_scale[b] != 1.0)
            res.grid->scale_capacity(tid,
                                     overrides->block_capacity_scale[b]);
        }
      }
    }
    stage.annotate("tiles", res.grid->num_tiles());
    stage.annotate("nx", res.grid->nx());
    stage.annotate("ny", res.grid->ny());
    stage.annotate("mem_bytes", res.grid->bytes_used());
    obs::gauge("mem.tile_graph_bytes",
               static_cast<double>(res.grid->bytes_used()));
  }
  tile::TileGrid& grid = *res.grid;

  // 3. Collapse registers and set up one routing request per driver.
  std::optional<obs::Span> collapse_span;
  collapse_span.emplace("stage.collapse_nets");
  const auto connections = retime::collapse_registers(nl);
  struct NetInfo {
    route::Cell source;
    std::vector<route::Cell> sinks;              // distinct sink cells
    std::unordered_map<int, int> sink_index_of;  // cell idx -> sinks index
  };
  std::map<int, NetInfo> nets;  // driver cell id -> net
  auto grid_cell = [&](netlist::CellId c) {
    const auto [gx, gy] = grid.cell_of_point(pos[c.index()]);
    return route::Cell{gx, gy};
  };
  for (const auto& conn : connections) {
    const route::Cell sc = grid_cell(conn.driver);
    const route::Cell tc = grid_cell(conn.sink);
    auto& net = nets[conn.driver.value()];
    net.source = sc;
    const int cell_idx = tc.gy * grid.nx() + tc.gx;
    if (net.sink_index_of.find(cell_idx) == net.sink_index_of.end()) {
      net.sink_index_of.emplace(cell_idx,
                                static_cast<int>(net.sinks.size()));
      net.sinks.push_back(tc);
    }
  }

  std::vector<route::RouteRequest> requests;
  std::vector<int> request_driver;
  for (const auto& [driver, net] : nets) {
    requests.push_back({net.source, net.sinks});
    request_driver.push_back(driver);
  }
  collapse_span->annotate("connections", connections.size());
  collapse_span->annotate("nets", requests.size());
  collapse_span.reset();

  // 4. Global routing + repeater planning.  The driver cell id is the
  // stable net key tying this run's nets to the previous run's log.
  std::vector<long long> keys;
  keys.reserve(request_driver.size());
  for (const int d : request_driver) keys.push_back(d);

  route::GlobalRouter router(grid, config.route_opt);
  route::IncRouteStats inc;
  auto trees = [&] {
    obs::Span stage("stage.global_route");
    if (prev_cache != nullptr)
      return router.route_all_incremental(
          requests, keys, prev_cache->route_log,
          out_cache != nullptr ? &out_cache->route_log : nullptr, &inc);
    if (out_cache != nullptr)
      return router.route_all_logged(requests, keys, &out_cache->route_log);
    return router.route_all(requests);
  }();
  res.routing = router.stats();
  if (eco != nullptr) {
    eco->invalidated_nets = inc.invalidated;
    eco->reused_routes = inc.reused_initial;
    eco->reused_reroutes = inc.reused_ripup;
    eco->cold_routes = inc.cold_initial;
    eco->cold_reroutes = inc.cold_ripup;
    eco->route_full_fallback = inc.full_fallback;
  }

  // Previous-run net lookup by key, for repeater replay and W/D vertex
  // correspondence.
  std::unordered_map<long long, std::size_t> prev_net_of;
  if (prev_cache != nullptr)
    for (std::size_t i = 0; i < prev_cache->route_log.keys.size(); ++i)
      prev_net_of.emplace(prev_cache->route_log.keys[i], i);

  repeater::RepeaterPlanner rep(grid, config.tech, config.repeater_opt);
  std::vector<repeater::BufferedNet> buffered;
  {
    obs::Span stage("stage.repeaters");
    buffered.reserve(trees.size());
    if (out_cache != nullptr) {
      out_cache->traces.resize(trees.size());
      out_cache->buffered.clear();
    }
    for (std::size_t i = 0; i < trees.size(); ++i) {
      repeater::PlanTrace* trace =
          out_cache != nullptr ? &out_cache->traces[i] : nullptr;
      std::optional<repeater::BufferedNet> replayed;
      if (prev_cache != nullptr) {
        // Replay the previous plan when this net's final tree is unchanged;
        // try_replay() re-validates every recorded grid answer, so a stale
        // tile layout or capacity falls through to a fresh plan.
        const auto it = prev_net_of.find(keys[i]);
        if (it != prev_net_of.end() &&
            prev_cache->trees[it->second] == trees[i]) {
          replayed = rep.try_replay(prev_cache->buffered[it->second],
                                    prev_cache->traces[it->second]);
          if (replayed.has_value() && trace != nullptr)
            *trace = prev_cache->traces[it->second];
        }
        if (eco != nullptr) {
          if (replayed.has_value())
            ++eco->repeater_replays;
          else
            ++eco->repeater_replans;
        }
      }
      if (replayed.has_value())
        buffered.push_back(std::move(*replayed));
      else
        buffered.push_back(rep.plan(trees[i], config.tech.gate_out_res,
                                    config.tech.gate_in_cap, trace));
    }
    stage.annotate("repeaters", rep.repeaters_inserted());
    stage.annotate("area_consumed", rep.area_consumed());
  }
  res.repeaters = rep.repeaters_inserted();

  // 5. Build the retiming graph.
  std::optional<obs::Span> graph_span;
  graph_span.emplace("stage.build_graph");
  auto& g = res.graph;
  std::vector<int> vtx(static_cast<std::size_t>(nl.num_cells()), -1);
  for (const auto c : nl.cells()) {
    const auto type = nl.type(c);
    if (type == netlist::CellType::kDff) continue;
    const bool io = type == netlist::CellType::kInput ||
                    type == netlist::CellType::kOutput;
    const double delay = io ? 0.0 : config.tech.gate_delay;
    vtx[c.index()] = g.add_vertex(retime::VertexKind::kFunctional, delay,
                                  grid.tile_at(pos[c.index()]));
    if (io) g.mark_io(vtx[c.index()]);
  }

  // Interconnect-unit chains, deduplicated along shared tree trunks by
  // (unit ordinal, cell): identical prefixes of two sink paths produce the
  // same vertices, so trunk flip-flops are shared, not duplicated.
  // last_unit_of[request][sink_idx] = chain tail vertex (or driver vertex).
  std::vector<std::vector<int>> last_unit_of(requests.size());
  std::vector<std::vector<int>> net_units(requests.size());
  for (std::size_t q = 0; q < requests.size(); ++q) {
    const int driver_vtx = vtx[static_cast<std::size_t>(request_driver[q])];
    LAC_CHECK(driver_vtx > 0);
    const auto& bnet = buffered[q];
    last_unit_of[q].assign(requests[q].sinks.size(), driver_vtx);
    if (bnet.sinks.empty()) continue;  // unrouted (all sinks colocated)
    std::map<std::pair<int, int>, int> unit_vtx;  // (ordinal, cell) -> vertex
    for (std::size_t s = 0; s < bnet.sinks.size(); ++s) {
      int prev = driver_vtx;
      const auto& units = bnet.sinks[s].units;
      for (std::size_t k = 0; k < units.size(); ++k) {
        const auto& u = units[k];
        const int cell_idx = u.at.gy * grid.nx() + u.at.gx;
        const auto key = std::make_pair(static_cast<int>(k), cell_idx);
        auto it = unit_vtx.find(key);
        if (it == unit_vtx.end()) {
          const int v = g.add_vertex(retime::VertexKind::kInterconnect,
                                     u.delay_ps, u.tile);
          g.add_edge(prev, v, 0);
          it = unit_vtx.emplace(key, v).first;
          net_units[q].push_back(v);
        }
        prev = it->second;
      }
      last_unit_of[q][s] = prev;
    }
  }
  res.interconnect_units = g.num_interconnect_units();

  // Connection edges carry the register counts on the private last hop.
  std::unordered_map<int, int> request_of_driver;
  for (std::size_t q = 0; q < requests.size(); ++q)
    request_of_driver.emplace(request_driver[q], static_cast<int>(q));
  for (const auto& conn : connections) {
    const int uv = vtx[conn.driver.index()];
    const int vv = vtx[conn.sink.index()];
    LAC_CHECK(uv > 0 && vv > 0);
    const int q = request_of_driver.at(conn.driver.value());
    const route::Cell tc = grid_cell(conn.sink);
    const int cell_idx = tc.gy * grid.nx() + tc.gx;
    const int sink_idx = nets.at(conn.driver.value()).sink_index_of.at(cell_idx);
    const int tail = last_unit_of[static_cast<std::size_t>(q)]
                                 [static_cast<std::size_t>(sink_idx)];
    g.add_edge(tail, vv, conn.w);
  }

  graph_span->annotate("vertices", g.num_vertices());
  graph_span->annotate("interconnect_units", res.interconnect_units);
  graph_span->annotate("mem_bytes", g.bytes_used());
  obs::gauge("mem.retiming_graph_bytes", static_cast<double>(g.bytes_used()));
  graph_span.reset();

  // 6. Timing landmarks.  Across an ECO the W/D rows of sources that
  // provably cannot reach any changed vertex transfer from the previous
  // run; the vertex correspondence is by cell id for functional units and
  // positional per unchanged net for interconnect units.  A wrong guess in
  // the correspondence is harmless — compute_incremental re-derives every
  // row whose mapped context differs at all.
  std::optional<obs::Span> timing_span;
  timing_span.emplace("stage.timing");
  std::int64_t wd_rows_rebuilt = 0;
  auto wd = [&] {
    if (prev_cache == nullptr || prev_res == nullptr)
      return retime::WdMatrices::compute(g, config.run.exec);
    std::vector<int> new_to_old(static_cast<std::size_t>(g.num_vertices()),
                                -1);
    new_to_old[static_cast<std::size_t>(g.host())] = prev_res->graph.host();
    const auto& pcv = prev_cache->cell_vertex;
    for (std::size_t i = 0; i < vtx.size() && i < pcv.size(); ++i)
      if (vtx[i] >= 0 && pcv[i] >= 0)
        new_to_old[static_cast<std::size_t>(vtx[i])] = pcv[i];
    for (std::size_t q = 0; q < requests.size(); ++q) {
      const auto it = prev_net_of.find(keys[q]);
      if (it == prev_net_of.end()) continue;
      const auto& pu = prev_cache->net_unit_vertices[it->second];
      const auto& nu = net_units[q];
      if (pu.size() != nu.size()) continue;
      for (std::size_t k = 0; k < nu.size(); ++k)
        new_to_old[static_cast<std::size_t>(nu[k])] = pu[k];
    }
    return retime::WdMatrices::compute_incremental(g, config.run.exec,
                                                   prev_res->graph,
                                                   prev_cache->wd, new_to_old,
                                                   &wd_rows_rebuilt);
  }();
  if (eco != nullptr) {
    eco->wd_rows_rebuilt = wd_rows_rebuilt;
    eco->wd_rows_total = g.num_vertices();
  }
  timing_span->annotate("mem_bytes", wd.bytes_used());
  obs::gauge("mem.wd_bytes", static_cast<double>(wd.bytes_used()));
  res.t_init_ps = wd.t_init_ps();
  res.t_min_ps = retime::min_period_retiming(g, wd);
  res.t_clk_ps = res.t_min_ps + config.clock_slack_fraction *
                                    (res.t_init_ps - res.t_min_ps);
  const auto t_clk_decips = retime::to_decips(res.t_clk_ps);

  auto cs_local = retime::build_constraints(g, wd, t_clk_decips);
  if (out_cache != nullptr) out_cache->cs = std::move(cs_local);
  const retime::ConstraintSet& cs =
      out_cache != nullptr ? out_cache->cs : cs_local;
  res.clock_constraints = cs.clock.size();
  res.clock_constraints_unpruned = cs.clock_before_pruning;
  res.constraint_gen_seconds = timing_span->elapsed_seconds();
  timing_span->annotate("t_init_ps", res.t_init_ps);
  timing_span->annotate("t_min_ps", res.t_min_ps);
  timing_span->annotate("t_clk_ps", res.t_clk_ps);
  timing_span->annotate("clock_constraints", res.clock_constraints);
  timing_span->annotate("clock_constraints_unpruned",
                        res.clock_constraints_unpruned);
  timing_span.reset();

  // 7. Baseline: plain min-area retiming at T_clk.  Always solved cold —
  // it is the yardstick the LAC result is judged against.
  {
    obs::Span stage("stage.min_area_retiming");
    auto r = retime::min_area_retiming(g, cs);
    LAC_CHECK_MSG(r.has_value(), "T_clk >= T_min must be feasible");
    res.min_area.r = std::move(*r);
    res.min_area.report =
        retime::place_flipflops(g, grid, res.min_area.r, config.tech.dff_area);
    res.min_area.exec_seconds = stage.elapsed_seconds();
    res.min_area.n_wr = 1;
    stage.annotate("n_foa", res.min_area.report.n_foa);
    stage.annotate("n_f", res.min_area.report.n_f);
  }

  // 8. The contribution: LAC-retiming at T_clk.  With a cache, the
  // weighted solves run on a session whose min-cost flow survives across
  // ECO re-plans whenever the constraint system is content-identical —
  // bit-identical retimings, warm flow.
  {
    obs::Span stage("stage.lac_retiming");
    const bool use_session =
        out_cache != nullptr && config.lac_opt.incremental;
    bool warm = false;
    if (use_session) {
      if (prev_cache != nullptr && prev_cache->lac_session.has_value() &&
          prev_cache->lac_session->matches(g, cs)) {
        out_cache->lac_session = std::move(prev_cache->lac_session);
        out_cache->lac_session->rebind(g, cs);
        warm = true;
      } else {
        out_cache->lac_session.emplace(g, cs);
      }
    }
    if (eco != nullptr) eco->lac_warm = warm;
    auto lac = use_session
                   ? retime::lac_retiming(g, grid, cs,
                                          &*out_cache->lac_session,
                                          config.lac_opt)
                   : retime::lac_retiming(g, grid, cs, config.lac_opt);
    res.lac.r = std::move(lac.r);
    res.lac.report = std::move(lac.report);
    res.lac.n_wr = lac.n_wr;
    res.lac.rounds = std::move(lac.rounds);
    res.lac.exec_seconds = stage.elapsed_seconds();
    stage.annotate("n_wr", res.lac.n_wr);
    stage.annotate("n_foa", res.lac.report.n_foa);
    stage.annotate("n_f", res.lac.report.n_f);
    stage.annotate("met_all_constraints", res.lac.report.fits());
    if (eco != nullptr) stage.annotate("warm_session", warm);
  }

  if (out_cache != nullptr) {
    out_cache->trees = std::move(trees);
    out_cache->buffered = std::move(buffered);
    out_cache->net_unit_vertices = std::move(net_units);
    out_cache->cell_vertex = std::move(vtx);
    out_cache->wd = std::move(wd);
  }

  if (eco != nullptr) {
    obs::count("eco.replans");
    obs::count("eco.invalidated_nets", eco->invalidated_nets);
    obs::count("eco.reused_routes", eco->reused_routes);
    obs::count("eco.reused_reroutes", eco->reused_reroutes);
    obs::count("eco.cold_routes", eco->cold_routes);
    obs::count("eco.cold_reroutes", eco->cold_reroutes);
    obs::count("eco.repeater_replays", eco->repeater_replays);
    obs::count("eco.repeater_replans", eco->repeater_replans);
    obs::count("eco.wd_rows_rebuilt", eco->wd_rows_rebuilt);
    obs::count("eco.wd_rows_total", eco->wd_rows_total);
    if (eco->route_full_fallback) obs::count("eco.route_full_fallbacks");
    if (eco->lac_warm) obs::count("eco.lac_warm_sessions");
    iter_span.annotate("eco_invalidated_nets", eco->invalidated_nets);
    iter_span.annotate("eco_reused_routes", eco->reused_routes);
    iter_span.annotate("eco_wd_rows_rebuilt", eco->wd_rows_rebuilt);
    iter_span.annotate("eco_lac_warm", eco->lac_warm);
  }

  // OS-level high-water mark; noisy across runs, so the perf gate treats
  // every *rss* gauge as informational only.
  if (const std::int64_t rss = obs::memory::peak_rss_bytes(); rss > 0)
    obs::gauge("mem.peak_rss_bytes", static_cast<double>(rss));
  return res;
}

}  // namespace detail
}  // namespace lac::planner
