// Interconnect planner: the paper's full flow (Figure 1).
//
//   netlist -> partition into blocks -> sequence-pair floorplan ->
//   tile grid -> global routing of inter-block connections ->
//   repeater planning (tile capacities consumed) ->
//   retiming graph with interconnect units ->
//   T_init / T_min / T_clk ->
//   min-area retiming (baseline)  vs  LAC-retiming (the contribution) ->
//   flip-flop placement + per-tile violation accounting.
//
// `plan(nl, PlanOptions{.max_iterations = k})` runs up to k planning
// iterations: the first full pass, then — while flip-flop area violations
// remain — the paper's floorplan-expansion replan, where congested soft
// blocks and channels are expanded and the whole pipeline re-runs on the
// new floorplan (same partition, same seed, incremental layout change).
// One PlanResult is returned per iteration executed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/run_controls.h"
#include "floorplan/floorplanner.h"
#include "netlist/netlist.h"
#include "obs/obs.h"
#include "repeater/repeater_planner.h"
#include "retime/constraints.h"
#include "retime/ff_placement.h"
#include "retime/lac_retimer.h"
#include "retime/retiming_graph.h"
#include "route/global_router.h"
#include "tile/tile_grid.h"
#include "timing/technology.h"

namespace lac::planner {

struct PlannerConfig {
  // Explicitly-defaulted special members, so that the [[deprecated]] alias
  // fields below warn only where code names them directly — not in every
  // synthesized copy/default construction of the whole config.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  PlannerConfig() = default;
  PlannerConfig(const PlannerConfig&) = default;
  PlannerConfig(PlannerConfig&&) = default;
  PlannerConfig& operator=(const PlannerConfig&) = default;
  PlannerConfig& operator=(PlannerConfig&&) = default;
  ~PlannerConfig() = default;
#pragma GCC diagnostic pop

  int num_blocks = 9;
  // Fraction of blocks treated as hard macros with pre-located sites.  The
  // paper's own experiments use soft blocks only ("we first partition those
  // circuits into soft blocks"), so the default is 0; the machinery is
  // exercised by tests and examples.
  double hard_block_fraction = 0.0;
  // Extra area a block gets beyond the sum of its cells (placement slack —
  // this slack is exactly the soft-block insertion capacity).
  double block_area_slack = 0.03;
  // Fraction of the per-fanout register demand the floorplan provisions
  // for.  1.0 sizes blocks for the full per-edge model demand; lower values
  // reproduce the paper's observation that block areas are estimated "based
  // on the original netlist without any physical information" and therefore
  // underestimate relocated-flip-flop demand.
  double dff_provision_factor = 0.6;
  // T_clk = T_min + clock_slack_fraction * (T_init - T_min)   (paper: 0.2).
  double clock_slack_fraction = 0.2;

  // Run controls: execution policy (threads / determinism / chunking),
  // observability override, and the RNG seed, grouped in one place.
  // `run.exec` governs every parallel stage of the pipeline (W/D matrix
  // sweeps, speculative net routing) and is propagated into
  // `route_opt.exec` by the InterconnectPlanner constructor; results are
  // bitwise-identical for any thread count.  `run.observability` kEnv
  // defers to the LAC_OBS environment variable, kOn/kOff force tracing +
  // metrics for the duration of plan().
  base::RunControls run;

  // Deprecated aliases of run.observability / run.seed, kept for one
  // release so existing initialisers keep compiling.  A non-default value
  // here wins over a still-default run.* field; the InterconnectPlanner
  // constructor normalises and then keeps both views in sync.
  [[deprecated("use PlannerConfig::run.observability")]]
  obs::Override observability = obs::Override::kEnv;

  timing::Technology tech = timing::Technology::paper_default();
  floorplan::FloorplanOptions fp_opt;
  tile::TileGridOptions tile_opt;
  route::RouterOptions route_opt;
  repeater::RepeaterPlanOptions repeater_opt;
  retime::LacOptions lac_opt;
  [[deprecated("use PlannerConfig::run.seed")]]
  std::uint64_t seed = 1;  // deprecated alias of run.seed (see above)
};

// Options for InterconnectPlanner::plan().
struct PlanOptions {
  // Upper bound on planning iterations: the first full pass plus
  // floorplan-expansion replans while area violations remain.  Must be
  // >= 1; the paper's flow uses 2.
  int max_iterations = 1;
};

struct RetimingOutcome {
  retime::AreaReport report;
  std::vector<int> r;
  double exec_seconds = 0.0;
  int n_wr = 1;  // weighted min-area solves (1 for the plain baseline)
  // Per-round convergence history (LAC only; empty for the plain
  // baseline).  rounds.size() == n_wr for the LAC outcome.
  std::vector<retime::LacRoundStats> rounds;
};

struct PlanResult {
  std::string circuit;

  // Physical artifacts of this planning iteration.
  std::vector<int> block_of;  // cell -> block
  floorplan::Floorplan fp;
  std::optional<tile::TileGrid> grid;  // engaged after planning
  retime::RetimingGraph graph;

  // Timing landmarks (ps).
  double t_init_ps = 0.0;
  double t_min_ps = 0.0;
  double t_clk_ps = 0.0;

  // Constraint statistics.
  std::size_t clock_constraints = 0;
  std::size_t clock_constraints_unpruned = 0;
  double constraint_gen_seconds = 0.0;

  // The two competing retimings at T_clk.
  RetimingOutcome min_area;
  RetimingOutcome lac;

  // Physical-planning statistics.
  route::RoutingStats routing;
  int repeaters = 0;
  int interconnect_units = 0;

  [[nodiscard]] double foa_decrease_pct() const {
    if (min_area.report.n_foa == 0) return 0.0;
    return 100.0 *
           static_cast<double>(min_area.report.n_foa - lac.report.n_foa) /
           static_cast<double>(min_area.report.n_foa);
  }
};

class InterconnectPlanner {
 public:
  explicit InterconnectPlanner(PlannerConfig config = {});

  [[nodiscard]] const PlannerConfig& config() const { return config_; }

  // Runs up to opts.max_iterations planning iterations — the first full
  // pass, then floorplan-expansion replans while the LAC result still
  // violates area constraints.  Returns one PlanResult per iteration
  // executed (always at least one; fewer than max_iterations when an
  // iteration fits).
  [[nodiscard]] std::vector<PlanResult> plan(const netlist::Netlist& nl,
                                             const PlanOptions& opts) const;

  // Deprecated: single-iteration form, equivalent to
  // plan(nl, PlanOptions{}).front().
  [[nodiscard]] PlanResult plan(const netlist::Netlist& nl) const;

  // Deprecated: open a PlanSession and record an expand_blocks() delta —
  // the session re-plan reuses unchanged work, this wrapper re-plans cold.
  // Second planning iteration after floorplan expansion: each violating
  // soft-block tile's block grows by its overflow (times a margin) and the
  // whitespace target rises when channels overflowed.  Returns nullopt if
  // the previous result had no violations (nothing to expand).
  [[deprecated("use PlanSession::expand_blocks() inside an ECO journal")]]
  [[nodiscard]] std::optional<PlanResult> replan_expanded(
      const netlist::Netlist& nl, const PlanResult& prev) const;

 private:
  [[nodiscard]] PlanResult plan_on_floorplan(const netlist::Netlist& nl,
                                             std::vector<int> block_of,
                                             floorplan::Floorplan fp) const;

  PlannerConfig config_;
};

}  // namespace lac::planner
