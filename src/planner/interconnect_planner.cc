#include "planner/interconnect_planner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <unordered_map>

#include "base/check.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/stream.h"
#include "partition/fm.h"
#include "retime/collapse.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"

namespace lac::planner {

namespace {

double cell_area_of(const netlist::Netlist& nl, netlist::CellId c,
                    const timing::Technology& tech) {
  switch (nl.type(c)) {
    case netlist::CellType::kDff: return tech.dff_area;
    case netlist::CellType::kInput:
    case netlist::CellType::kOutput: return tech.dff_area * 0.25;
    default: return tech.gate_area;
  }
}

// Area a cell contributes when *sizing* blocks.  The per-edge retiming model
// counts a register once per fanout edge (no sharing — paper Eqn. (3)), so
// blocks must be provisioned for that demand or the area constraints are
// unsatisfiable by construction rather than by flip-flop placement.
double sizing_area_of(const netlist::Netlist& nl, netlist::CellId c,
                      const timing::Technology& tech, double provision) {
  if (nl.type(c) == netlist::CellType::kDff) {
    const auto fanouts = nl.fanouts(c).size();
    return tech.dff_area * provision *
           static_cast<double>(std::max<std::size_t>(1, fanouts));
  }
  return cell_area_of(nl, c, tech);
}

}  // namespace

InterconnectPlanner::InterconnectPlanner(PlannerConfig config)
    : config_(std::move(config)) {
  LAC_CHECK(config_.num_blocks >= 1);
  LAC_CHECK(config_.clock_slack_fraction >= 0.0 &&
            config_.clock_slack_fraction <= 1.0);
  config_.lac_opt.ff_area = config_.tech.dff_area;
  config_.tile_opt.site_area = config_.tech.dff_area;
  // Deprecated-alias normalisation: a non-default value in the old
  // top-level seed/observability fields wins over a still-default
  // RunControls entry; afterwards both views agree.
  const PlannerConfig defaults;
  if (config_.seed != defaults.seed && config_.run.seed == defaults.run.seed)
    config_.run.seed = config_.seed;
  if (config_.observability != defaults.observability &&
      config_.run.observability == defaults.run.observability)
    config_.run.observability = config_.observability;
  config_.seed = config_.run.seed;
  config_.observability = config_.run.observability;
  // The execution policy reaches the router through its own options.
  config_.route_opt.exec = config_.run.exec;
}

std::vector<PlanResult> InterconnectPlanner::plan(
    const netlist::Netlist& nl, const PlanOptions& opts) const {
  LAC_CHECK(opts.max_iterations >= 1);
  std::vector<PlanResult> results;
  results.push_back(plan(nl));
  while (static_cast<int>(results.size()) < opts.max_iterations) {
    auto next = replan_expanded(nl, results.back());
    if (!next.has_value()) break;
    results.push_back(std::move(*next));
  }
  return results;
}

PlanResult InterconnectPlanner::plan(const netlist::Netlist& nl) const {
  std::optional<obs::ScopedEnable> obs_override;
  if (config_.run.observability != obs::Override::kEnv)
    obs_override.emplace(config_.run.observability == obs::Override::kOn);
  obs::set_max_root_spans(config_.run.max_root_spans);
  // Embedders (planner-as-a-service) reach the event stream through
  // RunControls; bench drivers normally opened the sink in parse_cli, in
  // which case this is a no-op.
  if (!config_.run.stream_path.empty() && !obs::stream::active())
    (void)obs::stream::open(config_.run.stream_path, "planner.plan");
  obs::Span span("planner.plan");
  span.annotate("circuit", nl.name());
  span.annotate("cells", nl.num_cells());
  span.annotate("blocks", config_.num_blocks);
  obs::count("planner.plans");

  // 1. Partition cells into circuit blocks.
  std::vector<double> cell_area(static_cast<std::size_t>(nl.num_cells()));
  for (const auto c : nl.cells())
    cell_area[c.index()] = cell_area_of(nl, c, config_.tech);
  partition::FmOptions fm_opt;
  fm_opt.seed = config_.run.seed;
  const auto part = [&] {
    obs::Span stage("stage.partition");
    auto p = partition::partition_netlist(nl, cell_area, config_.num_blocks,
                                          fm_opt);
    stage.annotate("cut", p.cut);
    return p;
  }();

  // 2. Size blocks (cells + slack) and floorplan.  Every
  // ceil(1/hard_fraction)-th block becomes a hard macro.
  std::vector<floorplan::BlockSpec> specs(
      static_cast<std::size_t>(config_.num_blocks));
  for (int b = 0; b < config_.num_blocks; ++b)
    specs[static_cast<std::size_t>(b)].name = "blk" + std::to_string(b);
  for (const auto c : nl.cells())
    specs[static_cast<std::size_t>(part.block_of[c.index()])].area +=
        sizing_area_of(nl, c, config_.tech, config_.dff_provision_factor);
  const int hard_every =
      config_.hard_block_fraction > 0.0
          ? std::max(1, static_cast<int>(1.0 / config_.hard_block_fraction))
          : 0;
  for (int b = 0; b < config_.num_blocks; ++b) {
    auto& spec = specs[static_cast<std::size_t>(b)];
    spec.area = std::max(spec.area, config_.tech.gate_area);
    spec.area *= 1.0 + config_.block_area_slack;
    if (hard_every > 0 && b % hard_every == hard_every - 1) {
      spec.hard = true;
      const Coord side = std::max<Coord>(
          1, static_cast<Coord>(std::llround(std::sqrt(spec.area))));
      spec.fixed_w = side;
      spec.fixed_h = side;
    }
  }
  floorplan::FloorplanOptions fp_opt = config_.fp_opt;
  fp_opt.seed = config_.run.seed;
  auto fp = [&] {
    obs::Span stage("stage.floorplan");
    return floorplan::floorplan_blocks(std::move(specs), fp_opt);
  }();

  auto result = plan_on_floorplan(nl, part.block_of, std::move(fp));
  result.circuit = nl.name();
  span.annotate("t_clk_ps", result.t_clk_ps);
  span.annotate("lac_n_foa", result.lac.report.n_foa);
  span.annotate("lac_n_wr", result.lac.n_wr);
  return result;
}

PlanResult InterconnectPlanner::plan_on_floorplan(
    const netlist::Netlist& nl, std::vector<int> block_of,
    floorplan::Floorplan fp) const {
  obs::Span iter_span("planner.iteration");
  PlanResult res;
  res.circuit = nl.name();
  res.block_of = std::move(block_of);
  res.fp = std::move(fp);
  obs::gauge("mem.floorplan_bytes", static_cast<double>(res.fp.bytes_used()));

  // Cell positions: the RT abstraction places every cell at its block's
  // centre (intra-block distances are not yet known at this stage).
  std::vector<Point> pos(static_cast<std::size_t>(nl.num_cells()));
  for (const auto c : nl.cells())
    pos[c.index()] =
        res.fp.placement[static_cast<std::size_t>(res.block_of[c.index()])]
            .center();

  // Soft-block used area: functional units only — original flip-flops are
  // *not* pre-placed; they compete for the block's slack like relocated
  // ones (the paper's capacity is "after repeater insertion", FFs float).
  std::vector<double> used(static_cast<std::size_t>(res.fp.num_blocks()), 0.0);
  for (const auto c : nl.cells())
    if (nl.type(c) != netlist::CellType::kDff)
      used[static_cast<std::size_t>(res.block_of[c.index()])] +=
          cell_area_of(nl, c, config_.tech);

  {
    obs::Span stage("stage.tile_grid");
    res.grid.emplace(res.fp, used, config_.tile_opt);
    stage.annotate("tiles", res.grid->num_tiles());
    stage.annotate("nx", res.grid->nx());
    stage.annotate("ny", res.grid->ny());
    stage.annotate("mem_bytes", res.grid->bytes_used());
    obs::gauge("mem.tile_graph_bytes",
               static_cast<double>(res.grid->bytes_used()));
  }
  tile::TileGrid& grid = *res.grid;

  // 3. Collapse registers and set up one routing request per driver.
  std::optional<obs::Span> collapse_span;
  collapse_span.emplace("stage.collapse_nets");
  const auto connections = retime::collapse_registers(nl);
  struct NetInfo {
    route::Cell source;
    std::vector<route::Cell> sinks;              // distinct sink cells
    std::unordered_map<int, int> sink_index_of;  // cell idx -> sinks index
  };
  std::map<int, NetInfo> nets;  // driver cell id -> net
  auto grid_cell = [&](netlist::CellId c) {
    const auto [gx, gy] = grid.cell_of_point(pos[c.index()]);
    return route::Cell{gx, gy};
  };
  for (const auto& conn : connections) {
    const route::Cell sc = grid_cell(conn.driver);
    const route::Cell tc = grid_cell(conn.sink);
    auto& net = nets[conn.driver.value()];
    net.source = sc;
    const int cell_idx = tc.gy * grid.nx() + tc.gx;
    if (net.sink_index_of.find(cell_idx) == net.sink_index_of.end()) {
      net.sink_index_of.emplace(cell_idx,
                                static_cast<int>(net.sinks.size()));
      net.sinks.push_back(tc);
    }
  }

  std::vector<route::RouteRequest> requests;
  std::vector<int> request_driver;
  for (const auto& [driver, net] : nets) {
    requests.push_back({net.source, net.sinks});
    request_driver.push_back(driver);
  }
  collapse_span->annotate("connections", connections.size());
  collapse_span->annotate("nets", requests.size());
  collapse_span.reset();

  // 4. Global routing + repeater planning.
  route::GlobalRouter router(grid, config_.route_opt);
  const auto trees = [&] {
    obs::Span stage("stage.global_route");
    return router.route_all(requests);
  }();
  res.routing = router.stats();

  repeater::RepeaterPlanner rep(grid, config_.tech, config_.repeater_opt);
  std::vector<repeater::BufferedNet> buffered;
  {
    obs::Span stage("stage.repeaters");
    buffered.reserve(trees.size());
    for (const auto& t : trees)
      buffered.push_back(
          rep.plan(t, config_.tech.gate_out_res, config_.tech.gate_in_cap));
    stage.annotate("repeaters", rep.repeaters_inserted());
    stage.annotate("area_consumed", rep.area_consumed());
  }
  res.repeaters = rep.repeaters_inserted();

  // 5. Build the retiming graph.
  std::optional<obs::Span> graph_span;
  graph_span.emplace("stage.build_graph");
  auto& g = res.graph;
  std::vector<int> vtx(static_cast<std::size_t>(nl.num_cells()), -1);
  for (const auto c : nl.cells()) {
    const auto type = nl.type(c);
    if (type == netlist::CellType::kDff) continue;
    const bool io = type == netlist::CellType::kInput ||
                    type == netlist::CellType::kOutput;
    const double delay = io ? 0.0 : config_.tech.gate_delay;
    vtx[c.index()] = g.add_vertex(retime::VertexKind::kFunctional, delay,
                                  grid.tile_at(pos[c.index()]));
    if (io) g.mark_io(vtx[c.index()]);
  }

  // Interconnect-unit chains, deduplicated along shared tree trunks by
  // (unit ordinal, cell): identical prefixes of two sink paths produce the
  // same vertices, so trunk flip-flops are shared, not duplicated.
  // last_unit_of[request][sink_idx] = chain tail vertex (or driver vertex).
  std::vector<std::vector<int>> last_unit_of(requests.size());
  for (std::size_t q = 0; q < requests.size(); ++q) {
    const int driver_vtx = vtx[static_cast<std::size_t>(request_driver[q])];
    LAC_CHECK(driver_vtx > 0);
    const auto& bnet = buffered[q];
    last_unit_of[q].assign(requests[q].sinks.size(), driver_vtx);
    if (bnet.sinks.empty()) continue;  // unrouted (all sinks colocated)
    std::map<std::pair<int, int>, int> unit_vtx;  // (ordinal, cell) -> vertex
    for (std::size_t s = 0; s < bnet.sinks.size(); ++s) {
      int prev = driver_vtx;
      const auto& units = bnet.sinks[s].units;
      for (std::size_t k = 0; k < units.size(); ++k) {
        const auto& u = units[k];
        const int cell_idx = u.at.gy * grid.nx() + u.at.gx;
        const auto key = std::make_pair(static_cast<int>(k), cell_idx);
        auto it = unit_vtx.find(key);
        if (it == unit_vtx.end()) {
          const int v = g.add_vertex(retime::VertexKind::kInterconnect,
                                     u.delay_ps, u.tile);
          g.add_edge(prev, v, 0);
          it = unit_vtx.emplace(key, v).first;
        }
        prev = it->second;
      }
      last_unit_of[q][s] = prev;
    }
  }
  res.interconnect_units = g.num_interconnect_units();

  // Connection edges carry the register counts on the private last hop.
  std::unordered_map<int, int> request_of_driver;
  for (std::size_t q = 0; q < requests.size(); ++q)
    request_of_driver.emplace(request_driver[q], static_cast<int>(q));
  for (const auto& conn : connections) {
    const int uv = vtx[conn.driver.index()];
    const int vv = vtx[conn.sink.index()];
    LAC_CHECK(uv > 0 && vv > 0);
    const int q = request_of_driver.at(conn.driver.value());
    const route::Cell tc = grid_cell(conn.sink);
    const int cell_idx = tc.gy * grid.nx() + tc.gx;
    const int sink_idx = nets.at(conn.driver.value()).sink_index_of.at(cell_idx);
    const int tail = last_unit_of[static_cast<std::size_t>(q)]
                                 [static_cast<std::size_t>(sink_idx)];
    g.add_edge(tail, vv, conn.w);
  }

  graph_span->annotate("vertices", g.num_vertices());
  graph_span->annotate("interconnect_units", res.interconnect_units);
  graph_span->annotate("mem_bytes", g.bytes_used());
  obs::gauge("mem.retiming_graph_bytes", static_cast<double>(g.bytes_used()));
  graph_span.reset();

  // 6. Timing landmarks.
  std::optional<obs::Span> timing_span;
  timing_span.emplace("stage.timing");
  const auto wd = retime::WdMatrices::compute(g, config_.run.exec);
  timing_span->annotate("mem_bytes", wd.bytes_used());
  obs::gauge("mem.wd_bytes", static_cast<double>(wd.bytes_used()));
  res.t_init_ps = wd.t_init_ps();
  res.t_min_ps = retime::min_period_retiming(g, wd);
  res.t_clk_ps = res.t_min_ps + config_.clock_slack_fraction *
                                    (res.t_init_ps - res.t_min_ps);
  const auto t_clk_decips = retime::to_decips(res.t_clk_ps);

  const auto cs = retime::build_constraints(g, wd, t_clk_decips);
  res.clock_constraints = cs.clock.size();
  res.clock_constraints_unpruned = cs.clock_before_pruning;
  res.constraint_gen_seconds = timing_span->elapsed_seconds();
  timing_span->annotate("t_init_ps", res.t_init_ps);
  timing_span->annotate("t_min_ps", res.t_min_ps);
  timing_span->annotate("t_clk_ps", res.t_clk_ps);
  timing_span->annotate("clock_constraints", res.clock_constraints);
  timing_span->annotate("clock_constraints_unpruned",
                        res.clock_constraints_unpruned);
  timing_span.reset();

  // 7. Baseline: plain min-area retiming at T_clk.
  {
    obs::Span stage("stage.min_area_retiming");
    auto r = retime::min_area_retiming(g, cs);
    LAC_CHECK_MSG(r.has_value(), "T_clk >= T_min must be feasible");
    res.min_area.r = std::move(*r);
    res.min_area.report =
        retime::place_flipflops(g, grid, res.min_area.r, config_.tech.dff_area);
    res.min_area.exec_seconds = stage.elapsed_seconds();
    res.min_area.n_wr = 1;
    stage.annotate("n_foa", res.min_area.report.n_foa);
    stage.annotate("n_f", res.min_area.report.n_f);
  }

  // 8. The contribution: LAC-retiming at T_clk.
  {
    obs::Span stage("stage.lac_retiming");
    auto lac = retime::lac_retiming(g, grid, cs, config_.lac_opt);
    res.lac.r = std::move(lac.r);
    res.lac.report = std::move(lac.report);
    res.lac.n_wr = lac.n_wr;
    res.lac.rounds = std::move(lac.rounds);
    res.lac.exec_seconds = stage.elapsed_seconds();
    stage.annotate("n_wr", res.lac.n_wr);
    stage.annotate("n_foa", res.lac.report.n_foa);
    stage.annotate("n_f", res.lac.report.n_f);
    stage.annotate("met_all_constraints", res.lac.report.fits());
  }

  // OS-level high-water mark; noisy across runs, so the perf gate treats
  // every *rss* gauge as informational only.
  if (const std::int64_t rss = obs::memory::peak_rss_bytes(); rss > 0)
    obs::gauge("mem.peak_rss_bytes", static_cast<double>(rss));
  return res;
}

std::optional<PlanResult> InterconnectPlanner::replan_expanded(
    const netlist::Netlist& nl, const PlanResult& prev) const {
  LAC_CHECK(prev.grid.has_value());
  const auto& grid = *prev.grid;
  const auto& rep = prev.lac.report;
  if (rep.fits()) return std::nullopt;

  std::optional<obs::ScopedEnable> obs_override;
  if (config_.run.observability != obs::Override::kEnv)
    obs_override.emplace(config_.run.observability == obs::Override::kOn);
  obs::set_max_root_spans(config_.run.max_root_spans);
  obs::Span span("planner.replan_expanded");
  span.annotate("circuit", nl.name());
  span.annotate("prev_tiles_violating", rep.tiles_violating);
  obs::count("planner.replans");

  // Grow every violating soft block by 1.5x its overflow; violations in
  // channels or hard blocks translate into a higher whitespace target.
  std::vector<double> new_area;
  new_area.reserve(prev.fp.blocks.size());
  for (const auto& b : prev.fp.blocks) new_area.push_back(b.area);
  double channel_overflow = 0.0;
  for (int t = 0; t < grid.num_tiles(); ++t) {
    const tile::TileId tid{t};
    const double over = rep.ac[static_cast<std::size_t>(t)] - grid.capacity(tid);
    if (over <= 0.0) continue;
    if (grid.kind(tid) == tile::TileKind::kSoftBlock) {
      new_area[grid.block(tid).index()] += 1.5 * over;
    } else {
      channel_overflow += over;
    }
  }
  const double extra_ws =
      std::min(0.2, 2.0 * channel_overflow / prev.fp.chip.area());

  floorplan::FloorplanOptions fp_opt = config_.fp_opt;
  fp_opt.seed = config_.run.seed;
  auto fp = floorplan::refloorplan_expanded(prev.fp, new_area, extra_ws, fp_opt);
  auto result = plan_on_floorplan(nl, prev.block_of, std::move(fp));
  result.circuit = nl.name();
  span.annotate("extra_whitespace", extra_ws);
  span.annotate("lac_n_foa", result.lac.report.n_foa);
  span.annotate("met_all_constraints", result.lac.report.fits());
  return result;
}

}  // namespace lac::planner
