#include "planner/interconnect_planner.h"

#include <optional>
#include <utility>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "obs/stream.h"
#include "planner/pipeline.h"
#include "planner/plan_session.h"

namespace lac::planner {

InterconnectPlanner::InterconnectPlanner(PlannerConfig config)
    : config_(std::move(config)) {
  LAC_CHECK(config_.num_blocks >= 1);
  LAC_CHECK(config_.clock_slack_fraction >= 0.0 &&
            config_.clock_slack_fraction <= 1.0);
  config_.lac_opt.ff_area = config_.tech.dff_area;
  config_.tile_opt.site_area = config_.tech.dff_area;
  // Deprecated-alias normalisation: a non-default value in the old
  // top-level seed/observability fields wins over a still-default
  // RunControls entry; afterwards both views agree.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const PlannerConfig defaults;
  if (config_.seed != defaults.seed && config_.run.seed == defaults.run.seed)
    config_.run.seed = config_.seed;
  if (config_.observability != defaults.observability &&
      config_.run.observability == defaults.run.observability)
    config_.run.observability = config_.observability;
  config_.seed = config_.run.seed;
  config_.observability = config_.run.observability;
#pragma GCC diagnostic pop
  // The execution policy reaches the router through its own options.
  config_.route_opt.exec = config_.run.exec;
}

std::vector<PlanResult> InterconnectPlanner::plan(
    const netlist::Netlist& nl, const PlanOptions& opts) const {
  LAC_CHECK(opts.max_iterations >= 1);
  // The multi-iteration loop is the session API's expand_blocks() delta:
  // each extra iteration is one ECO whose re-plan reuses whatever the
  // expansion left intact.
  PlanSession session(nl, config_);
  std::vector<PlanResult> results;
  results.push_back(session.result());
  while (static_cast<int>(results.size()) < opts.max_iterations) {
    if (session.result().lac.report.fits()) break;
    session.begin_eco();
    session.expand_blocks();
    results.push_back(session.end_eco());
  }
  return results;
}

PlanResult InterconnectPlanner::plan(const netlist::Netlist& nl) const {
  std::optional<obs::ScopedEnable> obs_override;
  if (config_.run.observability != obs::Override::kEnv)
    obs_override.emplace(config_.run.observability == obs::Override::kOn);
  obs::set_max_root_spans(config_.run.max_root_spans);
  // Embedders (planner-as-a-service) reach the event stream through
  // RunControls; bench drivers normally opened the sink in parse_cli, in
  // which case this is a no-op.
  if (!config_.run.stream_path.empty() && !obs::stream::active())
    (void)obs::stream::open(config_.run.stream_path, "planner.plan");
  obs::Span span("planner.plan");
  span.annotate("circuit", nl.name());
  span.annotate("cells", nl.num_cells());
  span.annotate("blocks", config_.num_blocks);
  obs::count("planner.plans");

  auto pf = detail::partition_and_floorplan(nl, config_);
  auto result =
      plan_on_floorplan(nl, std::move(pf.block_of), std::move(pf.fp));
  result.circuit = nl.name();
  span.annotate("t_clk_ps", result.t_clk_ps);
  span.annotate("lac_n_foa", result.lac.report.n_foa);
  span.annotate("lac_n_wr", result.lac.n_wr);
  return result;
}

PlanResult InterconnectPlanner::plan_on_floorplan(
    const netlist::Netlist& nl, std::vector<int> block_of,
    floorplan::Floorplan fp) const {
  return detail::run_pipeline(nl, std::move(block_of), std::move(fp), config_,
                              nullptr, nullptr, nullptr, nullptr, nullptr);
}

std::optional<PlanResult> InterconnectPlanner::replan_expanded(
    const netlist::Netlist& nl, const PlanResult& prev) const {
  LAC_CHECK(prev.grid.has_value());
  const auto& rep = prev.lac.report;
  if (rep.fits()) return std::nullopt;

  std::optional<obs::ScopedEnable> obs_override;
  if (config_.run.observability != obs::Override::kEnv)
    obs_override.emplace(config_.run.observability == obs::Override::kOn);
  obs::set_max_root_spans(config_.run.max_root_spans);
  obs::Span span("planner.replan_expanded");
  span.annotate("circuit", nl.name());
  span.annotate("prev_tiles_violating", rep.tiles_violating);
  obs::count("planner.replans");

  const auto spec = detail::expansion_spec(prev);
  floorplan::FloorplanOptions fp_opt = config_.fp_opt;
  fp_opt.seed = config_.run.seed;
  auto fp = floorplan::refloorplan_expanded(prev.fp, spec.new_area,
                                            spec.extra_whitespace, fp_opt);
  auto result = plan_on_floorplan(nl, prev.block_of, std::move(fp));
  result.circuit = nl.name();
  span.annotate("extra_whitespace", spec.extra_whitespace);
  span.annotate("lac_n_foa", result.lac.report.n_foa);
  span.annotate("met_all_constraints", result.lac.report.fits());
  return result;
}

}  // namespace lac::planner
