#include "planner/plan_session.h"

#include <optional>
#include <sstream>
#include <utility>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "obs/stream.h"

namespace lac::planner {

namespace {

// Consumes one whitespace token; false at end of line.
bool next_token(std::istringstream& in, std::string* tok) {
  return static_cast<bool>(in >> *tok);
}

bool parse_int(const std::string& tok, int* out) {
  std::size_t used = 0;
  try {
    *out = std::stoi(tok, &used);
  } catch (...) {
    return false;
  }
  return used == tok.size();
}

bool parse_double(const std::string& tok, double* out) {
  std::size_t used = 0;
  try {
    *out = std::stod(tok, &used);
  } catch (...) {
    return false;
  }
  return used == tok.size();
}

}  // namespace

std::optional<std::vector<EcoEdit>> parse_eco_journal(const std::string& text,
                                                      std::string* error) {
  auto fail = [&](int line_no, const std::string& why) {
    if (error != nullptr)
      *error = "line " + std::to_string(line_no) + ": " + why;
    return std::nullopt;
  };

  std::vector<EcoEdit> edits;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream in(line);
    std::string op;
    if (!next_token(in, &op)) continue;  // blank / comment-only line

    EcoEdit e;
    std::string a, b, c;
    if (op == "resize_block") {
      e.kind = EcoEdit::Kind::kResizeBlock;
      if (!next_token(in, &a) || !next_token(in, &b) ||
          !parse_int(a, &e.block) || !parse_double(b, &e.value))
        return fail(line_no, "expected: resize_block <block> <new_area>");
    } else if (op == "scale_capacity") {
      if (!next_token(in, &a) || !next_token(in, &b))
        return fail(line_no,
                    "expected: scale_capacity <block|channel> <factor>");
      if (a == "channel") {
        e.kind = EcoEdit::Kind::kScaleChannelCapacity;
      } else {
        e.kind = EcoEdit::Kind::kScaleBlockCapacity;
        if (!parse_int(a, &e.block))
          return fail(line_no, "bad block '" + a + "' (int or 'channel')");
      }
      if (!parse_double(b, &e.value))
        return fail(line_no, "bad factor '" + b + "'");
    } else if (op == "resize_cell") {
      e.kind = EcoEdit::Kind::kResizeCell;
      if (!next_token(in, &e.name) || !next_token(in, &a) ||
          !parse_double(a, &e.value))
        return fail(line_no, "expected: resize_cell <name> <scale>");
    } else if (op == "add_cell") {
      e.kind = EcoEdit::Kind::kAddCell;
      if (!next_token(in, &e.name) || !next_token(in, &a) ||
          !next_token(in, &b))
        return fail(line_no,
                    "expected: add_cell <name> <type> <block> [fanin...]");
      const auto type = netlist::parse_cell_type(a);
      if (!type.has_value())
        return fail(line_no, "unknown cell type '" + a + "'");
      e.cell_type = *type;
      if (!parse_int(b, &e.block))
        return fail(line_no, "bad block '" + b + "'");
      while (next_token(in, &c)) e.fanins.push_back(c);
    } else if (op == "remove_cell") {
      e.kind = EcoEdit::Kind::kRemoveCell;
      if (!next_token(in, &e.name))
        return fail(line_no, "expected: remove_cell <name>");
    } else if (op == "buffer") {
      e.kind = EcoEdit::Kind::kBuffer;
      if (!next_token(in, &e.name) || !next_token(in, &e.driver) ||
          !next_token(in, &e.sink))
        return fail(line_no, "expected: buffer <name> <driver> <sink>");
    } else if (op == "expand_blocks") {
      e.kind = EcoEdit::Kind::kExpandBlocks;
    } else {
      return fail(line_no, "unknown operation '" + op + "'");
    }
    if (e.kind != EcoEdit::Kind::kAddCell) {
      std::string extra;
      if (next_token(in, &extra))
        return fail(line_no, "trailing token '" + extra + "'");
    }
    edits.push_back(std::move(e));
  }
  return edits;
}

PlanSession::PlanSession(const netlist::Netlist& nl, PlannerConfig config)
    : config_(InterconnectPlanner(std::move(config)).config()), nl_(nl) {
  std::optional<obs::ScopedEnable> obs_override;
  if (config_.run.observability != obs::Override::kEnv)
    obs_override.emplace(config_.run.observability == obs::Override::kOn);
  obs::set_max_root_spans(config_.run.max_root_spans);
  if (!config_.run.stream_path.empty() && !obs::stream::active())
    (void)obs::stream::open(config_.run.stream_path, "planner.plan");
  obs::Span span("planner.plan");
  span.annotate("circuit", nl_.name());
  span.annotate("cells", nl_.num_cells());
  span.annotate("blocks", config_.num_blocks);
  obs::count("planner.plans");

  auto pf = detail::partition_and_floorplan(nl_, config_);
  block_of_ = std::move(pf.block_of);
  fp_ = std::move(pf.fp);
  result_ = detail::run_pipeline(nl_, block_of_, fp_, config_, nullptr,
                                 nullptr, nullptr, &cache_, nullptr);
  result_.circuit = nl_.name();
  if (cache_.lac_session.has_value())
    cache_.lac_session->rebind(result_.graph, cache_.cs);
  span.annotate("t_clk_ps", result_.t_clk_ps);
  span.annotate("lac_n_foa", result_.lac.report.n_foa);
  span.annotate("lac_n_wr", result_.lac.n_wr);
}

void PlanSession::begin_eco() {
  LAC_CHECK_MSG(!in_eco_, "begin_eco() with a journal already open");
  in_eco_ = true;
  journal_edits_ = 0;
}

void PlanSession::resize_block(int block, double new_area) {
  LAC_CHECK_MSG(in_eco_, "resize_block outside begin_eco()/end_eco()");
  LAC_CHECK(block >= 0 && block < fp_.num_blocks());
  LAC_CHECK(new_area > 0.0);
  auto resized = floorplan::resize_block_in_place(fp_, block, new_area);
  if (resized.has_value()) {
    fp_ = std::move(*resized);
  } else {
    // No room for a local edit: incremental re-floorplan with the same
    // seed (chip outline may change — downstream reuse degrades but the
    // re-plan stays exact).
    std::vector<double> new_areas;
    new_areas.reserve(fp_.blocks.size());
    for (const auto& b : fp_.blocks) new_areas.push_back(b.area);
    new_areas[static_cast<std::size_t>(block)] = new_area;
    floorplan::FloorplanOptions fp_opt = config_.fp_opt;
    fp_opt.seed = config_.run.seed;
    fp_ = floorplan::refloorplan_expanded(fp_, new_areas, 0.0, fp_opt);
  }
  ++journal_edits_;
}

void PlanSession::scale_block_capacity(int block, double factor) {
  LAC_CHECK_MSG(in_eco_, "scale_block_capacity outside an open journal");
  LAC_CHECK(block >= 0 && block < fp_.num_blocks());
  LAC_CHECK(factor >= 0.0);
  auto& scales = overrides_.block_capacity_scale;
  if (scales.size() < static_cast<std::size_t>(fp_.num_blocks()))
    scales.resize(static_cast<std::size_t>(fp_.num_blocks()), 1.0);
  scales[static_cast<std::size_t>(block)] *= factor;
  ++journal_edits_;
}

void PlanSession::scale_channel_capacity(double factor) {
  LAC_CHECK_MSG(in_eco_, "scale_channel_capacity outside an open journal");
  LAC_CHECK(factor >= 0.0);
  overrides_.channel_capacity_scale *= factor;
  ++journal_edits_;
}

void PlanSession::resize_cell(const std::string& name, double scale) {
  LAC_CHECK_MSG(in_eco_, "resize_cell outside an open journal");
  LAC_CHECK(scale >= 0.0);
  const auto c = nl_.find(name);
  LAC_CHECK_MSG(c.has_value(), "resize_cell: no cell named '" << name << "'");
  auto& scales = overrides_.cell_area_scale;
  if (scales.size() < static_cast<std::size_t>(nl_.num_cells()))
    scales.resize(static_cast<std::size_t>(nl_.num_cells()), 1.0);
  scales[c->index()] *= scale;
  ++journal_edits_;
}

netlist::CellId PlanSession::add_cell(const std::string& name,
                                      netlist::CellType type, int block,
                                      const std::vector<std::string>& fanins) {
  LAC_CHECK_MSG(in_eco_, "add_cell outside an open journal");
  LAC_CHECK(block >= 0 && block < fp_.num_blocks());
  const netlist::CellId c = nl_.add_cell(name, type);
  LAC_CHECK(c.index() == block_of_.size());
  block_of_.push_back(block);
  for (const auto& fn : fanins) {
    const auto d = nl_.find(fn);
    LAC_CHECK_MSG(d.has_value(), "add_cell: no fanin named '" << fn << "'");
    nl_.connect(c, *d);
  }
  ++journal_edits_;
  return c;
}

void PlanSession::remove_cell(const std::string& name) {
  LAC_CHECK_MSG(in_eco_, "remove_cell outside an open journal");
  const auto c = nl_.find(name);
  LAC_CHECK_MSG(c.has_value(), "remove_cell: no cell named '" << name << "'");
  nl_.remove_cell(*c);
  ++journal_edits_;
}

netlist::CellId PlanSession::add_buffer(const std::string& name,
                                        const std::string& driver,
                                        const std::string& sink) {
  LAC_CHECK_MSG(in_eco_, "add_buffer outside an open journal");
  const auto d = nl_.find(driver);
  LAC_CHECK_MSG(d.has_value(), "add_buffer: no driver named '" << driver
                                                              << "'");
  const auto s = nl_.find(sink);
  LAC_CHECK_MSG(s.has_value(), "add_buffer: no sink named '" << sink << "'");
  const netlist::CellId b = nl_.add_cell(name, netlist::CellType::kBuf);
  LAC_CHECK(b.index() == block_of_.size());
  block_of_.push_back(block_of_[d->index()]);
  nl_.rewire_fanin(*s, *d, b);
  nl_.connect(b, *d);
  ++journal_edits_;
  return b;
}

void PlanSession::expand_blocks() {
  LAC_CHECK_MSG(in_eco_, "expand_blocks outside an open journal");
  if (result_.lac.report.fits()) return;  // nothing to expand
  const auto spec = detail::expansion_spec(result_);
  floorplan::FloorplanOptions fp_opt = config_.fp_opt;
  fp_opt.seed = config_.run.seed;
  fp_ = floorplan::refloorplan_expanded(fp_, spec.new_area,
                                        spec.extra_whitespace, fp_opt);
  ++journal_edits_;
}

void PlanSession::apply(const EcoEdit& edit) {
  switch (edit.kind) {
    case EcoEdit::Kind::kResizeBlock:
      resize_block(edit.block, edit.value);
      break;
    case EcoEdit::Kind::kScaleBlockCapacity:
      scale_block_capacity(edit.block, edit.value);
      break;
    case EcoEdit::Kind::kScaleChannelCapacity:
      scale_channel_capacity(edit.value);
      break;
    case EcoEdit::Kind::kResizeCell:
      resize_cell(edit.name, edit.value);
      break;
    case EcoEdit::Kind::kAddCell:
      (void)add_cell(edit.name, edit.cell_type, edit.block, edit.fanins);
      break;
    case EcoEdit::Kind::kRemoveCell:
      remove_cell(edit.name);
      break;
    case EcoEdit::Kind::kBuffer:
      (void)add_buffer(edit.name, edit.driver, edit.sink);
      break;
    case EcoEdit::Kind::kExpandBlocks:
      expand_blocks();
      break;
  }
}

const PlanResult& PlanSession::end_eco() {
  LAC_CHECK_MSG(in_eco_, "end_eco() without begin_eco()");
  in_eco_ = false;

  std::optional<obs::ScopedEnable> obs_override;
  if (config_.run.observability != obs::Override::kEnv)
    obs_override.emplace(config_.run.observability == obs::Override::kOn);
  obs::set_max_root_spans(config_.run.max_root_spans);
  if (!config_.run.stream_path.empty() && !obs::stream::active())
    (void)obs::stream::open(config_.run.stream_path, "planner.eco_replan");
  obs::Span span("planner.eco_replan");
  span.annotate("circuit", nl_.name());
  span.annotate("edits", journal_edits_);
  obs::count("planner.eco_replans");

  EcoStats eco;
  PipelineCache next;
  PlanResult res = detail::run_pipeline(nl_, block_of_, fp_, config_,
                                        &overrides_, &cache_, &result_, &next,
                                        &eco);
  res.circuit = nl_.name();
  result_ = std::move(res);
  cache_ = std::move(next);
  // The graph and constraint set just moved to their final addresses;
  // re-point the retained warm session at them.
  if (cache_.lac_session.has_value())
    cache_.lac_session->rebind(result_.graph, cache_.cs);
  eco_ = eco;

  span.annotate("invalidated_nets", eco_.invalidated_nets);
  span.annotate("reused_routes", eco_.reused_routes);
  span.annotate("reused_reroutes", eco_.reused_reroutes);
  span.annotate("repeater_replays", eco_.repeater_replays);
  span.annotate("wd_rows_rebuilt", eco_.wd_rows_rebuilt);
  span.annotate("wd_rows_total", eco_.wd_rows_total);
  span.annotate("lac_warm", eco_.lac_warm);
  span.annotate("route_full_fallback", eco_.route_full_fallback);
  span.annotate("t_clk_ps", result_.t_clk_ps);
  span.annotate("lac_n_foa", result_.lac.report.n_foa);
  return result_;
}

PlanResult PlanSession::replan_cold() const {
  LAC_CHECK_MSG(!in_eco_, "replan_cold() with a journal open");
  std::optional<obs::ScopedEnable> obs_override;
  if (config_.run.observability != obs::Override::kEnv)
    obs_override.emplace(config_.run.observability == obs::Override::kOn);
  obs::set_max_root_spans(config_.run.max_root_spans);
  obs::Span span("planner.replan_cold");
  span.annotate("circuit", nl_.name());
  PlanResult res = detail::run_pipeline(nl_, block_of_, fp_, config_,
                                        &overrides_, nullptr, nullptr, nullptr,
                                        nullptr);
  res.circuit = nl_.name();
  span.annotate("t_clk_ps", res.t_clk_ps);
  span.annotate("lac_n_foa", res.lac.report.n_foa);
  return res;
}

}  // namespace lac::planner
