// lacobs — analysis CLI for lac-obs-report/2 run reports (v1 reports,
// which simply lack the memory fields, are accepted everywhere).
//
//   lacobs trace <report.json> [-o out.json]
//       Convert the report's span tree + metrics into Chrome trace-event
//       JSON (open in Perfetto / chrome://tracing).  Defaults to stdout.
//   lacobs summary <report.json...>
//       Aggregate per-span-name table (count/total/self/min/max/mean)
//       across all given reports, the critical chain, and the counters.
//       Warns on stderr when the reports dropped root spans.
//   lacobs top <report.json...> [-n N]
//       Hotspot view: the N span names with the largest self time, and —
//       when the reports carry memory data — the N with the largest self
//       allocation.
//   lacobs mem <report.json...> [--per-gate]
//       Per-span-name memory table (allocated / freed / peak live) plus
//       the mem.* gauges.  --per-gate divides byte values by the total
//       cell count from the planner.plan root annotations.
//   lacobs diff <baseline.json> <report.json> [--time-tol F]
//         [--time-fail F] [--timings-warn-only] [--min-seconds S]
//         [--ignore PREFIX]...
//       Diff a report against a baseline.  Exit 0 when clean, 1 on
//       timing warnings, 2 on a regression (deterministic mismatch or a
//       timing past the fail tier) — CI gates on the exit code.
//   lacobs strip-times <report.json> [-o out.json]
//       Copy of the report with wall-clock and memory data removed, for
//       checking in as a byte-stable baseline.
//   lacobs fold <stream.jsonl> [-o out.json]
//       Reduce a lac-obs-events/1 stream — complete or truncated — into a
//       lac-obs-report/2 document every other command accepts.  A killed
//       run's partial stream folds to a forensic report marked
//       "truncated": true (warning on stderr).
//   lacobs tail <stream.jsonl> [--once] [--interval MS]
//       Follow a live event stream: per-stage progress table (done /
//       running / ETA from completed same-name spans), latest LAC round,
//       and RSS.  --once renders a single snapshot; otherwise refreshes
//       until the run's `end` event arrives.
//   lacobs history [history.jsonl] [-n N]
//       One-screen trend view of the perf-gate history (default
//       bench/history/history.jsonl): per-run wall time with deltas and
//       the recorded metrics, newest last.
//   lacobs history-add <report.json> --file <history.jsonl>
//         [--commit SHA] [--seconds S]
//       Append one compact record (commit, wall time, key lac./mcf.
//       counters and mcf./mem. gauges) to the history file — the CI
//       perf-gate calls this after every gate run.
//
// Exit codes: 0 ok · 1 diff warnings · 2 diff regression · 64 usage
// error · 66 unreadable/unparseable input.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "base/str_util.h"
#include "base/table.h"
#include "obs/analyze.h"
#include "obs/compare.h"
#include "obs/json.h"
#include "obs/stream.h"
#include "obs/trace_event.h"

namespace {

using namespace lac;

constexpr int kExitOk = 0;
constexpr int kExitWarn = 1;
constexpr int kExitRegress = 2;
constexpr int kExitUsage = 64;    // EX_USAGE
constexpr int kExitNoInput = 66;  // EX_NOINPUT

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: lacobs <command> [args]\n"
               "\n"
               "commands:\n"
               "  trace <report.json> [-o out.json]\n"
               "      convert a lac-obs-report/2 (or /1) file to Chrome "
               "trace-event JSON\n"
               "      (Perfetto / chrome://tracing); stdout by default\n"
               "  summary <report.json...>\n"
               "      aggregate span table, critical chain and counters "
               "across runs\n"
               "  top <report.json...> [-n N]\n"
               "      top-N spans by self time and by self allocation "
               "(default 10)\n"
               "  mem <report.json...> [--per-gate]\n"
               "      per-span memory table and mem.* gauges; --per-gate "
               "normalises\n"
               "      bytes by the planned cell count\n"
               "  diff <baseline.json> <report.json> [--time-tol F] "
               "[--time-fail F]\n"
               "       [--timings-warn-only] [--min-seconds S] "
               "[--ignore PREFIX]... [--json]\n"
               "      compare against a baseline; exit 0 ok, 1 warnings, "
               "2 regression\n"
               "      --ignore skips counters/gauges/histograms/spans whose "
               "name starts\n"
               "      with PREFIX (repeatable; for cross-config comparisons)\n"
               "      --json prints a machine-readable lac-obs-diff/1 "
               "verdict instead\n"
               "      of the table (same exit code)\n"
               "  strip-times <report.json> [-o out.json]\n"
               "      drop wall-clock data so the report can serve as a "
               "CI baseline\n"
               "  fold <stream.jsonl> [-o out.json]\n"
               "      reduce a lac-obs-events/1 stream (complete or "
               "truncated) into a\n"
               "      lac-obs-report/2 document; a killed run's partial "
               "stream folds to\n"
               "      a forensic report with \"truncated\": true\n"
               "  strip-stream <stream.jsonl> [-o out.jsonl]\n"
               "      drop every time/RSS field and heartbeat from a "
               "stream; two runs\n"
               "      of the same work strip to identical text at any "
               "thread count\n"
               "  tail <stream.jsonl> [--once] [--interval MS]\n"
               "      follow a live event stream: per-stage progress/ETA "
               "table, latest\n"
               "      LAC round and RSS; --once renders one snapshot, "
               "otherwise\n"
               "      refreshes (default every 500 ms) until the run ends\n"
               "  history [history.jsonl] [-n N]\n"
               "      trend view of the perf-gate history (default\n"
               "      bench/history/history.jsonl), newest last\n"
               "  history-add <report.json> --file <history.jsonl> "
               "[--commit SHA]\n"
               "       [--seconds S]\n"
               "      append one compact per-run record to the history "
               "file (CI)\n"
               "  help | --help | -h\n");
}

int usage_error(const std::string& msg) {
  std::fprintf(stderr, "lacobs: %s\n", msg.c_str());
  print_usage(stderr);
  return kExitUsage;
}

// The report's "schema" string ("lac-obs-report/2"), or "?" when absent.
std::string report_schema(const obs::json::Value& report) {
  const obs::json::Value* s = report.find("schema");
  if (s == nullptr || s->kind != obs::json::Value::Kind::kString) return "?";
  return s->str;
}

// Loads and parses a report, exiting the command with kExitNoInput via
// the returned flag when it cannot be read.  Reports from a *newer*
// schema generation (lac-obs-report/N, N >= 3) load with a warning
// rather than failing: old tools keep working on whatever subset of the
// document they understand.
bool load_report(const std::string& path, obs::json::Value& out) {
  auto doc = obs::json::parse_file(path);
  if (!doc) {
    std::fprintf(stderr, "lacobs: cannot read or parse %s\n", path.c_str());
    return false;
  }
  out = std::move(*doc);
  const std::string schema = report_schema(out);
  constexpr std::string_view kPrefix = "lac-obs-report/";
  if (schema.rfind(kPrefix, 0) == 0) {
    char* end = nullptr;
    const long long gen = std::strtoll(schema.c_str() + kPrefix.size(),
                                       &end, 10);
    if (end != nullptr && *end == '\0' && gen >= 3)
      std::fprintf(stderr,
                   "lacobs: warning: %s has schema %s, newer than this "
                   "tool understands;\n"
                   "lacobs: parsing best-effort — upgrade lacobs for full "
                   "fidelity\n",
                   path.c_str(), schema.c_str());
  }
  return true;
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text << '\n';
  return static_cast<bool>(out);
}

// Renders `text` to `-o` target when given, stdout otherwise.
int emit(const std::string& out_path, const std::string& text) {
  if (out_path.empty()) {
    std::printf("%s\n", text.c_str());
    return kExitOk;
  }
  if (!write_text(out_path, text)) {
    std::fprintf(stderr, "lacobs: cannot write %s\n", out_path.c_str());
    return kExitNoInput;
  }
  return kExitOk;
}

// Parses `<report> [-o out]` for trace / strip-times.
bool parse_report_and_output(const std::vector<std::string>& args,
                             std::string& report, std::string& out,
                             std::string& err) {
  report.clear();
  out.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" || args[i] == "--output") {
      if (i + 1 >= args.size()) {
        err = args[i] + " needs a path";
        return false;
      }
      out = args[++i];
    } else if (!args[i].empty() && args[i][0] == '-') {
      err = "unknown option " + args[i];
      return false;
    } else if (report.empty()) {
      report = args[i];
    } else {
      err = "unexpected argument " + args[i];
      return false;
    }
  }
  if (report.empty()) {
    err = "missing report path";
    return false;
  }
  return true;
}

int cmd_trace(const std::vector<std::string>& args) {
  std::string report_path, out_path, err;
  if (!parse_report_and_output(args, report_path, out_path, err))
    return usage_error("trace: " + err);
  obs::json::Value report;
  if (!load_report(report_path, report)) return kExitNoInput;
  return emit(out_path, obs::render_trace_events(report));
}

int cmd_strip_times(const std::vector<std::string>& args) {
  std::string report_path, out_path, err;
  if (!parse_report_and_output(args, report_path, out_path, err))
    return usage_error("strip-times: " + err);
  obs::json::Value report;
  if (!load_report(report_path, report)) return kExitNoInput;
  return emit(out_path, obs::json::serialize(obs::strip_times(report)));
}

// Everything top/mem/summary need from a set of reports.  Counters and
// dropped-span counts sum across reports; gauges keep the per-name max
// (each report is a separate run, so max is the right aggregate for the
// mem.* footprint gauges).
struct LoadedReports {
  std::vector<obs::SpanNode> roots;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::vector<std::string> schemas;  // unique, first-seen order
  std::int64_t dropped_root_spans = 0;
  int reports = 0;
};

bool load_many(const std::vector<std::string>& paths, LoadedReports& out) {
  for (const std::string& path : paths) {
    obs::json::Value report;
    if (!load_report(path, report)) return false;
    if (const std::string schema = report_schema(report);
        std::find(out.schemas.begin(), out.schemas.end(), schema) ==
        out.schemas.end())
      out.schemas.push_back(schema);
    for (obs::SpanNode& r : obs::trace_from_report(report))
      out.roots.push_back(std::move(r));
    if (const auto* c = report.at_path({"metrics", "counters"});
        c != nullptr && c->is_object())
      for (const auto& [k, v] : c->object)
        if (v.kind == obs::json::Value::Kind::kNumber)
          out.counters[k] += v.num;
    if (const auto* g = report.at_path({"metrics", "gauges"});
        g != nullptr && g->is_object())
      for (const auto& [k, v] : g->object)
        if (v.kind == obs::json::Value::Kind::kNumber) {
          auto [it, fresh] = out.gauges.emplace(k, v.num);
          if (!fresh && v.num > it->second) it->second = v.num;
        }
    if (const auto* d = report.at_path({"dropped_root_spans"});
        d != nullptr && d->kind == obs::json::Value::Kind::kNumber)
      out.dropped_root_spans += static_cast<std::int64_t>(d->num);
    ++out.reports;
  }
  return true;
}

// Shared stderr warning: a nonzero dropped-span count means the span
// tables undercount whatever was dropped.
void warn_dropped(const LoadedReports& loaded) {
  if (loaded.dropped_root_spans <= 0) return;
  std::fprintf(stderr,
               "lacobs: warning: %lld root span(s) were dropped by the "
               "span-store cap;\n"
               "lacobs: raise it with --span-cap / "
               "RunControls::max_root_spans for full data\n",
               static_cast<long long>(loaded.dropped_root_spans));
}

int cmd_summary(const std::vector<std::string>& args) {
  if (args.empty()) return usage_error("summary: missing report path");
  for (const std::string& a : args)
    if (!a.empty() && a[0] == '-')
      return usage_error("summary: unknown option " + a);

  LoadedReports loaded;
  if (!load_many(args, loaded)) return kExitNoInput;
  warn_dropped(loaded);
  std::vector<obs::SpanNode>& roots = loaded.roots;
  std::map<std::string, double>& counters = loaded.counters;
  const int reports = loaded.reports;

  std::string schemas;
  for (const std::string& s : loaded.schemas) {
    if (!schemas.empty()) schemas += ", ";
    schemas += s;
  }
  std::printf("%d report(s), %zu root span(s), schema %s\n\n", reports,
              roots.size(), schemas.c_str());

  const auto stats = obs::aggregate_spans(roots);
  if (!stats.empty()) {
    TextTable table({"span", "count", "total(s)", "self(s)", "min(s)",
                     "max(s)", "mean(s)"});
    for (const obs::SpanStats& s : stats)
      table.add_row({s.name, std::to_string(s.count),
                     format_double(s.total_seconds, 4),
                     format_double(s.self_seconds, 4),
                     format_double(s.min_seconds, 4),
                     format_double(s.max_seconds, 4),
                     format_double(s.mean_seconds(), 4)});
    std::printf("%s\n", table.to_string().c_str());

    const auto chain = obs::critical_chain(roots);
    std::string rendered;
    for (const obs::SpanNode* n : chain) {
      if (!rendered.empty()) rendered += " > ";
      rendered += n->name + " (" + format_double(n->seconds, 4) + "s)";
    }
    std::printf("critical chain: %s\n\n", rendered.c_str());
  }

  if (!counters.empty()) {
    TextTable table({"counter", "value"});
    for (const auto& [k, v] : counters)
      table.add_row({k, format_double(v, 0)});
    std::printf("%s\n", table.to_string().c_str());
  }
  return kExitOk;
}

// Bytes column: integers as-is; --per-gate averages get one decimal.
std::string format_bytes(double v, bool per_gate) {
  return format_double(v, per_gate ? 1 : 0);
}

int cmd_top(const std::vector<std::string>& args) {
  long long limit = 10;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-n" || args[i] == "--top") {
      if (i + 1 >= args.size())
        return usage_error("top: " + args[i] + " needs a count");
      char* end = nullptr;
      limit = std::strtoll(args[i + 1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || end == args[i + 1].c_str() ||
          limit <= 0)
        return usage_error("top: bad count '" + args[i + 1] + "'");
      ++i;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error("top: unknown option " + args[i]);
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.empty()) return usage_error("top: missing report path");

  LoadedReports loaded;
  if (!load_many(paths, loaded)) return kExitNoInput;
  warn_dropped(loaded);

  auto stats = obs::aggregate_spans(loaded.roots);
  const std::size_t n =
      std::min<std::size_t>(stats.size(), static_cast<std::size_t>(limit));

  // By self time (exclusive of children): the actual hotspots, not the
  // parents that merely contain them.
  std::sort(stats.begin(), stats.end(),
            [](const obs::SpanStats& a, const obs::SpanStats& b) {
              if (a.self_seconds != b.self_seconds)
                return a.self_seconds > b.self_seconds;
              return a.name < b.name;
            });
  std::printf("top %zu by self time\n", n);
  TextTable time_table({"#", "span", "count", "self(s)", "total(s)"});
  for (std::size_t i = 0; i < n; ++i)
    time_table.add_row({std::to_string(i + 1), stats[i].name,
                        std::to_string(stats[i].count),
                        format_double(stats[i].self_seconds, 4),
                        format_double(stats[i].total_seconds, 4)});
  std::printf("%s\n", time_table.to_string().c_str());

  bool any_mem = false;
  for (const obs::SpanStats& s : stats) any_mem |= s.has_mem;
  if (!any_mem) {
    std::printf("no span memory data (v1 report or LAC_OBS_MEM off)\n");
    return kExitOk;
  }
  std::sort(stats.begin(), stats.end(),
            [](const obs::SpanStats& a, const obs::SpanStats& b) {
              if (a.self_alloc_bytes != b.self_alloc_bytes)
                return a.self_alloc_bytes > b.self_alloc_bytes;
              return a.name < b.name;
            });
  std::printf("top %zu by self allocation\n", n);
  TextTable mem_table(
      {"#", "span", "count", "self_alloc(B)", "alloc(B)", "peak_live(B)"});
  for (std::size_t i = 0; i < n; ++i)
    mem_table.add_row(
        {std::to_string(i + 1), stats[i].name, std::to_string(stats[i].count),
         std::to_string(stats[i].self_alloc_bytes),
         std::to_string(stats[i].alloc_bytes),
         std::to_string(stats[i].peak_live_bytes)});
  std::printf("%s\n", mem_table.to_string().c_str());
  return kExitOk;
}

int cmd_mem(const std::vector<std::string>& args) {
  bool per_gate = false;
  std::vector<std::string> paths;
  for (const std::string& a : args) {
    if (a == "--per-gate") {
      per_gate = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage_error("mem: unknown option " + a);
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) return usage_error("mem: missing report path");

  LoadedReports loaded;
  if (!load_many(paths, loaded)) return kExitNoInput;
  warn_dropped(loaded);

  // --per-gate normalisation: total planned cells, from the `cells`
  // annotation the planner writes on every planner.plan root span.
  double gates = 0.0;
  for (const obs::SpanNode& root : loaded.roots)
    if (const obs::Annotation* a = root.find_annotation("cells");
        a != nullptr && a->kind == obs::Annotation::Kind::kInt)
      gates += static_cast<double>(a->i);
  if (per_gate && gates <= 0.0) {
    std::fprintf(stderr,
                 "lacobs: mem: --per-gate needs planner.plan roots with a "
                 "'cells' annotation\n");
    return kExitNoInput;
  }
  const double scale = per_gate ? 1.0 / gates : 1.0;
  const char* unit = per_gate ? "B/gate" : "B";

  const auto stats = obs::aggregate_spans(loaded.roots);
  bool any_mem = false;
  for (const obs::SpanStats& s : stats) any_mem |= s.has_mem;
  if (any_mem) {
    TextTable table({"span", "count", std::string("alloc(") + unit + ")",
                     std::string("freed(") + unit + ")",
                     std::string("self_alloc(") + unit + ")",
                     std::string("peak_live(") + unit + ")"});
    for (const obs::SpanStats& s : stats) {
      if (!s.has_mem) continue;
      table.add_row(
          {s.name, std::to_string(s.count),
           format_bytes(static_cast<double>(s.alloc_bytes) * scale, per_gate),
           format_bytes(static_cast<double>(s.freed_bytes) * scale, per_gate),
           format_bytes(static_cast<double>(s.self_alloc_bytes) * scale,
                        per_gate),
           format_bytes(static_cast<double>(s.peak_live_bytes) * scale,
                        per_gate)});
    }
    std::printf("%s\n", table.to_string().c_str());
  } else {
    std::printf("no span memory data (v1 report or LAC_OBS_MEM off)\n\n");
  }

  bool any_gauge = false;
  for (const auto& [k, v] : loaded.gauges)
    any_gauge |= k.rfind("mem.", 0) == 0;
  if (any_gauge) {
    TextTable table({"gauge", std::string("value(") + unit + ")"});
    for (const auto& [k, v] : loaded.gauges) {
      if (k.rfind("mem.", 0) != 0) continue;
      // RSS is a process-wide OS number; normalising it per gate would
      // suggest a precision it does not have.
      const bool rss = k.find("rss") != std::string::npos;
      table.add_row({rss ? k + " (noisy)" : k,
                     format_bytes(v * (rss ? 1.0 : scale),
                                  per_gate && !rss)});
    }
    std::printf("%s\n", table.to_string().c_str());
  } else {
    std::printf("no mem.* gauges in the report(s)\n");
  }
  if (per_gate)
    std::printf("normalised by %s gates\n", format_double(gates, 0).c_str());
  return kExitOk;
}

int cmd_diff(const std::vector<std::string>& args) {
  obs::DiffOptions opts;
  bool as_json = false;
  std::string baseline_path, report_path;
  const auto double_flag = [&](std::size_t& i, double& out,
                               std::string& err) {
    if (i + 1 >= args.size()) {
      err = args[i] + " needs a value";
      return false;
    }
    char* end = nullptr;
    out = std::strtod(args[i + 1].c_str(), &end);
    if (end == nullptr || *end != '\0') {
      err = "bad number for " + args[i] + ": " + args[i + 1];
      return false;
    }
    ++i;
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string err;
    if (args[i] == "--time-tol") {
      if (!double_flag(i, opts.time_warn_tol, err))
        return usage_error("diff: " + err);
    } else if (args[i] == "--time-fail") {
      if (!double_flag(i, opts.time_fail_tol, err))
        return usage_error("diff: " + err);
    } else if (args[i] == "--min-seconds") {
      if (!double_flag(i, opts.min_seconds, err))
        return usage_error("diff: " + err);
    } else if (args[i] == "--timings-warn-only") {
      opts.timings_warn_only = true;
    } else if (args[i] == "--json") {
      as_json = true;
    } else if (args[i] == "--ignore") {
      if (i + 1 >= args.size())
        return usage_error("diff: --ignore needs a value");
      opts.ignore_prefixes.push_back(args[++i]);
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error("diff: unknown option " + args[i]);
    } else if (baseline_path.empty()) {
      baseline_path = args[i];
    } else if (report_path.empty()) {
      report_path = args[i];
    } else {
      return usage_error("diff: unexpected argument " + args[i]);
    }
  }
  if (baseline_path.empty() || report_path.empty())
    return usage_error("diff: need <baseline.json> <report.json>");

  obs::json::Value baseline, report;
  if (!load_report(baseline_path, baseline)) return kExitNoInput;
  if (!load_report(report_path, report)) return kExitNoInput;

  const obs::DiffResult res = obs::diff_reports(baseline, report, opts);

  const auto kind_name = [](obs::DiffEntry::Kind k) {
    switch (k) {
      case obs::DiffEntry::Kind::kCounter: return "counter";
      case obs::DiffEntry::Kind::kGauge: return "gauge";
      case obs::DiffEntry::Kind::kHistogram: return "histogram";
      case obs::DiffEntry::Kind::kSpanCount: return "span-count";
      case obs::DiffEntry::Kind::kSpanTime: return "span-time";
    }
    return "?";
  };
  // Counters and span counts are integers; timings get 4 decimals.
  const auto fmt = [](double v) {
    return v == static_cast<double>(static_cast<long long>(v))
               ? format_double(v, 0)
               : format_double(v, 4);
  };
  if (as_json) {
    // Machine-readable verdict (lac-obs-diff/1): overall verdict, per-class
    // counts, and every non-ok entry — the CI gate annotates failures from
    // this instead of scraping the table.
    obs::json::Writer w;
    w.begin_object();
    w.kv("schema", "lac-obs-diff/1");
    w.kv("baseline", baseline_path);
    w.kv("report", report_path);
    w.kv("verdict", obs::verdict_name(res.verdict));
    w.key("counts");
    w.begin_object();
    w.kv("ok", res.count(obs::Verdict::kOk));
    w.kv("warn", res.count(obs::Verdict::kWarn));
    w.kv("regress", res.count(obs::Verdict::kRegress));
    w.end_object();
    w.kv("comparisons", static_cast<std::int64_t>(res.entries.size()));
    w.key("entries");
    w.begin_array();
    for (const obs::DiffEntry& e : res.entries) {
      if (e.verdict == obs::Verdict::kOk) continue;
      w.begin_object();
      w.kv("verdict", obs::verdict_name(e.verdict));
      w.kv("kind", kind_name(e.kind));
      w.kv("name", e.name);
      w.kv("baseline", e.baseline);
      w.kv("current", e.current);
      w.kv("note", e.note);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::printf("%s\n", w.take().c_str());
    switch (res.verdict) {
      case obs::Verdict::kOk: return kExitOk;
      case obs::Verdict::kWarn: return kExitWarn;
      case obs::Verdict::kRegress: return kExitRegress;
    }
    return kExitRegress;
  }
  bool any = false;
  TextTable table({"verdict", "kind", "name", "baseline", "current", "note"});
  for (const obs::DiffEntry& e : res.entries) {
    if (e.verdict == obs::Verdict::kOk) continue;
    any = true;
    table.add_row({obs::verdict_name(e.verdict), kind_name(e.kind), e.name,
                   fmt(e.baseline), fmt(e.current), e.note});
  }
  if (any) std::printf("%s\n", table.to_string().c_str());
  std::printf("%zu comparison(s): %d ok, %d warn, %d regress\n",
              res.entries.size(), res.count(obs::Verdict::kOk),
              res.count(obs::Verdict::kWarn),
              res.count(obs::Verdict::kRegress));
  std::printf("verdict: %s\n", obs::verdict_name(res.verdict));
  switch (res.verdict) {
    case obs::Verdict::kOk: return kExitOk;
    case obs::Verdict::kWarn: return kExitWarn;
    case obs::Verdict::kRegress: return kExitRegress;
  }
  return kExitRegress;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int cmd_strip_stream(const std::vector<std::string>& args) {
  std::string stream_path, out_path, err;
  if (!parse_report_and_output(args, stream_path, out_path, err))
    return usage_error("strip-stream: " + err);
  std::string text;
  if (!read_file(stream_path, text)) {
    std::fprintf(stderr, "lacobs: cannot read %s\n", stream_path.c_str());
    return kExitNoInput;
  }
  std::string stripped = obs::stream::strip_stream(text);
  // emit() appends one newline; the stripped stream already ends with one.
  if (!stripped.empty() && stripped.back() == '\n') stripped.pop_back();
  return emit(out_path, stripped);
}

int cmd_fold(const std::vector<std::string>& args) {
  std::string stream_path, out_path, err;
  if (!parse_report_and_output(args, stream_path, out_path, err))
    return usage_error("fold: " + err);
  const auto folded = obs::stream::fold_file(stream_path);
  if (!folded) {
    std::fprintf(stderr, "lacobs: cannot read %s or it contains no events\n",
                 stream_path.c_str());
    return kExitNoInput;
  }
  if (folded->truncated)
    std::fprintf(stderr,
                 "lacobs: warning: stream is truncated (killed run?): "
                 "folded %lld event(s),\n"
                 "lacobs: skipped %lld unparseable line(s); report is "
                 "marked \"truncated\": true\n",
                 static_cast<long long>(folded->events),
                 static_cast<long long>(folded->skipped_lines));
  return emit(out_path, obs::json::serialize(folded->report));
}

// ---------------------------------------------------------------------------
// tail: live progress from a stream.

// Per-stage aggregate over the events seen so far.
struct TailStage {
  long long done = 0;
  double total_seconds = 0.0;
  long long running = 0;
  double oldest_open_t = 0.0;  // open time of the longest-running instance
};

struct TailState {
  std::string run_name;
  std::map<std::string, TailStage> stages;
  std::map<std::int64_t, std::pair<std::string, double>> open;  // id->name,t
  double last_t = 0.0;
  long long rss_bytes = 0;
  std::string round_line;
  long long events = 0;
  bool end_seen = false;
};

void tail_add_tree(TailState& st, const obs::json::Value& span) {
  const obs::json::Value* name = span.find("name");
  if (name != nullptr && name->kind == obs::json::Value::Kind::kString) {
    TailStage& stage = st.stages[name->str];
    ++stage.done;
    if (const obs::json::Value* s = span.find("seconds");
        s != nullptr && s->kind == obs::json::Value::Kind::kNumber)
      stage.total_seconds += s->num;
  }
  if (const obs::json::Value* kids = span.find("children");
      kids != nullptr && kids->is_array())
    for (const obs::json::Value& c : kids->array)
      if (c.is_object()) tail_add_tree(st, c);
}

TailState tail_parse(const std::string& text) {
  TailState st;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string_view line =
        std::string_view(text).substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const auto parsed = obs::json::parse(line);
    if (!parsed || !parsed->is_object()) continue;
    const obs::json::Value& ev = *parsed;
    const obs::json::Value* kind = ev.find("ev");
    if (kind == nullptr || kind->kind != obs::json::Value::Kind::kString)
      continue;
    ++st.events;
    if (const obs::json::Value* t = ev.find("t");
        t != nullptr && t->kind == obs::json::Value::Kind::kNumber)
      st.last_t = std::max(st.last_t, t->num);
    const std::string& k = kind->str;
    const auto num = [&](const char* key, double fallback) {
      const obs::json::Value* v = ev.find(key);
      return v != nullptr && v->kind == obs::json::Value::Kind::kNumber
                 ? v->num
                 : fallback;
    };
    if (k == "run") {
      if (const obs::json::Value* n = ev.find("name");
          n != nullptr && n->kind == obs::json::Value::Kind::kString)
        st.run_name = n->str;
    } else if (k == "open") {
      const obs::json::Value* n = ev.find("name");
      if (n != nullptr && n->kind == obs::json::Value::Kind::kString)
        st.open[static_cast<std::int64_t>(num("id", 0.0))] = {n->str,
                                                              num("t", 0.0)};
    } else if (k == "close") {
      const std::int64_t id = static_cast<std::int64_t>(num("id", 0.0));
      st.open.erase(id);
      if (const obs::json::Value* n = ev.find("name");
          n != nullptr && n->kind == obs::json::Value::Kind::kString) {
        TailStage& stage = st.stages[n->str];
        ++stage.done;
        stage.total_seconds += num("seconds", 0.0);
      }
    } else if (k == "span") {
      if (const obs::json::Value* root = ev.find("root");
          root != nullptr && root->is_object())
        tail_add_tree(st, *root);
    } else if (k == "hb") {
      if (const double rss = num("rss_bytes", 0.0); rss > 0)
        st.rss_bytes = static_cast<long long>(rss);
    } else if (k == "round") {
      st.round_line =
          "LAC round " + format_double(num("round", 0.0), 0) +
          ": n_foa=" + format_double(num("n_foa", 0.0), 0) +
          " best=" + format_double(num("best_n_foa", 0.0), 0) +
          " overflow=" + format_double(num("max_overflow", 0.0), 2);
      const obs::json::Value* improved = ev.find("improved");
      if (improved != nullptr &&
          improved->kind == obs::json::Value::Kind::kBool && improved->b)
        st.round_line += " (improved)";
    } else if (k == "end") {
      st.end_seen = true;
    }
  }
  // Spans still open count as running for their stage.
  for (const auto& [id, name_t] : st.open) {
    TailStage& stage = st.stages[name_t.first];
    ++stage.running;
    if (stage.running == 1 || name_t.second < stage.oldest_open_t)
      stage.oldest_open_t = name_t.second;
  }
  return st;
}

void tail_render(const TailState& st) {
  std::printf("--- %s  t=%ss  events=%lld%s\n",
              st.run_name.empty() ? "(stream)" : st.run_name.c_str(),
              format_double(st.last_t, 1).c_str(), st.events,
              st.end_seen ? "  [finished]" : "");
  if (st.rss_bytes > 0)
    std::printf("rss: %s MB\n",
                format_double(static_cast<double>(st.rss_bytes) / 1048576.0,
                              1)
                    .c_str());
  if (!st.round_line.empty()) std::printf("%s\n", st.round_line.c_str());
  if (st.stages.empty()) {
    std::printf("(no span events yet)\n");
    return;
  }
  // Largest total time first; one-screen cap.
  std::vector<std::pair<std::string, TailStage>> rows(st.stages.begin(),
                                                      st.stages.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_seconds != b.second.total_seconds)
      return a.second.total_seconds > b.second.total_seconds;
    return a.first < b.first;
  });
  if (rows.size() > 15) rows.resize(15);
  TextTable table({"stage", "done", "mean(s)", "running", "eta(s)"});
  for (const auto& [name, s] : rows) {
    const double mean =
        s.done > 0 ? s.total_seconds / static_cast<double>(s.done) : 0.0;
    // ETA of the longest-running open instance, from the mean of finished
    // instances of the same stage; "?" without history.
    std::string eta = "-";
    if (s.running > 0)
      eta = s.done > 0 ? format_double(std::max(
                             0.0, mean - (st.last_t - s.oldest_open_t)),
                                       1)
                       : "?";
    table.add_row({name, std::to_string(s.done),
                   s.done > 0 ? format_double(mean, 4) : "-",
                   std::to_string(s.running), eta});
  }
  std::printf("%s", table.to_string().c_str());
}

int cmd_tail(const std::vector<std::string>& args) {
  std::string path;
  bool once = false;
  long long interval_ms = 500;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--once") {
      once = true;
    } else if (args[i] == "--interval") {
      if (i + 1 >= args.size())
        return usage_error("tail: --interval needs a millisecond count");
      char* end = nullptr;
      interval_ms = std::strtoll(args[i + 1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || end == args[i + 1].c_str() ||
          interval_ms <= 0)
        return usage_error("tail: bad --interval value '" + args[i + 1] +
                           "'");
      ++i;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error("tail: unknown option " + args[i]);
    } else if (path.empty()) {
      path = args[i];
    } else {
      return usage_error("tail: unexpected argument " + args[i]);
    }
  }
  if (path.empty()) return usage_error("tail: missing stream path");

  std::string text;
  long long last_events = -1;
  while (true) {
    if (!read_file(path, text)) {
      std::fprintf(stderr, "lacobs: cannot read %s\n", path.c_str());
      return kExitNoInput;
    }
    const TailState st = tail_parse(text);
    // Re-render only when something new arrived (first pass always).
    if (st.events != last_events) {
      tail_render(st);
      last_events = st.events;
    }
    if (once || st.end_seen) return kExitOk;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

// ---------------------------------------------------------------------------
// history: the perf-gate trend file (bench/history/history.jsonl).

constexpr const char* kDefaultHistoryPath = "bench/history/history.jsonl";

int cmd_history_add(const std::vector<std::string>& args) {
  std::string report_path, file_path, commit = "unknown";
  double seconds = -1.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--file") {
      if (i + 1 >= args.size())
        return usage_error("history-add: --file needs a path");
      file_path = args[++i];
    } else if (args[i] == "--commit") {
      if (i + 1 >= args.size())
        return usage_error("history-add: --commit needs a value");
      commit = args[++i];
    } else if (args[i] == "--seconds") {
      if (i + 1 >= args.size())
        return usage_error("history-add: --seconds needs a value");
      char* end = nullptr;
      seconds = std::strtod(args[i + 1].c_str(), &end);
      if (end == nullptr || *end != '\0' || seconds < 0.0)
        return usage_error("history-add: bad --seconds value '" +
                           args[i + 1] + "'");
      ++i;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error("history-add: unknown option " + args[i]);
    } else if (report_path.empty()) {
      report_path = args[i];
    } else {
      return usage_error("history-add: unexpected argument " + args[i]);
    }
  }
  if (report_path.empty())
    return usage_error("history-add: missing report path");
  if (file_path.empty()) file_path = kDefaultHistoryPath;

  obs::json::Value report;
  if (!load_report(report_path, report)) return kExitNoInput;

  // The compact record: solver-effort counters and logical-memory gauges
  // are the per-commit trend the gate cares about.  One flat "metrics"
  // object keeps the file greppable.
  obs::json::Writer w;
  w.begin_object();
  w.kv("commit", commit);
  w.kv("unix_ms",
       static_cast<std::int64_t>(
           std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
               .count()));
  if (seconds >= 0.0) w.kv("seconds", seconds);
  w.key("metrics");
  w.begin_object();
  const auto keep = [](const std::string& name, bool gauge_section) {
    if (gauge_section)
      return name.rfind("mcf.", 0) == 0 || name.rfind("mem.", 0) == 0;
    return name.rfind("mcf.", 0) == 0 || name.rfind("lac.", 0) == 0;
  };
  if (const auto* c = report.at_path({"metrics", "counters"});
      c != nullptr && c->is_object())
    for (const auto& [k, v] : c->object)
      if (v.kind == obs::json::Value::Kind::kNumber && keep(k, false))
        w.kv(k, v.num);
  if (const auto* g = report.at_path({"metrics", "gauges"});
      g != nullptr && g->is_object())
    for (const auto& [k, v] : g->object)
      if (v.kind == obs::json::Value::Kind::kNumber && keep(k, true))
        w.kv(k, v.num);
  w.end_object();
  w.end_object();

  if (const std::filesystem::path parent =
          std::filesystem::path(file_path).parent_path();
      !parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out(file_path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "lacobs: cannot append to %s\n", file_path.c_str());
    return kExitNoInput;
  }
  out << w.take() << '\n';
  if (!out) {
    std::fprintf(stderr, "lacobs: short write to %s\n", file_path.c_str());
    return kExitNoInput;
  }
  std::printf("history: appended %s to %s\n", commit.c_str(),
              file_path.c_str());
  return kExitOk;
}

int cmd_history(const std::vector<std::string>& args) {
  std::string path;
  long long limit = 12;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-n") {
      if (i + 1 >= args.size())
        return usage_error("history: -n needs a count");
      char* end = nullptr;
      limit = std::strtoll(args[i + 1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || end == args[i + 1].c_str() ||
          limit <= 0)
        return usage_error("history: bad -n value '" + args[i + 1] + "'");
      ++i;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error("history: unknown option " + args[i]);
    } else if (path.empty()) {
      path = args[i];
    } else {
      return usage_error("history: unexpected argument " + args[i]);
    }
  }
  if (path.empty()) path = kDefaultHistoryPath;

  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "lacobs: cannot read %s\n", path.c_str());
    return kExitNoInput;
  }
  std::vector<obs::json::Value> records;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string_view line =
        std::string_view(text).substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (auto parsed = obs::json::parse(line); parsed && parsed->is_object())
      records.push_back(std::move(*parsed));
  }
  if (records.empty()) {
    std::fprintf(stderr, "lacobs: no history records in %s\n", path.c_str());
    return kExitNoInput;
  }
  const std::size_t start =
      records.size() > static_cast<std::size_t>(limit)
          ? records.size() - static_cast<std::size_t>(limit)
          : 0;

  // Columns: the newest record's metrics define the trend keys (older
  // records missing one show "-"); capped for one-screen width.
  std::vector<std::string> keys;
  if (const obs::json::Value* m = records.back().find("metrics");
      m != nullptr && m->is_object())
    for (const auto& [k, v] : m->object) {
      if (keys.size() >= 5) break;
      keys.push_back(k);
    }
  std::vector<std::string> header = {"commit", "when", "seconds", "delta%"};
  header.insert(header.end(), keys.begin(), keys.end());
  TextTable table(header);
  double prev_seconds = -1.0;
  for (std::size_t i = start; i < records.size(); ++i) {
    const obs::json::Value& r = records[i];
    std::string commit = "?";
    if (const obs::json::Value* c = r.find("commit");
        c != nullptr && c->kind == obs::json::Value::Kind::kString)
      commit = c->str.size() > 10 ? c->str.substr(0, 10) : c->str;
    std::string when = "-";
    if (const obs::json::Value* t = r.find("unix_ms");
        t != nullptr && t->kind == obs::json::Value::Kind::kNumber) {
      const std::time_t secs = static_cast<std::time_t>(t->num / 1000.0);
      std::tm tm_utc{};
      if (gmtime_r(&secs, &tm_utc) != nullptr) {
        char buf[32];
        std::strftime(buf, sizeof buf, "%Y-%m-%d %H:%M", &tm_utc);
        when = buf;
      }
    }
    std::string secs_str = "-", delta = "-";
    if (const obs::json::Value* s = r.find("seconds");
        s != nullptr && s->kind == obs::json::Value::Kind::kNumber) {
      secs_str = format_double(s->num, 2);
      if (prev_seconds > 0.0)
        delta = format_double((s->num - prev_seconds) / prev_seconds * 100.0,
                              1);
      prev_seconds = s->num;
    }
    std::vector<std::string> row = {commit, when, secs_str, delta};
    const obs::json::Value* m = r.find("metrics");
    for (const std::string& k : keys) {
      const obs::json::Value* v =
          m != nullptr && m->is_object() ? m->find(k) : nullptr;
      row.push_back(v != nullptr &&
                            v->kind == obs::json::Value::Kind::kNumber
                        ? format_double(v->num,
                                        v->num ==
                                                static_cast<double>(
                                                    static_cast<long long>(
                                                        v->num))
                                            ? 0
                                            : 2)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  std::printf("%zu record(s) in %s (showing %zu)\n%s", records.size(),
              path.c_str(), records.size() - start,
              table.to_string().c_str());
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error("missing command");
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);

  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    print_usage(stdout);
    return kExitOk;
  }
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "summary") return cmd_summary(args);
  if (cmd == "top") return cmd_top(args);
  if (cmd == "mem") return cmd_mem(args);
  if (cmd == "diff") return cmd_diff(args);
  if (cmd == "strip-times") return cmd_strip_times(args);
  if (cmd == "fold") return cmd_fold(args);
  if (cmd == "strip-stream") return cmd_strip_stream(args);
  if (cmd == "tail") return cmd_tail(args);
  if (cmd == "history") return cmd_history(args);
  if (cmd == "history-add") return cmd_history_add(args);
  return usage_error("unknown command '" + cmd + "'");
}
