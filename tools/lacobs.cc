// lacobs — analysis CLI for lac-obs-report/2 run reports (v1 reports,
// which simply lack the memory fields, are accepted everywhere).
//
//   lacobs trace <report.json> [-o out.json]
//       Convert the report's span tree + metrics into Chrome trace-event
//       JSON (open in Perfetto / chrome://tracing).  Defaults to stdout.
//   lacobs summary <report.json...>
//       Aggregate per-span-name table (count/total/self/min/max/mean)
//       across all given reports, the critical chain, and the counters.
//       Warns on stderr when the reports dropped root spans.
//   lacobs top <report.json...> [-n N]
//       Hotspot view: the N span names with the largest self time, and —
//       when the reports carry memory data — the N with the largest self
//       allocation.
//   lacobs mem <report.json...> [--per-gate]
//       Per-span-name memory table (allocated / freed / peak live) plus
//       the mem.* gauges.  --per-gate divides byte values by the total
//       cell count from the planner.plan root annotations.
//   lacobs diff <baseline.json> <report.json> [--time-tol F]
//         [--time-fail F] [--timings-warn-only] [--min-seconds S]
//         [--ignore PREFIX]...
//       Diff a report against a baseline.  Exit 0 when clean, 1 on
//       timing warnings, 2 on a regression (deterministic mismatch or a
//       timing past the fail tier) — CI gates on the exit code.
//   lacobs strip-times <report.json> [-o out.json]
//       Copy of the report with wall-clock and memory data removed, for
//       checking in as a byte-stable baseline.
//
// Exit codes: 0 ok · 1 diff warnings · 2 diff regression · 64 usage
// error · 66 unreadable/unparseable input.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "base/str_util.h"
#include "base/table.h"
#include "obs/analyze.h"
#include "obs/compare.h"
#include "obs/json.h"
#include "obs/trace_event.h"

namespace {

using namespace lac;

constexpr int kExitOk = 0;
constexpr int kExitWarn = 1;
constexpr int kExitRegress = 2;
constexpr int kExitUsage = 64;    // EX_USAGE
constexpr int kExitNoInput = 66;  // EX_NOINPUT

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: lacobs <command> [args]\n"
               "\n"
               "commands:\n"
               "  trace <report.json> [-o out.json]\n"
               "      convert a lac-obs-report/2 (or /1) file to Chrome "
               "trace-event JSON\n"
               "      (Perfetto / chrome://tracing); stdout by default\n"
               "  summary <report.json...>\n"
               "      aggregate span table, critical chain and counters "
               "across runs\n"
               "  top <report.json...> [-n N]\n"
               "      top-N spans by self time and by self allocation "
               "(default 10)\n"
               "  mem <report.json...> [--per-gate]\n"
               "      per-span memory table and mem.* gauges; --per-gate "
               "normalises\n"
               "      bytes by the planned cell count\n"
               "  diff <baseline.json> <report.json> [--time-tol F] "
               "[--time-fail F]\n"
               "       [--timings-warn-only] [--min-seconds S] "
               "[--ignore PREFIX]...\n"
               "      compare against a baseline; exit 0 ok, 1 warnings, "
               "2 regression\n"
               "      --ignore skips counters/gauges/histograms/spans whose "
               "name starts\n"
               "      with PREFIX (repeatable; for cross-config comparisons)\n"
               "  strip-times <report.json> [-o out.json]\n"
               "      drop wall-clock data so the report can serve as a "
               "CI baseline\n"
               "  help | --help | -h\n");
}

int usage_error(const std::string& msg) {
  std::fprintf(stderr, "lacobs: %s\n", msg.c_str());
  print_usage(stderr);
  return kExitUsage;
}

// Loads and parses a report, exiting the command with kExitNoInput via
// the returned flag when it cannot be read.
bool load_report(const std::string& path, obs::json::Value& out) {
  auto doc = obs::json::parse_file(path);
  if (!doc) {
    std::fprintf(stderr, "lacobs: cannot read or parse %s\n", path.c_str());
    return false;
  }
  out = std::move(*doc);
  return true;
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text << '\n';
  return static_cast<bool>(out);
}

// Renders `text` to `-o` target when given, stdout otherwise.
int emit(const std::string& out_path, const std::string& text) {
  if (out_path.empty()) {
    std::printf("%s\n", text.c_str());
    return kExitOk;
  }
  if (!write_text(out_path, text)) {
    std::fprintf(stderr, "lacobs: cannot write %s\n", out_path.c_str());
    return kExitNoInput;
  }
  return kExitOk;
}

// Parses `<report> [-o out]` for trace / strip-times.
bool parse_report_and_output(const std::vector<std::string>& args,
                             std::string& report, std::string& out,
                             std::string& err) {
  report.clear();
  out.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" || args[i] == "--output") {
      if (i + 1 >= args.size()) {
        err = args[i] + " needs a path";
        return false;
      }
      out = args[++i];
    } else if (!args[i].empty() && args[i][0] == '-') {
      err = "unknown option " + args[i];
      return false;
    } else if (report.empty()) {
      report = args[i];
    } else {
      err = "unexpected argument " + args[i];
      return false;
    }
  }
  if (report.empty()) {
    err = "missing report path";
    return false;
  }
  return true;
}

int cmd_trace(const std::vector<std::string>& args) {
  std::string report_path, out_path, err;
  if (!parse_report_and_output(args, report_path, out_path, err))
    return usage_error("trace: " + err);
  obs::json::Value report;
  if (!load_report(report_path, report)) return kExitNoInput;
  return emit(out_path, obs::render_trace_events(report));
}

int cmd_strip_times(const std::vector<std::string>& args) {
  std::string report_path, out_path, err;
  if (!parse_report_and_output(args, report_path, out_path, err))
    return usage_error("strip-times: " + err);
  obs::json::Value report;
  if (!load_report(report_path, report)) return kExitNoInput;
  return emit(out_path, obs::json::serialize(obs::strip_times(report)));
}

// Everything top/mem/summary need from a set of reports.  Counters and
// dropped-span counts sum across reports; gauges keep the per-name max
// (each report is a separate run, so max is the right aggregate for the
// mem.* footprint gauges).
struct LoadedReports {
  std::vector<obs::SpanNode> roots;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::int64_t dropped_root_spans = 0;
  int reports = 0;
};

bool load_many(const std::vector<std::string>& paths, LoadedReports& out) {
  for (const std::string& path : paths) {
    obs::json::Value report;
    if (!load_report(path, report)) return false;
    for (obs::SpanNode& r : obs::trace_from_report(report))
      out.roots.push_back(std::move(r));
    if (const auto* c = report.at_path({"metrics", "counters"});
        c != nullptr && c->is_object())
      for (const auto& [k, v] : c->object)
        if (v.kind == obs::json::Value::Kind::kNumber)
          out.counters[k] += v.num;
    if (const auto* g = report.at_path({"metrics", "gauges"});
        g != nullptr && g->is_object())
      for (const auto& [k, v] : g->object)
        if (v.kind == obs::json::Value::Kind::kNumber) {
          auto [it, fresh] = out.gauges.emplace(k, v.num);
          if (!fresh && v.num > it->second) it->second = v.num;
        }
    if (const auto* d = report.at_path({"dropped_root_spans"});
        d != nullptr && d->kind == obs::json::Value::Kind::kNumber)
      out.dropped_root_spans += static_cast<std::int64_t>(d->num);
    ++out.reports;
  }
  return true;
}

// Shared stderr warning: a nonzero dropped-span count means the span
// tables undercount whatever was dropped.
void warn_dropped(const LoadedReports& loaded) {
  if (loaded.dropped_root_spans <= 0) return;
  std::fprintf(stderr,
               "lacobs: warning: %lld root span(s) were dropped by the "
               "span-store cap;\n"
               "lacobs: raise it with --span-cap / "
               "RunControls::max_root_spans for full data\n",
               static_cast<long long>(loaded.dropped_root_spans));
}

int cmd_summary(const std::vector<std::string>& args) {
  if (args.empty()) return usage_error("summary: missing report path");
  for (const std::string& a : args)
    if (!a.empty() && a[0] == '-')
      return usage_error("summary: unknown option " + a);

  LoadedReports loaded;
  if (!load_many(args, loaded)) return kExitNoInput;
  warn_dropped(loaded);
  std::vector<obs::SpanNode>& roots = loaded.roots;
  std::map<std::string, double>& counters = loaded.counters;
  const int reports = loaded.reports;

  std::printf("%d report(s), %zu root span(s)\n\n", reports, roots.size());

  const auto stats = obs::aggregate_spans(roots);
  if (!stats.empty()) {
    TextTable table({"span", "count", "total(s)", "self(s)", "min(s)",
                     "max(s)", "mean(s)"});
    for (const obs::SpanStats& s : stats)
      table.add_row({s.name, std::to_string(s.count),
                     format_double(s.total_seconds, 4),
                     format_double(s.self_seconds, 4),
                     format_double(s.min_seconds, 4),
                     format_double(s.max_seconds, 4),
                     format_double(s.mean_seconds(), 4)});
    std::printf("%s\n", table.to_string().c_str());

    const auto chain = obs::critical_chain(roots);
    std::string rendered;
    for (const obs::SpanNode* n : chain) {
      if (!rendered.empty()) rendered += " > ";
      rendered += n->name + " (" + format_double(n->seconds, 4) + "s)";
    }
    std::printf("critical chain: %s\n\n", rendered.c_str());
  }

  if (!counters.empty()) {
    TextTable table({"counter", "value"});
    for (const auto& [k, v] : counters)
      table.add_row({k, format_double(v, 0)});
    std::printf("%s\n", table.to_string().c_str());
  }
  return kExitOk;
}

// Bytes column: integers as-is; --per-gate averages get one decimal.
std::string format_bytes(double v, bool per_gate) {
  return format_double(v, per_gate ? 1 : 0);
}

int cmd_top(const std::vector<std::string>& args) {
  long long limit = 10;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-n" || args[i] == "--top") {
      if (i + 1 >= args.size())
        return usage_error("top: " + args[i] + " needs a count");
      char* end = nullptr;
      limit = std::strtoll(args[i + 1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || end == args[i + 1].c_str() ||
          limit <= 0)
        return usage_error("top: bad count '" + args[i + 1] + "'");
      ++i;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error("top: unknown option " + args[i]);
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.empty()) return usage_error("top: missing report path");

  LoadedReports loaded;
  if (!load_many(paths, loaded)) return kExitNoInput;
  warn_dropped(loaded);

  auto stats = obs::aggregate_spans(loaded.roots);
  const std::size_t n =
      std::min<std::size_t>(stats.size(), static_cast<std::size_t>(limit));

  // By self time (exclusive of children): the actual hotspots, not the
  // parents that merely contain them.
  std::sort(stats.begin(), stats.end(),
            [](const obs::SpanStats& a, const obs::SpanStats& b) {
              if (a.self_seconds != b.self_seconds)
                return a.self_seconds > b.self_seconds;
              return a.name < b.name;
            });
  std::printf("top %zu by self time\n", n);
  TextTable time_table({"#", "span", "count", "self(s)", "total(s)"});
  for (std::size_t i = 0; i < n; ++i)
    time_table.add_row({std::to_string(i + 1), stats[i].name,
                        std::to_string(stats[i].count),
                        format_double(stats[i].self_seconds, 4),
                        format_double(stats[i].total_seconds, 4)});
  std::printf("%s\n", time_table.to_string().c_str());

  bool any_mem = false;
  for (const obs::SpanStats& s : stats) any_mem |= s.has_mem;
  if (!any_mem) {
    std::printf("no span memory data (v1 report or LAC_OBS_MEM off)\n");
    return kExitOk;
  }
  std::sort(stats.begin(), stats.end(),
            [](const obs::SpanStats& a, const obs::SpanStats& b) {
              if (a.self_alloc_bytes != b.self_alloc_bytes)
                return a.self_alloc_bytes > b.self_alloc_bytes;
              return a.name < b.name;
            });
  std::printf("top %zu by self allocation\n", n);
  TextTable mem_table(
      {"#", "span", "count", "self_alloc(B)", "alloc(B)", "peak_live(B)"});
  for (std::size_t i = 0; i < n; ++i)
    mem_table.add_row(
        {std::to_string(i + 1), stats[i].name, std::to_string(stats[i].count),
         std::to_string(stats[i].self_alloc_bytes),
         std::to_string(stats[i].alloc_bytes),
         std::to_string(stats[i].peak_live_bytes)});
  std::printf("%s\n", mem_table.to_string().c_str());
  return kExitOk;
}

int cmd_mem(const std::vector<std::string>& args) {
  bool per_gate = false;
  std::vector<std::string> paths;
  for (const std::string& a : args) {
    if (a == "--per-gate") {
      per_gate = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage_error("mem: unknown option " + a);
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) return usage_error("mem: missing report path");

  LoadedReports loaded;
  if (!load_many(paths, loaded)) return kExitNoInput;
  warn_dropped(loaded);

  // --per-gate normalisation: total planned cells, from the `cells`
  // annotation the planner writes on every planner.plan root span.
  double gates = 0.0;
  for (const obs::SpanNode& root : loaded.roots)
    if (const obs::Annotation* a = root.find_annotation("cells");
        a != nullptr && a->kind == obs::Annotation::Kind::kInt)
      gates += static_cast<double>(a->i);
  if (per_gate && gates <= 0.0) {
    std::fprintf(stderr,
                 "lacobs: mem: --per-gate needs planner.plan roots with a "
                 "'cells' annotation\n");
    return kExitNoInput;
  }
  const double scale = per_gate ? 1.0 / gates : 1.0;
  const char* unit = per_gate ? "B/gate" : "B";

  const auto stats = obs::aggregate_spans(loaded.roots);
  bool any_mem = false;
  for (const obs::SpanStats& s : stats) any_mem |= s.has_mem;
  if (any_mem) {
    TextTable table({"span", "count", std::string("alloc(") + unit + ")",
                     std::string("freed(") + unit + ")",
                     std::string("self_alloc(") + unit + ")",
                     std::string("peak_live(") + unit + ")"});
    for (const obs::SpanStats& s : stats) {
      if (!s.has_mem) continue;
      table.add_row(
          {s.name, std::to_string(s.count),
           format_bytes(static_cast<double>(s.alloc_bytes) * scale, per_gate),
           format_bytes(static_cast<double>(s.freed_bytes) * scale, per_gate),
           format_bytes(static_cast<double>(s.self_alloc_bytes) * scale,
                        per_gate),
           format_bytes(static_cast<double>(s.peak_live_bytes) * scale,
                        per_gate)});
    }
    std::printf("%s\n", table.to_string().c_str());
  } else {
    std::printf("no span memory data (v1 report or LAC_OBS_MEM off)\n\n");
  }

  bool any_gauge = false;
  for (const auto& [k, v] : loaded.gauges)
    any_gauge |= k.rfind("mem.", 0) == 0;
  if (any_gauge) {
    TextTable table({"gauge", std::string("value(") + unit + ")"});
    for (const auto& [k, v] : loaded.gauges) {
      if (k.rfind("mem.", 0) != 0) continue;
      // RSS is a process-wide OS number; normalising it per gate would
      // suggest a precision it does not have.
      const bool rss = k.find("rss") != std::string::npos;
      table.add_row({rss ? k + " (noisy)" : k,
                     format_bytes(v * (rss ? 1.0 : scale),
                                  per_gate && !rss)});
    }
    std::printf("%s\n", table.to_string().c_str());
  } else {
    std::printf("no mem.* gauges in the report(s)\n");
  }
  if (per_gate)
    std::printf("normalised by %s gates\n", format_double(gates, 0).c_str());
  return kExitOk;
}

int cmd_diff(const std::vector<std::string>& args) {
  obs::DiffOptions opts;
  std::string baseline_path, report_path;
  const auto double_flag = [&](std::size_t& i, double& out,
                               std::string& err) {
    if (i + 1 >= args.size()) {
      err = args[i] + " needs a value";
      return false;
    }
    char* end = nullptr;
    out = std::strtod(args[i + 1].c_str(), &end);
    if (end == nullptr || *end != '\0') {
      err = "bad number for " + args[i] + ": " + args[i + 1];
      return false;
    }
    ++i;
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string err;
    if (args[i] == "--time-tol") {
      if (!double_flag(i, opts.time_warn_tol, err))
        return usage_error("diff: " + err);
    } else if (args[i] == "--time-fail") {
      if (!double_flag(i, opts.time_fail_tol, err))
        return usage_error("diff: " + err);
    } else if (args[i] == "--min-seconds") {
      if (!double_flag(i, opts.min_seconds, err))
        return usage_error("diff: " + err);
    } else if (args[i] == "--timings-warn-only") {
      opts.timings_warn_only = true;
    } else if (args[i] == "--ignore") {
      if (i + 1 >= args.size())
        return usage_error("diff: --ignore needs a value");
      opts.ignore_prefixes.push_back(args[++i]);
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error("diff: unknown option " + args[i]);
    } else if (baseline_path.empty()) {
      baseline_path = args[i];
    } else if (report_path.empty()) {
      report_path = args[i];
    } else {
      return usage_error("diff: unexpected argument " + args[i]);
    }
  }
  if (baseline_path.empty() || report_path.empty())
    return usage_error("diff: need <baseline.json> <report.json>");

  obs::json::Value baseline, report;
  if (!load_report(baseline_path, baseline)) return kExitNoInput;
  if (!load_report(report_path, report)) return kExitNoInput;

  const obs::DiffResult res = obs::diff_reports(baseline, report, opts);

  const auto kind_name = [](obs::DiffEntry::Kind k) {
    switch (k) {
      case obs::DiffEntry::Kind::kCounter: return "counter";
      case obs::DiffEntry::Kind::kGauge: return "gauge";
      case obs::DiffEntry::Kind::kHistogram: return "histogram";
      case obs::DiffEntry::Kind::kSpanCount: return "span-count";
      case obs::DiffEntry::Kind::kSpanTime: return "span-time";
    }
    return "?";
  };
  // Counters and span counts are integers; timings get 4 decimals.
  const auto fmt = [](double v) {
    return v == static_cast<double>(static_cast<long long>(v))
               ? format_double(v, 0)
               : format_double(v, 4);
  };
  bool any = false;
  TextTable table({"verdict", "kind", "name", "baseline", "current", "note"});
  for (const obs::DiffEntry& e : res.entries) {
    if (e.verdict == obs::Verdict::kOk) continue;
    any = true;
    table.add_row({obs::verdict_name(e.verdict), kind_name(e.kind), e.name,
                   fmt(e.baseline), fmt(e.current), e.note});
  }
  if (any) std::printf("%s\n", table.to_string().c_str());
  std::printf("%zu comparison(s): %d ok, %d warn, %d regress\n",
              res.entries.size(), res.count(obs::Verdict::kOk),
              res.count(obs::Verdict::kWarn),
              res.count(obs::Verdict::kRegress));
  std::printf("verdict: %s\n", obs::verdict_name(res.verdict));
  switch (res.verdict) {
    case obs::Verdict::kOk: return kExitOk;
    case obs::Verdict::kWarn: return kExitWarn;
    case obs::Verdict::kRegress: return kExitRegress;
  }
  return kExitRegress;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error("missing command");
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);

  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    print_usage(stdout);
    return kExitOk;
  }
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "summary") return cmd_summary(args);
  if (cmd == "top") return cmd_top(args);
  if (cmd == "mem") return cmd_mem(args);
  if (cmd == "diff") return cmd_diff(args);
  if (cmd == "strip-times") return cmd_strip_times(args);
  return usage_error("unknown command '" + cmd + "'");
}
