// Technology exploration: how wire parasitics move the interconnect-
// pipelining frontier the paper is motivated by ("the wire delay can be as
// long as about ten clock cycles").
//
// For a range of wire RC scalings, this example reports the buffered
// cross-chip wire delay, how many clock cycles it costs at the suite
// circuit's minimum period, and how many flip-flops the planner's retiming
// ends up placing inside interconnects.
#include <cstdio>

#include "base/str_util.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "planner/interconnect_planner.h"
#include "timing/technology.h"

int main(int argc, char** argv) {
  using namespace lac;
  const char* name = argc > 1 ? argv[1] : "y838";
  const auto& entry = bench89::entry_by_name(name);
  const auto nl = bench89::load(entry);

  std::printf("=== wire-RC exploration on %s ===\n\n", name);
  TextTable table({"RC scale", "x-chip delay(ps)", "T_min(ps)",
                   "cycles/crossing", "N_F", "N_FN", "FF-in-wire %"});
  for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
    planner::PlannerConfig cfg;
    cfg.run.seed = 7;
    cfg.num_blocks = entry.recommended_blocks;
    cfg.tech.wire_res_per_um *= scale;
    cfg.tech.wire_cap_per_um *= scale;
    planner::InterconnectPlanner planner(cfg);
    const auto res = planner.plan(nl);

    // Cross-chip buffered delay estimate: chip diagonal in L_max stages.
    const double span = static_cast<double>(res.fp.chip.width() +
                                            res.fp.chip.height());
    const int stages = std::max(
        1, static_cast<int>(span / cfg.tech.max_repeater_interval));
    const double per_stage = timing::repeater_stage_delay(
        cfg.tech, span / stages, cfg.tech.repeater_in_cap);
    const double crossing = per_stage * stages;

    const auto& lr = res.lac.report;
    const double pct = lr.n_f > 0 ? 100.0 * static_cast<double>(lr.n_fn) /
                                        static_cast<double>(lr.n_f)
                                  : 0.0;
    table.add_row({format_double(scale, 1), format_double(crossing, 0),
                   format_double(res.t_min_ps, 0),
                   format_double(crossing / res.t_min_ps, 2),
                   std::to_string(lr.n_f), std::to_string(lr.n_fn),
                   format_double(pct, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("As wires slow down relative to logic, crossings cost more\n"
              "cycles and retiming pushes more flip-flops into the wires —\n"
              "the deep-submicron trend the paper's flow exists for.\n");
  return 0;
}
