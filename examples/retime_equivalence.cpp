// Demonstrates that retiming preserves circuit behaviour: retime s27 (or
// any .bench netlist) to its minimum period, materialise the retimed
// netlist, and co-simulate both machines on random stimulus.  On every
// cycle where both outputs are defined (non-X under pessimistic power-up),
// they must agree — and the example prints the trace so you can watch the
// retimed machine's slightly longer X warm-up.
//
// Usage: retime_equivalence [netlist.bench] [cycles]
#include <cstdio>
#include <string>

#include "base/rng.h"
#include "bench89/suite.h"
#include "netlist/bench_io.h"
#include "netlist/simulate.h"
#include "retime/apply.h"
#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"

namespace {
char logic_char(lac::netlist::Logic v) {
  using lac::netlist::Logic;
  return v == Logic::kZero ? '0' : v == Logic::kOne ? '1' : 'X';
}
}  // namespace

int main(int argc, char** argv) {
  using namespace lac;
  const std::string which = argc > 1 ? argv[1] : "s27";
  const int cycles = argc > 2 ? std::atoi(argv[2]) : 24;

  const netlist::Netlist nl =
      which == "s27" ? bench89::s27() : netlist::parse_bench_file(which);

  const auto lg = retime::build_logic_graph(nl, 10.0);
  const auto wd = retime::WdMatrices::compute(lg.graph);
  std::vector<int> r;
  const double t_min = retime::min_period_retiming(lg.graph, wd, &r);
  const auto cs = retime::build_constraints(lg.graph, wd,
                                            retime::to_decips(t_min));
  const auto r_area = retime::min_area_retiming(lg.graph, cs);
  const auto nl2 = retime::apply_retiming(nl, lg, *r_area);

  std::printf("%s: T_init %.0f ps -> T_min %.0f ps; registers %d -> %d\n\n",
              nl.name().c_str(), wd.t_init_ps(), t_min,
              nl.count(netlist::CellType::kDff),
              nl2.count(netlist::CellType::kDff));

  netlist::Simulator sim_a(nl), sim_b(nl2);
  sim_a.reset();
  sim_b.reset();
  Rng rng(2003);
  std::printf("cycle | inputs | original | retimed | check\n");
  int mismatches = 0, comparable = 0;
  for (int t = 0; t < cycles; ++t) {
    std::vector<netlist::Logic> in(
        static_cast<std::size_t>(sim_a.num_inputs()));
    for (auto& v : in)
      v = rng.bernoulli(0.5) ? netlist::Logic::kOne : netlist::Logic::kZero;
    const auto oa = sim_a.step(in);
    const auto ob = sim_b.step(in);
    std::string si, sa, sb;
    for (const auto v : in) si += logic_char(v);
    bool defined_both = true;
    for (std::size_t i = 0; i < oa.size(); ++i) {
      sa += logic_char(oa[i]);
      sb += logic_char(ob[i]);
      const bool both = oa[i] != netlist::Logic::kX &&
                        ob[i] != netlist::Logic::kX;
      defined_both = defined_both && both;
      if (both) {
        ++comparable;
        if (oa[i] != ob[i]) ++mismatches;
      }
    }
    std::printf("%5d | %s | %8s | %7s | %s\n", t, si.c_str(), sa.c_str(),
                sb.c_str(),
                defined_both ? (sa == sb ? "match" : "MISMATCH") : "warm-up");
  }
  std::printf("\n%d comparable output samples, %d mismatches\n", comparable,
              mismatches);
  std::printf(mismatches == 0
                  ? "=> retimed machine is I/O-equivalent (as retiming "
                    "guarantees).\n"
                  : "=> BUG: retiming changed behaviour!\n");
  return mismatches == 0 ? 0 : 1;
}
