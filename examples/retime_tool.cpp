// Command-line retiming tool over ISCAS89 .bench netlists.
//
// A standalone entry point to the retiming core (no floorplan needed):
// reads a sequential .bench netlist, collapses registers into edge
// weights, and reports T_init, the optimal T_min, and the min-area
// retiming at a chosen period, including per-label statistics.  Registers
// are never moved across primary I/O (host pinning), so the retimed
// machine is I/O-equivalent to the input.
//
// Usage: retime_tool <netlist.bench | s27> [target_period_ps] [-o out.bench]
//        (default target: T_min; with -o the retimed netlist is written
//        out as a valid .bench file)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench89/suite.h"
#include "netlist/bench_io.h"
#include "retime/apply.h"
#include "retime/collapse.h"
#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"
#include "timing/technology.h"

int main(int argc, char** argv) {
  using namespace lac;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <netlist.bench | s27> [period_ps]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  std::string out_path;
  double target_arg = -1.0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else
      target_arg = std::atof(argv[i]);
  }
  const netlist::Netlist nl =
      path == "s27" ? bench89::s27() : netlist::parse_bench_file(path);
  const timing::Technology tech;

  std::printf("%s: %d gates, %d DFFs, %d PIs, %d POs\n", nl.name().c_str(),
              nl.num_gates(), nl.count(netlist::CellType::kDff),
              nl.count(netlist::CellType::kInput),
              nl.count(netlist::CellType::kOutput));

  // Pure-logic retiming graph: every gate is a functional unit with the
  // technology gate delay; I/O cells have delay 0 and pinned labels.
  const auto lg = retime::build_logic_graph(nl, tech.gate_delay);
  const auto& g = lg.graph;

  const auto wd = retime::WdMatrices::compute(g);
  std::vector<int> r_min;
  const double t_min = retime::min_period_retiming(g, wd, &r_min);
  std::printf("T_init = %.1f ps (%.1f gate levels)\n", wd.t_init_ps(),
              wd.t_init_ps() / tech.gate_delay);
  std::printf("T_min  = %.1f ps (%.1f gate levels)\n", t_min,
              t_min / tech.gate_delay);

  const double target = target_arg > 0.0 ? target_arg : t_min;
  if (target < t_min) {
    std::printf("target %.1f ps is below T_min — infeasible\n", target);
    return 1;
  }
  const auto cs = build_constraints(g, wd, retime::to_decips(target));
  const auto r = retime::min_area_retiming(g, cs);
  std::printf("\nmin-area retiming at %.1f ps:\n", target);
  std::int64_t before = g.total_weight(), after = 0;
  int moved = 0;
  for (int e = 0; e < g.num_edges(); ++e) after += g.retimed_weight(e, *r);
  for (int v = 0; v < g.num_vertices(); ++v) moved += ((*r)[static_cast<std::size_t>(v)] != 0);
  std::printf("  registers: %lld -> %lld (per-edge counting)\n",
              static_cast<long long>(before), static_cast<long long>(after));
  std::printf("  vertices relabelled: %d of %d\n", moved, g.num_vertices());
  std::printf("  achieved period: %.1f ps (target %.1f)\n",
              g.period_after_ps(*r), target);

  if (!out_path.empty()) {
    const auto retimed = retime::apply_retiming(nl, lg, *r);
    netlist::write_bench_file(retimed, out_path);
    std::printf("  wrote retimed netlist (%d DFFs) to %s\n",
                retimed.count(netlist::CellType::kDff), out_path.c_str());
  }
  return 0;
}
