// Walkthrough of the paper's planning iteration on one circuit:
//   iteration 1 — plan, compare min-area vs LAC, dump every violating
//                 tile (which block, how much overflow);
//   iteration 2 — expand the congested soft blocks / channels, re-plan,
//                 show the violations disappearing.
//
// Usage: planning_iteration [circuit-name]   (default: y526 — a circuit
// whose violations survive iteration 1, like the paper's three holdouts)
#include <cstdio>
#include <string>

#include "bench89/suite.h"
#include "planner/interconnect_planner.h"

namespace {

void dump_violations(const lac::planner::PlanResult& res) {
  using namespace lac;
  const auto& grid = *res.grid;
  auto show = [&](const char* tag, const retime::AreaReport& rep) {
    std::printf("  %-8s N_FOA=%-3lld N_F=%-3lld N_FN=%lld\n", tag,
                static_cast<long long>(rep.n_foa),
                static_cast<long long>(rep.n_f),
                static_cast<long long>(rep.n_fn));
    for (int t = 0; t < grid.num_tiles(); ++t) {
      const tile::TileId tid{t};
      const double over = rep.ac[static_cast<std::size_t>(t)] - grid.capacity(tid);
      if (over <= 1e-9) continue;
      const char* kind =
          grid.kind(tid) == tile::TileKind::kSoftBlock   ? "soft block"
          : grid.kind(tid) == tile::TileKind::kHardBlock ? "hard block"
                                                         : "channel";
      std::printf("    tile %-3d (%s %d): AC=%.0f C=%.0f -> overflow %.0f "
                  "um^2\n",
                  t, kind, grid.block(tid).valid() ? grid.block(tid).value() : -1,
                  rep.ac[static_cast<std::size_t>(t)], grid.capacity(tid), over);
    }
  };
  show("min-area", res.min_area.report);
  show("LAC", res.lac.report);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lac;
  const std::string name = argc > 1 ? argv[1] : "y526";
  const auto& entry = bench89::entry_by_name(name);
  const auto nl = bench89::load(entry);

  planner::PlannerConfig cfg;
  cfg.run.seed = 7;
  cfg.num_blocks = entry.recommended_blocks;
  planner::InterconnectPlanner planner(cfg);

  // One call runs the whole trajectory: the initial plan plus up to two
  // floorplan-expansion iterations while violations remain.
  const auto iterations =
      planner.plan(nl, planner::PlanOptions{.max_iterations = 3});

  std::printf("=== iteration 1 (%s) ===\n", name.c_str());
  std::printf("  T_init=%.0f ps  T_min=%.0f ps  T_clk=%.0f ps\n",
              iterations.front().t_init_ps, iterations.front().t_min_ps,
              iterations.front().t_clk_ps);
  dump_violations(iterations.front());

  for (std::size_t k = 1; k < iterations.size(); ++k) {
    std::printf("\n=== iteration %zu (expanded floorplan: chip %.2f -> %.2f "
                "mm^2) ===\n",
                k + 1, iterations[k - 1].fp.chip.area() / 1e6,
                iterations[k].fp.chip.area() / 1e6);
    dump_violations(iterations[k]);
  }

  const planner::PlanResult& res = iterations.back();
  std::printf("\nresult: %s\n",
              res.lac.report.fits()
                  ? "all local area constraints met — no further floorplan "
                    "iterations needed"
                  : "violations remain — another floorplan iteration would "
                    "be required (the paper's s1269 case)");
  return res.lac.report.fits() ? 0 : 1;
}
