// Quickstart: run the whole interconnect-planning flow on one circuit.
//
// This walks the paper's Figure-1 pipeline end to end: load a sequential
// netlist, partition it into soft blocks, floorplan, route, insert
// repeaters, then compare plain min-area retiming against LAC-retiming at
// the paper's target clock period T_clk = T_min + 0.2 (T_init − T_min).
//
// Usage: quickstart [circuit-name]       (default: y641)
//        quickstart path/to/file.bench   (any ISCAS89 .bench netlist)
#include <cstdio>
#include <string>

#include "bench89/suite.h"
#include "netlist/bench_io.h"
#include "obs/report.h"
#include "planner/interconnect_planner.h"

int main(int argc, char** argv) {
  using namespace lac;

  const std::string which = argc > 1 ? argv[1] : "y641";
  netlist::Netlist nl = [&] {
    if (which.size() > 6 && which.substr(which.size() - 6) == ".bench")
      return netlist::parse_bench_file(which);
    if (which == "s27") return bench89::s27();
    return bench89::load(bench89::entry_by_name(which));
  }();

  std::printf("circuit %s: %d cells (%d gates, %d DFFs, %d PI, %d PO)\n",
              nl.name().c_str(), nl.num_cells(), nl.num_gates(),
              nl.count(netlist::CellType::kDff),
              nl.count(netlist::CellType::kInput),
              nl.count(netlist::CellType::kOutput));

  planner::PlannerConfig cfg;
  cfg.num_blocks = 9;
  cfg.run.seed = 7;
  planner::InterconnectPlanner planner(cfg);
  const auto result = planner.plan(nl);

  std::printf("\n--- physical planning ---\n");
  std::printf("chip: %lld x %lld um, whitespace %.1f%%\n",
              static_cast<long long>(result.fp.chip.width()),
              static_cast<long long>(result.fp.chip.height()),
              100.0 * result.fp.whitespace_fraction);
  std::printf("routing: %.0f um wirelength, %d overflowed edges\n",
              result.routing.total_wirelength_um,
              result.routing.overflowed_edges);
  std::printf("repeaters inserted: %d, interconnect units: %d\n",
              result.repeaters, result.interconnect_units);

  std::printf("\n--- timing ---\n");
  std::printf("T_init = %.1f ps, T_min = %.1f ps, T_clk = %.1f ps\n",
              result.t_init_ps, result.t_min_ps, result.t_clk_ps);
  std::printf("clock constraints: %zu (pruned from %zu)\n",
              result.clock_constraints, result.clock_constraints_unpruned);

  std::printf("\n--- retiming at T_clk ---\n");
  const auto& ma = result.min_area.report;
  const auto& lr = result.lac.report;
  std::printf("min-area : N_FOA=%lld  N_F=%lld  N_FN=%lld  (%.3f s)\n",
              static_cast<long long>(ma.n_foa), static_cast<long long>(ma.n_f),
              static_cast<long long>(ma.n_fn), result.min_area.exec_seconds);
  std::printf("LAC      : N_FOA=%lld  N_F=%lld  N_FN=%lld  N_wr=%d  (%.3f s)\n",
              static_cast<long long>(lr.n_foa), static_cast<long long>(lr.n_f),
              static_cast<long long>(lr.n_fn), result.lac.n_wr,
              result.lac.exec_seconds);
  std::printf("violation decrease: %.0f%%\n", result.foa_decrease_pct());

  // Verify both retimings actually meet the clock period.
  const double p_ma = result.graph.period_after_ps(result.min_area.r);
  const double p_lac = result.graph.period_after_ps(result.lac.r);
  std::printf("\nverified periods: min-area %.1f ps, LAC %.1f ps (<= %.1f)\n",
              p_ma, p_lac, result.t_clk_ps);

  // Every plan() run leaves a trace behind: write the structured run
  // report, then read it back to show how downstream tooling consumes one.
  const std::string report_path = "quickstart_report.json";
  if (obs::write_report(report_path, "quickstart",
                        {{"circuit", obs::json::Value::of(nl.name())}})) {
    std::printf("\n--- run report (%s) ---\n", report_path.c_str());
    const auto doc = obs::json::parse_file(report_path);
    if (doc) {
      if (const auto* trace = doc->find("trace");
          trace && trace->is_array() && !trace->array.empty()) {
        const auto& root = trace->array.front();
        const auto* name = root.find("name");
        const auto* seconds = root.find("seconds");
        const auto* children = root.find("children");
        std::printf("root span: %s (%.3f s), %zu child spans\n",
                    name ? name->str.c_str() : "?",
                    seconds ? seconds->num : 0.0,
                    children ? children->array.size() : std::size_t{0});
        if (children)
          for (const auto& c : children->array) {
            const auto* cn = c.find("name");
            const auto* cs = c.find("seconds");
            std::printf("  %-24s %.4f s\n", cn ? cn->str.c_str() : "?",
                        cs ? cs->num : 0.0);
          }
      }
      if (const auto* augment =
              doc->at_path({"metrics", "counters", "mcf.augmentations"}))
        std::printf("min-cost-flow augmentations (whole run): %lld\n",
                    static_cast<long long>(augment->num));
    }
  }
  return (p_ma <= result.t_clk_ps + 0.05 && p_lac <= result.t_clk_ps + 0.05)
             ? 0
             : 1;
}
