// The paper's motivating scenario (§1): a global wire so long that "the
// wire delay can be as long as about ten clock cycles", making pipelined
// signal transmission — flip-flop insertion via retiming — necessary.
//
// We build a two-register ring: a producer block and a consumer block at
// opposite corners of a large die, connected by a long interconnect each
// way.  At a clock period near the gate delay, no legal retiming exists
// without moving registers INTO the wire; this example shows repeater
// segmentation, the resulting interconnect units, and where min-area
// retiming pipelines the wire.
#include <cstdio>

#include "floorplan/floorplanner.h"
#include "repeater/repeater_planner.h"
#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"
#include "route/global_router.h"
#include "tile/tile_grid.h"
#include "timing/technology.h"

int main() {
  using namespace lac;
  const timing::Technology tech;

  // A 12 mm x 12 mm die, all channel (the blocks are conceptually at the
  // two corners; their internals do not matter here).
  floorplan::Floorplan fp;
  fp.chip = Rect{{0, 0}, {12000, 12000}};
  tile::TileGridOptions topt;
  topt.tile_size = 400;
  tile::TileGrid grid(fp, {}, topt);

  // Route producer (corner cell) -> consumer (opposite corner) and back.
  route::GlobalRouter router(grid);
  const route::Cell a{0, 0};
  const route::Cell b{grid.nx() - 1, grid.ny() - 1};
  const auto trees = router.route_all({{a, {b}}, {b, {a}}});

  repeater::RepeaterPlanner rp(grid, tech);
  const auto fwd = rp.plan(trees[0], tech.gate_out_res, tech.gate_in_cap);
  const auto back = rp.plan(trees[1], tech.gate_out_res, tech.gate_in_cap);

  std::printf("wire length each way: %.0f um\n", fwd.sinks[0].length_um);
  std::printf("repeaters inserted (L_max = %.0f um): %zu + %zu\n",
              tech.max_repeater_interval, fwd.repeater_cells.size(),
              back.repeater_cells.size());
  std::printf("one-way buffered wire delay: %.0f ps  (%.1fx the %.0f ps "
              "gate delay)\n\n",
              fwd.sinks[0].total_delay_ps,
              fwd.sinks[0].total_delay_ps / tech.gate_delay, tech.gate_delay);

  // Retiming graph: producer gate -> units -> consumer gate -> units -> back,
  // with two registers initially at the producer's output.
  retime::RetimingGraph g;
  const int prod = g.add_vertex(retime::VertexKind::kFunctional,
                                tech.gate_delay, grid.tile_of_cell(a.gx, a.gy));
  const int cons = g.add_vertex(retime::VertexKind::kFunctional,
                                tech.gate_delay, grid.tile_of_cell(b.gx, b.gy));
  auto add_chain = [&](int from, int to,
                       const repeater::BufferedSinkPath& path, int w) {
    int prev = from;
    for (const auto& u : path.units)
      prev = (g.add_edge(prev, g.add_vertex(retime::VertexKind::kInterconnect,
                                            u.delay_ps, u.tile), 0),
              g.num_vertices() - 1);
    g.add_edge(prev, to, w);
  };
  add_chain(prod, cons, fwd.sinks[0], 2);   // two registers to relocate
  add_chain(cons, prod, back.sinks[0], 2);

  const auto wd = retime::WdMatrices::compute(g);
  std::vector<int> r;
  const double t_min = retime::min_period_retiming(g, wd, &r);
  std::printf("T_init (registers at block outputs): %.0f ps\n",
              wd.t_init_ps());
  std::printf("T_min  (registers pipelined into the wire): %.0f ps\n", t_min);
  std::printf("cycles per wire crossing at T_min: %.1f\n\n",
              fwd.sinks[0].total_delay_ps / t_min);

  // Where did the registers go?
  const auto cs = retime::build_constraints(
      g, wd, retime::to_decips(t_min));
  const auto r_opt = retime::min_area_retiming(g, cs);
  int in_wire = 0, total = 0;
  for (int e = 0; e < g.num_edges(); ++e) {
    const auto w = g.retimed_weight(e, *r_opt);
    total += static_cast<int>(w);
    if (g.kind(g.edge(e).tail) == retime::VertexKind::kInterconnect)
      in_wire += static_cast<int>(w);
  }
  std::printf("after min-area retiming at T_min: %d registers total, %d "
              "inside the interconnect\n",
              total, in_wire);
  std::printf("=> the wire is pipelined, exactly the behaviour the paper's "
              "flow plans for.\n");
  return 0;
}
