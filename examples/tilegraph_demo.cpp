// Realises the paper's Figure 2: the tile graph over a floorplan with
// hard blocks, soft blocks and channel/dead regions.  Prints the ASCII
// tile classification plus per-kind capacity statistics so the capacity
// model (merged soft-block tiles, hard-block sites, channel utilisation)
// is visible at a glance.
#include <cstdio>
#include <map>

#include "base/rng.h"
#include "floorplan/floorplanner.h"
#include "tile/tile_grid.h"

int main() {
  using namespace lac;

  // A mixed floorplan: nine blocks, every third hard.
  Rng rng(2026);
  std::vector<floorplan::BlockSpec> blocks(9);
  for (int i = 0; i < 9; ++i) {
    auto& b = blocks[static_cast<std::size_t>(i)];
    b.name = "blk" + std::to_string(i);
    b.area = 4e5 + static_cast<double>(rng.uniform(6)) * 1e5;
    if (i % 3 == 2) {
      b.hard = true;
      const Coord side = static_cast<Coord>(std::lround(std::sqrt(b.area)));
      b.fixed_w = side;
      b.fixed_h = side;
    }
  }
  floorplan::FloorplanOptions fopt;
  fopt.whitespace_target = 0.3;
  fopt.seed = 5;
  const auto fp = floorplan::floorplan_blocks(blocks, fopt);
  std::printf("chip %lld x %lld um, whitespace %.1f%%\n\n",
              static_cast<long long>(fp.chip.width()),
              static_cast<long long>(fp.chip.height()),
              100.0 * fp.whitespace_fraction);

  std::vector<double> used(blocks.size(), 0.0);
  for (std::size_t b = 0; b < blocks.size(); ++b)
    used[b] = fp.placement[b].area() * 0.9;  // functional units fill 90%

  tile::TileGridOptions topt;
  topt.tile_size = 250;
  topt.hard_sites_per_cell = 2;
  topt.site_area = 2500.0;
  const tile::TileGrid grid(fp, used, topt);

  std::printf("tile graph (%d x %d cells; letters = soft blocks, # = hard "
              "blocks, . = channel/dead):\n\n%s\n",
              grid.nx(), grid.ny(), grid.render_ascii().c_str());

  std::map<tile::TileKind, std::pair<int, double>> stats;
  for (int t = 0; t < grid.num_tiles(); ++t) {
    auto& [count, cap] = stats[grid.kind(tile::TileId{t})];
    ++count;
    cap += grid.capacity(tile::TileId{t});
  }
  const auto chan = stats[tile::TileKind::kChannel];
  const auto soft = stats[tile::TileKind::kSoftBlock];
  const auto hard = stats[tile::TileKind::kHardBlock];
  std::printf("logical tiles: %d channel (cap %.0f um^2 total), %d merged "
              "soft (cap %.0f), %d hard cells (cap %.0f)\n",
              chan.first, chan.second, soft.first, soft.second, hard.first,
              hard.second);
  std::printf("\nA flip-flop (2500 um^2) fits ~%d times in an average "
              "channel tile but only %d times in a hard-block cell.\n",
              static_cast<int>(chan.second / chan.first / 2500.0),
              static_cast<int>(hard.second / std::max(1, hard.first) / 2500.0));
  return 0;
}
