#include <gtest/gtest.h>

#include "base/check.h"
#include "bench89/suite.h"
#include "netlist/bench_io.h"
#include "retime/collapse.h"

namespace lac::bench89 {
namespace {

TEST(Suite, S27HasCanonicalStructure) {
  const auto nl = s27();
  EXPECT_EQ(nl.name(), "s27");
  EXPECT_EQ(nl.count(netlist::CellType::kInput), 4);
  EXPECT_EQ(nl.count(netlist::CellType::kOutput), 1);
  EXPECT_EQ(nl.count(netlist::CellType::kDff), 3);
  EXPECT_EQ(nl.num_gates(), 10);
  EXPECT_FALSE(nl.validate().has_value());
  // Known connection: G11 = NOR(G5, G9).
  const auto g11 = nl.find("G11");
  ASSERT_TRUE(g11.has_value());
  EXPECT_EQ(nl.type(*g11), netlist::CellType::kNor);
  ASSERT_EQ(nl.fanins(*g11).size(), 2u);
  EXPECT_EQ(nl.cell_name(nl.fanins(*g11)[0]), "G5");
  EXPECT_EQ(nl.cell_name(nl.fanins(*g11)[1]), "G9");
}

TEST(Suite, S27RoundTrips) {
  const auto nl = s27();
  const auto nl2 = netlist::parse_bench(netlist::write_bench(nl), "s27b");
  EXPECT_EQ(nl.num_cells(), nl2.num_cells());
}

TEST(Suite, HasTenCircuits) {
  EXPECT_EQ(table1_suite().size(), 10u);
}

TEST(Suite, EntriesMatchPublishedSizePoints) {
  const auto& y1423 = entry_by_name("y1423");
  EXPECT_EQ(y1423.spec.num_gates, 657);
  EXPECT_EQ(y1423.spec.num_dffs, 74);
  const auto& y641 = entry_by_name("y641");
  EXPECT_EQ(y641.spec.num_inputs, 35);
  EXPECT_EQ(y641.spec.num_dffs, 19);
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW((void)entry_by_name("s9999"), CheckError);
}

TEST(Suite, AllCircuitsLoadValidAndSequential) {
  for (const auto& e : table1_suite()) {
    const auto nl = load(e);
    EXPECT_EQ(nl.name(), e.spec.name);
    EXPECT_FALSE(nl.validate().has_value()) << e.spec.name;
    EXPECT_EQ(nl.num_gates(), e.spec.num_gates) << e.spec.name;
    EXPECT_EQ(nl.count(netlist::CellType::kDff), e.spec.num_dffs)
        << e.spec.name;
    // Sequential depth exists: at least one registered connection.
    bool has_registered = false;
    for (const auto& c : retime::collapse_registers(nl))
      has_registered |= (c.w > 0);
    EXPECT_TRUE(has_registered) << e.spec.name;
  }
}

TEST(Suite, LoadIsDeterministic) {
  const auto& e = entry_by_name("y526");
  EXPECT_EQ(netlist::write_bench(load(e)), netlist::write_bench(load(e)));
}

}  // namespace
}  // namespace lac::bench89
