#include <gtest/gtest.h>

#include "bench89/suite.h"
#include "netlist/generator.h"
#include "obs/span.h"
#include "planner/interconnect_planner.h"

namespace lac::planner {
namespace {

netlist::Netlist small_circuit(std::uint64_t seed = 17) {
  netlist::GenSpec spec;
  spec.name = "plan_small";
  spec.num_gates = 90;
  spec.num_dffs = 12;
  spec.num_inputs = 6;
  spec.num_outputs = 6;
  spec.depth = 7;
  spec.seed = seed;
  return netlist::generate_netlist(spec);
}

PlannerConfig fast_config() {
  PlannerConfig cfg;
  cfg.num_blocks = 5;
  cfg.run.seed = 11;
  cfg.fp_opt.sa_moves_per_block = 150;  // keep tests quick
  return cfg;
}

TEST(Planner, TimingLandmarksOrdered) {
  const auto nl = small_circuit();
  InterconnectPlanner planner(fast_config());
  const auto res = planner.plan(nl);
  EXPECT_GT(res.t_min_ps, 0.0);
  EXPECT_LE(res.t_min_ps, res.t_clk_ps + 1e-9);
  EXPECT_LE(res.t_clk_ps, res.t_init_ps + 1e-9);
}

TEST(Planner, BothRetimingsMeetClock) {
  const auto nl = small_circuit();
  InterconnectPlanner planner(fast_config());
  const auto res = planner.plan(nl);
  EXPECT_TRUE(res.graph.is_legal_retiming(res.min_area.r));
  EXPECT_TRUE(res.graph.is_legal_retiming(res.lac.r));
  EXPECT_LE(res.graph.period_after_ps(res.min_area.r), res.t_clk_ps + 0.06);
  EXPECT_LE(res.graph.period_after_ps(res.lac.r), res.t_clk_ps + 0.06);
}

TEST(Planner, LacNeverMoreViolationsThanMinArea) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto nl = small_circuit(seed);
    InterconnectPlanner planner(fast_config());
    const auto res = planner.plan(nl);
    EXPECT_LE(res.lac.report.n_foa, res.min_area.report.n_foa)
        << "seed " << seed;
  }
}

TEST(Planner, MinAreaBaselineHasMinimalTotalCount) {
  const auto nl = small_circuit();
  InterconnectPlanner planner(fast_config());
  const auto res = planner.plan(nl);
  // Plain min-area optimises exactly N_F, so LAC can only match or exceed.
  EXPECT_LE(res.min_area.report.n_f, res.lac.report.n_f);
}

TEST(Planner, ConstraintPruningReported) {
  const auto nl = small_circuit();
  InterconnectPlanner planner(fast_config());
  const auto res = planner.plan(nl);
  EXPECT_GT(res.clock_constraints, 0u);
  EXPECT_LE(res.clock_constraints, res.clock_constraints_unpruned);
}

TEST(Planner, DeterministicForSeed) {
  const auto nl = small_circuit();
  InterconnectPlanner planner(fast_config());
  const auto a = planner.plan(nl);
  const auto b = planner.plan(nl);
  EXPECT_EQ(a.t_clk_ps, b.t_clk_ps);
  EXPECT_EQ(a.min_area.report.n_f, b.min_area.report.n_f);
  EXPECT_EQ(a.lac.report.n_foa, b.lac.report.n_foa);
  EXPECT_EQ(a.lac.r, b.lac.r);
}

TEST(Planner, GraphContainsInterconnectUnitsForSpreadCircuits) {
  const auto nl = small_circuit();
  InterconnectPlanner planner(fast_config());
  const auto res = planner.plan(nl);
  EXPECT_GT(res.interconnect_units, 0);
  EXPECT_EQ(res.graph.num_interconnect_units(), res.interconnect_units);
}

TEST(Planner, ReplanOnlyWhenViolationsRemain) {
  const auto nl = small_circuit();
  InterconnectPlanner planner(fast_config());
  PlanOptions opts;
  opts.max_iterations = 2;
  const auto results = planner.plan(nl, opts);
  const auto& res = results.front();
  if (res.lac.report.fits()) {
    EXPECT_EQ(results.size(), 1u);
  } else {
    ASSERT_EQ(results.size(), 2u);
    EXPECT_LE(results[1].lac.report.n_foa, res.lac.report.n_foa);
    EXPECT_GE(results[1].fp.chip.area(), res.fp.chip.area() * 0.9);
  }
}

TEST(Planner, DeprecatedReplanExpandedStillWorks) {
  const auto nl = small_circuit();
  InterconnectPlanner planner(fast_config());
  const auto res = planner.plan(nl);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto second = planner.replan_expanded(nl, res);
#pragma GCC diagnostic pop
  EXPECT_EQ(second.has_value(), !res.lac.report.fits());
}

TEST(Planner, DeprecatedConfigAliasesStillNormalise) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  PlannerConfig cfg;
  cfg.seed = 123;
  cfg.observability = obs::Override::kOff;
  const InterconnectPlanner planner(cfg);
  EXPECT_EQ(planner.config().run.seed, 123u);
  EXPECT_EQ(planner.config().run.observability, obs::Override::kOff);
  // Both views agree after normalisation.
  EXPECT_EQ(planner.config().seed, 123u);

  // An explicitly-set run.* field wins over the old alias.
  PlannerConfig both;
  both.seed = 5;
  both.run.seed = 9;
  EXPECT_EQ(InterconnectPlanner(both).config().run.seed, 9u);
  EXPECT_EQ(InterconnectPlanner(both).config().seed, 9u);
#pragma GCC diagnostic pop
}

TEST(Planner, HardBlocksSupported) {
  const auto nl = small_circuit();
  PlannerConfig cfg = fast_config();
  cfg.hard_block_fraction = 0.4;
  InterconnectPlanner planner(cfg);
  const auto res = planner.plan(nl);
  int hard = 0;
  for (const auto& b : res.fp.blocks) hard += b.hard;
  EXPECT_GT(hard, 0);
  // Pipeline still sound.
  EXPECT_LE(res.graph.period_after_ps(res.lac.r), res.t_clk_ps + 0.06);
}

TEST(Planner, S27EndToEnd) {
  const auto nl = bench89::s27();
  PlannerConfig cfg = fast_config();
  cfg.num_blocks = 3;
  InterconnectPlanner planner(cfg);
  const auto res = planner.plan(nl);
  EXPECT_GT(res.t_init_ps, 0.0);
  EXPECT_TRUE(res.graph.is_legal_retiming(res.lac.r));
}

TEST(Planner, PlanEmitsStageSpansAndConvergenceHistory) {
  const auto nl = small_circuit();
  PlannerConfig cfg = fast_config();
  cfg.run.observability = obs::Override::kOn;  // independent of LAC_OBS
  InterconnectPlanner planner(cfg);
  (void)obs::take_finished_roots();  // drain other tests' traces
  const auto res = planner.plan(nl);

  const auto roots = obs::take_finished_roots();
  ASSERT_EQ(roots.size(), 1u);
  const obs::SpanNode& plan = roots[0];
  EXPECT_EQ(plan.name, "planner.plan");
  ASSERT_NE(plan.find_child("stage.partition"), nullptr);
  ASSERT_NE(plan.find_child("stage.floorplan"), nullptr);
  const obs::SpanNode* iter = plan.find_child("planner.iteration");
  ASSERT_NE(iter, nullptr);
  for (const char* stage :
       {"stage.tile_grid", "stage.collapse_nets", "stage.global_route",
        "stage.repeaters", "stage.build_graph", "stage.timing",
        "stage.min_area_retiming", "stage.lac_retiming"})
    EXPECT_NE(iter->find_child(stage), nullptr) << stage;

  // The LAC stage nests the retimer's own span with per-round children.
  const obs::SpanNode* lac_stage = iter->find_child("stage.lac_retiming");
  ASSERT_NE(lac_stage, nullptr);
  const obs::SpanNode* lac = lac_stage->find_child("lac.retiming");
  ASSERT_NE(lac, nullptr);
  int lac_rounds = 0;
  for (const auto& c : lac->children) lac_rounds += (c.name == "lac.round");
  EXPECT_EQ(lac_rounds, res.lac.n_wr);

  // The result mirrors the trace: per-round history sized by n_wr, with
  // the baseline outcome carrying none.
  EXPECT_EQ(static_cast<int>(res.lac.rounds.size()), res.lac.n_wr);
  EXPECT_TRUE(res.min_area.rounds.empty());
}

TEST(Planner, ObservabilityOffSuppressesTracing) {
  const auto nl = small_circuit();
  PlannerConfig cfg = fast_config();
  cfg.run.observability = obs::Override::kOff;
  InterconnectPlanner planner(cfg);
  (void)obs::take_finished_roots();
  const auto res = planner.plan(nl);
  EXPECT_TRUE(obs::take_finished_roots().empty());
  // Timings still come through: Span doubles as the flow's stopwatch.
  EXPECT_GE(res.lac.exec_seconds, 0.0);
  EXPECT_EQ(static_cast<int>(res.lac.rounds.size()), res.lac.n_wr);
}

TEST(Planner, TclkFollowsSlackFraction) {
  const auto nl = small_circuit();
  PlannerConfig cfg = fast_config();
  cfg.clock_slack_fraction = 0.0;
  InterconnectPlanner p0(cfg);
  const auto r0 = p0.plan(nl);
  EXPECT_NEAR(r0.t_clk_ps, r0.t_min_ps, 1e-9);
  cfg.clock_slack_fraction = 1.0;
  InterconnectPlanner p1(cfg);
  const auto r1 = p1.plan(nl);
  EXPECT_NEAR(r1.t_clk_ps, r1.t_init_ps, 1e-9);
}

}  // namespace
}  // namespace lac::planner
