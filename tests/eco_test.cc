// PlanSession ECO tests: the journaled delta API and its hard guarantee —
// an incremental end_eco() re-plan is bit-identical (in every quality
// output) to a cold re-plan of the same edited inputs, while the EcoStats
// counters prove it did less work.
#include <gtest/gtest.h>

#include "netlist/generator.h"
#include "planner/interconnect_planner.h"
#include "planner/plan_session.h"

namespace lac::planner {
namespace {

netlist::Netlist eco_circuit(std::uint64_t seed = 17) {
  netlist::GenSpec spec;
  spec.name = "eco_small";
  spec.num_gates = 90;
  spec.num_dffs = 12;
  spec.num_inputs = 6;
  spec.num_outputs = 6;
  spec.depth = 7;
  spec.seed = seed;
  return netlist::generate_netlist(spec);
}

PlannerConfig fast_config() {
  PlannerConfig cfg;
  cfg.num_blocks = 5;
  cfg.run.seed = 11;
  cfg.fp_opt.sa_moves_per_block = 150;  // keep tests quick
  return cfg;
}

// Bitwise equality of every deterministic quality output.  Wall-clock and
// solver-effort fields (exec_seconds, constraint_gen_seconds, and the
// phases/augmentations/warm/repaired_arcs/solve_seconds entries of
// LacRoundStats) are excluded: reuse changes how *hard* the pipeline works,
// never what it produces.
void expect_results_equal(const PlanResult& a, const PlanResult& b) {
  EXPECT_EQ(a.block_of, b.block_of);
  ASSERT_EQ(a.fp.blocks.size(), b.fp.blocks.size());
  for (std::size_t i = 0; i < a.fp.blocks.size(); ++i)
    EXPECT_EQ(a.fp.placement[i], b.fp.placement[i]) << "block " << i;
  EXPECT_EQ(a.t_init_ps, b.t_init_ps);
  EXPECT_EQ(a.t_min_ps, b.t_min_ps);
  EXPECT_EQ(a.t_clk_ps, b.t_clk_ps);
  EXPECT_EQ(a.clock_constraints, b.clock_constraints);
  EXPECT_EQ(a.clock_constraints_unpruned, b.clock_constraints_unpruned);
  EXPECT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
  EXPECT_EQ(a.interconnect_units, b.interconnect_units);
  EXPECT_EQ(a.repeaters, b.repeaters);

  EXPECT_EQ(a.routing.total_wirelength_um, b.routing.total_wirelength_um);
  EXPECT_EQ(a.routing.overflowed_edges, b.routing.overflowed_edges);
  EXPECT_EQ(a.routing.max_usage, b.routing.max_usage);
  EXPECT_EQ(a.routing.ripup_rounds_used, b.routing.ripup_rounds_used);
  EXPECT_EQ(a.routing.nets_routed, b.routing.nets_routed);
  EXPECT_EQ(a.routing.nets_rerouted, b.routing.nets_rerouted);
  EXPECT_EQ(a.routing.usage_histogram, b.routing.usage_histogram);

  const auto expect_outcome_equal = [](const RetimingOutcome& x,
                                       const RetimingOutcome& y,
                                       const char* which) {
    EXPECT_EQ(x.r, y.r) << which;
    EXPECT_EQ(x.n_wr, y.n_wr) << which;
    EXPECT_EQ(x.report.ac, y.report.ac) << which;
    EXPECT_EQ(x.report.n_f, y.report.n_f) << which;
    EXPECT_EQ(x.report.n_fn, y.report.n_fn) << which;
    EXPECT_EQ(x.report.n_foa, y.report.n_foa) << which;
    EXPECT_EQ(x.report.tiles_violating, y.report.tiles_violating) << which;
    EXPECT_EQ(x.report.worst_overflow, y.report.worst_overflow) << which;
    ASSERT_EQ(x.rounds.size(), y.rounds.size()) << which;
    for (std::size_t i = 0; i < x.rounds.size(); ++i) {
      const auto& p = x.rounds[i];
      const auto& q = y.rounds[i];
      EXPECT_EQ(p.round, q.round) << which << " round " << i;
      EXPECT_EQ(p.n_foa, q.n_foa) << which << " round " << i;
      EXPECT_EQ(p.n_f, q.n_f) << which << " round " << i;
      EXPECT_EQ(p.best_n_foa, q.best_n_foa) << which << " round " << i;
      EXPECT_EQ(p.max_overflow, q.max_overflow) << which << " round " << i;
      EXPECT_EQ(p.weight_lo, q.weight_lo) << which << " round " << i;
      EXPECT_EQ(p.weight_hi, q.weight_hi) << which << " round " << i;
      EXPECT_EQ(p.improved, q.improved) << which << " round " << i;
    }
  };
  expect_outcome_equal(a.min_area, b.min_area, "min_area");
  expect_outcome_equal(a.lac, b.lac, "lac");
}

TEST(Eco, EmptyJournalIsNoOp) {
  const auto nl = eco_circuit();
  PlanSession session(nl, fast_config());
  const PlanResult before = session.result();

  session.begin_eco();
  const PlanResult& after = session.end_eco();

  expect_results_equal(before, after);
  const EcoStats& eco = session.last_eco();
  EXPECT_EQ(eco.invalidated_nets, 0);
  EXPECT_EQ(eco.cold_routes, 0);
  EXPECT_GT(eco.reused_routes, 0);
  EXPECT_EQ(eco.wd_rows_rebuilt, 0);
  EXPECT_GT(eco.wd_rows_total, 0);
  EXPECT_FALSE(eco.route_full_fallback);
  EXPECT_TRUE(eco.lac_warm);
  EXPECT_EQ(eco.repeater_replans, 0);
}

TEST(Eco, CapacityScaleEquivalentToCold) {
  const auto nl = eco_circuit();
  PlanSession session(nl, fast_config());

  session.begin_eco();
  session.scale_block_capacity(0, 0.7);
  session.scale_channel_capacity(0.9);
  const PlanResult& eco_res = session.end_eco();

  expect_results_equal(session.replan_cold(), eco_res);
  const EcoStats& eco = session.last_eco();
  // Capacity is an insertion-area property: route requests are untouched.
  EXPECT_EQ(eco.invalidated_nets, 0);
  EXPECT_GT(eco.reused_routes, 0);
  EXPECT_EQ(eco.cold_routes, 0);
}

TEST(Eco, CellResizeTouchingZeroRoutes) {
  const auto nl = eco_circuit();
  PlanSession session(nl, fast_config());
  // Resize a mid-netlist gate: block used-area shifts, no route request
  // changes (cells sit at block centres).
  std::string victim;
  for (const auto c : session.netlist().cells())
    if (session.netlist().type(c) == netlist::CellType::kAnd ||
        session.netlist().type(c) == netlist::CellType::kNand) {
      victim = session.netlist().cell_name(c);
      break;
    }
  ASSERT_FALSE(victim.empty());

  session.begin_eco();
  session.resize_cell(victim, 1.5);
  const PlanResult& eco_res = session.end_eco();

  expect_results_equal(session.replan_cold(), eco_res);
  EXPECT_EQ(session.last_eco().invalidated_nets, 0);
  EXPECT_GT(session.last_eco().reused_routes, 0);
}

TEST(Eco, BufferInsertionForcesLacColdFallbackButStaysEquivalent) {
  const auto nl = eco_circuit();
  PlanSession session(nl, fast_config());
  // Pick a DFF-free gate->gate connection to buffer.
  const auto& snl = session.netlist();
  std::string driver, sink;
  for (const auto c : snl.cells()) {
    if (!netlist::is_combinational(snl.type(c))) continue;
    for (const auto f : snl.fanins(c))
      if (netlist::is_combinational(snl.type(f))) {
        driver = snl.cell_name(f);
        sink = snl.cell_name(c);
        break;
      }
    if (!driver.empty()) break;
  }
  ASSERT_FALSE(driver.empty());

  session.begin_eco();
  session.add_buffer("eco_buf0", driver, sink);
  const PlanResult& eco_res = session.end_eco();

  expect_results_equal(session.replan_cold(), eco_res);
  // The graph gained a vertex: the constraint system cannot match, so the
  // warm LAC session must have been discarded.
  EXPECT_FALSE(session.last_eco().lac_warm);
}

TEST(Eco, AddAndRemoveCellsEquivalentToCold) {
  const auto nl = eco_circuit();
  PlanSession session(nl, fast_config());
  const auto& snl = session.netlist();
  // A buffer cell is removable (single fanin, fanouts bypassed).
  std::string removable;
  for (const auto c : snl.cells())
    if (snl.type(c) == netlist::CellType::kBuf &&
        snl.fanins(c).size() == 1 && !snl.fanouts(c).empty()) {
      removable = snl.cell_name(c);
      break;
    }
  std::string fanin_name;
  for (const auto c : snl.cells())
    if (netlist::is_combinational(snl.type(c))) {
      fanin_name = snl.cell_name(c);
      break;
    }
  ASSERT_FALSE(fanin_name.empty());

  session.begin_eco();
  (void)session.add_cell("eco_new0", netlist::CellType::kNot, 2, {fanin_name});
  if (!removable.empty()) session.remove_cell(removable);
  const PlanResult& eco_res = session.end_eco();

  expect_results_equal(session.replan_cold(), eco_res);
}

TEST(Eco, ResizeBlockEquivalentToCold) {
  const auto nl = eco_circuit();
  PlanSession session(nl, fast_config());
  // Grow block 1 by 8%: in-place when free space allows (routes of
  // untouched nets stay reusable), incremental re-floorplan otherwise.
  const double area = session.result().fp.blocks[1].area;

  session.begin_eco();
  session.resize_block(1, area * 1.08);
  const PlanResult& eco_res = session.end_eco();

  expect_results_equal(session.replan_cold(), eco_res);
}

TEST(Eco, TwoStackedEcosEqualOneCombinedEco) {
  const auto nl = eco_circuit();
  PlanSession stacked(nl, fast_config());
  stacked.begin_eco();
  stacked.scale_block_capacity(0, 0.8);
  (void)stacked.end_eco();
  stacked.begin_eco();
  stacked.scale_channel_capacity(0.9);
  const PlanResult& two = stacked.end_eco();

  PlanSession combined(nl, fast_config());
  combined.begin_eco();
  combined.scale_block_capacity(0, 0.8);
  combined.scale_channel_capacity(0.9);
  const PlanResult& one = combined.end_eco();

  expect_results_equal(one, two);
}

TEST(Eco, DeterministicAcrossThreadCounts) {
  const auto nl = eco_circuit();
  std::optional<PlanResult> reference;
  for (const int threads : {1, 4}) {
    PlannerConfig cfg = fast_config();
    cfg.run.exec.threads = threads;
    PlanSession session(nl, cfg);
    session.begin_eco();
    session.scale_block_capacity(0, 0.75);
    const PlanResult& res = session.end_eco();
    if (!reference.has_value()) {
      reference = res;
    } else {
      expect_results_equal(*reference, res);
    }
  }
}

TEST(Eco, JournalParserAcceptsEveryForm) {
  const std::string text =
      "# an ECO journal\n"
      "resize_block 1 12000.5\n"
      "scale_capacity 0 0.8\n"
      "scale_capacity channel 1.25  # trailing comment\n"
      "resize_cell g17 1.5\n"
      "add_cell eco_n0 not 2 g3\n"
      "add_cell eco_a0 and 1 g3 g5\n"
      "remove_cell buf4\n"
      "buffer eco_b0 g3 g9\n"
      "\n"
      "expand_blocks\n";
  std::string error;
  const auto edits = parse_eco_journal(text, &error);
  ASSERT_TRUE(edits.has_value()) << error;
  ASSERT_EQ(edits->size(), 9u);
  EXPECT_EQ((*edits)[0].kind, EcoEdit::Kind::kResizeBlock);
  EXPECT_EQ((*edits)[0].block, 1);
  EXPECT_EQ((*edits)[0].value, 12000.5);
  EXPECT_EQ((*edits)[1].kind, EcoEdit::Kind::kScaleBlockCapacity);
  EXPECT_EQ((*edits)[2].kind, EcoEdit::Kind::kScaleChannelCapacity);
  EXPECT_EQ((*edits)[2].value, 1.25);
  EXPECT_EQ((*edits)[3].kind, EcoEdit::Kind::kResizeCell);
  EXPECT_EQ((*edits)[3].name, "g17");
  EXPECT_EQ((*edits)[4].kind, EcoEdit::Kind::kAddCell);
  EXPECT_EQ((*edits)[4].cell_type, netlist::CellType::kNot);
  EXPECT_EQ((*edits)[4].fanins, std::vector<std::string>{"g3"});
  ASSERT_EQ((*edits)[5].fanins.size(), 2u);
  EXPECT_EQ((*edits)[6].kind, EcoEdit::Kind::kRemoveCell);
  EXPECT_EQ((*edits)[7].kind, EcoEdit::Kind::kBuffer);
  EXPECT_EQ((*edits)[7].driver, "g3");
  EXPECT_EQ((*edits)[7].sink, "g9");
  EXPECT_EQ((*edits)[8].kind, EcoEdit::Kind::kExpandBlocks);
}

TEST(Eco, JournalParserRejectsMalformedLines) {
  const char* bad[] = {
      "resize_block 1",            // missing area
      "resize_block one 100",      // non-integer block
      "scale_capacity 0",          // missing factor
      "add_cell x badtype 0",      // unknown cell type
      "teleport_block 3",          // unknown op
      "expand_blocks now",         // trailing token
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(parse_eco_journal(text, &error).has_value()) << text;
    EXPECT_EQ(error.rfind("line 1:", 0), 0u) << error;
  }
}

TEST(Eco, ParsedJournalAppliesAndMatchesCold) {
  const auto nl = eco_circuit();
  PlanSession session(nl, fast_config());
  std::string error;
  const auto edits = parse_eco_journal(
      "scale_capacity 0 0.85\nscale_capacity channel 0.95\n", &error);
  ASSERT_TRUE(edits.has_value()) << error;

  session.begin_eco();
  for (const auto& e : *edits) session.apply(e);
  const PlanResult& eco_res = session.end_eco();
  expect_results_equal(session.replan_cold(), eco_res);
}

}  // namespace
}  // namespace lac::planner
