// End-to-end functional verification of the retiming machinery: retimed
// netlists must be input/output-equivalent to the originals.
//
// Soundness criterion with X-initialised registers: on any cycle where
// both machines produce a DEFINED (non-X) value on an output, the values
// must agree.  A legal retiming can only lengthen the X warm-up, never
// change defined behaviour.
#include <gtest/gtest.h>

#include "base/check.h"
#include "base/rng.h"
#include "netlist/bench_io.h"
#include "bench89/suite.h"
#include "netlist/generator.h"
#include "netlist/simulate.h"
#include "retime/apply.h"
#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"

namespace lac::retime {
namespace {

using netlist::Logic;
using netlist::Netlist;
using netlist::Simulator;

// Runs both machines on `cycles` random input vectors; fails on any
// defined-vs-defined mismatch; returns how many output samples were
// comparable (both defined).
int compare_machines(const Netlist& a, const Netlist& b, int cycles,
                     std::uint64_t seed) {
  Simulator sa(a), sb(b);
  EXPECT_EQ(sa.num_inputs(), sb.num_inputs());
  EXPECT_EQ(sa.num_outputs(), sb.num_outputs());
  sa.reset();
  sb.reset();
  Rng rng(seed);
  int comparable = 0;
  for (int t = 0; t < cycles; ++t) {
    std::vector<Logic> in(static_cast<std::size_t>(sa.num_inputs()));
    for (auto& v : in)
      v = rng.bernoulli(0.5) ? Logic::kOne : Logic::kZero;
    const auto oa = sa.step(in);
    const auto ob = sb.step(in);
    for (std::size_t i = 0; i < oa.size(); ++i) {
      if (oa[i] == Logic::kX || ob[i] == Logic::kX) continue;
      EXPECT_EQ(oa[i], ob[i]) << "cycle " << t << " output " << i;
      ++comparable;
    }
  }
  return comparable;
}

TEST(Equivalence, IdentityRetimingIsSameMachine) {
  netlist::GenSpec spec;
  spec.num_gates = 60;
  spec.num_dffs = 8;
  spec.seed = 4;
  const auto nl = netlist::generate_netlist(spec);
  const auto lg = build_logic_graph(nl, 10.0);
  std::vector<int> zero(static_cast<std::size_t>(lg.graph.num_vertices()), 0);
  const auto nl2 = apply_retiming(nl, lg, zero);
  EXPECT_EQ(nl2.count(netlist::CellType::kDff),
            static_cast<int>(lg.graph.total_weight()));
  EXPECT_GT(compare_machines(nl, nl2, 40, 1), 0);
}

TEST(Equivalence, MinPeriodRetimedS27Equivalent) {
  const auto nl = bench89::s27();
  const auto lg = build_logic_graph(nl, 10.0);
  const auto wd = WdMatrices::compute(lg.graph);
  std::vector<int> r;
  (void)min_period_retiming(lg.graph, wd, &r);
  const auto nl2 = apply_retiming(nl, lg, r);
  EXPECT_FALSE(nl2.validate().has_value());
  EXPECT_GT(compare_machines(nl, nl2, 60, 2), 0);
}

struct EqParam {
  int gates;
  int dffs;
  std::uint64_t seed;
  double slack;  // position of target period within [T_min, T_init]
};

class EquivalenceSweep : public ::testing::TestWithParam<EqParam> {};

TEST_P(EquivalenceSweep, MinAreaRetimedMachineEquivalent) {
  const auto p = GetParam();
  netlist::GenSpec spec;
  spec.num_gates = p.gates;
  spec.num_dffs = p.dffs;
  spec.seed = p.seed;
  spec.num_inputs = 6;
  spec.num_outputs = 6;
  const auto nl = netlist::generate_netlist(spec);
  const auto lg = build_logic_graph(nl, 10.0);
  const auto wd = WdMatrices::compute(lg.graph);
  std::vector<int> rmin;
  const double t_min = min_period_retiming(lg.graph, wd, &rmin);
  const double t = t_min + p.slack * (wd.t_init_ps() - t_min);
  const auto cs = build_constraints(lg.graph, wd, to_decips(t));
  const auto r = min_area_retiming(lg.graph, cs);
  ASSERT_TRUE(r.has_value());
  const auto nl2 = apply_retiming(nl, lg, *r);
  // Period promise holds on the materialised netlist too: its register
  // chain structure matches w_r by construction.
  const auto lg2 = build_logic_graph(nl2, 10.0);
  const auto wd2 = WdMatrices::compute(lg2.graph);
  EXPECT_LE(wd2.t_init_ps(), t + 0.11);
  const int comparable = compare_machines(nl, nl2, 50, p.seed ^ 0xbeef);
  EXPECT_GT(comparable, 0) << "no defined samples to compare";
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, EquivalenceSweep,
    ::testing::Values(EqParam{30, 4, 1, 0.0}, EqParam{30, 4, 1, 0.5},
                      EqParam{30, 4, 2, 1.0}, EqParam{80, 10, 3, 0.0},
                      EqParam{80, 10, 4, 0.3}, EqParam{80, 16, 5, 0.0},
                      EqParam{150, 20, 6, 0.2}, EqParam{150, 20, 7, 0.8},
                      EqParam{250, 30, 8, 0.0}, EqParam{250, 12, 9, 0.4}));

TEST(Equivalence, RetimedNetlistRoundTripsThroughBench) {
  const auto nl = bench89::s27();
  const auto lg = build_logic_graph(nl, 10.0);
  const auto wd = WdMatrices::compute(lg.graph);
  std::vector<int> r;
  (void)min_period_retiming(lg.graph, wd, &r);
  const auto nl2 = apply_retiming(nl, lg, r);
  const auto text = netlist::write_bench(nl2);
  const auto nl3 = netlist::parse_bench(text, nl2.name());
  EXPECT_EQ(nl2.num_cells(), nl3.num_cells());
  EXPECT_GT(compare_machines(nl2, nl3, 40, 3), 0);
}

TEST(Equivalence, ApplyRejectsIllegalRetiming) {
  const auto nl = bench89::s27();
  const auto lg = build_logic_graph(nl, 10.0);
  std::vector<int> bad(static_cast<std::size_t>(lg.graph.num_vertices()), 0);
  // Find a vertex with an out-edge of weight 0 and push a register
  // backwards across it illegally.
  for (int e = 0; e < lg.graph.num_edges(); ++e) {
    if (lg.graph.edge(e).w == 0) {
      bad[static_cast<std::size_t>(lg.graph.edge(e).head)] = -1;
      break;
    }
  }
  EXPECT_THROW(apply_retiming(nl, lg, bad), CheckError);
}

}  // namespace
}  // namespace lac::retime
