#include <gtest/gtest.h>

#include <set>

#include "base/rng.h"
#include "route/steiner.h"

namespace lac::route {
namespace {

// Connectivity over segments: two segments are adjacent when they share at
// least one lattice point; terminals must all fall in one component.
bool tree_connects_terminals(const SteinerTree& t) {
  if (t.terminals.size() <= 1) return true;
  const auto& segs = t.segments;
  auto on_segment = [](const std::pair<Point, Point>& s, const Point& p) {
    if (s.first.y == s.second.y)
      return p.y == s.first.y && p.x >= s.first.x && p.x <= s.second.x;
    return p.x == s.first.x && p.y >= s.first.y && p.y <= s.second.y;
  };
  auto touch = [&](const std::pair<Point, Point>& a,
                   const std::pair<Point, Point>& b) {
    // Endpoint-on-segment covers axis-aligned T and L junctions; true
    // crossings (+ junctions) are also electrical connections.
    if (on_segment(a, b.first) || on_segment(a, b.second) ||
        on_segment(b, a.first) || on_segment(b, a.second))
      return true;
    // Perpendicular crossing.
    const bool a_h = a.first.y == a.second.y;
    const bool b_h = b.first.y == b.second.y;
    if (a_h == b_h) return false;
    const auto& h = a_h ? a : b;
    const auto& v = a_h ? b : a;
    return v.first.x >= h.first.x && v.first.x <= h.second.x &&
           h.first.y >= v.first.y && h.first.y <= v.second.y;
  };
  const int n = static_cast<int>(segs.size());
  std::vector<int> comp(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) comp[static_cast<std::size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    return comp[static_cast<std::size_t>(x)] == x
               ? x
               : comp[static_cast<std::size_t>(x)] =
                     find(comp[static_cast<std::size_t>(x)]);
  };
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (touch(segs[static_cast<std::size_t>(i)], segs[static_cast<std::size_t>(j)]))
        comp[static_cast<std::size_t>(find(i))] = find(j);
  // Every terminal must lie on a segment; all their segments in one set.
  int root = -1;
  for (const auto& term : t.terminals) {
    int owner = -1;
    for (int i = 0; i < n; ++i)
      if (on_segment(segs[static_cast<std::size_t>(i)], term)) {
        owner = i;
        break;
      }
    if (owner == -1) return false;
    if (root == -1) root = find(owner);
    if (find(owner) != root) return false;
  }
  return true;
}

TEST(Steiner, TwoTerminalsIsAnL) {
  const auto t = rectilinear_steiner({{0, 0}, {5, 3}});
  EXPECT_EQ(t.length(), 8);
  EXPECT_TRUE(tree_connects_terminals(t));
}

TEST(Steiner, CollinearTerminals) {
  const auto t = rectilinear_steiner({{0, 0}, {4, 0}, {9, 0}});
  EXPECT_EQ(t.length(), 9);
  EXPECT_TRUE(tree_connects_terminals(t));
}

TEST(Steiner, SingleAndDuplicateTerminals) {
  EXPECT_EQ(rectilinear_steiner({{3, 3}}).length(), 0);
  const auto t = rectilinear_steiner({{0, 0}, {0, 0}, {2, 0}});
  EXPECT_EQ(t.length(), 2);
}

TEST(Steiner, ClassicCrossBeatsMst) {
  // Four corners of a plus-sign: RSMT uses a Steiner point.
  const std::vector<Point> pts{{0, 5}, {10, 5}, {5, 0}, {5, 10}};
  const auto t = rectilinear_steiner(pts);
  EXPECT_TRUE(tree_connects_terminals(t));
  EXPECT_LE(t.length(), rmst_length(pts));
  EXPECT_EQ(t.length(), 20);  // optimal: both arms through the centre
}

TEST(Steiner, NeverWorseThanMstNeverBelowHpwl) {
  Rng rng(3141);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform(9));
    std::vector<Point> pts;
    for (int i = 0; i < n; ++i)
      pts.push_back({static_cast<Coord>(rng.uniform(100)),
                     static_cast<Coord>(rng.uniform(100))});
    const auto t = rectilinear_steiner(pts);
    EXPECT_LE(t.length(), rmst_length(pts)) << "trial " << trial;
    EXPECT_GE(t.length(), hpwl(pts)) << "trial " << trial;
    EXPECT_TRUE(tree_connects_terminals(t)) << "trial " << trial;
  }
}

TEST(Steiner, OverlapSharingImprovesOnAverage) {
  Rng rng(999);
  double mst_total = 0.0, steiner_total = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Point> pts;
    for (int i = 0; i < 8; ++i)
      pts.push_back({static_cast<Coord>(rng.uniform(64)),
                     static_cast<Coord>(rng.uniform(64))});
    mst_total += static_cast<double>(rmst_length(pts));
    steiner_total += static_cast<double>(rectilinear_steiner(pts).length());
  }
  EXPECT_LT(steiner_total, mst_total * 0.99)
      << "L-overlap refinement should save wire on random instances";
}

TEST(Steiner, HpwlBasics) {
  EXPECT_EQ(hpwl({}), 0);
  EXPECT_EQ(hpwl({{3, 4}}), 0);
  EXPECT_EQ(hpwl({{0, 0}, {5, 7}}), 12);
}

TEST(Steiner, MergedSegmentsDoNotDoubleCount) {
  // A "T": three terminals where the trunk is shared.
  const auto t = rectilinear_steiner({{0, 0}, {10, 0}, {5, 5}});
  // Optimal: 10 along y=0 plus 5 up = 15.
  EXPECT_LE(t.length(), 15 + 5);  // heuristic may be slightly worse
  Coord sum = 0;
  for (const auto& [a, b] : t.segments) sum += manhattan(a, b);
  EXPECT_EQ(sum, t.length());  // merged: no overlap double-count
}

}  // namespace
}  // namespace lac::route
