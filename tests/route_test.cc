#include <gtest/gtest.h>

#include <set>

#include "floorplan/floorplanner.h"
#include "route/global_router.h"
#include "tile/tile_grid.h"

namespace lac::route {
namespace {

// All-channel floorplan: an empty chip so routing is unobstructed.
tile::TileGrid open_grid(Coord w = 1000, Coord h = 1000, Coord tile = 100) {
  static floorplan::Floorplan fp;  // static: TileGrid copies what it needs
  fp.chip = Rect{{0, 0}, {w, h}};
  fp.blocks.clear();
  fp.placement.clear();
  tile::TileGridOptions opt;
  opt.tile_size = tile;
  return tile::TileGrid(fp, {}, opt);
}

bool adjacent(const Cell& a, const Cell& b) {
  return std::abs(a.gx - b.gx) + std::abs(a.gy - b.gy) == 1;
}

TEST(Router, TwoPinShortestPath) {
  auto grid = open_grid();
  GlobalRouter router(grid);
  const auto trees = router.route_all({{{0, 0}, {{5, 3}}}});
  ASSERT_EQ(trees.size(), 1u);
  ASSERT_TRUE(trees[0].routed());
  const auto& path = trees[0].sink_paths[0];
  EXPECT_EQ(path.front(), (Cell{0, 0}));
  EXPECT_EQ(path.back(), (Cell{5, 3}));
  // Manhattan-optimal in an empty grid.
  EXPECT_EQ(path.size(), 9u);
  for (std::size_t i = 1; i < path.size(); ++i)
    EXPECT_TRUE(adjacent(path[i - 1], path[i]));
}

TEST(Router, MultiSinkTreeSharesTrunk) {
  auto grid = open_grid();
  GlobalRouter router(grid);
  // Two sinks straight to the right; the further one extends the nearer path.
  const auto trees = router.route_all({{{0, 0}, {{4, 0}, {8, 0}}}});
  ASSERT_TRUE(trees[0].routed());
  EXPECT_EQ(trees[0].edges.size(), 8u);  // no duplication on the trunk
  EXPECT_EQ(trees[0].sink_paths.size(), 2u);
}

TEST(Router, SinkPathsParallelToRequestIncludingColocated) {
  auto grid = open_grid();
  GlobalRouter router(grid);
  const auto trees =
      router.route_all({{{2, 2}, {{2, 2}, {5, 2}, {2, 2}}}});
  ASSERT_TRUE(trees[0].routed());
  ASSERT_EQ(trees[0].sink_paths.size(), 3u);
  EXPECT_EQ(trees[0].sink_paths[0].size(), 1u);  // colocated: trivial path
  EXPECT_EQ(trees[0].sink_paths[2].size(), 1u);
  EXPECT_EQ(trees[0].sink_paths[1].back(), (Cell{5, 2}));
}

TEST(Router, AllSinksColocatedMeansUnrouted) {
  auto grid = open_grid();
  GlobalRouter router(grid);
  const auto trees = router.route_all({{{3, 3}, {{3, 3}}}});
  EXPECT_FALSE(trees[0].routed());
}

TEST(Router, DuplicateSinksRouteOnce) {
  auto grid = open_grid();
  GlobalRouter router(grid);
  const auto trees = router.route_all({{{0, 0}, {{4, 4}, {4, 4}}}});
  ASSERT_TRUE(trees[0].routed());
  EXPECT_EQ(trees[0].sink_paths.size(), 2u);
  EXPECT_EQ(trees[0].sink_paths[0], trees[0].sink_paths[1]);
}

TEST(Router, WirelengthStatMatchesEdges) {
  auto grid = open_grid();
  GlobalRouter router(grid);
  const auto trees = router.route_all(
      {{{0, 0}, {{3, 0}}}, {{0, 1}, {{0, 5}}}});
  double expected = 0.0;
  for (const auto& t : trees)
    expected += static_cast<double>(t.edges.size()) * 100.0;
  EXPECT_DOUBLE_EQ(router.stats().total_wirelength_um, expected);
}

TEST(Router, CongestionSpreadsParallelNets) {
  auto grid = open_grid(1000, 1000, 100);
  RouterOptions opt;
  opt.edge_capacity = 2.0;  // very low: force spreading
  GlobalRouter router(grid, opt);
  // Eight identical horizontal nets across the same row.
  std::vector<RouteRequest> nets;
  for (int i = 0; i < 8; ++i) nets.push_back({{0, 5}, {{9, 5}}});
  const auto trees = router.route_all(nets);
  // Count how many distinct rows are used.
  std::set<int> rows;
  for (const auto& t : trees)
    for (const auto& p : t.sink_paths[0]) rows.insert(p.gy);
  EXPECT_GT(rows.size(), 1u) << "rip-up/re-route should spread congestion";
}

TEST(Router, PathsFollowTreeEdges) {
  auto grid = open_grid();
  GlobalRouter router(grid);
  const auto trees = router.route_all({{{1, 1}, {{8, 1}, {1, 8}, {8, 8}}}});
  ASSERT_TRUE(trees[0].routed());
  std::set<std::pair<int, int>> edge_set(trees[0].edges.begin(),
                                         trees[0].edges.end());
  for (const auto& path : trees[0].sink_paths) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      const int a = path[i - 1].gy * grid.nx() + path[i - 1].gx;
      const int b = path[i].gy * grid.nx() + path[i].gx;
      EXPECT_TRUE(edge_set.count({std::min(a, b), std::max(a, b)}))
          << "path step not a tree edge";
    }
  }
}

TEST(Router, EmptyNetList) {
  auto grid = open_grid();
  GlobalRouter router(grid);
  EXPECT_TRUE(router.route_all({}).empty());
  EXPECT_DOUBLE_EQ(router.stats().total_wirelength_um, 0.0);
}

}  // namespace
}  // namespace lac::route
