#include <gtest/gtest.h>

#include "floorplan/floorplanner.h"
#include "retime/ff_placement.h"
#include "tile/tile_grid.h"

namespace lac::retime {
namespace {

// Grid over an empty 400x200 chip with 100-um tiles: 4x2 channel tiles.
tile::TileGrid channel_grid() {
  static floorplan::Floorplan fp;
  fp.chip = Rect{{0, 0}, {400, 200}};
  fp.blocks.clear();
  fp.placement.clear();
  tile::TileGridOptions opt;
  opt.tile_size = 100;
  return tile::TileGrid(fp, {}, opt);
}

TEST(FfPlacement, FlipFlopsLandInTailTile) {
  auto grid = channel_grid();
  RetimingGraph g;
  const auto t0 = grid.tile_of_cell(0, 0);
  const auto t1 = grid.tile_of_cell(1, 0);
  const int a = g.add_vertex(VertexKind::kFunctional, 1.0, t0);
  const int b = g.add_vertex(VertexKind::kFunctional, 1.0, t1);
  g.add_edge(a, b, 2);
  g.add_edge(b, a, 1);
  std::vector<int> r(static_cast<std::size_t>(g.num_vertices()), 0);
  const auto rep = place_flipflops(g, grid, r, 50.0);
  EXPECT_EQ(rep.n_f, 3);
  EXPECT_DOUBLE_EQ(rep.ac[t0.index()], 100.0);  // 2 FFs from edge a->b
  EXPECT_DOUBLE_EQ(rep.ac[t1.index()], 50.0);   // 1 FF from edge b->a
  EXPECT_EQ(rep.n_foa, 0);
  EXPECT_TRUE(rep.fits());
}

TEST(FfPlacement, InterconnectTailCountsAsNfn) {
  auto grid = channel_grid();
  RetimingGraph g;
  const auto t0 = grid.tile_of_cell(0, 0);
  const int a = g.add_vertex(VertexKind::kFunctional, 1.0, t0);
  const int u = g.add_vertex(VertexKind::kInterconnect, 1.0, t0);
  const int b = g.add_vertex(VertexKind::kFunctional, 1.0, t0);
  g.add_edge(a, u, 1);
  g.add_edge(u, b, 2);
  g.add_edge(b, a, 1);
  std::vector<int> r(static_cast<std::size_t>(g.num_vertices()), 0);
  const auto rep = place_flipflops(g, grid, r, 10.0);
  EXPECT_EQ(rep.n_f, 4);
  EXPECT_EQ(rep.n_fn, 2);  // only the edge with interconnect tail
}

TEST(FfPlacement, OverflowCountsCeilOfDeficit) {
  auto grid = channel_grid();
  const auto t0 = grid.tile_of_cell(0, 0);
  // Shrink tile capacity to 120 µm²; 3 FFs x 50 µm² = 150 -> 30 over ->
  // ceil(30/50) = 1 violating FF.
  grid.consume(t0, grid.capacity(t0) - 120.0);
  RetimingGraph g;
  const int a = g.add_vertex(VertexKind::kFunctional, 1.0, t0);
  const int b = g.add_vertex(VertexKind::kFunctional, 1.0,
                             grid.tile_of_cell(1, 0));
  g.add_edge(a, b, 3);
  g.add_edge(b, a, 0);
  std::vector<int> r(static_cast<std::size_t>(g.num_vertices()), 0);
  const auto rep = place_flipflops(g, grid, r, 50.0);
  EXPECT_EQ(rep.n_foa, 1);
  EXPECT_EQ(rep.tiles_violating, 1);
  EXPECT_NEAR(rep.worst_overflow, 30.0, 1e-9);
  EXPECT_FALSE(rep.fits());
}

TEST(FfPlacement, ExactFitIsNotViolation) {
  auto grid = channel_grid();
  const auto t0 = grid.tile_of_cell(0, 0);
  grid.consume(t0, grid.capacity(t0) - 100.0);
  RetimingGraph g;
  const int a = g.add_vertex(VertexKind::kFunctional, 1.0, t0);
  const int b = g.add_vertex(VertexKind::kFunctional, 1.0,
                             grid.tile_of_cell(1, 0));
  g.add_edge(a, b, 2);
  g.add_edge(b, a, 0);
  std::vector<int> r(static_cast<std::size_t>(g.num_vertices()), 0);
  const auto rep = place_flipflops(g, grid, r, 50.0);
  EXPECT_EQ(rep.n_foa, 0);
}

TEST(FfPlacement, RetimingShiftsAccounting) {
  auto grid = channel_grid();
  const auto t0 = grid.tile_of_cell(0, 0);
  const auto t1 = grid.tile_of_cell(1, 0);
  RetimingGraph g;
  const int a = g.add_vertex(VertexKind::kFunctional, 1.0, t0);
  const int b = g.add_vertex(VertexKind::kFunctional, 1.0, t1);
  const int c = g.add_vertex(VertexKind::kFunctional, 1.0, t0);
  g.add_edge(a, b, 1);
  g.add_edge(b, c, 0);
  g.add_edge(c, a, 1);
  std::vector<int> r(static_cast<std::size_t>(g.num_vertices()), 0);
  r[static_cast<std::size_t>(b)] = -1;  // move the FF from a->b to b->c
  ASSERT_TRUE(g.is_legal_retiming(r));
  const auto rep = place_flipflops(g, grid, r, 50.0);
  EXPECT_DOUBLE_EQ(rep.ac[t0.index()], 50.0);  // c->a unchanged
  EXPECT_DOUBLE_EQ(rep.ac[t1.index()], 50.0);  // b->c now carries the FF
}

TEST(FfPlacement, RejectsIllegalRetiming) {
  auto grid = channel_grid();
  RetimingGraph g;
  const auto t0 = grid.tile_of_cell(0, 0);
  const int a = g.add_vertex(VertexKind::kFunctional, 1.0, t0);
  const int b = g.add_vertex(VertexKind::kFunctional, 1.0, t0);
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 1);
  std::vector<int> r{0, 0, -1};
  EXPECT_THROW(place_flipflops(g, grid, r, 10.0), CheckError);
}

}  // namespace
}  // namespace lac::retime
