#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/generator.h"
#include "retime/collapse.h"

namespace lac::retime {
namespace {

using netlist::CellType;
using netlist::Netlist;

TEST(Collapse, DirectConnectionHasZeroWeight) {
  Netlist nl;
  const auto a = nl.add_cell("a", CellType::kInput);
  const auto g = nl.add_cell("g", CellType::kNot);
  nl.connect(g, a);
  const auto conns = collapse_registers(nl);
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(conns[0].driver, a);
  EXPECT_EQ(conns[0].sink, g);
  EXPECT_EQ(conns[0].w, 0);
}

TEST(Collapse, SingleDffGivesWeightOne) {
  Netlist nl;
  const auto a = nl.add_cell("a", CellType::kInput);
  const auto d = nl.add_cell("d", CellType::kDff);
  const auto g = nl.add_cell("g", CellType::kNot);
  nl.connect(d, a);
  nl.connect(g, d);
  const auto conns = collapse_registers(nl);
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(conns[0].driver, a);
  EXPECT_EQ(conns[0].sink, g);
  EXPECT_EQ(conns[0].w, 1);
}

TEST(Collapse, DffChainAccumulates) {
  Netlist nl;
  const auto a = nl.add_cell("a", CellType::kInput);
  const auto d1 = nl.add_cell("d1", CellType::kDff);
  const auto d2 = nl.add_cell("d2", CellType::kDff);
  const auto d3 = nl.add_cell("d3", CellType::kDff);
  const auto g = nl.add_cell("g", CellType::kBuf);
  nl.connect(d1, a);
  nl.connect(d2, d1);
  nl.connect(d3, d2);
  nl.connect(g, d3);
  const auto conns = collapse_registers(nl);
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(conns[0].w, 3);
}

TEST(Collapse, DffFanoutDuplicatesPerSink) {
  Netlist nl;
  const auto a = nl.add_cell("a", CellType::kInput);
  const auto d = nl.add_cell("d", CellType::kDff);
  const auto g1 = nl.add_cell("g1", CellType::kNot);
  const auto g2 = nl.add_cell("g2", CellType::kNot);
  nl.connect(d, a);
  nl.connect(g1, d);
  nl.connect(g2, d);
  const auto conns = collapse_registers(nl);
  EXPECT_EQ(conns.size(), 2u);
  for (const auto& c : conns) {
    EXPECT_EQ(c.driver, a);
    EXPECT_EQ(c.w, 1);
  }
}

TEST(Collapse, MixedFanout) {
  // a drives g1 directly and g2 through a register.
  Netlist nl;
  const auto a = nl.add_cell("a", CellType::kInput);
  const auto d = nl.add_cell("d", CellType::kDff);
  const auto g1 = nl.add_cell("g1", CellType::kNot);
  const auto g2 = nl.add_cell("g2", CellType::kNot);
  nl.connect(g1, a);
  nl.connect(d, a);
  nl.connect(g2, d);
  const auto conns = collapse_registers(nl);
  ASSERT_EQ(conns.size(), 2u);
  const auto direct =
      std::find_if(conns.begin(), conns.end(),
                   [&](const Connection& c) { return c.sink == g1; });
  const auto reg =
      std::find_if(conns.begin(), conns.end(),
                   [&](const Connection& c) { return c.sink == g2; });
  ASSERT_NE(direct, conns.end());
  ASSERT_NE(reg, conns.end());
  EXPECT_EQ(direct->w, 0);
  EXPECT_EQ(reg->w, 1);
}

TEST(Collapse, SelfLoopThroughDff) {
  Netlist nl;
  const auto g = nl.add_cell("g", CellType::kNot);
  const auto d = nl.add_cell("d", CellType::kDff);
  nl.connect(d, g);
  nl.connect(g, d);
  const auto conns = collapse_registers(nl);
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(conns[0].driver, g);
  EXPECT_EQ(conns[0].sink, g);
  EXPECT_EQ(conns[0].w, 1);
}

TEST(Collapse, WeightsConserveDffFanoutTotal) {
  // Property: Σ_connections w == Σ_dff (#paths from the DFF to non-DFF
  // sinks counted through chains).  For chain-free netlists this is just
  // Σ_dff fanouts; verify on generated circuits with chains disabled.
  netlist::GenSpec spec;
  spec.num_gates = 120;
  spec.num_dffs = 18;
  spec.dff_chain_prob = 0.0;
  spec.seed = 13;
  const auto nl = netlist::generate_netlist(spec);
  const auto conns = collapse_registers(nl);
  std::int64_t total_w = 0;
  for (const auto& c : conns) total_w += c.w;
  std::int64_t expect = 0;
  for (const auto d : nl.cells_of_type(CellType::kDff))
    expect += static_cast<std::int64_t>(nl.fanouts(d).size());
  EXPECT_EQ(total_w, expect);
}

TEST(Collapse, NoDffMeansAllZeroWeights) {
  netlist::GenSpec spec;
  spec.num_dffs = 0;
  spec.num_gates = 60;
  const auto nl = netlist::generate_netlist(spec);
  for (const auto& c : collapse_registers(nl)) EXPECT_EQ(c.w, 0);
}

}  // namespace
}  // namespace lac::retime
