// The deterministic parallel-for engine: coverage of every index, empty
// ranges, exception propagation, nesting, and — the load-bearing contract
// — that committed observability state is identical for any thread count.
#include "base/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/span.h"

namespace lac::base {
namespace {

ExecPolicy threads(int n, int chunk = 0) {
  ExecPolicy p;
  p.threads = n;
  p.chunk = chunk;
  return p;
}

TEST(ExecPolicy, ResolvedThreads) {
  EXPECT_EQ(threads(1).resolved_threads(), 1);
  EXPECT_EQ(threads(7).resolved_threads(), 7);
  EXPECT_GE(threads(0).resolved_threads(), 1);  // auto, floor of 1
  EXPECT_EQ(ExecPolicy::sequential().resolved_threads(), 1);
  EXPECT_THROW((void)threads(-2).resolved_threads(), lac::CheckError);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int w : {1, 2, 3, 8}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(threads(w), n, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "w=" << w << " n=" << n << " i=" << i;
    }
  }
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  std::atomic<int> calls{0};
  parallel_for(threads(4), 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  parallel_for_chunked(threads(4), 0,
                       [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, ChunkedPartitionsContiguously) {
  for (const int chunk : {0, 1, 3, 100}) {
    std::vector<char> seen(77, 0);
    parallel_for_chunked(threads(4, chunk), seen.size(),
                         [&](std::size_t b, std::size_t e) {
                           ASSERT_LT(b, e);
                           for (std::size_t i = b; i < e; ++i) seen[i] = 1;
                         });
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1), 77);
  }
}

TEST(ParallelFor, ExceptionsPropagateFirstByIndex) {
  for (const int w : {1, 4}) {
    try {
      parallel_for(threads(w, /*chunk=*/1), 32, [&](std::size_t i) {
        if (i == 7 || i == 20) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected a throw (w=" << w << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "7") << "w=" << w;
    }
  }
}

TEST(ParallelFor, NestedLoopsRunInline) {
  std::vector<std::atomic<int>> hits(6 * 5);
  parallel_for(threads(4), 6, [&](std::size_t i) {
    EXPECT_TRUE(inside_parallel_task());
    parallel_for(threads(4), 5,
                 [&](std::size_t j) { ++hits[i * 5 + j]; });
  });
  EXPECT_FALSE(inside_parallel_task());
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelMap, ProducesOrderedResults) {
  const auto out = parallel_map<int>(threads(3), 100, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ParallelFor, NonDeterministicSchedulingSameResults) {
  ExecPolicy p = threads(4, /*chunk=*/1);
  p.deterministic = false;
  std::vector<std::atomic<int>> hits(200);
  parallel_for(p, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

// Metric events and spans from tasks must commit in index order, giving
// identical registry contents and root-span order for any thread count.
TEST(ParallelObs, CommittedStateIdenticalAcrossThreadCounts) {
  obs::ScopedEnable on(true);

  auto run = [&](int w) {
    obs::Metrics::instance().reset();
    (void)obs::take_finished_roots();
    parallel_for(threads(w, /*chunk=*/1), 16, [&](std::size_t i) {
      obs::Span s("task.span");
      s.annotate("index", static_cast<std::int64_t>(i));
      obs::count("task.count", static_cast<std::int64_t>(i));
      obs::observe("task.observe", static_cast<double>(i));
    });
    const std::int64_t counter = obs::Metrics::instance().counter("task.count");
    const auto roots = obs::take_finished_roots();
    std::vector<std::int64_t> root_indices;
    for (const auto& r : roots) {
      EXPECT_EQ(r.name, "task.span");
      const auto* a = r.find_annotation("index");
      EXPECT_NE(a, nullptr);
      root_indices.push_back(a ? a->i : -1);
    }
    return std::make_pair(counter, root_indices);
  };

  const auto base = run(1);
  EXPECT_EQ(base.first, 16 * 15 / 2);
  std::vector<std::int64_t> ascending(16);
  std::iota(ascending.begin(), ascending.end(), 0);
  EXPECT_EQ(base.second, ascending);
  for (const int w : {2, 8}) {
    const auto got = run(w);
    EXPECT_EQ(got.first, base.first) << "w=" << w;
    EXPECT_EQ(got.second, base.second) << "w=" << w;
  }
}

// A span open *around* the loop must not become the parent of task spans
// (tasks are detached roots), and must still be intact afterwards.
TEST(ParallelObs, TaskSpansDetachFromEnclosingSpan) {
  obs::ScopedEnable on(true);
  obs::Metrics::instance().reset();
  (void)obs::take_finished_roots();
  {
    obs::Span outer("outer");
    parallel_for(threads(2, /*chunk=*/1), 4,
                 [&](std::size_t) { obs::Span s("inner"); });
    // Still open: a span created now nests under it.
    obs::Span child("outer.child");
  }
  const auto roots = obs::take_finished_roots();
  // Inner task spans commit as their own roots (in index order) before
  // the outer span closes, so they come first; "outer" closes last.
  ASSERT_EQ(roots.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(roots[i].name, "inner");
  EXPECT_EQ(roots.back().name, "outer");
  ASSERT_EQ(roots.back().children.size(), 1u);
  EXPECT_EQ(roots.back().children.front().name, "outer.child");
}

// Nested loops: inner-task events land in the enclosing task's capture and
// stay in deterministic flattened order.
TEST(ParallelObs, NestedCapturesCompose) {
  obs::ScopedEnable on(true);

  auto run = [&](int w) {
    obs::Metrics::instance().reset();
    (void)obs::take_finished_roots();
    parallel_for(threads(w, /*chunk=*/1), 3, [&](std::size_t i) {
      parallel_for(threads(4, /*chunk=*/1), 2, [&](std::size_t j) {
        obs::Span s("nested");
        s.annotate("ij", static_cast<std::int64_t>(i * 10 + j));
      });
    });
    std::vector<std::int64_t> order;
    for (const auto& r : obs::take_finished_roots())
      order.push_back(r.find_annotation("ij")->i);
    return order;
  };

  const std::vector<std::int64_t> want{0, 1, 10, 11, 20, 21};
  EXPECT_EQ(run(1), want);
  EXPECT_EQ(run(4), want);
}

}  // namespace
}  // namespace lac::base
