#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <unordered_set>

#include "base/check.h"
#include "base/geometry.h"
#include "base/ids.h"
#include "base/rng.h"
#include "base/str_util.h"
#include "base/table.h"

namespace lac {
namespace {

struct FooTag {};
using FooId = Id<FooTag>;

TEST(Ids, DefaultIsInvalid) {
  FooId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, FooId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  FooId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42);
  EXPECT_EQ(id.index(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(FooId{1}, FooId{2});
  EXPECT_EQ(FooId{3}, FooId{3});
}

TEST(Ids, Hashable) {
  std::unordered_set<FooId> s{FooId{1}, FooId{2}, FooId{1}};
  EXPECT_EQ(s.size(), 2u);
}

TEST(Ids, Streaming) {
  std::ostringstream os;
  os << FooId{7} << ' ' << FooId{};
  EXPECT_EQ(os.str(), "7 <invalid>");
}

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(LAC_CHECK(1 == 2), CheckError);
  try {
    LAC_CHECK_MSG(false, "ctx " << 99);
    FAIL();
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 99"), std::string::npos);
  }
}

TEST(Geometry, Manhattan) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({-2, 5}, {2, 5}), 4);
}

TEST(Geometry, RectBasics) {
  Rect r{{0, 0}, {10, 5}};
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 5);
  EXPECT_DOUBLE_EQ(r.area(), 50.0);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.center(), (Point{5, 2}));
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({10, 5}));
  EXPECT_FALSE(r.contains({11, 5}));
}

TEST(Geometry, OverlapIsInteriorOnly) {
  Rect a{{0, 0}, {10, 10}};
  Rect b{{10, 0}, {20, 10}};  // abutting
  EXPECT_FALSE(a.overlaps(b));
  Rect c{{9, 9}, {12, 12}};
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(a));
}

TEST(Geometry, IntersectAndUnion) {
  Rect a{{0, 0}, {10, 10}};
  Rect b{{5, 5}, {20, 8}};
  const Rect i = a.intersect(b);
  EXPECT_EQ(i, (Rect{{5, 5}, {10, 8}}));
  const Rect u = a.bounding_union(b);
  EXPECT_EQ(u, (Rect{{0, 0}, {20, 10}}));
  Rect empty{{5, 5}, {4, 4}};
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.bounding_union(a), a);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a(), b());
  Rng a2(123);
  EXPECT_NE(a2(), c());
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const double d = rng.uniform_real();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(StrUtil, Split) {
  const auto parts = split("a, b,,c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(split("", ",").empty());
}

TEST(StrUtil, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("DFF", "dff"));
  EXPECT_TRUE(iequals("NaNd", "NAND"));
  EXPECT_FALSE(iequals("NAND", "NAN"));
  EXPECT_FALSE(iequals("NAND", "NOR "));
}

TEST(StrUtil, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Table, RendersAligned) {
  TextTable t({"name", "x"});
  t.add_row({"a", "1"});
  t.add_row({"bbbb", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name | x  |"), std::string::npos);
  EXPECT_NE(s.find("| bbbb | 22 |"), std::string::npos);
}

TEST(Table, RejectsBadRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

}  // namespace
}  // namespace lac
