// Tests for the Chrome trace-event exporter: document shape, required
// event fields, deterministic timeline layout, per-root tracks, and the
// metric counter events.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/trace_event.h"

namespace lac::obs {
namespace {

const json::Value* find_event(const json::Value& doc, std::string_view name,
                              std::string_view phase) {
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) return nullptr;
  for (const json::Value& e : events->array) {
    const json::Value* en = e.find("name");
    const json::Value* ph = e.find("ph");
    if (en != nullptr && ph != nullptr && en->str == name &&
        ph->str == phase)
      return &e;
  }
  return nullptr;
}

json::Value sample_report() {
  const auto doc = json::parse(R"({
    "schema": "lac-obs-report/1",
    "name": "unit",
    "trace": [
      {"name": "plan", "seconds": 1.0,
       "annotations": {"circuit": "y641", "blocks": 9},
       "children": [
         {"name": "partition", "seconds": 0.25},
         {"name": "route", "seconds": 0.5,
          "children": [{"name": "ripup", "seconds": 0.1}]}
       ]},
      {"name": "replan", "seconds": 0.5}
    ],
    "metrics": {
      "counters": {"mcf.augmentations": 1704},
      "gauges": {"route.max_usage": 1.25},
      "histograms": {"mcf.solve_seconds": {"count": 2, "sum": 0.49}}
    }
  })");
  return *doc;
}

TEST(TraceEventTest, EveryEventHasRequiredFields) {
  const json::Value doc = to_trace_events(sample_report());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  EXPECT_FALSE(events->array.empty());
  for (const json::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    for (const char* field : {"name", "ph", "ts", "pid", "tid"})
      ASSERT_NE(e.find(field), nullptr) << "missing " << field;
    const std::string& ph = e.find("ph")->str;
    EXPECT_TRUE(ph == "X" || ph == "M" || ph == "C") << ph;
    if (ph == "X") {
      ASSERT_NE(e.find("dur"), nullptr);
    }
  }
  // Round-trips through the serializer as valid JSON.
  EXPECT_TRUE(json::parse(render_trace_events(sample_report())).has_value());
}

TEST(TraceEventTest, ChildrenLaidOutBackToBackFromParentStart) {
  const json::Value doc = to_trace_events(sample_report());
  const json::Value* plan = find_event(doc, "plan", "X");
  const json::Value* partition = find_event(doc, "partition", "X");
  const json::Value* route = find_event(doc, "route", "X");
  const json::Value* ripup = find_event(doc, "ripup", "X");
  ASSERT_TRUE(plan && partition && route && ripup);

  EXPECT_DOUBLE_EQ(plan->find("ts")->num, 0.0);
  EXPECT_DOUBLE_EQ(plan->find("dur")->num, 1e6);
  // partition starts with its parent, route after partition's 0.25 s.
  EXPECT_DOUBLE_EQ(partition->find("ts")->num, 0.0);
  EXPECT_DOUBLE_EQ(route->find("ts")->num, 0.25e6);
  // ripup nests from route's start.
  EXPECT_DOUBLE_EQ(ripup->find("ts")->num, 0.25e6);
  // All four share the first root's track.
  const double tid = plan->find("tid")->num;
  EXPECT_DOUBLE_EQ(partition->find("tid")->num, tid);
  EXPECT_DOUBLE_EQ(route->find("tid")->num, tid);
  EXPECT_DOUBLE_EQ(ripup->find("tid")->num, tid);
}

TEST(TraceEventTest, EachRootGetsItsOwnNamedTrack) {
  const json::Value doc = to_trace_events(sample_report());
  const json::Value* plan = find_event(doc, "plan", "X");
  const json::Value* replan = find_event(doc, "replan", "X");
  ASSERT_TRUE(plan && replan);
  EXPECT_NE(plan->find("tid")->num, replan->find("tid")->num);

  // thread_name metadata events label the tracks.
  const json::Value* events = doc.find("traceEvents");
  std::set<std::string> track_names;
  for (const json::Value& e : events->array)
    if (e.find("ph")->str == "M" && e.find("name")->str == "thread_name")
      track_names.insert(e.at_path({"args", "name"})->str);
  EXPECT_TRUE(track_names.count("plan"));
  EXPECT_TRUE(track_names.count("replan"));
}

TEST(TraceEventTest, AnnotationsBecomeArgs) {
  const json::Value doc = to_trace_events(sample_report());
  const json::Value* plan = find_event(doc, "plan", "X");
  ASSERT_NE(plan, nullptr);
  const json::Value* circuit = plan->at_path({"args", "circuit"});
  ASSERT_NE(circuit, nullptr);
  EXPECT_EQ(circuit->str, "y641");
  EXPECT_DOUBLE_EQ(plan->at_path({"args", "blocks"})->num, 9.0);
}

TEST(TraceEventTest, MetricsBecomeCounterEvents) {
  const json::Value doc = to_trace_events(sample_report());
  const json::Value* c = find_event(doc, "mcf.augmentations", "C");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->at_path({"args", "value"})->num, 1704.0);
  const json::Value* g = find_event(doc, "route.max_usage", "C");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->at_path({"args", "value"})->num, 1.25);
  const json::Value* hc = find_event(doc, "mcf.solve_seconds.count", "C");
  ASSERT_NE(hc, nullptr);
  EXPECT_DOUBLE_EQ(hc->at_path({"args", "value"})->num, 2.0);
  ASSERT_NE(find_event(doc, "mcf.solve_seconds.sum", "C"), nullptr);
}

TEST(TraceEventTest, V2MemoryDataBecomesArgsAndCounterTracks) {
  const auto doc_src = json::parse(R"({
    "schema": "lac-obs-report/2",
    "name": "unit",
    "trace": [
      {"name": "plan", "seconds": 1.0, "alloc_bytes": 2048,
       "freed_bytes": 512, "peak_live_bytes": 1536}
    ],
    "metrics": {
      "gauges": {"mem.wd_bytes": 123456},
      "memory": {"tracking": true, "peak_rss_bytes": 9000000}
    }
  })");
  ASSERT_TRUE(doc_src.has_value());
  const json::Value doc = to_trace_events(*doc_src);

  // Span memory deltas ride along as slice args.
  const json::Value* plan = find_event(doc, "plan", "X");
  ASSERT_NE(plan, nullptr);
  EXPECT_DOUBLE_EQ(plan->at_path({"args", "alloc_bytes"})->num, 2048.0);
  EXPECT_DOUBLE_EQ(plan->at_path({"args", "freed_bytes"})->num, 512.0);
  EXPECT_DOUBLE_EQ(plan->at_path({"args", "peak_live_bytes"})->num, 1536.0);

  // mem.* gauges and the metrics.memory section become counter tracks.
  const json::Value* g = find_event(doc, "mem.wd_bytes", "C");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->at_path({"args", "value"})->num, 123456.0);
  const json::Value* rss = find_event(doc, "memory.peak_rss_bytes", "C");
  ASSERT_NE(rss, nullptr);
  EXPECT_DOUBLE_EQ(rss->at_path({"args", "value"})->num, 9000000.0);
}

TEST(TraceEventTest, EmptyReportStillProducesValidDocument) {
  const auto empty = json::parse(R"({"name": "empty"})");
  const json::Value doc = to_trace_events(*empty);
  const json::Value* events = doc.find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  // Only the process_name metadata event.
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].find("ph")->str, "M");
  EXPECT_EQ(doc.find("displayTimeUnit")->str, "ms");
}

}  // namespace
}  // namespace lac::obs
