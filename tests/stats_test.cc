#include <gtest/gtest.h>

#include "bench89/suite.h"
#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "netlist/stats.h"

namespace lac::netlist {
namespace {

TEST(Stats, CountsMatchNetlist) {
  const auto nl = bench89::s27();
  const auto s = compute_stats(nl);
  EXPECT_EQ(s.num_gates, 10);
  EXPECT_EQ(s.num_dffs, 3);
  EXPECT_EQ(s.num_inputs, 4);
  EXPECT_EQ(s.num_outputs, 1);
}

TEST(Stats, DepthOfChain) {
  const auto nl = parse_bench(R"(
INPUT(a)
OUTPUT(d)
b = NOT(a)
c = NOT(b)
d = NOT(c)
)");
  EXPECT_EQ(compute_stats(nl).logic_depth, 3);
}

TEST(Stats, DepthResetsAtRegisters) {
  const auto nl = parse_bench(R"(
INPUT(a)
OUTPUT(e)
b = NOT(a)
c = DFF(b)
d = NOT(c)
e = NOT(d)
)");
  // Longest register-free gate chain: d -> e (2), not 4.
  EXPECT_EQ(compute_stats(nl).logic_depth, 2);
}

TEST(Stats, FanoutHistogram) {
  const auto nl = parse_bench(R"(
INPUT(a)
OUTPUT(x)
OUTPUT(y)
x = NOT(a)
y = NOT(a)
)");
  const auto s = compute_stats(nl);
  EXPECT_EQ(s.max_fanout, 2);  // a drives x and y
  ASSERT_GE(s.fanout_histogram.size(), 3u);
  EXPECT_EQ(s.fanout_histogram[2], 1);  // only 'a'
}

TEST(Stats, DffChainsDetected) {
  const auto nl = parse_bench(R"(
INPUT(a)
OUTPUT(q2)
q1 = DFF(a)
q2 = DFF(q1)
)");
  EXPECT_EQ(compute_stats(nl).dff_chains, 1);
}

TEST(Stats, GeneratorRoughlyHitsDepthTarget) {
  GenSpec spec;
  spec.num_gates = 300;
  spec.num_dffs = 30;
  spec.depth = 12;
  spec.seed = 77;
  const auto s = compute_stats(generate_netlist(spec));
  EXPECT_GE(s.logic_depth, 6);
  EXPECT_LE(s.logic_depth, 24);
}

TEST(Stats, FormatMentionsEverything) {
  const auto s = compute_stats(bench89::s27());
  const auto text = format_stats(s, "s27");
  EXPECT_NE(text.find("10 gates"), std::string::npos);
  EXPECT_NE(text.find("3 DFFs"), std::string::npos);
  EXPECT_NE(text.find("depth"), std::string::npos);
}

TEST(Stats, SuiteShapesAreCircuitLike) {
  for (const auto& e : bench89::table1_suite()) {
    const auto s = compute_stats(bench89::load(e));
    EXPECT_GT(s.logic_depth, 2) << e.spec.name;
    EXPECT_GT(s.avg_fanout, 0.8) << e.spec.name;
    EXPECT_LT(s.avg_fanout, 6.0) << e.spec.name;
    EXPECT_GE(s.max_fanout, 3) << e.spec.name;
  }
}

}  // namespace
}  // namespace lac::netlist
