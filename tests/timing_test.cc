#include <gtest/gtest.h>

#include "timing/technology.h"

namespace lac::timing {
namespace {

TEST(Timing, ZeroLengthWireIsDriverIntoLoad) {
  Technology t;
  // d = rd * cl * 1e-3 ps
  EXPECT_NEAR(wire_elmore_delay(t, 200.0, 0.0, 10.0), 2.0, 1e-12);
}

TEST(Timing, ElmoreMatchesClosedForm) {
  Technology t;
  t.wire_res_per_um = 0.1;
  t.wire_cap_per_um = 0.2;
  const double rd = 100.0, len = 1000.0, cl = 5.0;
  // rd*(c*len + cl) + r*len*(c*len/2 + cl), in milli-ps units
  const double expect = (100.0 * (200.0 + 5.0) + 100.0 * (100.0 + 5.0)) * 1e-3;
  EXPECT_NEAR(wire_elmore_delay(t, rd, len, cl), expect, 1e-9);
}

TEST(Timing, DelayGrowsQuadraticallyWithLength) {
  Technology t;
  const double d1 = wire_elmore_delay(t, 100.0, 1000.0, 10.0);
  const double d2 = wire_elmore_delay(t, 100.0, 2000.0, 10.0);
  const double d4 = wire_elmore_delay(t, 100.0, 4000.0, 10.0);
  // Quadratic term dominates at long lengths: ratios exceed linear.
  EXPECT_GT(d2 / d1, 2.0);
  EXPECT_GT(d4 / d2, 2.0);
}

TEST(Timing, RepeaterStageIncludesIntrinsic) {
  Technology t;
  const double wire_only =
      wire_elmore_delay(t, t.repeater_out_res, 500.0, t.repeater_in_cap);
  EXPECT_NEAR(repeater_stage_delay(t, 500.0, t.repeater_in_cap),
              wire_only + t.repeater_intrinsic_delay, 1e-12);
}

TEST(Timing, BufferingBeatsUnbufferedLongWire) {
  Technology t;
  const double len = 8000.0;
  const double unbuffered =
      unbuffered_wire_delay(t, t.gate_out_res, len, t.gate_in_cap);
  // Four 2000 um repeater stages.
  double buffered = wire_elmore_delay(t, t.gate_out_res, 2000.0, t.repeater_in_cap);
  for (int i = 0; i < 3; ++i)
    buffered += repeater_stage_delay(
        t, 2000.0, i == 2 ? t.gate_in_cap : t.repeater_in_cap);
  EXPECT_LT(buffered, unbuffered);
}

TEST(Timing, DefaultsAreSane) {
  const Technology t = Technology::paper_default();
  EXPECT_GT(t.gate_delay, 0.0);
  EXPECT_GT(t.gate_area, t.dff_area);
  EXPECT_GT(t.dff_area, t.repeater_area);
  EXPECT_GT(t.max_repeater_interval, 0.0);
}

}  // namespace
}  // namespace lac::timing
