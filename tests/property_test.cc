// Cross-module property sweeps: randomized configurations pushed through
// the full planner must satisfy every verifiable invariant (TEST_P grids).
#include <gtest/gtest.h>

#include "netlist/generator.h"
#include "planner/verify.h"
#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"
#include "tests/test_util.h"

namespace lac {
namespace {

struct PlanParam {
  int gates;
  int dffs;
  int blocks;
  std::uint64_t seed;
  double slack_fraction;
  double hard_fraction;
};

class PlanSweep : public ::testing::TestWithParam<PlanParam> {};

TEST_P(PlanSweep, PlanVerifiesEndToEnd) {
  const auto p = GetParam();
  netlist::GenSpec spec;
  spec.num_gates = p.gates;
  spec.num_dffs = p.dffs;
  spec.seed = p.seed;
  const auto nl = netlist::generate_netlist(spec);

  planner::PlannerConfig cfg;
  cfg.num_blocks = p.blocks;
  cfg.run.seed = p.seed * 31 + 7;
  cfg.clock_slack_fraction = p.slack_fraction;
  cfg.hard_block_fraction = p.hard_fraction;
  cfg.fp_opt.sa_moves_per_block = 120;
  planner::InterconnectPlanner planner(cfg);
  const auto res = planner.plan(nl);

  const auto rep = planner::verify_plan(res, cfg);
  EXPECT_TRUE(rep.ok()) << rep.to_string();

  // Routing sanity: wirelength accounted, interconnect units present iff
  // there was any inter-block wire.
  if (res.routing.total_wirelength_um > 0) {
    EXPECT_GT(res.interconnect_units, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PlanSweep,
    ::testing::Values(PlanParam{40, 5, 3, 1, 0.2, 0.0},
                      PlanParam{40, 5, 3, 2, 0.0, 0.0},
                      PlanParam{80, 10, 5, 3, 0.5, 0.0},
                      PlanParam{80, 10, 5, 4, 1.0, 0.0},
                      PlanParam{80, 10, 7, 5, 0.2, 0.3},
                      PlanParam{120, 20, 6, 6, 0.2, 0.0},
                      PlanParam{120, 3, 4, 7, 0.3, 0.5},
                      PlanParam{160, 24, 8, 8, 0.2, 0.0},
                      PlanParam{60, 30, 4, 9, 0.2, 0.0},
                      PlanParam{200, 16, 9, 10, 0.1, 0.2}));

// Retiming-core property grid: legality and optimal-count monotonicity
// across the whole period band, on random graphs.
struct BandParam {
  int vertices;
  int extra_edges;
  std::uint64_t seed;
};

class PeriodBand : public ::testing::TestWithParam<BandParam> {};

TEST_P(PeriodBand, MinAreaCountMonotoneInPeriod) {
  const auto p = GetParam();
  Rng rng(p.seed);
  auto g = test::random_retiming_graph(rng, p.vertices, p.extra_edges);
  const auto wd = retime::WdMatrices::compute(g);
  const double t_min = retime::min_period_retiming(g, wd);
  const double t_init = wd.t_init_ps();
  double last_count = -1.0;
  for (int step = 0; step <= 4; ++step) {
    const double t = t_min + (t_init - t_min) * step / 4.0;
    const auto cs = retime::build_constraints(g, wd, retime::to_decips(t));
    const auto r = retime::min_area_retiming(g, cs);
    ASSERT_TRUE(r.has_value()) << "t=" << t;
    std::vector<double> ones(static_cast<std::size_t>(g.num_vertices()), 1.0);
    const double count = retime::weighted_ff_area(g, *r, ones);
    // Looser period -> never more registers needed.
    if (last_count >= 0) {
      EXPECT_LE(count, last_count + 1e-9) << "step " << step;
    }
    last_count = count;
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, PeriodBand,
                         ::testing::Values(BandParam{8, 10, 11},
                                           BandParam{12, 18, 12},
                                           BandParam{16, 24, 13},
                                           BandParam{20, 30, 14},
                                           BandParam{25, 40, 15},
                                           BandParam{30, 50, 16}));

}  // namespace
}  // namespace lac
