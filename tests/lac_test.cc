#include <gtest/gtest.h>

#include "floorplan/floorplanner.h"
#include "retime/lac_retimer.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"
#include "tile/tile_grid.h"

namespace lac::retime {
namespace {

// A constructed scenario where plain min-area retiming violates a tiny
// tile but an equally-cheap alternative placement fits:
//
//   ring:  a --w2--> u --0--> b --w1--> a     (u is an interconnect unit)
//
// a sits in a tile with almost no capacity; u sits in a roomy channel.
// Min-area cost is the same wherever the registers sit on the a->u->b
// chain, so the weighted retimer can move them off a's tile.
struct Scenario {
  tile::TileGrid grid;
  RetimingGraph g;
  tile::TileId tight, roomy;
};

Scenario make_scenario() {
  static floorplan::Floorplan fp;
  fp.chip = Rect{{0, 0}, {200, 100}};
  fp.blocks.clear();
  fp.placement.clear();
  tile::TileGridOptions opt;
  opt.tile_size = 100;
  Scenario s{tile::TileGrid(fp, {}, opt), RetimingGraph{},
             tile::TileId::invalid(), tile::TileId::invalid()};
  s.tight = s.grid.tile_of_cell(0, 0);
  s.roomy = s.grid.tile_of_cell(1, 0);
  s.grid.consume(s.tight, s.grid.capacity(s.tight) - 10.0);  // ~no room
  const int a = s.g.add_vertex(VertexKind::kFunctional, 1.0, s.tight);
  const int u = s.g.add_vertex(VertexKind::kInterconnect, 1.0, s.roomy);
  const int b = s.g.add_vertex(VertexKind::kFunctional, 1.0, s.roomy);
  s.g.add_edge(a, u, 2);
  s.g.add_edge(u, b, 0);
  s.g.add_edge(b, a, 1);
  return s;
}

LacOptions ff50() {
  LacOptions opt;
  opt.ff_area = 50.0;
  return opt;
}

TEST(Lac, MovesRegistersOutOfTightTile) {
  auto s = make_scenario();
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));  // loose clock

  // Plain min-area may (and with our solver does) leave registers on a's
  // out-edge; the point of the test is that LAC ends with zero violations.
  const auto lac = lac_retiming(s.g, s.grid, cs, ff50());
  EXPECT_TRUE(lac.met_all_constraints);
  EXPECT_EQ(lac.report.n_foa, 0);
  EXPECT_LE(lac.report.ac[s.tight.index()], s.grid.capacity(s.tight) + 1e-9);
  EXPECT_TRUE(s.g.is_legal_retiming(lac.r));
}

TEST(Lac, NeverWorseThanMinAreaOnViolations) {
  auto s = make_scenario();
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  const auto ma = min_area_retiming(s.g, cs);
  ASSERT_TRUE(ma.has_value());
  const auto ma_rep = place_flipflops(s.g, s.grid, *ma, 50.0);
  const auto lac = lac_retiming(s.g, s.grid, cs, ff50());
  EXPECT_LE(lac.report.n_foa, ma_rep.n_foa);
}

TEST(Lac, RespectsClockPeriod) {
  auto s = make_scenario();
  const auto wd = WdMatrices::compute(s.g);
  const double t = 3.0;  // tight: two units in series already cost 2
  const auto cs = build_constraints(s.g, wd, to_decips(t));
  const auto lac = lac_retiming(s.g, s.grid, cs, ff50());
  EXPECT_LE(s.g.period_after_ps(lac.r), t + 1e-9);
}

TEST(Lac, PeriodBelowUnitDelayRejectedAtConstraintBuild) {
  auto s = make_scenario();
  const auto wd = WdMatrices::compute(s.g);
  EXPECT_THROW(build_constraints(s.g, wd, to_decips(0.5)), CheckError);
}

TEST(Lac, StopsWithinRoundBudget) {
  auto s = make_scenario();
  // Make the tight tile impossible: negative capacity everywhere relevant.
  s.grid.consume(s.tight, 1e9);
  s.grid.consume(s.roomy, 1e9);
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  LacOptions opt = ff50();
  opt.n_max = 3;
  opt.max_rounds = 40;
  const auto lac = lac_retiming(s.g, s.grid, cs, opt);
  EXPECT_FALSE(lac.met_all_constraints);
  // best found in round 1, then n_max non-improving rounds.
  EXPECT_LE(lac.n_wr, 1 + opt.n_max + 1);
}

TEST(Lac, ConvergenceHistoryMatchesRounds) {
  auto s = make_scenario();
  // Impossible capacities force the full multi-round loop.
  s.grid.consume(s.tight, 1e9);
  s.grid.consume(s.roomy, 1e9);
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  LacOptions opt = ff50();
  opt.n_max = 3;
  opt.max_rounds = 40;
  const auto lac = lac_retiming(s.g, s.grid, cs, opt);

  // One history record per weighted min-area solve, numbered from 1.
  ASSERT_EQ(static_cast<int>(lac.rounds.size()), lac.n_wr);
  ASSERT_GT(lac.n_wr, 1);
  for (std::size_t i = 0; i < lac.rounds.size(); ++i) {
    const LacRoundStats& rs = lac.rounds[i];
    EXPECT_EQ(rs.round, static_cast<int>(i) + 1);
    EXPECT_GE(rs.n_f, 0);
    EXPECT_GE(rs.n_foa, 0);
    EXPECT_GE(rs.max_overflow, 0.0);
    EXPECT_LE(rs.weight_lo, rs.weight_hi);
    EXPECT_GE(rs.solve_seconds, 0.0);
    // best_n_foa is the running best: monotone non-increasing and never
    // above the round's own violation count.
    if (i > 0) EXPECT_LE(rs.best_n_foa, lac.rounds[i - 1].best_n_foa);
    EXPECT_LE(rs.best_n_foa, rs.n_foa);
  }
  // The history's final best matches the returned result.
  EXPECT_EQ(lac.rounds.back().best_n_foa, lac.report.n_foa);
}

TEST(Lac, ConvergenceHistorySingleRoundWhenFitting) {
  auto s = make_scenario();
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  const auto lac = lac_retiming(s.g, s.grid, cs, ff50());
  ASSERT_EQ(static_cast<int>(lac.rounds.size()), lac.n_wr);
  EXPECT_TRUE(lac.rounds.front().improved);
}

TEST(Lac, ReweightingRaisesOverfullTiles) {
  auto s = make_scenario();
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  LacOptions opt = ff50();
  opt.n_max = 2;
  const auto lac = lac_retiming(s.g, s.grid, cs, opt);
  ASSERT_EQ(static_cast<int>(lac.tile_weight.size()), s.grid.num_tiles());
  // Weights stay within the configured clamp.
  for (const double w : lac.tile_weight) {
    EXPECT_GE(w, opt.weight_min);
    EXPECT_LE(w, opt.weight_max);
  }
}

TEST(Lac, AlphaZeroNeverChangesWeights) {
  auto s = make_scenario();
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  LacOptions opt = ff50();
  opt.alpha = 0.0;  // update factor degenerates to 1.0 — pure min-area
  opt.n_max = 2;
  const auto lac = lac_retiming(s.g, s.grid, cs, opt);
  for (const double w : lac.tile_weight) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(Lac, SingleRoundWhenAlreadyFits) {
  // Roomy everywhere: the first weighted min-area already satisfies all
  // constraints, so exactly one solve happens.
  static floorplan::Floorplan fp;
  fp.chip = Rect{{0, 0}, {200, 100}};
  fp.blocks.clear();
  fp.placement.clear();
  tile::TileGridOptions topt;
  topt.tile_size = 100;
  tile::TileGrid grid(fp, {}, topt);
  RetimingGraph g;
  const int a = g.add_vertex(VertexKind::kFunctional, 1.0, grid.tile_of_cell(0, 0));
  const int b = g.add_vertex(VertexKind::kFunctional, 1.0, grid.tile_of_cell(1, 0));
  g.add_edge(a, b, 1);
  g.add_edge(b, a, 1);
  const auto wd = WdMatrices::compute(g);
  const auto cs = build_constraints(g, wd, to_decips(5.0));
  const auto lac = lac_retiming(g, grid, cs, ff50());
  EXPECT_EQ(lac.n_wr, 1);
  EXPECT_TRUE(lac.met_all_constraints);
}

// Every LacOptions field is validated up front with a targeted message.
// max_rounds <= 0 in particular used to skip the round loop entirely and
// die much later on an unrelated internal invariant.
TEST(Lac, RejectsBadOptionsUpFront) {
  auto s = make_scenario();
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  const auto expect_rejected = [&](LacOptions opt) {
    EXPECT_THROW(lac_retiming(s.g, s.grid, cs, opt), CheckError);
  };

  LacOptions opt = ff50();
  opt.max_rounds = 0;
  expect_rejected(opt);
  opt = ff50();
  opt.max_rounds = -3;
  expect_rejected(opt);
  opt = ff50();
  opt.alpha = -0.1;
  expect_rejected(opt);
  opt = ff50();
  opt.alpha = 1.5;
  expect_rejected(opt);
  opt = ff50();
  opt.n_max = 0;
  expect_rejected(opt);
  opt = ff50();
  opt.ff_area = 0.0;
  expect_rejected(opt);
  opt = ff50();
  opt.full_tile_ratio = 0.5;
  expect_rejected(opt);
  opt = ff50();
  opt.weight_min = 0.0;
  expect_rejected(opt);
  opt = ff50();
  opt.weight_min = 10.0;
  opt.weight_max = 1.0;
  expect_rejected(opt);
}

TEST(Lac, BoundaryOptionsAccepted) {
  auto s = make_scenario();
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  LacOptions opt = ff50();
  opt.max_rounds = 1;       // a single round is a legal budget
  opt.alpha = 1.0;          // boundary of [0, 1]
  opt.full_tile_ratio = 1.0;
  opt.weight_min = opt.weight_max = 1.0;  // degenerate but consistent range
  const auto lac = lac_retiming(s.g, s.grid, cs, opt);
  EXPECT_EQ(lac.n_wr, 1);
  EXPECT_EQ(lac.rounds.size(), 1u);
}

// The incremental session and the cold per-round path must be fully
// interchangeable: same retiming, same round trajectory.
TEST(Lac, IncrementalMatchesColdPath) {
  auto s = make_scenario();
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  LacOptions opt = ff50();
  opt.incremental = false;
  const auto cold = lac_retiming(s.g, s.grid, cs, opt);
  opt.incremental = true;
  const auto warm = lac_retiming(s.g, s.grid, cs, opt);
  EXPECT_EQ(cold.r, warm.r);
  EXPECT_EQ(cold.n_wr, warm.n_wr);
  EXPECT_EQ(cold.report.n_foa, warm.report.n_foa);
  EXPECT_EQ(cold.report.n_f, warm.report.n_f);
  ASSERT_EQ(cold.rounds.size(), warm.rounds.size());
  for (std::size_t i = 0; i < cold.rounds.size(); ++i) {
    EXPECT_EQ(cold.rounds[i].n_foa, warm.rounds[i].n_foa);
    EXPECT_EQ(cold.rounds[i].n_f, warm.rounds[i].n_f);
    EXPECT_EQ(cold.rounds[i].best_n_foa, warm.rounds[i].best_n_foa);
    EXPECT_EQ(cold.rounds[i].improved, warm.rounds[i].improved);
  }
  // Rounds after the first actually use the warm path.
  for (std::size_t i = 1; i < warm.rounds.size(); ++i)
    EXPECT_TRUE(warm.rounds[i].warm) << "round " << i + 1;
  for (const LacRoundStats& rs : cold.rounds) EXPECT_FALSE(rs.warm);
}

}  // namespace
}  // namespace lac::retime
