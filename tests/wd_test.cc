#include <gtest/gtest.h>

#include <limits>

#include "base/rng.h"
#include "retime/wd_matrices.h"
#include "tests/test_util.h"

namespace lac::retime {
namespace {

// Floyd–Warshall reference on lexicographic (W, -delaySum) pairs.
struct RefWd {
  std::vector<std::vector<std::int64_t>> w, s;  // s = delay sum excl. head
};

RefWd reference_wd(const RetimingGraph& g) {
  const int n = g.num_vertices();
  constexpr std::int64_t inf = std::numeric_limits<std::int64_t>::max() / 4;
  RefWd ref;
  ref.w.assign(static_cast<std::size_t>(n),
               std::vector<std::int64_t>(static_cast<std::size_t>(n), inf));
  ref.s.assign(static_cast<std::size_t>(n),
               std::vector<std::int64_t>(static_cast<std::size_t>(n), 0));
  for (int v = 0; v < n; ++v) {
    ref.w[static_cast<std::size_t>(v)][static_cast<std::size_t>(v)] = 0;
    ref.s[static_cast<std::size_t>(v)][static_cast<std::size_t>(v)] = 0;
  }
  auto better = [](std::int64_t w1, std::int64_t s1, std::int64_t w2,
                   std::int64_t s2) {
    return w1 < w2 || (w1 == w2 && s1 > s2);  // min W, then max delay
  };
  for (int e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    const std::int64_t w = ed.w;
    const std::int64_t s = g.delay_decips(ed.tail);
    auto& cw = ref.w[static_cast<std::size_t>(ed.tail)][static_cast<std::size_t>(ed.head)];
    auto& cs = ref.s[static_cast<std::size_t>(ed.tail)][static_cast<std::size_t>(ed.head)];
    if (ed.tail == ed.head) continue;
    if (better(w, s, cw, cs)) {
      cw = w;
      cs = s;
    }
  }
  const int nn = n;
  for (int k = 0; k < nn; ++k)
    for (int i = 0; i < nn; ++i) {
      if (ref.w[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] >= inf) continue;
      for (int j = 0; j < nn; ++j) {
        if (ref.w[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] >= inf) continue;
        const std::int64_t w =
            ref.w[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] +
            ref.w[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
        const std::int64_t s =
            ref.s[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] +
            ref.s[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
        if (better(w, s,
                   ref.w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                   ref.s[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])) {
          ref.w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = w;
          ref.s[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = s;
        }
      }
    }
  return ref;
}

TEST(Wd, CorrelatorKnownValues) {
  const auto g = test::correlator_graph();
  const auto wd = WdMatrices::compute(g);
  // v1=1, v2=2, v3=3, v4=4 (vertex 0 is host, unreachable).
  EXPECT_EQ(wd.w(1, 2), 1);
  EXPECT_EQ(wd.w(1, 4), 3);
  EXPECT_EQ(wd.w(4, 1), 0);
  EXPECT_EQ(wd.w(2, 1), 2);  // v2->v3->v4->v1: w = 1+1+0
  EXPECT_DOUBLE_EQ(wd.d_ps(4, 1), 10.0);  // v4(7)+v1(3), zero-weight path
  EXPECT_DOUBLE_EQ(wd.d_ps(1, 2), 6.0);   // v1+v2 along the single path
  EXPECT_DOUBLE_EQ(wd.d_ps(1, 1), 3.0);   // empty path: own delay
  EXPECT_DOUBLE_EQ(wd.t_init_ps(), 10.0);
  EXPECT_EQ(wd.w(0, 1), WdMatrices::kUnreachable);  // host is edge-less
}

TEST(Wd, MatchesFloydWarshallOnRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    auto g = test::random_retiming_graph(rng, 4 + static_cast<int>(rng.uniform(8)),
                                         static_cast<int>(rng.uniform(14)));
    const auto wd = WdMatrices::compute(g);
    const auto ref = reference_wd(g);
    constexpr std::int64_t inf = std::numeric_limits<std::int64_t>::max() / 4;
    for (int u = 0; u < g.num_vertices(); ++u)
      for (int v = 0; v < g.num_vertices(); ++v) {
        if (ref.w[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] >= inf) {
          EXPECT_EQ(wd.w(u, v), WdMatrices::kUnreachable) << u << "->" << v;
          continue;
        }
        ASSERT_NE(wd.w(u, v), WdMatrices::kUnreachable) << u << "->" << v;
        EXPECT_EQ(wd.w(u, v),
                  ref.w[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)])
            << u << "->" << v;
        EXPECT_EQ(wd.d_decips(u, v),
                  ref.s[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] +
                      g.delay_decips(v))
            << u << "->" << v;
      }
  }
}

TEST(Wd, TInitIsMaxZeroWeightD) {
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = test::random_retiming_graph(rng, 7, 9);
    const auto wd = WdMatrices::compute(g);
    std::int64_t expect = 0;
    for (int u = 0; u < g.num_vertices(); ++u)
      for (int v = 0; v < g.num_vertices(); ++v)
        if (wd.w(u, v) == 0) expect = std::max<std::int64_t>(expect, wd.d_decips(u, v));
    EXPECT_DOUBLE_EQ(wd.t_init_ps(), from_decips(expect));
    // And it must equal the graph's own register-free longest path.
    EXPECT_NEAR(wd.t_init_ps(), g.period_as_is_ps(), 0.11);
  }
}

TEST(Wd, RegisterFreeCycleRejected) {
  RetimingGraph g;
  const auto t = tile::TileId::invalid();
  const int a = g.add_vertex(VertexKind::kFunctional, 1.0, t);
  const int b = g.add_vertex(VertexKind::kFunctional, 1.0, t);
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  EXPECT_THROW(WdMatrices::compute(g), CheckError);
}

TEST(Wd, MaxVertexDelayTracked) {
  const auto g = test::correlator_graph();
  const auto wd = WdMatrices::compute(g);
  EXPECT_EQ(wd.max_vertex_delay_decips(), to_decips(7.0));
}

}  // namespace
}  // namespace lac::retime
