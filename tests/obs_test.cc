// Tests for the observability subsystem: span nesting, JSON escaping and
// round-trips, metric accumulation, report structure, and the
// disabled-path no-allocation guarantee.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <new>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/span.h"

namespace lac::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    Metrics::instance().reset();
    (void)take_finished_roots();  // drain anything a prior test left behind
  }
};

TEST_F(ObsTest, SpanNestingBuildsTree) {
  {
    Span root("root");
    root.annotate("k", 42);
    {
      Span child("child_a");
      child.annotate("tag", "x");
      { Span grand("grand"); }
    }
    { Span child("child_b"); }
  }
  const auto roots = take_finished_roots();
  ASSERT_EQ(roots.size(), 1u);
  const SpanNode& r = roots[0];
  EXPECT_EQ(r.name, "root");
  EXPECT_GE(r.seconds, 0.0);
  ASSERT_EQ(r.children.size(), 2u);
  EXPECT_EQ(r.children[0].name, "child_a");
  EXPECT_EQ(r.children[1].name, "child_b");
  ASSERT_EQ(r.children[0].children.size(), 1u);
  EXPECT_EQ(r.children[0].children[0].name, "grand");

  const Annotation* a = r.find_annotation("k");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, Annotation::Kind::kInt);
  EXPECT_EQ(a->i, 42);
  ASSERT_NE(r.find_child("child_b"), nullptr);
  EXPECT_EQ(r.find_child("nope"), nullptr);
}

TEST_F(ObsTest, SiblingRootsArePublishedInCompletionOrder) {
  { Span a("first"); }
  { Span b("second"); }
  const auto roots = take_finished_roots();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].name, "first");
  EXPECT_EQ(roots[1].name, "second");
  // Drained: a second take returns nothing.
  EXPECT_TRUE(take_finished_roots().empty());
}

TEST_F(ObsTest, SpansOnDifferentThreadsAreSeparateRoots) {
  std::thread t([] { Span s("thread_root"); });
  t.join();
  { Span s("main_root"); }
  const auto roots = take_finished_roots();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].name, "thread_root");
  EXPECT_EQ(roots[1].name, "main_root");
}

TEST_F(ObsTest, DisabledSpanRecordsNothingButStillTimes) {
  set_enabled(false);
  {
    Span s("off");
    EXPECT_FALSE(s.recording());
    EXPECT_GE(s.elapsed_seconds(), 0.0);
  }
  set_enabled(true);
  EXPECT_TRUE(take_finished_roots().empty());
}

TEST_F(ObsTest, ScopedEnableRestoresPreviousState) {
  set_enabled(true);
  {
    ScopedEnable off(false);
    EXPECT_FALSE(enabled());
    {
      ScopedEnable on(true);
      EXPECT_TRUE(enabled());
    }
    EXPECT_FALSE(enabled());
  }
  EXPECT_TRUE(enabled());
}

TEST_F(ObsTest, DisabledHotPathPerformsNoAllocation) {
  if (!memory::tracking_available())
    GTEST_SKIP() << "no global allocation hooks on this platform";
  set_enabled(false);
  const std::uint64_t before = memory::thread_alloc_calls();
  for (int i = 0; i < 1000; ++i) {
    Span s("hot");
    s.annotate("k", 1);
    s.annotate("s", "value");
    count("c");
    gauge("g", 1.0);
    observe("h", 0.5);
  }
  const std::uint64_t after = memory::thread_alloc_calls();
  set_enabled(true);
  EXPECT_EQ(after, before);
}

TEST_F(ObsTest, CountersAccumulate) {
  count("test.counter");
  count("test.counter", 4);
  EXPECT_EQ(Metrics::instance().counter("test.counter"), 5);
  EXPECT_EQ(Metrics::instance().counter("absent"), 0);
}

TEST_F(ObsTest, GaugeKeepsLastValue) {
  gauge("test.gauge", 1.5);
  gauge("test.gauge", 2.5);
  const auto g = Metrics::instance().gauge("test.gauge");
  ASSERT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(*g, 2.5);
  EXPECT_FALSE(Metrics::instance().gauge("absent").has_value());
}

TEST_F(ObsTest, HistogramAccumulatesIntoLogBuckets) {
  observe("test.hist", 0.5);
  observe("test.hist", 0.5);
  observe("test.hist", 100.0);
  const auto h = Metrics::instance().histogram("test.hist");
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->count, 3);
  EXPECT_DOUBLE_EQ(h->sum, 101.0);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 100.0);
  std::int64_t total = 0;
  for (const auto b : h->buckets) total += b;
  EXPECT_EQ(total, 3);
  // 0.5 lands in the bucket whose bound is the first >= 0.5; both
  // observations of 0.5 share it.
  int first_nonempty = -1;
  for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i)
    if (h->buckets[static_cast<std::size_t>(i)] > 0) {
      first_nonempty = i;
      break;
    }
  ASSERT_GE(first_nonempty, 0);
  EXPECT_EQ(h->buckets[static_cast<std::size_t>(first_nonempty)], 2);
  EXPECT_GE(HistogramSnapshot::bucket_bound(first_nonempty), 0.5);
}

TEST_F(ObsTest, DisabledMetricsAreDropped) {
  set_enabled(false);
  count("dropped.counter");
  observe("dropped.hist", 1.0);
  set_enabled(true);
  EXPECT_EQ(Metrics::instance().counter("dropped.counter"), 0);
  EXPECT_FALSE(Metrics::instance().histogram("dropped.hist").has_value());
}

TEST(JsonTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json::escape(std::string("a\x01" "b")), "a\\u0001b");
}

TEST(JsonTest, WriterProducesWellFormedDocument) {
  json::Writer w;
  w.begin_object();
  w.kv("name", "x\"y");
  w.kv("n", 3);
  w.kv("pi", 3.5);
  w.kv("yes", true);
  w.key("arr");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.key("none");
  w.null();
  w.end_object();
  const std::string doc = w.take();
  const auto v = json::parse(doc);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("name")->str, "x\"y");
  EXPECT_DOUBLE_EQ(v->find("n")->num, 3.0);
  EXPECT_DOUBLE_EQ(v->find("pi")->num, 3.5);
  EXPECT_TRUE(v->find("yes")->b);
  ASSERT_TRUE(v->find("arr")->is_array());
  EXPECT_EQ(v->find("arr")->array.size(), 2u);
  EXPECT_EQ(v->find("none")->kind, json::Value::Kind::kNull);
}

TEST(JsonTest, ParseRoundTripsThroughSerialize) {
  const std::string doc =
      R"({"a": [1, 2.5, "sé", true, null], "b": {"c": -3}})";
  const auto v = json::parse(doc);
  ASSERT_TRUE(v.has_value());
  const auto again = json::parse(json::serialize(*v));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(json::serialize(*v), json::serialize(*again));
  EXPECT_EQ(v->at_path({"b", "c"})->num, -3.0);
  EXPECT_EQ(v->find("a")->array[2].str, "s\xc3\xa9");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("[1,]").has_value());
  EXPECT_FALSE(json::parse("{} trailing").has_value());
  EXPECT_FALSE(json::parse("\"unterminated").has_value());
  EXPECT_FALSE(json::parse("nul").has_value());
}

TEST_F(ObsTest, ReportContainsTraceAndMetrics) {
  {
    Span s("report_root");
    s.annotate("circuit", "y123");
    { Span c("stage"); }
    count("report.counter", 7);
    observe("report.hist", 2.0);
  }
  const std::string text =
      render_report("unit", {{"note", json::Value::of("hello")}});
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->str, "lac-obs-report/2");
  EXPECT_EQ(doc->find("name")->str, "unit");
  EXPECT_TRUE(doc->find("obs_enabled")->b);
  EXPECT_EQ(doc->at_path({"meta", "note"})->str, "hello");
  // v2: the metrics block always carries the process-memory section.
  const auto* tracking = doc->at_path({"metrics", "memory", "tracking"});
  ASSERT_NE(tracking, nullptr);
  EXPECT_EQ(tracking->b, memory::tracking_enabled());

  const auto* trace = doc->find("trace");
  ASSERT_TRUE(trace && trace->is_array());
  ASSERT_EQ(trace->array.size(), 1u);
  const auto& root = trace->array[0];
  EXPECT_EQ(root.find("name")->str, "report_root");
  EXPECT_EQ(root.at_path({"annotations", "circuit"})->str, "y123");
  ASSERT_EQ(root.find("children")->array.size(), 1u);
  EXPECT_EQ(root.find("children")->array[0].find("name")->str, "stage");

  EXPECT_EQ(doc->at_path({"metrics", "counters", "report.counter"})->num, 7.0);
  const auto* hist = doc->at_path({"metrics", "histograms", "report.hist"});
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->num, 1.0);

  // Building the report drained the store: a second report has no trace.
  const auto empty = json::parse(render_report("unit2"));
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->find("trace")->array.empty());
}

TEST(JsonTest, ControlCharacterAndNonAsciiRoundTrips) {
  // Every byte below 0x20 must escape and come back identical.
  std::string wild;
  for (int c = 1; c < 0x20; ++c) wild += static_cast<char>(c);
  wild += "café ☕ 日本語";
  json::Writer w;
  w.begin_object();
  w.kv("s", std::string_view(wild));
  w.end_object();
  const auto v = json::parse(w.take());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("s")->str, wild);

  // \u escapes, including a surrogate pair, decode to UTF-8.
  const auto esc = json::parse(R"(["\u00e9", "\ud83d\ude00", "\u0001"])");
  ASSERT_TRUE(esc.has_value());
  EXPECT_EQ(esc->array[0].str, "\xc3\xa9");
  EXPECT_EQ(esc->array[1].str, "\xf0\x9f\x98\x80");
  EXPECT_EQ(esc->array[2].str, "\x01");
  // Lone surrogates are malformed.
  EXPECT_FALSE(json::parse(R"(["\ud800"])").has_value());
}

TEST(JsonTest, DeepNestingParsesUpToTheRecursionLimit) {
  const auto nested = [](int depth) {
    std::string s(static_cast<std::size_t>(depth), '[');
    s += "1";
    s.append(static_cast<std::size_t>(depth), ']');
    return s;
  };
  const auto ok = json::parse(nested(100));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(json::parse(json::serialize(*ok)).has_value(), true);
  EXPECT_FALSE(json::parse(nested(400)).has_value());
}

TEST_F(ObsTest, NanAndInfGaugesSerializeAsNull) {
  gauge("edge.nan", std::nan(""));
  gauge("edge.inf", std::numeric_limits<double>::infinity());
  gauge("edge.fine", 2.5);
  const std::string text = render_report("edge");
  // The writer has no Inf/NaN literal: both become null, and the
  // document still parses.
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const auto* nan_v = doc->at_path({"metrics", "gauges", "edge.nan"});
  ASSERT_NE(nan_v, nullptr);
  EXPECT_EQ(nan_v->kind, json::Value::Kind::kNull);
  const auto* inf_v = doc->at_path({"metrics", "gauges", "edge.inf"});
  ASSERT_NE(inf_v, nullptr);
  EXPECT_EQ(inf_v->kind, json::Value::Kind::kNull);
  EXPECT_DOUBLE_EQ(doc->at_path({"metrics", "gauges", "edge.fine"})->num,
                   2.5);
}

TEST_F(ObsTest, DeeplyNestedSpanTreeRoundTripsThroughReport) {
  constexpr int kDepth = 50;
  const std::function<void(int)> recurse = [&](int n) {
    if (n == 0) return;
    Span s("deep");
    recurse(n - 1);
  };
  recurse(kDepth);
  const auto doc = json::parse(render_report("deep"));
  ASSERT_TRUE(doc.has_value());
  const json::Value* cur = &doc->find("trace")->array[0];
  int depth = 1;
  while (const json::Value* kids = cur->find("children")) {
    cur = &kids->array[0];
    ++depth;
  }
  EXPECT_EQ(depth, kDepth);
  EXPECT_EQ(cur->find("name")->str, "deep");
}

TEST_F(ObsTest, WriteReportRoundTripsThroughParseFile) {
  { Span s("file_root"); }
  const std::string path =
      ::testing::TempDir() + "/obs_test_report.json";
  ASSERT_TRUE(write_report(path, "file_test"));
  const auto doc = json::parse_file(path);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("name")->str, "file_test");
  EXPECT_EQ(doc->find("trace")->array[0].find("name")->str, "file_root");
  EXPECT_FALSE(json::parse_file(path + ".missing").has_value());
}

TEST_F(ObsTest, WriteReportCreatesMissingParentDirectories) {
  { Span s("nested_root"); }
  const std::string path =
      ::testing::TempDir() + "/obs_nested/a/b/report.json";
  std::string error = "stale";
  ASSERT_TRUE(write_report(path, "nested", {}, &error));
  EXPECT_TRUE(error.empty());
  const auto doc = json::parse_file(path);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("name")->str, "nested");
}

TEST_F(ObsTest, WriteReportFailureCarriesErrorContext) {
  // A regular file as a path component defeats create_directories even
  // for root, unlike permission bits.
  const std::string blocker = ::testing::TempDir() + "/obs_blocker";
  {
    std::ofstream f(blocker);
    f << "not a directory\n";
  }
  std::string error;
  EXPECT_FALSE(
      write_report(blocker + "/sub/report.json", "blocked", {}, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find(blocker), std::string::npos) << error;
}

}  // namespace
}  // namespace lac::obs
