#include <gtest/gtest.h>

#include <limits>

#include "retime/min_area.h"
#include "retime/sharing.h"
#include "retime/wd_matrices.h"
#include "tests/test_util.h"

namespace lac::retime {
namespace {

// Brute-force reference for the SHARED objective.
std::optional<double> brute_force_shared(const RetimingGraph& g,
                                         double period_ps,
                                         const std::vector<double>& weights,
                                         int bound = 3) {
  const int n = g.num_vertices();
  std::vector<int> r(static_cast<std::size_t>(n), -bound);
  r[static_cast<std::size_t>(g.host())] = 0;
  std::optional<double> best;
  while (true) {
    if (g.is_legal_retiming(r) && g.period_after_ps(r) <= period_ps + 1e-9) {
      const double cost = shared_ff_area(g, r, weights);
      if (!best || cost < *best) best = cost;
    }
    int i = 0;
    for (; i < n; ++i) {
      if (i == g.host()) continue;
      if (r[static_cast<std::size_t>(i)] < bound) {
        ++r[static_cast<std::size_t>(i)];
        break;
      }
      r[static_cast<std::size_t>(i)] = -bound;
    }
    if (i == n) break;
  }
  return best;
}

std::vector<double> ones(const RetimingGraph& g) {
  return std::vector<double>(static_cast<std::size_t>(g.num_vertices()), 1.0);
}

// A vertex with two registered fanouts: per-edge cost 2, shared cost 1.
RetimingGraph fanout_pair() {
  RetimingGraph g;
  const auto t = tile::TileId::invalid();
  const int a = g.add_vertex(VertexKind::kFunctional, 1.0, t);
  const int b = g.add_vertex(VertexKind::kFunctional, 1.0, t);
  const int c = g.add_vertex(VertexKind::kFunctional, 1.0, t);
  g.add_edge(a, b, 1);
  g.add_edge(a, c, 1);
  g.add_edge(b, a, 1);
  g.add_edge(c, a, 1);
  return g;
}

TEST(Sharing, SharedAreaCountsMaxPerVertex) {
  const auto g = fanout_pair();
  std::vector<int> zero(static_cast<std::size_t>(g.num_vertices()), 0);
  // Per-edge: 4 registers.  Shared: a contributes max(1,1)=1; b,c 1 each.
  EXPECT_DOUBLE_EQ(weighted_ff_area(g, zero, ones(g)), 4.0);
  EXPECT_DOUBLE_EQ(shared_ff_area(g, zero, ones(g)), 3.0);
}

TEST(Sharing, OptimumNeverExceedsPerEdgeOptimum) {
  Rng rng(19);
  for (int trial = 0; trial < 15; ++trial) {
    auto g = test::random_retiming_graph(rng, 6, 8);
    const auto wd = WdMatrices::compute(g);
    const auto t = to_decips(wd.t_init_ps());
    const auto cs = build_constraints(g, wd, t);
    const auto r_edge = min_area_retiming(g, cs);
    const auto r_shared = min_area_retiming_shared(g, wd, t, ones(g));
    ASSERT_TRUE(r_edge.has_value());
    ASSERT_TRUE(r_shared.has_value());
    EXPECT_LE(shared_ff_area(g, *r_shared, ones(g)),
              shared_ff_area(g, *r_edge, ones(g)) + 1e-9);
  }
}

TEST(Sharing, MatchesBruteForceOnTinyGraphs) {
  Rng rng(23);
  int compared = 0;
  for (int trial = 0; trial < 25; ++trial) {
    auto g = test::random_retiming_graph(rng, 4, 4, /*max_w=*/1);
    const auto wd = WdMatrices::compute(g);
    const double t =
        (from_decips(wd.max_vertex_delay_decips()) + wd.t_init_ps()) / 2.0;
    const auto weights = ones(g);
    const auto r = min_area_retiming_shared(g, wd, to_decips(t), weights);
    const auto brute =
        brute_force_shared(g, from_decips(to_decips(t)), weights);
    if (!r.has_value()) {
      EXPECT_FALSE(brute.has_value());
      continue;
    }
    ASSERT_TRUE(brute.has_value());
    const double flow = shared_ff_area(g, *r, weights);
    EXPECT_NEAR(flow, *brute, 1e-6) << "trial " << trial;
    ++compared;
  }
  EXPECT_GT(compared, 8);
}

TEST(Sharing, RespectsClockPeriod) {
  const auto g = test::correlator_graph();
  const auto wd = WdMatrices::compute(g);
  const auto r = min_area_retiming_shared(g, wd, to_decips(7.0), ones(g));
  ASSERT_TRUE(r.has_value());
  EXPECT_LE(g.period_after_ps(*r), 7.0 + 1e-9);
}

TEST(Sharing, InfeasiblePeriodReturnsNullopt) {
  RetimingGraph g;
  const auto t = tile::TileId::invalid();
  const int pi = g.add_vertex(VertexKind::kFunctional, 0.0, t);
  const int a = g.add_vertex(VertexKind::kFunctional, 5.0, t);
  const int b = g.add_vertex(VertexKind::kFunctional, 5.0, t);
  const int po = g.add_vertex(VertexKind::kFunctional, 0.0, t);
  g.add_edge(pi, a, 0);
  g.add_edge(a, b, 0);
  g.add_edge(b, po, 0);
  g.mark_io(pi);
  g.mark_io(po);
  const auto wd = WdMatrices::compute(g);
  EXPECT_FALSE(
      min_area_retiming_shared(g, wd, to_decips(6.0), ones(g)).has_value());
}

TEST(Sharing, SharedBeatsPerEdgeOnFanoutHeavyGraph) {
  const auto g = fanout_pair();
  const auto wd = WdMatrices::compute(g);
  const auto t = to_decips(wd.t_init_ps());
  const auto cs = build_constraints(g, wd, t);
  const auto r_edge = min_area_retiming(g, cs);
  const auto r_shared = min_area_retiming_shared(g, wd, t, ones(g));
  ASSERT_TRUE(r_edge && r_shared);
  // Cycle invariants pin per-edge count at >= 4 but shared at 3.
  EXPECT_DOUBLE_EQ(shared_ff_area(g, *r_shared, ones(g)), 3.0);
}

}  // namespace
}  // namespace lac::retime
