// Tests for obs/memory: thread-local byte counters, span deltas, pause
// scopes, the detach/credit task protocol and the RSS sampler.  Every
// counting test is skipped on platforms without the glibc new/delete
// hooks; the RSS tests skip off Linux.
#include <cstddef>
#include <cstdint>

#include <gtest/gtest.h>

#include "obs/memory.h"
#include "obs/obs.h"

namespace lac::obs::memory {
namespace {

// Allocation the optimiser cannot elide: the pointer escapes through a
// global sink before being freed.  Uses the explicit sized delete so the
// freed bytes are counted (plain `delete[]` on a char array is unsized —
// see the UnsizedDelete test below).
void* g_sink = nullptr;

void churn(std::size_t bytes) {
  void* p = ::operator new(bytes);
  g_sink = p;
  ::operator delete(p, bytes);
}

class MemoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!tracking_available())
      GTEST_SKIP() << "no global allocation hooks on this platform";
    if (!tracking_enabled())
      GTEST_SKIP() << "memory tracking disabled via LAC_OBS_MEM";
  }
};

TEST_F(MemoryTest, CountersTrackRequestedSizes) {
  ScopedEnable on(true);
  const ThreadCounters before = thread_counters();
  churn(1 << 12);
  const ThreadCounters after = thread_counters();
  // operator new(4096) requests exactly 4096 bytes and the sized delete
  // frees the same amount — whatever the allocator actually handed out.
  EXPECT_EQ(after.alloc_bytes - before.alloc_bytes, 1 << 12);
  EXPECT_EQ(after.freed_bytes - before.freed_bytes, 1 << 12);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST_F(MemoryTest, UnsizedDeleteCountsZeroFreedBytes) {
  ScopedEnable on(true);
  const ThreadCounters before = thread_counters();
  void* p = ::operator new(1 << 12);
  g_sink = p;
  ::operator delete(p);  // unsized: the size cannot be known reliably
  const ThreadCounters after = thread_counters();
  EXPECT_EQ(after.alloc_bytes - before.alloc_bytes, 1 << 12);
  EXPECT_EQ(after.freed_bytes, before.freed_bytes);
}

TEST_F(MemoryTest, NothingIsCountedWhileObsDisabled) {
  ScopedEnable off(false);
  const ThreadCounters before = thread_counters();
  churn(1 << 12);
  const ThreadCounters after = thread_counters();
  EXPECT_EQ(after.alloc_bytes, before.alloc_bytes);
  EXPECT_EQ(after.freed_bytes, before.freed_bytes);
}

TEST_F(MemoryTest, PauseScopeSuspendsCountingAndNests) {
  ScopedEnable on(true);
  const ThreadCounters before = thread_counters();
  {
    PauseScope outer;
    churn(1 << 10);
    {
      PauseScope inner;
      churn(1 << 10);
    }
    churn(1 << 10);  // outer still pauses after inner unwinds
  }
  const ThreadCounters mid = thread_counters();
  EXPECT_EQ(mid.alloc_bytes, before.alloc_bytes);
  churn(1 << 10);  // fully unwound: counting resumes
  EXPECT_EQ(thread_counters().alloc_bytes - before.alloc_bytes, 1 << 10);
}

TEST_F(MemoryTest, SpanDeltaSeesOnlyItsOwnTraffic) {
  ScopedEnable on(true);
  churn(1 << 14);  // traffic before the span must not leak in
  const SpanMark mark = begin_span();
  churn(1 << 12);
  const SpanDelta delta = end_span(mark);
  EXPECT_EQ(delta.alloc_bytes, 1 << 12);
  EXPECT_EQ(delta.freed_bytes, 1 << 12);
  // The full array was live inside the span.
  EXPECT_EQ(delta.peak_live_bytes, 1 << 12);
}

TEST_F(MemoryTest, PeakIsRelativeToSpanEntryAndNeverNegative) {
  ScopedEnable on(true);
  // Leak across the mark, free inside: live dips below the entry level,
  // so the relative peak clamps at zero.
  void* held = ::operator new(1 << 12);
  g_sink = held;
  const SpanMark mark = begin_span();
  ::operator delete(held, static_cast<std::size_t>(1 << 12));
  const SpanDelta delta = end_span(mark);
  EXPECT_EQ(delta.alloc_bytes, 0);
  EXPECT_EQ(delta.freed_bytes, 1 << 12);
  EXPECT_EQ(delta.peak_live_bytes, 0);
}

TEST_F(MemoryTest, DetachCreditRoundTrip) {
  ScopedEnable on(true);
  const ThreadCounters outer_before = thread_counters();

  // A task runs on a detached context, accounting from zero...
  const Context saved = detach_context();
  EXPECT_EQ(thread_counters().alloc_bytes, 0);
  churn(1 << 12);
  const ThreadCounters task = thread_counters();
  EXPECT_EQ(task.alloc_bytes, 1 << 12);
  restore_context(saved);

  // ...and the calling thread sees nothing until the commit credits it.
  EXPECT_EQ(thread_counters().alloc_bytes, outer_before.alloc_bytes);
  credit(task.alloc_bytes, task.freed_bytes);
  const ThreadCounters outer_after = thread_counters();
  EXPECT_EQ(outer_after.alloc_bytes - outer_before.alloc_bytes, 1 << 12);
  EXPECT_EQ(outer_after.freed_bytes - outer_before.freed_bytes, 1 << 12);
}

TEST_F(MemoryTest, DetachZeroesPauseDepthAndRestoreBringsItBack) {
  ScopedEnable on(true);
  PauseScope pause;  // the engine may spawn tasks from a paused scope
  const Context saved = detach_context();
  const ThreadCounters before = thread_counters();
  churn(1 << 10);  // the task itself must be counted despite the pause
  EXPECT_EQ(thread_counters().alloc_bytes - before.alloc_bytes, 1 << 10);
  restore_context(saved);
  const ThreadCounters paused = thread_counters();
  churn(1 << 10);  // restored pause suppresses counting again
  EXPECT_EQ(thread_counters().alloc_bytes, paused.alloc_bytes);
}

TEST(MemoryProbeTest, AllocCallsProbeCountsUnconditionally) {
  if (!tracking_available())
    GTEST_SKIP() << "no global allocation hooks on this platform";
  // The probe ignores every gate: obs off, pause on — still counting.
  ScopedEnable off(false);
  PauseScope pause;
  const std::uint64_t before = thread_alloc_calls();
  churn(64);
  EXPECT_GT(thread_alloc_calls(), before);
}

TEST(MemoryRssTest, RssSamplersReportPlausibleValuesOnLinux) {
#if !defined(__linux__)
  GTEST_SKIP() << "/proc/self/status is Linux-only";
#else
  // Sample cur first: RSS may grow between the two reads, and the
  // high-water mark is monotonic, so peak-read-later >= cur-read-earlier
  // holds unconditionally (the reverse order races under memory load).
  const std::int64_t cur = current_rss_bytes();
  const std::int64_t peak = peak_rss_bytes();
  ASSERT_GT(peak, 0);
  ASSERT_GT(cur, 0);
  EXPECT_GE(peak, cur);
#endif
}

}  // namespace
}  // namespace lac::obs::memory
