// Property tests for the warm-started weighted min-area solver session
// (retime/weighted_min_area_solver.h): on random retiming graphs with
// randomized per-round weight sequences, every round of a session must
// reproduce — bit for bit — what a fresh cold solve of the same weighted
// instance returns.  This is the equivalence contract that lets
// LacOptions::incremental default to on.
//
// The second half stresses the MinCostFlow warm-start repair paths
// directly with mixed-edit adversarial sessions — supply edit + cost edit
// + repeated no-op resolve in one session, and a cost edit that forces
// the documented cold fallback (negative cycle through the warm residual
// network on an inf-cap arc) followed by a further warm round.
#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"
#include "graph/min_cost_flow.h"
#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"
#include "retime/weighted_min_area_solver.h"
#include "tests/test_util.h"

namespace lac::retime {
namespace {

std::vector<double> random_weights(Rng& rng, int n) {
  std::vector<double> w(static_cast<std::size_t>(n));
  for (double& x : w)
    x = 0.05 + 0.1 * static_cast<double>(rng.uniform(2000));  // [0.05, 200)
  return w;
}

TEST(IncrementalSolver, SessionMatchesColdSolveEveryRound) {
  Rng rng(4242);
  int warm_rounds_seen = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 8 + static_cast<int>(rng.uniform(20));
    const auto g = test::random_retiming_graph(rng, n, 2 * n, 2);
    const auto wd = WdMatrices::compute(g);
    // A mid-range feasible period keeps the constraint system non-trivial.
    const auto t =
        (wd.max_vertex_delay_decips() + to_decips(wd.t_init_ps())) / 2;
    const auto cs = build_constraints(g, wd, t);

    WeightedMinAreaSolver session(g, cs);
    for (int round = 0; round < 6; ++round) {
      const auto weights = random_weights(rng, g.num_vertices());

      MinAreaStats warm_stats;
      const auto warm = session.solve(weights, &warm_stats);
      MinAreaStats cold_stats;
      const auto cold = weighted_min_area_retiming(g, cs, weights, &cold_stats);

      ASSERT_EQ(warm.has_value(), cold.has_value());
      if (!warm) continue;
      EXPECT_EQ(*warm, *cold) << "trial " << trial << " round " << round;
      EXPECT_EQ(warm_stats.flow_cost_exact, cold_stats.flow_cost_exact)
          << "trial " << trial << " round " << round;
      EXPECT_DOUBLE_EQ(warm_stats.objective, cold_stats.objective);
      EXPECT_FALSE(cold_stats.warm);
      if (round > 0) {
        EXPECT_TRUE(warm_stats.warm);
        ++warm_rounds_seen;
      }
    }
  }
  // The property above is vacuous if the warm path never engaged.
  EXPECT_GT(warm_rounds_seen, 0);
}

// Repeating the exact same weights must be a no-op round: the warm solve
// re-ships nothing and returns the identical retiming.
TEST(IncrementalSolver, RepeatedWeightsAreStable) {
  Rng rng(99);
  const auto g = test::random_retiming_graph(rng, 16, 32, 2);
  const auto wd = WdMatrices::compute(g);
  const auto t =
      (wd.max_vertex_delay_decips() + to_decips(wd.t_init_ps())) / 2;
  const auto cs = build_constraints(g, wd, t);

  WeightedMinAreaSolver session(g, cs);
  const auto weights = random_weights(rng, g.num_vertices());
  const auto first = session.solve(weights);
  ASSERT_TRUE(first.has_value());
  for (int round = 0; round < 3; ++round) {
    MinAreaStats stats;
    const auto again = session.solve(weights, &stats);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *first);
    EXPECT_TRUE(stats.warm);
    EXPECT_EQ(stats.augmentations, 0) << "identical supplies re-shipped";
  }
}

// Tiny graphs against the brute-force reference, solved through a session
// with several weight vectors: the optimum objective must match brute
// force every round (not just equal the cold solver's answer).
TEST(IncrementalSolver, SessionMatchesBruteForceOnTinyGraphs) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const auto g = test::random_retiming_graph(rng, 5, 6, 2);
    const auto wd = WdMatrices::compute(g);
    const auto t =
        (wd.max_vertex_delay_decips() + to_decips(wd.t_init_ps())) / 2;
    const auto cs = build_constraints(g, wd, t);

    WeightedMinAreaSolver session(g, cs);
    for (int round = 0; round < 3; ++round) {
      std::vector<double> weights(
          static_cast<std::size_t>(g.num_vertices()));
      for (double& x : weights)
        x = 1.0 + static_cast<double>(rng.uniform(5));
      const auto r = session.solve(weights);
      const auto ref = test::brute_force_min_area(
          g, from_decips(t), weights, /*bound=*/3);
      ASSERT_EQ(r.has_value(), ref.has_value());
      if (!r) continue;
      EXPECT_NEAR(weighted_ff_area(g, *r, weights), *ref, 1e-9)
          << "trial " << trial << " round " << round;
    }
  }
}

// ------------------------------------------------- MinCostFlow repair paths

// A cost update that leaves an infinite-capacity arc with negative reduced
// cost *and* closes a negative cycle through the warm residual network
// (via the backward arcs of shipped flow) must fall back to a cold solve —
// and the session must stay usable: the very next resolve() after a
// further supply edit runs warm again.  This is the repair-path sequence
// (warm_fallbacks=1, then a warm round) that the random fuzz rarely hits.
TEST(IncrementalMcf, ColdFallbackThenFurtherWarmRound) {
  using graph::MinCostFlow;
  MinCostFlow mcf(2);
  const int finite = mcf.add_arc(0, 1, 3, 0);     // carries the flow
  const int inf = mcf.add_arc(0, 1, MinCostFlow::kInfCap, 5);  // idle
  mcf.set_supply(0, 3);
  mcf.set_supply(1, -3);
  const auto first = mcf.solve();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->flow[static_cast<std::size_t>(finite)], 3);
  EXPECT_EQ(first->total_cost_exact, 0);

  // Re-cost the idle inf-cap arc negative: its reduced cost turns negative
  // (cannot be saturated), and together with the backward arc of the flow
  // on `finite` it forms the residual cycle 0→1→0 of cost −2.  The warm
  // potential refit must detect it and fall back to a cold solve, which
  // routes everything over the now-cheap arc.
  mcf.update_arc_cost(inf, -2);
  const auto repaired = mcf.resolve();
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(mcf.stats().warm_fallbacks, 1);
  EXPECT_EQ(repaired->total_cost_exact, -6);
  EXPECT_EQ(repaired->flow[static_cast<std::size_t>(inf)], 3);

  // The fallback left a valid optimum behind: a further supply edit must
  // re-solve warm (no fallback), shipping only the two-unit delta back
  // through the residual network.
  mcf.set_supply(0, 1);
  mcf.set_supply(1, -1);
  const auto warm = mcf.resolve();
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(mcf.stats().warm);
  EXPECT_EQ(mcf.stats().warm_fallbacks, 0);
  EXPECT_GT(mcf.stats().augmentations, 0);
  EXPECT_EQ(warm->total_cost_exact, -2);
  EXPECT_EQ(warm->flow[static_cast<std::size_t>(inf)], 1);
}

// Mixed-edit adversarial sessions: random interleavings of supply edits,
// cost edits and repeated no-op resolves in one session, each round
// checked against a cold solve of an identically edited fresh instance.
TEST(IncrementalMcf, MixedEditAdversarialSessionsMatchColdSolve) {
  using graph::MinCostFlow;
  Rng rng(271828);
  struct Arc {
    int u, v;
    std::int64_t cap, cost;
  };
  int noop_rounds = 0, repaired = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 3 + static_cast<int>(rng.uniform(6));
    std::vector<Arc> arcs;
    for (int k = 0; k < 3 * n; ++k) {
      const int u = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      const int v = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      if (u == v) continue;
      arcs.push_back({u, v, 1 + static_cast<std::int64_t>(rng.uniform(9)),
                      rng.uniform_int(0, 9)});
    }
    for (int v = 1; v < n; ++v) {
      arcs.push_back({v, 0, MinCostFlow::kInfCap, 50});
      arcs.push_back({0, v, MinCostFlow::kInfCap, 50});
    }
    std::vector<std::int64_t> supply(static_cast<std::size_t>(n), 0);
    const auto randomize_supplies = [&] {
      std::int64_t total = 0;
      for (int v = 1; v < n; ++v) {
        supply[static_cast<std::size_t>(v)] = rng.uniform_int(-5, 5);
        total += supply[static_cast<std::size_t>(v)];
      }
      supply[0] = -total;
    };
    const auto build = [&] {
      MinCostFlow m(n);
      for (const Arc& a : arcs) m.add_arc(a.u, a.v, a.cap, a.cost);
      for (int v = 0; v < n; ++v)
        m.set_supply(v, supply[static_cast<std::size_t>(v)]);
      return m;
    };
    randomize_supplies();
    MinCostFlow warm = build();
    ASSERT_TRUE(warm.solve().has_value());

    for (int round = 0; round < 6; ++round) {
      const auto kind = rng.uniform(4);
      if (kind == 0) {  // supply edit
        randomize_supplies();
        for (int v = 0; v < n; ++v)
          warm.set_supply(v, supply[static_cast<std::size_t>(v)]);
      } else if (kind == 1) {  // cost edit on a few arcs
        for (int k = 0; k < 2; ++k) {
          const auto i = static_cast<std::size_t>(
              rng.uniform(static_cast<std::uint64_t>(arcs.size())));
          if (arcs[i].cap == MinCostFlow::kInfCap) continue;
          arcs[i].cost = rng.uniform_int(0, 9);
          warm.update_arc_cost(static_cast<int>(i), arcs[i].cost);
        }
      } else {  // no-op round (possibly repeated back to back)
        ++noop_rounds;
      }
      const auto ws = warm.resolve();
      ASSERT_TRUE(ws.has_value());
      EXPECT_TRUE(warm.stats().warm);
      repaired += warm.stats().repaired_arcs;
      if (kind >= 2) {
        EXPECT_EQ(warm.stats().augmentations, 0)
            << "a no-op resolve must ship nothing";
        EXPECT_EQ(warm.stats().phases, 0);
      }

      MinCostFlow cold = build();
      const auto cs = cold.solve();
      ASSERT_TRUE(cs.has_value());
      EXPECT_EQ(ws->total_cost_exact, cs->total_cost_exact)
          << "trial " << trial << " round " << round;
    }
  }
  EXPECT_GT(noop_rounds, 10);
  EXPECT_GT(repaired, 0) << "cost edits never hit cancel-and-reroute";
}

}  // namespace
}  // namespace lac::retime
