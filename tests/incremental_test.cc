// Property tests for the warm-started weighted min-area solver session
// (retime/weighted_min_area_solver.h): on random retiming graphs with
// randomized per-round weight sequences, every round of a session must
// reproduce — bit for bit — what a fresh cold solve of the same weighted
// instance returns.  This is the equivalence contract that lets
// LacOptions::incremental default to on.
#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"
#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"
#include "retime/weighted_min_area_solver.h"
#include "tests/test_util.h"

namespace lac::retime {
namespace {

std::vector<double> random_weights(Rng& rng, int n) {
  std::vector<double> w(static_cast<std::size_t>(n));
  for (double& x : w)
    x = 0.05 + 0.1 * static_cast<double>(rng.uniform(2000));  // [0.05, 200)
  return w;
}

TEST(IncrementalSolver, SessionMatchesColdSolveEveryRound) {
  Rng rng(4242);
  int warm_rounds_seen = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 8 + static_cast<int>(rng.uniform(20));
    const auto g = test::random_retiming_graph(rng, n, 2 * n, 2);
    const auto wd = WdMatrices::compute(g);
    // A mid-range feasible period keeps the constraint system non-trivial.
    const auto t =
        (wd.max_vertex_delay_decips() + to_decips(wd.t_init_ps())) / 2;
    const auto cs = build_constraints(g, wd, t);

    WeightedMinAreaSolver session(g, cs);
    for (int round = 0; round < 6; ++round) {
      const auto weights = random_weights(rng, g.num_vertices());

      MinAreaStats warm_stats;
      const auto warm = session.solve(weights, &warm_stats);
      MinAreaStats cold_stats;
      const auto cold = weighted_min_area_retiming(g, cs, weights, &cold_stats);

      ASSERT_EQ(warm.has_value(), cold.has_value());
      if (!warm) continue;
      EXPECT_EQ(*warm, *cold) << "trial " << trial << " round " << round;
      EXPECT_EQ(warm_stats.flow_cost_exact, cold_stats.flow_cost_exact)
          << "trial " << trial << " round " << round;
      EXPECT_DOUBLE_EQ(warm_stats.objective, cold_stats.objective);
      EXPECT_FALSE(cold_stats.warm);
      if (round > 0) {
        EXPECT_TRUE(warm_stats.warm);
        ++warm_rounds_seen;
      }
    }
  }
  // The property above is vacuous if the warm path never engaged.
  EXPECT_GT(warm_rounds_seen, 0);
}

// Repeating the exact same weights must be a no-op round: the warm solve
// re-ships nothing and returns the identical retiming.
TEST(IncrementalSolver, RepeatedWeightsAreStable) {
  Rng rng(99);
  const auto g = test::random_retiming_graph(rng, 16, 32, 2);
  const auto wd = WdMatrices::compute(g);
  const auto t =
      (wd.max_vertex_delay_decips() + to_decips(wd.t_init_ps())) / 2;
  const auto cs = build_constraints(g, wd, t);

  WeightedMinAreaSolver session(g, cs);
  const auto weights = random_weights(rng, g.num_vertices());
  const auto first = session.solve(weights);
  ASSERT_TRUE(first.has_value());
  for (int round = 0; round < 3; ++round) {
    MinAreaStats stats;
    const auto again = session.solve(weights, &stats);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *first);
    EXPECT_TRUE(stats.warm);
    EXPECT_EQ(stats.augmentations, 0) << "identical supplies re-shipped";
  }
}

// Tiny graphs against the brute-force reference, solved through a session
// with several weight vectors: the optimum objective must match brute
// force every round (not just equal the cold solver's answer).
TEST(IncrementalSolver, SessionMatchesBruteForceOnTinyGraphs) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const auto g = test::random_retiming_graph(rng, 5, 6, 2);
    const auto wd = WdMatrices::compute(g);
    const auto t =
        (wd.max_vertex_delay_decips() + to_decips(wd.t_init_ps())) / 2;
    const auto cs = build_constraints(g, wd, t);

    WeightedMinAreaSolver session(g, cs);
    for (int round = 0; round < 3; ++round) {
      std::vector<double> weights(
          static_cast<std::size_t>(g.num_vertices()));
      for (double& x : weights)
        x = 1.0 + static_cast<double>(rng.uniform(5));
      const auto r = session.solve(weights);
      const auto ref = test::brute_force_min_area(
          g, from_decips(t), weights, /*bound=*/3);
      ASSERT_EQ(r.has_value(), ref.has_value());
      if (!r) continue;
      EXPECT_NEAR(weighted_ff_area(g, *r, weights), *ref, 1e-9)
          << "trial " << trial << " round " << round;
    }
  }
}

}  // namespace
}  // namespace lac::retime
