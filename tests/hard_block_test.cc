// Hard-block behaviour (paper §2, §4): hard blocks offer only pre-located
// repeater/flip-flop sites, so LAC-retiming must steer registers away from
// them and into channels or soft blocks.
#include <gtest/gtest.h>

#include "floorplan/floorplanner.h"
#include "retime/lac_retimer.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"
#include "tile/tile_grid.h"

namespace lac::retime {
namespace {

// Floorplan: one hard block on the left, channel on the right.
struct HardScenario {
  floorplan::Floorplan fp;
  tile::TileGrid grid;
  RetimingGraph g;
  tile::TileId hard_tile, channel_tile;
};

HardScenario make_scenario(int sites_per_cell) {
  floorplan::Floorplan fp;
  fp.chip = Rect{{0, 0}, {400, 200}};
  floorplan::BlockSpec hard;
  hard.name = "macro";
  hard.hard = true;
  hard.area = 200.0 * 200.0;
  hard.fixed_w = 200;
  hard.fixed_h = 200;
  fp.blocks = {hard};
  fp.placement = {Rect{{0, 0}, {200, 200}}};

  tile::TileGridOptions opt;
  opt.tile_size = 200;
  opt.hard_sites_per_cell = sites_per_cell;
  opt.site_area = 100.0;
  tile::TileGrid grid(fp, {0.0}, opt);

  HardScenario s{std::move(fp), std::move(grid), RetimingGraph{},
                 tile::TileId::invalid(), tile::TileId::invalid()};
  s.hard_tile = s.grid.tile_of_cell(0, 0);
  s.channel_tile = s.grid.tile_of_cell(1, 0);

  // Ring through the macro: macro gate -> wire unit (channel) -> external
  // gate -> back, with 3 registers initially at the macro's output.
  const int m = s.g.add_vertex(VertexKind::kFunctional, 1.0, s.hard_tile);
  const int u = s.g.add_vertex(VertexKind::kInterconnect, 1.0, s.channel_tile);
  const int x = s.g.add_vertex(VertexKind::kFunctional, 1.0, s.channel_tile);
  s.g.add_edge(m, u, 3);
  s.g.add_edge(u, x, 0);
  s.g.add_edge(x, m, 0);
  return s;
}

TEST(HardBlocks, TileKindsAndCapacities) {
  const auto s = make_scenario(2);
  EXPECT_EQ(s.grid.kind(s.hard_tile), tile::TileKind::kHardBlock);
  EXPECT_EQ(s.grid.kind(s.channel_tile), tile::TileKind::kChannel);
  EXPECT_DOUBLE_EQ(s.grid.capacity(s.hard_tile), 200.0);  // 2 sites x 100
  EXPECT_GT(s.grid.capacity(s.channel_tile), 10000.0);
}

TEST(HardBlocks, MinAreaOverflowsTheSites) {
  auto s = make_scenario(1);  // one 100 um^2 site
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  const auto r = min_area_retiming(s.g, cs);
  ASSERT_TRUE(r.has_value());
  // With the epsilon tie-break, plain min-area keeps the 3 registers at the
  // macro's output — 3 x 150 um^2 against one 100 um^2 site.
  const auto rep = place_flipflops(s.g, s.grid, *r, 150.0);
  EXPECT_GT(rep.n_foa, 0);
  EXPECT_GT(rep.ac[s.hard_tile.index()], s.grid.capacity(s.hard_tile));
}

TEST(HardBlocks, LacEvacuatesIntoTheChannel) {
  auto s = make_scenario(1);
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  LacOptions opt;
  opt.ff_area = 150.0;
  const auto lac = lac_retiming(s.g, s.grid, cs, opt);
  EXPECT_TRUE(lac.met_all_constraints) << "n_foa=" << lac.report.n_foa;
  EXPECT_LE(lac.report.ac[s.hard_tile.index()],
            s.grid.capacity(s.hard_tile) + 1e-9);
}

TEST(HardBlocks, EnoughSitesMeansNoPressure) {
  auto s = make_scenario(8);  // 800 um^2 of sites >= 3 x 150
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(10.0));
  LacOptions opt;
  opt.ff_area = 150.0;
  const auto lac = lac_retiming(s.g, s.grid, cs, opt);
  EXPECT_TRUE(lac.met_all_constraints);
  EXPECT_EQ(lac.n_wr, 1);  // first solve already fits
}

TEST(HardBlocks, TightClockCanForceSiteViolations) {
  // At T = 1.5 every vertex pair needs a register between them: one
  // register is pinned on the macro's output edge regardless of weights,
  // so with zero sites LAC must report the violation honestly.
  auto s = make_scenario(1);
  s.grid.consume(s.hard_tile, s.grid.capacity(s.hard_tile));  // no sites left
  const auto wd = WdMatrices::compute(s.g);
  const auto cs = build_constraints(s.g, wd, to_decips(1.5));
  LacOptions opt;
  opt.ff_area = 150.0;
  opt.n_max = 3;
  const auto lac = lac_retiming(s.g, s.grid, cs, opt);
  EXPECT_FALSE(lac.met_all_constraints);
  EXPECT_GT(lac.report.n_foa, 0);
}

}  // namespace
}  // namespace lac::retime
