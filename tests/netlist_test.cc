#include <gtest/gtest.h>

#include "base/check.h"
#include "netlist/bench_io.h"
#include "netlist/cell.h"
#include "netlist/netlist.h"

namespace lac::netlist {
namespace {

TEST(Cell, TypeNamesRoundTrip) {
  for (const CellType t :
       {CellType::kInput, CellType::kOutput, CellType::kDff, CellType::kBuf,
        CellType::kNot, CellType::kAnd, CellType::kNand, CellType::kOr,
        CellType::kNor, CellType::kXor, CellType::kXnor}) {
    const auto parsed = parse_cell_type(cell_type_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
}

TEST(Cell, ParseAliases) {
  EXPECT_EQ(parse_cell_type("BUFF"), CellType::kBuf);
  EXPECT_EQ(parse_cell_type("inv"), CellType::kNot);
  EXPECT_EQ(parse_cell_type("nand"), CellType::kNand);
  EXPECT_FALSE(parse_cell_type("FOO").has_value());
}

TEST(Cell, Arity) {
  EXPECT_EQ(cell_arity(CellType::kInput).max, 0);
  EXPECT_EQ(cell_arity(CellType::kDff).min, 1);
  EXPECT_EQ(cell_arity(CellType::kDff).max, 1);
  EXPECT_LT(cell_arity(CellType::kNand).max, 0);  // unbounded
}

Netlist tiny() {
  Netlist nl("tiny");
  const auto a = nl.add_cell("a", CellType::kInput);
  const auto b = nl.add_cell("b", CellType::kInput);
  const auto g = nl.add_cell("g", CellType::kNand);
  const auto d = nl.add_cell("d", CellType::kDff);
  const auto o = nl.add_cell("o", CellType::kOutput);
  nl.connect(g, a);
  nl.connect(g, b);
  nl.connect(d, g);
  nl.connect(o, d);
  return nl;
}

TEST(Netlist, BasicTopology) {
  const auto nl = tiny();
  EXPECT_EQ(nl.num_cells(), 5);
  EXPECT_EQ(nl.num_gates(), 1);
  EXPECT_EQ(nl.count(CellType::kDff), 1);
  const auto g = *nl.find("g");
  EXPECT_EQ(nl.fanins(g).size(), 2u);
  EXPECT_EQ(nl.fanouts(g).size(), 1u);
  EXPECT_FALSE(nl.validate().has_value());
}

TEST(Netlist, DuplicateNameRejected) {
  Netlist nl;
  nl.add_cell("x", CellType::kInput);
  EXPECT_THROW(nl.add_cell("x", CellType::kNand), CheckError);
}

TEST(Netlist, FindMissing) {
  const auto nl = tiny();
  EXPECT_FALSE(nl.find("nope").has_value());
}

TEST(Netlist, ValidateCatchesBadArity) {
  Netlist nl;
  const auto a = nl.add_cell("a", CellType::kInput);
  const auto d = nl.add_cell("d", CellType::kDff);
  nl.connect(d, a);
  nl.connect(d, a);  // DFF with two fanins
  const auto err = nl.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("d"), std::string::npos);
}

TEST(Netlist, ValidateCatchesCombinationalCycle) {
  Netlist nl;
  const auto g1 = nl.add_cell("g1", CellType::kNot);
  const auto g2 = nl.add_cell("g2", CellType::kNot);
  nl.connect(g1, g2);
  nl.connect(g2, g1);
  const auto err = nl.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("cycle"), std::string::npos);
}

TEST(Netlist, CycleThroughDffIsLegal) {
  Netlist nl;
  const auto g = nl.add_cell("g", CellType::kNot);
  const auto d = nl.add_cell("d", CellType::kDff);
  nl.connect(d, g);
  nl.connect(g, d);
  EXPECT_FALSE(nl.validate().has_value());
}

// ------------------------------------------------------------ bench parser

constexpr const char* kSample = R"(
# a comment
INPUT(i0)
INPUT(i1)
OUTPUT(n2)
n1 = NAND(i0, i1)
n2 = DFF(n1)
)";

TEST(BenchIo, ParsesSample) {
  const auto nl = parse_bench(kSample, "sample");
  EXPECT_EQ(nl.count(CellType::kInput), 2);
  EXPECT_EQ(nl.count(CellType::kOutput), 1);
  EXPECT_EQ(nl.count(CellType::kDff), 1);
  EXPECT_EQ(nl.num_gates(), 1);
  const auto po = nl.cells_of_type(CellType::kOutput).front();
  EXPECT_EQ(nl.cell_name(nl.fanins(po)[0]), "n2");
}

TEST(BenchIo, RoundTripIsStructurallyIdentical) {
  const auto nl = parse_bench(kSample, "sample");
  const auto text = write_bench(nl);
  const auto nl2 = parse_bench(text, "sample2");
  EXPECT_EQ(nl.num_cells(), nl2.num_cells());
  for (const auto c : nl.cells()) {
    const auto c2 = nl2.find(nl.cell_name(c));
    ASSERT_TRUE(c2.has_value()) << nl.cell_name(c);
    EXPECT_EQ(nl.type(c), nl2.type(*c2));
    ASSERT_EQ(nl.fanins(c).size(), nl2.fanins(*c2).size());
    for (std::size_t i = 0; i < nl.fanins(c).size(); ++i)
      EXPECT_EQ(nl.cell_name(nl.fanins(c)[i]),
                nl2.cell_name(nl2.fanins(*c2)[i]));
  }
}

TEST(NetlistEco, RewireFaninSwapsOneEntryAndKeepsFanoutsConsistent) {
  Netlist nl("eco");
  const CellId a = nl.add_cell("a", CellType::kInput);
  const CellId b = nl.add_cell("b", CellType::kNot);
  const CellId g = nl.add_cell("g", CellType::kAnd);
  nl.connect(b, a);
  nl.connect(g, a);
  nl.connect(g, b);

  nl.rewire_fanin(g, a, b);  // g(a, b) -> g(b, b)
  ASSERT_EQ(nl.fanins(g).size(), 2u);
  EXPECT_EQ(nl.fanins(g)[0], b);
  EXPECT_EQ(nl.fanins(g)[1], b);
  // a's only remaining fanout is b.
  ASSERT_EQ(nl.fanouts(a).size(), 1u);
  EXPECT_EQ(nl.fanouts(a)[0], b);
  EXPECT_EQ(nl.fanouts(b).size(), 2u);
  EXPECT_FALSE(nl.validate().has_value());
}

TEST(NetlistEco, RemoveCellBypassesBufferAndKeepsIdsStable) {
  Netlist nl("eco");
  const CellId a = nl.add_cell("a", CellType::kInput);
  const CellId buf = nl.add_cell("buf", CellType::kBuf);
  const CellId g = nl.add_cell("g", CellType::kNot);
  nl.connect(buf, a);
  nl.connect(g, buf);

  nl.remove_cell(buf);  // single fanin: g is rewired straight to a
  EXPECT_TRUE(nl.is_removed(buf));
  ASSERT_EQ(nl.fanins(g).size(), 1u);
  EXPECT_EQ(nl.fanins(g)[0], a);
  // Ids are stable (tombstone, not compaction): num_cells still counts the
  // slot, cells() skips it, and the name is free for reuse.
  EXPECT_EQ(nl.num_cells(), 3);
  int live = 0;
  for (const auto c : nl.cells()) {
    EXPECT_NE(c, buf);
    ++live;
  }
  EXPECT_EQ(live, 2);
  EXPECT_FALSE(nl.find("buf").has_value());
  const CellId buf2 = nl.add_cell("buf", CellType::kBuf);
  EXPECT_NE(buf2, buf);
  nl.connect(buf2, a);  // arity: a dangling buffer would fail validate()
  EXPECT_FALSE(nl.validate().has_value());
}

TEST(NetlistEco, RemoveSinkWithNoFanouts) {
  Netlist nl("eco");
  const CellId a = nl.add_cell("a", CellType::kInput);
  const CellId g = nl.add_cell("g", CellType::kNot);
  nl.connect(g, a);

  nl.remove_cell(g);
  EXPECT_TRUE(nl.is_removed(g));
  EXPECT_TRUE(nl.fanouts(a).empty());
  EXPECT_FALSE(nl.validate().has_value());
}

TEST(NetlistEco, RemoveMultiFaninCellWithFanoutsRejected) {
  Netlist nl("eco");
  const CellId a = nl.add_cell("a", CellType::kInput);
  const CellId b = nl.add_cell("b", CellType::kInput);
  const CellId g = nl.add_cell("g", CellType::kAnd);
  const CellId h = nl.add_cell("h", CellType::kNot);
  nl.connect(g, a);
  nl.connect(g, b);
  nl.connect(h, g);
  // Two fanins and a live fanout: no unambiguous bypass exists.
  EXPECT_THROW(nl.remove_cell(g), CheckError);
}

TEST(BenchIo, UndefinedSignalRejected) {
  EXPECT_THROW(parse_bench("a = NOT(ghost)\n"), CheckError);
}

TEST(BenchIo, RedefinitionRejected) {
  EXPECT_THROW(parse_bench("INPUT(a)\na = NOT(a)\n"), CheckError);
}

TEST(BenchIo, UnknownTypeRejected) {
  EXPECT_THROW(parse_bench("INPUT(a)\nb = FROB(a)\n"), CheckError);
}

TEST(BenchIo, MalformedLineRejected) {
  EXPECT_THROW(parse_bench("WHAT(a)\n"), CheckError);
  EXPECT_THROW(parse_bench("x = NOT a\n"), CheckError);
}

TEST(BenchIo, OutputOfUndefinedSignalRejected) {
  EXPECT_THROW(parse_bench("OUTPUT(ghost)\n"), CheckError);
}

TEST(BenchIo, CaseInsensitiveKeywordsAndWhitespace) {
  const auto nl = parse_bench("input( x )\n y = not(x)\noutput(y)\n");
  EXPECT_EQ(nl.count(CellType::kInput), 1);
  EXPECT_EQ(nl.num_gates(), 1);
}

TEST(BenchIo, CombinationalCycleInFileRejected) {
  EXPECT_THROW(parse_bench("a = NOT(b)\nb = NOT(a)\n"), CheckError);
}

}  // namespace
}  // namespace lac::netlist
