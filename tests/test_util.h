// Shared helpers for the test suite: small-graph builders, random retiming
// graphs, and brute-force reference implementations used as oracles for the
// flow-based solvers.
#pragma once

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "base/rng.h"
#include "retime/constraints.h"
#include "retime/retiming_graph.h"
#include "retime/wd_matrices.h"

namespace lac::test {

// The classic Leiserson–Saxe correlator example: a cycle of vertices where
// retiming can shorten the critical path.  Delays chosen so that
// T_init > T_min strictly.
//
//   h(host) v1(d=3) v2(d=3) v3(d=3) v4(d=7)
//   edges: v1->v2 w1, v2->v3 w1, v3->v4 w1, v4->v1 w0
inline retime::RetimingGraph correlator_graph() {
  retime::RetimingGraph g;
  const auto t = tile::TileId::invalid();
  const int v1 = g.add_vertex(retime::VertexKind::kFunctional, 3.0, t);
  const int v2 = g.add_vertex(retime::VertexKind::kFunctional, 3.0, t);
  const int v3 = g.add_vertex(retime::VertexKind::kFunctional, 3.0, t);
  const int v4 = g.add_vertex(retime::VertexKind::kFunctional, 7.0, t);
  g.add_edge(v1, v2, 1);
  g.add_edge(v2, v3, 1);
  g.add_edge(v3, v4, 1);
  g.add_edge(v4, v1, 0);
  return g;
}

// Random strongly-sequential graph: every cycle carries a register (we build
// a random DAG and add back-edges with weight >= 1).
inline retime::RetimingGraph random_retiming_graph(Rng& rng, int n_vertices,
                                                   int n_extra_edges,
                                                   int max_w = 2) {
  retime::RetimingGraph g;
  const auto t = tile::TileId::invalid();
  std::vector<int> vs;
  for (int i = 0; i < n_vertices; ++i)
    vs.push_back(g.add_vertex(retime::VertexKind::kFunctional,
                              1.0 + static_cast<double>(rng.uniform(9)), t));
  // Spanning chain keeps everything connected.
  for (int i = 0; i + 1 < n_vertices; ++i)
    g.add_edge(vs[static_cast<std::size_t>(i)], vs[static_cast<std::size_t>(i + 1)],
               static_cast<int>(rng.uniform(static_cast<std::uint64_t>(max_w + 1))));
  for (int k = 0; k < n_extra_edges; ++k) {
    int a = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n_vertices)));
    int b = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n_vertices)));
    if (a == b) continue;
    int w = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(max_w + 1)));
    if (a > b && w == 0) w = 1;  // back-edges must carry a register
    g.add_edge(vs[static_cast<std::size_t>(a)], vs[static_cast<std::size_t>(b)], w);
  }
  return g;
}

// Brute-force reference: enumerate all retimings with labels in [-bound,
// bound] (host fixed at 0) and return the minimum weighted FF area subject
// to legality and the clock period.  Only usable for tiny graphs.
inline std::optional<double> brute_force_min_area(
    const retime::RetimingGraph& g, double period_ps,
    const std::vector<double>& area_weight, int bound = 2,
    std::vector<int>* best_r = nullptr) {
  const int n = g.num_vertices();
  std::vector<int> r(static_cast<std::size_t>(n), -bound);
  r[static_cast<std::size_t>(g.host())] = 0;
  std::optional<double> best;
  while (true) {
    bool legal = g.is_legal_retiming(r);
    if (legal) {
      const double p = g.period_after_ps(r);
      if (p <= period_ps + 1e-9) {
        double cost = 0.0;
        for (int e = 0; e < g.num_edges(); ++e)
          cost += static_cast<double>(g.retimed_weight(e, r)) *
                  area_weight[static_cast<std::size_t>(g.edge(e).tail)];
        if (!best || cost < *best - 1e-9) {
          best = cost;
          if (best_r != nullptr) *best_r = r;
        }
      }
    }
    // Odometer increment, skipping the host position.
    int i = 0;
    for (; i < n; ++i) {
      if (i == g.host()) continue;
      if (r[static_cast<std::size_t>(i)] < bound) {
        ++r[static_cast<std::size_t>(i)];
        break;
      }
      r[static_cast<std::size_t>(i)] = -bound;
    }
    if (i == n) break;
  }
  return best;
}

// Brute-force minimum period over retimings with bounded labels.
inline double brute_force_min_period(const retime::RetimingGraph& g,
                                     int bound = 3) {
  const int n = g.num_vertices();
  std::vector<int> r(static_cast<std::size_t>(n), -bound);
  r[static_cast<std::size_t>(g.host())] = 0;
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    if (g.is_legal_retiming(r)) best = std::min(best, g.period_after_ps(r));
    int i = 0;
    for (; i < n; ++i) {
      if (i == g.host()) continue;
      if (r[static_cast<std::size_t>(i)] < bound) {
        ++r[static_cast<std::size_t>(i)];
        break;
      }
      r[static_cast<std::size_t>(i)] = -bound;
    }
    if (i == n) break;
  }
  return best;
}

}  // namespace lac::test
