#include <gtest/gtest.h>

#include "base/check.h"
#include "retime/retiming_graph.h"
#include "tests/test_util.h"

namespace lac::retime {
namespace {

TEST(RetimingGraph, HostAlwaysExists) {
  RetimingGraph g;
  EXPECT_EQ(g.num_vertices(), 1);
  EXPECT_EQ(g.kind(g.host()), VertexKind::kHost);
  EXPECT_EQ(g.delay_decips(g.host()), 0);
}

TEST(RetimingGraph, HostCannotHaveEdges) {
  RetimingGraph g;
  const int v = g.add_vertex(VertexKind::kFunctional, 1.0,
                             tile::TileId::invalid());
  EXPECT_THROW(g.add_edge(g.host(), v, 0), CheckError);
  EXPECT_THROW(g.add_edge(v, g.host(), 0), CheckError);
}

TEST(RetimingGraph, DeciPsQuantisation) {
  EXPECT_EQ(to_decips(1.0), 10);
  EXPECT_EQ(to_decips(0.04), 0);
  EXPECT_EQ(to_decips(0.05), 1);  // rounds half up
  EXPECT_DOUBLE_EQ(from_decips(15), 1.5);
}

TEST(RetimingGraph, RetimedWeightTelescopes) {
  auto g = test::correlator_graph();
  std::vector<int> r(static_cast<std::size_t>(g.num_vertices()), 0);
  r[1] = 1;  // v1
  // Edge v4->v1 gains 1, edge v1->v2 loses 1.
  for (int e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    EXPECT_EQ(g.retimed_weight(e, r),
              ed.w + r[static_cast<std::size_t>(ed.head)] -
                  r[static_cast<std::size_t>(ed.tail)]);
  }
}

TEST(RetimingGraph, CycleWeightInvariantUnderRetiming) {
  Rng rng(5);
  auto g = test::random_retiming_graph(rng, 8, 10);
  // Sum of w over ALL edges changes, but around any cycle it is invariant;
  // check the invariant via per-edge telescoping summed over a cycle we
  // construct: use the whole edge set's tail/head increments which cancel
  // on closed walks.  Here we verify the defining identity edge by edge.
  std::vector<int> r(static_cast<std::size_t>(g.num_vertices()), 0);
  for (int v = 1; v < g.num_vertices(); ++v)
    r[static_cast<std::size_t>(v)] = static_cast<int>(rng.uniform(5)) - 2;
  for (int e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    const auto w_r = g.retimed_weight(e, r);
    EXPECT_EQ(w_r - ed.w,
              r[static_cast<std::size_t>(ed.head)] -
                  r[static_cast<std::size_t>(ed.tail)]);
  }
}

TEST(RetimingGraph, LegalityChecksNonNegativity) {
  auto g = test::correlator_graph();
  std::vector<int> zero(static_cast<std::size_t>(g.num_vertices()), 0);
  EXPECT_TRUE(g.is_legal_retiming(zero));
  std::vector<int> bad = zero;
  bad[2] = -2;  // v2: edge v1->v2 weight becomes 1 + (-2) = -1
  EXPECT_FALSE(g.is_legal_retiming(bad));
}

TEST(RetimingGraph, LegalityChecksIoPinning) {
  RetimingGraph g;
  const int v = g.add_vertex(VertexKind::kFunctional, 1.0,
                             tile::TileId::invalid());
  const int u = g.add_vertex(VertexKind::kFunctional, 1.0,
                             tile::TileId::invalid());
  g.add_edge(v, u, 2);
  g.mark_io(v);
  std::vector<int> r{0, 1, 1};  // host=0 but io v has r=1
  EXPECT_FALSE(g.is_legal_retiming(r));
  std::vector<int> ok{0, 0, 1};
  EXPECT_TRUE(g.is_legal_retiming(ok));
}

TEST(RetimingGraph, PeriodAsIsIsLongestRegisterFreePath) {
  // chain a(2) -> b(3) -> c(4), no registers: period = 9.
  RetimingGraph g;
  const auto t = tile::TileId::invalid();
  const int a = g.add_vertex(VertexKind::kFunctional, 2.0, t);
  const int b = g.add_vertex(VertexKind::kFunctional, 3.0, t);
  const int c = g.add_vertex(VertexKind::kFunctional, 4.0, t);
  g.add_edge(a, b, 0);
  g.add_edge(b, c, 0);
  EXPECT_DOUBLE_EQ(g.period_as_is_ps(), 9.0);
}

TEST(RetimingGraph, PeriodAfterRetimingDrops) {
  auto g = test::correlator_graph();
  // As is: the critical register-free path is just v4 (7.0) … plus
  // v4->v1 w=0 chain: v4(7)+v1(3) = 10.
  EXPECT_DOUBLE_EQ(g.period_as_is_ps(), 10.0);
  // Retime v1 by +1: moves the register from v1->v2 back to v4->v1.
  std::vector<int> r(static_cast<std::size_t>(g.num_vertices()), 0);
  r[1] = 1;
  ASSERT_TRUE(g.is_legal_retiming(r));
  EXPECT_DOUBLE_EQ(g.period_after_ps(r), 7.0);
}

TEST(RetimingGraph, PeriodThrowsOnIllegalRetiming) {
  auto g = test::correlator_graph();
  std::vector<int> bad(static_cast<std::size_t>(g.num_vertices()), 0);
  bad[2] = -5;
  EXPECT_THROW((void)g.period_after_ps(bad), CheckError);
}

TEST(RetimingGraph, CountsKinds) {
  RetimingGraph g;
  const auto t = tile::TileId::invalid();
  g.add_vertex(VertexKind::kFunctional, 1.0, t);
  g.add_vertex(VertexKind::kInterconnect, 1.0, t);
  g.add_vertex(VertexKind::kInterconnect, 1.0, t);
  EXPECT_EQ(g.num_interconnect_units(), 2);
}

TEST(RetimingGraph, TotalsAccumulate) {
  auto g = test::correlator_graph();
  EXPECT_EQ(g.total_weight(), 3);
  EXPECT_EQ(g.total_delay_decips(), to_decips(3.0) * 3 + to_decips(7.0));
}

}  // namespace
}  // namespace lac::retime
