// Parameterized stress sweeps over the physical-design substrates.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "floorplan/floorplanner.h"
#include "route/global_router.h"
#include "tile/tile_grid.h"

namespace lac {
namespace {

// ------------------------------------------------------------- floorplan

struct FpParam {
  int blocks;
  double whitespace;
  std::uint64_t seed;
};

class FloorplanSweep : public ::testing::TestWithParam<FpParam> {};

TEST_P(FloorplanSweep, LegalAndWhitespaceInBand) {
  const auto p = GetParam();
  Rng rng(p.seed);
  std::vector<floorplan::BlockSpec> blocks(static_cast<std::size_t>(p.blocks));
  double requested = 0.0;
  for (int i = 0; i < p.blocks; ++i) {
    auto& b = blocks[static_cast<std::size_t>(i)];
    b.name = "b" + std::to_string(i);
    b.area = 500.0 + static_cast<double>(rng.uniform(20000));
    requested += b.area;
  }
  floorplan::FloorplanOptions opt;
  opt.whitespace_target = p.whitespace;
  opt.seed = p.seed;
  opt.sa_moves_per_block = 200;
  const auto fp = floorplan::floorplan_blocks(blocks, opt);

  // Legal: disjoint, inside chip, areas honoured.
  for (int a = 0; a < fp.num_blocks(); ++a) {
    const auto& ra = fp.placement[static_cast<std::size_t>(a)];
    EXPECT_GE(ra.lo.x, fp.chip.lo.x);
    EXPECT_LE(ra.hi.x, fp.chip.hi.x);
    EXPECT_GE(ra.area(), blocks[static_cast<std::size_t>(a)].area * 0.98);
    for (int b = a + 1; b < fp.num_blocks(); ++b)
      EXPECT_FALSE(ra.overlaps(fp.placement[static_cast<std::size_t>(b)]));
  }
  // Whitespace near the target: the one-pass spreading scales block
  // origins but not sizes, so the realised fraction sits a little under
  // the target (the far edge does not scale fully).
  EXPECT_GE(fp.whitespace_fraction, p.whitespace - 0.10);
  EXPECT_LE(fp.whitespace_fraction, 0.75);
  // Total block area conserved inside the chip.
  EXPECT_GE(fp.chip.area(), requested);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FloorplanSweep,
    ::testing::Values(FpParam{2, 0.1, 1}, FpParam{4, 0.2, 2},
                      FpParam{6, 0.3, 3}, FpParam{9, 0.25, 4},
                      FpParam{12, 0.25, 5}, FpParam{16, 0.35, 6},
                      FpParam{24, 0.2, 7}, FpParam{32, 0.25, 8}));

// ---------------------------------------------------------------- router

struct RouteParam {
  int grid;       // grid x grid cells
  int nets;
  int sinks;
  double capacity;
  std::uint64_t seed;
};

class RouterSweep : public ::testing::TestWithParam<RouteParam> {};

TEST_P(RouterSweep, AllNetsConnectedAndAccounted) {
  const auto p = GetParam();
  floorplan::Floorplan fp;
  fp.chip = Rect{{0, 0}, {p.grid * 100, p.grid * 100}};
  tile::TileGridOptions topt;
  topt.tile_size = 100;
  tile::TileGrid grid(fp, {}, topt);

  Rng rng(p.seed);
  std::vector<route::RouteRequest> nets;
  for (int i = 0; i < p.nets; ++i) {
    route::RouteRequest req;
    req.source = {static_cast<int>(rng.uniform(static_cast<std::uint64_t>(p.grid))),
                  static_cast<int>(rng.uniform(static_cast<std::uint64_t>(p.grid)))};
    for (int s = 0; s < p.sinks; ++s)
      req.sinks.push_back(
          {static_cast<int>(rng.uniform(static_cast<std::uint64_t>(p.grid))),
           static_cast<int>(rng.uniform(static_cast<std::uint64_t>(p.grid)))});
    nets.push_back(std::move(req));
  }
  route::RouterOptions opt;
  opt.edge_capacity = p.capacity;
  route::GlobalRouter router(grid, opt);
  const auto trees = router.route_all(nets);
  ASSERT_EQ(trees.size(), nets.size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    ASSERT_EQ(trees[i].sink_paths.size(), nets[i].sinks.size()) << "net " << i;
    for (std::size_t s = 0; s < nets[i].sinks.size(); ++s) {
      const auto& path = trees[i].sink_paths[s];
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), nets[i].source);
      EXPECT_EQ(path.back(), nets[i].sinks[s]);
      for (std::size_t k = 1; k < path.size(); ++k)
        EXPECT_EQ(std::abs(path[k].gx - path[k - 1].gx) +
                      std::abs(path[k].gy - path[k - 1].gy),
                  1);
    }
  }
  EXPECT_GE(router.stats().total_wirelength_um, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Load, RouterSweep,
    ::testing::Values(RouteParam{8, 10, 1, 16, 1}, RouteParam{8, 30, 2, 8, 2},
                      RouteParam{12, 40, 3, 6, 3}, RouteParam{16, 60, 2, 4, 4},
                      RouteParam{16, 20, 5, 16, 5},
                      RouteParam{20, 80, 3, 8, 6},
                      RouteParam{6, 50, 2, 2, 7}));

}  // namespace
}  // namespace lac
