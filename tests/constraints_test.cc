#include <gtest/gtest.h>

#include "graph/diff_constraints.h"
#include "retime/constraints.h"
#include "retime/wd_matrices.h"
#include "tests/test_util.h"

namespace lac::retime {
namespace {

TEST(Constraints, EdgeConstraintsOnePerEdge) {
  const auto g = test::correlator_graph();
  const auto wd = WdMatrices::compute(g);
  const auto cs = build_constraints(g, wd, to_decips(100.0));
  EXPECT_EQ(cs.edge.size(), static_cast<std::size_t>(g.num_edges()));
  EXPECT_TRUE(cs.clock.empty());  // period is huge
}

TEST(Constraints, ClockConstraintsAppearBelowTInit) {
  const auto g = test::correlator_graph();
  const auto wd = WdMatrices::compute(g);
  const auto cs = build_constraints(g, wd, to_decips(9.0));
  EXPECT_GT(cs.clock.size(), 0u);
  for (const auto& c : cs.clock) {
    EXPECT_GT(wd.d_ps(c.u, c.v), 9.0);
    EXPECT_EQ(c.c, wd.w(c.u, c.v) - 1);
  }
}

TEST(Constraints, IoPinningPairs) {
  RetimingGraph g;
  const auto t = tile::TileId::invalid();
  const int a = g.add_vertex(VertexKind::kFunctional, 1.0, t);
  const int b = g.add_vertex(VertexKind::kFunctional, 1.0, t);
  g.add_edge(a, b, 1);
  g.mark_io(a);
  g.mark_io(b);
  const auto wd = WdMatrices::compute(g);
  const auto cs = build_constraints(g, wd, to_decips(10.0));
  EXPECT_EQ(cs.io.size(), 4u);  // two inequalities per pinned vertex
}

TEST(Constraints, PruningPreservesFeasibilityExactly) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    auto g = test::random_retiming_graph(rng, 5 + static_cast<int>(rng.uniform(6)),
                                         static_cast<int>(rng.uniform(12)));
    const auto wd = WdMatrices::compute(g);
    const auto lo = wd.max_vertex_delay_decips();
    const auto hi = to_decips(wd.t_init_ps());
    for (std::int32_t T : {lo, (lo + hi) / 2, hi}) {
      const auto pruned = build_constraints(g, wd, T, {.prune = true});
      const auto full = build_constraints(g, wd, T, {.prune = false});
      EXPECT_LE(pruned.clock.size(), full.clock.size());
      graph::DiffConstraints dp(pruned.num_vars);
      pruned.for_each([&](const Constraint& c) { dp.add(c.u, c.v, c.c); });
      graph::DiffConstraints df(full.num_vars);
      full.for_each([&](const Constraint& c) { df.add(c.u, c.v, c.c); });
      EXPECT_EQ(dp.feasible(), df.feasible()) << "T=" << T;
      // Stronger: any solution of the pruned system satisfies the full one.
      const auto sol = dp.solve();
      if (sol) {
        for (const auto& c : full.clock)
          EXPECT_LE((*sol)[static_cast<std::size_t>(c.u)] -
                        (*sol)[static_cast<std::size_t>(c.v)],
                    c.c)
              << "pruning dropped a non-redundant constraint";
      }
    }
  }
}

TEST(Constraints, PruningShrinksLargeSystems) {
  Rng rng(4242);
  auto g = test::random_retiming_graph(rng, 40, 60);
  const auto wd = WdMatrices::compute(g);
  const auto mid = (wd.max_vertex_delay_decips() + to_decips(wd.t_init_ps())) / 2;
  const auto cs = build_constraints(g, wd, mid);
  EXPECT_LT(cs.clock.size(), cs.clock_before_pruning);
}

TEST(MinPeriod, CorrelatorOptimum) {
  const auto g = test::correlator_graph();
  const auto wd = WdMatrices::compute(g);
  std::vector<int> r;
  const double t = min_period_retiming(g, wd, &r);
  EXPECT_DOUBLE_EQ(t, 7.0);  // the big vertex alone
  EXPECT_TRUE(g.is_legal_retiming(r));
  EXPECT_LE(g.period_after_ps(r), 7.0 + 1e-9);
}

TEST(MinPeriod, NeverAboveTInitNorBelowMaxDelay) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    auto g = test::random_retiming_graph(rng, 4 + static_cast<int>(rng.uniform(6)),
                                         static_cast<int>(rng.uniform(10)));
    const auto wd = WdMatrices::compute(g);
    std::vector<int> r;
    const double t = min_period_retiming(g, wd, &r);
    EXPECT_LE(t, wd.t_init_ps() + 1e-9);
    EXPECT_GE(t, from_decips(wd.max_vertex_delay_decips()) - 1e-9);
    EXPECT_LE(g.period_after_ps(r), t + 1e-9);
  }
}

TEST(MinPeriod, MatchesBruteForceOnTinyGraphs) {
  Rng rng(21);
  for (int trial = 0; trial < 12; ++trial) {
    auto g = test::random_retiming_graph(rng, 4, 4, /*max_w=*/1);
    const auto wd = WdMatrices::compute(g);
    const double flow_t = min_period_retiming(g, wd);
    const double brute_t = test::brute_force_min_period(g, /*bound=*/3);
    EXPECT_NEAR(flow_t, brute_t, 0.11) << "trial " << trial;
  }
}

TEST(MinPeriod, FeasibilityMonotoneInT) {
  Rng rng(100);
  auto g = test::random_retiming_graph(rng, 8, 12);
  const auto wd = WdMatrices::compute(g);
  const double tmin = min_period_retiming(g, wd);
  EXPECT_FALSE(period_feasible(g, wd, to_decips(tmin) - 1));
  EXPECT_TRUE(period_feasible(g, wd, to_decips(tmin)));
  EXPECT_TRUE(period_feasible(g, wd, to_decips(tmin) + 37));
}

}  // namespace
}  // namespace lac::retime
