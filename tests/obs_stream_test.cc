// Tests for obs/stream: the crash-safe event log and its fold/strip
// pipeline.  The load-bearing properties:
//   * a complete run's stream folds to the very report build_report()
//     wrote in-process — byte-identical, even before stripping;
//   * a truncated stream (killed run, partial last line) still folds,
//     marked "truncated": true with unclosed spans annotated;
//   * stripped streams are byte-identical across thread counts;
//   * with the sink closed, the hooks allocate nothing.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "bench89/suite.h"
#include "obs/compare.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/stream.h"
#include "obs/task.h"
#include "planner/interconnect_planner.h"

namespace lac::obs::stream {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void reset_obs() {
  Metrics::instance().reset();
  (void)take_finished_roots();
}

// One full in-process plan with the stream attached; returns the
// direct report's serialized text, leaving the stream file at `path`.
std::string run_plan_streaming(const std::string& path, int threads) {
  reset_obs();
  ScopedEnable on(true);
  std::string error;
  EXPECT_TRUE(open(path, "stream_test", &error)) << error;

  const auto& entry = bench89::entry_by_name("y386");
  const auto nl = bench89::load(entry);
  planner::PlannerConfig cfg;
  cfg.run.seed = 7;
  cfg.run.exec.threads = threads;
  cfg.num_blocks = entry.recommended_blocks;
  const planner::InterconnectPlanner planner(cfg);
  (void)planner.plan(nl);

  const std::string direct = json::serialize(build_report("stream_test"));
  close();
  return direct;
}

TEST(ObsStream, CompleteRunFoldsByteIdenticalToDirectReport) {
  const std::string path = temp_path("full.jsonl");
  const std::string direct = run_plan_streaming(path, /*threads=*/2);

  const auto folded = fold_file(path);
  ASSERT_TRUE(folded.has_value());
  EXPECT_FALSE(folded->truncated);
  EXPECT_EQ(folded->skipped_lines, 0);
  // Not just equivalent — byte-identical, including every wall-clock and
  // allocation field: close events splice span_to_json verbatim and fold
  // replays metrics through the same registry code.
  EXPECT_EQ(json::serialize(folded->report), direct);
  // The stripped forms then trivially agree too (the satellite contract).
  EXPECT_EQ(json::serialize(strip_times(folded->report)),
            json::serialize(strip_times(*json::parse(direct))));
}

TEST(ObsStream, StrippedStreamsIdenticalAcrossThreadCounts) {
  const std::string p1 = temp_path("threads1.jsonl");
  const std::string p4 = temp_path("threads4.jsonl");
  (void)run_plan_streaming(p1, /*threads=*/1);
  (void)run_plan_streaming(p4, /*threads=*/4);
  const std::string s1 = strip_stream(read_file(p1));
  const std::string s4 = strip_stream(read_file(p4));
  EXPECT_FALSE(s1.empty());
  EXPECT_EQ(s1, s4);
}

TEST(ObsStream, TruncatedStreamFoldsWithMarkerAndUnclosedSpans) {
  // A killed run: header, one global span opened and never closed, some
  // metric traffic, and a partial last line cut mid-write.
  const std::string text =
      "{\"ev\":\"run\",\"schema\":\"lac-obs-events/1\",\"name\":\"killed\","
      "\"unix_ms\":1,\"obs_enabled\":true,\"mem_tracking\":false}\n"
      "{\"ev\":\"open\",\"id\":1,\"t\":0.1,\"name\":\"planner.plan\"}\n"
      "{\"ev\":\"open\",\"id\":2,\"parent\":1,\"t\":0.2,"
      "\"name\":\"stage.partition\"}\n"
      "{\"ev\":\"count\",\"name\":\"planner.plans\",\"delta\":1}\n"
      "{\"ev\":\"gauge\",\"name\":\"mcf.network_bytes\",\"value\":123}\n"
      "{\"ev\":\"close\",\"id\":2,\"t\":0.3,\"name\":\"stage.partition\","
      "\"seconds\":0.1}\n"
      "{\"ev\":\"count\",\"name\":\"lac.rou";  // SIGKILL mid-line

  const auto folded = fold(text);
  ASSERT_TRUE(folded.has_value());
  EXPECT_TRUE(folded->truncated);
  EXPECT_EQ(folded->skipped_lines, 1);

  const json::Value& report = folded->report;
  const json::Value* truncated = report.find("truncated");
  ASSERT_NE(truncated, nullptr);
  EXPECT_TRUE(truncated->b);
  EXPECT_EQ(report.find("schema")->str, "lac-obs-report/2");
  EXPECT_EQ(report.find("name")->str, "killed");

  // The unclosed planner.plan root carries its closed child and the
  // forensic marker.
  const json::Value* trace = report.find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->array.size(), 1u);
  const json::Value& root = trace->array[0];
  EXPECT_EQ(root.find("name")->str, "planner.plan");
  ASSERT_NE(root.at_path({"annotations", "unclosed"}), nullptr);
  const json::Value* kids = root.find("children");
  ASSERT_NE(kids, nullptr);
  ASSERT_EQ(kids->array.size(), 1u);
  EXPECT_EQ(kids->array[0].find("name")->str, "stage.partition");

  // Metric state at the moment of death.
  EXPECT_EQ(report.at_path({"metrics", "counters", "planner.plans"})->num,
            1.0);
  EXPECT_EQ(report.at_path({"metrics", "gauges", "mcf.network_bytes"})->num,
            123.0);

  // And the forensic report is accepted by the report consumers.
  EXPECT_NO_THROW((void)strip_times(report));
}

TEST(ObsStream, CompleteStreamWithEventsAfterEndIsTruncated) {
  const std::string text =
      "{\"ev\":\"run\",\"schema\":\"lac-obs-events/1\",\"name\":\"r\","
      "\"obs_enabled\":true,\"mem_tracking\":false}\n"
      "{\"ev\":\"end\",\"t\":1.0,\"name\":\"r\",\"obs_enabled\":true,"
      "\"meta\":{},\"dropped_root_spans\":0,\"mem_tracking\":false}\n"
      "{\"ev\":\"count\",\"name\":\"late\",\"delta\":1}\n";
  const auto folded = fold(text);
  ASSERT_TRUE(folded.has_value());
  // Events after the last `end` mean the stream did not finish cleanly.
  EXPECT_TRUE(folded->truncated);
}

TEST(ObsStream, FoldRejectsEventFreeText) {
  EXPECT_FALSE(fold("").has_value());
  EXPECT_FALSE(fold("not json\nnot json either\n").has_value());
}

TEST(ObsStream, StripStreamDropsHeartbeatsAndTimeFields) {
  const std::string text =
      "{\"ev\":\"run\",\"schema\":\"lac-obs-events/1\",\"name\":\"r\","
      "\"unix_ms\":99,\"obs_enabled\":true,\"mem_tracking\":true}\n"
      "{\"ev\":\"hb\",\"t\":1.0,\"rss_bytes\":4096}\n"
      "{\"ev\":\"open\",\"id\":1,\"t\":0.5,\"name\":\"s\"}\n"
      "{\"ev\":\"close\",\"id\":1,\"t\":0.9,\"name\":\"s\","
      "\"seconds\":0.4,\"alloc_bytes\":10,\"freed_bytes\":10,"
      "\"peak_live_bytes\":5}\n"
      "{\"ev\":\"gauge\",\"name\":\"mem.peak_rss_bytes\",\"value\":1}\n"
      "{\"ev\":\"gauge\",\"name\":\"mcf.network_bytes\",\"value\":7}\n"
      "{\"ev\":\"observe\",\"name\":\"mcf.solve_seconds\",\"value\":0.1}\n"
      "{\"ev\":\"observe\",\"name\":\"lac.round_n_foa\",\"value\":3}\n";
  const std::string stripped = strip_stream(text);
  EXPECT_EQ(stripped,
            "{\"ev\":\"run\",\"schema\":\"lac-obs-events/1\",\"name\":\"r\","
            "\"obs_enabled\":true,\"mem_tracking\":true}\n"
            "{\"ev\":\"open\",\"id\":1,\"name\":\"s\"}\n"
            "{\"ev\":\"close\",\"id\":1,\"name\":\"s\"}\n"
            "{\"ev\":\"gauge\",\"name\":\"mcf.network_bytes\",\"value\":7}\n"
            "{\"ev\":\"observe\",\"name\":\"mcf.solve_seconds\"}\n"
            "{\"ev\":\"observe\",\"name\":\"lac.round_n_foa\","
            "\"value\":3}\n");
}

TEST(ObsStream, InactiveSinkHooksAllocateNothing) {
  if (!memory::tracking_available())
    GTEST_SKIP() << "no global allocation hooks on this platform";
  ASSERT_FALSE(active());
  ScopedEnable on(true);
  // Warm up the metric registry entries so the measured section exercises
  // only the hook paths, not first-touch map inserts.
  count("stream_test.counter", 1);
  gauge("stream_test.gauge", 1.0);

  const std::uint64_t before = memory::thread_alloc_calls();
  bool live = true;
  {
    Event ev("round");
    ev.field("round", 1).field("n_foa", 2.0).field("warm", true);
    live = ev.live();
  }
  count("stream_test.counter", 1);
  gauge("stream_test.gauge", 2.0);
  const std::uint64_t after = memory::thread_alloc_calls();
  EXPECT_FALSE(live);
  EXPECT_EQ(after, before);
}

TEST(ObsStream, RoundAndEndEventsAppearInStream) {
  const std::string path = temp_path("rounds.jsonl");
  (void)run_plan_streaming(path, /*threads=*/2);
  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"ev\":\"run\""), std::string::npos);
  EXPECT_NE(text.find("\"ev\":\"round\""), std::string::npos);
  // plan() called directly runs its span tree at the global level, so
  // spans stream as live open/close pairs.
  EXPECT_NE(text.find("\"ev\":\"open\""), std::string::npos);
  EXPECT_NE(text.find("\"ev\":\"close\""), std::string::npos);
  EXPECT_NE(text.find("\"ev\":\"end\""), std::string::npos);
  // The end event is the last line.
  const std::size_t last_line = text.rfind('\n', text.size() - 2) + 1;
  EXPECT_EQ(text.compare(last_line, 11, "{\"ev\":\"end\""), 0);
}

TEST(ObsStream, TaskRootsStreamAsTreesNotPairs) {
  const std::string path = temp_path("trees.jsonl");
  reset_obs();
  ScopedEnable on(true);
  std::string error;
  ASSERT_TRUE(open(path, "trees", &error)) << error;

  TaskCapture cap;
  {
    ScopedTaskCapture scoped(&cap);
    Span task_span("task.work");
    task_span.annotate("item", 3);
    count("task.counter", 1);
  }
  commit_task_capture(std::move(cap));
  close();

  const std::string text = read_file(path);
  // The captured span arrives as one complete tree at commit — never as
  // a live open/close pair (those would interleave nondeterministically).
  EXPECT_NE(text.find("\"ev\":\"span\""), std::string::npos);
  EXPECT_NE(text.find("task.work"), std::string::npos);
  EXPECT_EQ(text.find("\"ev\":\"open\""), std::string::npos);
  EXPECT_EQ(text.find("\"ev\":\"close\""), std::string::npos);
  // The buffered metric event replays into the stream at commit too.
  EXPECT_NE(text.find("\"ev\":\"count\",\"name\":\"task.counter\""),
            std::string::npos);
}

TEST(ObsStream, SecondOpenWhileActiveFails) {
  const std::string path = temp_path("second.jsonl");
  std::string error;
  ASSERT_TRUE(open(path, "first", &error)) << error;
  EXPECT_FALSE(open(temp_path("other.jsonl"), "second", &error));
  EXPECT_FALSE(error.empty());
  close();
  close();  // idempotent
  EXPECT_FALSE(active());
}

}  // namespace
}  // namespace lac::obs::stream
