// Cross-cutting integration checks that exercise the file-level tool flow
// and determinism guarantees the examples and benches rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "base/rng.h"
#include "bench89/suite.h"
#include "floorplan/floorplanner.h"
#include "netlist/bench_io.h"
#include "netlist/simulate.h"
#include "planner/interconnect_planner.h"
#include "retime/apply.h"
#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"
#include "route/global_router.h"
#include "tile/tile_grid.h"

namespace lac {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Integration, BenchFileRoundTrip) {
  const auto nl = bench89::s27();
  TempFile f("lac_s27_roundtrip.bench");
  netlist::write_bench_file(nl, f.path());
  const auto nl2 = netlist::parse_bench_file(f.path());
  EXPECT_EQ(nl2.num_cells(), nl.num_cells());
  EXPECT_EQ(nl2.name(), "lac_s27_roundtrip");
}

TEST(Integration, ParseMissingFileThrows) {
  EXPECT_THROW(netlist::parse_bench_file("/nonexistent/zzz.bench"),
               CheckError);
}

TEST(Integration, RetimeWriteReloadResimulate) {
  // Full tool flow: retime s27 to T_min, write, reload, co-simulate.
  const auto nl = bench89::s27();
  const auto lg = retime::build_logic_graph(nl, 10.0);
  const auto wd = retime::WdMatrices::compute(lg.graph);
  std::vector<int> r;
  const double t_min = retime::min_period_retiming(lg.graph, wd, &r);
  const auto cs =
      retime::build_constraints(lg.graph, wd, retime::to_decips(t_min));
  const auto r_area = retime::min_area_retiming(lg.graph, cs);
  const auto retimed = retime::apply_retiming(nl, lg, *r_area);

  TempFile f("lac_s27_retimed.bench");
  netlist::write_bench_file(retimed, f.path());
  const auto reloaded = netlist::parse_bench_file(f.path());

  netlist::Simulator sa(nl), sb(reloaded);
  sa.reset();
  sb.reset();
  Rng rng(5);
  int comparable = 0;
  for (int t = 0; t < 30; ++t) {
    std::vector<netlist::Logic> in(4);
    for (auto& v : in)
      v = rng.bernoulli(0.5) ? netlist::Logic::kOne : netlist::Logic::kZero;
    const auto oa = sa.step(in);
    const auto ob = sb.step(in);
    if (oa[0] != netlist::Logic::kX && ob[0] != netlist::Logic::kX) {
      EXPECT_EQ(oa[0], ob[0]) << "cycle " << t;
      ++comparable;
    }
  }
  EXPECT_GT(comparable, 0);
}

TEST(Integration, RouterDeterministic) {
  floorplan::Floorplan fp;
  fp.chip = Rect{{0, 0}, {2000, 2000}};
  tile::TileGridOptions topt;
  topt.tile_size = 100;
  tile::TileGrid grid_a(fp, {}, topt), grid_b(fp, {}, topt);
  std::vector<route::RouteRequest> nets;
  for (int i = 0; i < 12; ++i)
    nets.push_back({{i, 0}, {{19 - i, 19}, {10, i}}});
  route::GlobalRouter ra(grid_a), rb(grid_b);
  const auto ta = ra.route_all(nets);
  const auto tb = rb.route_all(nets);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i)
    EXPECT_EQ(ta[i].edges, tb[i].edges) << "net " << i;
}

TEST(Integration, PlannerRerunFromSameConfigIdentical) {
  const auto nl = bench89::load(bench89::entry_by_name("y298"));
  planner::PlannerConfig cfg;
  cfg.run.seed = 42;
  cfg.num_blocks = 6;
  planner::InterconnectPlanner p1(cfg), p2(cfg);
  const auto a = p1.plan(nl);
  const auto b = p2.plan(nl);
  EXPECT_EQ(a.lac.r, b.lac.r);
  EXPECT_EQ(a.min_area.report.n_foa, b.min_area.report.n_foa);
  EXPECT_EQ(a.routing.total_wirelength_um, b.routing.total_wirelength_um);
}

TEST(Integration, SuiteSmokeAllCircuitsPlanAndVerify) {
  // One light-weight pass over three representative suite circuits.
  for (const char* name : {"y298", "y400", "y641"}) {
    const auto& entry = bench89::entry_by_name(name);
    const auto nl = bench89::load(entry);
    planner::PlannerConfig cfg;
    cfg.run.seed = 7;
    cfg.num_blocks = entry.recommended_blocks;
    cfg.fp_opt.sa_moves_per_block = 150;
    planner::InterconnectPlanner planner(cfg);
    const auto res = planner.plan(nl);
    EXPECT_TRUE(res.graph.is_legal_retiming(res.lac.r)) << name;
    EXPECT_LE(res.lac.report.n_foa, res.min_area.report.n_foa) << name;
  }
}

}  // namespace
}  // namespace lac
