#include <gtest/gtest.h>

#include "netlist/bench_io.h"
#include "netlist/generator.h"

namespace lac::netlist {
namespace {

TEST(Generator, Deterministic) {
  GenSpec spec;
  spec.seed = 42;
  const auto a = generate_netlist(spec);
  const auto b = generate_netlist(spec);
  EXPECT_EQ(write_bench(a), write_bench(b));
}

TEST(Generator, DifferentSeedsDiffer) {
  GenSpec spec;
  spec.seed = 1;
  const auto a = generate_netlist(spec);
  spec.seed = 2;
  const auto b = generate_netlist(spec);
  EXPECT_NE(write_bench(a), write_bench(b));
}

TEST(Generator, ExactGateAndDffCounts) {
  GenSpec spec;
  spec.num_gates = 137;
  spec.num_dffs = 17;
  spec.num_inputs = 9;
  const auto nl = generate_netlist(spec);
  EXPECT_EQ(nl.num_gates(), 137);
  EXPECT_EQ(nl.count(CellType::kDff), 17);
  EXPECT_EQ(nl.count(CellType::kInput), 9);
}

TEST(Generator, NoDeadGates) {
  GenSpec spec;
  spec.num_gates = 200;
  spec.seed = 5;
  const auto nl = generate_netlist(spec);
  for (const auto c : nl.cells())
    if (is_combinational(nl.type(c))) {
      EXPECT_FALSE(nl.fanouts(c).empty()) << nl.cell_name(c);
    }
}

TEST(Generator, OutputCountNearSpec) {
  GenSpec spec;
  spec.num_gates = 300;
  spec.num_outputs = 20;
  spec.seed = 11;
  const auto nl = generate_netlist(spec);
  // Dangling-gate promotion may add a few extra POs but not explode.
  EXPECT_GE(nl.count(CellType::kOutput), 20);
  EXPECT_LE(nl.count(CellType::kOutput), 20 + spec.num_gates / 10);
}

TEST(Generator, RoundTripsThroughBench) {
  GenSpec spec;
  spec.num_gates = 80;
  spec.num_dffs = 12;
  const auto nl = generate_netlist(spec);
  const auto nl2 = parse_bench(write_bench(nl), nl.name());
  EXPECT_EQ(nl.num_cells(), nl2.num_cells());
  EXPECT_EQ(nl.num_gates(), nl2.num_gates());
}

TEST(Generator, ZeroDffsLegal) {
  GenSpec spec;
  spec.num_dffs = 0;
  spec.num_gates = 30;
  const auto nl = generate_netlist(spec);
  EXPECT_EQ(nl.count(CellType::kDff), 0);
  EXPECT_FALSE(nl.validate().has_value());
}

// Property sweep: every generated circuit across a size/seed grid is a
// legal sequential netlist with the requested core counts.
struct GenParam {
  int gates;
  int dffs;
  int depth;
  std::uint64_t seed;
};

class GeneratorSweep : public ::testing::TestWithParam<GenParam> {};

TEST_P(GeneratorSweep, ProducesLegalNetlist) {
  const auto p = GetParam();
  GenSpec spec;
  spec.num_gates = p.gates;
  spec.num_dffs = p.dffs;
  spec.depth = p.depth;
  spec.seed = p.seed;
  spec.num_inputs = 4;
  spec.num_outputs = 4;
  const auto nl = generate_netlist(spec);
  EXPECT_FALSE(nl.validate().has_value());
  EXPECT_EQ(nl.num_gates(), p.gates);
  EXPECT_EQ(nl.count(CellType::kDff), p.dffs);
  // Every DFF has exactly one fanin.
  for (const auto c : nl.cells_of_type(CellType::kDff))
    EXPECT_EQ(nl.fanins(c).size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratorSweep,
    ::testing::Values(GenParam{10, 2, 3, 1}, GenParam{10, 2, 3, 2},
                      GenParam{50, 0, 5, 3}, GenParam{50, 10, 5, 4},
                      GenParam{120, 15, 9, 5}, GenParam{120, 15, 20, 6},
                      GenParam{400, 40, 12, 7}, GenParam{400, 5, 30, 8},
                      GenParam{1, 1, 1, 9}, GenParam{700, 70, 25, 10}));

}  // namespace
}  // namespace lac::netlist
