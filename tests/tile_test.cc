#include <gtest/gtest.h>

#include "floorplan/floorplanner.h"
#include "tile/tile_grid.h"

namespace lac::tile {
namespace {

// A hand-built floorplan: one soft block, one hard block, channel around.
floorplan::Floorplan two_block_plan() {
  floorplan::Floorplan fp;
  fp.chip = Rect{{0, 0}, {1000, 500}};
  floorplan::BlockSpec soft;
  soft.name = "soft";
  soft.area = 500.0 * 300.0;
  floorplan::BlockSpec hard;
  hard.name = "hard";
  hard.hard = true;
  hard.area = 200.0 * 200.0;
  hard.fixed_w = 200;
  hard.fixed_h = 200;
  fp.blocks = {soft, hard};
  fp.placement = {Rect{{50, 50}, {550, 350}}, Rect{{700, 100}, {900, 300}}};
  fp.whitespace_fraction = 0.5;
  return fp;
}

TileGridOptions small_tiles() {
  TileGridOptions opt;
  opt.tile_size = 100;
  return opt;
}

TEST(TileGrid, DimensionsCoverChip) {
  const auto fp = two_block_plan();
  TileGrid grid(fp, {30000.0, 0.0}, small_tiles());
  EXPECT_EQ(grid.nx(), 10);
  EXPECT_EQ(grid.ny(), 5);
  EXPECT_EQ(grid.num_cells(), 50);
}

TEST(TileGrid, SoftBlockCellsMerge) {
  const auto fp = two_block_plan();
  TileGrid grid(fp, {30000.0, 0.0}, small_tiles());
  // All cells whose centre is inside the soft block map to one tile.
  TileId soft_tile = TileId::invalid();
  int soft_cells = 0;
  for (int gy = 0; gy < grid.ny(); ++gy)
    for (int gx = 0; gx < grid.nx(); ++gx) {
      const TileId t = grid.tile_of_cell(gx, gy);
      if (grid.kind(t) == TileKind::kSoftBlock) {
        if (!soft_tile.valid()) soft_tile = t;
        EXPECT_EQ(t, soft_tile);
        ++soft_cells;
      }
    }
  EXPECT_GT(soft_cells, 10);
  EXPECT_EQ(grid.num_soft_tiles(), 1);
}

TEST(TileGrid, SoftCapacityIsAreaMinusUsed) {
  const auto fp = two_block_plan();
  const double used = 30000.0;
  TileGrid grid(fp, {used, 0.0}, small_tiles());
  for (int t = 0; t < grid.num_tiles(); ++t) {
    if (grid.kind(TileId{t}) != TileKind::kSoftBlock) continue;
    EXPECT_NEAR(grid.capacity(TileId{t}),
                fp.placement[0].area() - used, 1.0);
  }
}

TEST(TileGrid, HardBlockCellsStaySeparateWithSiteCapacity) {
  const auto fp = two_block_plan();
  TileGridOptions opt = small_tiles();
  opt.hard_sites_per_cell = 3;
  opt.site_area = 100.0;
  TileGrid grid(fp, {0.0, 0.0}, opt);
  int hard_tiles = 0;
  for (int t = 0; t < grid.num_tiles(); ++t) {
    if (grid.kind(TileId{t}) != TileKind::kHardBlock) continue;
    ++hard_tiles;
    EXPECT_DOUBLE_EQ(grid.capacity(TileId{t}), 300.0);
    EXPECT_EQ(grid.block(TileId{t}).value(), 1);
  }
  EXPECT_GT(hard_tiles, 1);  // hard cells are NOT merged
}

TEST(TileGrid, ChannelCapacity) {
  const auto fp = two_block_plan();
  TileGridOptions opt = small_tiles();
  opt.channel_utilization = 0.5;
  TileGrid grid(fp, {0.0, 0.0}, opt);
  const TileId t = grid.tile_at(Point{5, 450});  // top-left corner: channel
  ASSERT_EQ(grid.kind(t), TileKind::kChannel);
  EXPECT_DOUBLE_EQ(grid.capacity(t), 100.0 * 100.0 * 0.5);
  EXPECT_FALSE(grid.block(t).valid());
}

TEST(TileGrid, ConsumeReducesCapacity) {
  const auto fp = two_block_plan();
  TileGrid grid(fp, {0.0, 0.0}, small_tiles());
  const TileId t = grid.tile_at(Point{5, 5});
  const double before = grid.capacity(t);
  grid.consume(t, 123.0);
  EXPECT_DOUBLE_EQ(grid.capacity(t), before - 123.0);
  EXPECT_DOUBLE_EQ(grid.total_capacity(t), before);
}

TEST(TileGrid, TileAtClampsOutOfRange) {
  const auto fp = two_block_plan();
  TileGrid grid(fp, {0.0, 0.0}, small_tiles());
  EXPECT_TRUE(grid.tile_at(Point{-50, -50}).valid());
  EXPECT_TRUE(grid.tile_at(Point{5000, 5000}).valid());
}

TEST(TileGrid, CellPointRoundTrip) {
  const auto fp = two_block_plan();
  TileGrid grid(fp, {0.0, 0.0}, small_tiles());
  for (int gy = 0; gy < grid.ny(); ++gy)
    for (int gx = 0; gx < grid.nx(); ++gx) {
      const auto c = grid.cell_center(gx, gy);
      const auto [gx2, gy2] = grid.cell_of_point(c);
      EXPECT_EQ(gx2, gx);
      EXPECT_EQ(gy2, gy);
    }
}

TEST(TileGrid, AsciiRenderShapes) {
  const auto fp = two_block_plan();
  TileGrid grid(fp, {0.0, 0.0}, small_tiles());
  const std::string art = grid.render_ascii();
  // 5 rows of 10 characters plus newlines.
  EXPECT_EQ(art.size(), 5u * 11u);
  EXPECT_NE(art.find('a'), std::string::npos);  // soft block 0
  EXPECT_NE(art.find('#'), std::string::npos);  // hard block
  EXPECT_NE(art.find('.'), std::string::npos);  // channel
}

TEST(TileGrid, TotalChannelCapacityPositive) {
  const auto fp = two_block_plan();
  TileGrid grid(fp, {0.0, 0.0}, small_tiles());
  EXPECT_GT(grid.total_channel_capacity(), 0.0);
}

}  // namespace
}  // namespace lac::tile
