// Tests for report diffing: deterministic counters hard-fail, timings
// get tolerance tiers, stripped baselines suppress timing comparisons,
// and strip_times produces byte-stable baseline documents.
#include <string>

#include <gtest/gtest.h>

#include "obs/compare.h"
#include "obs/json.h"

namespace lac::obs {
namespace {

json::Value parse_or_die(const std::string& text) {
  auto v = json::parse(text);
  EXPECT_TRUE(v.has_value()) << text;
  return *v;
}

json::Value base_report() {
  return parse_or_die(R"({
    "schema": "lac-obs-report/1",
    "name": "bench",
    "meta": {"circuits": 4, "total_exec_seconds": 12.5},
    "trace": [
      {"name": "plan", "seconds": 1.0,
       "children": [{"name": "solve", "seconds": 0.4},
                    {"name": "solve", "seconds": 0.4}]}
    ],
    "metrics": {
      "counters": {"mcf.augmentations": 1704, "lac.rounds": 3},
      "gauges": {"route.max_usage": 1.25},
      "histograms": {
        "mcf.solve_seconds": {"count": 2, "sum": 0.8},
        "lac.round_n_foa": {"count": 3, "sum": 21.0}
      }
    }
  })");
}

TEST(CompareTest, IdenticalReportsAreClean) {
  const DiffResult res = diff_reports(base_report(), base_report());
  EXPECT_EQ(res.verdict, Verdict::kOk);
  EXPECT_GT(res.entries.size(), 0u);
  EXPECT_EQ(res.count(Verdict::kWarn), 0);
  EXPECT_EQ(res.count(Verdict::kRegress), 0);
}

TEST(CompareTest, DoctoredDeterministicCounterRegresses) {
  json::Value current = base_report();
  json::Value* c = const_cast<json::Value*>(
      current.at_path({"metrics", "counters", "mcf.augmentations"}));
  ASSERT_NE(c, nullptr);
  c->num = 1709;
  const DiffResult res = diff_reports(base_report(), current);
  EXPECT_EQ(res.verdict, Verdict::kRegress);
  bool found = false;
  for (const DiffEntry& e : res.entries)
    if (e.name == "mcf.augmentations") {
      found = true;
      EXPECT_EQ(e.verdict, Verdict::kRegress);
      EXPECT_EQ(e.kind, DiffEntry::Kind::kCounter);
    }
  EXPECT_TRUE(found);
}

TEST(CompareTest, MissingAndExtraCountersRegress) {
  json::Value current = base_report();
  auto& counters = const_cast<json::Value*>(
                       current.at_path({"metrics", "counters"}))
                       ->object;
  counters.erase(counters.begin());  // drop lac.rounds or mcf.*
  counters.emplace_back("route.new_counter", json::Value::of(5));
  const DiffResult res = diff_reports(base_report(), current);
  EXPECT_EQ(res.verdict, Verdict::kRegress);
  EXPECT_GE(res.count(Verdict::kRegress), 2);
}

TEST(CompareTest, TimingTiersWarnThenFail) {
  DiffOptions opts;
  // +20%: above the 15% warn tier, below the 50% fail tier.
  const DiffResult r1 = diff_reports(
      parse_or_die(R"({"trace": [{"name": "plan", "seconds": 1.0}]})"),
      parse_or_die(R"({"trace": [{"name": "plan", "seconds": 1.2}]})"), opts);
  EXPECT_EQ(r1.verdict, Verdict::kWarn);

  const DiffResult r2 = diff_reports(
      parse_or_die(R"({"trace": [{"name": "plan", "seconds": 1.0}]})"),
      parse_or_die(R"({"trace": [{"name": "plan", "seconds": 2.0}]})"), opts);
  EXPECT_EQ(r2.verdict, Verdict::kRegress);

  opts.timings_warn_only = true;
  const DiffResult r3 = diff_reports(
      parse_or_die(R"({"trace": [{"name": "plan", "seconds": 1.0}]})"),
      parse_or_die(R"({"trace": [{"name": "plan", "seconds": 2.0}]})"), opts);
  EXPECT_EQ(r3.verdict, Verdict::kWarn);

  // Small deltas stay clean.
  const DiffResult r4 = diff_reports(
      parse_or_die(R"({"trace": [{"name": "plan", "seconds": 1.0}]})"),
      parse_or_die(R"({"trace": [{"name": "plan", "seconds": 1.05}]})"),
      DiffOptions{});
  EXPECT_EQ(r4.verdict, Verdict::kOk);
}

TEST(CompareTest, TinyTimingsAreIgnored) {
  // Both sides below min_seconds: a 10x swing on a microsecond span is
  // clock noise, not a regression.
  const DiffResult res = diff_reports(
      parse_or_die(R"({"trace": [{"name": "p", "seconds": 1e-5}]})"),
      parse_or_die(R"({"trace": [{"name": "p", "seconds": 1e-4}]})"));
  EXPECT_EQ(res.verdict, Verdict::kOk);
}

TEST(CompareTest, StrippedBaselineSuppressesTimingsButKeepsStructure) {
  const json::Value stripped = strip_times(base_report());
  json::Value current = base_report();

  // Timings wildly different from (absent) baseline: still clean.
  DiffResult res = diff_reports(stripped, current);
  EXPECT_EQ(res.verdict, Verdict::kOk);
  for (const DiffEntry& e : res.entries)
    EXPECT_NE(e.kind, DiffEntry::Kind::kSpanTime);

  // ... while a doctored counter still hard-fails.
  json::Value* c = const_cast<json::Value*>(
      current.at_path({"metrics", "counters", "lac.rounds"}));
  c->num = 4;
  res = diff_reports(stripped, current);
  EXPECT_EQ(res.verdict, Verdict::kRegress);

  // ... and so does a changed span count (structure is deterministic).
  json::Value extra_span = base_report();
  const_cast<json::Value*>(extra_span.find("trace"))
      ->array.push_back(parse_or_die(R"({"name": "plan", "seconds": 1.0})"));
  res = diff_reports(stripped, extra_span);
  EXPECT_EQ(res.verdict, Verdict::kRegress);
}

TEST(CompareTest, HistogramCountsAreDeterministicSumsAreTimings) {
  json::Value current = base_report();
  // A timing histogram's sum may drift within tolerance...
  json::Value* sum = const_cast<json::Value*>(
      current.at_path({"metrics", "histograms", "mcf.solve_seconds", "sum"}));
  sum->num = 0.85;  // ~6% over
  EXPECT_EQ(diff_reports(base_report(), current).verdict, Verdict::kOk);
  // ... but its observation count is exact.
  json::Value* count = const_cast<json::Value*>(current.at_path(
      {"metrics", "histograms", "mcf.solve_seconds", "count"}));
  count->num = 3;
  EXPECT_EQ(diff_reports(base_report(), current).verdict, Verdict::kRegress);

  // A non-timing histogram sum is deterministic.
  json::Value current2 = base_report();
  json::Value* nfoa = const_cast<json::Value*>(
      current2.at_path({"metrics", "histograms", "lac.round_n_foa", "sum"}));
  nfoa->num = 22.0;
  EXPECT_EQ(diff_reports(base_report(), current2).verdict, Verdict::kRegress);
}

TEST(CompareTest, NonTimingGaugeIsDeterministic) {
  json::Value current = base_report();
  json::Value* g = const_cast<json::Value*>(
      current.at_path({"metrics", "gauges", "route.max_usage"}));
  g->num = 1.3;
  EXPECT_EQ(diff_reports(base_report(), current).verdict, Verdict::kRegress);
}

TEST(CompareTest, EmptyReportsDiffCleanly) {
  const json::Value empty = parse_or_die("{}");
  const DiffResult res = diff_reports(empty, empty);
  EXPECT_EQ(res.verdict, Verdict::kOk);
  EXPECT_TRUE(res.entries.empty());

  // Empty baseline vs a real report: everything is "not in baseline".
  const DiffResult res2 = diff_reports(empty, base_report());
  EXPECT_EQ(res2.verdict, Verdict::kRegress);
}

TEST(CompareTest, NullMetricValuesAreTolerated) {
  // The writer emits null for NaN/Inf gauges (json.cc append_number);
  // diffing such a report must not crash or fabricate comparisons.
  const json::Value withnull = parse_or_die(R"({
    "metrics": {"gauges": {"weird.gauge": null},
                "counters": {"c": 1}}
  })");
  const DiffResult res = diff_reports(withnull, withnull);
  EXPECT_EQ(res.verdict, Verdict::kOk);
  for (const DiffEntry& e : res.entries) EXPECT_NE(e.name, "weird.gauge");
}

TEST(CompareTest, StripTimesRemovesWallClockData) {
  const json::Value stripped = strip_times(base_report());

  // Span structure survives, seconds do not.
  const json::Value* plan = &stripped.find("trace")->array[0];
  EXPECT_EQ(plan->find("name")->str, "plan");
  EXPECT_EQ(plan->find("seconds"), nullptr);
  EXPECT_EQ(plan->find("children")->array.size(), 2u);
  EXPECT_EQ(plan->find("children")->array[0].find("seconds"), nullptr);

  // Timing histogram keeps only its deterministic count.
  const json::Value* h =
      stripped.at_path({"metrics", "histograms", "mcf.solve_seconds"});
  ASSERT_NE(h, nullptr);
  EXPECT_NE(h->find("count"), nullptr);
  EXPECT_EQ(h->find("sum"), nullptr);
  // Non-timing histogram is untouched.
  const json::Value* nh =
      stripped.at_path({"metrics", "histograms", "lac.round_n_foa"});
  ASSERT_NE(nh, nullptr);
  EXPECT_NE(nh->find("sum"), nullptr);

  // Timing meta dropped, the rest kept.
  EXPECT_EQ(stripped.at_path({"meta", "total_exec_seconds"}), nullptr);
  EXPECT_NE(stripped.at_path({"meta", "circuits"}), nullptr);

  // Counters and non-timing gauges intact.
  EXPECT_NE(stripped.at_path({"metrics", "counters", "mcf.augmentations"}),
            nullptr);
  EXPECT_NE(stripped.at_path({"metrics", "gauges", "route.max_usage"}),
            nullptr);

  // Idempotent and serialisable.
  EXPECT_EQ(json::serialize(strip_times(stripped)),
            json::serialize(stripped));
}

// --ignore-style prefixes exempt a whole metric family from the diff, in
// every section and in both directions (used for cross-config runs where
// solver-effort counters legitimately differ).
TEST(CompareTest, IgnorePrefixSkipsFamilyEverywhere) {
  json::Value current = base_report();
  // Doctor an mcf.* counter AND an mcf.* histogram count; add an mcf.*
  // counter that is missing from the baseline.
  json::Value* c = const_cast<json::Value*>(
      current.at_path({"metrics", "counters", "mcf.augmentations"}));
  ASSERT_NE(c, nullptr);
  c->num = 7;
  json::Value* h = const_cast<json::Value*>(
      current.at_path({"metrics", "histograms", "mcf.solve_seconds", "count"}));
  ASSERT_NE(h, nullptr);
  h->num = 9;
  const_cast<json::Value*>(current.at_path({"metrics", "counters"}))
      ->object.emplace_back("mcf.warm_restarts", json::Value::of(41));

  // Without the prefix the doctored values regress...
  EXPECT_EQ(diff_reports(base_report(), current).verdict, Verdict::kRegress);

  // ...with it the whole family is exempt and nothing else complains.
  DiffOptions opts;
  opts.ignore_prefixes.push_back("mcf.");
  const DiffResult res = diff_reports(base_report(), current, opts);
  EXPECT_EQ(res.verdict, Verdict::kOk);
  for (const DiffEntry& e : res.entries)
    EXPECT_TRUE(e.name.rfind("mcf.", 0) != 0) << e.name;
}

TEST(CompareTest, IgnorePrefixStillEnforcesOtherFamilies) {
  json::Value current = base_report();
  json::Value* c = const_cast<json::Value*>(
      current.at_path({"metrics", "counters", "lac.rounds"}));
  ASSERT_NE(c, nullptr);
  c->num = 99;
  DiffOptions opts;
  opts.ignore_prefixes.push_back("mcf.");
  const DiffResult res = diff_reports(base_report(), current, opts);
  EXPECT_EQ(res.verdict, Verdict::kRegress);
}

TEST(CompareTest, IgnorePrefixSkipsSpans) {
  json::Value current = base_report();
  // Rename both solve child spans: without ignoring, that is two span
  // regressions (one missing, one unexpected).
  for (auto& root : const_cast<json::Value*>(current.at_path({"trace"}))->array)
    for (auto& [k, v] : root.object)
      if (k == "children")
        for (auto& child : v.array)
          for (auto& [ck, cv] : child.object)
            if (ck == "name") cv.str = "solve_warm";
  EXPECT_EQ(diff_reports(base_report(), current).verdict, Verdict::kRegress);
  DiffOptions opts;
  opts.ignore_prefixes.push_back("solve");
  EXPECT_EQ(diff_reports(base_report(), current, opts).verdict, Verdict::kOk);
}

TEST(CompareTest, TimingNamePredicate) {
  EXPECT_TRUE(is_timing_name("mcf.solve_seconds"));
  EXPECT_TRUE(is_timing_name("lac.round_seconds"));
  EXPECT_TRUE(is_timing_name("total_exec_seconds"));
  EXPECT_FALSE(is_timing_name("mcf.augmentations"));
  EXPECT_FALSE(is_timing_name("lac.round_n_foa"));
}

TEST(CompareTest, NoisyNamePredicate) {
  EXPECT_TRUE(is_noisy_name("mcf.solve_seconds"));   // timing
  EXPECT_TRUE(is_noisy_name("mem.peak_rss_bytes"));  // OS-level reading
  EXPECT_FALSE(is_noisy_name("mem.wd_bytes"));       // logical size
  EXPECT_FALSE(is_noisy_name("mcf.augmentations"));
}

// A v2 report on top of the v1 base: span memory deltas, mem.* gauges
// and the metrics.memory section.
json::Value v2_report() {
  json::Value r = base_report();
  const_cast<json::Value*>(r.at_path({"schema"}))->str = "lac-obs-report/2";
  auto& plan = const_cast<json::Value*>(r.at_path({"trace"}))->array[0];
  plan.object.emplace_back("alloc_bytes", json::Value::of(4096));
  plan.object.emplace_back("freed_bytes", json::Value::of(1024));
  plan.object.emplace_back("peak_live_bytes", json::Value::of(3072));
  auto& gauges =
      const_cast<json::Value*>(r.at_path({"metrics", "gauges"}))->object;
  gauges.emplace_back("mem.wd_bytes", json::Value::of(123456));
  gauges.emplace_back("mem.peak_rss_bytes", json::Value::of(9000000));
  json::Value mem;
  mem.kind = json::Value::Kind::kObject;
  mem.object.emplace_back("tracking", json::Value::of(true));
  mem.object.emplace_back("peak_rss_bytes", json::Value::of(9000000));
  const_cast<json::Value*>(r.at_path({"metrics"}))
      ->object.emplace_back("memory", std::move(mem));
  return r;
}

TEST(CompareTest, V2AgainstV2IsCleanAndRssIsInformational) {
  json::Value current = v2_report();
  // Wildly different RSS and span deltas must not regress: RSS is an OS
  // reading and span deltas are per-build facts, not gated quantities.
  const_cast<json::Value*>(
      current.at_path({"metrics", "gauges", "mem.peak_rss_bytes"}))
      ->num = 1.0;
  auto& plan = const_cast<json::Value*>(current.at_path({"trace"}))->array[0];
  for (auto& [k, v] : plan.object)
    if (k == "alloc_bytes") v.num = 999999;
  EXPECT_EQ(diff_reports(v2_report(), current).verdict, Verdict::kOk);
}

TEST(CompareTest, DeterministicMemGaugeChangeRegresses) {
  json::Value current = v2_report();
  const_cast<json::Value*>(
      current.at_path({"metrics", "gauges", "mem.wd_bytes"}))
      ->num = 99;
  const DiffResult res = diff_reports(v2_report(), current);
  EXPECT_EQ(res.verdict, Verdict::kRegress);
  bool found = false;
  for (const DiffEntry& e : res.entries)
    if (e.name == "mem.wd_bytes") {
      found = true;
      EXPECT_EQ(e.verdict, Verdict::kRegress);
    }
  EXPECT_TRUE(found);
}

TEST(CompareTest, V1BaselineDiffsAgainstV2Report) {
  // An old baseline parses against a new report; the only complaint is
  // the new deterministic gauge, pointing at a baseline regen.
  const DiffResult res = diff_reports(base_report(), v2_report());
  EXPECT_EQ(res.verdict, Verdict::kRegress);
  for (const DiffEntry& e : res.entries)
    if (e.verdict != Verdict::kOk) EXPECT_EQ(e.name, "mem.wd_bytes");
}

TEST(CompareTest, StripTimesDropsMemoryData) {
  const json::Value stripped = strip_times(v2_report());

  // Span memory deltas are per-build facts (requested sizes shift with
  // toolchain upgrades), so the byte-stable baseline drops them.
  const json::Value* plan = &stripped.find("trace")->array[0];
  EXPECT_EQ(plan->find("alloc_bytes"), nullptr);
  EXPECT_EQ(plan->find("freed_bytes"), nullptr);
  EXPECT_EQ(plan->find("peak_live_bytes"), nullptr);

  // The process-memory section and rss gauges go; deterministic
  // logical-size gauges stay (they ARE gated).
  EXPECT_EQ(stripped.at_path({"metrics", "memory"}), nullptr);
  EXPECT_EQ(stripped.at_path({"metrics", "gauges", "mem.peak_rss_bytes"}),
            nullptr);
  EXPECT_NE(stripped.at_path({"metrics", "gauges", "mem.wd_bytes"}), nullptr);

  EXPECT_EQ(json::serialize(strip_times(stripped)),
            json::serialize(stripped));
}

}  // namespace
}  // namespace lac::obs
