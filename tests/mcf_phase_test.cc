// Stress/property tests for the multi-source multi-sink tree-drain phase
// structure of graph::MinCostFlow (see the kernel comment in
// min_cost_flow.h):
//   * every residual arc pushed by a phase sits at exactly zero reduced
//     cost after that phase's potential update — the invariant that makes
//     draining the whole shortest-path tree sound;
//   * the phase/augmentation counters are consistent (each phase that runs
//     ships at least one augmentation, so augmentations >= phases) and
//     fully deterministic: identical instances produce identical counters
//     on every solve, independent of anything environmental (the kernel is
//     single-threaded by design, which is what keeps retimings
//     bit-identical across planner thread counts).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "graph/min_cost_flow.h"

namespace lac::graph {
namespace {

struct RandomInstance {
  struct Arc {
    int u = 0, v = 0;
    std::int64_t cap = 0, cost = 0;
  };
  int n = 0;
  std::vector<Arc> arcs;
  std::vector<std::int64_t> supply;

  static RandomInstance make(Rng& rng) {
    RandomInstance ins;
    ins.n = 4 + static_cast<int>(rng.uniform(16));
    for (int k = 0; k < 3 * ins.n; ++k) {
      const int u =
          static_cast<int>(rng.uniform(static_cast<std::uint64_t>(ins.n)));
      const int v =
          static_cast<int>(rng.uniform(static_cast<std::uint64_t>(ins.n)));
      if (u == v) continue;
      const bool inf_cap = rng.uniform(6) == 0;
      ins.arcs.push_back(
          {u, v,
           inf_cap ? MinCostFlow::kInfCap
                   : 1 + static_cast<std::int64_t>(rng.uniform(9)),
           rng.uniform_int(-3, 9)});
    }
    // Host connectivity keeps every instance feasible.
    for (int v = 1; v < ins.n; ++v) {
      ins.arcs.push_back({v, 0, MinCostFlow::kInfCap, 60});
      ins.arcs.push_back({0, v, MinCostFlow::kInfCap, 60});
    }
    ins.supply.assign(static_cast<std::size_t>(ins.n), 0);
    std::int64_t total = 0;
    for (int v = 1; v < ins.n; ++v) {
      ins.supply[static_cast<std::size_t>(v)] = rng.uniform_int(-8, 8);
      total += ins.supply[static_cast<std::size_t>(v)];
    }
    ins.supply[0] = -total;
    return ins;
  }

  [[nodiscard]] MinCostFlow build() const {
    MinCostFlow mcf(n);
    for (const Arc& a : arcs) mcf.add_arc(a.u, a.v, a.cap, a.cost);
    for (int v = 0; v < n; ++v)
      mcf.set_supply(v, supply[static_cast<std::size_t>(v)]);
    return mcf;
  }
};

// Every arc pushed by a tree-drain phase has zero reduced cost measured
// after that phase's potential update, on cold solves and on warm
// resolves after supply edits.
TEST(McfPhases, PushedArcsHaveZeroReducedCostPostUpdate) {
  Rng rng(42);
  long long arcs_audited = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomInstance ins = RandomInstance::make(rng);
    MinCostFlow mcf = ins.build();
    int phases_seen = 0;
    mcf.set_phase_audit(
        [&](int phase, const std::vector<MinCostFlow::PhasePush>& pushes) {
          EXPECT_EQ(phase, phases_seen + 1) << "phases must arrive in order";
          phases_seen = phase;
          for (const auto& p : pushes) {
            EXPECT_EQ(p.reduced_cost_after, 0)
                << "trial " << trial << " phase " << phase << " arc " << p.arc;
            ++arcs_audited;
          }
        });
    if (!mcf.solve()) continue;  // negative cycle at zero flow
    EXPECT_EQ(mcf.stats().phases, phases_seen);

    // Warm rounds keep the invariant too.
    for (int round = 0; round < 2; ++round) {
      phases_seen = 0;
      const std::int64_t delta = 1 + static_cast<std::int64_t>(rng.uniform(4));
      mcf.add_supply(0, delta);
      mcf.add_supply(ins.n - 1, -delta);
      ASSERT_TRUE(mcf.resolve().has_value());
      EXPECT_EQ(mcf.stats().phases, phases_seen);
    }
  }
  EXPECT_GT(arcs_audited, 100) << "audit never engaged; property is vacuous";
}

// Counter consistency: every phase ships at least one augmentation (so
// augmentations >= phases), a solve that ships nothing runs zero phases,
// and a warm resolve of an unchanged instance runs zero of both.
TEST(McfPhases, AugmentationAndPhaseCountersAreConsistent) {
  Rng rng(4711);
  int multi_aug_phases = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomInstance ins = RandomInstance::make(rng);
    MinCostFlow mcf = ins.build();
    const auto sol = mcf.solve();
    if (!sol) continue;
    const auto& st = mcf.stats();
    EXPECT_GE(st.augmentations, st.phases);
    if (st.flow_shipped > 0) {
      EXPECT_GT(st.phases, 0);
    } else {
      EXPECT_EQ(st.phases, 0);
      EXPECT_EQ(st.augmentations, 0);
    }
    if (st.augmentations > st.phases) ++multi_aug_phases;

    // No-op warm resolve: nothing to ship, no phases run.
    ASSERT_TRUE(mcf.resolve().has_value());
    EXPECT_EQ(mcf.stats().phases, 0);
    EXPECT_EQ(mcf.stats().augmentations, 0);
    EXPECT_TRUE(mcf.stats().warm);
  }
  // The tree drain must actually drain multiple sinks per phase somewhere
  // in the fuzz, otherwise it degenerated to single-path SSP.
  EXPECT_GT(multi_aug_phases, 5);
}

// Determinism: the same instance produces bit-identical solver-effort
// counters on every solve — across separate instances, repeated solves,
// and identical warm trajectories.  (The kernel is single-threaded; this
// is the instance-level half of the cross-thread-count determinism
// guarantee checked end to end by determinism_test.)
TEST(McfPhases, CountersAreDeterministic) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    RandomInstance ins = RandomInstance::make(rng);
    MinCostFlow a = ins.build();
    MinCostFlow b = ins.build();
    const auto sa = a.solve();
    const auto sb = b.solve();
    ASSERT_EQ(sa.has_value(), sb.has_value());
    if (!sa) continue;

    const auto expect_same_stats = [&](const MinCostFlow& x,
                                       const MinCostFlow& y) {
      EXPECT_EQ(x.stats().phases, y.stats().phases);
      EXPECT_EQ(x.stats().augmentations, y.stats().augmentations);
      EXPECT_EQ(x.stats().dijkstra_pops, y.stats().dijkstra_pops);
      EXPECT_EQ(x.stats().arcs_relaxed, y.stats().arcs_relaxed);
      EXPECT_EQ(x.stats().flow_shipped, y.stats().flow_shipped);
    };
    expect_same_stats(a, b);
    EXPECT_EQ(sa->flow, sb->flow);
    EXPECT_EQ(sa->potential, sb->potential);

    // Identical warm trajectories stay in lockstep.
    for (int round = 0; round < 3; ++round) {
      const std::int64_t delta = 1 + static_cast<std::int64_t>(rng.uniform(5));
      for (MinCostFlow* m : {&a, &b}) {
        m->add_supply(1, delta);
        m->add_supply(0, -delta);
      }
      const auto ra = a.resolve();
      const auto rb = b.resolve();
      ASSERT_EQ(ra.has_value(), rb.has_value());
      if (!ra) break;
      EXPECT_EQ(ra->total_cost_exact, rb->total_cost_exact);
      expect_same_stats(a, b);
    }
  }
}

}  // namespace
}  // namespace lac::graph
