#include <gtest/gtest.h>

#include "base/check.h"
#include "netlist/bench_io.h"
#include "netlist/simulate.h"

namespace lac::netlist {
namespace {

constexpr Logic L0 = Logic::kZero;
constexpr Logic L1 = Logic::kOne;
constexpr Logic LX = Logic::kX;

TEST(Logic3, KleeneTables) {
  EXPECT_EQ(logic_not(L0), L1);
  EXPECT_EQ(logic_not(L1), L0);
  EXPECT_EQ(logic_not(LX), LX);

  EXPECT_EQ(logic_and(L0, LX), L0);
  EXPECT_EQ(logic_and(LX, L0), L0);
  EXPECT_EQ(logic_and(L1, LX), LX);
  EXPECT_EQ(logic_and(L1, L1), L1);

  EXPECT_EQ(logic_or(L1, LX), L1);
  EXPECT_EQ(logic_or(L0, LX), LX);
  EXPECT_EQ(logic_or(L0, L0), L0);

  EXPECT_EQ(logic_xor(L1, L0), L1);
  EXPECT_EQ(logic_xor(L1, L1), L0);
  EXPECT_EQ(logic_xor(L1, LX), LX);
}

TEST(Simulator, CombinationalGates) {
  const auto nl = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y_and)
OUTPUT(y_nor)
OUTPUT(y_xor)
y_and = AND(a, b)
y_nor = NOR(a, b)
y_xor = XOR(a, b)
)");
  Simulator sim(nl);
  const auto out = sim.step({L1, L0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], L0);  // AND(1,0)
  EXPECT_EQ(out[1], L0);  // NOR(1,0)
  EXPECT_EQ(out[2], L1);  // XOR(1,0)
  const auto out2 = sim.step({L1, L1});
  EXPECT_EQ(out2[0], L1);
  EXPECT_EQ(out2[1], L0);
  EXPECT_EQ(out2[2], L0);
}

TEST(Simulator, DffDelaysByOneCycle) {
  const auto nl = parse_bench(R"(
INPUT(a)
OUTPUT(q)
q = DFF(a)
)");
  Simulator sim(nl);
  sim.reset();
  EXPECT_EQ(sim.step({L1})[0], LX);  // power-up X
  EXPECT_EQ(sim.step({L0})[0], L1);  // sees last cycle's input
  EXPECT_EQ(sim.step({L1})[0], L0);
  EXPECT_EQ(sim.step({L1})[0], L1);
}

TEST(Simulator, ResetToConstant) {
  const auto nl = parse_bench(R"(
INPUT(a)
OUTPUT(q)
q = DFF(a)
)");
  Simulator sim(nl);
  sim.reset(Logic::kZero);
  EXPECT_EQ(sim.step({L1})[0], L0);
}

TEST(Simulator, ToggleCounterBit) {
  // q' = NOT(q): divide-by-two from a 0-initialised flop.
  const auto nl = parse_bench(R"(
INPUT(dummy)
OUTPUT(q)
n = NOT(q)
q = DFF(n)
)");
  Simulator sim(nl);
  sim.reset(Logic::kZero);
  EXPECT_EQ(sim.step({L0})[0], L0);
  EXPECT_EQ(sim.step({L0})[0], L1);
  EXPECT_EQ(sim.step({L0})[0], L0);
  EXPECT_EQ(sim.step({L0})[0], L1);
}

TEST(Simulator, XPropagatesConservatively) {
  const auto nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
q = DFF(a)
y = AND(q, a)
)");
  Simulator sim(nl);
  sim.reset();
  // Cycle 1: q = X, a = 1 -> AND(X,1) = X.
  EXPECT_EQ(sim.step({L1})[0], LX);
  // But AND(X, 0) is 0 regardless of the unknown.
  sim.reset();
  EXPECT_EQ(sim.step({L0})[0], L0);
}

TEST(Simulator, InputCountChecked) {
  const auto nl = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  Simulator sim(nl);
  EXPECT_THROW(sim.step({L1, L0}), lac::CheckError);
}

TEST(Simulator, S27RunsAndSettles) {
  const auto nl = parse_bench(R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)");
  Simulator sim(nl);
  sim.reset(Logic::kZero);
  // With a constant stimulus the machine must settle to defined values.
  std::vector<Logic> out;
  for (int i = 0; i < 8; ++i) out = sim.step({L0, L0, L0, L0});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0], LX);
}

}  // namespace
}  // namespace lac::netlist
