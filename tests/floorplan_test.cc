#include <gtest/gtest.h>

#include "base/check.h"
#include "base/rng.h"
#include "floorplan/floorplanner.h"
#include "floorplan/sequence_pair.h"

namespace lac::floorplan {
namespace {

// O(n^2) reference packing: derive pairwise relations directly from the
// definition and longest-path over an explicit constraint graph.
Packing reference_pack(const SequencePair& sp,
                       const std::vector<std::pair<Coord, Coord>>& dims) {
  const int n = static_cast<int>(dims.size());
  std::vector<int> pp(static_cast<std::size_t>(n)), pq(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pp[static_cast<std::size_t>(sp.p[static_cast<std::size_t>(i)])] = i;
    pq[static_cast<std::size_t>(sp.q[static_cast<std::size_t>(i)])] = i;
  }
  auto left_of = [&](int b, int c) {
    return pp[static_cast<std::size_t>(b)] < pp[static_cast<std::size_t>(c)] &&
           pq[static_cast<std::size_t>(b)] < pq[static_cast<std::size_t>(c)];
  };
  auto below = [&](int b, int c) {
    return pp[static_cast<std::size_t>(b)] > pp[static_cast<std::size_t>(c)] &&
           pq[static_cast<std::size_t>(b)] < pq[static_cast<std::size_t>(c)];
  };
  Packing out;
  out.origin.assign(static_cast<std::size_t>(n), Point{0, 0});
  // Fixed-point longest path (n is tiny in tests).
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 0; b < n; ++b)
      for (int c = 0; c < n; ++c) {
        if (b == c) continue;
        if (left_of(b, c)) {
          const Coord need = out.origin[static_cast<std::size_t>(b)].x +
                             dims[static_cast<std::size_t>(b)].first;
          if (out.origin[static_cast<std::size_t>(c)].x < need) {
            out.origin[static_cast<std::size_t>(c)].x = need;
            changed = true;
          }
        }
        if (below(b, c)) {
          const Coord need = out.origin[static_cast<std::size_t>(b)].y +
                             dims[static_cast<std::size_t>(b)].second;
          if (out.origin[static_cast<std::size_t>(c)].y < need) {
            out.origin[static_cast<std::size_t>(c)].y = need;
            changed = true;
          }
        }
      }
  }
  for (int b = 0; b < n; ++b) {
    out.width = std::max(out.width, out.origin[static_cast<std::size_t>(b)].x +
                                        dims[static_cast<std::size_t>(b)].first);
    out.height = std::max(out.height, out.origin[static_cast<std::size_t>(b)].y +
                                          dims[static_cast<std::size_t>(b)].second);
  }
  return out;
}

TEST(SequencePair, IdentityPacksIntoRow) {
  // Identity SP: every earlier block is left of every later one.
  const auto sp = SequencePair::identity(3);
  const std::vector<std::pair<Coord, Coord>> dims{{2, 5}, {3, 1}, {4, 2}};
  const auto pk = pack(sp, dims);
  EXPECT_EQ(pk.width, 9);
  EXPECT_EQ(pk.height, 5);
  EXPECT_EQ(pk.origin[0], (Point{0, 0}));
  EXPECT_EQ(pk.origin[1], (Point{2, 0}));
  EXPECT_EQ(pk.origin[2], (Point{5, 0}));
}

TEST(SequencePair, ReversedQPacksIntoColumn) {
  SequencePair sp;
  sp.p = {0, 1, 2};
  sp.q = {2, 1, 0};
  const std::vector<std::pair<Coord, Coord>> dims{{2, 2}, {2, 2}, {2, 2}};
  const auto pk = pack(sp, dims);
  EXPECT_EQ(pk.width, 2);
  EXPECT_EQ(pk.height, 6);
}

TEST(SequencePair, MatchesReferenceOnRandomInstances) {
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform(6));
    SequencePair sp = SequencePair::identity(n);
    for (int i = n - 1; i > 0; --i) {
      std::swap(sp.p[static_cast<std::size_t>(i)],
                sp.p[rng.uniform(static_cast<std::uint64_t>(i + 1))]);
      std::swap(sp.q[static_cast<std::size_t>(i)],
                sp.q[rng.uniform(static_cast<std::uint64_t>(i + 1))]);
    }
    std::vector<std::pair<Coord, Coord>> dims;
    for (int i = 0; i < n; ++i)
      dims.emplace_back(1 + static_cast<Coord>(rng.uniform(9)),
                        1 + static_cast<Coord>(rng.uniform(9)));
    const auto a = pack(sp, dims);
    const auto b = reference_pack(sp, dims);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.height, b.height);
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(a.origin[static_cast<std::size_t>(i)],
                b.origin[static_cast<std::size_t>(i)]);
  }
}

std::vector<BlockSpec> make_blocks(int n, Rng& rng, bool with_hard = false) {
  std::vector<BlockSpec> blocks(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& b = blocks[static_cast<std::size_t>(i)];
    b.name = "b" + std::to_string(i);
    b.area = 1000.0 + static_cast<double>(rng.uniform(9000));
    if (with_hard && i % 3 == 0) {
      b.hard = true;
      const Coord side = static_cast<Coord>(std::lround(std::sqrt(b.area)));
      b.fixed_w = side;
      b.fixed_h = side + 3;
    }
  }
  return blocks;
}

TEST(Floorplanner, NoOverlapsAndInsideChip) {
  Rng rng(4);
  const auto fp = floorplan_blocks(make_blocks(8, rng));
  for (int a = 0; a < fp.num_blocks(); ++a) {
    const auto& ra = fp.placement[static_cast<std::size_t>(a)];
    EXPECT_GE(ra.lo.x, fp.chip.lo.x);
    EXPECT_GE(ra.lo.y, fp.chip.lo.y);
    EXPECT_LE(ra.hi.x, fp.chip.hi.x);
    EXPECT_LE(ra.hi.y, fp.chip.hi.y);
    for (int b = a + 1; b < fp.num_blocks(); ++b)
      EXPECT_FALSE(ra.overlaps(fp.placement[static_cast<std::size_t>(b)]));
  }
}

TEST(Floorplanner, RealisesWhitespaceTarget) {
  Rng rng(6);
  FloorplanOptions opt;
  opt.whitespace_target = 0.3;
  const auto fp = floorplan_blocks(make_blocks(10, rng), opt);
  EXPECT_GE(fp.whitespace_fraction, 0.25);
  EXPECT_LE(fp.whitespace_fraction, 0.55);
}

TEST(Floorplanner, SoftBlocksGetRequestedArea) {
  Rng rng(8);
  const auto blocks = make_blocks(6, rng);
  const auto fp = floorplan_blocks(blocks);
  for (int b = 0; b < fp.num_blocks(); ++b)
    EXPECT_GE(fp.placement[static_cast<std::size_t>(b)].area(),
              blocks[static_cast<std::size_t>(b)].area * 0.98);
}

TEST(Floorplanner, HardBlocksKeepDimensions) {
  Rng rng(12);
  const auto blocks = make_blocks(9, rng, /*with_hard=*/true);
  const auto fp = floorplan_blocks(blocks);
  for (int b = 0; b < fp.num_blocks(); ++b) {
    if (!blocks[static_cast<std::size_t>(b)].hard) continue;
    const auto& r = fp.placement[static_cast<std::size_t>(b)];
    const bool straight =
        r.width() == blocks[static_cast<std::size_t>(b)].fixed_w &&
        r.height() == blocks[static_cast<std::size_t>(b)].fixed_h;
    EXPECT_TRUE(straight) << "block " << b;
  }
}

TEST(Floorplanner, BlockAtFindsOwner) {
  Rng rng(2);
  const auto fp = floorplan_blocks(make_blocks(5, rng));
  for (int b = 0; b < fp.num_blocks(); ++b) {
    const auto c = fp.placement[static_cast<std::size_t>(b)].center();
    EXPECT_EQ(fp.block_at(c).value(), b);
  }
}

TEST(Floorplanner, DeterministicForSeed) {
  Rng rng1(3), rng2(3);
  FloorplanOptions opt;
  opt.seed = 77;
  const auto a = floorplan_blocks(make_blocks(7, rng1), opt);
  const auto b = floorplan_blocks(make_blocks(7, rng2), opt);
  ASSERT_EQ(a.num_blocks(), b.num_blocks());
  for (int i = 0; i < a.num_blocks(); ++i)
    EXPECT_EQ(a.placement[static_cast<std::size_t>(i)],
              b.placement[static_cast<std::size_t>(i)]);
}

TEST(Floorplanner, SingleBlock) {
  std::vector<BlockSpec> blocks(1);
  blocks[0].name = "only";
  blocks[0].area = 400.0;
  const auto fp = floorplan_blocks(blocks);
  EXPECT_EQ(fp.num_blocks(), 1);
  EXPECT_GE(fp.placement[0].area(), 400.0 * 0.95);
}

TEST(Floorplanner, RefloorplanGrowsBlocks) {
  Rng rng(5);
  const auto blocks = make_blocks(6, rng);
  FloorplanOptions opt;
  opt.seed = 10;
  const auto fp = floorplan_blocks(blocks, opt);
  std::vector<double> new_area;
  for (const auto& b : fp.blocks) new_area.push_back(b.area * 1.5);
  const auto fp2 = refloorplan_expanded(fp, new_area, 0.05, opt);
  for (int b = 0; b < fp2.num_blocks(); ++b)
    EXPECT_GE(fp2.placement[static_cast<std::size_t>(b)].area(),
              new_area[static_cast<std::size_t>(b)] * 0.98);
  EXPECT_GT(fp2.chip.area(), fp.chip.area());
}

TEST(Floorplanner, RefloorplanRejectsShrinking) {
  Rng rng(5);
  const auto fp = floorplan_blocks(make_blocks(3, rng));
  std::vector<double> smaller;
  for (const auto& b : fp.blocks) smaller.push_back(b.area * 0.5);
  EXPECT_THROW(refloorplan_expanded(fp, smaller, 0.0), CheckError);
}

}  // namespace
}  // namespace lac::floorplan
