#include <gtest/gtest.h>

#include <numeric>

#include "netlist/generator.h"
#include "partition/fm.h"
#include "partition/hypergraph.h"

namespace lac::partition {
namespace {

netlist::Netlist medium_circuit(std::uint64_t seed = 3) {
  netlist::GenSpec spec;
  spec.num_gates = 150;
  spec.num_dffs = 15;
  spec.num_inputs = 8;
  spec.num_outputs = 8;
  spec.seed = seed;
  return netlist::generate_netlist(spec);
}

TEST(Hypergraph, BuildsOneNetPerDriverWithFanout) {
  netlist::Netlist nl;
  const auto a = nl.add_cell("a", netlist::CellType::kInput);
  const auto g1 = nl.add_cell("g1", netlist::CellType::kNot);
  const auto g2 = nl.add_cell("g2", netlist::CellType::kNot);
  const auto o = nl.add_cell("o", netlist::CellType::kOutput);
  nl.connect(g1, a);
  nl.connect(g2, g1);
  nl.connect(o, g2);
  const auto hg = build_hypergraph(nl);
  EXPECT_EQ(hg.num_nets(), 3);  // a, g1, g2 each drive one net
  for (const auto& net : hg.nets) EXPECT_GE(net.size(), 2u);
}

TEST(Hypergraph, DedupesSinks) {
  netlist::Netlist nl;
  const auto a = nl.add_cell("a", netlist::CellType::kInput);
  const auto g = nl.add_cell("g", netlist::CellType::kAnd);
  nl.connect(g, a);
  nl.connect(g, a);  // same driver twice
  const auto hg = build_hypergraph(nl);
  ASSERT_EQ(hg.num_nets(), 1);
  EXPECT_EQ(hg.nets[0].size(), 2u);
}

TEST(Hypergraph, CutSizeCounts) {
  netlist::Netlist nl;
  const auto a = nl.add_cell("a", netlist::CellType::kInput);
  const auto g1 = nl.add_cell("g1", netlist::CellType::kNot);
  const auto g2 = nl.add_cell("g2", netlist::CellType::kNot);
  nl.connect(g1, a);
  nl.connect(g2, g1);
  const auto hg = build_hypergraph(nl);
  // Partition {a,g1} vs {g2}: only g1's net crosses.
  std::vector<int> part{0, 0, 1};
  EXPECT_EQ(cut_size(hg, part), 1);
  std::vector<int> all_same{0, 0, 0};
  EXPECT_EQ(cut_size(hg, all_same), 0);
}

TEST(Fm, BipartitionRespectsBalance) {
  const auto nl = medium_circuit();
  const auto hg = build_hypergraph(nl);
  std::vector<double> area(static_cast<std::size_t>(nl.num_cells()), 1.0);
  std::vector<int> active(static_cast<std::size_t>(nl.num_cells()));
  std::iota(active.begin(), active.end(), 0);
  FmOptions opt;
  opt.balance_tolerance = 0.10;
  const auto side = fm_bipartition(hg, active, area, 0.5, opt);
  double a0 = 0, a1 = 0;
  for (std::size_t i = 0; i < side.size(); ++i)
    (side[i] == 0 ? a0 : a1) += 1.0;
  const double total = a0 + a1;
  EXPECT_LE(a0, 0.5 * total * 1.12);
  EXPECT_LE(a1, 0.5 * total * 1.12);
}

TEST(Fm, ImprovesOverWorstCase) {
  const auto nl = medium_circuit();
  const auto hg = build_hypergraph(nl);
  std::vector<double> area(static_cast<std::size_t>(nl.num_cells()), 1.0);
  const auto res = partition_netlist(nl, area, 2);
  // The cut must be well below the total net count for a connected circuit.
  EXPECT_LT(res.cut, hg.num_nets());
  EXPECT_GT(res.cut, 0);
  EXPECT_EQ(cut_size(hg, res.block_of), res.cut);
}

TEST(Fm, KWayCoversAllBlocks) {
  const auto nl = medium_circuit();
  std::vector<double> area(static_cast<std::size_t>(nl.num_cells()), 1.0);
  for (const int k : {1, 2, 3, 5, 9}) {
    const auto res = partition_netlist(nl, area, k);
    std::vector<int> count(static_cast<std::size_t>(k), 0);
    for (const int b : res.block_of) {
      ASSERT_GE(b, 0);
      ASSERT_LT(b, k);
      ++count[static_cast<std::size_t>(b)];
    }
    for (int b = 0; b < k; ++b)
      EXPECT_GT(count[static_cast<std::size_t>(b)], 0) << "k=" << k << " b=" << b;
  }
}

TEST(Fm, KWayBalanced) {
  const auto nl = medium_circuit(9);
  std::vector<double> area(static_cast<std::size_t>(nl.num_cells()), 1.0);
  const int k = 6;
  const auto res = partition_netlist(nl, area, k);
  std::vector<double> blk(static_cast<std::size_t>(k), 0.0);
  for (std::size_t i = 0; i < res.block_of.size(); ++i)
    blk[static_cast<std::size_t>(res.block_of[i])] += area[i];
  const double avg = static_cast<double>(nl.num_cells()) / k;
  for (int b = 0; b < k; ++b) {
    EXPECT_GT(blk[static_cast<std::size_t>(b)], 0.4 * avg);
    EXPECT_LT(blk[static_cast<std::size_t>(b)], 1.9 * avg);
  }
}

TEST(Fm, DeterministicForSeed) {
  const auto nl = medium_circuit();
  std::vector<double> area(static_cast<std::size_t>(nl.num_cells()), 1.0);
  FmOptions opt;
  opt.seed = 33;
  const auto a = partition_netlist(nl, area, 4, opt);
  const auto b = partition_netlist(nl, area, 4, opt);
  EXPECT_EQ(a.block_of, b.block_of);
  EXPECT_EQ(a.cut, b.cut);
}

TEST(Fm, SingleVertex) {
  netlist::Netlist nl;
  nl.add_cell("a", netlist::CellType::kInput);
  std::vector<double> area{1.0};
  const auto res = partition_netlist(nl, area, 1);
  EXPECT_EQ(res.block_of, (std::vector<int>{0}));
  EXPECT_EQ(res.cut, 0);
}

TEST(Fm, TwoVerticesTwoBlocks) {
  netlist::Netlist nl;
  const auto a = nl.add_cell("a", netlist::CellType::kInput);
  const auto g = nl.add_cell("g", netlist::CellType::kNot);
  nl.connect(g, a);
  std::vector<double> area{1.0, 1.0};
  const auto res = partition_netlist(nl, area, 2);
  EXPECT_NE(res.block_of[0], res.block_of[1]);
  EXPECT_EQ(res.cut, 1);
}

}  // namespace
}  // namespace lac::partition
