#include <gtest/gtest.h>

#include "bench89/suite.h"
#include "netlist/generator.h"
#include "planner/verify.h"

namespace lac::planner {
namespace {

PlannerConfig fast_config() {
  PlannerConfig cfg;
  cfg.num_blocks = 5;
  cfg.run.seed = 21;
  cfg.fp_opt.sa_moves_per_block = 150;
  return cfg;
}

netlist::Netlist circuit(std::uint64_t seed = 5) {
  netlist::GenSpec spec;
  spec.num_gates = 110;
  spec.num_dffs = 14;
  spec.seed = seed;
  return netlist::generate_netlist(spec);
}

TEST(VerifyPlan, FreshPlanVerifies) {
  const auto nl = circuit();
  const auto cfg = fast_config();
  InterconnectPlanner planner(cfg);
  const auto res = planner.plan(nl);
  const auto rep = verify_plan(res, cfg);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(VerifyPlan, SuiteCircuitVerifies) {
  const auto& entry = bench89::entry_by_name("y400");
  const auto nl = bench89::load(entry);
  PlannerConfig cfg = fast_config();
  cfg.num_blocks = entry.recommended_blocks;
  InterconnectPlanner planner(cfg);
  const auto res = planner.plan(nl);
  EXPECT_TRUE(verify_plan(res, cfg).ok());
}

TEST(VerifyPlan, DetectsTamperedRetiming) {
  const auto nl = circuit();
  const auto cfg = fast_config();
  InterconnectPlanner planner(cfg);
  auto res = planner.plan(nl);
  // Corrupt a label: either the retiming becomes illegal or the cached
  // area report no longer matches the recomputation.
  res.lac.r[res.lac.r.size() / 2] += 1;
  const auto rep = verify_plan(res, cfg);
  EXPECT_FALSE(rep.ok());
}

TEST(VerifyPlan, DetectsTamperedReport) {
  const auto nl = circuit();
  const auto cfg = fast_config();
  InterconnectPlanner planner(cfg);
  auto res = planner.plan(nl);
  res.min_area.report.n_f += 1;
  const auto rep = verify_plan(res, cfg);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("N_F mismatch"), std::string::npos);
}

TEST(VerifyPlan, DetectsTamperedLandmarks) {
  const auto nl = circuit();
  const auto cfg = fast_config();
  InterconnectPlanner planner(cfg);
  auto res = planner.plan(nl);
  res.t_clk_ps = res.t_min_ps - 50.0;
  EXPECT_FALSE(verify_plan(res, cfg).ok());
}

TEST(VerifyPlan, ReportFormats) {
  VerifyReport ok;
  EXPECT_NE(ok.to_string().find("verified"), std::string::npos);
  VerifyReport bad;
  bad.issues.push_back("something");
  EXPECT_NE(bad.to_string().find("something"), std::string::npos);
}

}  // namespace
}  // namespace lac::planner
