# CLI contract test for lacobs (and the bench binaries' usage path), run
# via `cmake -P` so exact exit codes can be asserted (ctest's WILL_FAIL
# only distinguishes zero from non-zero).
#
# Inputs: -DLACOBS=<lacobs binary> -DTABLE1=<table1_main binary>
#         -DDATA_DIR=<tests/data> -DWORK_DIR=<scratch dir>

function(run_expect code)
  execute_process(COMMAND ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT result EQUAL ${code})
    message(FATAL_ERROR
      "expected exit ${code}, got ${result} from: ${ARGN}\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(BASELINE "${DATA_DIR}/mini_baseline.json")
set(REGRESS "${DATA_DIR}/mini_regress.json")

# Usage path: --help succeeds, unknown commands/options exit 64.
run_expect(0 ${LACOBS} --help)
run_expect(0 ${LACOBS} help)
run_expect(64 ${LACOBS})
run_expect(64 ${LACOBS} --bogus)
run_expect(64 ${LACOBS} frobnicate report.json)
run_expect(64 ${LACOBS} diff only_one.json)
run_expect(64 ${LACOBS} trace ${BASELINE} --bogus)
# Unreadable input exits 66.
run_expect(66 ${LACOBS} summary ${WORK_DIR}/does_not_exist.json)

# Bench binaries share the usage contract (and --help must not start the
# one-minute suite run).
run_expect(0 ${TABLE1} --help)
run_expect(64 ${TABLE1} --bogus)
run_expect(64 ${TABLE1} out_a out_b)
run_expect(64 ${TABLE1} --limit notanumber)
# --threads: negative or malformed counts are usage errors (0 = auto is
# accepted, exercised by the perf-gate job, not here — it runs the suite).
run_expect(64 ${TABLE1} --threads -1)
run_expect(64 ${TABLE1} --threads notanumber)
run_expect(64 ${TABLE1} --threads)
# --lac-incremental only accepts on|off.
run_expect(64 ${TABLE1} --lac-incremental bogus)
run_expect(64 ${TABLE1} --lac-incremental 1)
run_expect(64 ${TABLE1} --lac-incremental)

# --eco: journal-driven tools read the file in parse_cli (missing file is
# EX_NOINPUT, 66) and validate the content before planning (malformed
# journal is a usage error, 64).  Tools without the flag reject it.
run_expect(0 ${ECO_REPLAN} --help)
run_expect(64 ${ECO_REPLAN} --eco)
run_expect(66 ${ECO_REPLAN} --eco ${WORK_DIR}/no_such_journal.eco)
file(WRITE "${WORK_DIR}/bad_journal.eco" "resize_block one hundred\n")
run_expect(64 ${ECO_REPLAN} ${WORK_DIR} --eco ${WORK_DIR}/bad_journal.eco)
run_expect(64 ${TABLE1} --eco ${WORK_DIR}/bad_journal.eco)

# diff: clean self-diff, exit 2 when a deterministic counter
# (mcf.augmentations) was doctored — timings alone must not mask it even
# with --timings-warn-only.
run_expect(0 ${LACOBS} diff ${BASELINE} ${BASELINE})
run_expect(2 ${LACOBS} diff ${BASELINE} ${REGRESS})
run_expect(2 ${LACOBS} diff ${BASELINE} ${REGRESS} --timings-warn-only)
# --ignore exempts a prefix family (the fixtures' only regression is the
# doctored mcf.augmentations counter); an unrelated prefix changes
# nothing, and a missing value is a usage error.
run_expect(0 ${LACOBS} diff ${BASELINE} ${REGRESS} --ignore mcf.)
run_expect(2 ${LACOBS} diff ${BASELINE} ${REGRESS} --ignore lac.)
run_expect(64 ${LACOBS} diff ${BASELINE} ${REGRESS} --ignore)

# trace: writes a loadable Chrome trace-event document.
run_expect(0 ${LACOBS} trace ${REGRESS} -o ${WORK_DIR}/trace.json)
file(READ "${WORK_DIR}/trace.json" trace_text)
if(NOT trace_text MATCHES "\"traceEvents\":\\[")
  message(FATAL_ERROR "trace output lacks traceEvents array:\n${trace_text}")
endif()

# strip-times: output re-diffs cleanly against the original and carries
# no span "seconds" members.
run_expect(0 ${LACOBS} strip-times ${REGRESS} -o ${WORK_DIR}/stripped.json)
file(READ "${WORK_DIR}/stripped.json" stripped_text)
if(stripped_text MATCHES "\"seconds\":")
  message(FATAL_ERROR "strip-times left wall-clock data:\n${stripped_text}")
endif()
run_expect(0 ${LACOBS} diff ${WORK_DIR}/stripped.json ${REGRESS})

# summary works on plain and stripped reports.
run_expect(0 ${LACOBS} summary ${REGRESS})
run_expect(0 ${LACOBS} summary ${BASELINE} ${REGRESS})

set(V2 "${DATA_DIR}/mini_v2.json")

# summary warns on stderr when the report dropped root spans.
execute_process(COMMAND ${LACOBS} summary ${V2}
  RESULT_VARIABLE result OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "summary on v2 fixture failed: ${err}")
endif()
if(NOT err MATCHES "dropped")
  message(FATAL_ERROR "summary did not warn about dropped spans:\n${err}")
endif()

# top: span tables by self time and, for v2 input, by self allocation;
# bad counts are usage errors, missing input exits 66.
run_expect(0 ${LACOBS} top ${BASELINE})
run_expect(64 ${LACOBS} top ${BASELINE} -n 0)
run_expect(64 ${LACOBS} top ${BASELINE} -n notanumber)
run_expect(64 ${LACOBS} top)
run_expect(66 ${LACOBS} top ${WORK_DIR}/does_not_exist.json)
execute_process(COMMAND ${LACOBS} top ${V2} -n 3
  RESULT_VARIABLE result OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT result EQUAL 0 OR NOT out MATCHES "by self allocation")
  message(FATAL_ERROR "top on v2 fixture lacks the allocation table:\n${out}")
endif()

# mem: per-span memory table plus mem.* gauges; --per-gate needs roots
# with a cells annotation (the v1 fixture has none -> exit 66).
run_expect(0 ${LACOBS} mem ${V2})
run_expect(0 ${LACOBS} mem ${V2} --per-gate)
run_expect(0 ${LACOBS} mem ${BASELINE})
run_expect(66 ${LACOBS} mem ${BASELINE} --per-gate)
run_expect(64 ${LACOBS} mem ${V2} --bogus)
run_expect(64 ${LACOBS} mem)
execute_process(COMMAND ${LACOBS} mem ${V2}
  RESULT_VARIABLE result OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT result EQUAL 0 OR NOT out MATCHES "mem.wd_bytes")
  message(FATAL_ERROR "mem output lacks the gauge table:\n${out}")
endif()

# --span-cap: malformed or negative values are usage errors.
run_expect(64 ${TABLE1} --span-cap -1)
run_expect(64 ${TABLE1} --span-cap notanumber)
run_expect(64 ${TABLE1} --span-cap)

# --stream: needs a path (the happy path runs a suite, exercised by the
# CI smoke job and obs_stream_test, not here).
run_expect(64 ${TABLE1} --stream)

# fold / strip-stream / tail over a hand-written lac-obs-events/1 stream.
set(STREAM "${WORK_DIR}/mini_stream.jsonl")
file(WRITE "${STREAM}" [[{"ev":"run","schema":"lac-obs-events/1","name":"mini","unix_ms":1,"obs_enabled":true,"mem_tracking":false}
{"ev":"open","id":1,"t":0.1,"name":"planner.plan"}
{"ev":"count","name":"mcf.augmentations","delta":5}
{"ev":"round","round":1,"n_foa":9,"n_f":12,"best_n_foa":9,"max_overflow":0,"improved":true,"warm":false,"seconds":0.05}
{"ev":"close","id":1,"t":0.3,"name":"planner.plan","seconds":0.2}
{"ev":"end","t":0.4,"name":"mini","obs_enabled":true,"meta":{},"dropped_root_spans":0,"mem_tracking":false}
]])

# A complete stream folds to a report the other subcommands accept.
run_expect(0 ${LACOBS} fold ${STREAM} -o ${WORK_DIR}/folded.json)
file(READ "${WORK_DIR}/folded.json" folded_text)
if(folded_text MATCHES "\"truncated\"")
  message(FATAL_ERROR "complete stream folded as truncated:\n${folded_text}")
endif()
run_expect(0 ${LACOBS} summary ${WORK_DIR}/folded.json)
run_expect(0 ${LACOBS} diff ${WORK_DIR}/folded.json ${WORK_DIR}/folded.json)

# A killed run's prefix still folds (exit 0) but carries the truncation
# marker; event-free text exits 66; missing operands are usage errors.
file(WRITE "${WORK_DIR}/killed_stream.jsonl" [[{"ev":"run","schema":"lac-obs-events/1","name":"mini","unix_ms":1,"obs_enabled":true,"mem_tracking":false}
{"ev":"open","id":1,"t":0.1,"name":"planner.plan"}
{"ev":"count","name":"mcf.augmen]])
run_expect(0 ${LACOBS} fold ${WORK_DIR}/killed_stream.jsonl
  -o ${WORK_DIR}/killed_report.json)
file(READ "${WORK_DIR}/killed_report.json" killed_text)
if(NOT killed_text MATCHES "\"truncated\":true")
  message(FATAL_ERROR "partial stream lacks truncation marker:\n${killed_text}")
endif()
run_expect(0 ${LACOBS} summary ${WORK_DIR}/killed_report.json)
file(WRITE "${WORK_DIR}/not_a_stream.jsonl" "not json\n")
run_expect(66 ${LACOBS} fold ${WORK_DIR}/not_a_stream.jsonl)
run_expect(66 ${LACOBS} fold ${WORK_DIR}/does_not_exist.jsonl)
run_expect(64 ${LACOBS} fold)

# strip-stream removes every wall-clock field so streams from different
# thread counts / machines can be compared bytewise.
run_expect(0 ${LACOBS} strip-stream ${STREAM} -o ${WORK_DIR}/stripped.jsonl)
file(READ "${WORK_DIR}/stripped.jsonl" sstream_text)
if(sstream_text MATCHES "\"t\":" OR sstream_text MATCHES "\"unix_ms\":")
  message(FATAL_ERROR "strip-stream left wall-clock data:\n${sstream_text}")
endif()
run_expect(64 ${LACOBS} strip-stream)
run_expect(66 ${LACOBS} strip-stream ${WORK_DIR}/does_not_exist.jsonl)

# tail --once renders a single snapshot of stage progress.
execute_process(COMMAND ${LACOBS} tail ${STREAM} --once
  RESULT_VARIABLE result OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT result EQUAL 0 OR NOT out MATCHES "planner.plan")
  message(FATAL_ERROR "tail --once did not render the stage table:\n${out}\n${err}")
endif()
run_expect(64 ${LACOBS} tail)
run_expect(64 ${LACOBS} tail ${STREAM} --bogus)
run_expect(64 ${LACOBS} tail ${STREAM} --interval notanumber)
run_expect(66 ${LACOBS} tail ${WORK_DIR}/does_not_exist.jsonl --once)

# diff --json emits a machine-readable lac-obs-diff/1 document with the
# same exit codes as the table form.
execute_process(COMMAND ${LACOBS} diff ${BASELINE} ${BASELINE} --json
  RESULT_VARIABLE result OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT result EQUAL 0 OR NOT out MATCHES "lac-obs-diff/1"
   OR NOT out MATCHES "\"verdict\":\"ok\"")
  message(FATAL_ERROR "diff --json self-diff malformed:\n${out}\n${err}")
endif()
execute_process(COMMAND ${LACOBS} diff ${BASELINE} ${REGRESS} --json
  RESULT_VARIABLE result OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT result EQUAL 2 OR NOT out MATCHES "\"verdict\":\"regress\"")
  message(FATAL_ERROR "diff --json regress malformed (exit ${result}):\n${out}")
endif()

# Forward compatibility: a report from a newer schema generation loads
# best-effort with a stderr warning, never a crash.
file(WRITE "${WORK_DIR}/future_report.json" [[{"schema":"lac-obs-report/3","name":"future","obs_enabled":true,"meta":{},"trace":[{"name":"planner.plan","seconds":0.1,"children":[]}],"metrics":{"counters":{"lac.rounds":1},"gauges":{},"histograms":{}},"dropped_root_spans":0}]])
execute_process(COMMAND ${LACOBS} summary ${WORK_DIR}/future_report.json
  RESULT_VARIABLE result OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "summary crashed on a newer report schema: ${err}")
endif()
if(NOT err MATCHES "upgrade")
  message(FATAL_ERROR "summary did not warn about the newer schema:\n${err}")
endif()

# history-add appends compact per-run records; history renders the trend.
set(HISTORY "${WORK_DIR}/history.jsonl")
run_expect(0 ${LACOBS} history-add ${WORK_DIR}/folded.json
  --file ${HISTORY} --commit 0123456789abcdef --seconds 1.5)
run_expect(0 ${LACOBS} history-add ${WORK_DIR}/folded.json
  --file ${HISTORY} --commit fedcba9876543210 --seconds 1.6)
execute_process(COMMAND ${LACOBS} history ${HISTORY}
  RESULT_VARIABLE result OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT result EQUAL 0 OR NOT out MATCHES "0123456789"
   OR NOT out MATCHES "delta%")
  message(FATAL_ERROR "history trend view malformed:\n${out}\n${err}")
endif()
run_expect(0 ${LACOBS} history ${HISTORY} -n 1)
run_expect(64 ${LACOBS} history ${HISTORY} -n 0)
run_expect(64 ${LACOBS} history-add)
run_expect(64 ${LACOBS} history-add ${WORK_DIR}/folded.json --seconds bogus)
run_expect(66 ${LACOBS} history ${WORK_DIR}/does_not_exist.jsonl)
run_expect(66 ${LACOBS} history-add ${WORK_DIR}/does_not_exist.json
  --file ${HISTORY})

message(STATUS "lacobs CLI contract ok")
