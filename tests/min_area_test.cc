#include <gtest/gtest.h>

#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/wd_matrices.h"
#include "tests/test_util.h"

namespace lac::retime {
namespace {

std::vector<double> uniform_weights(const RetimingGraph& g) {
  return std::vector<double>(static_cast<std::size_t>(g.num_vertices()), 1.0);
}

TEST(MinArea, CorrelatorAtTightPeriod) {
  const auto g = test::correlator_graph();
  const auto wd = WdMatrices::compute(g);
  const auto cs = build_constraints(g, wd, to_decips(7.0));
  const auto r = min_area_retiming(g, cs);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(g.is_legal_retiming(*r));
  EXPECT_LE(g.period_after_ps(*r), 7.0 + 1e-9);
  // Total registers: min possible at T=7 is 3 (cycle weight invariant).
  std::int64_t total = 0;
  for (int e = 0; e < g.num_edges(); ++e) total += g.retimed_weight(e, *r);
  EXPECT_EQ(total, 3);
}

TEST(MinArea, InfeasiblePeriodReturnsNullopt) {
  // Register-free pinned pipeline: pi -> a(5) -> b(5) -> po.  Any period
  // below 10 needs a register that I/O pinning forbids creating.
  RetimingGraph g;
  const auto t = tile::TileId::invalid();
  const int pi = g.add_vertex(VertexKind::kFunctional, 0.0, t);
  const int a = g.add_vertex(VertexKind::kFunctional, 5.0, t);
  const int b = g.add_vertex(VertexKind::kFunctional, 5.0, t);
  const int po = g.add_vertex(VertexKind::kFunctional, 0.0, t);
  g.add_edge(pi, a, 0);
  g.add_edge(a, b, 0);
  g.add_edge(b, po, 0);
  g.mark_io(pi);
  g.mark_io(po);
  const auto wd = WdMatrices::compute(g);
  const auto cs = build_constraints(g, wd, to_decips(6.0));
  EXPECT_FALSE(min_area_retiming(g, cs).has_value());
}

TEST(MinArea, MatchesBruteForceUniform) {
  Rng rng(55);
  int compared = 0;
  for (int trial = 0; trial < 30; ++trial) {
    auto g = test::random_retiming_graph(rng, 4, 4, /*max_w=*/1);
    const auto wd = WdMatrices::compute(g);
    // A period halfway between min and init keeps the instance non-trivial.
    const double t =
        (from_decips(wd.max_vertex_delay_decips()) + wd.t_init_ps()) / 2.0;
    const auto cs = build_constraints(g, wd, to_decips(t));
    const auto weights = uniform_weights(g);
    const auto r = weighted_min_area_retiming(g, cs, weights);
    const auto brute = test::brute_force_min_area(g, from_decips(to_decips(t)),
                                                  weights, /*bound=*/3);
    if (!r.has_value()) {
      EXPECT_FALSE(brute.has_value()) << "flow infeasible but brute found one";
      continue;
    }
    ASSERT_TRUE(brute.has_value());
    const double flow_cost = weighted_ff_area(g, *r, weights);
    EXPECT_NEAR(flow_cost, *brute, 1e-6) << "trial " << trial;
    ++compared;
  }
  EXPECT_GT(compared, 10);  // most instances must be feasible
}

TEST(MinArea, MatchesBruteForceWeighted) {
  Rng rng(66);
  int compared = 0;
  for (int trial = 0; trial < 30; ++trial) {
    auto g = test::random_retiming_graph(rng, 4, 3, /*max_w=*/1);
    const auto wd = WdMatrices::compute(g);
    const double t =
        (from_decips(wd.max_vertex_delay_decips()) + wd.t_init_ps()) / 2.0;
    const auto cs = build_constraints(g, wd, to_decips(t));
    std::vector<double> weights(static_cast<std::size_t>(g.num_vertices()));
    for (auto& w : weights) w = 0.25 + rng.uniform_real() * 4.0;
    const auto r = weighted_min_area_retiming(g, cs, weights);
    const auto brute = test::brute_force_min_area(g, from_decips(to_decips(t)),
                                                  weights, /*bound=*/3);
    if (!r.has_value()) {
      EXPECT_FALSE(brute.has_value());
      continue;
    }
    ASSERT_TRUE(brute.has_value());
    // Quantisation of weights can perturb tie-breaking; the flow optimum
    // must still be within a hair of the true optimum.
    const double flow_cost = weighted_ff_area(g, *r, weights);
    EXPECT_LE(flow_cost, *brute * 1.001 + 1e-6) << "trial " << trial;
    EXPECT_GE(flow_cost, *brute - 1e-6) << "trial " << trial;
    ++compared;
  }
  EXPECT_GT(compared, 10);
}

TEST(MinArea, RespectsClockConstraintsAcrossSweep) {
  Rng rng(77);
  auto g = test::random_retiming_graph(rng, 12, 16);
  const auto wd = WdMatrices::compute(g);
  const auto lo = wd.max_vertex_delay_decips();
  const auto hi = to_decips(wd.t_init_ps());
  for (int step = 0; step <= 4; ++step) {
    const std::int32_t T = lo + (hi - lo) * step / 4;
    const auto cs = build_constraints(g, wd, T);
    const auto r = min_area_retiming(g, cs);
    if (!r.has_value()) continue;  // below T_min
    EXPECT_TRUE(g.is_legal_retiming(*r));
    EXPECT_LE(g.period_after_ps(*r), from_decips(T) + 1e-9);
  }
}

TEST(MinArea, NeverWorseThanIdentityAtTInit) {
  Rng rng(88);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = test::random_retiming_graph(rng, 8, 10);
    const auto wd = WdMatrices::compute(g);
    const auto cs = build_constraints(g, wd, to_decips(wd.t_init_ps()));
    const auto r = min_area_retiming(g, cs);
    ASSERT_TRUE(r.has_value());
    std::int64_t after = 0;
    for (int e = 0; e < g.num_edges(); ++e) after += g.retimed_weight(e, *r);
    EXPECT_LE(after, g.total_weight());
  }
}

TEST(MinArea, HostLabelIsZero) {
  const auto g = test::correlator_graph();
  const auto wd = WdMatrices::compute(g);
  const auto cs = build_constraints(g, wd, to_decips(8.0));
  const auto r = min_area_retiming(g, cs);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[static_cast<std::size_t>(g.host())], 0);
}

TEST(MinArea, RejectsNonPositiveWeights) {
  const auto g = test::correlator_graph();
  const auto wd = WdMatrices::compute(g);
  const auto cs = build_constraints(g, wd, to_decips(10.0));
  std::vector<double> weights(static_cast<std::size_t>(g.num_vertices()), 1.0);
  weights[2] = 0.0;
  EXPECT_THROW(weighted_min_area_retiming(g, cs, weights), CheckError);
}

TEST(MinArea, IoPinningRespected) {
  RetimingGraph g;
  const auto t = tile::TileId::invalid();
  const int pi = g.add_vertex(VertexKind::kFunctional, 0.0, t);
  const int a = g.add_vertex(VertexKind::kFunctional, 5.0, t);
  const int po = g.add_vertex(VertexKind::kFunctional, 0.0, t);
  g.add_edge(pi, a, 1);
  g.add_edge(a, po, 1);
  g.mark_io(pi);
  g.mark_io(po);
  const auto wd = WdMatrices::compute(g);
  const auto cs = build_constraints(g, wd, to_decips(5.0));
  const auto r = min_area_retiming(g, cs);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[static_cast<std::size_t>(pi)], 0);
  EXPECT_EQ((*r)[static_cast<std::size_t>(po)], 0);
}

}  // namespace
}  // namespace lac::retime
