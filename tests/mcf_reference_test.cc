// Differential test harness for graph::MinCostFlow (the tree-drain SSP
// kernel): a small, obviously-correct Bellman–Ford successive-shortest-path
// reference implementation is fuzzed against the production solver on
// hundreds of randomized instances — varying sizes, negative costs,
// infinite-capacity arcs and unroutable supplies — and must agree on
//   * feasibility (nullopt vs solution),
//   * the exact optimum objective `total_cost_exact` (unique even though
//     optimal flows are not), and
//   * `residual_distances_from` — the canonical distance vector the
//     retiming layer derives its labels from.  Every optimal flow of an
//     instance yields the same vector, so the production solver and the
//     reference must match element for element even when their flows
//     differ.
// The agreement is checked for cold solve(), repeated solve(), and warm
// resolve() after random supply/cost edit sequences (the reference always
// re-solves from scratch; the production solver warm-starts).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "base/rng.h"
#include "graph/min_cost_flow.h"

namespace lac::graph {
namespace {

// ------------------------------------------------------------- reference
//
// Textbook successive shortest paths: repeatedly pick the lowest-index
// node with positive excess, find a shortest path (plain Bellman–Ford over
// the residual network, negative costs allowed) to the nearest demand
// node, and augment by the bottleneck.  No potentials, no Dijkstra, no
// warm state — slow and simple on purpose.
class ReferenceMcf {
 public:
  struct Arc {
    int u = 0, v = 0;
    std::int64_t cap = 0, cost = 0;
  };

  ReferenceMcf(int n, std::vector<Arc> arcs, std::vector<std::int64_t> supply)
      : n_(n), arcs_(std::move(arcs)), supply_(std::move(supply)) {
    for (const Arc& a : arcs_) {
      res_to_.push_back(a.v);
      res_cap_.push_back(a.cap);
      res_cost_.push_back(a.cost);
      res_to_.push_back(a.u);
      res_cap_.push_back(0);
      res_cost_.push_back(-a.cost);
    }
  }

  // Exact optimum objective, or nullopt when the instance is infeasible or
  // has a negative residual cycle at the zero flow (the production solver
  // treats both as "no solution").
  std::optional<std::int64_t> solve() {
    if (has_negative_cycle()) return std::nullopt;
    std::vector<std::int64_t> excess = supply_;
    while (true) {
      int source = -1;
      for (int v = 0; v < n_; ++v)
        if (excess[static_cast<std::size_t>(v)] > 0) {
          source = v;
          break;
        }
      if (source == -1) break;

      std::vector<std::int64_t> dist;
      std::vector<int> parent;
      bellman_ford({source}, dist, parent);
      int sink = -1;
      for (int v = 0; v < n_; ++v) {
        if (excess[static_cast<std::size_t>(v)] >= 0) continue;
        if (dist[static_cast<std::size_t>(v)] >= MinCostFlow::kUnreachable)
          continue;
        if (sink == -1 ||
            dist[static_cast<std::size_t>(v)] <
                dist[static_cast<std::size_t>(sink)])
          sink = v;
      }
      if (sink == -1) return std::nullopt;  // infeasible

      std::int64_t push = std::min(excess[static_cast<std::size_t>(source)],
                                   -excess[static_cast<std::size_t>(sink)]);
      for (int v = sink; v != source;) {
        const int a = parent[static_cast<std::size_t>(v)];
        push = std::min(push, res_cap_[static_cast<std::size_t>(a)]);
        v = res_to_[static_cast<std::size_t>(a ^ 1)];
      }
      for (int v = sink; v != source;) {
        const int a = parent[static_cast<std::size_t>(v)];
        res_cap_[static_cast<std::size_t>(a)] -= push;
        res_cap_[static_cast<std::size_t>(a ^ 1)] += push;
        v = res_to_[static_cast<std::size_t>(a ^ 1)];
      }
      excess[static_cast<std::size_t>(source)] -= push;
      excess[static_cast<std::size_t>(sink)] += push;
    }

    std::int64_t total = 0;
    for (std::size_t i = 0; i < arcs_.size(); ++i)
      total += arcs_[i].cost * res_cap_[2 * i + 1];  // flow = backward cap
    return total;
  }

  // Shortest distances from `root` over the final residual network in
  // original costs — the reference for canonicality.  Only valid after a
  // successful solve().
  std::vector<std::int64_t> residual_distances_from(int root) {
    std::vector<std::int64_t> dist;
    std::vector<int> parent;
    bellman_ford({root}, dist, parent);
    for (std::int64_t& d : dist)
      if (d >= MinCostFlow::kUnreachable) d = MinCostFlow::kUnreachable;
    return dist;
  }

 private:
  // Bellman–Ford over residual arcs with capacity, |V|-1 rounds (the SSP
  // invariant keeps the residual network free of negative cycles after a
  // clean start, so this always converges to true distances).
  void bellman_ford(std::initializer_list<int> roots,
                    std::vector<std::int64_t>& dist,
                    std::vector<int>& parent) const {
    dist.assign(static_cast<std::size_t>(n_), MinCostFlow::kUnreachable);
    parent.assign(static_cast<std::size_t>(n_), -1);
    for (const int r : roots) dist[static_cast<std::size_t>(r)] = 0;
    for (int round = 0; round + 1 < n_; ++round) {
      bool changed = false;
      for (std::size_t a = 0; a < res_to_.size(); ++a) {
        if (res_cap_[a] <= 0) continue;
        const int u = res_to_[a ^ 1];
        const int v = res_to_[a];
        if (dist[static_cast<std::size_t>(u)] >= MinCostFlow::kUnreachable)
          continue;
        const std::int64_t nd = dist[static_cast<std::size_t>(u)] +
                                res_cost_[a];
        if (nd < dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] = nd;
          parent[static_cast<std::size_t>(v)] = static_cast<int>(a);
          changed = true;
        }
      }
      if (!changed) break;
    }
  }

  bool has_negative_cycle() const {
    // One more Bellman–Ford round from everywhere: any further relaxation
    // after |V| rounds certifies a negative cycle over cap>0 arcs.
    std::vector<std::int64_t> dist(static_cast<std::size_t>(n_), 0);
    for (int round = 0; round < n_; ++round) {
      bool changed = false;
      for (std::size_t a = 0; a < res_to_.size(); ++a) {
        if (res_cap_[a] <= 0) continue;
        const int u = res_to_[a ^ 1];
        const int v = res_to_[a];
        if (dist[static_cast<std::size_t>(u)] + res_cost_[a] <
            dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + res_cost_[a];
          changed = true;
        }
      }
      if (!changed) return false;
    }
    return true;
  }

  int n_;
  std::vector<Arc> arcs_;
  std::vector<std::int64_t> supply_;
  // Paired residual arcs, mirroring the production layout.
  std::vector<int> res_to_;
  std::vector<std::int64_t> res_cap_;
  std::vector<std::int64_t> res_cost_;
};

// ------------------------------------------------------------ fuzz input

struct FuzzInstance {
  int n = 0;
  std::vector<ReferenceMcf::Arc> arcs;
  std::vector<std::int64_t> supply;

  // `connected` adds high-cost host arcs through node 0 so the instance
  // is always routable; without them disconnected (infeasible) instances
  // are common.  `min_cost` < 0 admits negative arc costs.
  static FuzzInstance make(Rng& rng, bool connected, std::int64_t min_cost) {
    FuzzInstance ins;
    ins.n = 2 + static_cast<int>(rng.uniform(18));
    const int m = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(
        2 * ins.n + 1)));
    for (int k = 0; k < m; ++k) {
      const int u =
          static_cast<int>(rng.uniform(static_cast<std::uint64_t>(ins.n)));
      const int v =
          static_cast<int>(rng.uniform(static_cast<std::uint64_t>(ins.n)));
      if (u == v) continue;
      const bool inf_cap = rng.uniform(5) == 0;
      ins.arcs.push_back(
          {u, v,
           inf_cap ? MinCostFlow::kInfCap
                   : 1 + static_cast<std::int64_t>(rng.uniform(9)),
           rng.uniform_int(min_cost, 9)});
    }
    if (connected) {
      for (int v = 1; v < ins.n; ++v) {
        ins.arcs.push_back({v, 0, MinCostFlow::kInfCap, 60});
        ins.arcs.push_back({0, v, MinCostFlow::kInfCap, 60});
      }
    }
    ins.supply.assign(static_cast<std::size_t>(ins.n), 0);
    ins.randomize_supplies(rng);
    return ins;
  }

  void randomize_supplies(Rng& rng) {
    std::int64_t total = 0;
    for (int v = 1; v < n; ++v) {
      supply[static_cast<std::size_t>(v)] = rng.uniform_int(-6, 6);
      total += supply[static_cast<std::size_t>(v)];
    }
    supply[0] = -total;
  }

  [[nodiscard]] MinCostFlow build() const {
    MinCostFlow mcf(n);
    for (const auto& a : arcs) mcf.add_arc(a.u, a.v, a.cap, a.cost);
    for (int v = 0; v < n; ++v)
      mcf.set_supply(v, supply[static_cast<std::size_t>(v)]);
    return mcf;
  }

  [[nodiscard]] ReferenceMcf reference() const {
    return ReferenceMcf(n, arcs, supply);
  }
};

// Solve `ins` with the reference and compare against a production
// solution (or infeasibility) plus its canonical residual distances.
void expect_matches_reference(const FuzzInstance& ins, MinCostFlow& mcf,
                              const std::optional<MinCostFlow::Solution>& sol,
                              const char* what) {
  ReferenceMcf ref = ins.reference();
  const auto ref_cost = ref.solve();
  ASSERT_EQ(sol.has_value(), ref_cost.has_value()) << what;
  if (!sol) return;
  EXPECT_EQ(sol->total_cost_exact, *ref_cost) << what;
  // Canonicality: the distance vector over the optimal residual network is
  // a property of the instance, not of the particular optimum, so the
  // production solver (whatever flow it found) must reproduce the
  // reference's vector exactly — unreachable set included.
  const auto d = mcf.residual_distances_from(0);
  const auto ref_d = ref.residual_distances_from(0);
  ASSERT_EQ(d.size(), ref_d.size());
  for (std::size_t v = 0; v < d.size(); ++v)
    EXPECT_EQ(d[v], ref_d[v]) << what << ": residual distance to node " << v;
}

// ------------------------------------------------------------------ tests

// Cold solve() and a repeated solve() on the same instance, including
// unroutable and negative-cycle instances (both sides must return
// nullopt), negative costs and kInfCap arcs.
TEST(McfReference, ColdSolveMatchesOnRandomInstances) {
  Rng rng(20260806);
  int feasible = 0, infeasible = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const bool connected = trial % 2 == 0;
    const FuzzInstance ins = FuzzInstance::make(rng, connected, -4);
    MinCostFlow mcf = ins.build();
    const auto sol = mcf.solve();
    expect_matches_reference(ins, mcf, sol, "cold solve");
    sol ? ++feasible : ++infeasible;

    // solve() is idempotent: a second cold solve agrees with the first
    // (and therefore with the reference) bit for bit.
    const auto again = mcf.solve();
    ASSERT_EQ(again.has_value(), sol.has_value());
    if (sol) {
      EXPECT_EQ(again->total_cost_exact, sol->total_cost_exact);
      EXPECT_EQ(again->flow, sol->flow);
    }
  }
  // The fuzz is vacuous if either side never occurs.
  EXPECT_GT(feasible, 20);
  EXPECT_GT(infeasible, 10);
}

// Warm resolve() after random supply edit sequences: the production
// solver re-ships only the imbalance in multi-source phases; the
// reference re-solves the edited instance from scratch.
TEST(McfReference, ResolveAfterSupplyEditsMatches) {
  Rng rng(777);
  int instances = 0;
  while (instances < 40) {
    FuzzInstance ins = FuzzInstance::make(rng, /*connected=*/true, -4);
    MinCostFlow mcf = ins.build();
    if (!mcf.solve()) continue;  // negative cycle at zero flow: skip
    ++instances;
    for (int round = 0; round < 4; ++round) {
      ins.randomize_supplies(rng);
      for (int v = 0; v < ins.n; ++v)
        mcf.set_supply(v, ins.supply[static_cast<std::size_t>(v)]);
      const auto sol = mcf.resolve();
      EXPECT_TRUE(mcf.stats().warm);
      expect_matches_reference(ins, mcf, sol, "supply-edit resolve");
      if (!sol) break;
    }
  }
}

// Warm resolve() after mixed supply and cost edit sequences (cost edits
// exercise the cancel-and-reroute repair path).  Costs stay nonnegative
// here so edits cannot manufacture a negative cycle mid-session, which
// the warm path is documented to punt to a cold solve on.
TEST(McfReference, ResolveAfterMixedEditSequencesMatches) {
  Rng rng(31337);
  int instances = 0, repaired = 0;
  while (instances < 40) {
    FuzzInstance ins = FuzzInstance::make(rng, /*connected=*/true, 0);
    MinCostFlow mcf = ins.build();
    if (!mcf.solve()) continue;
    ++instances;
    for (int round = 0; round < 5; ++round) {
      switch (rng.uniform(3)) {
        case 0:  // supply edit
          ins.randomize_supplies(rng);
          for (int v = 0; v < ins.n; ++v)
            mcf.set_supply(v, ins.supply[static_cast<std::size_t>(v)]);
          break;
        case 1:  // cost edits on a few arcs
          for (int k = 0; k < 3 && !ins.arcs.empty(); ++k) {
            const auto i = static_cast<std::size_t>(
                rng.uniform(static_cast<std::uint64_t>(ins.arcs.size())));
            ins.arcs[i].cost = rng.uniform_int(0, 9);
            mcf.update_arc_cost(static_cast<int>(i), ins.arcs[i].cost);
          }
          break;
        default:  // no-op round: resolve with nothing changed
          break;
      }
      const auto sol = mcf.resolve();
      repaired += mcf.stats().repaired_arcs;
      expect_matches_reference(ins, mcf, sol, "mixed-edit resolve");
      if (!sol) break;
    }
  }
  // The cancel-and-reroute repair path must actually have been exercised.
  EXPECT_GT(repaired, 0);
}

}  // namespace
}  // namespace lac::graph
