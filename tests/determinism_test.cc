// Thread-count invariance of the whole planning pipeline: for Table-1
// circuits, every PlanResult counter, both retimings' register placements,
// and the structured run report (with wall-clock fields stripped) must be
// byte-identical whether the pipeline runs on 1, 2, or 8 threads.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "bench89/suite.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/span.h"
#include "planner/interconnect_planner.h"

namespace lac::planner {
namespace {

// Drops every object member whose key mentions wall-clock time ("seconds"
// span fields, "*_seconds" metric names) or the resident set ("rss" —
// machine-dependent, like timings); all other structure, order and values
// are preserved.  Span allocation deltas (alloc_bytes etc.) are
// deliberately KEPT: their thread-count invariance is part of what this
// test asserts.
obs::json::Value strip_times(const obs::json::Value& v) {
  obs::json::Value out = v;
  out.array.clear();
  out.object.clear();
  for (const auto& e : v.array) out.array.push_back(strip_times(e));
  for (const auto& [key, val] : v.object) {
    if (key.find("seconds") != std::string::npos) continue;
    if (key.find("rss") != std::string::npos) continue;
    out.object.emplace_back(key, strip_times(val));
  }
  return out;
}

struct Snapshot {
  PlanResult res;
  std::string report;  // serialized, time-stripped
};

Snapshot run_plan(const char* circuit, int threads, bool incremental = true) {
  const auto& entry = bench89::entry_by_name(circuit);
  const auto nl = bench89::load(entry);
  obs::ScopedEnable on(true);
  obs::Metrics::instance().reset();
  (void)obs::take_finished_roots();

  PlannerConfig cfg;
  cfg.run.seed = 7;
  cfg.run.exec.threads = threads;
  cfg.num_blocks = entry.recommended_blocks;
  cfg.lac_opt.incremental = incremental;
  const InterconnectPlanner planner(cfg);

  Snapshot snap{planner.plan(nl),
                obs::json::serialize(
                    strip_times(obs::build_report("determinism")))};
  return snap;
}

void expect_identical_results(const PlanResult& x, const PlanResult& y) {
  // Timing landmarks and constraint counts, bit-exact.
  EXPECT_EQ(x.t_init_ps, y.t_init_ps);
  EXPECT_EQ(x.t_min_ps, y.t_min_ps);
  EXPECT_EQ(x.t_clk_ps, y.t_clk_ps);
  EXPECT_EQ(x.clock_constraints, y.clock_constraints);
  EXPECT_EQ(x.clock_constraints_unpruned, y.clock_constraints_unpruned);

  // Routing is speculative under threads but must commit identically.
  EXPECT_EQ(x.routing.total_wirelength_um, y.routing.total_wirelength_um);
  EXPECT_EQ(x.routing.overflowed_edges, y.routing.overflowed_edges);
  EXPECT_EQ(x.routing.max_usage, y.routing.max_usage);
  EXPECT_EQ(x.routing.nets_rerouted, y.routing.nets_rerouted);
  EXPECT_EQ(x.routing.ripup_rounds_used, y.routing.ripup_rounds_used);
  EXPECT_EQ(x.routing.usage_histogram, y.routing.usage_histogram);
  EXPECT_EQ(x.repeaters, y.repeaters);
  EXPECT_EQ(x.interconnect_units, y.interconnect_units);

  // Both retimings: the full retiming vectors and area accounting.
  EXPECT_EQ(x.min_area.r, y.min_area.r);
  EXPECT_EQ(x.lac.r, y.lac.r);
  EXPECT_EQ(x.min_area.report.n_foa, y.min_area.report.n_foa);
  EXPECT_EQ(x.min_area.report.n_f, y.min_area.report.n_f);
  EXPECT_EQ(x.min_area.report.n_fn, y.min_area.report.n_fn);
  EXPECT_EQ(x.lac.report.n_foa, y.lac.report.n_foa);
  EXPECT_EQ(x.lac.report.n_f, y.lac.report.n_f);
  EXPECT_EQ(x.lac.report.n_fn, y.lac.report.n_fn);
  EXPECT_EQ(x.lac.report.ac, y.lac.report.ac);
  EXPECT_EQ(x.lac.n_wr, y.lac.n_wr);

  // Per-round LAC quality trajectory (effort fields — augmentations,
  // warm, times — are allowed to differ between solver modes).
  ASSERT_EQ(x.lac.rounds.size(), y.lac.rounds.size());
  for (std::size_t i = 0; i < x.lac.rounds.size(); ++i) {
    EXPECT_EQ(x.lac.rounds[i].n_foa, y.lac.rounds[i].n_foa);
    EXPECT_EQ(x.lac.rounds[i].n_f, y.lac.rounds[i].n_f);
    EXPECT_EQ(x.lac.rounds[i].best_n_foa, y.lac.rounds[i].best_n_foa);
    EXPECT_EQ(x.lac.rounds[i].improved, y.lac.rounds[i].improved);
  }
}

void expect_identical(const Snapshot& a, const Snapshot& b,
                      const char* circuit, int threads) {
  SCOPED_TRACE(std::string(circuit) + " @ " + std::to_string(threads) +
               " threads");
  expect_identical_results(a.res, b.res);

  // The whole observability record — span tree shape, annotations,
  // counters, histogram counts — byte-identical once times are stripped.
  EXPECT_EQ(a.report, b.report);
}

// The mem.* gauges from a stripped report (rss readings are already
// stripped as machine-dependent).
std::map<std::string, double> mem_gauges(const std::string& report) {
  std::map<std::string, double> out;
  const auto doc = obs::json::parse(report);
  if (!doc.has_value()) return out;
  if (const auto* g = doc->at_path({"metrics", "gauges"});
      g != nullptr && g->is_object())
    for (const auto& [k, v] : g->object)
      if (k.rfind("mem.", 0) == 0) out.emplace(k, v.num);
  return out;
}

class Determinism : public ::testing::TestWithParam<const char*> {};

TEST_P(Determinism, IdenticalAcrossThreadCounts) {
  const char* circuit = GetParam();
  const Snapshot base = run_plan(circuit, 1);
  EXPECT_FALSE(base.report.empty());
  for (const int w : {2, 8}) {
    const Snapshot got = run_plan(circuit, w);
    expect_identical(base, got, circuit, w);
  }
}

// The warm-started incremental LAC solver (the pipeline default, first
// plan) must produce the same planning result as cold per-round re-solves
// — at any thread count.  Only PlanResult fields are compared: the obs
// reports legitimately differ in mcf.* solver-effort counters (the CI
// cross-mode gate diffs them with --ignore mcf.).
TEST_P(Determinism, WarmSolverMatchesColdSolver) {
  const char* circuit = GetParam();
  const Snapshot warm = run_plan(circuit, 1, /*incremental=*/true);
  for (const int w : {1, 4}) {
    SCOPED_TRACE(std::string(circuit) + " cold @ " + std::to_string(w) +
                 " threads");
    const Snapshot cold = run_plan(circuit, w, /*incremental=*/false);
    expect_identical_results(warm.res, cold.res);
    // Logical-size memory gauges must agree too: the MCF network gauge is
    // sampled at construction, before warm and cold solves diverge.
    EXPECT_EQ(mem_gauges(warm.report), mem_gauges(cold.report));
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, Determinism,
                         ::testing::Values("y298", "y386", "y400"));

}  // namespace
}  // namespace lac::planner
