#include <gtest/gtest.h>

#include <algorithm>

#include "base/check.h"
#include "base/rng.h"
#include "graph/dag.h"
#include "graph/diff_constraints.h"
#include "graph/min_cost_flow.h"

namespace lac::graph {
namespace {

// ---------------------------------------------------------------- topo/DAG

TEST(Dag, TopoOrderOfChain) {
  const auto order = topo_order(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<int>{0, 1, 2}));
}

TEST(Dag, DetectsCycle) {
  EXPECT_FALSE(topo_order(3, {{0, 1}, {1, 2}, {2, 0}}).has_value());
  EXPECT_FALSE(topo_order(1, {{0, 0}}).has_value());
}

TEST(Dag, TopoOrderRespectsAllArcs) {
  const std::vector<std::pair<int, int>> arcs{{0, 2}, {1, 2}, {2, 3}, {1, 3}};
  const auto order = topo_order(4, arcs);
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>((*order)[static_cast<std::size_t>(i)])] = i;
  for (const auto& [a, b] : arcs) EXPECT_LT(pos[static_cast<std::size_t>(a)], pos[static_cast<std::size_t>(b)]);
}

TEST(Dag, LongestPathVertexWeights) {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 with delays 1, 5, 2, 1.
  const auto lp = longest_path_to(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}},
                                  {1.0, 5.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(lp[0], 1.0);
  EXPECT_DOUBLE_EQ(lp[1], 6.0);
  EXPECT_DOUBLE_EQ(lp[2], 3.0);
  EXPECT_DOUBLE_EQ(lp[3], 7.0);
}

TEST(Dag, LongestPathIsolatedVertex) {
  const auto lp = longest_path_to(2, {}, {4.0, 2.0});
  EXPECT_DOUBLE_EQ(lp[0], 4.0);
  EXPECT_DOUBLE_EQ(lp[1], 2.0);
}

TEST(Dag, LongestPathThrowsOnCycle) {
  EXPECT_THROW(longest_path_to(2, {{0, 1}, {1, 0}}, {1.0, 1.0}),
               lac::CheckError);
}

// ------------------------------------------------------ difference systems

TEST(DiffConstraints, SimpleFeasible) {
  DiffConstraints dc(2);
  dc.add(0, 1, 3);   // x0 - x1 <= 3
  dc.add(1, 0, -1);  // x1 - x0 <= -1  =>  x0 >= x1 + 1
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_LE((*sol)[0] - (*sol)[1], 3);
  EXPECT_LE((*sol)[1] - (*sol)[0], -1);
}

TEST(DiffConstraints, InfeasibleCycle) {
  DiffConstraints dc(2);
  dc.add(0, 1, -1);  // x0 < x1
  dc.add(1, 0, -1);  // x1 < x0
  EXPECT_FALSE(dc.feasible());
}

TEST(DiffConstraints, EqualityViaTwoInequalities) {
  DiffConstraints dc(3);
  dc.add(0, 1, 0);
  dc.add(1, 0, 0);  // x0 == x1
  dc.add(2, 0, -5);  // x2 <= x0 - 5
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ((*sol)[0], (*sol)[1]);
  EXPECT_LE((*sol)[2], (*sol)[0] - 5);
}

TEST(DiffConstraints, NoConstraintsTriviallyFeasible) {
  DiffConstraints dc(4);
  ASSERT_TRUE(dc.feasible());
}

TEST(DiffConstraints, RandomisedAgainstSatisfactionCheck) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform(6));
    DiffConstraints dc(n);
    std::vector<std::tuple<int, int, std::int64_t>> cons;
    for (int k = 0; k < n * 2; ++k) {
      const int u = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      const int v = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      if (u == v) continue;
      const std::int64_t c = rng.uniform_int(-2, 4);
      dc.add(u, v, c);
      cons.emplace_back(u, v, c);
    }
    const auto sol = dc.solve();
    if (sol) {
      for (const auto& [u, v, c] : cons)
        EXPECT_LE((*sol)[static_cast<std::size_t>(u)] -
                      (*sol)[static_cast<std::size_t>(v)],
                  c);
    }
    // When infeasible we trust negative-cycle detection; feasibility of the
    // returned assignment above is the property we can check directly.
  }
}

// ----------------------------------------------------------- min-cost flow

TEST(MinCostFlow, SingleArcShipment) {
  MinCostFlow mcf(2);
  mcf.add_arc(0, 1, 10, 3);
  mcf.set_supply(0, 4);
  mcf.set_supply(1, -4);
  const auto sol = mcf.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_DOUBLE_EQ(sol->total_cost, 12.0);
  EXPECT_EQ(sol->flow[0], 4);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  MinCostFlow mcf(3);
  const int direct = mcf.add_arc(0, 2, 10, 10);
  const int via_a = mcf.add_arc(0, 1, 10, 2);
  const int via_b = mcf.add_arc(1, 2, 10, 3);
  mcf.set_supply(0, 5);
  mcf.set_supply(2, -5);
  const auto sol = mcf.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_DOUBLE_EQ(sol->total_cost, 25.0);
  EXPECT_EQ(sol->flow[static_cast<std::size_t>(direct)], 0);
  EXPECT_EQ(sol->flow[static_cast<std::size_t>(via_a)], 5);
  EXPECT_EQ(sol->flow[static_cast<std::size_t>(via_b)], 5);
}

TEST(MinCostFlow, CapacitySplitsFlow) {
  MinCostFlow mcf(3);
  const int cheap = mcf.add_arc(0, 2, 3, 1);
  const int mid = mcf.add_arc(0, 1, 10, 2);
  const int rest = mcf.add_arc(1, 2, 10, 2);
  mcf.set_supply(0, 5);
  mcf.set_supply(2, -5);
  const auto sol = mcf.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->flow[static_cast<std::size_t>(cheap)], 3);
  EXPECT_EQ(sol->flow[static_cast<std::size_t>(mid)], 2);
  EXPECT_EQ(sol->flow[static_cast<std::size_t>(rest)], 2);
  EXPECT_DOUBLE_EQ(sol->total_cost, 3.0 + 8.0);
}

TEST(MinCostFlow, InfeasibleWhenDisconnected) {
  MinCostFlow mcf(2);
  mcf.set_supply(0, 1);
  mcf.set_supply(1, -1);
  EXPECT_FALSE(mcf.solve().has_value());
}

TEST(MinCostFlow, UnboundedNegativeCycle) {
  MinCostFlow mcf(2);
  mcf.add_arc(0, 1, MinCostFlow::kInfCap, -2);
  mcf.add_arc(1, 0, MinCostFlow::kInfCap, 1);
  EXPECT_FALSE(mcf.solve().has_value());
}

TEST(MinCostFlow, NegativeCostsHandled) {
  MinCostFlow mcf(3);
  mcf.add_arc(0, 1, 5, -4);
  mcf.add_arc(1, 2, 5, 1);
  mcf.set_supply(0, 2);
  mcf.set_supply(2, -2);
  const auto sol = mcf.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_DOUBLE_EQ(sol->total_cost, -6.0);
}

TEST(MinCostFlow, SuppliesMustBalance) {
  MinCostFlow mcf(2);
  mcf.set_supply(0, 1);
  EXPECT_THROW(mcf.solve(), lac::CheckError);
}

TEST(MinCostFlow, ZeroSupplyIsFreeAndEmpty) {
  MinCostFlow mcf(3);
  mcf.add_arc(0, 1, 4, 7);
  const auto sol = mcf.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_DOUBLE_EQ(sol->total_cost, 0.0);
  EXPECT_EQ(sol->flow[0], 0);
}

TEST(MinCostFlow, PotentialsSatisfyReducedCostOptimality) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 3 + static_cast<int>(rng.uniform(5));
    MinCostFlow mcf(n);
    struct ArcRec { int u, v; std::int64_t cap, cost; int idx; };
    std::vector<ArcRec> arcs;
    for (int k = 0; k < 3 * n; ++k) {
      const int u = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      const int v = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      if (u == v) continue;
      const std::int64_t cap = 1 + static_cast<std::int64_t>(rng.uniform(9));
      const std::int64_t cost = rng.uniform_int(0, 9);
      arcs.push_back({u, v, cap, cost, mcf.add_arc(u, v, cap, cost)});
    }
    // Host-style connectivity so every instance is feasible.
    for (int v = 1; v < n; ++v) {
      arcs.push_back({v, 0, MinCostFlow::kInfCap, 50,
                      mcf.add_arc(v, 0, MinCostFlow::kInfCap, 50)});
      arcs.push_back({0, v, MinCostFlow::kInfCap, 50,
                      mcf.add_arc(0, v, MinCostFlow::kInfCap, 50)});
    }
    std::vector<std::int64_t> supply(static_cast<std::size_t>(n), 0);
    std::int64_t total = 0;
    for (int v = 1; v < n; ++v) {
      supply[static_cast<std::size_t>(v)] = rng.uniform_int(-5, 5);
      mcf.set_supply(v, supply[static_cast<std::size_t>(v)]);
      total += supply[static_cast<std::size_t>(v)];
    }
    supply[0] = -total;
    mcf.set_supply(0, -total);
    const auto sol = mcf.solve();
    ASSERT_TRUE(sol.has_value());
    // Complementary slackness: forward arc with residual capacity has
    // nonnegative reduced cost; arc with positive flow has nonpositive.
    for (const auto& a : arcs) {
      const std::int64_t rc = a.cost + sol->potential[static_cast<std::size_t>(a.u)] -
                              sol->potential[static_cast<std::size_t>(a.v)];
      const std::int64_t f = sol->flow[static_cast<std::size_t>(a.idx)];
      if (f < a.cap) {
        EXPECT_GE(rc, 0) << "arc " << a.u << "->" << a.v;
      }
      if (f > 0) {
        EXPECT_LE(rc, 0) << "arc " << a.u << "->" << a.v;
      }
    }
    // Conservation: outflow - inflow equals the node supply everywhere.
    std::vector<std::int64_t> net(static_cast<std::size_t>(n), 0);
    for (const auto& a : arcs) {
      net[static_cast<std::size_t>(a.u)] += sol->flow[static_cast<std::size_t>(a.idx)];
      net[static_cast<std::size_t>(a.v)] -= sol->flow[static_cast<std::size_t>(a.idx)];
    }
    for (int v = 0; v < n; ++v)
      EXPECT_EQ(net[static_cast<std::size_t>(v)],
                supply[static_cast<std::size_t>(v)])
          << "node " << v;
  }
}

// Regression: solve() used to consume residual capacities without
// restoring them, so a second solve() on the same instance saw a
// saturated network and returned garbage (or infeasible).  solve() is
// now idempotent.
TEST(MinCostFlow, SolveTwiceReturnsIdenticalSolution) {
  MinCostFlow mcf(3);
  mcf.add_arc(0, 2, 3, 1);
  mcf.add_arc(0, 1, 10, 2);
  mcf.add_arc(1, 2, 10, 2);
  mcf.set_supply(0, 5);
  mcf.set_supply(2, -5);
  const auto first = mcf.solve();
  ASSERT_TRUE(first.has_value());
  const auto second = mcf.solve();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->total_cost_exact, second->total_cost_exact);
  EXPECT_EQ(first->flow, second->flow);
  EXPECT_EQ(first->potential, second->potential);
}

TEST(MinCostFlow, ExactCostIsIntegerAndMatchesDouble) {
  MinCostFlow mcf(2);
  mcf.add_arc(0, 1, 10, 3);
  mcf.set_supply(0, 4);
  mcf.set_supply(1, -4);
  const auto sol = mcf.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->total_cost_exact, 12);
  EXPECT_DOUBLE_EQ(sol->total_cost,
                   static_cast<double>(sol->total_cost_exact));
}

namespace {

// One host-connected random instance materialised into any number of
// MinCostFlow objects, so a warm trajectory can be compared against a
// cold solve of the same final state.
struct RandomInstance {
  struct ArcRec { int u, v; std::int64_t cap, cost; };
  int n = 0;
  std::vector<ArcRec> arcs;
  std::vector<std::int64_t> supply;

  static RandomInstance make(Rng& rng) {
    RandomInstance ins;
    ins.n = 3 + static_cast<int>(rng.uniform(5));
    for (int k = 0; k < 3 * ins.n; ++k) {
      const int u = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(ins.n)));
      const int v = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(ins.n)));
      if (u == v) continue;
      ins.arcs.push_back({u, v, 1 + static_cast<std::int64_t>(rng.uniform(9)),
                          rng.uniform_int(0, 9)});
    }
    for (int v = 1; v < ins.n; ++v) {
      ins.arcs.push_back({v, 0, MinCostFlow::kInfCap, 50});
      ins.arcs.push_back({0, v, MinCostFlow::kInfCap, 50});
    }
    ins.supply.assign(static_cast<std::size_t>(ins.n), 0);
    ins.randomize_supplies(rng);
    return ins;
  }

  void randomize_supplies(Rng& rng) {
    std::int64_t total = 0;
    for (int v = 1; v < n; ++v) {
      supply[static_cast<std::size_t>(v)] = rng.uniform_int(-5, 5);
      total += supply[static_cast<std::size_t>(v)];
    }
    supply[0] = -total;
  }

  [[nodiscard]] MinCostFlow build() const {
    MinCostFlow mcf(n);
    for (const ArcRec& a : arcs) mcf.add_arc(a.u, a.v, a.cap, a.cost);
    for (int v = 0; v < n; ++v)
      mcf.set_supply(v, supply[static_cast<std::size_t>(v)]);
    return mcf;
  }

  // Optimality certificate for `sol` on this instance: conservation plus
  // complementary slackness against the returned potentials.
  void check_optimal(const MinCostFlow::Solution& sol) const {
    std::vector<std::int64_t> net(static_cast<std::size_t>(n), 0);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      const ArcRec& a = arcs[i];
      const std::int64_t f = sol.flow[i];
      ASSERT_GE(f, 0);
      ASSERT_LE(f, a.cap);
      net[static_cast<std::size_t>(a.u)] += f;
      net[static_cast<std::size_t>(a.v)] -= f;
      const std::int64_t rc = a.cost + sol.potential[static_cast<std::size_t>(a.u)] -
                              sol.potential[static_cast<std::size_t>(a.v)];
      if (f < a.cap) EXPECT_GE(rc, 0) << "arc " << a.u << "->" << a.v;
      if (f > 0) EXPECT_LE(rc, 0) << "arc " << a.u << "->" << a.v;
    }
    for (int v = 0; v < n; ++v)
      EXPECT_EQ(net[static_cast<std::size_t>(v)],
                supply[static_cast<std::size_t>(v)]) << "node " << v;
  }
};

}  // namespace

// Warm resolve() after supply changes must land on an exact optimum of
// the new instance — same objective as a cold solve, with a full
// optimality certificate — across many random instances and several
// consecutive supply updates per instance.
TEST(MinCostFlow, ResolveAfterSupplyChangesMatchesColdSolve) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    RandomInstance ins = RandomInstance::make(rng);
    MinCostFlow warm = ins.build();
    ASSERT_TRUE(warm.solve().has_value());
    for (int round = 0; round < 4; ++round) {
      ins.randomize_supplies(rng);
      for (int v = 0; v < ins.n; ++v)
        warm.set_supply(v, ins.supply[static_cast<std::size_t>(v)]);
      const auto ws = warm.resolve();
      ASSERT_TRUE(ws.has_value());
      EXPECT_TRUE(warm.stats().warm);

      MinCostFlow cold = ins.build();
      const auto cs = cold.solve();
      ASSERT_TRUE(cs.has_value());
      EXPECT_EQ(ws->total_cost_exact, cs->total_cost_exact)
          << "trial " << trial << " round " << round;
      ins.check_optimal(*ws);
    }
  }
}

// Warm resolve() after update_arc_cost must repair reduced-cost
// violations (cancel-and-reroute) and still land on an exact optimum of
// the re-costed instance.
TEST(MinCostFlow, ResolveAfterCostUpdatesMatchesColdSolve) {
  Rng rng(202);
  for (int trial = 0; trial < 30; ++trial) {
    RandomInstance ins = RandomInstance::make(rng);
    MinCostFlow warm = ins.build();
    ASSERT_TRUE(warm.solve().has_value());
    for (int round = 0; round < 4; ++round) {
      // Re-cost a few random finite-capacity arcs (the host arcs keep
      // their big cost so feasibility is preserved).
      for (int k = 0; k < 3; ++k) {
        const std::size_t i = static_cast<std::size_t>(
            rng.uniform(static_cast<std::uint64_t>(ins.arcs.size())));
        if (ins.arcs[i].cap == MinCostFlow::kInfCap) continue;
        ins.arcs[i].cost = rng.uniform_int(0, 9);
        warm.update_arc_cost(static_cast<int>(i), ins.arcs[i].cost);
      }
      const auto ws = warm.resolve();
      ASSERT_TRUE(ws.has_value());

      MinCostFlow cold = ins.build();
      const auto cs = cold.solve();
      ASSERT_TRUE(cs.has_value());
      EXPECT_EQ(ws->total_cost_exact, cs->total_cost_exact)
          << "trial " << trial << " round " << round;
      ins.check_optimal(*ws);
    }
  }
}

// residual_distances_from returns shortest distances over the optimal
// residual network: 0 at the root, and every residual arc relaxed.
TEST(MinCostFlow, ResidualDistancesAreShortest) {
  Rng rng(303);
  for (int trial = 0; trial < 20; ++trial) {
    const RandomInstance ins = RandomInstance::make(rng);
    MinCostFlow mcf = ins.build();
    const auto sol = mcf.solve();
    ASSERT_TRUE(sol.has_value());
    const auto d = mcf.residual_distances_from(0);
    ASSERT_EQ(static_cast<int>(d.size()), ins.n);
    EXPECT_EQ(d[0], 0);
    for (std::size_t i = 0; i < ins.arcs.size(); ++i) {
      const auto& a = ins.arcs[i];
      const auto du = d[static_cast<std::size_t>(a.u)];
      const auto dv = d[static_cast<std::size_t>(a.v)];
      // Forward residual arc exists iff flow < cap; backward iff flow > 0.
      if (sol->flow[i] < a.cap && du != MinCostFlow::kUnreachable)
        EXPECT_LE(dv, du + a.cost);
      if (sol->flow[i] > 0 && dv != MinCostFlow::kUnreachable)
        EXPECT_LE(du, dv - a.cost);
    }
  }
}

}  // namespace
}  // namespace lac::graph
