// Tests for the report-analysis layer: span-tree re-hydration from
// report JSON, self time, per-name aggregation, and the critical chain.
#include <string>

#include <gtest/gtest.h>

#include "obs/analyze.h"
#include "obs/json.h"
#include "obs/report.h"

namespace lac::obs {
namespace {

SpanNode make_span(std::string name, double seconds) {
  SpanNode n;
  n.name = std::move(name);
  n.seconds = seconds;
  return n;
}

TEST(AnalyzeTest, SpanJsonRoundTrip) {
  SpanNode root = make_span("root", 2.0);
  Annotation a;
  a.key = "circuit";
  a.kind = Annotation::Kind::kString;
  a.s = "y641";
  root.annotations.push_back(a);
  root.children.push_back(make_span("child", 0.5));

  const auto back = span_from_json(span_to_json(root));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, "root");
  EXPECT_DOUBLE_EQ(back->seconds, 2.0);
  ASSERT_EQ(back->children.size(), 1u);
  EXPECT_EQ(back->children[0].name, "child");
  const Annotation* ann = back->find_annotation("circuit");
  ASSERT_NE(ann, nullptr);
  EXPECT_EQ(ann->s, "y641");
}

TEST(AnalyzeTest, SpanFromJsonRejectsNonSpans) {
  EXPECT_FALSE(span_from_json(json::Value::of(3)).has_value());
  EXPECT_FALSE(span_from_json(*json::parse("{}")).has_value());
  EXPECT_FALSE(span_from_json(*json::parse(R"({"name": 5})")).has_value());
}

TEST(AnalyzeTest, StrippedSpanComesBackWithZeroSeconds) {
  const auto v = json::parse(R"({"name": "bare"})");
  ASSERT_TRUE(v.has_value());
  const auto span = span_from_json(*v);
  ASSERT_TRUE(span.has_value());
  EXPECT_DOUBLE_EQ(span->seconds, 0.0);
}

TEST(AnalyzeTest, SelfTimeExcludesChildrenAndClampsAtZero) {
  SpanNode root = make_span("root", 1.0);
  root.children.push_back(make_span("a", 0.3));
  root.children.push_back(make_span("b", 0.5));
  EXPECT_NEAR(self_seconds(root), 0.2, 1e-12);

  // Children can exceed the parent reading by a clock quantum.
  SpanNode tight = make_span("tight", 0.1);
  tight.children.push_back(make_span("c", 0.11));
  EXPECT_DOUBLE_EQ(self_seconds(tight), 0.0);
}

TEST(AnalyzeTest, AggregateGroupsByNameAcrossRoots) {
  std::vector<SpanNode> roots;
  SpanNode r1 = make_span("plan", 1.0);
  r1.children.push_back(make_span("solve", 0.4));
  r1.children.push_back(make_span("solve", 0.2));
  roots.push_back(std::move(r1));
  roots.push_back(make_span("plan", 2.0));

  const auto stats = aggregate_spans(roots);
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by total descending: plan (3.0) before solve (0.6).
  EXPECT_EQ(stats[0].name, "plan");
  EXPECT_EQ(stats[0].count, 2);
  EXPECT_NEAR(stats[0].total_seconds, 3.0, 1e-12);
  EXPECT_NEAR(stats[0].self_seconds, 2.4, 1e-12);  // 0.4 + 2.0
  EXPECT_NEAR(stats[0].min_seconds, 1.0, 1e-12);
  EXPECT_NEAR(stats[0].max_seconds, 2.0, 1e-12);
  EXPECT_NEAR(stats[0].mean_seconds(), 1.5, 1e-12);
  EXPECT_EQ(stats[1].name, "solve");
  EXPECT_EQ(stats[1].count, 2);
  EXPECT_NEAR(stats[1].total_seconds, 0.6, 1e-12);
  EXPECT_NEAR(stats[1].self_seconds, 0.6, 1e-12);
}

TEST(AnalyzeTest, CriticalChainFollowsHottestChild) {
  std::vector<SpanNode> roots;
  roots.push_back(make_span("cold_root", 0.5));
  SpanNode hot = make_span("hot_root", 2.0);
  SpanNode mid = make_span("mid", 1.5);
  mid.children.push_back(make_span("leaf_cold", 0.1));
  mid.children.push_back(make_span("leaf_hot", 1.2));
  hot.children.push_back(std::move(mid));
  hot.children.push_back(make_span("side", 0.2));
  roots.push_back(std::move(hot));

  const auto chain = critical_chain(roots);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0]->name, "hot_root");
  EXPECT_EQ(chain[1]->name, "mid");
  EXPECT_EQ(chain[2]->name, "leaf_hot");

  EXPECT_TRUE(critical_chain({}).empty());
}

TEST(AnalyzeTest, TraceFromReportAndHasTimes) {
  const auto report = json::parse(R"({
    "schema": "lac-obs-report/1",
    "trace": [
      {"name": "a", "seconds": 1.0, "children": [{"name": "b",
       "seconds": 0.5}]},
      {"name": "c", "seconds": 2.0},
      17
    ]
  })");
  ASSERT_TRUE(report.has_value());
  const auto roots = trace_from_report(*report);
  ASSERT_EQ(roots.size(), 2u);  // the malformed entry is skipped
  EXPECT_EQ(roots[0].name, "a");
  EXPECT_EQ(roots[1].name, "c");
  EXPECT_TRUE(report_has_times(*report));

  const auto stripped = json::parse(R"({
    "trace": [{"name": "a", "children": [{"name": "b"}]}]
  })");
  ASSERT_TRUE(stripped.has_value());
  EXPECT_FALSE(report_has_times(*stripped));
  EXPECT_TRUE(trace_from_report(*json::parse("{}")).empty());
}

TEST(AnalyzeTest, V1SpansParseWithoutMemoryData) {
  // A v1 report has no per-span memory fields; parsing must succeed and
  // aggregation must not pretend any memory data exists.
  const auto report = json::parse(R"({
    "schema": "lac-obs-report/1",
    "trace": [{"name": "a", "seconds": 1.0}]
  })");
  ASSERT_TRUE(report.has_value());
  const auto roots = trace_from_report(*report);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_FALSE(roots[0].mem_valid);
  const auto stats = aggregate_spans(roots);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats[0].has_mem);
  EXPECT_EQ(stats[0].alloc_bytes, 0);
}

TEST(AnalyzeTest, V2SpanMemoryRoundTripsAndSelfAllocSubtractsChildren) {
  const auto report = json::parse(R"({
    "schema": "lac-obs-report/2",
    "trace": [
      {"name": "parent", "seconds": 1.0, "alloc_bytes": 1000,
       "freed_bytes": 400, "peak_live_bytes": 700,
       "children": [
         {"name": "kid", "seconds": 0.5, "alloc_bytes": 300,
          "freed_bytes": 100, "peak_live_bytes": 250}
       ]}
    ]
  })");
  ASSERT_TRUE(report.has_value());
  const auto roots = trace_from_report(*report);
  ASSERT_EQ(roots.size(), 1u);
  const SpanNode& parent = roots[0];
  ASSERT_TRUE(parent.mem_valid);
  EXPECT_EQ(parent.alloc_bytes, 1000);
  EXPECT_EQ(parent.freed_bytes, 400);
  EXPECT_EQ(parent.peak_live_bytes, 700);
  EXPECT_EQ(self_alloc_bytes(parent), 700);  // 1000 - kid's 300

  const auto stats = aggregate_spans(roots);
  ASSERT_EQ(stats.size(), 2u);
  for (const SpanStats& s : stats) {
    EXPECT_TRUE(s.has_mem);
    if (s.name == "parent") {
      EXPECT_EQ(s.alloc_bytes, 1000);
      EXPECT_EQ(s.self_alloc_bytes, 700);
      EXPECT_EQ(s.peak_live_bytes, 700);
    } else {
      EXPECT_EQ(s.name, "kid");
      EXPECT_EQ(s.self_alloc_bytes, 300);
    }
  }
}

}  // namespace
}  // namespace lac::obs
