#include <gtest/gtest.h>

#include <map>
#include <set>

#include "floorplan/floorplanner.h"
#include "repeater/repeater_planner.h"
#include "route/global_router.h"
#include "tile/tile_grid.h"
#include "timing/technology.h"

namespace lac::repeater {
namespace {

tile::TileGrid open_grid(Coord w = 4000, Coord h = 4000, Coord tile = 200) {
  static floorplan::Floorplan fp;
  fp.chip = Rect{{0, 0}, {w, h}};
  fp.blocks.clear();
  fp.placement.clear();
  tile::TileGridOptions opt;
  opt.tile_size = tile;
  return tile::TileGrid(fp, {}, opt);
}

route::RouteTree route_one(tile::TileGrid& grid, route::RouteRequest req) {
  route::GlobalRouter router(grid);
  return router.route_all({std::move(req)})[0];
}

// Max distance between consecutive repeaters (or terminals) along a path.
double max_stage_length(const route::RouteTree& tree,
                        const BufferedNet& bnet, double step) {
  std::set<std::pair<int, int>> rep;
  for (const auto& c : bnet.repeater_cells) rep.insert({c.gx, c.gy});
  double worst = 0.0;
  for (const auto& path : tree.sink_paths) {
    double run = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      run += step;
      if (rep.count({path[i].gx, path[i].gy})) {
        worst = std::max(worst, run);
        run = 0.0;
      }
    }
    worst = std::max(worst, run);
  }
  return worst;
}

TEST(Repeater, ShortWireNeedsNoRepeater) {
  auto grid = open_grid();
  timing::Technology tech;
  tech.max_repeater_interval = 2000.0;
  const auto tree = route_one(grid, {{0, 0}, {{4, 0}}});  // 800 um
  RepeaterPlanner rp(grid, tech);
  const auto bnet = rp.plan(tree, tech.gate_out_res, tech.gate_in_cap);
  EXPECT_TRUE(bnet.repeater_cells.empty());
  EXPECT_EQ(rp.repeaters_inserted(), 0);
  ASSERT_EQ(bnet.sinks.size(), 1u);
  EXPECT_EQ(bnet.sinks[0].units.size(), 1u);  // one unbuffered stage
}

TEST(Repeater, LongWireRespectsLmax) {
  auto grid = open_grid();
  timing::Technology tech;
  tech.max_repeater_interval = 1000.0;
  const auto tree = route_one(grid, {{0, 0}, {{19, 0}}});  // 3800 um
  RepeaterPlanner rp(grid, tech);
  const auto bnet = rp.plan(tree, tech.gate_out_res, tech.gate_in_cap);
  EXPECT_GE(bnet.repeater_cells.size(), 3u);
  EXPECT_LE(max_stage_length(tree, bnet, 200.0), 1000.0 + 1e-9);
}

TEST(Repeater, TreeBranchesEachRespectLmax) {
  auto grid = open_grid();
  timing::Technology tech;
  tech.max_repeater_interval = 800.0;
  const auto tree = route_one(grid, {{0, 10}, {{19, 0}, {19, 19}}});
  RepeaterPlanner rp(grid, tech);
  const auto bnet = rp.plan(tree, tech.gate_out_res, tech.gate_in_cap);
  EXPECT_LE(max_stage_length(tree, bnet, 200.0), 800.0 + 1e-9);
}

TEST(Repeater, ConsumesTileCapacity) {
  auto grid = open_grid();
  timing::Technology tech;
  tech.max_repeater_interval = 600.0;
  const double before = grid.total_channel_capacity();
  const auto tree = route_one(grid, {{0, 0}, {{19, 0}}});
  RepeaterPlanner rp(grid, tech);
  const auto bnet = rp.plan(tree, tech.gate_out_res, tech.gate_in_cap);
  ASSERT_GT(bnet.repeater_cells.size(), 0u);
  const double after = grid.total_channel_capacity();
  EXPECT_NEAR(before - after,
              static_cast<double>(bnet.repeater_cells.size()) *
                  tech.repeater_area,
              1e-6);
  EXPECT_DOUBLE_EQ(rp.area_consumed(), before - after);
}

TEST(Repeater, SegmentDelaysArePositiveAndSumConsistent) {
  auto grid = open_grid();
  timing::Technology tech;
  tech.max_repeater_interval = 1000.0;
  const auto tree = route_one(grid, {{0, 0}, {{15, 7}}});
  RepeaterPlanner rp(grid, tech);
  const auto bnet = rp.plan(tree, tech.gate_out_res, tech.gate_in_cap);
  ASSERT_EQ(bnet.sinks.size(), 1u);
  const auto& sp = bnet.sinks[0];
  EXPECT_GT(sp.units.size(), 1u);
  double sum = 0.0;
  for (const auto& u : sp.units) {
    EXPECT_GT(u.delay_ps, 0.0);
    EXPECT_TRUE(u.tile.valid());
    sum += u.delay_ps;
  }
  EXPECT_NEAR(sum, sp.total_delay_ps, 1e-9);
  EXPECT_DOUBLE_EQ(sp.length_um, 22.0 * 200.0);
}

TEST(Repeater, SubdivisionMultipliesUnits) {
  auto grid1 = open_grid();
  auto grid2 = open_grid();
  timing::Technology tech;
  tech.max_repeater_interval = 1200.0;
  const auto tree = route_one(grid1, {{0, 0}, {{18, 0}}});
  RepeaterPlanner rp1(grid1, tech, {.units_per_segment = 1});
  RepeaterPlanner rp3(grid2, tech, {.units_per_segment = 3});
  const auto b1 = rp1.plan(tree, tech.gate_out_res, tech.gate_in_cap);
  const auto b3 = rp3.plan(tree, tech.gate_out_res, tech.gate_in_cap);
  EXPECT_EQ(b3.sinks[0].units.size(), 3 * b1.sinks[0].units.size());
  EXPECT_NEAR(b1.sinks[0].total_delay_ps, b3.sinks[0].total_delay_ps, 1e-9);
}

TEST(Repeater, CapacityAwarePrefersRoomierTiles) {
  // Consume most capacity in the straight-line tiles; the planner should
  // still satisfy Lmax (correctness) — site choice is best-effort.
  auto grid = open_grid();
  timing::Technology tech;
  tech.max_repeater_interval = 1000.0;
  const auto tree = route_one(grid, {{0, 0}, {{19, 0}}});
  for (int gx = 0; gx < grid.nx(); ++gx) {
    const auto t = grid.tile_of_cell(gx, 0);
    grid.consume(t, grid.capacity(t) * 0.9);
  }
  RepeaterPlanner rp(grid, tech);
  const auto bnet = rp.plan(tree, tech.gate_out_res, tech.gate_in_cap);
  EXPECT_LE(max_stage_length(tree, bnet, 200.0), 1000.0 + 1e-9);
}

TEST(Repeater, LookBackPicksTheRoomiestLegalSite) {
  // Straight 10-cell wire with Lmax = 5 cells.  Deplete every tile except
  // cell (2,0); the look-back window must choose it for the first repeater
  // (it keeps both spacings <= Lmax and has the most remaining capacity).
  auto grid = open_grid(4000, 400, 200);
  timing::Technology tech;
  tech.max_repeater_interval = 1000.0;  // 5 cells
  for (int gx = 0; gx < grid.nx(); ++gx)
    for (int gy = 0; gy < grid.ny(); ++gy) {
      if (gx == 2 && gy == 0) continue;
      const auto t = grid.tile_of_cell(gx, gy);
      grid.consume(t, grid.capacity(t) - 1.0);
    }
  const auto tree = route_one(grid, {{0, 0}, {{9, 0}}});  // 1800 um
  RepeaterPlanner rp(grid, tech);
  const auto bnet = rp.plan(tree, tech.gate_out_res, tech.gate_in_cap);
  ASSERT_FALSE(bnet.repeater_cells.empty());
  bool used_roomy = false;
  for (const auto& c : bnet.repeater_cells)
    used_roomy |= (c.gx == 2 && c.gy == 0);
  EXPECT_TRUE(used_roomy);
  EXPECT_LE(max_stage_length(tree, bnet, 200.0), 1000.0 + 1e-9);
}

TEST(Repeater, CapacityOblivousPlacesAtForcedCell) {
  auto grid = open_grid(4000, 400, 200);
  timing::Technology tech;
  tech.max_repeater_interval = 1000.0;
  const auto tree = route_one(grid, {{0, 0}, {{9, 0}}});
  RepeaterPlanner rp(grid, tech, {.capacity_aware = false});
  const auto bnet = rp.plan(tree, tech.gate_out_res, tech.gate_in_cap);
  // Greedy: first repeater exactly where the budget runs out (cell 5).
  ASSERT_FALSE(bnet.repeater_cells.empty());
  EXPECT_EQ(bnet.repeater_cells.front().gx, 5);
  EXPECT_LE(max_stage_length(tree, bnet, 200.0), 1000.0 + 1e-9);
}

TEST(Repeater, UnroutedNetYieldsEmptyPlan) {
  auto grid = open_grid();
  timing::Technology tech;
  RepeaterPlanner rp(grid, tech);
  route::RouteTree empty;
  const auto bnet = rp.plan(empty, tech.gate_out_res, tech.gate_in_cap);
  EXPECT_TRUE(bnet.sinks.empty());
  EXPECT_TRUE(bnet.repeater_cells.empty());
}

TEST(Repeater, ColocatedSinkHasNoUnits) {
  auto grid = open_grid();
  timing::Technology tech;
  const auto tree = route_one(grid, {{3, 3}, {{3, 3}, {9, 3}}});
  RepeaterPlanner rp(grid, tech);
  const auto bnet = rp.plan(tree, tech.gate_out_res, tech.gate_in_cap);
  ASSERT_EQ(bnet.sinks.size(), 2u);
  EXPECT_TRUE(bnet.sinks[0].units.empty());
  EXPECT_DOUBLE_EQ(bnet.sinks[0].total_delay_ps, 0.0);
  EXPECT_FALSE(bnet.sinks[1].units.empty());
}

}  // namespace
}  // namespace lac::repeater
