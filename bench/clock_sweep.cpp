// Extension ablation: the paper fixes the target period at the 20% point
// between T_min and T_init.  This bench sweeps that slack fraction over
// [0, 1] on two circuits and shows how the violation counts and flip-flop
// totals of both retimings move: tight clocks force registers onto the
// timing-feasible band (more violations, harder for LAC to fix); loose
// clocks approach the unconstrained min-area solution.
#include <cstdio>
#include <string>
#include <vector>

#include "base/str_util.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "planner/interconnect_planner.h"

int main(int argc, char** argv) {
  using namespace lac;
  const std::string out =
      bench_io::parse_cli(argc, argv, "clock_sweep").out_dir;

  std::printf("=== Clock-slack sweep: T_clk = T_min + f (T_init - T_min) ===\n\n");
  for (const char* name : {"y526", "y1269"}) {
    const auto& entry = bench89::entry_by_name(name);
    const auto nl = bench89::load(entry);
    std::printf("--- %s ---\n", name);
    TextTable table({"f", "Tclk(ps)", "MA:N_FOA", "MA:N_F", "LAC:N_FOA",
                     "LAC:N_F", "N_wr"});
    for (const double f : {0.0, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}) {
      planner::PlannerConfig cfg;
      cfg.seed = 7;
      cfg.num_blocks = entry.recommended_blocks;
      cfg.clock_slack_fraction = f;
      planner::InterconnectPlanner planner(cfg);
      const auto res = planner.plan(nl);
      table.add_row({format_double(f, 2), format_double(res.t_clk_ps, 1),
                     std::to_string(res.min_area.report.n_foa),
                     std::to_string(res.min_area.report.n_f),
                     std::to_string(res.lac.report.n_foa),
                     std::to_string(res.lac.report.n_f),
                     std::to_string(res.lac.n_wr)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  bench_io::write_bench_report(out, "clock_sweep");
  return 0;
}
