// Extension ablation: the paper fixes the target period at the 20% point
// between T_min and T_init.  This bench sweeps that slack fraction over
// [0, 1] on two circuits and shows how the violation counts and flip-flop
// totals of both retimings move: tight clocks force registers onto the
// timing-feasible band (more violations, harder for LAC to fix); loose
// clocks approach the unconstrained min-area solution.
#include <cstdio>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "base/str_util.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "planner/interconnect_planner.h"

int main(int argc, char** argv) {
  using namespace lac;
  const bench_io::Cli cli = bench_io::parse_cli(argc, argv, "clock_sweep");
  const std::string& out = cli.out_dir;
  const base::ExecPolicy exec = cli.exec();

  const std::vector<const char*> circuits{"y526", "y1269"};
  const std::vector<double> fractions{0.0, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0};

  std::printf("=== Clock-slack sweep: T_clk = T_min + f (T_init - T_min) ===\n\n");
  // Every (circuit, fraction) pair plans independently; rows are printed
  // in sweep order afterwards.
  const auto results = base::parallel_map<planner::PlanResult>(
      exec, circuits.size() * fractions.size(), [&](std::size_t j) {
        const auto& entry =
            bench89::entry_by_name(circuits[j / fractions.size()]);
        const auto nl = bench89::load(entry);
        planner::PlannerConfig cfg;
        cfg.run.seed = 7;
        cfg.run.exec = exec;
        cfg.num_blocks = entry.recommended_blocks;
        cfg.clock_slack_fraction = fractions[j % fractions.size()];
        const planner::InterconnectPlanner planner(cfg);
        return planner.plan(nl);
      });

  for (std::size_t c = 0; c < circuits.size(); ++c) {
    std::printf("--- %s ---\n", circuits[c]);
    TextTable table({"f", "Tclk(ps)", "MA:N_FOA", "MA:N_F", "LAC:N_FOA",
                     "LAC:N_F", "N_wr"});
    for (std::size_t k = 0; k < fractions.size(); ++k) {
      const planner::PlanResult& res = results[c * fractions.size() + k];
      table.add_row({format_double(fractions[k], 2),
                     format_double(res.t_clk_ps, 1),
                     std::to_string(res.min_area.report.n_foa),
                     std::to_string(res.min_area.report.n_f),
                     std::to_string(res.lac.report.n_foa),
                     std::to_string(res.lac.report.n_f),
                     std::to_string(res.lac.n_wr)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  bench_io::write_bench_report(out, "clock_sweep");
  return 0;
}
