// Reproduces the paper's §5 distribution observations:
//   * "on the average, about 10% of the flip-flops are inserted into
//     interconnects; the percentage can be as high as 30%" — we report
//     N_FN / N_F per circuit for the LAC solution;
//   * "For some circuits, there is a large difference between the initial
//     clock period and minimum clock period ... caused by the unbalanced
//     distribution of flip-flops" — we report (T_init - T_min)/T_min.
#include <cstdio>
#include <string>

#include "base/parallel.h"
#include "base/str_util.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "planner/interconnect_planner.h"

int main(int argc, char** argv) {
  using namespace lac;
  const bench_io::Cli cli = bench_io::parse_cli(argc, argv, "ff_distribution");
  const std::string& out = cli.out_dir;
  const base::ExecPolicy exec = cli.exec();

  std::printf("=== Flip-flop distribution & clock-period gap ===\n\n");
  TextTable table({"circuit", "N_F", "N_FN", "FF-in-wire %", "T_init(ps)",
                   "T_min(ps)", "gap %"});
  double pct_sum = 0.0, pct_max = 0.0, gap_max = 0.0;
  int n = 0;
  // Per-circuit fan-out; rows aggregate in suite order afterwards.
  const auto suite = bench89::table1_suite();
  const auto results = base::parallel_map<planner::PlanResult>(
      exec, suite.size(), [&](std::size_t i) {
        const auto nl = bench89::load(suite[i]);
        planner::PlannerConfig cfg;
        cfg.run.seed = 7;
        cfg.run.exec = exec;
        cfg.num_blocks = suite[i].recommended_blocks;
        const planner::InterconnectPlanner planner(cfg);
        return planner.plan(nl);
      });
  for (std::size_t c = 0; c < suite.size(); ++c) {
    const auto& entry = suite[c];
    const planner::PlanResult& res = results[c];
    const double pct =
        res.lac.report.n_f > 0
            ? 100.0 * static_cast<double>(res.lac.report.n_fn) /
                  static_cast<double>(res.lac.report.n_f)
            : 0.0;
    const double gap = 100.0 * (res.t_init_ps - res.t_min_ps) / res.t_min_ps;
    pct_sum += pct;
    pct_max = std::max(pct_max, pct);
    gap_max = std::max(gap_max, gap);
    ++n;
    table.add_row({entry.spec.name, std::to_string(res.lac.report.n_f),
                   std::to_string(res.lac.report.n_fn), format_double(pct, 1),
                   format_double(res.t_init_ps, 1),
                   format_double(res.t_min_ps, 1), format_double(gap, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Average FF-in-interconnect fraction: %.1f%% (max %.1f%%)\n",
              pct_sum / n, pct_max);
  std::printf("Largest T_init-vs-T_min gap: %.1f%%\n", gap_max);
  std::printf("Paper: ~10%% average, up to 30%%; some circuits show a large\n"
              "initial-vs-minimum clock period difference.\n");
  bench_io::write_bench_report(out, "ff_distribution");
  return 0;
}
