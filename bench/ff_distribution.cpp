// Reproduces the paper's §5 distribution observations:
//   * "on the average, about 10% of the flip-flops are inserted into
//     interconnects; the percentage can be as high as 30%" — we report
//     N_FN / N_F per circuit for the LAC solution;
//   * "For some circuits, there is a large difference between the initial
//     clock period and minimum clock period ... caused by the unbalanced
//     distribution of flip-flops" — we report (T_init - T_min)/T_min.
#include <cstdio>
#include <string>

#include "base/str_util.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "planner/interconnect_planner.h"

int main(int argc, char** argv) {
  using namespace lac;
  const std::string out =
      bench_io::parse_cli(argc, argv, "ff_distribution").out_dir;

  std::printf("=== Flip-flop distribution & clock-period gap ===\n\n");
  TextTable table({"circuit", "N_F", "N_FN", "FF-in-wire %", "T_init(ps)",
                   "T_min(ps)", "gap %"});
  double pct_sum = 0.0, pct_max = 0.0, gap_max = 0.0;
  int n = 0;
  for (const auto& entry : bench89::table1_suite()) {
    const auto nl = bench89::load(entry);
    planner::PlannerConfig cfg;
    cfg.seed = 7;
    cfg.num_blocks = entry.recommended_blocks;
    planner::InterconnectPlanner planner(cfg);
    const auto res = planner.plan(nl);
    const double pct =
        res.lac.report.n_f > 0
            ? 100.0 * static_cast<double>(res.lac.report.n_fn) /
                  static_cast<double>(res.lac.report.n_f)
            : 0.0;
    const double gap = 100.0 * (res.t_init_ps - res.t_min_ps) / res.t_min_ps;
    pct_sum += pct;
    pct_max = std::max(pct_max, pct);
    gap_max = std::max(gap_max, gap);
    ++n;
    table.add_row({entry.spec.name, std::to_string(res.lac.report.n_f),
                   std::to_string(res.lac.report.n_fn), format_double(pct, 1),
                   format_double(res.t_init_ps, 1),
                   format_double(res.t_min_ps, 1), format_double(gap, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Average FF-in-interconnect fraction: %.1f%% (max %.1f%%)\n",
              pct_sum / n, pct_max);
  std::printf("Largest T_init-vs-T_min gap: %.1f%%\n", gap_max);
  std::printf("Paper: ~10%% average, up to 30%%; some circuits show a large\n"
              "initial-vs-minimum clock period difference.\n");
  bench_io::write_bench_report(out, "ff_distribution");
  return 0;
}
