// Cold-vs-warm comparison of the LAC inner solver (docs/INCREMENTAL_MCF.md).
//
// Per suite circuit: plan once to obtain the physical retiming graph and
// tile grid, rebuild the clocking constraints at the chosen T_clk, then run
// the LAC loop twice on identical inputs — once re-solving the min-cost
// flow cold every round (--lac-incremental off semantics) and once with the
// warm-started solver session (the default).  The tool
//   * verifies both modes return bit-identical results (retiming labels,
//     full per-round N_FOA trajectory, final report) and exits 1 on any
//     mismatch — this is the equivalence claim of the incremental solver,
//     checked on real planned circuits rather than synthetic graphs;
//   * reports the solver effort saved: SSP tree-drain augmentations AND
//     Dijkstra phases on rounds >= 2 (round 1 is cold in both modes) plus
//     LAC wall time.  Under the tree-drain kernel one phase performs many
//     augmentations, so the phase count is the Dijkstra-effort metric and
//     the augmentation count the path-push metric; both are reported so
//     the warm advantage stays measurable (docs/INCREMENTAL_MCF.md).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/table.h"
#include "base/str_util.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "obs/span.h"
#include "planner/interconnect_planner.h"
#include "retime/constraints.h"
#include "retime/lac_retimer.h"
#include "retime/wd_matrices.h"

int main(int argc, char** argv) {
  using namespace lac;
  const bench_io::Cli cli =
      bench_io::parse_cli(argc, argv, "incremental_mcf", /*with_limit=*/true);

  std::printf("=== Incremental MCF: cold vs warm-started LAC solves ===\n\n");
  const std::string csv_path = bench_io::join(cli.out_dir, "incremental_mcf.csv");
  std::ofstream csv(csv_path);
  csv << "circuit,n_wr,cold_aug_r2plus,warm_aug_r2plus,aug_saved_pct,"
         "cold_phases_r2plus,warm_phases_r2plus,"
         "cold_t_s,warm_t_s,identical\n";
  TextTable table({"circuit", "N_wr", "cold aug(r>=2)", "warm aug(r>=2)",
                   "saved", "cold ph(r>=2)", "warm ph(r>=2)", "cold T(s)",
                   "warm T(s)", "identical"});

  std::vector<bench89::SuiteEntry> suite = bench89::table1_suite();
  if (cli.limit >= 0 && cli.limit < static_cast<long long>(suite.size()))
    suite.resize(static_cast<std::size_t>(cli.limit));

  bool all_identical = true;
  long long total_cold_aug = 0, total_warm_aug = 0;
  long long total_cold_phases = 0, total_warm_phases = 0;

  for (const auto& entry : suite) {
    const auto nl = bench89::load(entry);
    planner::PlannerConfig cfg;
    cfg.run.seed = 7;
    cfg.run.exec = cli.exec();
    cfg.num_blocks = entry.recommended_blocks;
    const planner::InterconnectPlanner planner(cfg);
    const planner::PlanResult res =
        planner.plan(nl, planner::PlanOptions{.max_iterations = 1}).front();

    // Rebuild the constraint system the planner solved (same T_clk).
    const auto& g = res.graph;
    const auto wd = retime::WdMatrices::compute(g, cli.exec());
    const auto cs =
        retime::build_constraints(g, wd, retime::to_decips(res.t_clk_ps));

    retime::LacOptions opt = planner.config().lac_opt;

    opt.incremental = false;
    obs::Span cold_span("bench.lac_cold");
    const retime::LacResult cold = retime::lac_retiming(g, *res.grid, cs, opt);
    const double cold_s = cold_span.elapsed_seconds();

    opt.incremental = true;
    obs::Span warm_span("bench.lac_warm");
    const retime::LacResult warm = retime::lac_retiming(g, *res.grid, cs, opt);
    const double warm_s = warm_span.elapsed_seconds();

    // Equivalence: the retiming, the round count and the whole N_FOA
    // trajectory must match bit for bit.
    bool identical = cold.r == warm.r && cold.n_wr == warm.n_wr &&
                     cold.report.n_foa == warm.report.n_foa &&
                     cold.report.n_f == warm.report.n_f &&
                     cold.rounds.size() == warm.rounds.size();
    if (identical)
      for (std::size_t i = 0; i < cold.rounds.size(); ++i)
        identical = identical &&
                    cold.rounds[i].n_foa == warm.rounds[i].n_foa &&
                    cold.rounds[i].n_f == warm.rounds[i].n_f &&
                    cold.rounds[i].best_n_foa == warm.rounds[i].best_n_foa &&
                    cold.rounds[i].improved == warm.rounds[i].improved;
    all_identical = all_identical && identical;

    long long cold_aug = 0, warm_aug = 0;
    long long cold_phases = 0, warm_phases = 0;
    for (std::size_t i = 1; i < cold.rounds.size(); ++i) {
      cold_aug += cold.rounds[i].augmentations;
      cold_phases += cold.rounds[i].phases;
    }
    for (std::size_t i = 1; i < warm.rounds.size(); ++i) {
      warm_aug += warm.rounds[i].augmentations;
      warm_phases += warm.rounds[i].phases;
    }
    total_cold_aug += cold_aug;
    total_warm_aug += warm_aug;
    total_cold_phases += cold_phases;
    total_warm_phases += warm_phases;

    const double saved_pct =
        cold_aug > 0 ? 100.0 * static_cast<double>(cold_aug - warm_aug) /
                           static_cast<double>(cold_aug)
                     : 0.0;
    csv << entry.spec.name << ',' << cold.n_wr << ',' << cold_aug << ','
        << warm_aug << ',' << saved_pct << ',' << cold_phases << ','
        << warm_phases << ',' << cold_s << ',' << warm_s << ','
        << (identical ? 1 : 0) << '\n';
    table.add_row({entry.spec.name, std::to_string(cold.n_wr),
                   std::to_string(cold_aug), std::to_string(warm_aug),
                   cold_aug > 0 ? format_double(saved_pct, 0) + "%" : "n/a",
                   std::to_string(cold_phases), std::to_string(warm_phases),
                   format_double(cold_s, 3), format_double(warm_s, 3),
                   identical ? "yes" : "NO"});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("(machine-readable copy written to %s)\n\n", csv_path.c_str());
  if (total_cold_aug > 0)
    std::printf("Aggregate rounds>=2 augmentations: cold %lld -> warm %lld"
                " (%.0f%% removed)\n",
                total_cold_aug, total_warm_aug,
                100.0 * static_cast<double>(total_cold_aug - total_warm_aug) /
                    static_cast<double>(total_cold_aug));
  if (total_cold_phases > 0)
    std::printf("Aggregate rounds>=2 Dijkstra phases: cold %lld -> warm %lld"
                " (%.0f%% removed)\n",
                total_cold_phases, total_warm_phases,
                100.0 *
                    static_cast<double>(total_cold_phases - total_warm_phases) /
                    static_cast<double>(total_cold_phases));
  if (!all_identical)
    std::printf("ERROR: warm-started results diverged from cold results\n");

  bench_io::write_bench_report(
      cli.out_dir, "incremental_mcf",
      {{"circuits", obs::json::Value::of(suite.size())},
       {"cold_augmentations_r2plus", obs::json::Value::of(total_cold_aug)},
       {"warm_augmentations_r2plus", obs::json::Value::of(total_warm_aug)},
       {"cold_phases_r2plus", obs::json::Value::of(total_cold_phases)},
       {"warm_phases_r2plus", obs::json::Value::of(total_warm_phases)},
       {"identical", obs::json::Value::of(all_identical)}});
  return all_identical ? 0 : 1;
}
