// Shared CLI plumbing for the bench binaries: every tool accepts an
// optional output directory as its first argument (default ".") and
// writes a structured observability run report there before exiting.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/report.h"

namespace lac::bench_io {

// argv[1], when present and non-empty, is the output directory.
inline std::string out_dir(int argc, char** argv) {
  if (argc > 1 && argv[1][0] != '\0') return argv[1];
  return ".";
}

inline std::string join(const std::string& dir, const std::string& file) {
  if (dir.empty() || dir == ".") return file;
  if (dir.back() == '/') return dir + file;
  return dir + "/" + file;
}

// Writes `<name>_report.json` under `dir` and prints where it went.
inline void write_bench_report(
    const std::string& dir, const std::string& name,
    const std::vector<std::pair<std::string, obs::json::Value>>& meta = {}) {
  const std::string path = join(dir, name + "_report.json");
  if (obs::write_report(path, name, meta))
    std::printf("(run report written to %s)\n", path.c_str());
  else
    std::fprintf(stderr, "warning: failed to write %s\n", path.c_str());
}

}  // namespace lac::bench_io
