// Shared CLI plumbing for the bench binaries: every tool accepts an
// optional output directory as its first positional argument (default
// "."), understands --help, rejects unknown options with exit 64
// (EX_USAGE), and writes a structured observability run report before
// exiting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "base/exec_policy.h"
#include "obs/report.h"
#include "obs/stream.h"

namespace lac::bench_io {

struct Cli {
  std::string out_dir = ".";
  // --limit N: run only the first N suite circuits (table1_main); -1 =
  // whole suite.
  long long limit = -1;
  // --threads N: worker threads for every parallel stage; 0 (the default,
  // also when the flag is absent) resolves to hardware_concurrency() with
  // a floor of 1.  Negative values are rejected with exit 64.
  long long threads = 0;
  // --lac-incremental on|off: force LacOptions::incremental for the run;
  // -1 (flag absent) keeps the pipeline default.  Both modes produce
  // bit-identical planning results — the flag exists for cold-vs-warm
  // solver comparisons (CI cross-mode gate, bench/incremental_mcf).
  int lac_incremental = -1;
  // --span-cap N: root-span store capacity (RunControls::max_root_spans);
  // 0 (flag absent) keeps the default.  Spans beyond the cap are dropped
  // and counted in the report's dropped_root_spans.
  long long span_cap = 0;
  // --stream PATH (or LAC_OBS_STREAM): append the lac-obs-events/1 event
  // log here, flushed per event; empty = streaming off.  parse_cli opens
  // the sink before returning, so the stream covers the whole run.
  std::string stream;
  // --eco FILE (tools that accept it): an ECO journal, one edit per line
  // (see docs/ECO.md).  parse_cli reads the file (missing -> exit 66,
  // EX_NOINPUT); the *content* is validated by the tool, which exits 64
  // on a malformed journal.  Empty path = flag absent.
  std::string eco_path;
  std::string eco_journal;

  // The parsed --threads value as an ExecPolicy (deterministic scheduling;
  // results are bitwise-identical for any thread count).
  [[nodiscard]] base::ExecPolicy exec() const {
    base::ExecPolicy p;
    p.threads = static_cast<int>(threads);
    return p;
  }
};

inline void print_usage(std::FILE* to, const char* tool, bool with_limit,
                        bool with_eco = false) {
  std::fprintf(to,
               "usage: %s [out_dir]%s [--threads N]\n"
               "\n"
               "  out_dir     directory for the run report (and any CSVs);"
               " default \".\",\n"
               "              created if missing\n"
               "  --help, -h  show this message\n"
               "  --threads N worker threads for parallel stages; 0 or"
               " unset = all\n"
               "              hardware threads (at least 1); output is"
               " identical for\n"
               "              any thread count\n"
               "  --lac-incremental on|off\n"
               "              warm-start the LAC min-cost-flow solver across"
               " rounds (on,\n"
               "              the default) or re-solve cold every round;"
               " results are\n"
               "              identical either way\n"
               "  --span-cap N\n"
               "              retain at most N root spans in the run report;"
               " 0 or unset\n"
               "              keeps the default (4096); dropped spans are"
               " counted in\n"
               "              dropped_root_spans\n"
               "  --stream PATH\n"
               "              append a live lac-obs-events/1 event log to"
               " PATH, flushed\n"
               "              per event (watch with `lacobs tail`, reduce"
               " with `lacobs\n"
               "              fold`); LAC_OBS_STREAM sets the same path when"
               " the flag is\n"
               "              absent\n",
               tool, with_limit ? " [--limit N]" : "");
  if (with_limit)
    std::fprintf(to,
                 "  --limit N   run only the first N suite circuits (CI"
                 " perf gate)\n");
  if (with_eco)
    std::fprintf(to,
                 "  --eco FILE  apply the ECO journal in FILE (one edit per"
                 " line, see\n"
                 "              docs/ECO.md) instead of the built-in edit"
                 " script\n");
}

// Parses the common bench command line.  Exits on --help (0) and on
// unknown options or surplus arguments (64).
inline Cli parse_cli(int argc, char** argv, const char* tool,
                     bool with_limit = false, bool with_eco = false) {
  Cli cli;
  bool have_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout, tool, with_limit, with_eco);
      std::exit(0);
    }
    if (with_eco && arg == "--eco") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --eco needs a file\n", tool);
        std::exit(64);
      }
      cli.eco_path = argv[++i];
      if (cli.eco_path.empty()) {
        std::fprintf(stderr, "%s: --eco needs a non-empty path\n", tool);
        std::exit(64);
      }
      continue;
    }
    if (with_limit && arg == "--limit") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --limit needs a count\n", tool);
        std::exit(64);
      }
      char* end = nullptr;
      cli.limit = std::strtoll(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || cli.limit < 0) {
        std::fprintf(stderr, "%s: bad --limit value '%s'\n", tool, argv[i]);
        std::exit(64);
      }
      continue;
    }
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --threads needs a count\n", tool);
        std::exit(64);
      }
      char* end = nullptr;
      cli.threads = std::strtoll(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || end == argv[i] ||
          cli.threads < 0) {
        std::fprintf(stderr, "%s: bad --threads value '%s'\n", tool, argv[i]);
        std::exit(64);
      }
      continue;
    }
    if (arg == "--span-cap") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --span-cap needs a count\n", tool);
        std::exit(64);
      }
      char* end = nullptr;
      cli.span_cap = std::strtoll(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || end == argv[i] ||
          cli.span_cap < 0) {
        std::fprintf(stderr, "%s: bad --span-cap value '%s'\n", tool,
                     argv[i]);
        std::exit(64);
      }
      continue;
    }
    if (arg == "--stream") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --stream needs a path\n", tool);
        std::exit(64);
      }
      cli.stream = argv[++i];
      if (cli.stream.empty()) {
        std::fprintf(stderr, "%s: --stream needs a non-empty path\n", tool);
        std::exit(64);
      }
      continue;
    }
    if (arg == "--lac-incremental") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --lac-incremental needs on|off\n", tool);
        std::exit(64);
      }
      const std::string mode = argv[++i];
      if (mode == "on") {
        cli.lac_incremental = 1;
      } else if (mode == "off") {
        cli.lac_incremental = 0;
      } else {
        std::fprintf(stderr, "%s: bad --lac-incremental value '%s'"
                     " (want on|off)\n", tool, mode.c_str());
        std::exit(64);
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option '%s'\n", tool, arg.c_str());
      print_usage(stderr, tool, with_limit, with_eco);
      std::exit(64);
    }
    if (have_out) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", tool,
                   arg.c_str());
      print_usage(stderr, tool, with_limit, with_eco);
      std::exit(64);
    }
    if (!arg.empty()) cli.out_dir = arg;
    have_out = true;
  }
  // Tools also write CSVs straight into out_dir, so create it up front;
  // failure surfaces later as per-file warnings.
  if (cli.out_dir != ".") {
    std::error_code ec;
    std::filesystem::create_directories(cli.out_dir, ec);
  }
  if (!cli.eco_path.empty()) {
    std::ifstream in(cli.eco_path);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open ECO journal '%s'\n", tool,
                   cli.eco_path.c_str());
      std::exit(66);  // EX_NOINPUT
    }
    std::ostringstream content;
    content << in.rdbuf();
    cli.eco_journal = content.str();
  }
  if (cli.stream.empty()) {
    if (const char* env = std::getenv("LAC_OBS_STREAM");
        env != nullptr && env[0] != '\0')
      cli.stream = env;
  }
  if (!cli.stream.empty()) {
    std::string error;
    if (!obs::stream::open(cli.stream, tool, &error)) {
      std::fprintf(stderr, "%s: cannot open event stream: %s\n", tool,
                   error.c_str());
      std::exit(73);  // EX_CANTCREAT
    }
  }
  return cli;
}

inline std::string join(const std::string& dir, const std::string& file) {
  if (dir.empty() || dir == ".") return file;
  if (dir.back() == '/') return dir + file;
  return dir + "/" + file;
}

// Writes `<name>_report.json` under `dir` and prints where it went.
inline void write_bench_report(
    const std::string& dir, const std::string& name,
    const std::vector<std::pair<std::string, obs::json::Value>>& meta = {}) {
  const std::string path = join(dir, name + "_report.json");
  std::string error;
  if (obs::write_report(path, name, meta, &error))
    std::printf("(run report written to %s)\n", path.c_str());
  else
    std::fprintf(stderr, "warning: failed to write %s: %s\n", path.c_str(),
                 error.c_str());
}

}  // namespace lac::bench_io
