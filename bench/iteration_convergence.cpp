// Reproduces the paper's second-iteration claim (Table 1, parenthesised
// N_FOA column and §5 discussion): when LAC-retiming cannot remove all
// violations, the floorplanning stage expands the congested soft blocks
// and channels and interconnect planning re-runs; after that second
// iteration the violations disappear (for all but one pathological circuit
// in the paper).  This bench drives up to three planning iterations per
// circuit and prints the violation trajectory.
#include <cstdio>
#include <string>

#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "planner/interconnect_planner.h"

int main(int argc, char** argv) {
  using namespace lac;
  const std::string out =
      bench_io::parse_cli(argc, argv, "iteration_convergence").out_dir;

  std::printf("=== Planning-iteration convergence (floorplan expansion) ===\n\n");
  TextTable table({"circuit", "iter1:MA_FOA", "iter1:LAC_FOA", "iter2:LAC_FOA",
                   "iter3:LAC_FOA", "converged"});

  for (const auto& entry : bench89::table1_suite()) {
    const auto nl = bench89::load(entry);
    planner::PlannerConfig cfg;
    cfg.seed = 7;
    cfg.num_blocks = entry.recommended_blocks;
    planner::InterconnectPlanner planner(cfg);

    auto res = planner.plan(nl);
    const auto ma1 = res.min_area.report.n_foa;
    const auto lac1 = res.lac.report.n_foa;
    std::string it2 = "-", it3 = "-";
    if (!res.lac.report.fits()) {
      auto second = planner.replan_expanded(nl, res);
      if (second) {
        it2 = std::to_string(second->lac.report.n_foa);
        res = std::move(*second);
        if (!res.lac.report.fits()) {
          auto third = planner.replan_expanded(nl, res);
          if (third) {
            it3 = std::to_string(third->lac.report.n_foa);
            res = std::move(*third);
          }
        }
      }
    }
    table.add_row({entry.spec.name, std::to_string(ma1), std::to_string(lac1),
                   it2, it3, res.lac.report.fits() ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper: all circuits converge after <= 2 iterations except one\n"
              "(s1269, whose floorplan changes drastically on expansion).\n");
  bench_io::write_bench_report(out, "iteration_convergence");
  return 0;
}
