// Reproduces the paper's second-iteration claim (Table 1, parenthesised
// N_FOA column and §5 discussion): when LAC-retiming cannot remove all
// violations, the floorplanning stage expands the congested soft blocks
// and channels and interconnect planning re-runs; after that second
// iteration the violations disappear (for all but one pathological circuit
// in the paper).  This bench drives up to three planning iterations per
// circuit and prints the violation trajectory.
#include <cstdio>
#include <string>

#include "base/parallel.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "planner/interconnect_planner.h"

int main(int argc, char** argv) {
  using namespace lac;
  const bench_io::Cli cli =
      bench_io::parse_cli(argc, argv, "iteration_convergence");
  const std::string& out = cli.out_dir;
  const base::ExecPolicy exec = cli.exec();

  std::printf("=== Planning-iteration convergence (floorplan expansion) ===\n\n");
  TextTable table({"circuit", "iter1:MA_FOA", "iter1:LAC_FOA", "iter2:LAC_FOA",
                   "iter3:LAC_FOA", "converged"});

  // Each circuit's full iteration trajectory is one independent task.
  const auto suite = bench89::table1_suite();
  const auto iterations =
      base::parallel_map<std::vector<planner::PlanResult>>(
          exec, suite.size(), [&](std::size_t i) {
            const auto nl = bench89::load(suite[i]);
            planner::PlannerConfig cfg;
            cfg.run.seed = 7;
            cfg.run.exec = exec;
            cfg.num_blocks = suite[i].recommended_blocks;
            const planner::InterconnectPlanner planner(cfg);
            return planner.plan(nl,
                                planner::PlanOptions{.max_iterations = 3});
          });

  for (std::size_t c = 0; c < suite.size(); ++c) {
    const auto& iters = iterations[c];
    const auto ma1 = iters.front().min_area.report.n_foa;
    const auto lac1 = iters.front().lac.report.n_foa;
    const std::string it2 =
        iters.size() > 1 ? std::to_string(iters[1].lac.report.n_foa) : "-";
    const std::string it3 =
        iters.size() > 2 ? std::to_string(iters[2].lac.report.n_foa) : "-";
    table.add_row({suite[c].spec.name, std::to_string(ma1),
                   std::to_string(lac1), it2, it3,
                   iters.back().lac.report.fits() ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper: all circuits converge after <= 2 iterations except one\n"
              "(s1269, whose floorplan changes drastically on expansion).\n");
  bench_io::write_bench_report(out, "iteration_convergence");
  return 0;
}
