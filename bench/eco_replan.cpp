// ECO incremental re-planning gate (docs/ECO.md).
//
// Per suite circuit: open a PlanSession (one full cold plan), apply an ECO
// journal — by default a single-block resize, the canonical local edit;
// --eco FILE substitutes any journal — then close it twice over:
//   * end_eco():      the incremental re-plan, reusing unchanged routes,
//                     repeater plans, W/D rows and the warm LAC session;
//   * replan_cold():  a from-scratch plan of the same edited inputs.
// The tool verifies the two are bit-identical in every quality output and
// exits 1 on any mismatch — the equivalence guarantee of the session API,
// checked on real suite circuits.  It also writes the two quality
// fingerprints (eco_replan_eco.json / eco_replan_cold.json) as separate
// files so the CI gate can `cmp` them, and reports the work skipped: nets
// not re-routed, W/D rows copied, and min-cost-flow effort saved by the
// warm solver session.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/str_util.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "planner/plan_session.h"

namespace {

// One circuit's quality outputs, formatted identically for the ECO and the
// cold result so equal plans produce byte-equal fingerprint files.
std::string quality_fingerprint(const std::string& circuit,
                                const lac::planner::PlanResult& res) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "  {\"circuit\": \"%s\", \"t_clk_ps\": %.17g, \"t_init_ps\": %.17g,"
      " \"ma_n_foa\": %lld, \"ma_n_f\": %lld,"
      " \"lac_n_foa\": %lld, \"lac_n_f\": %lld, \"lac_n_fn\": %lld,"
      " \"n_wr\": %d, \"wirelength_um\": %.17g, \"repeaters\": %d,"
      " \"interconnect_units\": %d, \"clock_constraints\": %zu}",
      circuit.c_str(), res.t_clk_ps, res.t_init_ps,
      static_cast<long long>(res.min_area.report.n_foa),
      static_cast<long long>(res.min_area.report.n_f),
      static_cast<long long>(res.lac.report.n_foa),
      static_cast<long long>(res.lac.report.n_f),
      static_cast<long long>(res.lac.report.n_fn), res.lac.n_wr,
      res.routing.total_wirelength_um, res.repeaters, res.interconnect_units,
      res.clock_constraints);
  return buf;
}

// Deterministic-quality equality (the bench-side twin of the eco_test
// helper): everything except wall clocks and solver-effort fields.
bool results_identical(const lac::planner::PlanResult& a,
                       const lac::planner::PlanResult& b) {
  bool ok = a.block_of == b.block_of && a.fp.placement == b.fp.placement &&
            a.t_init_ps == b.t_init_ps && a.t_min_ps == b.t_min_ps &&
            a.t_clk_ps == b.t_clk_ps &&
            a.clock_constraints == b.clock_constraints &&
            a.graph.num_vertices() == b.graph.num_vertices() &&
            a.interconnect_units == b.interconnect_units &&
            a.repeaters == b.repeaters &&
            a.routing.total_wirelength_um == b.routing.total_wirelength_um &&
            a.routing.nets_routed == b.routing.nets_routed &&
            a.routing.nets_rerouted == b.routing.nets_rerouted &&
            a.routing.usage_histogram == b.routing.usage_histogram;
  const auto outcome_equal = [](const lac::planner::RetimingOutcome& x,
                                const lac::planner::RetimingOutcome& y) {
    bool same = x.r == y.r && x.n_wr == y.n_wr &&
                x.report.ac == y.report.ac &&
                x.report.n_f == y.report.n_f &&
                x.report.n_foa == y.report.n_foa &&
                x.rounds.size() == y.rounds.size();
    if (same)
      for (std::size_t i = 0; i < x.rounds.size(); ++i)
        same = same && x.rounds[i].n_foa == y.rounds[i].n_foa &&
               x.rounds[i].n_f == y.rounds[i].n_f &&
               x.rounds[i].best_n_foa == y.rounds[i].best_n_foa &&
               x.rounds[i].improved == y.rounds[i].improved;
    return same;
  };
  return ok && outcome_equal(a.min_area, b.min_area) &&
         outcome_equal(a.lac, b.lac);
}

long long lac_augmentations(const lac::planner::PlanResult& res) {
  long long total = 0;
  for (const auto& round : res.lac.rounds) total += round.augmentations;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lac;
  const bench_io::Cli cli = bench_io::parse_cli(
      argc, argv, "eco_replan", /*with_limit=*/true, /*with_eco=*/true);

  // A journal given via --eco must parse before any planning happens;
  // a malformed file is a usage error (exit 64, the bench contract).
  std::vector<planner::EcoEdit> journal;
  const bool custom_journal = !cli.eco_path.empty();
  if (custom_journal) {
    std::string error;
    const auto parsed = planner::parse_eco_journal(cli.eco_journal, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "eco_replan: malformed ECO journal '%s': %s\n",
                   cli.eco_path.c_str(), error.c_str());
      return 64;
    }
    journal = *parsed;
  }

  std::printf("=== ECO re-plan vs cold plan of the edited input ===\n\n");
  const std::string csv_path = bench_io::join(cli.out_dir, "eco_replan.csv");
  std::ofstream csv(csv_path);
  csv << "circuit,nets,invalidated_nets,reused_routes,cold_routes,"
         "wd_rows_total,wd_rows_rebuilt,repeater_replays,lac_warm,"
         "cold_mcf_aug,eco_mcf_aug,eco_t_s,cold_t_s,identical\n";
  TextTable table({"circuit", "nets", "invalid", "reused", "WD rows",
                   "WD rebuilt", "rep replay", "warm", "cold aug", "eco aug",
                   "eco T(s)", "cold T(s)", "identical"});

  std::vector<bench89::SuiteEntry> suite = bench89::table1_suite();
  if (cli.limit >= 0 && cli.limit < static_cast<long long>(suite.size()))
    suite.resize(static_cast<std::size_t>(cli.limit));

  bool all_identical = true;
  long long total_invalidated = 0, total_reused = 0;
  long long total_rows = 0, total_rows_rebuilt = 0;
  long long total_cold_aug = 0, total_eco_aug = 0;
  int warm_sessions = 0;
  std::vector<std::string> eco_fp, cold_fp;

  for (const auto& entry : suite) {
    const auto nl = bench89::load(entry);
    planner::PlannerConfig cfg;
    cfg.run.seed = 7;
    cfg.run.exec = cli.exec();
    cfg.num_blocks = entry.recommended_blocks;
    if (cli.lac_incremental >= 0)
      cfg.lac_opt.incremental = cli.lac_incremental != 0;
    if (cli.span_cap > 0)
      cfg.run.max_root_spans = static_cast<std::size_t>(cli.span_cap);

    planner::PlanSession session(nl, cfg);
    session.begin_eco();
    if (custom_journal) {
      for (const auto& edit : journal) session.apply(edit);
    } else {
      // The canonical ECO: grow one soft block by 5%.  In-place when the
      // floorplan has adjacent free space — the edit the incremental path
      // is designed around — with an automatic re-floorplan fallback.
      int block = 0;
      for (std::size_t b = 0; b < session.result().fp.blocks.size(); ++b)
        if (!session.result().fp.blocks[b].hard) {
          block = static_cast<int>(b);
          break;
        }
      session.resize_block(block,
                           session.result().fp.blocks
                                   [static_cast<std::size_t>(block)]
                                       .area *
                               1.05);
    }

    obs::Span eco_span("bench.eco_replan");
    const planner::PlanResult& eco_res = session.end_eco();
    const double eco_s = eco_span.elapsed_seconds();

    obs::Span cold_span("bench.cold_replan");
    const planner::PlanResult cold_res = session.replan_cold();
    const double cold_s = cold_span.elapsed_seconds();

    const bool identical = results_identical(eco_res, cold_res);
    all_identical = all_identical && identical;
    eco_fp.push_back(quality_fingerprint(entry.spec.name, eco_res));
    cold_fp.push_back(quality_fingerprint(entry.spec.name, cold_res));

    const planner::EcoStats& eco = session.last_eco();
    const long long cold_aug = lac_augmentations(cold_res);
    const long long eco_aug = lac_augmentations(eco_res);
    total_invalidated += eco.invalidated_nets;
    total_reused += eco.reused_routes;
    total_rows += eco.wd_rows_total;
    total_rows_rebuilt += eco.wd_rows_rebuilt;
    total_cold_aug += cold_aug;
    total_eco_aug += eco_aug;
    warm_sessions += eco.lac_warm;

    csv << entry.spec.name << ',' << eco_res.routing.nets_routed << ','
        << eco.invalidated_nets << ',' << eco.reused_routes << ','
        << eco.cold_routes << ',' << eco.wd_rows_total << ','
        << eco.wd_rows_rebuilt << ',' << eco.repeater_replays << ','
        << (eco.lac_warm ? 1 : 0) << ',' << cold_aug << ',' << eco_aug << ','
        << eco_s << ',' << cold_s << ',' << (identical ? 1 : 0) << '\n';
    table.add_row({entry.spec.name,
                   std::to_string(eco_res.routing.nets_routed),
                   std::to_string(eco.invalidated_nets),
                   std::to_string(eco.reused_routes),
                   std::to_string(eco.wd_rows_total),
                   std::to_string(eco.wd_rows_rebuilt),
                   std::to_string(eco.repeater_replays),
                   eco.lac_warm ? "yes" : "no", std::to_string(cold_aug),
                   std::to_string(eco_aug), format_double(eco_s, 3),
                   format_double(cold_s, 3), identical ? "yes" : "NO"});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("(machine-readable copy written to %s)\n\n", csv_path.c_str());

  // Quality fingerprints: byte-identical files iff the ECO re-plans match
  // their cold references (the CI gate runs `cmp` on the pair).
  for (const auto& [file, lines] :
       {std::pair{std::string("eco_replan_eco.json"), &eco_fp},
        std::pair{std::string("eco_replan_cold.json"), &cold_fp}}) {
    const std::string path = bench_io::join(cli.out_dir, file);
    std::ofstream out(path);
    out << "[\n";
    for (std::size_t i = 0; i < lines->size(); ++i)
      out << (*lines)[i] << (i + 1 < lines->size() ? ",\n" : "\n");
    out << "]\n";
    std::printf("(quality fingerprint written to %s)\n", path.c_str());
  }

  if (total_rows > 0)
    std::printf("\nW/D rows: %lld of %lld rebuilt (%.0f%% copied)\n",
                total_rows_rebuilt, total_rows,
                100.0 * static_cast<double>(total_rows - total_rows_rebuilt) /
                    static_cast<double>(total_rows));
  if (total_cold_aug > 0)
    std::printf("LAC MCF pushes: cold %lld -> eco %lld (%.0f%% removed)\n",
                total_cold_aug, total_eco_aug,
                100.0 * static_cast<double>(total_cold_aug - total_eco_aug) /
                    static_cast<double>(total_cold_aug));
  if (!all_identical)
    std::printf("ERROR: an ECO re-plan diverged from its cold reference\n");

  bench_io::write_bench_report(
      cli.out_dir, "eco_replan",
      {{"circuits", obs::json::Value::of(suite.size())},
       {"invalidated_nets", obs::json::Value::of(total_invalidated)},
       {"reused_routes", obs::json::Value::of(total_reused)},
       {"wd_rows_total", obs::json::Value::of(total_rows)},
       {"wd_rows_rebuilt", obs::json::Value::of(total_rows_rebuilt)},
       {"lac_warm_sessions", obs::json::Value::of(warm_sessions)},
       {"cold_mcf_augmentations", obs::json::Value::of(total_cold_aug)},
       {"eco_mcf_augmentations", obs::json::Value::of(total_eco_aug)},
       {"identical", obs::json::Value::of(all_identical)}});
  return all_identical ? 0 : 1;
}
