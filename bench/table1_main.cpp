// Reproduces Table 1 of the paper: per circuit, the target clock period,
// the initial period, and min-area retiming vs LAC-retiming at that period
// — N_FOA (flip-flops violating local area constraints, with the
// second-planning-iteration value in parentheses where violations remain),
// N_F (total flip-flops), N_FN (flip-flops inside interconnects), N_wr
// (weighted min-area solves) and execution time — plus the percentage
// decrease in N_FOA, averaged over the suite exactly as the paper reports.
//
// Absolute numbers differ from the paper (synthetic stand-in circuits and
// a self-consistent technology; see DESIGN.md §4), but the comparison
// shape is the paper's: large violation counts under min-area retiming,
// the bulk removed by LAC in one planning iteration, the rest after the
// floorplan-expansion iteration, at a small N_F premium with few N_wr.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "base/str_util.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "planner/interconnect_planner.h"

int main(int argc, char** argv) {
  using namespace lac;
  const bench_io::Cli cli =
      bench_io::parse_cli(argc, argv, "table1_main", /*with_limit=*/true);
  const std::string& out = cli.out_dir;

  std::printf("=== Table 1: Min-Area Retiming vs LAC-Retiming ===\n\n");
  const std::string csv_path = bench_io::join(out, "table1.csv");
  std::ofstream csv(csv_path);
  csv << "circuit,t_clk_ps,t_init_ps,ma_n_foa,ma_n_f,ma_n_fn,ma_t_s,"
         "lac_n_foa,lac_n_foa_iter2,lac_n_f,lac_n_fn,n_wr,lac_t_s\n";
  TextTable table({"circuit", "Tclk(ps)", "Tinit(ps)",
                   "MA:N_FOA", "MA:N_F", "MA:N_FN", "MA:T(s)",
                   "LAC:N_FOA", "LAC:N_F", "LAC:N_FN", "N_wr", "LAC:T(s)",
                   "Decr."});

  double decrease_sum = 0.0;
  int decrease_count = 0;
  long long total_ma_foa = 0, total_lac_foa = 0;

  // --limit N truncates to the N smallest circuits: the CI perf gate
  // runs a fast deterministic subset against a checked-in baseline.
  std::vector<bench89::SuiteEntry> suite = bench89::table1_suite();
  if (cli.limit >= 0 &&
      cli.limit < static_cast<long long>(suite.size()))
    suite.resize(static_cast<std::size_t>(cli.limit));

  // Circuits are planned in parallel (each task plans one circuit end to
  // end); rows are then aggregated and printed strictly in suite order, so
  // the CSV, table, and run report are identical for any --threads value.
  const base::ExecPolicy exec = cli.exec();
  const auto iterations =
      base::parallel_map<std::vector<planner::PlanResult>>(
          exec, suite.size(), [&](std::size_t i) {
            const auto nl = bench89::load(suite[i]);
            planner::PlannerConfig cfg;
            cfg.run.seed = 7;
            cfg.run.exec = exec;
            cfg.num_blocks = suite[i].recommended_blocks;
            if (cli.lac_incremental >= 0)
              cfg.lac_opt.incremental = cli.lac_incremental != 0;
            if (cli.span_cap > 0)
              cfg.run.max_root_spans =
                  static_cast<std::size_t>(cli.span_cap);
            const planner::InterconnectPlanner planner(cfg);
            // Second planning iteration (floorplan expansion) runs when
            // violations remain — the parenthesised column of the table.
            return planner.plan(nl,
                                planner::PlanOptions{.max_iterations = 2});
          });

  for (std::size_t c = 0; c < suite.size(); ++c) {
    const auto& entry = suite[c];
    const planner::PlanResult& res = iterations[c].front();

    std::string lac_foa = std::to_string(res.lac.report.n_foa);
    long long iter2_foa = -1;
    if (iterations[c].size() > 1) {
      iter2_foa = iterations[c].back().lac.report.n_foa;
      lac_foa += " (" + std::to_string(iter2_foa) + ")";
    }

    std::string decr = "N/A";
    if (res.min_area.report.n_foa > 0) {
      decrease_sum += res.foa_decrease_pct();
      ++decrease_count;
      decr = format_double(res.foa_decrease_pct(), 0) + "%";
    }
    total_ma_foa += res.min_area.report.n_foa;
    total_lac_foa += res.lac.report.n_foa;

    csv << entry.spec.name << ',' << res.t_clk_ps << ',' << res.t_init_ps
        << ',' << res.min_area.report.n_foa << ',' << res.min_area.report.n_f
        << ',' << res.min_area.report.n_fn << ','
        << res.min_area.exec_seconds << ',' << res.lac.report.n_foa << ','
        << iter2_foa << ',' << res.lac.report.n_f << ','
        << res.lac.report.n_fn << ',' << res.lac.n_wr << ','
        << res.lac.exec_seconds << '\n';

    table.add_row({entry.spec.name,
                   format_double(res.t_clk_ps, 1),
                   format_double(res.t_init_ps, 1),
                   std::to_string(res.min_area.report.n_foa),
                   std::to_string(res.min_area.report.n_f),
                   std::to_string(res.min_area.report.n_fn),
                   format_double(res.min_area.exec_seconds, 3),
                   lac_foa,
                   std::to_string(res.lac.report.n_f),
                   std::to_string(res.lac.report.n_fn),
                   std::to_string(res.lac.n_wr),
                   format_double(res.lac.exec_seconds, 3),
                   decr});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("(machine-readable copy written to %s)\n\n", csv_path.c_str());
  if (decrease_count > 0)
    std::printf("Average N_FOA decrease over circuits with violations: %.0f%%"
                "   (paper: 84%%)\n",
                decrease_sum / decrease_count);
  if (total_ma_foa > 0)
    std::printf("Aggregate N_FOA: min-area %lld -> LAC %lld (%.0f%% removed)\n",
                total_ma_foa, total_lac_foa,
                100.0 * static_cast<double>(total_ma_foa - total_lac_foa) /
                    static_cast<double>(total_ma_foa));
  bench_io::write_bench_report(
      out, "table1",
      {{"circuits", obs::json::Value::of(suite.size())},
       {"avg_n_foa_decrease_pct",
        obs::json::Value::of(decrease_count > 0
                                 ? decrease_sum / decrease_count
                                 : 0.0)},
       {"total_min_area_n_foa", obs::json::Value::of(total_ma_foa)},
       {"total_lac_n_foa", obs::json::Value::of(total_lac_foa)}});
  return 0;
}
