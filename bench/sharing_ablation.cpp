// Extension ablation: per-edge register counting (the paper's model,
// Eqn. (3)) vs register-sharing-aware min-area retiming (Leiserson–Saxe
// mirror-vertex model).  Run on the pure-logic graphs of the Table-1
// suite at T_min: how many registers does each objective report, and how
// much does the per-edge model overstate the physical register count?
#include <cstdio>
#include <string>

#include "base/str_util.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "retime/apply.h"
#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/sharing.h"
#include "retime/wd_matrices.h"

int main(int argc, char** argv) {
  using namespace lac;
  const std::string out =
      bench_io::parse_cli(argc, argv, "sharing_ablation").out_dir;

  std::printf("=== Per-edge vs register-sharing min-area retiming ===\n\n");
  TextTable table({"circuit", "T_min(ps)", "edge-obj N_F", "its shared cost",
                   "shared-obj cost", "overstatement"});
  for (const auto& entry : bench89::table1_suite()) {
    const auto nl = bench89::load(entry);
    const auto lg = retime::build_logic_graph(nl, 60.0);
    const auto wd = retime::WdMatrices::compute(lg.graph);
    const double t_min = retime::min_period_retiming(lg.graph, wd);
    const auto t = retime::to_decips(t_min);
    const auto cs = retime::build_constraints(lg.graph, wd, t);
    std::vector<double> ones(
        static_cast<std::size_t>(lg.graph.num_vertices()), 1.0);

    const auto r_edge = retime::min_area_retiming(lg.graph, cs);
    const auto r_shared =
        retime::min_area_retiming_shared(lg.graph, wd, t, ones);

    const double edge_nf = retime::weighted_ff_area(lg.graph, *r_edge, ones);
    const double edge_shared = retime::shared_ff_area(lg.graph, *r_edge, ones);
    const double shared_opt =
        retime::shared_ff_area(lg.graph, *r_shared, ones);
    table.add_row({entry.spec.name, format_double(t_min, 1),
                   format_double(edge_nf, 0), format_double(edge_shared, 0),
                   format_double(shared_opt, 0),
                   format_double(100.0 * (edge_nf - shared_opt) /
                                     std::max(1.0, shared_opt),
                                 0) +
                       "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The per-edge objective (used by the paper and by our Table-1 area\n"
      "accounting) overstates the physically required registers whenever\n"
      "multi-fanout vertices carry registers; the sharing-aware optimiser\n"
      "bounds the real hardware cost from below.\n");
  bench_io::write_bench_report(out, "sharing_ablation");
  return 0;
}
