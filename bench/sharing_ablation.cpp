// Extension ablation: per-edge register counting (the paper's model,
// Eqn. (3)) vs register-sharing-aware min-area retiming (Leiserson–Saxe
// mirror-vertex model).  Run on the pure-logic graphs of the Table-1
// suite at T_min: how many registers does each objective report, and how
// much does the per-edge model overstate the physical register count?
#include <cstdio>
#include <string>

#include "base/parallel.h"
#include "base/str_util.h"
#include "base/table.h"
#include "bench89/suite.h"
#include "bench_io.h"
#include "retime/apply.h"
#include "retime/constraints.h"
#include "retime/min_area.h"
#include "retime/sharing.h"
#include "retime/wd_matrices.h"

int main(int argc, char** argv) {
  using namespace lac;
  const bench_io::Cli cli = bench_io::parse_cli(argc, argv, "sharing_ablation");
  const std::string& out = cli.out_dir;
  const base::ExecPolicy exec = cli.exec();

  std::printf("=== Per-edge vs register-sharing min-area retiming ===\n\n");
  TextTable table({"circuit", "T_min(ps)", "edge-obj N_F", "its shared cost",
                   "shared-obj cost", "overstatement"});
  // Per-circuit fan-out; each task runs both optimisers for one circuit.
  struct Outcome {
    double t_min = 0.0, edge_nf = 0.0, edge_shared = 0.0, shared_opt = 0.0;
  };
  const auto suite = bench89::table1_suite();
  const auto outcomes = base::parallel_map<Outcome>(
      exec, suite.size(), [&](std::size_t i) {
        const auto nl = bench89::load(suite[i]);
        const auto lg = retime::build_logic_graph(nl, 60.0);
        const auto wd = retime::WdMatrices::compute(lg.graph, exec);
        const double t_min = retime::min_period_retiming(lg.graph, wd);
        const auto t = retime::to_decips(t_min);
        const auto cs = retime::build_constraints(lg.graph, wd, t);
        std::vector<double> ones(
            static_cast<std::size_t>(lg.graph.num_vertices()), 1.0);

        const auto r_edge = retime::min_area_retiming(lg.graph, cs);
        const auto r_shared =
            retime::min_area_retiming_shared(lg.graph, wd, t, ones);

        return Outcome{
            t_min, retime::weighted_ff_area(lg.graph, *r_edge, ones),
            retime::shared_ff_area(lg.graph, *r_edge, ones),
            retime::shared_ff_area(lg.graph, *r_shared, ones)};
      });
  for (std::size_t c = 0; c < suite.size(); ++c) {
    const Outcome& o = outcomes[c];
    table.add_row({suite[c].spec.name, format_double(o.t_min, 1),
                   format_double(o.edge_nf, 0), format_double(o.edge_shared, 0),
                   format_double(o.shared_opt, 0),
                   format_double(100.0 * (o.edge_nf - o.shared_opt) /
                                     std::max(1.0, o.shared_opt),
                                 0) +
                       "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The per-edge objective (used by the paper and by our Table-1 area\n"
      "accounting) overstates the physically required registers whenever\n"
      "multi-fanout vertices carry registers; the sharing-aware optimiser\n"
      "bounds the real hardware cost from below.\n");
  bench_io::write_bench_report(out, "sharing_ablation");
  return 0;
}
